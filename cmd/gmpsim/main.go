// gmpsim runs named protocol scenarios on the deterministic simulator and
// prints the event-level story: suspicions, view installations, quits, and
// the GMP checker's verdict. With -live it instead boots the real
// goroutine runtime on a chosen transport and drives a churn scenario over
// actual sockets.
//
// Usage:
//
//	gmpsim -scenario exclusion -n 5 -seed 1
//	gmpsim -scenario reconfig -trace
//	gmpsim -live -transport tcp -n 5
//	gmpsim -live -topology ring:3 -n 8
//	gmpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"procgroup"
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/scenario"
)

type runner func(n int, seed int64) *scenario.Cluster

var scenarios = map[string]struct {
	about string
	run   runner
}{
	"exclusion": {"one process crashes and is excluded by the coordinator", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		c.CrashAt(c.Initial()[n-1], 50)
		return c
	}},
	"reconfig": {"the coordinator crashes; the next in rank reconfigures", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		c.CrashAt(c.Initial()[0], 50)
		return c
	}},
	"spurious": {"the coordinator wrongly suspects a live process, which must quit", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig(), MuteOracle: true})
		c.SuspectAt(c.Initial()[0], c.Initial()[n-1], 10)
		return c
	}},
	"churn": {"a stream of crashes and joins, including a coordinator failure", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		procs := c.Initial()
		c.CrashAt(procs[n-1], 50)
		c.JoinAt(ids.ProcID{Site: "q1"}, procs[1], 400)
		c.CrashAt(procs[0], 900)
		c.JoinAt(ids.ProcID{Site: "q2"}, procs[1], 1500)
		return c
	}},
	"fig3": {"Figure 3: coordinator dies mid-commit; reconfiguration repairs the split", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig(), MuteOracle: true})
		procs := c.Initial()
		c.SuspectAt(procs[0], procs[n-1], 10)
		c.CrashDuringBroadcast(procs[0], 1, core.LabelCommit)
		for _, obs := range procs[1 : n-1] {
			c.SuspectAt(obs, procs[0], 200)
		}
		return c
	}},
	"blocked": {"a majority crashes; survivors block rather than diverge", func(n int, seed int64) *scenario.Cluster {
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		procs := c.Initial()
		for i := 0; i < n/2+1; i++ {
			c.CrashAt(procs[i], 50)
		}
		return c
	}},
}

func main() {
	name := flag.String("scenario", "exclusion", "scenario to run")
	n := flag.Int("n", 5, "initial group size")
	seed := flag.Int64("seed", 1, "schedule seed")
	traceAll := flag.Bool("trace", false, "print the full event trace")
	jsonOut := flag.String("json", "", "write the full run as JSON Lines to this file")
	list := flag.Bool("list", false, "list scenarios")
	liveRun := flag.Bool("live", false, "run the churn scenario on the live goroutine runtime instead of the simulator")
	transportName := flag.String("transport", "inmem", "live transport: inmem, tcp (loopback sockets), lossy (ABP over a lossy link), or twoplane (beacons on UDP, protocol on TCP)")
	topologyName := flag.String("topology", "full", "live monitoring topology: full (all-to-all), ring:k (each member watches its k rank-successors), or hier:c:k (clusters of c in intra-cluster ring-k, stitched by a leader ring), e.g. ring:3 or hier:8:2")
	flag.Parse()

	topo, err := parseTopology(*topologyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *liveRun {
		runLive(*transportName, topo, *n)
		return
	}
	if *topologyName != "full" {
		// The simulator's failure detection is the crash oracle, not
		// beacon monitoring; topologies only exist on the live runtime.
		fmt.Fprintln(os.Stderr, "note: -topology applies to -live runs only; the simulator's detector is the oracle")
	}

	if *list {
		for name, s := range scenarios {
			fmt.Printf("%-10s %s\n", name, s.about)
		}
		return
	}
	s, ok := scenarios[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; try -list\n", *name)
		os.Exit(1)
	}
	fmt.Printf("scenario %q: %s (n=%d, seed=%d)\n\n", *name, s.about, *n, *seed)
	c := s.run(*n, *seed)
	c.Run()

	for _, e := range c.Rec.Events() {
		if !*traceAll {
			switch e.Kind {
			case event.Send, event.Recv, event.Drop, event.Start:
				continue
			}
		}
		fmt.Printf("t=%-6d %v\n", e.Time, e)
	}

	fmt.Println()
	if v, err := c.StableView(); err == nil {
		fmt.Printf("stable view: %v (coordinator %v)\n", v, v.Mgr())
	} else {
		fmt.Printf("no stable view: %v\n", err)
	}
	fmt.Printf("protocol messages: %d (exclusion %d, reconfiguration %d)\n",
		c.Messages(core.ProtocolLabels...),
		c.Messages(core.ExclusionLabels...),
		c.Messages(core.ReconfigLabels...))
	fmt.Printf("simulated time: %d ticks, %d scheduler steps\n", c.Sched.Now(), c.Sched.Steps())
	fmt.Printf("checker: %v\n", c.Check())

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json export:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := c.Rec.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "json export:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *jsonOut)
	}
}

// parseTopology resolves the -topology flag through the shared spec
// vocabulary: "full", "ring[:k]", or "hier[:c[:k]]".
func parseTopology(s string) (procgroup.Topology, error) {
	return procgroup.ParseTopology(s)
}

// runLive boots the real goroutine runtime over the named transport and
// drives a join + crash churn, printing the agreed view sequence as the
// ViewWatcher condenses it from the per-process install streams.
func runLive(transportName string, topo procgroup.Topology, n int) {
	var tr procgroup.Transport
	switch transportName {
	case "inmem":
		tr = procgroup.NewInmemTransport()
	case "tcp":
		tr = procgroup.NewTCPTransport()
	case "lossy":
		tr = procgroup.NewLossyTransport(procgroup.LossyTransportOptions{})
	case "twoplane":
		tr = procgroup.NewUDPBeaconTransport(nil) // beacons on UDP, protocol on TCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q; want inmem, tcp, lossy or twoplane\n", transportName)
		os.Exit(1)
	}
	if n < 3 {
		n = 3
	}
	fmt.Printf("live churn over %s transport, n=%d\n\n", transportName, n)
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              n,
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   200 * time.Millisecond,
		Transport:      tr,
		Topology:       topo,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	defer w.Close()

	step := func(what string) {
		v, err := g.WaitConverged(30 * time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
			os.Exit(1)
		}
		fmt.Printf("%-28s -> converged on %v\n", what, v)
	}
	step("bootstrap")
	g.Join(procgroup.Named("q1"), procgroup.Named("p2"))
	step("join q1 via p2")
	last := g.Running()[len(g.Running())-1]
	g.Kill(last)
	step(fmt.Sprintf("kill %v", last))
	g.Kill(procgroup.Named("p1"))
	step("kill p1 (coordinator)")

	// The installs are all published, but the watcher goroutine may still
	// be forwarding them; drain until the stream goes quiet.
	fmt.Println("\nagreed view sequence:")
drain:
	for {
		select {
		case av := <-w.Views():
			fmt.Printf("  v%-3d %v\n", av.Ver, av.Members)
		case <-time.After(500 * time.Millisecond):
			break drain
		}
	}
	fmt.Printf("\ninstalls dropped from the update stream: %d\n", g.Dropped())
}
