// E15: the live wire path, measured. Unlike the simulator experiments,
// these are machine-dependent microbenchmarks, so alongside the printed
// table the results can be emitted as BENCH_transport.json
// (-transport-out) to keep the perf trajectory machine-readable across
// PRs.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/transport"
)

// transportOut is the -transport-out flag: path of the JSON report.
var transportOut string

// codecArm is one benchmark arm's result.
type codecArm struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func arm(r testing.BenchmarkResult) codecArm {
	return codecArm{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// transportReport is the BENCH_transport.json schema.
type transportReport struct {
	GeneratedBy string   `json:"generated_by"`
	Env         benchEnv `json:"env"`
	Codec       struct {
		BinaryEncode    codecArm `json:"binary_encode"`
		BinaryRoundtrip codecArm `json:"binary_roundtrip"`
		GobEncode       codecArm `json:"gob_encode"`
		GobRoundtrip    codecArm `json:"gob_roundtrip"`
		// RoundtripAllocRatio is gob allocs/op over binary allocs/op —
		// the tentpole's acceptance bar is ≥ 10.
		RoundtripAllocRatio float64 `json:"roundtrip_alloc_ratio_gob_over_binary"`
	} `json:"codec"`
	TCP struct {
		FramesPerSec      float64 `json:"frames_per_sec"`
		HeartbeatAllocsOp int64   `json:"heartbeat_send_allocs_per_op"`
	} `json:"tcp"`
	// Saturation is E18: detector quality per wire plane while a
	// neighbor floods its link (see saturation.go).
	Saturation []satArm `json:"saturation"`
}

// benchWireFrames mirrors internal/transport's BenchmarkFrameCodec mix.
func benchWireFrames() []transport.Frame {
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	return []transport.Frame{
		{From: "p1", To: "p2", Seq: 1, MsgID: 42, Body: core.OK{Ver: 4}},
		{From: "p1", To: "p3#2", Seq: 2, MsgID: 43, Body: core.Invite{Op: member.Remove(p3), Ver: 4}},
		{From: "p1", To: "p2", Seq: 3, MsgID: 44, Body: core.Commit{
			Op: member.Remove(p3), Ver: 4,
			Next: member.Add(ids.Named("q1")), NextVer: 5,
			Faulty: []ids.ProcID{p3}, Recovered: []ids.ProcID{ids.Named("q1")},
		}},
		{From: "p2", To: "p1", Seq: 4, MsgID: 45, Body: core.Interrogate{}},
	}
}

// gmpbenchBeacon is the beacon payload for the heartbeat-allocation arm.
type gmpbenchBeacon struct{}

func init() { transport.RegisterBeaconPayload(201, gmpbenchBeacon{}) }

func transportPerf(int64) {
	fmt.Println("== E15 · live wire path: binary codec vs gob, mux throughput ==")
	frames := benchWireFrames()

	var rep transportReport
	rep.GeneratedBy = "gmpbench -exp transport"
	rep.Env = captureEnv()

	rep.Codec.BinaryEncode = arm(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = transport.AppendFrame(buf[:0], frames[i%len(frames)])
		}
	}))
	rep.Codec.BinaryRoundtrip = arm(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = transport.AppendFrame(buf[:0], frames[i%len(frames)])
			if _, err := transport.DecodeFrame(buf); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Codec.GobEncode = arm(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transport.EncodeFrameGob(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Codec.GobRoundtrip = arm(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blob, err := transport.EncodeFrameGob(frames[i%len(frames)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := transport.DecodeFrame(blob); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if rep.Codec.BinaryRoundtrip.AllocsPerOp > 0 {
		rep.Codec.RoundtripAllocRatio =
			float64(rep.Codec.GobRoundtrip.AllocsPerOp) / float64(rep.Codec.BinaryRoundtrip.AllocsPerOp)
	}

	rep.TCP.FramesPerSec = tcpFramesPerSec()
	rep.TCP.HeartbeatAllocsOp = heartbeatAllocs()

	w := tw()
	fmt.Fprintln(w, "arm\tns/op\tallocs/op\tB/op")
	fmt.Fprintf(w, "binary encode\t%.0f\t%d\t%d\n", rep.Codec.BinaryEncode.NsPerOp, rep.Codec.BinaryEncode.AllocsPerOp, rep.Codec.BinaryEncode.BytesPerOp)
	fmt.Fprintf(w, "binary roundtrip\t%.0f\t%d\t%d\n", rep.Codec.BinaryRoundtrip.NsPerOp, rep.Codec.BinaryRoundtrip.AllocsPerOp, rep.Codec.BinaryRoundtrip.BytesPerOp)
	fmt.Fprintf(w, "gob encode\t%.0f\t%d\t%d\n", rep.Codec.GobEncode.NsPerOp, rep.Codec.GobEncode.AllocsPerOp, rep.Codec.GobEncode.BytesPerOp)
	fmt.Fprintf(w, "gob roundtrip\t%.0f\t%d\t%d\n", rep.Codec.GobRoundtrip.NsPerOp, rep.Codec.GobRoundtrip.AllocsPerOp, rep.Codec.GobRoundtrip.BytesPerOp)
	w.Flush()
	fmt.Printf("roundtrip alloc ratio (gob/binary): %.1f×  (bar: ≥10×)\n", rep.Codec.RoundtripAllocRatio)
	fmt.Printf("mux throughput: %.0f frames/sec through one pair connection\n", rep.TCP.FramesPerSec)
	fmt.Printf("heartbeat send: %d allocs/op (bar: 0)\n", rep.TCP.HeartbeatAllocsOp)

	fmt.Println()
	rep.Saturation = satPerf()

	if transportOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "transport report:", err)
			return
		}
		if err := os.WriteFile(transportOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "transport report:", err)
			return
		}
		fmt.Println("wrote", transportOut)
	}
}

// warmUp retries a first frame until one lands (warm-ups can
// legitimately drop), bounded by a deadline; reports success.
func warmUp(send func(), received *atomic.Int64) bool {
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() == 0 {
		send()
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "transport: warm-up frame never delivered")
			return false
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let retried warm-ups land before counting
	received.Store(0)
	return true
}

// tcpFramesPerSec pushes frames through one mux connection end to end and
// reports the steady-state rate (windowed so the bounded queue never
// drops).
func tcpFramesPerSec() float64 {
	tr := transport.NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var received atomic.Int64
	if err := tr.Register(a, func(ids.ProcID, transport.Message) {}); err != nil {
		return 0
	}
	if err := tr.Register(b, func(ids.ProcID, transport.Message) { received.Add(1) }); err != nil {
		return 0
	}
	if !warmUp(func() { tr.Send(a, b, transport.Message{MsgID: 1, Payload: core.OK{}}) }, &received) {
		return 0
	}

	const n, window = 200_000, 512
	start := time.Now()
	for i := 0; i < n; i++ {
		for int64(i)-received.Load() >= window {
			time.Sleep(50 * time.Microsecond)
		}
		tr.Send(a, b, transport.Message{MsgID: int64(i + 1), Payload: core.OK{Ver: member.Version(i)}})
	}
	for received.Load() < n {
		time.Sleep(50 * time.Microsecond)
	}
	return float64(n) / time.Since(start).Seconds()
}

// heartbeatAllocs measures allocations per beacon delivery — each op
// sends one beacon and waits for it to land, so the whole enqueue →
// cached-encode → write → read → route path is exercised (never the
// coalescing early-return). The fast path's acceptance bar is 0.
func heartbeatAllocs() int64 {
	tr := transport.NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var received atomic.Int64
	if err := tr.Register(a, func(ids.ProcID, transport.Message) {}); err != nil {
		return -1
	}
	if err := tr.Register(b, func(ids.ProcID, transport.Message) { received.Add(1) }); err != nil {
		return -1
	}
	if !warmUp(func() { tr.Send(a, b, transport.Message{Payload: gmpbenchBeacon{}}) }, &received) {
		return -1
	}
	return testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			tr.Send(a, b, transport.Message{Payload: gmpbenchBeacon{}})
			for received.Load() < int64(i+1) {
				// Sleep, don't spin: a busy wait starves the netpoller
				// on small GOMAXPROCS and measures sysmon's 10ms tick.
				time.Sleep(10 * time.Microsecond)
			}
		}
	}).AllocsPerOp()
}
