// E17: the monitoring-topology scaling sweep. The paper's F1 never asks
// for all-to-all observation, yet the pre-topology live runtime beaconed
// every peer and the TCP transport carried one multiplexed link per
// communicating pair — O(n²) beacons and sockets. This experiment
// measures what decoupling monitoring from membership buys: n × {Full,
// RingK} × {inmem, tcp}, scoring steady-state beacon rate, established
// connections (Stats.ConnsOpen — measured, not asserted), exclusion
// latency, and false suspicions, with the GMP checker certifying every
// arm.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/topology"
	"procgroup/internal/transport"
)

// scale experiment flags.
var (
	scaleOut    string
	scaleNs     string
	scaleWindow time.Duration
	scaleK      int
)

func scaleFlags() {
	flag.StringVar(&scaleOut, "scale-out", "", "write the scale experiment's results as JSON to this path (e.g. BENCH_scale.json)")
	flag.StringVar(&scaleNs, "scale-ns", "8,16,32,64", "comma-separated group sizes for -exp scale")
	flag.DurationVar(&scaleWindow, "scale-window", 2*time.Second, "steady-state observation window per arm (beacon-rate sample)")
	flag.IntVar(&scaleK, "scale-k", 3, "ring successor count k for the RingK arms")
}

// Beat cadence of every arm: slow enough that a 64-node group on one OS
// process stays quiet (zero false suspicions is part of the acceptance
// bar), fast enough that exclusion latency stays measurable.
const (
	scaleHeartbeat    = 100 * time.Millisecond
	scaleSuspectAfter = 1 * time.Second
)

// beaconCounter wraps a Transport and counts substrate heartbeat sends —
// the beacon-rate measurement the topology claim is scored on.
type beaconCounter struct {
	transport.Transport
	n atomic.Int64
}

func (b *beaconCounter) Send(from, to ids.ProcID, m transport.Message) {
	if _, ok := m.Payload.(live.Heartbeat); ok {
		b.n.Add(1)
	}
	b.Transport.Send(from, to, m)
}

// scaleArm is one (n, topology, transport) measurement.
type scaleArm struct {
	N         int    `json:"n"`
	Topology  string `json:"topology"`
	Transport string `json:"transport"`
	// Mode distinguishes the harness: "" is the in-process runtime (n
	// goroutine nodes, one Go scheduler), "mproc" is one OS process per
	// member over real sockets (E19).
	Mode string `json:"mode,omitempty"`
	// Digests records the dissemination arm: "auto" (beacon-borne
	// digests) or "off" (relay flood). Empty on pre-digest arms.
	Digests string `json:"digests,omitempty"`
	// SuspicionFrames counts the wire frames spent disseminating the
	// run's one exclusion (transport.Stats.SuspicionFrames summed over
	// the group) — the digest-vs-relay comparison's metric.
	SuspicionFrames int64 `json:"suspicion_frames,omitempty"`

	BeaconsPerSec float64 `json:"beacons_per_sec"`
	// ConnsOpen is the transport's established-connection gauge sampled
	// at the end of the steady window (0 on inmem); FullMeshConns is the
	// n(n−1)/2 reference an all-to-all group settles at over TCP.
	ConnsOpen     int64   `json:"conns_open"`
	FullMeshConns int     `json:"full_mesh_conns"`
	ExclMs        float64 `json:"excl_ms"`
	FalseSuspects int     `json:"false_suspects"`
	CheckerOK     bool    `json:"checker_ok"`
}

// scaleRatio is the per-(n, transport) RingK/Full comparison.
type scaleRatio struct {
	N           int     `json:"n"`
	Transport   string  `json:"transport"`
	BeaconRatio float64 `json:"beacon_ratio_full_over_ring"`
	ConnRatio   float64 `json:"conn_ratio_full_over_ring,omitempty"`
}

// digestRatio is the per-n digest-vs-relay suspicion-frame comparison,
// measured on otherwise identical multi-process arms.
type digestRatio struct {
	N            int     `json:"n"`
	Topology     string  `json:"topology"`
	RelayFrames  int64   `json:"relay_frames"`
	DigestFrames int64   `json:"digest_frames"`
	Ratio        float64 `json:"relay_over_digest"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	GeneratedBy    string   `json:"generated_by"`
	Env            benchEnv `json:"env"`
	HeartbeatMs    float64  `json:"heartbeat_ms"`
	SuspectAfterMs float64  `json:"suspect_after_ms"`
	WindowMs       float64  `json:"window_ms"`
	RingK          int      `json:"ring_k"`
	// MprocHeartbeatMs/MprocSuspectAfterMs are the (slower) cadence of
	// the multi-process arms, sized so hundreds of OS processes on a
	// small host keep zero false suspicions.
	MprocHeartbeatMs    float64       `json:"mproc_heartbeat_ms,omitempty"`
	MprocSuspectAfterMs float64       `json:"mproc_suspect_after_ms,omitempty"`
	Arms                []scaleArm    `json:"arms"`
	Ratios              []scaleRatio  `json:"ratios"`
	DigestRatios        []digestRatio `json:"digest_ratios,omitempty"`
}

func scaleSizes() []int {
	var ns []int
	for _, f := range strings.Split(scaleNs, ",") {
		if strings.TrimSpace(f) == "" {
			continue // -scale-ns "" runs only the multi-process arms
		}
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 3 {
			fmt.Fprintf(os.Stderr, "scale: ignoring group size %q\n", f)
			continue
		}
		ns = append(ns, n)
	}
	return ns
}

// runScaleArm boots one live group, samples its steady state for the
// window, then kills the most junior non-coordinator and times the
// exclusion, auditing the trace for spurious suspicions and GMP.
func runScaleArm(n int, topoName string, topo topology.Topology, transportName string) (scaleArm, error) {
	arm := scaleArm{N: n, Topology: topoName, Transport: transportName, FullMeshConns: n * (n - 1) / 2}
	var inner transport.Transport
	switch transportName {
	case "inmem":
		inner = transport.NewInmem()
	case "tcp":
		inner = transport.NewTCP()
	default:
		return arm, fmt.Errorf("unknown transport %q", transportName)
	}
	bc := &beaconCounter{Transport: inner}
	c := live.Start(live.Options{
		N:              n,
		HeartbeatEvery: scaleHeartbeat,
		SuspectAfter:   scaleSuspectAfter,
		Transport:      bc,
		Topology:       topo,
	})
	defer c.Stop()
	if _, err := c.WaitConverged(30 * time.Second); err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	// Steady state: let the beacon pattern (and TCP's lazy dials)
	// settle, then sample a clean window.
	time.Sleep(3 * scaleHeartbeat)
	bc.n.Store(0)
	start := time.Now()
	time.Sleep(scaleWindow)
	arm.BeaconsPerSec = float64(bc.n.Load()) / time.Since(start).Seconds()
	arm.ConnsOpen = c.TransportStats().ConnsOpen

	// Exclusion: kill the most junior member that is not the
	// coordinator, so the sample measures the two-phase path (under
	// RingK: monitor detection → GMP-5 report/relay → round).
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		return arm, fmt.Errorf("pre-kill: %w", err)
	}
	members := v.Members()
	victim := members[len(members)-1]
	if victim == v.Mgr() && len(members) > 1 {
		victim = members[len(members)-2]
	}
	killAt := time.Now()
	c.Kill(victim)
	if _, err := c.WaitConverged(60 * time.Second); err != nil {
		return arm, fmt.Errorf("post-kill: %w", err)
	}
	arm.ExclMs = float64(time.Since(killAt)) / float64(time.Millisecond)

	// Audit: any Faulty event naming a process other than the one we
	// killed is a false suspicion.
	falseTargets := ids.NewSet()
	for _, e := range c.Recorder().Events() {
		if e.Kind == event.Faulty && e.Other != victim {
			falseTargets.Add(e.Other)
		}
	}
	arm.FalseSuspects = falseTargets.Len()

	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(n),
		Alive:    running.Has,
	})
	arm.CheckerOK = rep.OK()
	if !arm.CheckerOK {
		fmt.Fprintf(os.Stderr, "scale arm n=%d %s/%s checker violations:\n%v\n", n, topoName, transportName, rep)
	}
	return arm, nil
}

func scalePerf(int64) {
	fmt.Println("== E17 · monitoring topology at scale: Full vs RingK beacons, connections, exclusion ==")
	rep := scaleReport{
		GeneratedBy:    "gmpbench -exp scale",
		Env:            captureEnv(),
		HeartbeatMs:    float64(scaleHeartbeat) / float64(time.Millisecond),
		SuspectAfterMs: float64(scaleSuspectAfter) / float64(time.Millisecond),
		WindowMs:       float64(scaleWindow) / float64(time.Millisecond),
		RingK:          scaleK,
	}
	topos := []struct {
		name string
		topo topology.Topology
	}{
		{"full", topology.Full{}},
		{fmt.Sprintf("ring-%d", scaleK), topology.RingK{K: scaleK}},
	}
	byKey := map[string]scaleArm{}
	key := func(n int, topoName, transportName string) string {
		return fmt.Sprintf("%d/%s/%s", n, topoName, transportName)
	}
	for _, n := range scaleSizes() {
		for _, transportName := range []string{"inmem", "tcp"} {
			for _, tp := range topos {
				arm, err := runScaleArm(n, tp.name, tp.topo, transportName)
				if err != nil {
					fmt.Fprintf(os.Stderr, "scale arm n=%d %s/%s: %v\n", n, tp.name, transportName, err)
					continue
				}
				rep.Arms = append(rep.Arms, arm)
				byKey[key(n, tp.name, transportName)] = arm
			}
		}
	}

	w := tw()
	fmt.Fprintln(w, "n\ttransport\ttopology\tbeacons/s\tconns\tfull-mesh\texcl (ms)\tfalse susp\tGMP")
	for _, arm := range rep.Arms {
		verdict := "ok"
		if !arm.CheckerOK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.0f\t%d\t%d\t%.0f\t%d\t%s\n",
			arm.N, arm.Transport, arm.Topology, arm.BeaconsPerSec, arm.ConnsOpen,
			arm.FullMeshConns, arm.ExclMs, arm.FalseSuspects, verdict)
	}
	w.Flush()

	ringName := topos[1].name
	for _, n := range scaleSizes() {
		for _, transportName := range []string{"inmem", "tcp"} {
			full, okF := byKey[key(n, "full", transportName)]
			ring, okR := byKey[key(n, ringName, transportName)]
			if !okF || !okR || ring.BeaconsPerSec == 0 {
				continue
			}
			r := scaleRatio{N: n, Transport: transportName, BeaconRatio: full.BeaconsPerSec / ring.BeaconsPerSec}
			if transportName == "tcp" && ring.ConnsOpen > 0 {
				r.ConnRatio = float64(full.ConnsOpen) / float64(ring.ConnsOpen)
			}
			rep.Ratios = append(rep.Ratios, r)
			if transportName == "tcp" {
				fmt.Printf("n=%-3d tcp: full/ring beacons %.1f×, connections %.1f×\n", n, r.BeaconRatio, r.ConnRatio)
			}
		}
	}
	fmt.Println("note: F1 only needs every faulty process eventually suspected by SOME live member;")
	fmt.Println("      ring-k supplies that with O(n·k) beacons and sockets, and the suspicion-relay")
	fmt.Println("      path carries a monitor's faulty_p(q) to the coordinator it doesn't monitor.")

	if len(mprocSizes()) > 0 {
		rep.MprocHeartbeatMs = float64(mprocHB) / float64(time.Millisecond)
		rep.MprocSuspectAfterMs = float64(mprocSA) / float64(time.Millisecond)
		mprocPerf(&rep)
	}

	if scaleOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scale report:", err)
			return
		}
		if err := os.WriteFile(scaleOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scale report:", err)
			return
		}
		fmt.Println("wrote", scaleOut)
	}
}
