// E22: hostile-timing QoS battery for the failure-detection stack. E16
// scored detectors under stationary link chaos; this experiment drives
// the three timing regimes that actually produced the false-suspicion
// cascade (§4.3) in earlier PRs — links flapping right at the detection
// threshold, stall-and-recover freezes (the GC-pause profile, injected
// with transport.Chaos.StallProcess so §2.1's reliable channels hold),
// and a coordinated churn storm of one site rebirthing as fast as the
// group will let it — across the detector × hysteresis matrix, with the
// readmission governor metering the rebirth storms. Scored in the
// Chen/Toueg QoS vocabulary: detection time (real kills), mistake rate
// and mistake duration (threshold crossings that recover — the peer
// proved itself alive, so the crossing was wrong by construction). The
// output is a Pareto sweep: hysteresis buys mistakes down at a measured
// detection-latency premium, and the experiment certifies the premium
// stays within the acceptance bound on the clean-kill path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/transport"
)

var (
	qosOut       string
	qosMerge     string
	qosWindow    time.Duration
	qosKills     int
	qosScenarios string
)

func qosFlags() {
	flag.StringVar(&qosOut, "qos-out", "", "write the qos experiment's results as standalone JSON to this path")
	flag.StringVar(&qosMerge, "qos-merge", "", "merge the qos report into this existing JSON object (e.g. BENCH_fd.json) under the \"qos\" key")
	flag.DurationVar(&qosWindow, "qos-window", 2*time.Second, "hostile-phase length per arm (flap/stall/churn observation window)")
	flag.IntVar(&qosKills, "qos-kills", 3, "clean-kill cycles per arm (detection-latency samples)")
	flag.StringVar(&qosScenarios, "qos-scenarios", "clean,flap,stall,churn", "comma-separated scenario subset to run")
}

const (
	qosHeartbeat    = 2 * time.Millisecond
	qosSuspectAfter = 20 * time.Millisecond
	// The flap profile sits right at the detection threshold: during the
	// last 22ms of every 60ms period the victim's links drop everything,
	// so a 20ms threshold crosses ~2ms before each burst ends — the
	// worst-case phase for a dwell-free detector.
	qosFlapEvery = 60 * time.Millisecond
	qosFlapFor   = 22 * time.Millisecond
	// The stall profile freezes the victim's wire (frames held, then
	// thawed in order — §2.1 intact) for 30ms every 250ms: silence 10ms
	// past the threshold, then instant recovery.
	qosStallEvery = 250 * time.Millisecond
	qosStallFor   = 30 * time.Millisecond
	// Governor policy for the rebirth storms: one readmission per
	// 300ms per site after the burst token.
	qosReadmitMin = 300 * time.Millisecond
	// qosMaxRegression bounds the detection-latency premium the headline
	// hysteresis setting may cost on the clean-kill path.
	qosMaxRegression = 1.5
)

// qosHystSettings is the hysteresis axis of the matrix. hyst-off is the
// measurement-only passthrough (Dwell 0 changes no behavior but still
// counts crossings and mistakes); hyst-2ms is the headline setting the
// clean-kill regression gate certifies; hyst-16ms is the deep-dwell end
// of the Pareto front, sized to absorb the stall profile outright
// (crossing lifetime stallFor−suspectAfter = 10ms < 16ms).
func qosHystSettings() []struct {
	name  string
	dwell time.Duration
} {
	return []struct {
		name  string
		dwell time.Duration
	}{
		{"hyst-off", 0},
		{"hyst-2ms", 2 * time.Millisecond},
		{"hyst-16ms", 16 * time.Millisecond},
	}
}

// qosArm is one (scenario, detector, hysteresis) cell.
type qosArm struct {
	Scenario   string `json:"scenario"`
	Detector   string `json:"detector"`
	Hysteresis string `json:"hysteresis"`

	// Kill-detection samples (clean and churn scenarios; 0 kills in the
	// flap and stall scenarios, where nobody actually dies).
	Kills        int     `json:"kills"`
	MeanDetectMs float64 `json:"mean_detect_ms"`
	MaxDetectMs  float64 `json:"max_detect_ms"`

	// Detector-level QoS, summed over every node via the shared
	// hysteresis stats. A mistake is a crossing that recovered — the
	// peer proved itself alive, so surfacing it would have been wrong.
	// Beware the survivorship inversion: with hysteresis off a crossing
	// surfaces instantly, the innocent peer is excluded, its detector
	// state is pruned, and the crossing never lives to recover — so the
	// WORST configurations report the FEWEST detector-level mistakes.
	// The group-level damage of a surfaced mistake is Reconfigs: in the
	// flap and stall scenarios nobody actually dies, so every
	// reconfiguration there is cascade fallout.
	Crossings      uint64  `json:"crossings"`
	Confirms       uint64  `json:"confirms"`
	Mistakes       uint64  `json:"mistakes_absorbed"`
	MistakeRate    float64 `json:"mistakes_absorbed_per_sec"`
	MeanMistakeMs  float64 `json:"mean_mistake_ms"`
	Reconfigs      int     `json:"reconfigurations"`
	Admissions     int     `json:"victim_admissions"`
	Deferred       int64   `json:"readmissions_deferred"`
	RateLimitOk    bool    `json:"rate_limit_ok"`
	Survivors      int     `json:"survivors"`
	WindowActualMs float64 `json:"window_ms"`
}

// qosReport is the payload merged into BENCH_fd.json under "qos".
type qosReport struct {
	GeneratedBy  string   `json:"generated_by"`
	Env          benchEnv `json:"env"`
	HeartbeatMs  float64  `json:"heartbeat_ms"`
	SuspectMs    float64  `json:"fixed_suspect_after_ms"`
	WindowMs     float64  `json:"window_ms"`
	KillsPerArm  int      `json:"kills_per_arm"`
	ReadmitMinMs float64  `json:"readmit_min_interval_ms"`
	Arms         []qosArm `json:"arms"`
	// Pareto lists, per hostile scenario, the detector×hysteresis
	// configurations not dominated on (clean-kill detect time, wrongful
	// reconfigurations): every config outside the list is both slower to
	// detect a real kill and costs the group more cascade fallout than
	// something inside it. Churn is excluded — its reconfigurations are
	// real kills, and its verdict is the governor's rate-limit instead.
	Pareto map[string][]string `json:"pareto"`
	// CleanRegression is mean clean-kill detect time of accrual-phi8 at
	// the headline dwell over the same detector with hysteresis off,
	// measured within this run; the acceptance bound is 1.5.
	CleanRegression   float64 `json:"clean_regression_ratio"`
	CleanRegressionOk bool    `json:"clean_regression_ok"`
	// FlapRateLimitOk aggregates rate_limit_ok over every governed arm.
	FlapRateLimitOk bool `json:"flap_rate_limit_ok"`
}

func qosLabel(det, hyst string) string { return det + "/" + hyst }

// runQoSArm boots a 5-node live group with the given detector wrapped in
// the given hysteresis setting over a chaos transport, runs the scenario,
// and reads the arm's QoS off the shared hysteresis stats.
func runQoSArm(scenario, detName string, factory fd.Factory, hystName string, dwell time.Duration, seed int64) (qosArm, error) {
	arm := qosArm{Scenario: scenario, Detector: detName, Hysteresis: hystName}
	stats := &fd.HysteresisStats{}
	tr := transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{Seed: seed})
	governed := scenario == "flap" || scenario == "churn"
	opts := live.Options{
		N:              5,
		HeartbeatEvery: qosHeartbeat,
		SuspectAfter:   qosSuspectAfter,
		Detector: fd.NewHysteresisFactory(factory, fd.HysteresisOptions{
			Dwell: dwell, FlapPenalty: 1, Stats: stats,
		}),
		Transport: tr,
	}
	if governed {
		opts.Readmit = live.ReadmitPolicy{MinInterval: qosReadmitMin, Burst: 1}
	}
	c := live.Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	started := time.Now()
	var detects []time.Duration
	switch scenario {
	case "clean":
		detects = qosCleanKills(c)
	default:
		arm.Admissions = qosHostilePhase(c, tr, scenario, &detects)
	}
	arm.WindowActualMs = float64(time.Since(started)) / float64(time.Millisecond)

	// Heal and settle so the survivor count and reconfiguration tally are
	// read from a quiescent group.
	if v, err := c.WaitConverged(10 * time.Second); err == nil {
		arm.Reconfigs = int(v.Version())
	}
	arm.Survivors = len(c.Running())
	arm.Deferred = c.ReadmitDeferred()

	arm.Kills = len(detects)
	if len(detects) > 0 {
		var sum, max time.Duration
		for _, d := range detects {
			sum += d
			if d > max {
				max = d
			}
		}
		arm.MeanDetectMs = float64(sum/time.Duration(len(detects))) / float64(time.Millisecond)
		arm.MaxDetectMs = float64(max) / float64(time.Millisecond)
	}
	arm.Crossings = stats.Crossings.Load()
	arm.Confirms = stats.Confirms.Load()
	arm.Mistakes = stats.Mistakes.Load()
	if secs := float64(arm.WindowActualMs) / 1000; secs > 0 {
		arm.MistakeRate = float64(arm.Mistakes) / secs
	}
	arm.MeanMistakeMs = float64(stats.MeanMistake()) / float64(time.Millisecond)

	// The governor's ceiling: the burst token plus one refill per
	// MinInterval over the hostile window, plus one for an admission
	// whose grant was open when the window closed.
	arm.RateLimitOk = true
	if governed {
		ceiling := 1 + int(qosWindow/qosReadmitMin) + 1
		arm.RateLimitOk = arm.Admissions <= ceiling
	}
	return arm, nil
}

// qosCleanKills measures the real-kill path: kill the most junior
// non-coordinator, time kill→converged exclusion, rejoin, repeat.
func qosCleanKills(c *live.Cluster) []time.Duration {
	var detects []time.Duration
	inc := uint32(0)
	for cycle := 0; cycle < qosKills; cycle++ {
		v, err := c.WaitConverged(10 * time.Second)
		if err != nil {
			return detects
		}
		running := c.Running()
		victim := ids.Nil
		for i := len(running) - 1; i >= 0; i-- {
			if running[i] != v.Mgr() {
				victim = running[i]
				break
			}
		}
		if victim.IsNil() {
			return detects
		}
		start := time.Now()
		c.Kill(victim)
		if _, err := c.WaitConverged(10 * time.Second); err != nil {
			return detects
		}
		detects = append(detects, time.Since(start))
		inc++
		reborn := ids.ProcID{Site: victim.Site, Incarnation: victim.Incarnation + inc}
		c.Join(reborn, c.Running()[0])
		if _, err := c.WaitConverged(10 * time.Second); err != nil {
			return detects
		}
		// Re-prime every observer's inter-arrival window before the next
		// cycle so adaptive detectors measure steady state, not bootstrap.
		time.Sleep(100 * qosHeartbeat)
	}
	return detects
}

// qosHostilePhase drives one victim site through the scenario's hostile
// timing for qosWindow while a rejoin driver keeps the site coming back
// under fresh incarnations (the readmission governor metering it when
// enabled). Returns the number of committed readmissions; churn kills
// append their detection latencies to detects.
func qosHostilePhase(c *live.Cluster, tr *transport.Chaos, scenario string, detects *[]time.Duration) int {
	victimSite := "p5"
	victim := ids.Named(victimSite)
	if scenario == "flap" {
		qosApplyFlap(tr, c, victim)
	}
	admissions := 0
	nextStall := time.Now()
	settleUntil := time.Now()
	var killedAt time.Time
	joining := false
	deadline := time.Now().Add(qosWindow)
	for time.Now().Before(deadline) {
		time.Sleep(qosHeartbeat)
		contact := ids.Nil
		for _, r := range c.Running() {
			if r.Site != victimSite {
				contact = r
				break
			}
		}
		if contact.IsNil() {
			break // the hostile phase cost the group every other member
		}
		v := c.ViewOf(contact)
		if v == nil {
			continue
		}
		inView := v.Has(victim)
		running := false
		for _, r := range c.Running() {
			if r == victim {
				running = true
				break
			}
		}
		switch {
		case joining && inView:
			admissions++
			joining = false
			settleUntil = time.Now().Add(50 * time.Millisecond)
		case !joining && !inView && !running:
			// Quit (mistaken exclusion, §4.3 self-quit, or our own kill
			// committed): rebirth under the next incarnation.
			if !killedAt.IsZero() {
				*detects = append(*detects, time.Since(killedAt))
				killedAt = time.Time{}
			}
			victim = ids.ProcID{Site: victimSite, Incarnation: victim.Incarnation + 1}
			if scenario == "flap" {
				qosApplyFlap(tr, c, victim)
			}
			c.Join(victim, contact)
			joining = true
		case !joining && inView && running:
			switch scenario {
			case "stall":
				if now := time.Now(); now.After(nextStall) {
					tr.StallProcess(victim, qosStallFor)
					nextStall = now.Add(qosStallEvery)
				}
			case "churn":
				if killedAt.IsZero() && time.Now().After(settleUntil) {
					killedAt = time.Now()
					c.Kill(victim)
				}
			}
		}
	}
	// Heal the victim's links so the closing convergence isn't fighting
	// the chaos profile.
	if scenario == "flap" {
		for _, r := range append(c.Running(), victim) {
			if r.Site != victimSite {
				tr.SetLinkBoth(victim, r, transport.ChaosLink{})
			}
		}
	}
	return admissions
}

// qosApplyFlap points the burst-outage profile at every link touching the
// victim's current incarnation. Chaos links are keyed by ProcID, so each
// rebirth needs the profile re-applied.
func qosApplyFlap(tr *transport.Chaos, c *live.Cluster, victim ids.ProcID) {
	flap := transport.ChaosLink{BurstEvery: qosFlapEvery, BurstFor: qosFlapFor}
	for _, r := range c.Running() {
		if r.Site != victim.Site {
			tr.SetLinkBoth(victim, r, flap)
		}
	}
}

func qosScenarioList() []string {
	var out []string
	for _, s := range strings.Split(qosScenarios, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func qosPerf(seed int64) {
	fmt.Println("== E22 · hostile-timing QoS battery: detector × hysteresis under flap / stall / churn, readmission governed ==")
	rep := qosReport{
		GeneratedBy:  "gmpbench -exp qos",
		Env:          captureEnv(),
		HeartbeatMs:  float64(qosHeartbeat) / float64(time.Millisecond),
		SuspectMs:    float64(qosSuspectAfter) / float64(time.Millisecond),
		WindowMs:     float64(qosWindow) / float64(time.Millisecond),
		KillsPerArm:  qosKills,
		ReadmitMinMs: float64(qosReadmitMin) / float64(time.Millisecond),
		Pareto:       map[string][]string{},
	}

	byKey := map[string]qosArm{} // scenario|label
	scenarios := qosScenarioList()
	for _, scenario := range scenarios {
		for _, det := range fdDetectors() {
			for _, hyst := range qosHystSettings() {
				arm, err := runQoSArm(scenario, det.name, det.factory, hyst.name, hyst.dwell, seed)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qos arm %s %s/%s: %v\n", scenario, det.name, hyst.name, err)
					continue
				}
				rep.Arms = append(rep.Arms, arm)
				byKey[scenario+"|"+qosLabel(det.name, hyst.name)] = arm
			}
		}
	}

	w := tw()
	fmt.Fprintln(w, "scenario\tdetector\thysteresis\tkills\tmean det (ms)\tcrossings\tabsorbed\tmean mistake (ms)\treconfigs\tadmitted\tdeferred\trate-limit")
	for _, a := range rep.Arms {
		rl := "-"
		if a.Scenario == "flap" || a.Scenario == "churn" {
			rl = "ok"
			if !a.RateLimitOk {
				rl = "EXCEEDED"
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.1f\t%d\t%d\t%.1f\t%d\t%d\t%d\t%s\n",
			a.Scenario, a.Detector, a.Hysteresis, a.Kills, a.MeanDetectMs,
			a.Crossings, a.Mistakes, a.MeanMistakeMs, a.Reconfigs,
			a.Admissions, a.Deferred, rl)
	}
	w.Flush()

	// Pareto per hostile scenario: x = the config's clean-kill detection
	// time (its real-kill cost), y = the wrongful reconfigurations the
	// hostile profile extracted from it (nobody dies under flap or
	// stall, so every view change there is cascade fallout). A config is
	// dominated when another is ≤ on both and < on one.
	for _, scenario := range scenarios {
		if scenario == "clean" || scenario == "churn" {
			continue
		}
		type pt struct {
			label    string
			x, y     float64
			hasClean bool
		}
		var pts []pt
		for _, det := range fdDetectors() {
			for _, hyst := range qosHystSettings() {
				label := qosLabel(det.name, hyst.name)
				hostile, ok := byKey[scenario+"|"+label]
				if !ok {
					continue
				}
				clean, hasClean := byKey["clean|"+label]
				x := float64(qosSuspectAfter+hyst.dwell) / float64(time.Millisecond)
				if hasClean && clean.Kills > 0 {
					x = clean.MeanDetectMs
				}
				pts = append(pts, pt{label, x, float64(hostile.Reconfigs), hasClean})
			}
		}
		for _, p := range pts {
			dominated := false
			for _, q := range pts {
				if q.label != p.label && q.x <= p.x && q.y <= p.y && (q.x < p.x || q.y < p.y) {
					dominated = true
					break
				}
			}
			if !dominated {
				rep.Pareto[scenario] = append(rep.Pareto[scenario], p.label)
			}
		}
		fmt.Printf("pareto[%s]: %v\n", scenario, rep.Pareto[scenario])
	}

	// The clean-kill regression gate: the headline dwell on the adaptive
	// detector, against the same detector unwrapped, within this run.
	base, okB := byKey["clean|"+qosLabel("accrual-phi8", "hyst-off")]
	head, okH := byKey["clean|"+qosLabel("accrual-phi8", "hyst-2ms")]
	if okB && okH && base.Kills > 0 && head.Kills > 0 && base.MeanDetectMs > 0 {
		rep.CleanRegression = head.MeanDetectMs / base.MeanDetectMs
		rep.CleanRegressionOk = rep.CleanRegression <= qosMaxRegression
		fmt.Printf("clean-kill regression (accrual hyst-2ms / hyst-off): %.2fx (bound %.1fx) ok=%v\n",
			rep.CleanRegression, qosMaxRegression, rep.CleanRegressionOk)
	}

	rep.FlapRateLimitOk = true
	governedArms := 0
	for _, a := range rep.Arms {
		if a.Scenario == "flap" || a.Scenario == "churn" {
			governedArms++
			rep.FlapRateLimitOk = rep.FlapRateLimitOk && a.RateLimitOk
		}
	}
	if governedArms > 0 {
		fmt.Printf("readmission rate-limit honored across %d governed arms: %v\n", governedArms, rep.FlapRateLimitOk)
	}
	fmt.Println("note: 'absorbed' counts crossings the dwell held until the peer proved itself alive —")
	fmt.Println("      each one a wrongful exclusion that did not happen (with hysteresis off they")
	fmt.Println("      surface as reconfigs instead, which is why the off arms absorb ~0). Hysteresis")
	fmt.Println("      buys fallout down for a bounded clean-kill premium; the governor caps how fast")
	fmt.Println("      a flapping site can bill the survivors for the mistakes that still surface.")

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qos report:", err)
		return
	}
	if qosOut != "" {
		if err := os.WriteFile(qosOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qos report:", err)
			return
		}
		fmt.Println("wrote", qosOut)
	}
	if qosMerge != "" {
		if err := qosMergeInto(qosMerge, rep); err != nil {
			fmt.Fprintln(os.Stderr, "qos merge:", err)
			return
		}
		fmt.Println("merged qos section into", qosMerge)
	}
}

// qosMergeInto reads an existing JSON object (the committed BENCH_fd.json)
// and writes it back with the qos report under the "qos" key, leaving the
// E16 fields untouched.
func qosMergeInto(path string, rep qosReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		return err
	}
	doc["qos"] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
