// E16: failure-detection policy A/B on the live runtime. E15 showed
// exclusion latency is detector-bound (the agreement rounds cost
// microseconds; the fixed 20ms suspect-after threshold dominates), which
// is the paper's §2.2 point that agreement time tracks failure-detection
// latency. This experiment measures the lever that observation exposes:
// the fixed-timeout detector versus the adaptive φ-accrual detector,
// under increasing live link chaos (delivery jitter + beacon loss),
// scoring mean detection→exclusion latency against the false-suspicion
// rate, with the GMP checker certifying every run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/transport"
)

// fd experiment flags.
var (
	fdOut   string
	fdQuiet time.Duration
	fdKills int
)

func fdFlags() {
	flag.StringVar(&fdOut, "fd-out", "", "write the fd experiment's results as JSON to this path (e.g. BENCH_fd.json)")
	flag.DurationVar(&fdQuiet, "fd-quiet", 2*time.Second, "quiet-phase length per arm (false-suspicion observation window)")
	flag.IntVar(&fdKills, "fd-kills", 8, "kill/rejoin cycles per arm (detection-latency samples)")
}

// fdHeartbeat is the beacon interval of every arm; the fixed detector's
// threshold is the live runtime's 20ms default (10 intervals), matching
// the configuration E15 measured.
const (
	fdHeartbeat    = 2 * time.Millisecond
	fdSuspectAfter = 20 * time.Millisecond
)

// fdProfile is one chaos configuration.
type fdProfile struct {
	Name string    `json:"name"`
	Link ChaosSpec `json:"link"`
}

// ChaosSpec is the JSON-friendly mirror of transport.ChaosLink.
type ChaosSpec struct {
	JitterMs   float64 `json:"jitter_ms"`
	BeaconLoss float64 `json:"beacon_loss"`
}

func (s ChaosSpec) link() transport.ChaosLink {
	return transport.ChaosLink{
		Jitter:     time.Duration(s.JitterMs * float64(time.Millisecond)),
		BeaconLoss: s.BeaconLoss,
	}
}

// fdArm is one (detector, profile) measurement.
type fdArm struct {
	Detector string `json:"detector"`
	Profile  string `json:"profile"`
	Kills    int    `json:"kills"`

	MeanDetectMs float64 `json:"mean_detect_ms"`
	MinDetectMs  float64 `json:"min_detect_ms"`
	MaxDetectMs  float64 `json:"max_detect_ms"`

	// FalseSuspects is the number of distinct never-killed processes any
	// node recorded a Faulty event for; FalseEvents counts the raw
	// events (gossip fan-out included). The observation window is the
	// whole arm (quiet phase + kill cycles).
	FalseSuspects int `json:"false_suspects"`
	FalseEvents   int `json:"false_events"`

	CheckerOK bool `json:"checker_ok"`
}

// fdReport is the BENCH_fd.json schema.
type fdReport struct {
	GeneratedBy       string      `json:"generated_by"`
	Env               benchEnv    `json:"env"`
	HeartbeatMs       float64     `json:"heartbeat_ms"`
	FixedTimeoutMs    float64     `json:"fixed_suspect_after_ms"`
	QuietMs           float64     `json:"quiet_ms"`
	KillsPerArm       int         `json:"kills_per_arm"`
	Profiles          []fdProfile `json:"profiles"`
	Arms              []fdArm     `json:"arms"`
	AdaptiveWinsUnder []string    `json:"adaptive_wins_under"`
}

func fdDetectors() []struct {
	name    string
	factory fd.Factory
} {
	return []struct {
		name    string
		factory fd.Factory
	}{
		{"fixed-20ms", fd.NewTimeoutFactory(fdSuspectAfter)},
		{"accrual-phi8", fd.NewAccrualFactory(fd.AccrualOptions{
			Phi:       8,
			MinStdDev: 500 * time.Microsecond,
			Fallback:  fdSuspectAfter,
		})},
	}
}

func fdProfiles() []fdProfile {
	return []fdProfile{
		{Name: "clean", Link: ChaosSpec{}},
		{Name: "jitter-1x", Link: ChaosSpec{JitterMs: 2}},
		{Name: "jitter-4x-loss", Link: ChaosSpec{JitterMs: 8, BeaconLoss: 0.10}},
	}
}

// runFDArm boots a 5-node live group with the given detector over a
// chaos-wrapped in-memory transport, observes a quiet phase, then runs
// kill/rejoin cycles timing kill→converged-exclusion, and finally audits
// the trace for spurious suspicions and GMP.
func runFDArm(detName string, factory fd.Factory, prof fdProfile, seed int64) (fdArm, error) {
	arm := fdArm{Detector: detName, Profile: prof.Name}
	tr := transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{
		Seed:    seed,
		Default: prof.Link.link(),
	})
	c := live.Start(live.Options{
		N:              5,
		HeartbeatEvery: fdHeartbeat,
		SuspectAfter:   fdSuspectAfter,
		Detector:       factory,
		Transport:      tr,
	})
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	// Quiet phase: nobody dies; every suspicion recorded here is false.
	time.Sleep(fdQuiet)

	killed := ids.NewSet()
	var latencies []time.Duration
	inc := uint32(0)
	// A cycle that cannot converge (e.g. a false-suspicion cascade cost
	// the group its majority — the §4.3 safe-blocking regime) ends the
	// arm's sampling but keeps its partial data: that outcome is a
	// finding, not a measurement error.
	abort := func(cycle int, stage string, err error) {
		fmt.Fprintf(os.Stderr, "fd arm %s/%s: cycle %d %s: %v (keeping %d samples)\n",
			detName, prof.Name, cycle, stage, err, len(latencies))
	}
	for cycle := 0; cycle < fdKills; cycle++ {
		v, err := c.WaitConverged(10 * time.Second)
		if err != nil {
			abort(cycle, "pre-kill", err)
			break
		}
		// Kill the most junior member that is not the coordinator so the
		// samples measure the two-phase exclusion path, not
		// reconfiguration.
		running := c.Running()
		victim := ids.Nil
		for i := len(running) - 1; i >= 0; i-- {
			if running[i] != v.Mgr() {
				victim = running[i]
				break
			}
		}
		if victim.IsNil() {
			abort(cycle, "victim selection", fmt.Errorf("no non-coordinator member"))
			break
		}
		start := time.Now()
		c.Kill(victim)
		killed.Add(victim)
		if _, err := c.WaitConverged(10 * time.Second); err != nil {
			abort(cycle, "post-kill", err)
			break
		}
		latencies = append(latencies, time.Since(start))
		// Refill the group so every cycle kills from the same size.
		inc++
		reborn := ids.ProcID{Site: victim.Site, Incarnation: victim.Incarnation + inc}
		c.Join(reborn, c.Running()[0])
		if _, err := c.WaitConverged(10 * time.Second); err != nil {
			abort(cycle, "post-join", err)
			break
		}
		// Pace the cycles so every observer's inter-arrival window is
		// primed with the reborn member's beacons before it can become
		// the next victim: the experiment measures steady-state
		// detection latency, not the detector's bootstrap fallback
		// (which is the fixed timeout by construction).
		time.Sleep(100 * fdHeartbeat)
	}
	if len(latencies) == 0 {
		return arm, fmt.Errorf("no detection-latency samples")
	}

	// Settle before auditing: GMP-5 is a liveness property (every
	// suspicion must resolve in a removal), so a trace snapshotted while
	// a late false suspicion's exclusion is still in flight would read
	// as a violation. Wait until the group is converged and no new
	// Faulty events appeared across a quiet interval.
	countFaulty := func() int {
		n := 0
		for _, e := range c.Recorder().Events() {
			if e.Kind == event.Faulty {
				n++
			}
		}
		return n
	}
	settleDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(settleDeadline) {
		before := countFaulty()
		if _, err := c.WaitConverged(5 * time.Second); err != nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
		if countFaulty() == before {
			break
		}
	}

	// Audit the trace: spurious = Faulty events naming a process we never
	// killed (a falsely suspected process may quit from the resulting
	// exclusion, but it was never actually dead).
	falseTargets := ids.NewSet()
	for _, e := range c.Recorder().Events() {
		if e.Kind == event.Faulty && !killed.Has(e.Other) {
			falseTargets.Add(e.Other)
			arm.FalseEvents++
		}
	}
	arm.FalseSuspects = len(falseTargets.Sorted())
	arm.Kills = len(latencies)

	var sum time.Duration
	min, max := latencies[0], latencies[0]
	for _, l := range latencies {
		sum += l
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	arm.MeanDetectMs = ms(sum / time.Duration(len(latencies)))
	arm.MinDetectMs = ms(min)
	arm.MaxDetectMs = ms(max)

	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	arm.CheckerOK = rep.OK()
	if !arm.CheckerOK {
		fmt.Fprintf(os.Stderr, "fd arm %s/%s checker violations:\n%v\n", detName, prof.Name, rep)
	}
	return arm, nil
}

func fdPerf(seed int64) {
	fmt.Println("== E16 · failure-detection policy A/B: fixed timeout vs φ-accrual under live chaos ==")
	rep := fdReport{
		GeneratedBy:    "gmpbench -exp fd",
		Env:            captureEnv(),
		HeartbeatMs:    float64(fdHeartbeat) / float64(time.Millisecond),
		FixedTimeoutMs: float64(fdSuspectAfter) / float64(time.Millisecond),
		QuietMs:        float64(fdQuiet) / float64(time.Millisecond),
		KillsPerArm:    fdKills,
		Profiles:       fdProfiles(),
	}

	byProfile := map[string]map[string]fdArm{}
	for _, prof := range fdProfiles() {
		byProfile[prof.Name] = map[string]fdArm{}
		for _, det := range fdDetectors() {
			arm, err := runFDArm(det.name, det.factory, prof, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fd arm %s/%s: %v\n", det.name, prof.Name, err)
				continue
			}
			rep.Arms = append(rep.Arms, arm)
			byProfile[prof.Name][det.name] = arm
		}
	}

	w := tw()
	fmt.Fprintln(w, "profile\tdetector\tmean excl (ms)\tmin\tmax\tfalse suspects\tGMP")
	for _, prof := range fdProfiles() {
		for _, det := range fdDetectors() {
			arm, ok := byProfile[prof.Name][det.name]
			if !ok {
				continue
			}
			verdict := "ok"
			if !arm.CheckerOK {
				verdict = "VIOLATED"
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%s\n",
				arm.Profile, arm.Detector, arm.MeanDetectMs, arm.MinDetectMs, arm.MaxDetectMs,
				arm.FalseSuspects, verdict)
		}
	}
	w.Flush()

	// The acceptance comparison: profiles where the adaptive detector is
	// strictly faster at an equal-or-lower false-suspicion count.
	for _, prof := range fdProfiles() {
		fixed, okF := byProfile[prof.Name]["fixed-20ms"]
		adaptive, okA := byProfile[prof.Name]["accrual-phi8"]
		if okF && okA && adaptive.MeanDetectMs < fixed.MeanDetectMs &&
			adaptive.FalseSuspects <= fixed.FalseSuspects &&
			adaptive.CheckerOK && fixed.CheckerOK {
			rep.AdaptiveWinsUnder = append(rep.AdaptiveWinsUnder, prof.Name)
		}
	}
	fmt.Printf("adaptive wins (faster, ≤ false suspicions, GMP ok) under: %v\n", rep.AdaptiveWinsUnder)
	fmt.Println("note: the fixed detector's floor is its threshold (20ms); the accrual detector's")
	fmt.Println("      floor is the link's measured behavior — §2.2's detector-bound agreement time,")
	fmt.Println("      with the bound itself now adaptive.")

	if fdOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fd report:", err)
			return
		}
		if err := os.WriteFile(fdOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fd report:", err)
			return
		}
		fmt.Println("wrote", fdOut)
	}
}
