// E19: the multi-process scale harness. Every in-process experiment runs
// n goroutine nodes inside one Go runtime — one scheduler, one GC, one
// address space — which caps the believable n and lets the runtime hide
// coordination costs a real deployment would pay. This harness makes the
// deployment literal: one OS process per member (fork/exec of this very
// binary's `member` subcommand), real TCP for protocol traffic and real
// UDP for beacons, a line-protocol control channel on each member's
// stdio, and a merged cross-process trace the GMP checker certifies.
//
// The coordinator measures what the n=64 wall is made of: steady-state
// beacon rate, suspicion frames per exclusion (the digest-vs-relay
// comparison), exclusion latency, and false suspicions, at n where the
// single-process harness stops being evidence.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/topology"
	"procgroup/internal/trace"
	"procgroup/internal/transport"
)

// multi-process experiment flags.
var (
	mprocNs   string
	mprocHB   time.Duration
	mprocSA   time.Duration
	mprocAB   int
	mprocHier string
)

func mprocFlags() {
	flag.StringVar(&mprocNs, "scale-mproc-ns", "", "comma-separated group sizes for the multi-process arms of -exp scale (one OS process per member; empty disables), e.g. 128,256,512")
	flag.DurationVar(&mprocHB, "scale-mproc-hb", 250*time.Millisecond, "beacon interval of the multi-process arms")
	flag.DurationVar(&mprocSA, "scale-mproc-sa", 3*time.Second, "suspicion threshold of the multi-process arms")
	flag.IntVar(&mprocAB, "scale-ab-n", 256, "group size at which the digest-vs-relay A/B baseline arm runs (0 disables; must be one of -scale-mproc-ns)")
	flag.StringVar(&mprocHier, "scale-hier", "hier:16:3", "hierarchical topology spec for the multi-process arms")
}

// forceMultiProc raises GOMAXPROCS to at least 2 so the benchmark's
// processes actually overlap: a containerized single-vCPU default would
// otherwise serialize every member through one P and the "multi-core"
// claim in the report's env block would be vacuous.
func forceMultiProc() {
	if n := runtime.NumCPU(); n > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(n)
	}
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
}

// planeCounter counts every frame its inner transport sends — wrapped
// around the UDP beacon plane it measures exactly the beacon-class
// traffic (heartbeats and digests), the denominator of the beacon-rate
// metric.
type planeCounter struct {
	transport.Transport
	n atomic.Int64
}

func (b *planeCounter) Send(from, to ids.ProcID, m transport.Message) {
	b.n.Add(1)
	b.Transport.Send(from, to, m)
}

// memberStats is the per-member report written at DONE, joined by the
// coordinator into the arm's totals and the merged trace's time base.
type memberStats struct {
	StartUnixMicro int64           `json:"start_unix_micro"`
	Transport      transport.Stats `json:"transport"`
}

// lineOut serializes stdout lines: the view-stream goroutine and the
// command loop share the pipe.
type lineOut struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (o *lineOut) printf(format string, args ...any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	fmt.Fprintf(o.w, format+"\n", args...)
	o.w.Flush()
}

// runMember is the `gmpbench member` subcommand: one group member in its
// own OS process, driven by the coordinator over stdin/stdout.
//
//	-> ADDR <tcp> <udp>          after boot: the member's endpoints
//	<- PEER <site> <tcp> <udp>   one per roster member: address wiring
//	<- GO                        install the roster (GMP-0)
//	-> VIEW <ver> <sites,...>    streamed on every view install
//	<- SAMPLE <ms>               count beacon-plane frames for a window
//	-> RATE <frames/s>
//	<- CRASH                     hard-kill the node (host failure)
//	-> CRASHED
//	<- DONE                      write trace+stats files, then exit
//	-> BYE
func runMember(args []string) int {
	fs := flag.NewFlagSet("member", flag.ExitOnError)
	self := fs.String("self", "", "this member's site name")
	n := fs.Int("n", 0, "group size (roster is p1..pn)")
	hb := fs.Duration("hb", 250*time.Millisecond, "beacon interval")
	sa := fs.Duration("sa", 3*time.Second, "suspicion threshold")
	topoSpec := fs.String("topo", "ring:3", "monitoring topology spec")
	digests := fs.String("digests", "auto", "suspicion dissemination: auto (digests on the beacon plane) or off (relay flood)")
	tracePath := fs.String("trace", "", "write the member's event trace (JSONL) here at DONE")
	statsPath := fs.String("stats", "", "write the member's stats (JSON) here at DONE")
	fs.Parse(args)
	forceMultiProc()

	topo, err := topology.Parse(*topoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "member:", err)
		return 1
	}
	mode := live.DigestAuto
	if *digests == "off" {
		mode = live.DigestOff
	}
	selfID := ids.Named(*self)
	roster := ids.Gen(*n)

	tcp := transport.NewTCP()
	udp := transport.NewUDP()
	bc := &planeCounter{Transport: udp}
	c := live.Start(live.Options{
		Self:           selfID,
		Roster:         roster,
		HeartbeatEvery: *hb,
		SuspectAfter:   *sa,
		Transport:      transport.NewTwoPlane(tcp, bc),
		Topology:       topo,
		Digests:        mode,
	})
	defer c.Stop()

	out := &lineOut{w: bufio.NewWriter(os.Stdout)}
	tcpAddr, okT := tcp.Addr(selfID)
	udpAddr, okU := udp.Addr(selfID)
	if !okT || !okU {
		fmt.Fprintln(os.Stderr, "member: endpoints did not open")
		return 1
	}
	out.printf("ADDR %s %s", tcpAddr, udpAddr)

	go func() {
		for u := range c.Updates() {
			sites := make([]string, len(u.Members))
			for i, m := range u.Members {
				sites[i] = m.Site
			}
			out.printf("VIEW %d %s", u.Ver, strings.Join(sites, ","))
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for in.Scan() {
		f := strings.Fields(in.Text())
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "PEER":
			if len(f) != 4 {
				continue
			}
			p := ids.Named(f[1])
			tcp.AddPeer(p, f[2])
			if err := udp.AddPeer(p, f[3]); err != nil {
				fmt.Fprintln(os.Stderr, "member:", err)
			}
		case "GO":
			c.BootstrapSelf()
		case "SAMPLE":
			ms, _ := strconv.Atoi(f[1])
			go func() {
				bc.n.Store(0)
				start := time.Now()
				time.Sleep(time.Duration(ms) * time.Millisecond)
				out.printf("RATE %.2f", float64(bc.n.Load())/time.Since(start).Seconds())
			}()
		case "CRASH":
			c.Kill(selfID)
			out.printf("CRASHED")
		case "DONE":
			st := memberStats{
				StartUnixMicro: c.StartedAt().UnixMicro(),
				Transport:      c.TransportStats(),
			}
			if *tracePath != "" {
				if f, err := os.Create(*tracePath); err == nil {
					c.Recorder().WriteJSONL(f)
					f.Close()
				}
			}
			if *statsPath != "" {
				if blob, err := json.Marshal(st); err == nil {
					os.WriteFile(*statsPath, blob, 0o644)
				}
			}
			out.printf("BYE")
			return 0
		}
	}
	return 0
}

// --- coordinator --------------------------------------------------------------

// viewMsg is one VIEW line from one member.
type viewMsg struct {
	idx   int
	ver   int
	sites string
}

// memberProc is the coordinator's handle on one spawned member.
type memberProc struct {
	site      string
	cmd       *exec.Cmd
	in        io.WriteCloser
	out       io.Reader
	tcpAddr   string
	udpAddr   string
	tracePath string
	statsPath string

	addr    chan [2]string
	rate    chan float64
	crashed chan struct{}
	bye     chan struct{}
	dead    chan struct{}
}

func (m *memberProc) send(line string) {
	io.WriteString(m.in, line+"\n")
}

// read demultiplexes the member's stdout into the typed channels.
func (m *memberProc) read(idx int, views chan<- viewMsg) {
	sc := bufio.NewScanner(m.out)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.SplitN(sc.Text(), " ", 3)
		switch f[0] {
		case "ADDR":
			if len(f) == 3 {
				m.addr <- [2]string{f[1], f[2]}
			}
		case "VIEW":
			if len(f) == 3 {
				ver, _ := strconv.Atoi(f[1])
				views <- viewMsg{idx: idx, ver: ver, sites: f[2]}
			}
		case "RATE":
			if len(f) >= 2 {
				r, _ := strconv.ParseFloat(f[1], 64)
				m.rate <- r
			}
		case "CRASHED":
			close(m.crashed)
		case "BYE":
			close(m.bye)
		}
	}
	close(m.dead)
}

// mprocArmSpec names one multi-process measurement.
type mprocArmSpec struct {
	topoName string
	topoSpec string
	digests  string
}

// runMprocArm spawns one OS process per member, wires their transports,
// bootstraps the group, samples the steady state, crashes the most
// junior member, times the exclusion, then joins every process and
// audits the merged trace.
func runMprocArm(n int, spec mprocArmSpec) (arm scaleArm, err error) {
	arm = scaleArm{
		N: n, Topology: spec.topoName, Transport: "twoplane",
		Mode: "mproc", Digests: spec.digests,
		FullMeshConns: n * (n - 1) / 2,
	}
	dir, err := os.MkdirTemp("", "gmpbench-mproc-")
	if err != nil {
		return arm, err
	}
	defer os.RemoveAll(dir)
	exe, err := os.Executable()
	if err != nil {
		return arm, err
	}
	roster := ids.Gen(n)
	victim := roster[n-1] // most junior, never the coordinator p1

	members := make([]*memberProc, n)
	views := make(chan viewMsg, 8*n)
	defer func() {
		// On any exit path, make sure no child outlives the arm.
		for _, m := range members {
			if m != nil && m.cmd.Process != nil {
				m.cmd.Process.Kill()
			}
		}
		for _, m := range members {
			if m != nil {
				m.cmd.Wait()
			}
		}
	}()

	for i, p := range roster {
		m := &memberProc{
			site:      p.Site,
			tracePath: filepath.Join(dir, p.Site+".trace.jsonl"),
			statsPath: filepath.Join(dir, p.Site+".stats.json"),
			addr:      make(chan [2]string, 1),
			rate:      make(chan float64, 1),
			crashed:   make(chan struct{}),
			bye:       make(chan struct{}),
			dead:      make(chan struct{}),
		}
		m.cmd = exec.Command(exe, "member",
			"-self", p.Site,
			"-n", strconv.Itoa(n),
			"-hb", mprocHB.String(),
			"-sa", mprocSA.String(),
			"-topo", spec.topoSpec,
			"-digests", spec.digests,
			"-trace", m.tracePath,
			"-stats", m.statsPath,
		)
		m.cmd.Stderr = os.Stderr
		m.out, err = m.cmd.StdoutPipe()
		if err != nil {
			return arm, err
		}
		m.in, err = m.cmd.StdinPipe()
		if err != nil {
			return arm, err
		}
		if err := m.cmd.Start(); err != nil {
			return arm, fmt.Errorf("spawn %s: %w", p.Site, err)
		}
		members[i] = m
		go m.read(i, views)
	}

	// Address exchange: collect every member's endpoints, then introduce
	// everyone to everyone and bootstrap.
	for _, m := range members {
		select {
		case a := <-m.addr:
			m.tcpAddr, m.udpAddr = a[0], a[1]
		case <-m.dead:
			return arm, fmt.Errorf("%s exited before reporting its endpoints", m.site)
		case <-time.After(60 * time.Second):
			return arm, fmt.Errorf("%s: no ADDR after 60s", m.site)
		}
	}
	var wires strings.Builder
	for _, m := range members {
		fmt.Fprintf(&wires, "PEER %s %s %s\n", m.site, m.tcpAddr, m.udpAddr)
	}
	for _, m := range members {
		io.WriteString(m.in, wires.String())
		m.send("GO")
	}

	// Bootstrap barrier: every member installs version 0 over the roster.
	latest := make([]viewMsg, n)
	booted := 0
	bootDeadline := time.After(120 * time.Second)
	for booted < n {
		select {
		case v := <-views:
			if latest[v.idx].sites == "" && v.ver == 0 {
				booted++
			}
			latest[v.idx] = v
		case <-bootDeadline:
			return arm, fmt.Errorf("only %d/%d members installed the initial view after 120s", booted, n)
		}
	}

	// Steady state: sample the beacon plane across every member at once.
	window := 3 * time.Second
	for _, m := range members {
		m.send(fmt.Sprintf("SAMPLE %d", int(window/time.Millisecond)))
	}
	var rate float64
	for _, m := range members {
		select {
		case r := <-m.rate:
			rate += r
		case <-m.dead:
			return arm, fmt.Errorf("%s died during the steady-state sample", m.site)
		case <-time.After(window + 60*time.Second):
			return arm, fmt.Errorf("%s: no RATE", m.site)
		}
	}
	arm.BeaconsPerSec = rate

	// Crash the most junior member and time the exclusion: every
	// survivor must install a view without it.
	vi := n - 1
	killAt := time.Now()
	members[vi].send("CRASH")
	select {
	case <-members[vi].crashed:
	case <-time.After(30 * time.Second):
		return arm, fmt.Errorf("victim %s never acknowledged CRASH", victim.Site)
	}
	excluded := func(v viewMsg) bool {
		if v.sites == "" {
			return false
		}
		for _, s := range strings.Split(v.sites, ",") {
			if s == victim.Site {
				return false
			}
		}
		return true
	}
	exclDeadline := time.After(180 * time.Second)
	for {
		all := true
		for i := range latest {
			if i != vi && !excluded(latest[i]) {
				all = false
				break
			}
		}
		if all {
			break
		}
		select {
		case v := <-views:
			latest[v.idx] = v
		case <-exclDeadline:
			if keep := os.Getenv("GMPBENCH_MPROC_KEEP"); keep != "" {
				// Post-mortem aid: drain every member's trace before the
				// deferred kill destroys the evidence, and keep the dir.
				for _, m := range members {
					m.send("DONE")
				}
				for _, m := range members {
					select {
					case <-m.bye:
					case <-m.dead:
					case <-time.After(30 * time.Second):
					}
				}
				saved := filepath.Join(keep, fmt.Sprintf("mproc-%d-%s-%s", n, spec.topoName, spec.digests))
				os.RemoveAll(saved)
				if err := os.Rename(dir, saved); err == nil {
					return arm, fmt.Errorf("survivors did not exclude %s within 180s (traces kept in %s)", victim.Site, saved)
				}
			}
			return arm, fmt.Errorf("survivors did not exclude %s within 180s", victim.Site)
		}
	}
	arm.ExclMs = float64(time.Since(killAt)) / float64(time.Millisecond)

	// Tear down: every member (victim included — its node is dead, its
	// process is not) writes its trace and stats, then exits.
	for _, m := range members {
		m.send("DONE")
	}
	for _, m := range members {
		select {
		case <-m.bye:
		case <-m.dead:
		case <-time.After(60 * time.Second):
			return arm, fmt.Errorf("%s did not write its trace", m.site)
		}
		m.cmd.Wait()
	}

	// Join the evidence: per-member stats sum into the arm's totals, and
	// the per-member traces merge into one run the checker certifies.
	bases := make(map[ids.ProcID]int64, n)
	var conns int64
	for _, m := range members {
		blob, err := os.ReadFile(m.statsPath)
		if err != nil {
			return arm, fmt.Errorf("%s stats: %w", m.site, err)
		}
		var st memberStats
		if err := json.Unmarshal(blob, &st); err != nil {
			return arm, fmt.Errorf("%s stats: %w", m.site, err)
		}
		bases[ids.Named(m.site)] = st.StartUnixMicro
		arm.SuspicionFrames += st.Transport.SuspicionFrames
		conns += st.Transport.ConnsOpen
	}
	// Each established pair link is counted by both endpoints.
	arm.ConnsOpen = conns / 2

	rec, err := mergeTraces(members, bases)
	if err != nil {
		return arm, err
	}
	falseTargets := ids.NewSet()
	for _, e := range rec.Events() {
		if e.Kind == event.Faulty && e.Other != victim {
			falseTargets.Add(e.Other)
		}
	}
	arm.FalseSuspects = falseTargets.Len()
	rep := check.Run(check.Input{
		Recorder: rec,
		Initial:  roster,
		Alive:    func(p ids.ProcID) bool { return p != victim },
	})
	arm.CheckerOK = rep.OK()
	if !arm.CheckerOK {
		fmt.Fprintf(os.Stderr, "mproc arm n=%d %s/%s checker violations:\n%v\n", n, spec.topoName, spec.digests, rep)
	}
	return arm, nil
}

// sendKey identifies a message across the merged traces: msgID counters
// are per-process, so the sender's identity disambiguates collisions.
type sendKey struct {
	sender ids.ProcID
	msgID  int64
}

// mergeTraces replays every member's event stream into one fresh
// recorder, in an order consistent with both each member's own history
// and the send-before-receive causality between them — so the merged
// run's vector clocks (which the cut and knowledge checks consume) are
// exactly the causal structure of the distributed execution. Wall-clock
// times (absolute via each member's reported base) only break ties.
func mergeTraces(members []*memberProc, bases map[ids.ProcID]int64) (*trace.Recorder, error) {
	type tagged struct {
		e   event.Event
		abs int64
	}
	queues := make([][]tagged, 0, len(members))
	sends := make(map[sendKey]bool)
	total := 0
	for _, m := range members {
		f, err := os.Open(m.tracePath)
		if err != nil {
			return nil, fmt.Errorf("%s trace: %w", m.site, err)
		}
		evs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s trace: %w", m.site, err)
		}
		base := bases[ids.Named(m.site)]
		q := make([]tagged, len(evs))
		for i, e := range evs {
			q[i] = tagged{e: e, abs: base + e.Time}
			if e.Kind == event.Send {
				sends[sendKey{e.Proc, e.MsgID}] = true
			}
		}
		queues = append(queues, q)
		total += len(evs)
	}

	var cur int64
	rec := trace.NewRecorder(func() int64 { return cur })
	heads := make([]int, len(queues))
	replayed := make(map[sendKey]bool, len(sends))
	remap := make(map[sendKey]int64, len(sends))
	nextID := int64(0)
	rid := func(k sendKey) int64 {
		id, ok := remap[k]
		if !ok {
			nextID++
			id = nextID
			remap[k] = id
		}
		return id
	}
	for done := 0; done < total; done++ {
		best, forced := -1, -1
		var bestAbs, forcedAbs int64
		for i := range queues {
			if heads[i] >= len(queues[i]) {
				continue
			}
			t := queues[i][heads[i]]
			if forced == -1 || t.abs < forcedAbs {
				forced, forcedAbs = i, t.abs
			}
			if t.e.Kind == event.Recv || t.e.Kind == event.Drop {
				k := sendKey{t.e.Other, t.e.MsgID}
				if sends[k] && !replayed[k] {
					continue // its send has not been replayed yet
				}
			}
			if best == -1 || t.abs < bestAbs {
				best, bestAbs = i, t.abs
			}
		}
		if best == -1 {
			// Every head blocked: possible only on a truncated trace.
			// Replay the earliest anyway rather than dropping history.
			best = forced
		}
		t := queues[best][heads[best]]
		heads[best]++
		cur = t.abs
		e := t.e
		switch e.Kind {
		case event.Start:
			rec.RecordStart(e.Proc)
		case event.Send:
			k := sendKey{e.Proc, e.MsgID}
			rec.RecordSend(e.Proc, e.Other, rid(k), e.Label)
			replayed[k] = true
		case event.Recv:
			rec.RecordRecv(e.Other, e.Proc, rid(sendKey{e.Other, e.MsgID}), e.Label)
		case event.Drop:
			rec.RecordDrop(e.Other, e.Proc, rid(sendKey{e.Other, e.MsgID}), e.Label)
		case event.InstallView:
			rec.RecordInstall(e.Proc, e.Ver, e.Members)
		case event.Faulty:
			rec.RecordInternalLevel(e.Proc, e.Kind, e.Other, e.Level)
		default:
			rec.RecordInternal(e.Proc, e.Kind, e.Other)
		}
	}
	return rec, nil
}

// mprocSizes parses -scale-mproc-ns.
func mprocSizes() []int {
	if mprocNs == "" {
		return nil
	}
	var ns []int
	for _, f := range strings.Split(mprocNs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 3 {
			fmt.Fprintf(os.Stderr, "scale: ignoring multi-process group size %q\n", f)
			continue
		}
		ns = append(ns, n)
	}
	return ns
}

// mprocPerf runs the multi-process arms and appends them (and the
// digest-vs-relay ratio) to the scale report.
func mprocPerf(rep *scaleReport) {
	sizes := mprocSizes()
	if len(sizes) == 0 {
		return
	}
	ringName := fmt.Sprintf("ring-%d", scaleK)
	ringSpec := fmt.Sprintf("ring:%d", scaleK)
	hierName := strings.ReplaceAll(mprocHier, ":", "-")
	fmt.Printf("-- multi-process arms: one OS process per member, beacons on UDP, protocol on TCP (GOMAXPROCS=%d) --\n", runtime.GOMAXPROCS(0))

	byKey := map[string]scaleArm{}
	for _, n := range sizes {
		specs := []mprocArmSpec{
			{topoName: ringName, topoSpec: ringSpec, digests: "auto"},
			{topoName: hierName, topoSpec: mprocHier, digests: "auto"},
		}
		if n == mprocAB {
			// The A/B baseline: same topology and wire, suspicions on
			// the relay flood instead of beacon-borne digests.
			specs = append(specs, mprocArmSpec{topoName: ringName, topoSpec: ringSpec, digests: "off"})
		}
		for _, spec := range specs {
			arm, err := runMprocArm(n, spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mproc arm n=%d %s/%s: %v\n", n, spec.topoName, spec.digests, err)
				continue
			}
			rep.Arms = append(rep.Arms, arm)
			byKey[fmt.Sprintf("%d/%s/%s", n, spec.topoName, spec.digests)] = arm
			fmt.Printf("n=%-4d %-10s digests=%-4s  beacons/s=%-8.0f conns=%-5d excl=%-6.0fms susp-frames=%-5d false=%d GMP=%v\n",
				arm.N, arm.Topology, arm.Digests, arm.BeaconsPerSec, arm.ConnsOpen,
				arm.ExclMs, arm.SuspicionFrames, arm.FalseSuspects, arm.CheckerOK)
		}
	}
	for _, n := range sizes {
		digest, okD := byKey[fmt.Sprintf("%d/%s/auto", n, ringName)]
		relay, okR := byKey[fmt.Sprintf("%d/%s/off", n, ringName)]
		if !okD || !okR || digest.SuspicionFrames == 0 {
			continue
		}
		r := digestRatio{
			N: n, Topology: ringName,
			RelayFrames:  relay.SuspicionFrames,
			DigestFrames: digest.SuspicionFrames,
			Ratio:        float64(relay.SuspicionFrames) / float64(digest.SuspicionFrames),
		}
		rep.DigestRatios = append(rep.DigestRatios, r)
		fmt.Printf("n=%-4d %s: suspicion frames per exclusion — relay %d vs digest %d (%.1f× fewer)\n",
			n, ringName, r.RelayFrames, r.DigestFrames, r.Ratio)
	}
}
