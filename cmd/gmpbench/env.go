// Environment metadata stamped into every BENCH_*.json this tool emits,
// so the perf trajectory across PRs stays comparable: a regression that
// is really a machine change should be visible as one.
package main

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// benchEnv is the shared `env` block of every machine-readable report.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
}

// captureEnv collects the metadata. CPU model and git SHA are best
// effort: absent (not wrong) when the platform or working tree cannot
// provide them.
func captureEnv() benchEnv {
	return benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		GitSHA:     gitSHA(),
	}
}

// cpuModel reads the first "model name" of /proc/cpuinfo (Linux; empty
// elsewhere).
func cpuModel() string {
	blob, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// gitSHA reports the HEAD the benchmark ran against (the commit the
// numbers describe is usually this SHA's child — the one that commits
// the report).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
