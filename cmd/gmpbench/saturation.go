// E18: the bulk-traffic-neighbor saturation arm of the transport
// experiment. One member saturates its link to its monitor with bulk
// frames (a replication stream to a peer). On the single-plane TCP
// wire that member's beacons — its only liveness evidence under ring
// monitoring — share a FIFO channel with the bulk: each beacon drains
// behind megabytes of queued data and coalescing keeps a new sample
// from even enqueueing, so the monitor's φ-accrual fit starves. On the
// two-plane wire the same beacons ride UDP datagrams the flood cannot
// touch. The experiment scores both wires, clean and flooded, on false
// suspicions and kill→exclusion latency, with the GMP checker
// certifying every run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/topology"
	"procgroup/internal/transport"
)

// saturation experiment flags.
var (
	satWarmup time.Duration
	satBulkKB int
)

func satFlags() {
	flag.DurationVar(&satWarmup, "sat-warmup", 1500*time.Millisecond,
		"flooded observation window before the kill (false-suspicion sampling)")
	flag.IntVar(&satBulkKB, "sat-bulk-kb", 64, "bulk frame size in KiB for the saturation arm")
}

// satBulk is the saturating payload: an opaque blob riding the group's
// wire as substrate traffic — the live runtime observes its arrival and
// drops it before the protocol state machine (which does not know it).
type satBulk struct{ Data []byte }

// SubstrateTraffic marks the payload as non-protocol wire traffic.
func (satBulk) SubstrateTraffic() {}

// MsgLabel implements netsim.Labeled for uniform counting.
func (satBulk) MsgLabel() string { return "SatBulk" }

// satBulkKind is the payload's wire kind (≥ 16: substrate layer; 201 is
// gmpbench's beacon, see transport.go).
const satBulkKind = 202

func init() {
	transport.RegisterBinaryPayload(satBulkKind, satBulk{},
		func(e *transport.Encoder, v any) { e.Blob(v.(satBulk).Data) },
		func(d *transport.Decoder) any { return satBulk{Data: d.Blob()} })
}

// satArm is one (wire, flooded?) measurement.
type satArm struct {
	Wire    string `json:"wire"` // "tcp-shared" | "two-plane-udp"
	Flooded bool   `json:"flooded"`

	// ExclusionMs is kill→converged-exclusion for the flooded neighbor;
	// −1 when the victim was falsely excluded before the kill could
	// happen (the strongest possible degradation signal).
	ExclusionMs float64 `json:"exclusion_ms"`
	// FalseSuspects counts distinct processes named by a Faulty event
	// while provably alive; FalseEvents the raw events.
	FalseSuspects int `json:"false_suspects"`
	FalseEvents   int `json:"false_events"`

	BulkFramesSent int64 `json:"bulk_frames_sent"`
	QueueSaturated int64 `json:"queue_saturated_drops"`
	SendQueueMax   int64 `json:"send_queue_max"`

	CheckerOK bool `json:"checker_ok"`
}

// The saturation arms beat slower than E16's 2ms/20ms: the flood burns
// real CPU (encode + writev + decode of the bulk stream), and on small
// GOMAXPROCS that scheduler jitter hits every goroutine. The wider
// cadence keeps compute starvation out of the measurement so what
// remains is the thing under test — where the victim's beacons queue.
const (
	satHeartbeat    = 4 * time.Millisecond
	satSuspectAfter = 40 * time.Millisecond
)

// satDetector is the adaptive detector both wires run: the policy whose
// sample quality the planes differ on.
func satDetector() fd.Factory {
	return fd.NewAccrualFactory(fd.AccrualOptions{
		Phi:       8,
		MinStdDev: 2 * time.Millisecond,
		Fallback:  satSuspectAfter,
	})
}

func satTransport(wire string) transport.Transport {
	if wire == "two-plane-udp" {
		return transport.NewTwoPlane(transport.NewTCP(), transport.NewUDP())
	}
	return transport.NewTCP()
}

// runSatArm boots a 4-node ring-1 group on the given wire, optionally
// has the victim flood its link to its monitor with bulk frames,
// observes a warmup window (every suspicion in it is false — nobody has
// died), kills the victim mid-flood, and times the exclusion.
func runSatArm(wire string, flooded bool) (satArm, error) {
	arm := satArm{Wire: wire, Flooded: flooded}
	c := live.Start(live.Options{
		N:              4,
		HeartbeatEvery: satHeartbeat,
		SuspectAfter:   satSuspectAfter,
		Detector:       satDetector(),
		Transport:      satTransport(wire),
		Topology:       topology.RingK{K: 1},
	})
	defer c.Stop()
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	// Ring-1 over the view's seniority order: members[i] watches
	// members[i+1]. The victim s floods bulk data at its sole monitor w
	// — a replication stream to a peer is the textbook case — so on the
	// single-plane wire the bulk frames and the beacons carrying s's
	// only liveness evidence share one FIFO channel: each beacon queues
	// behind megabytes of bulk, and beacon coalescing means a new
	// sample cannot even enqueue until the previous one drains. Neither
	// process is the coordinator: the samples measure exclusion, not
	// reconfiguration.
	members := v.Members()
	w, s := members[1], members[2]

	stop := make(chan struct{})
	var floodWg sync.WaitGroup
	if flooded {
		floodWg.Add(1)
		go func() {
			defer floodWg.Done()
			data := make([]byte, satBulkKB<<10)
			tr := c.Transport()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Adaptive pacing: keep the stream plane's queues deep
				// enough to exhibit head-of-line delay without tripping
				// the bounded queue's drops into the measurement.
				if c.TransportStats().SendQueueNow > 512 {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				tr.Send(s, w, transport.Message{Payload: satBulk{Data: data}})
				arm.BulkFramesSent++
			}
		}()
	}
	stopFlood := func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		floodWg.Wait()
	}
	defer stopFlood()

	// Warmup/observation window: the flood is live, nobody has died, so
	// every Faulty event recorded before the kill is false.
	time.Sleep(satWarmup)

	countEvents := func() int { return len(c.Recorder().Events()) }
	preKill := countEvents()

	alive := false
	for _, p := range c.Running() {
		if p == s {
			alive = true
		}
	}
	arm.ExclusionMs = -1
	if alive {
		start := time.Now()
		c.Kill(s)
		if _, err := c.WaitConverged(15 * time.Second); err != nil {
			stopFlood()
			return arm, fmt.Errorf("post-kill convergence: %w", err)
		}
		arm.ExclusionMs = float64(time.Since(start)) / float64(time.Millisecond)
	}
	stopFlood()

	// Settle so late suspicions resolve before the audit (GMP-5 is a
	// liveness property; see fd.go's identical wait).
	countFaulty := func() int {
		n := 0
		for _, e := range c.Recorder().Events() {
			if e.Kind == event.Faulty {
				n++
			}
		}
		return n
	}
	settleDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(settleDeadline) {
		before := countFaulty()
		if _, err := c.WaitConverged(5 * time.Second); err != nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
		if countFaulty() == before {
			break
		}
	}

	// Audit: every Faulty event before the kill is false (nobody had
	// died), and after it only the victim is legitimately named.
	falseTargets := ids.NewSet()
	for i, e := range c.Recorder().Events() {
		if e.Kind != event.Faulty {
			continue
		}
		if i < preKill || e.Other != s {
			falseTargets.Add(e.Other)
			arm.FalseEvents++
		}
	}
	arm.FalseSuspects = len(falseTargets.Sorted())

	st := c.TransportStats()
	arm.QueueSaturated = st.QueueSaturated
	arm.SendQueueMax = st.SendQueueMax

	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(4),
		Alive:    running.Has,
	})
	arm.CheckerOK = rep.OK()
	if !arm.CheckerOK {
		fmt.Fprintf(os.Stderr, "saturation arm %s flooded=%v checker violations:\n%v\n", wire, flooded, rep)
	}
	return arm, nil
}

// satPerf runs the four arms and prints the comparison; called from
// transportPerf so the results land in BENCH_transport.json.
func satPerf() []satArm {
	fmt.Println("-- E18 · neighbor-saturation: detector quality per wire plane --")
	var arms []satArm
	for _, wire := range []string{"tcp-shared", "two-plane-udp"} {
		for _, flooded := range []bool{false, true} {
			arm, err := runSatArm(wire, flooded)
			if err != nil {
				fmt.Fprintf(os.Stderr, "saturation arm %s flooded=%v: %v\n", wire, flooded, err)
				continue
			}
			arms = append(arms, arm)
		}
	}
	w := tw()
	fmt.Fprintln(w, "wire\tflooded\texclusion (ms)\tfalse suspects\tbulk frames\tqueue max\tGMP")
	for _, a := range arms {
		verdict := "ok"
		if !a.CheckerOK {
			verdict = "VIOLATED"
		}
		excl := fmt.Sprintf("%.1f", a.ExclusionMs)
		if a.ExclusionMs < 0 {
			excl = "victim falsely excluded"
		}
		fmt.Fprintf(w, "%s\t%v\t%s\t%d\t%d\t%d\t%s\n",
			a.Wire, a.Flooded, excl, a.FalseSuspects, a.BulkFramesSent, a.SendQueueMax, verdict)
	}
	w.Flush()
	fmt.Println("note: on the shared TCP channel the victim's beacons queue FIFO behind its own")
	fmt.Println("      bulk stream (delay + coalescing starve the φ-accrual fit of samples); on")
	fmt.Println("      the UDP beacon plane the same flood cannot touch them.")
	return arms
}
