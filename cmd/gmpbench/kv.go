// E21: the replicated KV store under group-commit load. Every member
// hosts a KV replica on the broadcast layer's view-synchronous total
// order; a windowed client swarm keeps a bounded number of proposals in
// flight through every member over the two-plane wire (UDP beacons + TCP
// streams). The arms sweep the group-commit batch cap (1 = the legacy
// one-frame-per-op wire, bit-for-bit), add a stability-fenced local-read
// arm, and inflict a member crash and a sequencer crash under batching.
// Throughput and latency percentiles quantify the batching win; the
// certification battery is the point — GMP properties, one total order
// across replicas, linearizability of every acknowledged op including
// the fenced local reads (zero acked-write loss).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/check"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
	"procgroup/internal/rsm"
	"procgroup/internal/transport"
)

// kv experiment flags.
var (
	kvOut     string
	kvN       int
	kvClients int
	kvWindow  int
	kvLoad    time.Duration
	kvSweep   string
	kvFloor   float64
	kvDump    string
)

func kvFlags() {
	flag.StringVar(&kvOut, "kv-out", "", "write the kv experiment's results as JSON to this path (e.g. BENCH_kv.json)")
	flag.IntVar(&kvN, "kv-n", 5, "group size per arm")
	flag.IntVar(&kvClients, "kv-clients", 6, "windowed clients per arm")
	flag.IntVar(&kvWindow, "kv-window", 24, "proposals each client keeps in flight")
	flag.DurationVar(&kvLoad, "kv-load", 4*time.Second, "load phase length per arm")
	flag.StringVar(&kvSweep, "kv-sweep", "1,16,128", "comma-separated batch caps for the steady-state sweep; the largest cap is the headline the fault and local-read arms run under")
	flag.Float64Var(&kvFloor, "kv-floor", 0, "minimum acked ops/s the headline steady arm must reach (0 = no gate); reported as floor_ok")
	flag.StringVar(&kvDump, "kv-dump", "", "on a failed certification, dump every replica's processed-record sequence under this directory (one file per replica) for offline diffing")
}

const (
	kvHeartbeat = 10 * time.Millisecond
	// On one core, applying a burst of full batches can starve a
	// member's event loop long enough that a tight threshold reads as
	// silence, a false suspicion cascades (§4.3), and an innocent member
	// stands down mid-arm. The defense is no longer a slack threshold
	// (this was 250ms): the threshold stays tight for real kills and the
	// hysteresis dwell absorbs the starvation transient — a crossing
	// must survive kvDwell of continuous silence before it surfaces, so
	// a stalled-then-resumed member is forgiven while a dead one is
	// still detected in kvSuspectAfter + kvDwell.
	kvSuspectAfter = 80 * time.Millisecond
	kvDwell        = 120 * time.Millisecond
	kvOpTimeout    = 20 * time.Second
)

// kvArm is one fault-profile measurement.
type kvArm struct {
	Name string `json:"name"`
	// Fault documents what the arm inflicts mid-load.
	Fault    string `json:"fault"`
	BatchCap int    `json:"batch_cap"`

	OpsAcked   int     `json:"ops_acked"`
	OpsTimeout int     `json:"ops_timeout"`
	Writes     int     `json:"writes"`
	Reads      int     `json:"reads"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	// Survivors is the group size after the arm (faults and any
	// suspicion-driven departures included) — n means nobody left.
	Survivors int `json:"survivors"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Group-commit internals, summed over replicas.
	PubBatches        uint64 `json:"pub_batches"`
	SeqdBatches       uint64 `json:"seqd_batches"`
	AcksSent          uint64 `json:"acks_sent"`
	AcksSuppressed    uint64 `json:"acks_suppressed"`
	StablePiggybacked uint64 `json:"stable_piggybacked"`
	LocalReads        uint64 `json:"local_reads"`
	SequencedReads    uint64 `json:"sequenced_reads"`
	ReadFallbacks     uint64 `json:"read_fallbacks"`

	// The certification verdicts — the numbers above mean nothing
	// without them.
	GMPOk          bool `json:"gmp_ok"`
	TotalOrderOk   bool `json:"total_order_ok"`
	LinearizableOk bool `json:"linearizable_ok"`
	// ZeroAckedLoss restates the durability half of LinearizableOk for
	// the acceptance grep: every acked write present in the final order.
	ZeroAckedLoss bool `json:"zero_acked_loss"`
}

// kvReport is the BENCH_kv.json schema.
type kvReport struct {
	GeneratedBy  string   `json:"generated_by"`
	Env          benchEnv `json:"env"`
	N            int      `json:"n"`
	Clients      int      `json:"clients"`
	Window       int      `json:"window"`
	LoadMs       float64  `json:"load_ms"`
	HeartbeatMs  float64  `json:"heartbeat_ms"`
	SuspectMs    float64  `json:"suspect_after_ms"`
	DwellMs      float64  `json:"hysteresis_dwell_ms"`
	Transport    string   `json:"transport"`
	BatchSweep   []int    `json:"batch_sweep"`
	Arms         []kvArm  `json:"arms"`
	AllCertified bool     `json:"all_certified"`
	FloorOps     float64  `json:"floor_ops_per_sec"`
	FloorOk      bool     `json:"floor_ok"`
}

// kvHarness is one arm's live group + replicas + client-op log.
type kvHarness struct {
	c   *live.Cluster
	rec *rsm.Recorder

	// abandoned counts proposals whose completion callback never fired
	// within the drain deadline — a replica that left the group takes
	// its clients' pending acks with it. Reported as timeouts.
	abandoned atomic.Int64

	mu    sync.Mutex
	nodes map[ids.ProcID]*rsm.Node
	ops   []rsm.ClientOp
}

// kvBatchCfg maps a batch cap to the broadcast configuration: cap 1 is
// the zero config — the legacy one-frame-per-op wire, bit-for-bit.
func kvBatchCfg(cap int) broadcast.Config {
	if cap <= 1 {
		return broadcast.Config{}
	}
	// Ack granularity tracks the batch cap but stays fine enough that a
	// typical pipeline-paced batch clears the threshold on arrival — the
	// member acks once per received batch instead of idling on the delay
	// timer, which is what keeps stability (and therefore client acks and
	// fence releases) on the batch cadence.
	every := cap
	if every > 16 {
		every = 16
	}
	return broadcast.Config{
		Batch: broadcast.BatchConfig{MaxEntries: cap},
		Ack:   broadcast.AckConfig{Every: every},
	}
}

func startKVHarness(n int, bc broadcast.Config) *kvHarness {
	h := &kvHarness{rec: rsm.NewRecorder(), nodes: make(map[ids.ProcID]*rsm.Node)}
	h.c = live.Start(live.Options{
		N:              n,
		HeartbeatEvery: kvHeartbeat,
		SuspectAfter:   kvSuspectAfter,
		Detector: fd.NewHysteresisFactory(
			fd.NewTimeoutFactory(kvSuspectAfter),
			fd.HysteresisOptions{Dwell: kvDwell, FlapPenalty: 1},
		),
		Transport: transport.NewTwoPlane(transport.NewTCP(), transport.NewUDP()),
		App: func(an live.AppNode) live.AppHook {
			node := rsm.NewNode(an, rsm.Config{Machine: rsm.NewKV(), Recorder: h.rec, Broadcast: bc})
			h.mu.Lock()
			h.nodes[an.ID()] = node
			h.mu.Unlock()
			return node.Hook()
		},
	})
	return h
}

func (h *kvHarness) node(p ids.ProcID) *rsm.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[p]
}

func (h *kvHarness) record(op rsm.ClientOp) {
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// pipeClient keeps up to window proposals in flight through one home
// replica: each completion callback releases a slot, so the group sees a
// steady bounded backlog for the sequencer to coalesce — the open-loop
// shape group commit exists for. Every 4th op is a read; with localReads
// it runs as a synchronous stability-fenced local read (no order
// traffic), otherwise it is sequenced like a write.
func (h *kvHarness) pipeClient(cl int, home ids.ProcID, localReads bool, stop <-chan struct{}) {
	n := h.node(home)
	if n == nil {
		return
	}
	slots := make(chan struct{}, kvWindow)
	for i := 0; i < kvWindow; i++ {
		slots <- struct{}{}
	}
	keys := make([]string, 16)
	for k := range keys {
		keys[k] = fmt.Sprintf("c%d-k%d", cl, k)
	}
	var outstanding atomic.Int64
	for i := 0; ; i++ {
		select {
		case <-stop:
			// Bounded drain: completions fire at stability, and a home
			// replica that stood down mid-run (a false-suspicion cascade
			// can make a member quit itself, §4.3) will never fire them.
			// An unbounded wait here would wedge the whole bench on one
			// dead replica; stragglers are abandoned after the op timeout
			// and reported as timeouts.
			deadline := time.Now().Add(kvOpTimeout)
			for outstanding.Load() > 0 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			h.abandoned.Add(outstanding.Load())
			return
		case <-slots:
		}
		key := keys[i%16]
		if i%4 == 3 && localReads {
			invoke := time.Now().UnixNano()
			res, err := n.Read(rsm.EncodeGet(key), rsm.ReadLocal, kvOpTimeout)
			h.record(rsm.ClientOp{
				Key: key, Val: string(res.Resp),
				Origin: home, PubID: res.PubID,
				Invoke: invoke, Complete: time.Now().UnixNano(),
				Acked: err == nil, Local: res.Local, Fence: res.Fence,
			})
			slots <- struct{}{}
			continue
		}
		write := i%4 != 3
		var cmd []byte
		var val string
		if write {
			val = fmt.Sprintf("c%d-v%d", cl, i)
			cmd = rsm.EncodePut(key, val)
		} else {
			cmd = rsm.EncodeGet(key)
		}
		invoke := time.Now().UnixNano()
		outstanding.Add(1)
		n.ProposeAsync(cmd, func(resp []byte, pubID uint64, err error) {
			op := rsm.ClientOp{
				Write: write, Key: key, Val: val,
				Origin: home, PubID: pubID,
				Invoke: invoke, Complete: time.Now().UnixNano(),
				Acked: err == nil,
			}
			if !write && err == nil {
				op.Val = string(resp)
			}
			h.record(op)
			outstanding.Add(-1)
			slots <- struct{}{}
		})
	}
}

// settle waits until every alive replica's applied sequence ends at the
// same command and the group stops applying (joiner histories are
// suffixes, so lengths may legitimately differ).
func (h *kvHarness) settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last, stableFor := 0, 0
	for time.Now().Before(deadline) {
		fronts := h.rec.Frontiers()
		ends := make(map[rsm.CmdID]bool)
		total := 0
		for _, p := range h.c.Running() {
			f := fronts[p]
			if f.Applied > 0 {
				ends[f.Last] = true
			}
			total += f.Applied
		}
		if len(ends) <= 1 && total == last {
			if stableFor++; stableFor >= 5 {
				return nil
			}
		} else {
			stableFor = 0
		}
		last = total
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("replicas did not settle within %v", timeout)
}

// runKVArm boots a group under the given batch cap, runs the windowed
// swarm for kvLoad, inflicts the arm's fault a third of the way in, then
// quiesces and certifies. victim selects who dies mid-load (nil = steady
// state).
func runKVArm(name, fault string, batchCap int, localReads bool, victim func(v *member.View) ids.ProcID) (kvArm, error) {
	arm := kvArm{Name: name, Fault: fault, BatchCap: batchCap}
	h := startKVHarness(kvN, kvBatchCfg(batchCap))
	defer h.c.Stop()
	v, err := h.c.WaitConverged(15 * time.Second)
	if err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	var victimID ids.ProcID
	if victim != nil {
		victimID = victim(v)
	}
	// Home members for the clients: everyone but the victim, so the swarm
	// measures the group's service through the fault rather than timeouts
	// against a corpse.
	var homes []ids.ProcID
	for _, p := range v.Members() {
		if p != victimID {
			homes = append(homes, p)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cl := 0; cl < kvClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			h.pipeClient(cl, homes[cl%len(homes)], localReads, stop)
		}(cl)
	}

	start := time.Now()
	if victim != nil {
		time.Sleep(kvLoad / 3)
		h.c.Kill(victimID)
		if _, err := h.c.WaitConverged(30 * time.Second); err != nil {
			close(stop)
			wg.Wait()
			return arm, fmt.Errorf("post-%s convergence: %w", fault, err)
		}
	}
	remaining := kvLoad - time.Since(start)
	if remaining > 0 {
		time.Sleep(remaining)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if err := h.settle(30 * time.Second); err != nil {
		return arm, err
	}

	// Tally the swarm's view of the run.
	h.mu.Lock()
	ops := append([]rsm.ClientOp(nil), h.ops...)
	var st rsm.Stats
	for _, n := range h.nodes {
		st = st.Add(n.Stats())
	}
	h.mu.Unlock()
	var lat []time.Duration
	for _, op := range ops {
		if !op.Acked {
			arm.OpsTimeout++
			continue
		}
		arm.OpsAcked++
		if op.Write {
			arm.Writes++
		} else {
			arm.Reads++
		}
		lat = append(lat, time.Duration(op.Complete-op.Invoke))
	}
	arm.OpsTimeout += int(h.abandoned.Load())
	arm.Throughput = float64(arm.OpsAcked) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	arm.P50Ms, arm.P95Ms, arm.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	if len(lat) > 0 {
		arm.MaxMs = float64(lat[len(lat)-1]) / float64(time.Millisecond)
	}
	arm.PubBatches = st.Broadcast.PubBatches
	arm.SeqdBatches = st.Broadcast.SeqdBatches
	arm.AcksSent = st.Broadcast.AcksSent
	arm.AcksSuppressed = st.Broadcast.AcksSuppressed
	arm.StablePiggybacked = st.Broadcast.StablePiggybacked
	arm.LocalReads = st.LocalReads
	arm.SequencedReads = st.SequencedReads
	arm.ReadFallbacks = st.ReadFallbacks

	// Certification: GMP, one total order, linearizability of acked ops
	// (fenced local reads included, via their fence positions).
	running := ids.NewSet(h.c.Running()...)
	arm.Survivors = running.Len()
	rep := check.Run(check.Input{
		Recorder: h.c.Recorder(),
		Initial:  ids.Gen(kvN),
		Alive:    running.Has,
	})
	arm.GMPOk = rep.OK()
	if !arm.GMPOk {
		fmt.Fprintf(os.Stderr, "kv arm %s GMP violations:\n%v\n", name, rep)
	}
	seqs := h.rec.Sequences()
	if err := rsm.CheckTotalOrder(seqs, h.c.Running()); err != nil {
		fmt.Fprintf(os.Stderr, "kv arm %s total order: %v\n", name, err)
	} else {
		arm.TotalOrderOk = true
	}
	// The reference order for linearizability comes from survivors only:
	// a crashed sequencer's record may end in a post-cut suffix the
	// group's surviving history re-sequenced (see CheckTotalOrder).
	aliveSeqs := make(map[ids.ProcID][]rsm.Record, len(seqs))
	for _, p := range h.c.Running() {
		if s, ok := seqs[p]; ok {
			aliveSeqs[p] = s
		}
	}
	if err := rsm.CheckKVLinearizable(ops, rsm.LongestApplied(aliveSeqs)); err != nil {
		fmt.Fprintf(os.Stderr, "kv arm %s linearizability: %v\n", name, err)
	} else {
		arm.LinearizableOk = true
	}
	arm.ZeroAckedLoss = arm.LinearizableOk && arm.TotalOrderOk
	if kvDump != "" && (!arm.GMPOk || !arm.TotalOrderOk || !arm.LinearizableOk) {
		kvDumpSequences(name, seqs)
	}
	return arm, nil
}

// kvDumpSequences writes each replica's processed-record sequence as a
// text file (one slot per line) under -kv-dump, so a red verdict can be
// diffed offline instead of reproduced.
func kvDumpSequences(arm string, seqs map[ids.ProcID][]rsm.Record) {
	for p, recs := range seqs {
		path := fmt.Sprintf("%s/kvseq-%s-%v.txt", kvDump, arm, p)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kv dump:", err)
			return
		}
		for i, r := range recs {
			fmt.Fprintf(f, "%d v%d/%d %v/%d applied=%v\n", i, r.Ver, r.Seq, r.Origin, r.PubID, r.Applied)
		}
		f.Close()
		fmt.Fprintln(os.Stderr, "kv dump:", path)
	}
}

func kvSweepCaps() []int {
	var caps []int
	for _, f := range strings.Split(kvSweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "kv: bad -kv-sweep entry %q, skipping\n", f)
			continue
		}
		caps = append(caps, n)
	}
	if len(caps) == 0 {
		caps = []int{1, 128}
	}
	return caps
}

func kvPerf(seed int64) {
	_ = seed // arms are wall-clock experiments; the swarm is its own schedule
	// The load phase allocates fast (ops log, wire frames, arenas); on one
	// core the default GC cadence steals enough mutator time to distort
	// the tail. Trade heap for schedule fidelity, deterministically rather
	// than via GOGC in the regen recipe.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Println("== E21 · replicated KV under group commit: batch-cap sweep, fenced local reads, faults (two-plane wire) ==")
	caps := kvSweepCaps()
	head := caps[len(caps)-1]
	rep := kvReport{
		GeneratedBy: "gmpbench -exp kv",
		Env:         captureEnv(),
		N:           kvN,
		Clients:     kvClients,
		Window:      kvWindow,
		LoadMs:      float64(kvLoad) / float64(time.Millisecond),
		HeartbeatMs: float64(kvHeartbeat) / float64(time.Millisecond),
		SuspectMs:   float64(kvSuspectAfter) / float64(time.Millisecond),
		DwellMs:     float64(kvDwell) / float64(time.Millisecond),
		Transport:   "two-plane: UDP beacons + TCP streams",
		BatchSweep:  caps,
		FloorOps:    kvFloor,
	}

	type armSpec struct {
		name, fault string
		cap         int
		localReads  bool
		victim      func(v *member.View) ids.ProcID
	}
	var arms []armSpec
	for _, c := range caps {
		arms = append(arms, armSpec{fmt.Sprintf("steady-b%d", c), "none", c, false, nil})
	}
	juniorVictim := func(v *member.View) ids.ProcID {
		m := v.Members()
		for i := len(m) - 1; i >= 0; i-- {
			if m[i] != v.Mgr() {
				return m[i]
			}
		}
		return ids.Nil
	}
	arms = append(arms,
		armSpec{fmt.Sprintf("localread-b%d", head), "none; reads served locally behind the stability fence", head, true, nil},
		armSpec{fmt.Sprintf("crash-b%d", head), "most junior non-sequencer member killed mid-load", head, false, juniorVictim},
		armSpec{fmt.Sprintf("viewchange-b%d", head), "sequencer (view coordinator) killed mid-load", head, false,
			func(v *member.View) ids.ProcID { return v.Mgr() }},
	)

	rep.AllCertified = true
	var headThroughput float64
	for _, a := range arms {
		arm, err := runKVArm(a.name, a.fault, a.cap, a.localReads, a.victim)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv arm %s: %v\n", a.name, err)
			rep.AllCertified = false
			continue
		}
		rep.Arms = append(rep.Arms, arm)
		if !arm.GMPOk || !arm.TotalOrderOk || !arm.LinearizableOk {
			rep.AllCertified = false
		}
		if arm.Name == fmt.Sprintf("steady-b%d", head) {
			headThroughput = arm.Throughput
		}
	}
	rep.FloorOk = kvFloor <= 0 || headThroughput >= kvFloor

	w := tw()
	fmt.Fprintln(w, "arm\tcap\tacked\ttimeout\tops/s\tp50 (ms)\tp95\tp99\tmax\tlocal rd\tGMP\torder\tlin")
	for _, arm := range rep.Arms {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.2f\t%.2f\t%.2f\t%.1f\t%d\t%s\t%s\t%s\n",
			arm.Name, arm.BatchCap, arm.OpsAcked, arm.OpsTimeout, arm.Throughput,
			arm.P50Ms, arm.P95Ms, arm.P99Ms, arm.MaxMs, arm.LocalReads,
			verdict(arm.GMPOk), verdict(arm.TotalOrderOk), verdict(arm.LinearizableOk))
	}
	w.Flush()
	fmt.Println("note: an op acks only at stability (every view member processed it); group commit")
	fmt.Println("      amortizes that round trip over a whole batch, so the sweep shows throughput")
	fmt.Println("      scaling with the cap while cap 1 IS the legacy wire. Local reads never enter")
	fmt.Println("      the order — they fence on stability of the state they read (§2.2, DESIGN §12).")
	fmt.Printf("all arms certified: %v\n", rep.AllCertified)
	if kvFloor > 0 {
		fmt.Printf("throughput floor %.0f ops/s on steady-b%d: %v (measured %.0f)\n", kvFloor, head, rep.FloorOk, headThroughput)
	}

	if kvOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "kv report:", err)
			return
		}
		if err := os.WriteFile(kvOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kv report:", err)
			return
		}
		fmt.Println("wrote", kvOut)
	}
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
