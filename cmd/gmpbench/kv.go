// E20: the replicated KV store under load — the paper's machinery doing
// application work. Every member hosts a KV replica on the broadcast
// layer's view-synchronous total order; a closed-loop client swarm
// drives writes and reads through every member over the two-plane wire
// (UDP beacons + TCP streams) while the arms inflict nothing (steady), a
// member crash, and a sequencer crash (the worst view change: the order
// itself must be flushed and re-sequenced). Throughput and latency
// percentiles quantify the cost; the certification battery is the
// point — GMP properties, one total order across replicas, and
// linearizability of every acknowledged op (zero acked-write loss).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
	"procgroup/internal/rsm"
	"procgroup/internal/transport"
)

// kv experiment flags.
var (
	kvOut     string
	kvN       int
	kvClients int
	kvLoad    time.Duration
)

func kvFlags() {
	flag.StringVar(&kvOut, "kv-out", "", "write the kv experiment's results as JSON to this path (e.g. BENCH_kv.json)")
	flag.IntVar(&kvN, "kv-n", 5, "group size per arm")
	flag.IntVar(&kvClients, "kv-clients", 6, "closed-loop clients per arm")
	flag.DurationVar(&kvLoad, "kv-load", 4*time.Second, "load phase length per arm")
}

const (
	kvHeartbeat    = 10 * time.Millisecond
	kvSuspectAfter = 80 * time.Millisecond
	kvOpTimeout    = 20 * time.Second
)

// kvArm is one fault-profile measurement.
type kvArm struct {
	Name string `json:"name"`
	// Fault documents what the arm inflicts mid-load.
	Fault string `json:"fault"`

	OpsAcked   int     `json:"ops_acked"`
	OpsTimeout int     `json:"ops_timeout"`
	Writes     int     `json:"writes"`
	Reads      int     `json:"reads"`
	Throughput float64 `json:"throughput_ops_per_sec"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// The certification verdicts — the numbers above mean nothing
	// without them.
	GMPOk          bool `json:"gmp_ok"`
	TotalOrderOk   bool `json:"total_order_ok"`
	LinearizableOk bool `json:"linearizable_ok"`
	// ZeroAckedLoss restates the durability half of LinearizableOk for
	// the acceptance grep: every acked write present in the final order.
	ZeroAckedLoss bool `json:"zero_acked_loss"`
}

// kvReport is the BENCH_kv.json schema.
type kvReport struct {
	GeneratedBy  string   `json:"generated_by"`
	Env          benchEnv `json:"env"`
	N            int      `json:"n"`
	Clients      int      `json:"clients"`
	LoadMs       float64  `json:"load_ms"`
	HeartbeatMs  float64  `json:"heartbeat_ms"`
	SuspectMs    float64  `json:"suspect_after_ms"`
	Transport    string   `json:"transport"`
	Arms         []kvArm  `json:"arms"`
	AllCertified bool     `json:"all_certified"`
}

// kvHarness is one arm's live group + replicas + client-op log.
type kvHarness struct {
	c   *live.Cluster
	rec *rsm.Recorder

	mu    sync.Mutex
	nodes map[ids.ProcID]*rsm.Node
	ops   []rsm.ClientOp
}

func startKVHarness(n int) *kvHarness {
	h := &kvHarness{rec: rsm.NewRecorder(), nodes: make(map[ids.ProcID]*rsm.Node)}
	h.c = live.Start(live.Options{
		N:              n,
		HeartbeatEvery: kvHeartbeat,
		SuspectAfter:   kvSuspectAfter,
		Transport:      transport.NewTwoPlane(transport.NewTCP(), transport.NewUDP()),
		App: func(an live.AppNode) live.AppHook {
			node := rsm.NewNode(an, rsm.Config{Machine: rsm.NewKV(), Recorder: h.rec})
			h.mu.Lock()
			h.nodes[an.ID()] = node
			h.mu.Unlock()
			return node.Hook()
		},
	})
	return h
}

func (h *kvHarness) node(p ids.ProcID) *rsm.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[p]
}

// do proposes one command through replica p and logs the client op.
func (h *kvHarness) do(p ids.ProcID, cmd []byte, write bool, key, val string) bool {
	n := h.node(p)
	if n == nil {
		return false
	}
	invoke := time.Now().UnixNano()
	resp, pubID, err := n.Propose(cmd, kvOpTimeout)
	op := rsm.ClientOp{
		Write: write, Key: key, Val: val,
		Origin: p, PubID: pubID,
		Invoke: invoke, Complete: time.Now().UnixNano(),
		Acked: err == nil,
	}
	if !write && err == nil {
		op.Val = string(resp)
	}
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
	return err == nil
}

// settle waits until every alive replica's applied sequence ends at the
// same command and the group stops applying (joiner histories are
// suffixes, so lengths may legitimately differ).
func (h *kvHarness) settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last, stableFor := 0, 0
	for time.Now().Before(deadline) {
		seqs := h.rec.Sequences()
		ends := make(map[rsm.CmdID]bool)
		total := 0
		for _, p := range h.c.Running() {
			a := rsm.AppliedOf(seqs[p])
			if len(a) > 0 {
				ends[rsm.CmdID{Origin: a[len(a)-1].Origin, PubID: a[len(a)-1].PubID}] = true
			}
			total += len(a)
		}
		if len(ends) <= 1 && total == last {
			if stableFor++; stableFor >= 5 {
				return nil
			}
		} else {
			stableFor = 0
		}
		last = total
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("replicas did not settle within %v", timeout)
}

// runKVArm boots a group, runs the closed-loop swarm for kvLoad, inflicts
// the arm's fault a third of the way in, then quiesces and certifies.
// victim selects who dies mid-load (nil = steady state).
func runKVArm(name, fault string, victim func(v *member.View) ids.ProcID) (kvArm, error) {
	arm := kvArm{Name: name, Fault: fault}
	h := startKVHarness(kvN)
	defer h.c.Stop()
	v, err := h.c.WaitConverged(15 * time.Second)
	if err != nil {
		return arm, fmt.Errorf("bootstrap: %w", err)
	}

	var victimID ids.ProcID
	if victim != nil {
		victimID = victim(v)
	}
	// Home members for the clients: everyone but the victim, so the swarm
	// measures the group's service through the fault rather than timeouts
	// against a corpse.
	var homes []ids.ProcID
	for _, p := range v.Members() {
		if p != victimID {
			homes = append(homes, p)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cl := 0; cl < kvClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			home := homes[cl%len(homes)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("c%d-k%d", cl, i%16)
				if i%4 == 3 {
					h.do(home, rsm.EncodeGet(key), false, key, "")
				} else {
					h.do(home, rsm.EncodePut(key, fmt.Sprintf("c%d-v%d", cl, i)), true, key, fmt.Sprintf("c%d-v%d", cl, i))
				}
			}
		}(cl)
	}

	start := time.Now()
	if victim != nil {
		time.Sleep(kvLoad / 3)
		h.c.Kill(victimID)
		if _, err := h.c.WaitConverged(30 * time.Second); err != nil {
			close(stop)
			wg.Wait()
			return arm, fmt.Errorf("post-%s convergence: %w", fault, err)
		}
	}
	remaining := kvLoad - time.Since(start)
	if remaining > 0 {
		time.Sleep(remaining)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if err := h.settle(30 * time.Second); err != nil {
		return arm, err
	}

	// Tally the swarm's view of the run.
	h.mu.Lock()
	ops := append([]rsm.ClientOp(nil), h.ops...)
	h.mu.Unlock()
	var lat []time.Duration
	for _, op := range ops {
		if !op.Acked {
			arm.OpsTimeout++
			continue
		}
		arm.OpsAcked++
		if op.Write {
			arm.Writes++
		} else {
			arm.Reads++
		}
		lat = append(lat, time.Duration(op.Complete-op.Invoke))
	}
	arm.Throughput = float64(arm.OpsAcked) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	arm.P50Ms, arm.P95Ms, arm.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	if len(lat) > 0 {
		arm.MaxMs = float64(lat[len(lat)-1]) / float64(time.Millisecond)
	}

	// Certification: GMP, one total order, linearizability of acked ops.
	running := ids.NewSet(h.c.Running()...)
	rep := check.Run(check.Input{
		Recorder: h.c.Recorder(),
		Initial:  ids.Gen(kvN),
		Alive:    running.Has,
	})
	arm.GMPOk = rep.OK()
	if !arm.GMPOk {
		fmt.Fprintf(os.Stderr, "kv arm %s GMP violations:\n%v\n", name, rep)
	}
	seqs := h.rec.Sequences()
	if err := rsm.CheckTotalOrder(seqs, h.c.Running()); err != nil {
		fmt.Fprintf(os.Stderr, "kv arm %s total order: %v\n", name, err)
	} else {
		arm.TotalOrderOk = true
	}
	if err := rsm.CheckKVLinearizable(ops, rsm.LongestApplied(seqs)); err != nil {
		fmt.Fprintf(os.Stderr, "kv arm %s linearizability: %v\n", name, err)
	} else {
		arm.LinearizableOk = true
	}
	arm.ZeroAckedLoss = arm.LinearizableOk && arm.TotalOrderOk
	return arm, nil
}

func kvPerf(seed int64) {
	_ = seed // arms are wall-clock experiments; the swarm is its own schedule
	fmt.Println("== E20 · replicated KV on the view-synchronous broadcast layer (two-plane wire) ==")
	rep := kvReport{
		GeneratedBy: "gmpbench -exp kv",
		Env:         captureEnv(),
		N:           kvN,
		Clients:     kvClients,
		LoadMs:      float64(kvLoad) / float64(time.Millisecond),
		HeartbeatMs: float64(kvHeartbeat) / float64(time.Millisecond),
		SuspectMs:   float64(kvSuspectAfter) / float64(time.Millisecond),
		Transport:   "two-plane: UDP beacons + TCP streams",
	}

	arms := []struct {
		name, fault string
		victim      func(v *member.View) ids.ProcID
	}{
		{"steady", "none", nil},
		{"crash", "most junior non-sequencer member killed mid-load", func(v *member.View) ids.ProcID {
			m := v.Members()
			for i := len(m) - 1; i >= 0; i-- {
				if m[i] != v.Mgr() {
					return m[i]
				}
			}
			return ids.Nil
		}},
		{"viewchange", "sequencer (view coordinator) killed mid-load", func(v *member.View) ids.ProcID {
			return v.Mgr()
		}},
	}

	rep.AllCertified = true
	for _, a := range arms {
		arm, err := runKVArm(a.name, a.fault, a.victim)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kv arm %s: %v\n", a.name, err)
			rep.AllCertified = false
			continue
		}
		rep.Arms = append(rep.Arms, arm)
		if !arm.GMPOk || !arm.TotalOrderOk || !arm.LinearizableOk {
			rep.AllCertified = false
		}
	}

	w := tw()
	fmt.Fprintln(w, "arm\tacked\ttimeout\tops/s\tp50 (ms)\tp95\tp99\tmax\tGMP\torder\tlin")
	for _, arm := range rep.Arms {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%s\t%s\t%s\n",
			arm.Name, arm.OpsAcked, arm.OpsTimeout, arm.Throughput,
			arm.P50Ms, arm.P95Ms, arm.P99Ms, arm.MaxMs,
			verdict(arm.GMPOk), verdict(arm.TotalOrderOk), verdict(arm.LinearizableOk))
	}
	w.Flush()
	fmt.Println("note: an op acks only at stability (every view member processed it), so p50 is a")
	fmt.Println("      full sequencing round trip; the crash arms' tails are the suspect-after")
	fmt.Println("      threshold plus the flush barrier — detector-bound, like everything else (§2.2).")
	fmt.Printf("all arms certified: %v\n", rep.AllCertified)

	if kvOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "kv report:", err)
			return
		}
		if err := os.WriteFile(kvOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kv report:", err)
			return
		}
		fmt.Println("wrote", kvOut)
	}
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
