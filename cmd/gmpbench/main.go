// gmpbench regenerates every table and figure of the paper's evaluation as
// text. Its output is the source of record for EXPERIMENTS.md.
//
// Usage:
//
//	gmpbench              # run everything
//	gmpbench -exp table1  # one experiment: table1, complexity, worstcase,
//	                      # figures, claims, churn, cuts, ablation, transport
//	gmpbench -seed 7      # change the schedule seed
//	gmpbench -exp transport -transport-out BENCH_transport.json
//	                      # E15 wire-path microbenches, machine-readable
//	gmpbench -exp fd -fd-out BENCH_fd.json
//	                      # E16 failure-detector A/B under live chaos
//	gmpbench -exp scale -scale-out BENCH_scale.json
//	                      # E17 monitoring-topology sweep (Full vs RingK)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"text/tabwriter"

	"procgroup/internal/experiments"
	"procgroup/internal/sim"
)

func main() {
	// `gmpbench member` is the E19 scale harness's per-member process:
	// this same binary, re-executed once per group member.
	if len(os.Args) > 1 && os.Args[1] == "member" {
		os.Exit(runMember(os.Args[2:]))
	}
	forceMultiProc()
	exp := flag.String("exp", "all", "experiment to run: all, table1, complexity, worstcase, figures, claims, churn, cuts, ablation, transport, saturation, fd, scale, kv")
	seed := flag.Int64("seed", 1, "schedule seed")
	flag.StringVar(&transportOut, "transport-out", "", "write the transport experiment's results as JSON to this path (e.g. BENCH_transport.json)")
	fdFlags()
	scaleFlags()
	mprocFlags()
	satFlags()
	kvFlags()
	qosFlags()
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	run := func(name string, fn func(int64)) {
		if *exp == "all" || *exp == name {
			fn(*seed)
			fmt.Println()
		}
	}
	run("table1", table1)
	run("complexity", complexity)
	run("worstcase", worstCase)
	run("figures", figures)
	run("claims", claims)
	run("churn", churn)
	run("cuts", cuts)
	run("ablation", ablation)
	run("transport", transportPerf)
	// Standalone saturation runs skip E15's microbenches (CI smoke);
	// "all" already covers the arms via transportPerf.
	if *exp == "saturation" {
		satPerf()
		fmt.Println()
	}
	run("fd", fdPerf)
	run("qos", qosPerf)
	run("scale", scalePerf)
	run("kv", kvPerf)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1(seed int64) {
	fmt.Println("== E1 · Table 1 (§4.2): multiple reconfiguration initiations ==")
	w := tw()
	fmt.Fprintln(w, "p actual\tq thinks p\tq initiates\tp initiates\tnew Mgr\tGMP")
	for _, r := range experiments.Table1(seed) {
		verdict := "ok"
		if !r.CheckerOK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\t%s\n",
			r.PActual, r.QThinksP, yn(r.QInitiated), yn(r.PInitiated), r.NewMgr, verdict)
	}
	w.Flush()
	fmt.Println("paper:  (No, Yes) (Eventually, No) (Yes, Yes) (Yes, No)")
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func complexity(seed int64) {
	fmt.Println("== E2/E3/E4/E6/E12 · §7.2 message complexity (measured vs paper formula) ==")
	w := tw()
	fmt.Fprintln(w, "n\t2-phase excl\t=3n−5\treconfig\t=5n−9\tcompressed stream\t=(n−1)²\tplain stream\tsymmetric\t=(n−1)²\t1-phase\t=n−2")
	for _, n := range []int{4, 8, 16, 32, 64} {
		tp, tpPaper := experiments.TwoPhaseCost(n, seed)
		rc, rcPaper := experiments.ReconfigCost(n, seed)
		cs, csPaper := experiments.CompressedStreamCost(n, seed)
		ps, _ := experiments.PlainStreamCost(n, seed)
		sy, syPaper := experiments.SymmetricCost(n, seed)
		op, opPaper := experiments.OnePhaseCost(n, seed)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			n, tp, tpPaper, rc, rcPaper, cs, csPaper, ps, sy, syPaper, op, opPaper)
	}
	w.Flush()
	fmt.Println("note: symmetric/GMP ratio exceeds 10× from n≈32 — the paper's \"order of magnitude\".")
}

func worstCase(seed int64) {
	fmt.Println("== E5 · §7.2 worst case: τ successive failed reconfigurations (O(n²)) ==")
	w := tw()
	fmt.Fprintln(w, "n\tτ attempts\treconfig msgs\tsingle reconfig (5n−9)\tratio")
	for _, n := range []int{8, 16, 32, 64} {
		total, tau, err := experiments.WorstCaseChain(n, seed)
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", n, err)
			continue
		}
		single, _ := experiments.ReconfigCost(n, seed)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f×\n", n, tau, total, single, float64(total)/float64(single))
	}
	w.Flush()
	fmt.Println("note: the ratio grows with n — quadratic total, matching the paper's O(|Sys|²).")
}

func figures(seed int64) {
	fmt.Println("== E7/E9 · Figures 3 and 7: interrupted and invisible commits ==")
	for _, v := range []experiments.Verdict{
		experiments.Figure3(seed + 21),
		experiments.Figure7(seed + 23),
	} {
		fmt.Printf("%-36s GMP=%v  %s\n", v.Name, v.CheckerOK, v.Detail)
	}
}

func claims(seed int64) {
	fmt.Println("== E10/E11 · §7.3 impossibility claims ==")
	v71 := experiments.Claim71(seed + 30)
	fmt.Printf("%-44s GMP=%v  %s\n", v71.Name, v71.CheckerOK, v71.Detail)
	two, three := experiments.Claim72(seed + 50)
	fmt.Printf("%-44s GMP=%v  %s\n", two.Name, two.CheckerOK, two.Detail)
	fmt.Printf("%-44s GMP=%v  %s\n", three.Name, three.CheckerOK, three.Detail)
	fmt.Println("paper: one- and two-phase protocols cannot solve GMP; three phases suffice.")
}

func churn(seed int64) {
	fmt.Println("== E13 · §7: online stream of joins and exclusions ==")
	v, msgs := experiments.Churn(seed + 60)
	fmt.Printf("%-36s GMP=%v  %s (%d protocol msgs)\n", v.Name, v.CheckerOK, v.Detail, msgs)
}

func cuts(seed int64) {
	fmt.Println("== E14 · Theorem 6.1: consistent-cut structure of the view sequence ==")
	v := experiments.CutAnalysis(seed + 70)
	fmt.Printf("%-36s GMP=%v  %s\n", v.Name, v.CheckerOK, v.Detail)
}

func ablation(seed int64) {
	fmt.Println("== Ablations: the knobs the paper leaves abstract ==")

	fmt.Println("-- failure-detection latency vs. time to agreement (n=6, ticks) --")
	w := tw()
	fmt.Fprintln(w, "FD latency\texclusion crash→view\treconfig crash→view")
	for _, p := range experiments.DetectionLatencySweep(6, seed, []sim.Time{5, 20, 80, 320}) {
		fmt.Fprintf(w, "%d\t%d\t%d\n", p.DetectDelay, p.ExclusionTime, p.ReconfigTime)
	}
	w.Flush()
	fmt.Println("note: agreement time tracks the detector; the protocol itself never waits on clocks (§2.2).")

	fmt.Println("-- fault-tolerance regimes (n=8) --")
	w = tw()
	fmt.Fprintln(w, "mode\tcrashes\tconverged\tfinal view size\tblocked safely")
	for _, r := range experiments.FaultToleranceAblation(8, seed) {
		fmt.Fprintf(w, "%s\t%d\t%v\t%d\t%v\n", r.Mode, r.Crashes, r.Converged, r.FinalViewSize, r.SurvivorsBlocked)
	}
	w.Flush()
	fmt.Println("paper: the basic algorithm tolerates |Memb|−1 failures (§3.1 Remarks);")
	fmt.Println("       the final algorithm trades that for coordinator fault-tolerance and")
	fmt.Println("       blocks once a majority is lost (§4.3).")

	comp, plain, err := experiments.CompressionAblation(10, seed)
	if err != nil {
		fmt.Println("compression ablation failed:", err)
		return
	}
	fmt.Printf("-- §3.1 round compression (n=10, 3-exclusion burst) --\n")
	fmt.Printf("compressed: %d msgs   plain two-phase: %d msgs   saving: %d\n", comp, plain, plain-comp)
}
