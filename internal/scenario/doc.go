// Package scenario wires protocol nodes to the simulated substrate and
// provides the declarative failure schedules the evaluation runs: crashes,
// crashes in mid-broadcast, spurious suspicions, joins. Tests, benchmarks
// and the cmd tools all build runs through this harness.
package scenario
