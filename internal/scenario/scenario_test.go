package scenario

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
)

func opts(n int, seed int64) Options {
	return Options{N: n, Seed: seed, Config: core.DefaultConfig()}
}

func TestNewBootstrapsEveryNode(t *testing.T) {
	c := New(opts(4, 1))
	if got := len(c.Initial()); got != 4 {
		t.Fatalf("Initial() has %d procs", got)
	}
	for _, p := range c.Initial() {
		n := c.Node(p)
		if n.View() == nil || n.View().Size() != 4 {
			t.Errorf("%v not bootstrapped: %v", p, n.View())
		}
	}
}

func TestProcsOverride(t *testing.T) {
	procs := []ids.ProcID{ids.Named("x"), ids.Named("y"), ids.Named("z")}
	c := New(Options{Procs: procs, Seed: 1, Config: core.DefaultConfig()})
	got := c.Initial()
	for i := range procs {
		if got[i] != procs[i] {
			t.Fatalf("Initial = %v, want %v", got, procs)
		}
	}
	if c.Node(procs[0]).View().Mgr() != ids.Named("x") {
		t.Error("seniority order not taken from Procs")
	}
}

func TestNodePanicsOnUnknown(t *testing.T) {
	c := New(opts(3, 1))
	defer func() {
		if recover() == nil {
			t.Error("Node on unknown id must panic")
		}
	}()
	c.Node(ids.Named("nobody"))
}

func TestAliveTracksCrashAndQuit(t *testing.T) {
	c := New(opts(4, 2))
	procs := c.Initial()
	c.CrashAt(procs[3], 10)
	c.Run()
	if c.Alive(procs[3]) {
		t.Error("crashed process reported alive")
	}
	if !c.Alive(procs[0]) {
		t.Error("live process reported dead")
	}
	if got := len(c.AliveNodes()); got != 3 {
		t.Errorf("AliveNodes = %d, want 3", got)
	}
	if got := len(c.AliveMembers()); got != 3 {
		t.Errorf("AliveMembers = %d, want 3", got)
	}
}

func TestStableViewErrorsOnDivergence(t *testing.T) {
	// Freeze progress by crashing everything; survivors hold v0 so the
	// stable view is v0 — then kill all and expect an error.
	c := New(opts(3, 3))
	for _, p := range c.Initial() {
		c.CrashAt(p, 10)
	}
	c.Run()
	if _, err := c.StableView(); err == nil {
		t.Error("StableView with no live members should fail")
	}
}

func TestRunUntilPartialProgress(t *testing.T) {
	c := New(opts(4, 4))
	procs := c.Initial()
	c.CrashAt(procs[3], 100)
	c.RunUntil(50)
	if got := c.Node(procs[0]).View().Version(); got != 0 {
		t.Errorf("no change should have happened by t=50, at v%d", got)
	}
	c.Run()
	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Version() != 1 {
		t.Errorf("final version %d, want 1", v.Version())
	}
}

func TestCheckInputUsesClusterLiveness(t *testing.T) {
	c := New(opts(4, 5))
	procs := c.Initial()
	c.CrashAt(procs[3], 10)
	c.Run()
	in := c.CheckInput()
	if in.Alive(procs[3]) {
		t.Error("CheckInput.Alive reports crashed process alive")
	}
	if !in.Alive(procs[0]) {
		t.Error("CheckInput.Alive reports live process dead")
	}
	if len(in.Initial) != 4 {
		t.Errorf("CheckInput.Initial = %v", in.Initial)
	}
}
