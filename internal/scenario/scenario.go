package scenario

import (
	"fmt"

	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/netsim"
	"procgroup/internal/sim"
	"procgroup/internal/trace"
)

// Options configures a cluster build.
type Options struct {
	// N is the initial group size (ignored if Procs is set).
	N int
	// Procs overrides the generated initial membership.
	Procs []ids.ProcID
	// Seed drives all randomness (delays, oracle latency).
	Seed int64
	// Config is the protocol configuration shared by every node.
	Config core.Config
	// Delay is the network delay distribution (default uniform 1..10).
	Delay netsim.DelayFn
	// DetectDelay is the oracle's crash-detection latency
	// (default uniform 5..20).
	DetectDelay netsim.DelayFn
	// MuteOracle disables automatic crash→suspicion propagation;
	// adversarial scenarios inject every suspicion by hand.
	MuteOracle bool
}

// Cluster is a group of protocol nodes on the simulated substrate.
type Cluster struct {
	Sched  *sim.Scheduler
	Net    *netsim.Network
	Oracle *fd.Oracle
	Rec    *trace.Recorder

	cfg     core.Config
	initial []ids.ProcID
	nodes   map[ids.ProcID]*core.Node
}

// New builds a bootstrapped cluster.
func New(opts Options) *Cluster {
	procs := opts.Procs
	if procs == nil {
		procs = ids.Gen(opts.N)
	}
	sched := sim.NewScheduler(opts.Seed)
	rec := trace.NewRecorder(func() int64 { return int64(sched.Now()) })
	net := netsim.New(sched, opts.Delay, rec)
	oracle := fd.NewOracle(sched, net, opts.DetectDelay)
	if opts.MuteOracle {
		oracle.Mute()
	}
	c := &Cluster{
		Sched:   sched,
		Net:     net,
		Oracle:  oracle,
		Rec:     rec,
		cfg:     opts.Config,
		initial: procs,
		nodes:   make(map[ids.ProcID]*core.Node, len(procs)),
	}
	for _, p := range procs {
		c.spawn(p)
	}
	for _, p := range procs {
		c.nodes[p].Bootstrap(procs)
	}
	return c
}

func (c *Cluster) spawn(p ids.ProcID) *core.Node {
	n := core.New(p, &env{c: c, id: p}, c.cfg)
	c.nodes[p] = n
	c.Net.Register(p, n.Deliver)
	c.Oracle.Register(p, n.Suspect)
	return n
}

// env adapts the simulated substrate to core.Env.
type env struct {
	c  *Cluster
	id ids.ProcID
}

func (e *env) Send(to ids.ProcID, payload any) { e.c.Net.Send(e.id, to, payload) }

func (e *env) After(d int64, fn func()) (cancel func()) {
	cancelled := false
	e.c.Sched.After(sim.Time(d), func() {
		if !cancelled {
			fn()
		}
	})
	return func() { cancelled = true }
}

func (e *env) Quit() { e.c.Net.Crash(e.id) }

func (e *env) Record(k event.Kind, other ids.ProcID) {
	e.c.Rec.RecordInternal(e.id, k, other)
}

func (e *env) RecordInstall(ver member.Version, members []ids.ProcID) {
	e.c.Rec.RecordInstall(e.id, ver, members)
}

// --- Schedule builders -----------------------------------------------------

// Node returns the node for p.
func (c *Cluster) Node(p ids.ProcID) *core.Node {
	n, ok := c.nodes[p]
	if !ok {
		panic(fmt.Sprintf("scenario: unknown process %v", p))
	}
	return n
}

// Initial returns the bootstrap membership.
func (c *Cluster) Initial() []ids.ProcID {
	out := make([]ids.ProcID, len(c.initial))
	copy(out, c.initial)
	return out
}

// CrashAt schedules a hard crash of p at time t.
func (c *Cluster) CrashAt(p ids.ProcID, t sim.Time) {
	c.Sched.At(t, func() { c.Net.Crash(p) })
}

// CrashDuringBroadcast lets p send k more messages of the given label and
// then kills it mid-broadcast (Figure 3's interrupted commit).
func (c *Cluster) CrashDuringBroadcast(p ids.ProcID, k int, label string) {
	c.Net.CrashAfterSends(p, k, label)
}

// SuspectAt injects faulty_p(q) at time t (spurious if q is alive).
func (c *Cluster) SuspectAt(p, q ids.ProcID, t sim.Time) {
	c.Oracle.Inject(p, q, t)
}

// JoinAt spawns a fresh process that asks contact to sponsor it at time t.
func (c *Cluster) JoinAt(joiner, contact ids.ProcID, t sim.Time) *core.Node {
	n := c.spawn(joiner)
	c.Sched.At(t, func() { n.StartJoin(contact) })
	return n
}

// Run drains the schedule to quiescence and returns the step count.
func (c *Cluster) Run() int64 { return c.Sched.Run() }

// RunUntil advances virtual time to t.
func (c *Cluster) RunUntil(t sim.Time) { c.Sched.RunUntil(t) }

// --- Result extraction ------------------------------------------------------

// Alive reports whether p is executing: not crashed by the environment and
// not halted by the protocol (quit_p).
func (c *Cluster) Alive(p ids.ProcID) bool {
	n, ok := c.nodes[p]
	return ok && n.Alive() && c.Net.Alive(p)
}

// AliveNodes returns the nodes still executing, deterministically ordered.
func (c *Cluster) AliveNodes() []*core.Node {
	var out []*core.Node
	for _, p := range c.procsSorted() {
		if c.Alive(p) {
			out = append(out, c.nodes[p])
		}
	}
	return out
}

// AliveMembers returns ids of nodes still executing and holding a view.
func (c *Cluster) AliveMembers() []ids.ProcID {
	var out []ids.ProcID
	for _, p := range c.procsSorted() {
		if c.Alive(p) && c.nodes[p].View() != nil {
			out = append(out, p)
		}
	}
	return out
}

func (c *Cluster) procsSorted() []ids.ProcID {
	s := ids.NewSet()
	for p := range c.nodes {
		s.Add(p)
	}
	return s.Sorted()
}

// Views returns p's installed view sequence.
func (c *Cluster) Views(p ids.ProcID) []trace.ViewRecord { return c.Rec.ViewLog(p) }

// StableView returns the view every live member agrees on, or an error if
// the group has not converged.
func (c *Cluster) StableView() (*member.View, error) {
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("scenario: no live members")
	}
	var ref *member.View
	for _, n := range alive {
		v := n.View()
		if v == nil {
			continue
		}
		if ref == nil {
			ref = v
			continue
		}
		if !ref.Equal(v) {
			return nil, fmt.Errorf("scenario: views diverge: %v vs %v", ref, v)
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("scenario: no live member holds a view")
	}
	return ref, nil
}

// Messages sums the recorded sends for the given labels (all when empty).
func (c *Cluster) Messages(labels ...string) int { return c.Rec.MessagesSent(labels...) }

// CheckInput packages the finished run for the GMP property checker.
func (c *Cluster) CheckInput() check.Input {
	return check.Input{
		Recorder: c.Rec,
		Initial:  c.Initial(),
		Alive:    c.Alive,
	}
}

// Check runs the GMP property checker over the recorded run.
func (c *Cluster) Check() *check.Report { return check.Run(c.CheckInput()) }
