package live

import (
	"math"

	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// DigestEntry is one suspicion inside a batched digest: the suspect's
// identity (the ProcID carries the incarnation, so a rejoined process is
// never confused with its dead predecessor) and the detector confidence
// the suspicion was raised with.
type DigestEntry struct {
	Suspect ids.ProcID
	Level   float64
}

// SuspicionDigest batches pending suspicions onto a beacon slot. Under
// digest dissemination (beacon plane + partial topology) a node with
// pending suspicions replaces the pure heartbeats it owes its monitors
// with digests: the frame still proves the sender alive (receivers feed
// it to the detector exactly like a Heartbeat), and the entries carry
// every suspicion the sender has not yet shown that monitor. Each entry
// travels each beacon edge at most once, so disseminating f suspicions
// costs O(n·k) digest entries on frames the wheel was sending anyway —
// against the relay flood's O(n·deg) dedicated FaultyReport frames.
type SuspicionDigest struct {
	Entries []DigestEntry
}

// MsgLabel implements netsim.Labeled for uniform counting.
func (SuspicionDigest) MsgLabel() string { return "SuspicionDigest" }

// digestKind is the digest's wire kind tag, next to heartbeatKind in the
// substrate range (≥ 16).
const digestKind = 17

func init() {
	transport.RegisterPayload(SuspicionDigest{}) // gob escape hatch
	// The digest is a beacon (it rides the datagram plane at cadence and
	// doubles as liveness evidence) but Volatile — its entries change
	// between sends, so the per-channel beacon byte caches must not
	// replay a stale first encoding — and Suspicion, so transports count
	// its frames against the dissemination budget.
	transport.RegisterClassedPayload(digestKind, SuspicionDigest{},
		func(e *transport.Encoder, v any) {
			d := v.(SuspicionDigest)
			e.Uvarint(uint64(len(d.Entries)))
			for _, en := range d.Entries {
				e.String(en.Suspect.Site)
				e.Uvarint(uint64(en.Suspect.Incarnation))
				e.Float64(en.Level)
			}
		},
		func(d *transport.Decoder) any {
			// Minimum entry wire size: 1-byte site length + 1-byte
			// incarnation + 8-byte level.
			n := d.Count(10)
			if n == 0 {
				return SuspicionDigest{}
			}
			entries := make([]DigestEntry, 0, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				site := d.String()
				inc := d.Uvarint()
				level := d.Float64()
				if inc > math.MaxUint32 {
					continue // corrupt incarnation: drop the entry
				}
				entries = append(entries, DigestEntry{
					Suspect: ids.ProcID{Site: site, Incarnation: uint32(inc)},
					Level:   level,
				})
			}
			return SuspicionDigest{Entries: entries}
		},
		transport.PayloadClass{Beacon: true, Volatile: true, Suspicion: true})
}

// digestPending is one suspicion waiting to ride this node's beacons:
// its level, and the beacon targets it has already been shown (each
// beacon edge carries an entry at most once — the digest analogue of the
// relay's per-(suspect, target) dedup).
type digestPending struct {
	level float64
	sent  ids.Set
}

// queueDigest enters a suspicion into the outgoing digest batch
// (loop-owned; called via core's SuspicionGossiper hook and marks the
// suspect seen so a later digest echoing it back is not re-absorbed).
func (ln *liveNode) queueDigest(q ids.ProcID, level float64) {
	ln.digestSeen.Add(q)
	if _, ok := ln.digestOut[q]; !ok {
		ln.digestOut[q] = &digestPending{level: level, sent: ids.NewSet()}
	}
}

// pendingFor collects the digest entries owed to beacon target m and
// marks them sent. Nil when m has seen everything pending.
func (ln *liveNode) pendingFor(m ids.ProcID) []DigestEntry {
	var out []DigestEntry
	for q, p := range ln.digestOut {
		if p.sent.Has(m) {
			continue
		}
		p.sent.Add(m)
		out = append(out, DigestEntry{Suspect: q, Level: p.level})
	}
	return out
}

// absorbDigest applies a received digest: each unseen entry is adopted
// through core.GossipSuspectWithLevel, which re-queues it for this
// node's own beacons — the hop that floods the digest across the
// monitoring topology. digestSeen bounds the echo: a suspect is absorbed
// once per view, no matter how many digests repeat it.
func (ln *liveNode) absorbDigest(d SuspicionDigest) {
	for _, en := range d.Entries {
		q := en.Suspect
		if q == ln.id || ln.digestSeen.Has(q) {
			continue
		}
		ln.digestSeen.Add(q)
		ln.node.GossipSuspectWithLevel(q, en.Level)
	}
}

// pruneDigests re-intersects the digest state with an installed view:
// entries for processes no longer in the view are complete (the
// exclusion they argued for happened) and seen-marks for them would only
// leak — a rejoining process returns under a fresh incarnation, so
// dropping the old id can never suppress a live suspicion.
func (ln *liveNode) pruneDigests(members ids.Set) {
	for q := range ln.digestOut {
		if !members.Has(q) {
			delete(ln.digestOut, q)
		}
	}
	for _, q := range ln.digestSeen.Sorted() {
		if !members.Has(q) {
			ln.digestSeen.Remove(q)
		}
	}
}
