package live

import (
	"testing"
	"time"

	"procgroup/internal/ids"
)

var rt0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestReadmitGovUnknownSiteAdmitted: a site never excluded on our watch is
// outside the governed window entirely.
func TestReadmitGovUnknownSiteAdmitted(t *testing.T) {
	g := newReadmitGov(ReadmitPolicy{MinInterval: 100 * time.Millisecond})
	g.noteInstall(ids.Gen(3), rt0)
	if ok, _ := g.admit(ids.ProcID{Site: "p9"}, rt0); !ok {
		t.Fatal("never-excluded site deferred")
	}
}

// TestReadmitGovBurstThenDefer: the first exclusion fills the bucket, so a
// one-off restart is admitted instantly; the next incarnation inside
// MinInterval is deferred with the remaining wait reported.
func TestReadmitGovBurstThenDefer(t *testing.T) {
	g := newReadmitGov(ReadmitPolicy{MinInterval: 100 * time.Millisecond, Burst: 1})
	members := ids.Gen(3)
	g.noteInstall(members, rt0)
	g.noteInstall(members[:2], rt0) // p3 excluded: bucket opens full

	inc1 := ids.ProcID{Site: "p3", Incarnation: 1}
	if ok, _ := g.admit(inc1, rt0); !ok {
		t.Fatal("burst token not honored")
	}
	// Re-consulting the same incarnation before its add commits must not
	// pay a second token (nextOp runs several times per round).
	if ok, _ := g.admit(inc1, rt0); !ok {
		t.Fatal("open grant not honored on re-consult")
	}
	g.noteInstall(append(members[:2:2], inc1), rt0) // add commits: grant consumed
	g.noteInstall(members[:2], rt0.Add(10*time.Millisecond))

	inc2 := ids.ProcID{Site: "p3", Incarnation: 2}
	ok, wait := g.admit(inc2, rt0.Add(20*time.Millisecond))
	if ok {
		t.Fatal("empty bucket admitted the flapper")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait = %v, want in (0, MinInterval]", wait)
	}
	// After the reported wait a token has accrued.
	if ok, _ := g.admit(inc2, rt0.Add(20*time.Millisecond).Add(wait)); !ok {
		t.Fatal("token did not refill after the reported wait")
	}
}

// TestReadmitGovForgetExpires: a site quiet for Forget leaves the governed
// window and rejoins ungoverned.
func TestReadmitGovForgetExpires(t *testing.T) {
	g := newReadmitGov(ReadmitPolicy{MinInterval: 100 * time.Millisecond, Forget: 300 * time.Millisecond})
	members := ids.Gen(2)
	g.noteInstall(members, rt0)
	g.noteInstall(members[:1], rt0)

	inc := ids.ProcID{Site: "p2", Incarnation: 1}
	if ok, _ := g.admit(inc, rt0); !ok { // burst
		t.Fatal("burst token not honored")
	}
	g.noteInstall(append(members[:1:1], inc), rt0)
	g.noteInstall(members[:1], rt0.Add(time.Millisecond))

	late := rt0.Add(500 * time.Millisecond)
	if ok, _ := g.admit(ids.ProcID{Site: "p2", Incarnation: 2}, late); !ok {
		t.Fatal("Forget-expired site still governed")
	}
	if len(g.sites) != 0 {
		t.Fatalf("expired record not pruned: %d sites", len(g.sites))
	}
}

// TestReadmitGovDisabledIsNil: the zero policy yields a nil governor whose
// methods are no-ops that admit everything.
func TestReadmitGovDisabledIsNil(t *testing.T) {
	g := newReadmitGov(ReadmitPolicy{})
	if g != nil {
		t.Fatal("zero policy built a governor")
	}
	g.noteInstall(ids.Gen(2), rt0) // must not panic
	if ok, _ := g.admit(ids.Named("p1"), rt0); !ok {
		t.Fatal("nil governor deferred")
	}
}

// TestReadmitRateLimitsFlappingSite drives the full runtime: a site that is
// excluded, readmitted, and excluded again must have its next incarnation
// deferred by the governor — and still admitted once the bucket refills,
// with no protocol traffic needed to wake the coordinator.
func TestReadmitRateLimitsFlappingSite(t *testing.T) {
	opts := fast(4)
	opts.Readmit = ReadmitPolicy{MinInterval: 1500 * time.Millisecond, Burst: 1}
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	flapper := ids.Named("p4")
	c.Kill(flapper)
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// First rebirth spends the burst token: admitted without delay.
	inc1 := ids.ProcID{Site: "p4", Incarnation: 1}
	c.Join(inc1, ids.Named("p1"))
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(inc1) {
		t.Fatalf("burst readmission missing from view %v", v)
	}
	if d := c.ReadmitDeferred(); d != 0 {
		t.Fatalf("burst readmission was deferred %d times", d)
	}

	c.Kill(inc1)
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Second rebirth finds an empty bucket: it must be deferred for a
	// while, then admitted by the refill wake alone.
	inc2 := ids.ProcID{Site: "p4", Incarnation: 2}
	start := time.Now()
	c.Join(inc2, ids.Named("p1"))
	deadline := time.Now().Add(15 * time.Second)
	for {
		if v := c.ViewOf(ids.Named("p1")); v != nil && v.Has(inc2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rate-limited joiner never admitted; deferred %d times", c.ReadmitDeferred())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.ReadmitDeferred() == 0 {
		t.Error("flapping site readmitted without a single deferral")
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Errorf("flapper readmitted after only %v, want a governed delay", waited)
	}
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
