package live

import (
	"testing"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/ids"
	"procgroup/internal/topology"
	"procgroup/internal/transport"
)

// bench-free unit coverage of the digest batch: the per-edge dedup, the
// absorb echo bound, and the install-time prune are what keep digest
// dissemination at O(n·k) entries instead of a re-flood per beat.

func digestNode() *liveNode {
	return &liveNode{
		id:         ids.Named("p1"),
		digestOut:  make(map[ids.ProcID]*digestPending),
		digestSeen: ids.NewSet(),
	}
}

func TestDigestEntryCrossesEachEdgeOnce(t *testing.T) {
	ln := digestNode()
	suspect := ids.Named("p9")
	m1, m2 := ids.Named("p2"), ids.Named("p3")

	ln.queueDigest(suspect, 0.7)
	ln.queueDigest(suspect, 0.9) // re-queue: must not reset the sent marks

	got := ln.pendingFor(m1)
	if len(got) != 1 || got[0].Suspect != suspect || got[0].Level != 0.7 {
		t.Fatalf("pendingFor(m1) = %v, want one entry for %v at level 0.7", got, suspect)
	}
	// The same edge never carries the same entry twice.
	if again := ln.pendingFor(m1); again != nil {
		t.Errorf("second pendingFor(m1) = %v, want nil", again)
	}
	// A different edge still gets it once.
	if got := ln.pendingFor(m2); len(got) != 1 {
		t.Errorf("pendingFor(m2) = %v, want one entry", got)
	}
	if again := ln.pendingFor(m2); again != nil {
		t.Errorf("second pendingFor(m2) = %v, want nil", again)
	}
}

func TestDigestQueueMarksSeen(t *testing.T) {
	// A suspicion this node itself queued must also count as seen, so a
	// digest echoing it back from a neighbor is not re-absorbed into core.
	ln := digestNode()
	ln.queueDigest(ids.Named("p7"), 1)
	if !ln.digestSeen.Has(ids.Named("p7")) {
		t.Fatal("queued suspect not marked seen")
	}
}

func TestDigestAbsorbSkipsSelfAndSeen(t *testing.T) {
	ln := digestNode()
	ln.node = nil // absorb must not reach core for self/seen entries
	seen := ids.Named("p5")
	ln.digestSeen.Add(seen)
	// Both entries are skipped before core is consulted; reaching core
	// with ln.node == nil would panic the test.
	ln.absorbDigest(SuspicionDigest{Entries: []DigestEntry{
		{Suspect: ln.id, Level: 1},
		{Suspect: seen, Level: 1},
	}})
	if ln.digestSeen.Has(ln.id) {
		t.Error("self entry entered the seen set")
	}
}

func TestDigestPruneDropsDepartedSuspects(t *testing.T) {
	ln := digestNode()
	stay, gone := ids.Named("p4"), ids.Named("p8")
	ln.queueDigest(stay, 0.5)
	ln.queueDigest(gone, 0.5)
	ln.pruneDigests(ids.NewSet(ln.id, stay))
	if _, ok := ln.digestOut[gone]; ok {
		t.Error("excluded suspect survived the install prune in digestOut")
	}
	if ln.digestSeen.Has(gone) {
		t.Error("excluded suspect survived the install prune in digestSeen")
	}
	if _, ok := ln.digestOut[stay]; !ok || !ln.digestSeen.Has(stay) {
		t.Error("in-view suspect was pruned")
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	// The digest's compact binary form (varint count, then per entry
	// site/incarnation/level) must survive the frame codec exactly —
	// it is the payload the UDP plane actually moves at scale.
	d := SuspicionDigest{Entries: []DigestEntry{
		{Suspect: ids.ProcID{Site: "p3", Incarnation: 2}, Level: 0.875},
		{Suspect: ids.Named("p11"), Level: 1},
	}}
	blob, err := transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Body: d})
	if err != nil {
		t.Fatal(err)
	}
	f, err := transport.DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := f.Body.(SuspicionDigest)
	if !ok {
		t.Fatalf("decoded to %T", f.Body)
	}
	if len(got.Entries) != 2 || got.Entries[0] != d.Entries[0] || got.Entries[1] != d.Entries[1] {
		t.Errorf("round trip %+v, want %+v", got, d)
	}
	// Empty digest: legal on the wire, decodes to no entries.
	blob, err = transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Body: SuspicionDigest{}})
	if err != nil {
		t.Fatal(err)
	}
	f, err = transport.DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := f.Body.(SuspicionDigest).Entries; len(e) != 0 {
		t.Errorf("empty digest decoded to %v", e)
	}
}

// --- Digest dissemination end to end -----------------------------------------

func digestOpts(n, k int) Options {
	opts := twoPlaneFast(n)
	opts.Topology = topology.RingK{K: k}
	return opts
}

func TestDigestGossipExcludesKilledMember(t *testing.T) {
	// Ring-2 over the two-plane wire: digest dissemination is active
	// (beacon plane + partial topology), so a kill must be excluded with
	// the suspicion spread by digests riding beacons — and the transports
	// must account those frames under SuspicionFrames.
	c := Start(digestOpts(8, 2))
	defer c.Stop()
	if !c.digests {
		t.Fatal("digest dissemination not enabled over a beacon plane")
	}
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p5")) {
		t.Fatalf("victim still in %v", v)
	}
	if st := c.TransportStats(); st.SuspicionFrames == 0 {
		t.Errorf("exclusion spread without any counted suspicion frames: %+v", st)
	}
	checkGMP(t, c, 8)
}

func TestDigestCoordinatorDeathReconfigures(t *testing.T) {
	// Kill the coordinator under ring-1 + digests: only one member
	// observes the death first-hand, and the heir (who must initiate
	// reconfiguration) learns of it through the digest flood plus the
	// point-to-point heir unicast — the one hop digests deliberately
	// keep point-to-point, because the heir cannot wait a flood's worth
	// of beacon intervals to learn it is in charge.
	c := Start(digestOpts(6, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	v, err := c.WaitConverged(25 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) {
		t.Fatalf("dead coordinator still in %v", v)
	}
	if v.Mgr() != ids.Named("p2") {
		t.Errorf("Mgr = %v, want p2", v.Mgr())
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(6),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("digest coordinator churn violates GMP:\n%v", rep)
	}
}

func TestDigestOffFallsBackToRelay(t *testing.T) {
	// DigestOff is the A/B baseline the benchmark compares against: the
	// beacon plane stays, but suspicions travel the relay flood — and
	// exclusions must still complete.
	opts := digestOpts(6, 2)
	opts.Digests = DigestOff
	c := Start(opts)
	defer c.Stop()
	if c.digests {
		t.Fatal("DigestOff did not disable digest dissemination")
	}
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p4"))
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p4")) {
		t.Fatalf("victim still in %v", v)
	}
	checkGMP(t, c, 6)
}
