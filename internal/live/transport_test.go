package live

import (
	"testing"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// tcpFast returns options running the cluster over real TCP loopback
// sockets. The suspicion margin is wider than inmem's: socket delivery
// adds codec and syscall latency, and the race detector inflates both.
func tcpFast(n int) Options {
	return Options{
		N:              n,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
		Transport:      transport.NewTCP(),
	}
}

// TestTCPBootstrapConverges: the initial view forms over real sockets.
func TestTCPBootstrapConverges(t *testing.T) {
	c := Start(tcpFast(5))
	defer c.Stop()
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 5 || v.Version() != 0 {
		t.Errorf("initial view %v", v)
	}
}

// TestTCPChurnSatisfiesGMP runs a join + crash churn over TCP loopback and
// checks the accumulated trace against the GMP properties.
func TestTCPChurnSatisfiesGMP(t *testing.T) {
	c := Start(tcpFast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Join(ids.Named("q1"), ids.Named("p2"))
	if _, err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	if _, err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1")) // the coordinator: forces a reconfiguration
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) || v.Has(ids.Named("p5")) || !v.Has(ids.Named("q1")) {
		t.Errorf("final view %v", v)
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("TCP churn violates GMP:\n%v", rep)
	}
}

// TestLossyClusterConverges boots the group over the adversarial datagram
// link repaired by the alternating-bit channel layer and excludes a killed
// member — the paper's §3 substrate claim, end-to-end under churn.
func TestLossyClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-link soak skipped in -short mode")
	}
	c := Start(Options{
		N:              3,
		HeartbeatEvery: 25 * time.Millisecond,
		SuspectAfter:   250 * time.Millisecond,
		Transport: transport.NewLossy(transport.LossyOptions{
			Loss: 0.05, Dup: 0.02,
			MinDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
			RTO: 8 * time.Millisecond, Seed: 3,
		}),
	})
	defer c.Stop()
	if _, err := c.WaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p3"))
	v, err := c.WaitConverged(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p3")) || v.Size() != 2 {
		t.Errorf("view after kill over lossy link: %v", v)
	}
}

// TestDroppedCountsOverflow overflows a 1-slot updates stream with nobody
// draining it: the cluster must keep converging and account for every
// install it could not publish.
func TestDroppedCountsOverflow(t *testing.T) {
	c := Start(Options{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
		UpdateBuffer:   1,
	})
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p3"))
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Bootstrap installs v0 at 3 nodes and the exclusion installs v1 at
	// 2 survivors: 5 installs into a 1-slot buffer nobody drains.
	if got := c.Dropped(); got != 4 {
		t.Errorf("Dropped() = %d, want 4 (5 installs, 1 buffered)", got)
	}
	if len(c.Updates()) != 1 {
		t.Errorf("updates buffer holds %d, want 1", len(c.Updates()))
	}
}

// TestDroppedZeroWhenDrained: a drained stream loses nothing.
func TestDroppedZeroWhenDrained(t *testing.T) {
	c := Start(Options{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0", got)
	}
}

// TestTransportStatsSurfaceDrops: killing a member makes the survivors'
// beacons to it fail at the wire, and the cluster surfaces those drops
// with their reason through TransportStats — distinguishable from
// congestion, which Dropped()'s update-stream counter never was.
func TestTransportStatsSurfaceDrops(t *testing.T) {
	c := Start(tcpFast(3))
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.TransportStats().Dropped(); got != 0 {
		t.Errorf("healthy cluster dropped %d frames (%+v)", got, c.TransportStats())
	}
	c.Kill(ids.Named("p3"))
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Between the kill and the exclusion, survivors kept beaconing the
	// dead endpoint; those frames must land in a dead-host bucket, not
	// vanish uncounted or masquerade as saturation. The accounting is
	// eventual: the stream plane retries transient failures with backoff
	// (reliable-FIFO contract) before it gives a frame up for dead.
	deadline := time.Now().Add(10 * time.Second)
	st := c.TransportStats()
	for st.DialFailed+st.UnknownPeer+st.WriteFailed+st.Closed == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		st = c.TransportStats()
	}
	if st.DialFailed+st.UnknownPeer+st.WriteFailed+st.Closed == 0 {
		t.Errorf("no dead-host drops recorded after a kill: %+v", st)
	}
	if st.QueueSaturated != 0 {
		t.Errorf("dead-host drops misfiled as saturation: %+v", st)
	}
}

// twoPlaneFast returns options running the cluster over the two-plane
// substrate: protocol traffic on TCP loopback, beacons on UDP loopback.
func twoPlaneFast(n int) Options {
	return Options{
		N:              n,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
		Transport:      transport.NewTwoPlane(transport.NewTCP(), transport.NewUDP()),
	}
}

// TestTwoPlaneChurnSatisfiesGMP runs the TCP churn scenario over the
// two-plane wire: beacons on UDP (cadence-pure, since the runtime
// detects the plane), protocol traffic on TCP, and the same GMP
// properties must hold across a join, two crashes, and the forced
// reconfiguration.
func TestTwoPlaneChurnSatisfiesGMP(t *testing.T) {
	c := Start(twoPlaneFast(5))
	defer c.Stop()
	if !c.planed {
		t.Fatal("cluster did not detect the beacon plane")
	}
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Join(ids.Named("q1"), ids.Named("p2"))
	if _, err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	if _, err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1")) // the coordinator: forces a reconfiguration
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) || v.Has(ids.Named("p5")) || !v.Has(ids.Named("q1")) {
		t.Errorf("final view %v", v)
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("two-plane churn violates GMP:\n%v", rep)
	}
}

// TestSubstrateTrafficNeverReachesProtocol: a payload marked
// SubstrateTraffic feeds the detector and stops at the dispatch layer —
// core.Node.Deliver panics on unknown vocabulary, so this is the fence
// that lets load generators share the group's wire.
func TestSubstrateTrafficNeverReachesProtocol(t *testing.T) {
	c := Start(Options{N: 3, HeartbeatEvery: 10 * time.Millisecond, SuspectAfter: 100 * time.Millisecond})
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Delivered via the transport like any frame; if dispatch forwarded
	// it to the state machine the node would panic and the cluster lose
	// the member.
	c.post(ids.Named("p1"), ids.Named("p2"), 0, testBulk{})
	time.Sleep(50 * time.Millisecond)
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("cluster degraded after substrate traffic: %v", err)
	}
	if len(c.Running()) != 3 {
		t.Errorf("running set shrank to %v", c.Running())
	}
}

// testBulk is marked substrate traffic for the fence test.
type testBulk struct{}

func (testBulk) SubstrateTraffic() {}

func init() { transport.RegisterPayload(testBulk{}) }

// TestHeartbeatGoldenWireFormat pins the beacon's kind tag and layout:
// the zero-allocation fast path depends on this exact encoding.
func TestHeartbeatGoldenWireFormat(t *testing.T) {
	blob, err := transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Body: Heartbeat{}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{heartbeatKind, 2, 'p', '1', 2, 'p', '2', 0, 0}
	if string(blob) != string(want) {
		t.Errorf("heartbeat wire bytes %x, want %x", blob, want)
	}
	f, err := transport.DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Body.(Heartbeat); !ok {
		t.Errorf("heartbeat decoded to %T", f.Body)
	}
}
