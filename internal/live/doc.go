// Package live runs the GMP protocol on real goroutines with real time:
// one goroutine per process, a pluggable transport (in-memory by default;
// TCP sockets, a lossy ABP-repaired datagram link, or a chaos-degraded
// wrapper via Options.Transport), and a pluggable failure detector
// implementing F1 (§2.2) — the deployment shape the paper targets ("a
// constant flow of requests … which is exactly what occurs in actual
// systems"). The protocol code is the same internal/core state machine
// the simulator runs; only the substrate differs.
//
// Each node's event loop multiplexes three inputs: its mailbox (transport
// deliveries and local tasks), its timers, and a single per-node liveness
// wheel that both emits heartbeat beacons and consults the failure
// detector. Who the wheel covers is the monitoring topology's decision
// (Options.Topology; internal/topology): beacons go to the members that
// watch this node, detector state exists only for the members this node
// watches, both recomputed at every view installation — all-to-all by
// default, O(k) per node under ring-k. Beacons coalesce: a protocol send
// doubles as a beacon, so a pure Heartbeat goes out only on channels
// silent for a full interval.
// Suspicion policy is delegated to an fd.Detector chosen per group
// through Options.Detector — the fixed SuspectAfter timeout by default,
// the adaptive φ-accrual detector as the alternative — and the detector's
// graded suspicion level travels onto the recorded Faulty trace events
// (core.LevelRecorder). A stall guard protects the wheel itself: a node
// whose own loop was descheduled longer than half the suspicion threshold
// re-arms its observations instead of suspecting every peer at once,
// since its evidence of their silence is indistinguishable from its own
// absence.
//
// Under a partial topology with a beacon plane, point-to-point-learned
// suspicions disseminate as SuspicionDigest batches riding the beacons
// themselves (Options.Digests; DESIGN.md §10): a pending digest replaces
// that interval's heartbeat on each beacon edge, per-edge sent-sets and
// a per-view absorb dedup bound the flood to one crossing per monitoring
// edge, and DigestOff (or a plane-less transport) falls back to the
// point-to-point relay. Options.Self/Roster boot a single-member cluster
// for multi-process deployments — one OS process per member, wired by
// address exchange and bootstrapped by BootstrapSelf (E19's harness).
//
// Installed views are published on a bounded stream; overflow is counted
// (Cluster.Dropped), never blocking the protocol. Transport-level drop
// accounting is surfaced through Cluster.TransportStats.
package live
