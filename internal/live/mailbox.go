package live

import (
	"sync"

	"procgroup/internal/ids"
)

// mailbox is an unbounded FIFO queue with a wake channel. Unbounded is the
// right trade here: protocol traffic is small and bounded by group size,
// and a bounded mailbox could deadlock two nodes sending to each other's
// full queues from their own event loops.
type mailbox struct {
	mu     sync.Mutex
	items  []envelope
	wake   chan struct{}
	closed bool
}

// envelope is one queued input for a node's event loop.
type envelope struct {
	from    ids.ProcID // sender (Nil for local closures)
	payload any
	msgID   int64  // trace correlation id (0 for unrecorded traffic)
	fn      func() // when non-nil, a local task (timer, query)
}

func newMailbox() *mailbox {
	return &mailbox{wake: make(chan struct{}, 1)}
}

// put enqueues an envelope; it never blocks.
func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, e)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// take dequeues the next envelope, reporting false when the box is empty.
func (m *mailbox) take() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.items) == 0 {
		return envelope{}, false
	}
	e := m.items[0]
	m.items = m.items[1:]
	return e, true
}

// close discards queued items and rejects future puts.
func (m *mailbox) close() {
	m.mu.Lock()
	m.items = nil
	m.closed = true
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}
