package live

// Regression test for the false-suspicion cascade (§4.3): on a starved
// machine (one core, GC pause, batch-apply burst) a member's event loop
// can stall past SuspectAfter without the member being remotely faulty.
// Its peers read the stall as silence, exclude it, and on resume the
// member receives the view change that removes it and quits itself — an
// innocent process destroyed by scheduling noise. The fix under test is
// the hysteresis dwell: a threshold crossing must survive a further
// dwell of continuous silence before it surfaces as a suspicion, so a
// stall shorter than SuspectAfter+Dwell is forgiven when the beacons
// resume. The stall is injected deterministically by sleeping on the
// victim's own event loop (Query runs its closure there), which freezes
// beacons and receive processing exactly as starvation does.

import (
	"testing"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
)

// stallLoop blocks p's event loop for d, simulating event-loop starvation.
func stallLoop(c *Cluster, p ids.ProcID, d time.Duration) bool {
	return c.Query(p, func(*core.Node) { time.Sleep(d) })
}

func TestStarvationStallCascadesWithoutHysteresis(t *testing.T) {
	// The baseline that motivated PR 9's slack-threshold workaround: with
	// a bare tight threshold, a 60ms loop stall against SuspectAfter=30ms
	// gets the victim excluded even though it comes right back.
	c := Start(fast(4))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p3")
	if !stallLoop(c, victim, 60*time.Millisecond) {
		t.Fatal("victim unreachable before the stall")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := c.ViewOf(ids.Named("p1")); v != nil && !v.Has(victim) {
			break // excluded: the cascade the next test must prevent
		}
		if time.Now().After(deadline) {
			t.Skip("stall not observed as silence on this run; cascade baseline not reproducible")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStarvationStallDoesNotCascadeWithHysteresis(t *testing.T) {
	// Same stall, same tight threshold, hysteresis on: the peers'
	// crossings must recover when the victim's beacons resume, the view
	// must not change, and nobody may quit. The shared stats prove the
	// scenario actually exercised the threshold (crossings happened) and
	// that the dwell absorbed all of them (nothing confirmed).
	stats := &fd.HysteresisStats{}
	opts := fast(4)
	opts.Detector = fd.NewHysteresisFactory(
		fd.NewTimeoutFactory(opts.SuspectAfter),
		fd.HysteresisOptions{Dwell: 200 * time.Millisecond, FlapPenalty: 1, Stats: stats},
	)
	c := Start(opts)
	defer c.Stop()
	v0, err := c.WaitConverged(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p3")
	if !stallLoop(c, victim, 60*time.Millisecond) {
		t.Fatal("victim unreachable before the stall")
	}
	// Ride out the stall, the recovery, and a full dwell's worth of margin
	// during which a confirm would have fired if the dwell had not held.
	time.Sleep(400 * time.Millisecond)

	if got := len(c.Running()); got != 4 {
		t.Fatalf("%d members running after the stall, want 4 (someone quit)", got)
	}
	v := c.ViewOf(ids.Named("p1"))
	if v == nil || !v.Has(victim) || v.Version() != v0.Version() {
		t.Fatalf("view changed across a transient stall: %v (was %v)", v, v0)
	}
	if stats.Crossings.Load() == 0 {
		t.Fatal("stall never crossed the threshold: the scenario did not bite")
	}
	if got := stats.Confirms.Load(); got != 0 {
		t.Errorf("%d crossings confirmed through the dwell, want 0", got)
	}
	if stats.Mistakes.Load() == 0 {
		t.Error("recovered crossings were not accounted as detector mistakes")
	}
}
