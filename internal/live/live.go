package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/topology"
	"procgroup/internal/trace"
	"procgroup/internal/transport"
)

// Heartbeat is the failure-detection beacon; it is substrate traffic and is
// never delivered to the protocol state machine.
type Heartbeat struct{}

// MsgLabel implements netsim.Labeled for uniform counting.
func (Heartbeat) MsgLabel() string { return "Heartbeat" }

// heartbeatKind is the beacon's wire kind tag (kinds ≥ 16 belong to
// substrate layers; see the transport codec's registry).
const heartbeatKind = 16

func init() {
	transport.RegisterPayload(Heartbeat{})                      // gob escape hatch
	transport.RegisterBeaconPayload(heartbeatKind, Heartbeat{}) // zero-alloc wire fast path
}

// SubstrateTraffic marks payload types that ride a group's wire without
// being protocol messages — load generators, side-channel bulk data.
// The live runtime drops a marked payload at dispatch: it never reaches
// the protocol state machine (which panics on vocabulary it does not
// know) and it never feeds the failure detector. The second half is
// deliberate layering, not an omission: the detector's evidence is the
// monitoring schedule's beacons, and letting an application's bulk
// stream stand in for them would keep a peer "alive" exactly as long as
// its data flows — masking the saturation failures a separate beacon
// plane exists to expose.
type SubstrateTraffic interface{ SubstrateTraffic() }

// Options configures a live cluster.
type Options struct {
	// N is the initial group size.
	N int
	// Config is the protocol configuration (DefaultConfig if zero).
	Config *core.Config
	// HeartbeatEvery is the beacon interval (default 20ms).
	HeartbeatEvery time.Duration
	// SuspectAfter is the silence threshold before faulty_p(q) fires
	// (default 6 × HeartbeatEvery). It parameterizes the default
	// fixed-timeout detector; a non-nil Detector takes precedence.
	SuspectAfter time.Duration
	// Detector selects the failure-detection policy (F1, §2.2): a
	// factory invoked once per node so every process owns an independent
	// detector instance. Nil selects fd.NewTimeoutFactory(SuspectAfter),
	// the seed behavior; fd.NewAccrualFactory gives the adaptive
	// φ-accrual detector.
	Detector fd.Factory
	// Transport is the message substrate. Nil selects in-process
	// delivery (transport.NewInmem), the seed behavior. The cluster
	// takes ownership and closes it on Stop.
	Transport transport.Transport
	// Topology selects who monitors whom (beacons + detector state) per
	// installed view. Nil selects topology.Full, the all-to-all seed
	// behavior; topology.RingK monitors k rank-successors, cutting
	// beacon traffic and (on socket transports) connection count from
	// O(n²) to O(n·k) while the core suspicion-relay path preserves
	// F1's eventual-suspicion contract. The same Topology value is
	// shared by every node (implementations are stateless).
	Topology topology.Topology
	// UpdateBuffer sizes the installed-view stream (default 1024).
	// When subscribers fall behind, installs are dropped and counted on
	// Dropped rather than wedging the protocol.
	UpdateBuffer int
	// Digests selects suspicion-digest dissemination (see DigestMode).
	Digests DigestMode
	// Readmit rate-limits readmission of recently excluded sites (see
	// ReadmitPolicy): the coordinator defers a rejoining incarnation
	// whose site has exhausted its token bucket, so a flapping node
	// cannot force endless reconfigurations. The zero value disables
	// the governor, the pre-governor behavior.
	Readmit ReadmitPolicy
	// App, when set, attaches an application layer to every node: the
	// factory runs once per spawned process (before its loop starts) and
	// the resulting AppHook receives AppTraffic payloads and view
	// installs on the node's event loop. This is how a broadcast or
	// replication layer rides the group — see internal/broadcast.
	App AppHookFactory
	// Self, when set, puts the cluster in single-member mode for
	// multi-process deployments: Start spawns exactly this process (N is
	// ignored) and does NOT bootstrap it — the process first needs its
	// peers' transport addresses wired up (AddPeer), then BootstrapSelf
	// installs Roster. Each OS process hosts one such cluster; the group
	// is the set of processes whose rosters agree.
	Self ids.ProcID
	// Roster is the commonly-known initial membership (GMP-0) that
	// BootstrapSelf installs, in seniority order, Self included.
	Roster []ids.ProcID
}

// DigestMode selects how point-to-point-learned suspicions disseminate
// under a partial monitoring topology.
type DigestMode int

const (
	// DigestAuto (the default) batches suspicions into SuspicionDigest
	// beacons whenever the substrate has a dedicated beacon plane
	// (transport.BeaconPlaner) and the topology is partial — the two
	// conditions under which digests are strictly cheaper than the relay
	// flood. Everywhere else (stream-only transports, full monitoring)
	// the point-to-point relay runs unchanged.
	DigestAuto DigestMode = iota
	// DigestOff forces the point-to-point relay even where digests would
	// apply — the A/B baseline the scale experiment compares against.
	DigestOff
)

// ViewUpdate is one installed view, published to subscribers.
type ViewUpdate struct {
	Proc    ids.ProcID
	Ver     member.Version
	Members []ids.ProcID
}

// Cluster is a running group of live protocol nodes.
type Cluster struct {
	opts Options
	rec  *trace.Recorder
	tr   transport.Transport
	// planed records whether the substrate carries beacons on a
	// dedicated plane (transport.BeaconPlaner). With a plane, beacons
	// are emitted cadence-pure — every wheel pass, no piggyback
	// suppression — because a planed beacon costs one datagram, cannot
	// queue behind protocol traffic, and every emission is one clean
	// inter-arrival sample for the peer's detector.
	planed bool
	// digests records whether suspicion-digest dissemination may run
	// (Options.Digests resolved against the transport); each node still
	// gates on its own view's topology being partial (liveNode.gossip).
	digests bool

	dropped atomic.Int64 // installs lost to a full updates stream
	// readmitDeferred counts joins the readmission governor deferred
	// (each deferral is one reconfiguration that did NOT happen yet).
	readmitDeferred atomic.Int64

	mu      sync.Mutex
	nodes   map[ids.ProcID]*liveNode
	updates chan ViewUpdate
	// installed pulses (capacity 1) whenever any node installs a view or
	// the running set changes, so convergence waiters wake on the event
	// instead of polling.
	installed chan struct{}
	start     time.Time
	wg        sync.WaitGroup
	stopped   bool
}

// liveNode is one process: a core.Node driven by a goroutine event loop.
type liveNode struct {
	c    *Cluster
	id   ids.ProcID
	box  *mailbox
	stop chan struct{}
	done chan struct{}

	// loop-owned state (never touched outside the event loop):
	node *core.Node
	// watch is the set this node monitors (runs detector state for) and
	// beaconTo the set that monitors this node (so it must beacon to
	// them); wheel is their union in view order, the sequence one beat
	// pass walks. All three are recomputed from Options.Topology at
	// every install — O(k) under a partial topology instead of the O(n)
	// all-peers the pre-topology wheel tracked. For topology.Full every
	// member is both beaconed and watched and the wheel is the view
	// minus self in view order: the seed behavior exactly, interleaving
	// included (TestFullBeaconScheduleMatchesPreTopologyWheel).
	watch     []ids.ProcID
	beaconTo  []ids.ProcID
	wheel     []wheelEntry
	watchSet  ids.Set
	beaconSet ids.Set
	// relayPartial records whether this node's monitoring is partial
	// (it does not watch every peer): only then are point-to-point
	// suspicions relayed (core.SuspicionRelayer), because under full
	// monitoring every process observes every failure itself.
	relayPartial bool
	// gossip is the digest-dissemination gate for the current view:
	// Cluster.digests (beacon plane present, mode not DigestOff) AND the
	// topology is partial here. Recomputed per install like the wheel.
	// digestOut holds suspicions waiting to ride this node's beacons and
	// digestSeen the suspects already absorbed or queued (echo dedup);
	// both are loop-owned and pruned against each installed view.
	gossip     bool
	digestOut  map[ids.ProcID]*digestPending
	digestSeen ids.Set
	det        fd.Detector              // failure-detection policy (F1 input)
	lastSent   map[ids.ProcID]time.Time // last frame sent per peer (beacon piggybacking)
	lastBeat   time.Time                // previous liveness-wheel pass (stall guard)
	app        AppHook                  // application layer (Options.App), nil when unset
	// gov is the readmission governor (nil when Options.Readmit is zero)
	// and govWakeArmed whether a deferred-join recheck timer is pending;
	// both loop-owned.
	gov          *readmitGov
	govWakeArmed bool
}

// wheelEntry is one member's role in a node's liveness wheel.
type wheelEntry struct {
	m      ids.ProcID
	beacon bool // this node beacons to m (m monitors this node)
	watch  bool // this node monitors m (detector state + suspicion)
}

// buildWheel merges beaconTo and watch into the view's member order: the
// per-pass walk keeps the pre-topology wheel's beacon-then-suspect
// interleaving per member, which matters because a suspicion raised
// mid-pass can trigger protocol sends that suppress later pure beacons in
// the same pass.
func buildWheel(members []ids.ProcID, self ids.ProcID, beaconTo, watch []ids.ProcID) []wheelEntry {
	beacons, watches := ids.NewSet(beaconTo...), ids.NewSet(watch...)
	wheel := make([]wheelEntry, 0, len(beaconTo)+len(watch))
	for _, m := range members {
		if m == self {
			continue
		}
		e := wheelEntry{m: m, beacon: beacons.Has(m), watch: watches.Has(m)}
		if e.beacon || e.watch {
			wheel = append(wheel, e)
		}
	}
	return wheel
}

// Start boots a cluster of opts.N processes and waits until every node has
// installed the initial view.
func Start(opts Options) *Cluster {
	if opts.N <= 0 {
		opts.N = 3
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 20 * time.Millisecond
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 6 * opts.HeartbeatEvery
	}
	if opts.UpdateBuffer <= 0 {
		opts.UpdateBuffer = 1024
	}
	if opts.Detector == nil {
		opts.Detector = fd.NewTimeoutFactory(opts.SuspectAfter)
	}
	if opts.Transport == nil {
		opts.Transport = transport.NewInmem()
	}
	if opts.Topology == nil {
		opts.Topology = topology.Full{}
	}
	cfg := nodeConfig(opts)

	_, planed := opts.Transport.(transport.BeaconPlaner)
	c := &Cluster{
		opts:      opts,
		tr:        opts.Transport,
		planed:    planed,
		digests:   planed && opts.Digests != DigestOff,
		nodes:     make(map[ids.ProcID]*liveNode, opts.N),
		updates:   make(chan ViewUpdate, opts.UpdateBuffer),
		installed: make(chan struct{}, 1),
		start:     time.Now(),
	}
	c.rec = trace.NewRecorder(func() int64 { return int64(time.Since(c.start) / time.Microsecond) })

	if !opts.Self.IsNil() {
		// Single-member mode: one process of a multi-process group. The
		// node idles unbootstrapped until the harness has exchanged
		// transport addresses and calls BootstrapSelf.
		c.mu.Lock()
		c.spawnLocked(opts.Self, cfg)
		c.mu.Unlock()
		return c
	}

	procs := ids.Gen(opts.N)
	c.mu.Lock()
	for _, p := range procs {
		c.spawnLocked(p, cfg)
	}
	for _, p := range procs {
		if ln := c.nodes[p]; ln != nil {
			ln.box.put(envelope{fn: func() { ln.node.Bootstrap(procs) }})
		}
	}
	c.mu.Unlock()
	return c
}

// BootstrapSelf installs Options.Roster on the single member this cluster
// hosts (Options.Self mode). Call it once, after every peer in the roster
// is reachable on the transport — in a multi-process group that means
// after the address exchange. A no-op in normal (multi-node) mode.
func (c *Cluster) BootstrapSelf() {
	roster := c.opts.Roster
	if c.opts.Self.IsNil() || len(roster) == 0 {
		return
	}
	c.mu.Lock()
	ln := c.nodes[c.opts.Self]
	c.mu.Unlock()
	if ln != nil {
		ln.box.put(envelope{fn: func() { ln.node.Bootstrap(roster) }})
	}
}

// nodeConfig resolves the protocol configuration a node runs: the caller's
// Config (DefaultConfig when nil) with the live-runtime defaults applied.
// Live timers tick in milliseconds.
func nodeConfig(opts Options) core.Config {
	cfg := core.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if cfg.ReconfigWait == 0 {
		cfg.ReconfigWait = int64(4 * opts.SuspectAfter / time.Millisecond)
	}
	// Partial monitoring needs the await fallback: a round or phase must
	// not wedge on a member whose only monitors are gone. Full keeps
	// AwaitWait disabled — the seed behavior, where the detector itself
	// feeds every await.
	if _, full := opts.Topology.(topology.Full); !full && cfg.AwaitWait == 0 {
		cfg.AwaitWait = int64(4 * opts.SuspectAfter / time.Millisecond)
	}
	return cfg
}

// spawnLocked creates and starts a node goroutine; c.mu must be held. The
// node is registered with the transport before its loop starts, so no
// bootstrap traffic can race past it; a registration failure (duplicate
// id, or a socket transport that cannot open an endpoint) yields nil and
// no node.
func (c *Cluster) spawnLocked(p ids.ProcID, cfg core.Config) *liveNode {
	ln := &liveNode{
		c:          c,
		id:         p,
		box:        newMailbox(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		det:        c.opts.Detector(),
		lastSent:   make(map[ids.ProcID]time.Time),
		digestOut:  make(map[ids.ProcID]*digestPending),
		digestSeen: ids.NewSet(),
		gov:        newReadmitGov(c.opts.Readmit),
	}
	ln.node = core.New(p, (*liveEnv)(ln), cfg)
	if err := c.tr.Register(p, ln.deliver); err != nil {
		return nil
	}
	if c.opts.App != nil {
		// After Register (the hook may send immediately) and before the
		// loop starts (so it observes every install from the first).
		ln.app = c.opts.App((*appNode)(ln))
	}
	c.nodes[p] = ln
	c.rec.RecordStart(p)
	c.wg.Add(1)
	go ln.run()
	return ln
}

// deliver is the transport handler: it appends to the node's mailbox and
// never blocks, as the Transport contract requires.
func (ln *liveNode) deliver(from ids.ProcID, m transport.Message) {
	ln.box.put(envelope{from: from, payload: m.Payload, msgID: m.MsgID})
}

// run is the node's event loop: heartbeats, failure detection, mailbox.
func (ln *liveNode) run() {
	defer close(ln.done)
	defer ln.c.wg.Done()
	tick := time.NewTicker(ln.c.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ln.stop:
			return
		case <-tick.C:
			ln.beat()
			// A suspicion raised by the wheel can cascade into this
			// node quitting itself (an initiator that misses its
			// majority, §4.3) — which unregisters it, so nothing else
			// will ever stop this loop.
			if !ln.node.Alive() {
				return
			}
		case <-ln.box.wake:
			for {
				e, ok := ln.box.take()
				if !ok {
					break
				}
				ln.dispatch(e)
				if !ln.node.Alive() {
					return
				}
			}
		}
	}
}

func (ln *liveNode) dispatch(e envelope) {
	if e.fn != nil {
		e.fn()
		return
	}
	if e.from.IsNil() {
		return
	}
	if _, isBeat := e.payload.(Heartbeat); isBeat {
		if ln.observes(e.from) {
			ln.det.ObserveBeacon(e.from, time.Now())
		}
		return
	}
	if dg, isDigest := e.payload.(SuspicionDigest); isDigest {
		// A digest occupies a beacon slot, so it is beacon-grade liveness
		// evidence for the sender — then its entries are absorbed.
		if ln.observes(e.from) {
			ln.det.ObserveBeacon(e.from, time.Now())
		}
		ln.absorbDigest(dg)
		return
	}
	if _, isApp := e.payload.(AppTraffic); isApp {
		// Application traffic: routed to the hook, never to the protocol,
		// and — like SubstrateTraffic — never to the detector.
		if ln.app != nil {
			ln.app.HandleApp(e.from, e.payload)
		}
		return
	}
	if _, sub := e.payload.(SubstrateTraffic); sub {
		return // non-protocol wire traffic: not evidence, never delivered
	}
	if ln.observes(e.from) {
		ln.det.Observe(e.from, time.Now())
	}
	if e.msgID != 0 {
		ln.c.rec.RecordRecv(e.from, ln.id, e.msgID, labelOf(e.payload))
	}
	ln.node.Deliver(e.from, e.payload)
}

// observes reports whether traffic from q should feed this node's
// detector. Under a partial topology only watched members do — otherwise
// every coordinator commit or relayed report from a non-neighbor would
// regrow the detector's per-peer state (an accrual window each) back to
// O(n) between installs, the exact scaling the topology exists to cap.
// Under full monitoring every sender feeds it, the seed behavior.
func (ln *liveNode) observes(q ids.ProcID) bool {
	return !ln.relayPartial || ln.watchSet.Has(q)
}

// beaconDue reports whether the channel to m is owed a pure beacon at
// now, updating lastSent when it is. This is the beacon-scheduling
// decision of the pre-topology wheel extracted verbatim (same silence
// test — piggybacked traffic within the last interval suppresses the
// beacon — and the same lastSent refresh).
func beaconDue(m ids.ProcID, lastSent map[ids.ProcID]time.Time, now time.Time, every time.Duration) bool {
	if sent, ok := lastSent[m]; !ok || now.Sub(sent) >= every {
		lastSent[m] = now
		return true
	}
	return false
}

// beat is one pass of the node's liveness wheel: a single per-node ticker
// drives beacons and suspicion for the whole monitoring topology — there
// are no per-peer timers. Beacons go to the members that monitor this
// node (beaconTo); detector state is kept, and suspicion raised, only for
// the members this node monitors (watch) — both O(k) under a partial
// topology. Heartbeats piggyback on protocol traffic: any frame sent to a
// peer within the last beacon interval already proved this node alive (a
// send IS a beacon, and every receive feeds the detector on the far
// side), so a pure beacon goes out only on channels that have been
// silent. Suspicion is delegated to the pluggable detector (F1, §2.2):
// members it declares silent are suspected, with its graded suspicion
// level recorded on the Faulty trace event.
func (ln *liveNode) beat() {
	now := time.Now()
	// Stall guard: every node of a cluster shares one OS process, so a
	// process-wide scheduler or GC stall would make every node read
	// every peer as silent on its next beat — a mutual-suspicion storm
	// that can destroy the whole group in one pass. A node that detects
	// its own wheel was stalled cannot distinguish peer silence from its
	// own absence, so it re-arms its observations instead of suspecting;
	// a genuinely dead peer is still caught one threshold later (F1 only
	// demands eventual detection). The trip point keys on the wheel's
	// own cadence — a beat arriving more than a full period late —
	// because an adaptive detector's suspicion latency can sit well
	// below the fixed SuspectAfter (which caps the guard when tighter).
	// The floor of 1.5 beat periods keeps ordinary tick jitter from
	// tripping it: below that, every normal beat would register as a
	// stall and detection would silently never run.
	guard := 2 * ln.c.opts.HeartbeatEvery
	if ln.c.opts.SuspectAfter/2 < guard {
		guard = ln.c.opts.SuspectAfter / 2
	}
	if floor := 3 * ln.c.opts.HeartbeatEvery / 2; guard < floor {
		guard = floor
	}
	stalled := !ln.lastBeat.IsZero() && now.Sub(ln.lastBeat) > guard
	ln.lastBeat = now
	if len(ln.wheel) == 0 {
		return
	}
	for _, e := range ln.wheel {
		// On a dedicated beacon plane the piggyback suppression is
		// skipped: suppressing a cadence-pure datagram saves nothing and
		// costs the peer's detector its cleanest sample.
		if e.beacon {
			sent := false
			// Digest dissemination: pending suspicions ride this beacon
			// slot instead of a pure heartbeat. The digest is liveness
			// evidence too (receivers feed it to the detector), so the
			// substitution costs the detector nothing.
			if ln.gossip && len(ln.digestOut) > 0 {
				if entries := ln.pendingFor(e.m); len(entries) > 0 {
					ln.c.post(ln.id, e.m, 0, SuspicionDigest{Entries: entries})
					sent = true
				}
			}
			if !sent && (ln.c.planed || beaconDue(e.m, ln.lastSent, now, ln.c.opts.HeartbeatEvery)) {
				ln.c.post(ln.id, e.m, 0, Heartbeat{})
			}
		}
		if !e.watch {
			continue
		}
		switch {
		case stalled:
			ln.det.Rearm(e.m, now)
		case ln.det.Suspect(e.m, now):
			ln.node.SuspectWithLevel(e.m, ln.det.Suspicion(e.m, now))
		}
	}
}

// post hands a payload to the transport. Every Transport implementation
// preserves the per-channel FIFO ordering the protocol requires (§2.1);
// the simulator, not the live substrate, is where adversarial reordering
// across channels is exercised. msgID correlates the receive with its
// recorded send (0 = unrecorded substrate traffic); it travels inside the
// wire frame on socket transports.
func (c *Cluster) post(from, to ids.ProcID, msgID int64, payload any) {
	c.tr.Send(from, to, transport.Message{MsgID: msgID, Payload: payload})
}

// liveEnv adapts a liveNode to core.Env; all methods run on the event loop.
type liveEnv liveNode

func (e *liveEnv) Send(to ids.ProcID, payload any) {
	ln := (*liveNode)(e)
	id := msgID(ln.c)
	ln.c.rec.RecordSend(ln.id, to, id, labelOf(payload))
	// A protocol send doubles as a beacon — but only channels the wheel
	// beacons on need the suppression state; under a partial topology,
	// stamping every recipient would regrow lastSent to O(n). With a
	// dedicated beacon plane there is no suppression, so no state.
	if !ln.c.planed && (!ln.relayPartial || ln.beaconSet.Has(to)) {
		ln.lastSent[to] = time.Now()
	}
	ln.c.post(ln.id, to, id, payload)
}

var msgSeq struct {
	mu sync.Mutex
	n  int64
}

func msgID(*Cluster) int64 {
	msgSeq.mu.Lock()
	defer msgSeq.mu.Unlock()
	msgSeq.n++
	return msgSeq.n
}

func labelOf(payload any) string {
	if l, ok := payload.(interface{ MsgLabel() string }); ok {
		return l.MsgLabel()
	}
	return fmt.Sprintf("%T", payload)
}

func (e *liveEnv) After(d int64, fn func()) (cancel func()) {
	ln := (*liveNode)(e)
	var once sync.Once
	cancelled := make(chan struct{})
	t := time.AfterFunc(time.Duration(d)*time.Millisecond, func() {
		select {
		case <-cancelled:
		default:
			ln.box.put(envelope{fn: fn})
		}
	})
	return func() {
		once.Do(func() { close(cancelled); t.Stop() })
	}
}

func (e *liveEnv) Quit() {
	ln := (*liveNode)(e)
	ln.c.unregister(ln.id)
}

func (e *liveEnv) Record(k event.Kind, other ids.ProcID) {
	ln := (*liveNode)(e)
	ln.c.rec.RecordInternal(ln.id, k, other)
}

// RelayPeers implements core.SuspicionRelayer: under a partial monitoring
// topology, fresh point-to-point suspicions are relayed to the members
// this node monitors among those it still believes operational — the
// topology re-closed over the unsuspected remainder, so the relay routes
// around the suspects themselves. Under full monitoring (topology.Full,
// or RingK's k ≥ n−1 degenerate case) it returns nil and the runtime
// behaves exactly as it did before topologies existed.
func (e *liveEnv) RelayPeers(unsuspected []ids.ProcID) []ids.ProcID {
	ln := (*liveNode)(e)
	if !ln.relayPartial {
		return nil
	}
	return ln.c.opts.Topology.Monitors(unsuspected, ln.id)
}

// GossipActive implements core.SuspicionGossiper: digest dissemination is
// on when the cluster enables it (beacon plane present, not forced off)
// AND this node's current view is under a partial topology — under full
// monitoring every member suspects first-hand and digests would only add
// frames. All loop-owned.
func (e *liveEnv) GossipActive() bool {
	ln := (*liveNode)(e)
	return ln.gossip
}

// GossipSuspicion implements core.SuspicionGossiper: the suspicion joins
// the outgoing digest batch and rides this node's next beacons.
func (e *liveEnv) GossipSuspicion(q ids.ProcID, level float64) {
	ln := (*liveNode)(e)
	ln.queueDigest(q, level)
}

// RecordLevel implements core.LevelRecorder: Faulty events carry the
// detector's suspicion level into the trace.
func (e *liveEnv) RecordLevel(k event.Kind, other ids.ProcID, level float64) {
	ln := (*liveNode)(e)
	ln.c.rec.RecordInternalLevel(ln.id, k, other, level)
}

// AdmitJoiner implements core.ReadmissionGovernor: the coordinator's
// pre-Add gate. A deferral counts on Cluster.ReadmitDeferred and arms a
// one-shot recheck timer for when the site's token accrues — the joiner
// is sitting in Recovered(Mgr) with no protocol traffic guaranteed to
// re-trigger the scan, so the governor pokes the node itself.
func (e *liveEnv) AdmitJoiner(q ids.ProcID) bool {
	ln := (*liveNode)(e)
	ok, wait := ln.gov.admit(q, time.Now())
	if !ok {
		ln.c.readmitDeferred.Add(1)
		if !ln.govWakeArmed {
			ln.govWakeArmed = true
			time.AfterFunc(wait+time.Millisecond, func() {
				ln.box.put(envelope{fn: func() {
					ln.govWakeArmed = false
					ln.node.Poke()
				}})
			})
		}
	}
	return ok
}

func (e *liveEnv) RecordInstall(ver member.Version, members []ids.ProcID) {
	ln := (*liveNode)(e)
	now := time.Now()
	// The governor observes exclusions (and consumes grants) by diffing
	// successive installs — before the wheel refresh so the diff uses
	// this install's membership exactly once.
	ln.gov.noteInstall(members, now)
	oldWatch := ln.watchSet
	// Refresh the liveness wheel from the monitoring topology
	// (loop-owned): recomputing on every install is what re-closes a
	// partial topology around excluded members. Detector state is
	// retained only for the watch set and beacon piggyback state only
	// for the beacon set, so both maps are O(k) under a partial
	// topology.
	topo := ln.c.opts.Topology
	ln.watch = topo.Monitors(members, ln.id)
	ln.beaconTo = topology.BeaconTargets(topo, members, ln.id)
	ln.watchSet = ids.NewSet(ln.watch...)
	ln.beaconSet = ids.NewSet(ln.beaconTo...)
	ln.wheel = buildWheel(members, ln.id, ln.beaconTo, ln.watch)
	ln.relayPartial = len(ln.watch) < len(members)-1
	ln.gossip = ln.c.digests && ln.relayPartial
	ln.pruneDigests(ids.NewSet(members...))
	ln.det.Retain(ln.watch)
	// A member entering the watch set starts with a fresh silence clock.
	// Its last observation may be arbitrarily stale: a joiner's
	// sponsorship traffic is observed when it asks to join, which can be
	// long before its add commits (the readmission governor deferring it
	// stretches that gap past any threshold), and charging the wait as
	// silence would suspect the newcomer on the first wheel pass after
	// its own admission. Rearm refreshes the clock without feeding the
	// gap to an adaptive detector's arrival statistics.
	for _, q := range ln.watch {
		if !oldWatch.Has(q) {
			ln.det.Rearm(q, now)
		}
	}
	for q := range ln.lastSent {
		if !ln.beaconSet.Has(q) {
			delete(ln.lastSent, q)
		}
	}
	ln.c.rec.RecordInstall(ln.id, ver, members)
	if ln.app != nil {
		// The app layer hears about the install after the runtime's own
		// state is refreshed, so anything it sends rides the new wheel.
		ln.app.HandleInstall(ver, members)
	}
	upd := ViewUpdate{Proc: ln.id, Ver: ver, Members: members}
	select {
	case ln.c.updates <- upd:
	default:
		// Subscriber too slow: drop rather than wedge the protocol, but
		// leave the loss observable.
		ln.c.dropped.Add(1)
	}
	ln.c.pulse()
}

// pulse wakes convergence waiters; it never blocks.
func (c *Cluster) pulse() {
	select {
	case c.installed <- struct{}{}:
	default:
	}
}

// unregister removes a node from the transport (its endpoint and mailbox
// stop accepting) without joining its goroutine; the loop exits on its own.
func (c *Cluster) unregister(p ids.ProcID) {
	c.mu.Lock()
	ln, ok := c.nodes[p]
	if ok {
		delete(c.nodes, p)
	}
	c.mu.Unlock()
	if ok {
		c.tr.Unregister(p)
		ln.box.close()
		c.pulse() // the running set changed
	}
}

// --- Public surface ---------------------------------------------------------

// Updates streams installed views from every node (best effort).
func (c *Cluster) Updates() <-chan ViewUpdate { return c.updates }

// Dropped reports how many installs were lost because the Updates stream
// was full. A nonzero count means subscribers fell behind by more than
// Options.UpdateBuffer installs.
func (c *Cluster) Dropped() int64 { return c.dropped.Load() }

// ReadmitDeferred reports how many joins the readmission governor has
// deferred across the cluster so far — each one a reconfiguration the
// rate-limit pushed back. Always 0 with Options.Readmit unset.
func (c *Cluster) ReadmitDeferred() int64 { return c.readmitDeferred.Load() }

// TransportStats reports the substrate's per-reason drop counters —
// Dropped's sibling one layer down: Dropped counts view updates lost to a
// slow subscriber, TransportStats counts wire frames lost to saturation,
// unknown peers, or dead hosts.
func (c *Cluster) TransportStats() transport.Stats { return c.tr.Stats() }

// Transport exposes the cluster's message substrate (for tests and tools
// that need endpoint addresses, e.g. TCP peer directories).
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Recorder exposes the run trace.
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// StartedAt is the wall-clock zero of the recorder's timestamps — the
// offset that lets traces from multiple OS processes (Options.Self mode)
// merge onto one absolute timeline.
func (c *Cluster) StartedAt() time.Time { return c.start }

// Kill hard-crashes a process: its goroutine stops and its transport
// endpoint is torn down, exactly like a host failure.
func (c *Cluster) Kill(p ids.ProcID) {
	c.mu.Lock()
	ln, ok := c.nodes[p]
	if ok {
		delete(c.nodes, p)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	c.tr.Unregister(p)
	close(ln.stop)
	ln.box.close()
	<-ln.done
	c.pulse() // the running set changed
}

// Join spawns a new process that asks contact to sponsor it into the group.
func (c *Cluster) Join(p, contact ids.ProcID) {
	cfg := nodeConfig(c.opts)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	ln := c.spawnLocked(p, cfg)
	c.mu.Unlock()
	if ln == nil {
		return // duplicate id or endpoint failure; nothing was spawned
	}
	ln.box.put(envelope{fn: func() { ln.node.StartJoin(contact) }})
}

// Query runs fn on p's event loop and waits for it — the only safe way to
// read node state.
func (c *Cluster) Query(p ids.ProcID, fn func(n *core.Node)) bool {
	c.mu.Lock()
	ln, ok := c.nodes[p]
	c.mu.Unlock()
	if !ok {
		return false
	}
	done := make(chan struct{})
	ln.box.put(envelope{fn: func() {
		fn(ln.node)
		close(done)
	}})
	select {
	case <-done:
		return true
	case <-ln.done:
		return false
	}
}

// ViewOf returns p's current view, or nil if p is gone.
func (c *Cluster) ViewOf(p ids.ProcID) *member.View {
	var v *member.View
	c.Query(p, func(n *core.Node) { v = n.View() })
	return v
}

// Running lists the processes still executing, in deterministic order.
func (c *Cluster) Running() []ids.ProcID {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ids.NewSet()
	for p := range c.nodes {
		s.Add(p)
	}
	return s.Sorted()
}

// WaitConverged blocks until every running process reports the same view
// and that view's membership equals the running set, or the deadline
// passes. It returns the converged view or an error. Waiting is
// event-driven — each view install wakes the check — so convergence is
// observed when it happens, not at the next poll; a coarse ticker backs
// the pulse up against running-set changes that install nothing.
func (c *Cluster) WaitConverged(timeout time.Duration) (*member.View, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	// The pulse channel carries the latency-sensitive wakeups; the ticker
	// is only a coarse backstop, so it stays cheap under long waits.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		v, err := c.converged()
		if err == nil {
			return v, nil
		}
		select {
		case <-deadline.C:
			return nil, fmt.Errorf("live: not converged after %v: %w", timeout, err)
		case <-c.installed:
		case <-tick.C:
		}
	}
}

func (c *Cluster) converged() (*member.View, error) {
	running := c.Running()
	if len(running) == 0 {
		return nil, fmt.Errorf("no processes running")
	}
	var ref *member.View
	for _, p := range running {
		v := c.ViewOf(p)
		if v == nil {
			return nil, fmt.Errorf("%v has no view yet", p)
		}
		if ref == nil {
			ref = v
			continue
		}
		if !ref.Equal(v) {
			return nil, fmt.Errorf("%v differs: %v vs %v", p, ref, v)
		}
	}
	for _, p := range running {
		if !ref.Has(p) {
			return nil, fmt.Errorf("running %v not yet in view %v", p, ref)
		}
	}
	if ref.Size() != len(running) {
		return nil, fmt.Errorf("view %v larger than running set %v", ref, running)
	}
	return ref, nil
}

// Stop shuts the cluster down and waits for every goroutine to exit.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	nodes := make([]*liveNode, 0, len(c.nodes))
	for _, ln := range c.nodes {
		nodes = append(nodes, ln)
	}
	c.nodes = make(map[ids.ProcID]*liveNode)
	c.mu.Unlock()
	for _, ln := range nodes {
		c.tr.Unregister(ln.id)
		close(ln.stop)
		ln.box.close()
	}
	c.tr.Close()
	c.wg.Wait()
}
