package live

import (
	"testing"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// TestDetectionLatencyRespectsSuspectAfter pins the behavior the
// fixed-timeout extraction must preserve: no node can suspect a killed
// member before its silence strictly exceeds SuspectAfter, so the
// exclusion view cannot converge earlier than that. (The fd package's
// TestTimeoutMatchesPreRefactorBeatLoop pins the decision logic
// bit-for-bit; this pins the end-to-end timing floor.)
func TestDetectionLatencyRespectsSuspectAfter(t *testing.T) {
	opts := fast(5)
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p5")
	start := time.Now()
	c.Kill(victim)
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	if elapsed := time.Since(start); elapsed < opts.SuspectAfter {
		t.Errorf("excluded after %v, below the %v suspicion threshold", elapsed, opts.SuspectAfter)
	}
}

// TestTightThresholdStillDetects pins the stall guard's floor: with
// SuspectAfter/2 below 1.5 beat periods (a legal configuration), an
// unfloored guard would classify ordinary beats as stalls — silently
// disabling detection and leaving dead members in the view forever. Here
// SuspectAfter/2 = 22.5ms sits under the 30ms floor, so the floor is
// what keeps detection alive.
func TestTightThresholdStillDetects(t *testing.T) {
	c := Start(Options{N: 5, HeartbeatEvery: 20 * time.Millisecond, SuspectAfter: 45 * time.Millisecond})
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p5")
	c.Kill(victim)
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatalf("tight-threshold group never excluded the dead member: %v", err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
}

// accrualOpts is an adaptive-detector configuration tolerant enough for
// loaded CI machines and -race slowdowns: a wide σ floor (φ = 8 is
// reached around mean + 5.6σ, so a 4ms floor buys ~25ms of patience on a
// 5ms beat) so scheduler hiccups do not read as death.
func accrualOpts() fd.AccrualOptions {
	return fd.AccrualOptions{
		Phi:       8,
		MinStdDev: 4 * time.Millisecond,
		Fallback:  100 * time.Millisecond,
	}
}

func TestAccrualClusterExcludesKilledMember(t *testing.T) {
	opts := fast(5)
	opts.Detector = fd.NewAccrualFactory(accrualOpts())
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p5")
	c.Kill(victim)
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("accrual-detector run violates GMP:\n%v", rep)
	}
}

func TestFaultyEventsCarrySuspicionLevel(t *testing.T) {
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// At least one Faulty event must carry the detector's grade: for the
	// fixed-timeout detector that is elapsed/threshold, which is > 1 by
	// the time the suspicion fires. Gossip-propagated Faulty events stay
	// ungraded (level 0).
	found := false
	for _, e := range c.Recorder().Events() {
		if e.Kind == event.Faulty && e.Level > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no Faulty event carries a detector suspicion level > 1")
	}
}

func TestClusterConvergesUnderChaosJitter(t *testing.T) {
	// The live chaos harness end to end: delivery jitter up to one full
	// heartbeat interval plus 10% beacon loss on every link, under the
	// adaptive detector. (Beacon loss stresses the detector's signal
	// without violating the §2.1 reliable-channel assumption protocol
	// traffic runs on.) The group must boot, exclude a killed member,
	// and the trace must still certify GMP.
	opts := fast(5)
	opts.Detector = fd.NewAccrualFactory(accrualOpts())
	opts.Transport = transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{
		Seed:    1,
		Default: transport.ChaosLink{Jitter: opts.HeartbeatEvery, BeaconLoss: 0.10},
	})
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p4")
	c.Kill(victim)
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("chaos run violates GMP:\n%v", rep)
	}
	if injected := c.TransportStats().ChaosInjected; injected == 0 {
		t.Error("chaos transport with 10% beacon loss injected no drops")
	}
}

func TestChaosPartitionDelaysExclusionUntilHeal(t *testing.T) {
	// Asymmetrically partition one member away from everyone: the group
	// excludes it (silence is silence); the partitioned member, which
	// still cannot be heard, must converge out. This is the half-open
	// failure the simulator's netsim schedules — now live.
	opts := fast(4)
	ch := transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{})
	opts.Transport = ch
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p4")
	// Block everything the victim sends; it still hears the group.
	for _, p := range []string{"p1", "p2", "p3"} {
		ch.SetLink(victim, ids.Named(p), transport.ChaosLink{Blocked: true})
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		v := c.ViewOf(ids.Named("p1"))
		if v != nil && !v.Has(victim) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never excluded the silenced member")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
