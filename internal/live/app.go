package live

import (
	"time"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// AppTraffic marks payload types that belong to an application layer
// riding the group's wire — view-synchronous broadcast, state transfer,
// replicated-state-machine traffic. A marked payload is routed to the
// node's AppHook on the event loop instead of the protocol state machine
// (which panics on vocabulary it does not know). Like SubstrateTraffic it
// never feeds the failure detector: the detector's evidence is the
// monitoring schedule's beacons, and letting application traffic stand in
// for them would keep a peer "alive" exactly as long as its data flows.
type AppTraffic interface{ AppTraffic() }

// AppHook is a per-node application layer driven by the node's event
// loop. Both methods run on the loop — the same goroutine that runs the
// protocol — so a hook needs no locking for state only it touches, and
// sees application traffic and view installs in the exact order the node
// processed them.
type AppHook interface {
	// HandleApp delivers one AppTraffic payload received from a peer (or
	// from this node itself, via AppNode.Send to its own id).
	HandleApp(from ids.ProcID, payload any)
	// HandleInstall reports a locally installed view, after the runtime
	// has refreshed its own monitoring state for it. members is in
	// seniority order (the coordinator first) and owned by the callee.
	HandleInstall(ver member.Version, members []ids.ProcID)
}

// AppHookFactory builds one AppHook per spawned node (Options.App). The
// AppNode it receives is the node's application-facing surface: identity,
// wire sends, loop marshalling, loop timers. The factory runs before the
// node's event loop starts, so the hook observes every install from the
// first one.
type AppHookFactory func(n AppNode) AppHook

// AppNode is the surface a node exposes to its AppHook.
type AppNode interface {
	// ID is the node's process identity.
	ID() ids.ProcID
	// Send posts an AppTraffic payload to a peer over the group's
	// transport (reliable FIFO per channel, §2.1). Sending to the node's
	// own id loops the payload back through its mailbox, preserving the
	// loop's ordering. Sends never block.
	Send(to ids.ProcID, payload any)
	// Run marshals fn onto the node's event loop; it never blocks and is
	// a no-op once the node has stopped. This is the only safe way for
	// other goroutines (clients) to touch hook state.
	Run(fn func())
	// After runs fn on the event loop after d; the returned cancel stops
	// it. Fires after node death are dropped.
	After(d time.Duration, fn func()) (cancel func())
}

// appNode adapts a liveNode to AppNode; methods are safe from any
// goroutine.
type appNode liveNode

func (a *appNode) ID() ids.ProcID { return a.id }

func (a *appNode) Send(to ids.ProcID, payload any) {
	ln := (*liveNode)(a)
	if to == ln.id {
		// Loop back through the mailbox: dispatch routes it to the hook
		// like any received frame, keeping self-sends ordered with the
		// loop's other work and off the transport entirely.
		ln.box.put(envelope{from: ln.id, payload: payload})
		return
	}
	ln.c.post(ln.id, to, 0, payload)
}

func (a *appNode) Run(fn func()) {
	(*liveNode)(a).box.put(envelope{fn: fn})
}

func (a *appNode) After(d time.Duration, fn func()) (cancel func()) {
	e := (*liveEnv)(a)
	ms := int64(d / time.Millisecond)
	if ms < 1 && d > 0 {
		ms = 1
	}
	return e.After(ms, fn)
}
