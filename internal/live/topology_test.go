package live

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/ids"
	"procgroup/internal/topology"
	"procgroup/internal/transport"
)

// --- Pinned: Full topology reproduces the pre-topology wheel exactly ---------

// oldWheel replays, literally, the liveness wheel the live runtime ran
// before the topology extraction:
//
//	peers := view members minus self, in view order   // per install
//	for _, m := range peers {                          // per beat
//		if sent, ok := lastSent[m]; !ok || now.Sub(sent) >= every {
//			post(Heartbeat); lastSent[m] = now
//		}
//		// ... suspicion check for the same m, which may Send and
//		// thereby refresh lastSent mid-pass ...
//	}
//
// TestFullBeaconScheduleMatchesPreTopologyWheel drives it and the
// topology-extracted wheel (buildWheel + beaconDue, walked exactly the
// way liveNode.beat walks it) over identical randomized schedules of
// installs, ticks and mid-pass protocol sends, and requires bit-identical
// beacon schedules — the Full extraction is behavior-preserving by
// construction, not by resemblance.
type oldWheel struct {
	self     ids.ProcID
	peers    []ids.ProcID
	lastSent map[ids.ProcID]time.Time
}

func (o *oldWheel) install(members []ids.ProcID) {
	o.peers = o.peers[:0]
	current := make(map[ids.ProcID]bool, len(members))
	for _, m := range members {
		current[m] = true
		if m != o.self {
			o.peers = append(o.peers, m)
		}
	}
	for q := range o.lastSent {
		if !current[q] {
			delete(o.lastSent, q)
		}
	}
}

func (o *oldWheel) beat(now time.Time, every time.Duration, onPeer func(m ids.ProcID, beaconed bool)) {
	for _, m := range o.peers {
		beaconed := false
		if sent, ok := o.lastSent[m]; !ok || now.Sub(sent) >= every {
			beaconed = true
			o.lastSent[m] = now
		}
		onPeer(m, beaconed)
	}
}

// newWheel drives the extracted scheduling code (buildWheel + beaconDue)
// with the same walk order liveNode.beat uses.
type newWheel struct {
	self     ids.ProcID
	topo     topology.Topology
	wheel    []wheelEntry
	lastSent map[ids.ProcID]time.Time
	beacons  ids.Set
}

func (w *newWheel) install(members []ids.ProcID) {
	watch := w.topo.Monitors(members, w.self)
	beaconTo := topology.BeaconTargets(w.topo, members, w.self)
	w.beacons = ids.NewSet(beaconTo...)
	w.wheel = buildWheel(members, w.self, beaconTo, watch)
	for q := range w.lastSent {
		if !w.beacons.Has(q) {
			delete(w.lastSent, q)
		}
	}
}

func (w *newWheel) beat(now time.Time, every time.Duration, onPeer func(m ids.ProcID, beaconed bool)) {
	for _, e := range w.wheel {
		beaconed := e.beacon && beaconDue(e.m, w.lastSent, now, every)
		onPeer(e.m, beaconed)
	}
}

func TestFullBeaconScheduleMatchesPreTopologyWheel(t *testing.T) {
	const every = 20 * time.Millisecond
	self := ids.Named("self")
	universe := ids.Gen(6)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		olds := &oldWheel{self: self, lastSent: make(map[ids.ProcID]time.Time)}
		news := &newWheel{self: self, topo: topology.Full{}, lastSent: make(map[ids.ProcID]time.Time)}
		install := func() {
			// A random view containing self, in a stable order.
			members := []ids.ProcID{self}
			for _, p := range universe {
				if rng.Intn(3) > 0 {
					members = append(members, p)
				}
			}
			olds.install(members)
			news.install(members)
		}
		install()
		for step := 0; step < 400; step++ {
			now = now.Add(time.Duration(rng.Intn(15_000)) * time.Microsecond)
			switch rng.Intn(6) {
			case 0:
				install()
			case 1: // a protocol send piggybacks as a beacon on one channel
				if len(olds.peers) > 0 {
					q := olds.peers[rng.Intn(len(olds.peers))]
					olds.lastSent[q] = now
					news.lastSent[q] = now
				}
			default: // a beat tick; suspicion may Send mid-pass
				var oldSched, newSched []string
				sendDuring := rng.Intn(4) == 0
				mid := func(lastSent map[ids.ProcID]time.Time, peers []ids.ProcID, i int) {
					// Emulate a suspicion firing at the i-th peer whose
					// handling sends protocol traffic to every peer (the
					// coordinator-starts-a-round case), suppressing the
					// rest of this pass's pure beacons.
					if sendDuring && i == 1 {
						for _, q := range peers {
							lastSent[q] = now
						}
					}
				}
				i := 0
				olds.beat(now, every, func(m ids.ProcID, beaconed bool) {
					if beaconed {
						oldSched = append(oldSched, m.String())
					}
					mid(olds.lastSent, olds.peers, i)
					i++
				})
				j := 0
				news.beat(now, every, func(m ids.ProcID, beaconed bool) {
					if beaconed {
						newSched = append(newSched, m.String())
					}
					mid(news.lastSent, olds.peers, j)
					j++
				})
				if fmt.Sprint(oldSched) != fmt.Sprint(newSched) {
					t.Fatalf("seed %d step %d: beacon schedule diverged\n  old: %v\n  new: %v",
						seed, step, oldSched, newSched)
				}
			}
		}
	}
}

// --- RingK end to end ---------------------------------------------------------

func ringOpts(n, k int) Options {
	opts := fast(n)
	opts.Topology = topology.RingK{K: k}
	return opts
}

func checkGMP(t *testing.T, c *Cluster, n int) {
	t.Helper()
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(n),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("ring trace violates GMP:\n%v", rep)
	}
}

func TestRingExcludesKilledMember(t *testing.T) {
	// Under ring-1 only one process monitors the victim; its report to
	// the (live) coordinator must still drive the exclusion.
	c := Start(ringOpts(5, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p4") // not the coordinator, not its monitor
	c.Kill(victim)
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	checkGMP(t, c, 5)
}

func TestRingCoordinatorDeathReconfiguresViaRelay(t *testing.T) {
	// Ring-1, kill the coordinator: only its single rank-predecessor
	// observes the death, and the next-in-rank (who must initiate
	// reconfiguration) does not monitor the coordinator at all. The
	// suspicion-relay path is the only way faulty(Mgr) can reach it
	// before the Table 1 timeout; with the relay, reconfiguration
	// completes at detection speed.
	c := Start(ringOpts(6, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) {
		t.Fatalf("dead coordinator still in %v", v)
	}
	if v.Mgr() != ids.Named("p2") {
		t.Errorf("Mgr = %v, want p2", v.Mgr())
	}
	checkGMP(t, c, 6)
}

func TestRingDegenerateKCollapsesToFull(t *testing.T) {
	// k ≥ n−1: every node watches everyone, nothing is relayed, and the
	// cluster behaves exactly like Full — including excluding a killed
	// coordinator.
	c := Start(ringOpts(4, 9))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) {
		t.Fatalf("dead coordinator still in %v", v)
	}
	checkGMP(t, c, 4)
}

func TestRingPartitionedMonitorRelayStillExcludes(t *testing.T) {
	// The Chaos × RingK interplay: ring-1 over p1..p5, so p2 is the ONLY
	// monitor of p3. Kill p3 and simultaneously block everything p2
	// sends to the coordinator p1 — p2's GMP-5 report can never arrive.
	// p3's exclusion must still happen, through the dissemination
	// machinery the partial topology adds: p2's relay carries faulty(p3)
	// to its next unsuspected ring successor p4, which forwards it to
	// p1; and if that relay is itself lost to the race with p2's own
	// exclusion (S1 discards traffic from members already believed
	// faulty), the coordinator's await fallback (Config.AwaitWait)
	// surmises faulty of the unaccounted p3 rather than wedging the
	// round on a member nobody monitors anymore. (p2 goes silent toward
	// its own monitor p1 and is usually excluded too — an asymmetric
	// partition is indistinguishable from a crash, which the paper
	// permits; with p3 and p2 gone the {p1, p4, p5} majority keeps the
	// group live.)
	opts := ringOpts(5, 1)
	ch := transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{})
	opts.Transport = ch
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ch.SetLink(ids.Named("p2"), ids.Named("p1"), transport.ChaosLink{Blocked: true})
	c.Kill(ids.Named("p3"))
	deadline := time.Now().Add(20 * time.Second)
	for {
		v := c.ViewOf(ids.Named("p1"))
		if v != nil && !v.Has(ids.Named("p3")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the relay never carried the monitor's suspicion around the partition: p3 still in the coordinator's view")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRingChurnKeepsCoverageAndGMP is the churn property test: across
// kill/join cycles under ring-k, every install must re-close the ring so
// that each live member is monitored by ≥1 live member, and the full
// accumulated trace must still certify GMP. Coverage is asserted on every
// converged view, including the k ≥ live-peer-count degenerate boundary
// the shrinking group crosses.
func TestRingChurnKeepsCoverageAndGMP(t *testing.T) {
	const n, k = 5, 2
	c := Start(ringOpts(n, k))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertCoverage := func(members []ids.ProcID) {
		t.Helper()
		topo := topology.RingK{K: k}
		monitored := ids.NewSet()
		for _, p := range members {
			for _, q := range topo.Monitors(members, p) {
				monitored.Add(q)
			}
		}
		for _, q := range members {
			if len(members) > 1 && !monitored.Has(q) {
				t.Fatalf("coverage broken: %v monitored by nobody in %v", q, members)
			}
		}
	}
	inc := uint32(0)
	for cycle := 0; cycle < 3; cycle++ {
		running := c.Running()
		victim := running[len(running)-1]
		if victim == ids.Named("p1") && len(running) > 1 {
			victim = running[len(running)-2]
		}
		c.Kill(victim)
		v, err := c.WaitConverged(15 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d after kill: %v", cycle, err)
		}
		assertCoverage(v.Members())
		inc++
		reborn := ids.ProcID{Site: victim.Site, Incarnation: victim.Incarnation + inc}
		c.Join(reborn, c.Running()[0])
		v, err = c.WaitConverged(15 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d after join: %v", cycle, err)
		}
		assertCoverage(v.Members())
	}
	checkGMP(t, c, n)
}

// TestRingShrinksDetectorStateToK pins the O(n)→O(k) claim operationally:
// after install, a ring node's wheel only covers its 2k neighbors, not
// the whole view.
func TestRingShrinksDetectorStateToK(t *testing.T) {
	const n, k = 9, 2
	c := Start(ringOpts(n, k))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	ln := c.nodes[ids.Named("p5")]
	c.mu.Unlock()
	if ln == nil {
		t.Fatal("p5 missing")
	}
	done := make(chan struct{})
	var watch, beaconTo, wheel int
	ln.box.put(envelope{fn: func() {
		watch, beaconTo, wheel = len(ln.watch), len(ln.beaconTo), len(ln.wheel)
		close(done)
	}})
	<-done
	if watch != k || beaconTo != k || wheel != 2*k {
		t.Errorf("ring node tracks watch=%d beaconTo=%d wheel=%d, want %d/%d/%d (O(k), not O(n))",
			watch, beaconTo, wheel, k, k, 2*k)
	}
}

func TestFullTopologyExplicitMatchesDefault(t *testing.T) {
	// GroupOptions.Topology = Full must behave exactly like the nil
	// default (it IS the default): boot, kill, exclude, GMP.
	opts := fast(5)
	opts.Topology = topology.Full{}
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p5")) {
		t.Fatalf("victim still in %v", v)
	}
	checkGMP(t, c, 5)
}

func TestRingOverTCPExcludesKilledMember(t *testing.T) {
	// The whole stack at once: ring-2 monitoring over real sockets. The
	// lazily-dialed connection count must stay at the ring's footprint
	// (≤ n·k pairs, well under the full mesh's n(n−1)/2) while exclusion
	// still works.
	const n, k = 6, 2
	opts := ringOpts(n, k)
	opts.Transport = transport.NewTCP()
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the beacon pattern settle, then check the gauge.
	time.Sleep(10 * opts.HeartbeatEvery)
	if conns, max := c.TransportStats().ConnsOpen, int64(n*k); conns == 0 || conns > max {
		t.Errorf("ring ConnsOpen = %d, want 1..%d (full mesh would be %d)", conns, max, n*(n-1)/2)
	}
	victim := ids.Named("p4")
	c.Kill(victim)
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	checkGMP(t, c, n)
}

// --- Hier end to end ----------------------------------------------------------

func hierOpts(n, clusterSize, k int) Options {
	opts := fast(n)
	opts.Topology = topology.Hier{C: clusterSize, K: k}
	return opts
}

func TestHierExcludesKilledMember(t *testing.T) {
	// n=9, C=3, K=1: the victim p6 is watched only by its intra-cluster
	// predecessor p5; the report must cross the hierarchy to the
	// coordinator p1 and drive the exclusion.
	c := Start(hierOpts(9, 3, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p6")
	c.Kill(victim)
	v, err := c.WaitConverged(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Fatalf("victim still in %v", v)
	}
	checkGMP(t, c, 9)
}

func TestHierCoordinatorDeathReconfigures(t *testing.T) {
	// The coordinator is also its cluster's leader: killing it must let
	// the relay carry faulty(p1) from its monitors (intra predecessor +
	// previous leader) to the heir p2, which initiates reconfiguration.
	c := Start(hierOpts(9, 3, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	v, err := c.WaitConverged(25 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) {
		t.Fatalf("dead coordinator still in %v", v)
	}
	if v.Mgr() != ids.Named("p2") {
		t.Errorf("Mgr = %v, want p2", v.Mgr())
	}
	checkGMP(t, c, 9)
}

func TestHierPartitionedMonitorRelayStillExcludes(t *testing.T) {
	// The Chaos × Hier interplay, mirroring the ring-1 partition test:
	// under Hier{C:3, K:1} over p1..p9, p5 is the ONLY monitor of p6.
	// Kill p6 and block everything p5 sends to the coordinator p1 — p5's
	// GMP-5 report can never arrive directly. The exclusion must still
	// happen through the hierarchy's dissemination: p5's relay re-closes
	// the topology over the unsuspected members (clusters recomputed over
	// the filtered view) and hands faulty(p6) to its new intra-cluster
	// successor, from which the strongly-connected monitor graph carries
	// it — leader ring included — to p1; the coordinator's await fallback
	// (Config.AwaitWait) backstops the race with p5's own exclusion.
	opts := hierOpts(9, 3, 1)
	ch := transport.NewChaos(transport.NewInmem(), transport.ChaosOptions{})
	opts.Transport = ch
	c := Start(opts)
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ch.SetLink(ids.Named("p5"), ids.Named("p1"), transport.ChaosLink{Blocked: true})
	c.Kill(ids.Named("p6"))
	deadline := time.Now().Add(25 * time.Second)
	for {
		v := c.ViewOf(ids.Named("p1"))
		if v != nil && !v.Has(ids.Named("p6")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the hierarchy never carried the monitor's suspicion around the partition: p6 still in the coordinator's view")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHierChurnKeepsCoverageAndGMP(t *testing.T) {
	// Kill/join cycles under the hierarchy: every install recomputes the
	// clusters over the surviving members, and coverage (every member
	// watched by ≥1 other) must hold on every converged view.
	const n = 9
	c := Start(hierOpts(n, 3, 1))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	assertCoverage := func(members []ids.ProcID) {
		t.Helper()
		topo := topology.Hier{C: 3, K: 1}
		monitored := ids.NewSet()
		for _, p := range members {
			for _, q := range topo.Monitors(members, p) {
				monitored.Add(q)
			}
		}
		for _, q := range members {
			if len(members) > 1 && !monitored.Has(q) {
				t.Fatalf("coverage broken: %v monitored by nobody in %v", q, members)
			}
		}
	}
	inc := uint32(0)
	for cycle := 0; cycle < 2; cycle++ {
		running := c.Running()
		victim := running[len(running)-1]
		if victim == ids.Named("p1") && len(running) > 1 {
			victim = running[len(running)-2]
		}
		c.Kill(victim)
		v, err := c.WaitConverged(20 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d after kill: %v", cycle, err)
		}
		assertCoverage(v.Members())
		inc++
		reborn := ids.ProcID{Site: victim.Site, Incarnation: victim.Incarnation + inc}
		c.Join(reborn, c.Running()[0])
		v, err = c.WaitConverged(20 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d after join: %v", cycle, err)
		}
		assertCoverage(v.Members())
	}
	checkGMP(t, c, n)
}
