package live

import (
	"testing"
	"time"

	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/ids"
)

// fast returns options tuned for test speed.
func fast(n int) Options {
	return Options{
		N:              n,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	}
}

func TestBootstrapConverges(t *testing.T) {
	c := Start(fast(5))
	defer c.Stop()
	v, err := c.WaitConverged(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 5 || v.Version() != 0 {
		t.Errorf("initial view %v", v)
	}
}

func TestKillIsDetectedAndExcluded(t *testing.T) {
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ids.Named("p5")
	c.Kill(victim)
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) || v.Size() != 4 {
		t.Errorf("view after kill: %v", v)
	}
}

func TestCoordinatorKillTriggersReconfiguration(t *testing.T) {
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	v, err := c.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(ids.Named("p1")) {
		t.Errorf("dead coordinator still in %v", v)
	}
	if v.Mgr() != ids.Named("p2") {
		t.Errorf("Mgr = %v, want p2", v.Mgr())
	}
	ok := c.Query(ids.Named("p2"), func(n *core.Node) {
		if !n.IsCoordinator() {
			t.Error("p2 does not believe itself coordinator")
		}
	})
	if !ok {
		t.Fatal("p2 is gone")
	}
}

func TestLiveJoin(t *testing.T) {
	c := Start(fast(4))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	j := ids.Named("p9")
	c.Join(j, ids.Named("p1"))
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(j) || v.Size() != 5 {
		t.Errorf("view after join: %v", v)
	}
}

func TestUpdatesStreamDeliversInstalls(t *testing.T) {
	c := Start(fast(3))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p3"))
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Drain: we must find a v1 install from both survivors.
	got := map[ids.ProcID]bool{}
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case u := <-c.Updates():
			if u.Ver == 1 {
				got[u.Proc] = true
			}
		case <-deadline:
			t.Fatalf("v1 installs seen only from %v", got)
		}
	}
}

func TestLiveRunSatisfiesGMP(t *testing.T) {
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p5"))
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p1"))
	if _, err := c.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("live run violates GMP:\n%v", rep)
	}
}

func TestStopIsIdempotentAndJoinsGoroutines(t *testing.T) {
	c := Start(fast(3))
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // second call must be a no-op
	if got := c.Running(); len(got) != 0 {
		t.Errorf("Running after Stop = %v", got)
	}
	// Join after Stop must not spawn anything.
	c.Join(ids.Named("late"), ids.Named("p1"))
	if got := c.Running(); len(got) != 0 {
		t.Errorf("Join after Stop spawned %v", got)
	}
}

func TestRejoinWithNewIncarnation(t *testing.T) {
	// A killed site comes back as a new incarnation (the paper's model of
	// recovery, §1) and is admitted as a brand-new process; the old
	// identifier never reappears (GMP-4).
	c := Start(fast(4))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	old := ids.Named("p4")
	c.Kill(old)
	if _, err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	reborn := ids.ProcID{Site: "p4", Incarnation: 1}
	c.Join(reborn, ids.Named("p1"))
	v, err := c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(reborn) || v.Has(old) {
		t.Errorf("view %v, want reborn incarnation only", v)
	}
	if v.Rank(reborn) != 1 {
		t.Errorf("reborn rank %d, want lowest seniority", v.Rank(reborn))
	}
}

func TestJoinDuringCoordinatorFailure(t *testing.T) {
	// The join request races a coordinator kill; the group must converge
	// and, because the contact re-reports to the new coordinator via the
	// queued Recovered set surviving in gossip, usually admit the joiner.
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	go c.Join(ids.Named("j1"), ids.Named("p3"))
	c.Kill(ids.Named("p1"))
	if _, err := c.WaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSoakChurnLoop(t *testing.T) {
	// A soak of the live runtime: repeated kill/join cycles with real
	// goroutines and heartbeats, converging after every change, then a
	// full GMP check over the accumulated trace.
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	c := Start(fast(5))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	inc := uint32(0)
	for cycle := 0; cycle < 4; cycle++ {
		running := c.Running()
		victim := running[len(running)-1]
		if victim == ids.Named("p1") && len(running) > 1 {
			victim = running[len(running)-2]
		}
		c.Kill(victim)
		if _, err := c.WaitConverged(15 * time.Second); err != nil {
			t.Fatalf("cycle %d after kill: %v", cycle, err)
		}
		inc++
		reborn := ids.ProcID{Site: victim.Site, Incarnation: victim.Incarnation + inc}
		contact := c.Running()[0]
		c.Join(reborn, contact)
		if _, err := c.WaitConverged(15 * time.Second); err != nil {
			t.Fatalf("cycle %d after join: %v", cycle, err)
		}
	}
	running := ids.NewSet(c.Running()...)
	rep := check.Run(check.Input{
		Recorder: c.Recorder(),
		Initial:  ids.Gen(5),
		Alive:    running.Has,
	})
	if !rep.OK() {
		t.Errorf("soak trace violates GMP:\n%v", rep)
	}
}

func TestQueryOnDeadNode(t *testing.T) {
	c := Start(fast(3))
	defer c.Stop()
	if _, err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Kill(ids.Named("p3"))
	if c.Query(ids.Named("p3"), func(*core.Node) {}) {
		t.Error("Query on killed node reported success")
	}
	if v := c.ViewOf(ids.Named("p3")); v != nil {
		t.Error("ViewOf killed node returned a view")
	}
}
