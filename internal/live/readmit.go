package live

// Readmission governance: the second half of the false-suspicion-cascade
// fix. Hysteresis (internal/fd) keeps most timing mistakes from surfacing
// at all; this layer bounds the damage when one does. A member excluded
// by mistake quits itself (Fig. 2) and rejoins as a fresh incarnation of
// the same site — and a site that keeps flapping would otherwise drive
// one full majority-gated reconfiguration per flap, forever. The governor
// meters readmission with a token bucket per *site name* (the stable part
// of ids.ProcID — exactly what survives across incarnations), consulted
// by the coordinator through the core.ReadmissionGovernor seam before it
// draws an Add. A deferred joiner stays queued in Recovered(Mgr) and is
// admitted when the bucket refills; the join is delayed, never denied, so
// F-admission liveness is preserved while the reconfiguration rate under
// sustained flapping is capped at Burst + elapsed/MinInterval per site.

import (
	"time"

	"procgroup/internal/ids"
)

// ReadmitPolicy tunes the readmission governor. The zero value disables
// it (every join admitted immediately, the pre-governor behavior).
type ReadmitPolicy struct {
	// MinInterval is the steady-state spacing between admissions of the
	// same recently excluded site: its token bucket refills one token per
	// MinInterval. Zero disables the governor.
	MinInterval time.Duration
	// Burst is the bucket capacity (default 1): how many readmissions a
	// just-excluded site gets before the rate-limit bites. The first
	// exclusion fills the bucket, so a genuinely crashed member that
	// restarts once is admitted without delay.
	Burst int
	// Forget expires a site's exclusion record this long after its last
	// exclusion: a site that stopped flapping rejoins ungoverned.
	// Default 10 × MinInterval.
	Forget time.Duration
}

func (p ReadmitPolicy) withDefaults() ReadmitPolicy {
	if p.MinInterval <= 0 {
		return p
	}
	if p.Burst <= 0 {
		p.Burst = 1
	}
	if p.Forget <= 0 {
		p.Forget = 10 * p.MinInterval
	}
	return p
}

func (p ReadmitPolicy) enabled() bool { return p.MinInterval > 0 }

// readmitGov is one node's governor state. Loop-owned like the detector:
// every node tracks exclusions (cheap — one record per recently excluded
// site), so whichever member is coordinator when a rejoin arrives has the
// history to meter it.
type readmitGov struct {
	pol     ReadmitPolicy
	sites   map[string]*readmitSite
	members ids.Set // previous install, diffed to observe exclusions
}

// readmitSite is one site's bucket. authorized holds the incarnation with
// an open grant: AdmitJoiner may be re-consulted several times before the
// add commits (round chaining, reconfiguration), and only the first grant
// pays a token.
type readmitSite struct {
	tokens     float64
	refillAt   time.Time
	excludedAt time.Time
	authorized ids.ProcID
}

func newReadmitGov(pol ReadmitPolicy) *readmitGov {
	pol = pol.withDefaults()
	if !pol.enabled() {
		return nil
	}
	return &readmitGov{pol: pol, sites: make(map[string]*readmitSite)}
}

// noteInstall diffs the freshly installed membership against the previous
// one: members that left are stamped excluded (opening or refreshing
// their site's governed window), members that arrived consume their open
// grant. A nil governor records nothing.
func (g *readmitGov) noteInstall(members []ids.ProcID, now time.Time) {
	if g == nil {
		return
	}
	cur := ids.NewSet(members...)
	for q := range g.members {
		if cur.Has(q) {
			continue
		}
		rec, ok := g.sites[q.Site]
		if !ok {
			// First exclusion: a full bucket, so a one-off crash-and-
			// restart is admitted without delay.
			rec = &readmitSite{tokens: float64(g.pol.Burst), refillAt: now}
			g.sites[q.Site] = rec
		}
		rec.excludedAt = now
		rec.authorized = ids.Nil
	}
	for _, q := range members {
		if rec, ok := g.sites[q.Site]; ok && rec.authorized == q {
			rec.authorized = ids.Nil // the add committed: grant consumed
		}
	}
	g.members = cur
}

// admit decides whether joiner q may be admitted at now. When deferred,
// the second return value is how long until a token accrues (the wake
// the caller should arm).
func (g *readmitGov) admit(q ids.ProcID, now time.Time) (bool, time.Duration) {
	if g == nil {
		return true, 0
	}
	rec, ok := g.sites[q.Site]
	if !ok {
		return true, 0 // never excluded on our watch
	}
	if now.Sub(rec.excludedAt) > g.pol.Forget {
		delete(g.sites, q.Site)
		return true, 0
	}
	if rec.authorized == q {
		return true, 0 // open grant, already paid
	}
	if !rec.refillAt.IsZero() {
		rec.tokens += float64(now.Sub(rec.refillAt)) / float64(g.pol.MinInterval)
		if full := float64(g.pol.Burst); rec.tokens > full {
			rec.tokens = full
		}
	}
	rec.refillAt = now
	if rec.tokens >= 1 {
		rec.tokens--
		rec.authorized = q
		return true, 0
	}
	wait := time.Duration((1 - rec.tokens) * float64(g.pol.MinInterval))
	return false, wait
}
