package topology

import (
	"procgroup/internal/ids"
)

// DefaultHierClusterSize is the cluster size a zero-valued Hier uses.
const DefaultHierClusterSize = 8

// Hier is two-level hierarchical monitoring, the cluster/leader shape
// Dobre et al. argue for at scale: the view's seniority order is cut into
// contiguous clusters of C members, each cluster runs ring-k monitoring
// internally, and the clusters' leaders (each cluster's most senior
// member) run a second ring-k among themselves — the inter-cluster
// monitor links that carry failure evidence between clusters. Total
// monitoring degree stays O(k) per member (leaders pay 2k), so beacon
// traffic is O(n·k) like RingK, but the monitoring graph's diameter drops
// from n/k hops to ~C/k + L/k (L = number of clusters): suspicion
// dissemination — relay or digest — crosses the group in far fewer hops
// at n in the hundreds.
//
// Like RingK, the layout is a pure function of the membership list,
// recomputed on every view installation, so churn immediately re-clusters
// the group: an excluded leader's cluster gets its next member promoted,
// and members shift between clusters as seniors leave. The graph stays
// strongly connected (intra-cluster rings pass through every member,
// leaders link every cluster), so the suspicion relay's hop-by-hop flood
// reaches every operational member, and every member has at least one
// monitor whenever the group has two members — F1's eventual-suspicion
// contract keeps its coverage.
//
// With one cluster (len(view) ≤ C) Hier degenerates to RingK{K} exactly;
// with K ≥ cluster size − 1 each cluster is internally full-mesh.
type Hier struct {
	// C is the cluster size (DefaultHierClusterSize when ≤ 0). Clusters
	// are contiguous runs of the seniority order; the last cluster may be
	// smaller.
	C int
	// K is the ring successor count used both inside clusters and on the
	// leader ring (DefaultRingK when ≤ 0).
	K int
}

func (h Hier) c() int {
	if h.C <= 0 {
		return DefaultHierClusterSize
	}
	return h.C
}

func (h Hier) k() int {
	if h.K <= 0 {
		return DefaultRingK
	}
	return h.K
}

// Monitors implements Topology: self's k successors within its cluster,
// plus — when self leads its cluster — the k successor leaders on the
// leader ring.
func (h Hier) Monitors(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	return h.links(view, self, +1)
}

// MonitoredBy implements Inverter: self's k predecessors within its
// cluster, plus — when self leads its cluster — the k predecessor
// leaders on the leader ring.
func (h Hier) MonitoredBy(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	return h.links(view, self, -1)
}

// links walks the intra-cluster ring and (for leaders) the leader ring in
// the given direction, deduplicating the two walks — with few, small
// clusters the same member can be both a cluster-mate and a leader peer.
func (h Hier) links(view []ids.ProcID, self ids.ProcID, dir int) []ids.ProcID {
	i := indexOf(view, self)
	if i < 0 {
		return nil
	}
	c := h.c()
	if len(view) <= c {
		// One cluster: the hierarchy is exactly ring-k.
		return RingK{K: h.K}.ring(view, self, dir)
	}
	cluster := view[(i/c)*c : min(((i/c)+1)*c, len(view))]
	out := subring(cluster, self, dir, h.k())
	if i%c == 0 {
		// Leaders additionally ride the leader ring. Leader count is
		// ⌈n/C⌉ ≥ 2 here, so the walk always yields peers.
		leaders := make([]ids.ProcID, 0, (len(view)+c-1)/c)
		for j := 0; j < len(view); j += c {
			leaders = append(leaders, view[j])
		}
		for _, p := range subring(leaders, self, dir, h.k()) {
			if !contains(out, p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// subring walks k steps around one contiguous slice of the view in the
// given direction from self, degenerating to the slice's full mesh when
// k covers it — the same shape as RingK.ring over a sub-list.
func subring(sub []ids.ProcID, self ids.ProcID, dir, k int) []ids.ProcID {
	i := indexOf(sub, self)
	if i < 0 || len(sub) <= 1 {
		return nil
	}
	n := len(sub)
	if k >= n-1 {
		return others(sub, self)
	}
	out := make([]ids.ProcID, 0, k)
	for j := 1; j <= k; j++ {
		out = append(out, sub[((i+dir*j)%n+n)%n])
	}
	return out
}
