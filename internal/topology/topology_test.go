package topology

import (
	"fmt"
	"math/rand"
	"testing"

	"procgroup/internal/ids"
)

func view(n int) []ids.ProcID { return ids.Gen(n) }

func TestFullMonitorsEveryoneElseInOrder(t *testing.T) {
	v := view(5)
	got := Full{}.Monitors(v, v[2])
	want := []ids.ProcID{v[0], v[1], v[3], v[4]}
	if !equal(got, want) {
		t.Errorf("Full.Monitors = %v, want %v", got, want)
	}
	if got := (Full{}).Monitors(v, ids.Named("stranger")); got != nil {
		t.Errorf("non-member monitors %v, want nil", got)
	}
}

func TestRingKMonitorsSuccessors(t *testing.T) {
	v := view(6)
	r := RingK{K: 2}
	// Middle of the ring.
	if got, want := r.Monitors(v, v[1]), []ids.ProcID{v[2], v[3]}; !equal(got, want) {
		t.Errorf("Monitors(p2) = %v, want %v", got, want)
	}
	// Wrap-around: the most junior member's successors are the seniors.
	if got, want := r.Monitors(v, v[5]), []ids.ProcID{v[0], v[1]}; !equal(got, want) {
		t.Errorf("Monitors(p6) = %v, want %v", got, want)
	}
	// Inverse: predecessors, nearest first.
	if got, want := r.MonitoredBy(v, v[0]), []ids.ProcID{v[5], v[4]}; !equal(got, want) {
		t.Errorf("MonitoredBy(p1) = %v, want %v", got, want)
	}
}

func TestRingKDegeneratesToFull(t *testing.T) {
	// k ≥ n−1 must collapse to the full mesh exactly — the degenerate
	// case in which a partial topology would otherwise drop coverage.
	for _, n := range []int{2, 3, 4, 5} {
		v := view(n)
		for _, k := range []int{n - 1, n, n + 3} {
			r := RingK{K: k}
			for _, self := range v {
				if got, want := r.Monitors(v, self), (Full{}).Monitors(v, self); !equal(got, want) {
					t.Errorf("n=%d k=%d RingK.Monitors(%v) = %v, want Full %v", n, k, self, got, want)
				}
				if got, want := r.MonitoredBy(v, self), (Full{}).MonitoredBy(v, self); !equal(got, want) {
					t.Errorf("n=%d k=%d RingK.MonitoredBy(%v) = %v, want Full %v", n, k, self, got, want)
				}
			}
		}
	}
}

func TestRingKZeroValueUsesDefaultK(t *testing.T) {
	v := view(10)
	if got := len(RingK{}.Monitors(v, v[0])); got != DefaultRingK {
		t.Errorf("zero-value RingK monitors %d members, want %d", got, DefaultRingK)
	}
}

// TestCoverageInvariant is the property the live runtime depends on after
// every install: under any topology here, every view member is monitored
// by at least one *other* member, so no failure can go unobserved. Views
// and k are randomized; the degenerate k ≥ n−1 collapse is included.
func TestCoverageInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		v := view(n)
		topos := []Topology{
			Full{},
			RingK{K: 1 + rng.Intn(n+1)},
			Hier{C: 1 + rng.Intn(n+1), K: 1 + rng.Intn(4)},
		}
		for _, topo := range topos {
			monitored := ids.NewSet()
			for _, p := range v {
				for _, q := range topo.Monitors(v, p) {
					if q == p {
						t.Fatalf("%T: %v monitors itself", topo, p)
					}
					monitored.Add(q)
				}
			}
			for _, q := range v {
				if !monitored.Has(q) {
					t.Fatalf("%T n=%d: %v is monitored by nobody", topo, n, q)
				}
			}
		}
	}
}

// TestBeaconTargetsMatchesGenericInverse pins the Inverter fast paths to
// the generic inverse of Monitors: p beacons to q exactly when q
// monitors p.
func TestBeaconTargetsMatchesGenericInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		v := view(n)
		for _, topo := range []Topology{
			Full{},
			RingK{K: 1 + rng.Intn(n+1)},
			Hier{C: 1 + rng.Intn(n+1), K: 1 + rng.Intn(4)},
		} {
			for _, self := range v {
				fast := BeaconTargets(topo, v, self)
				generic := BeaconTargets(generically{topo}, v, self)
				if !sameSet(fast, generic) {
					t.Fatalf("%T n=%d self=%v: fast inverse %v, generic %v", topo, n, self, fast, generic)
				}
			}
		}
	}
}

// generically hides a Topology's Inverter so BeaconTargets takes the
// generic path.
type generically struct{ t Topology }

func (g generically) Monitors(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	return g.t.Monitors(view, self)
}

func TestRingKFilteredViewReclosesRing(t *testing.T) {
	// The suspicion-relay path calls Monitors over the view minus the
	// members the relayer believes faulty: the ring must re-close over
	// the remainder, skipping the suspects entirely.
	v := view(5)
	alive := []ids.ProcID{v[0], v[1], v[3]} // v[2], v[4] suspected
	got := RingK{K: 1}.Monitors(alive, v[1])
	want := []ids.ProcID{v[3]}
	if !equal(got, want) {
		t.Errorf("filtered ring successors of %v = %v, want %v", v[1], got, want)
	}
}

func equal(a, b []ids.ProcID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []ids.ProcID) bool {
	return fmt.Sprint(ids.NewSet(a...).Sorted()) == fmt.Sprint(ids.NewSet(b...).Sorted())
}
