package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse resolves a textual topology spec, the shared vocabulary of the
// CLI tools (gmpsim -topology, gmpbench's multi-process members):
//
//	full          all-to-all monitoring
//	ring          ring with the default k
//	ring:k        ring with k rank-successors, k ≥ 1
//	hier          hierarchy with default cluster size and k
//	hier:c        clusters of c, default k
//	hier:c:k      clusters of c with intra-cluster ring-k
func Parse(spec string) (Topology, error) {
	name, args, hasArgs := strings.Cut(spec, ":")
	switch name {
	case "", "full":
		if hasArgs {
			return nil, fmt.Errorf("topology: %q takes no parameters", spec)
		}
		return Full{}, nil
	case "ring":
		k, err := parseInts(spec, args, hasArgs, 1)
		if err != nil {
			return nil, err
		}
		return RingK{K: k[0]}, nil
	case "hier":
		ck, err := parseInts(spec, args, hasArgs, 2)
		if err != nil {
			return nil, err
		}
		return Hier{C: ck[0], K: ck[1]}, nil
	default:
		return nil, fmt.Errorf("topology: unknown spec %q; want full, ring[:k], or hier[:c[:k]]", spec)
	}
}

// parseInts splits args into at most max colon-separated positive ints,
// zero-padding the tail (0 selects each parameter's documented default).
// A colon with nothing behind it ("ring:") is an empty parameter, not an
// absent one, and is rejected like any other non-integer.
func parseInts(spec, args string, hasArgs bool, max int) ([]int, error) {
	out := make([]int, max)
	if !hasArgs {
		return out, nil
	}
	fields := strings.Split(args, ":")
	if len(fields) > max {
		return nil, fmt.Errorf("topology: %q has too many parameters", spec)
	}
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("topology: bad parameter %q in %q: want a positive integer", f, spec)
		}
		out[i] = v
	}
	return out, nil
}
