package topology

import (
	"procgroup/internal/ids"
)

// Topology decides who monitors whom. The paper's F1 (§2.2) only requires
// that a genuinely faulty process is *eventually* suspected by *some*
// operational member — it never requires all-to-all observation — so the
// monitoring relation is a free design axis, independent of membership.
// A Topology pins that axis down: given a view's membership, it names the
// members each process watches (runs failure-detection state for). The
// inverse relation — who watches me — is who I must beacon to; see
// BeaconTargets.
//
// Implementations must be pure functions of their arguments: the live
// runtime calls Monitors concurrently from every node's event loop, on
// every view installation (so churn immediately re-closes a partial
// topology) and on every suspicion relay (where the view is filtered down
// to the members the relayer still believes operational). Stateless
// struct values satisfy this trivially.
type Topology interface {
	// Monitors returns the members self must monitor, given the view's
	// membership in seniority order (most senior first — the order
	// member.View.Members returns). The result excludes self, preserves
	// the view's relative order where meaningful, and is nil when self
	// is not in view or has nothing to watch.
	Monitors(view []ids.ProcID, self ids.ProcID) []ids.ProcID
}

// Inverter is an optional Topology extension: a direct implementation of
// the inverse relation ("who monitors self"), used by BeaconTargets as a
// fast path. Implementations must agree with the generic inverse of
// Monitors — TestBeaconTargetsMatchesGenericInverse pins this.
type Inverter interface {
	// MonitoredBy returns the members that monitor self in view — the
	// set self must beacon to.
	MonitoredBy(view []ids.ProcID, self ids.ProcID) []ids.ProcID
}

// BeaconTargets returns the members that monitor self under t — the
// processes self must send liveness beacons to. It uses t's Inverter fast
// path when available and otherwise derives the inverse from Monitors.
func BeaconTargets(t Topology, view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	if inv, ok := t.(Inverter); ok {
		return inv.MonitoredBy(view, self)
	}
	var out []ids.ProcID
	for _, q := range view {
		if q == self {
			continue
		}
		for _, w := range t.Monitors(view, q) {
			if w == self {
				out = append(out, q)
				break
			}
		}
	}
	return out
}

// Full is the all-to-all topology: every member monitors every other —
// the behavior the live runtime had before the topology was made
// pluggable, and the default when GroupOptions.Topology is nil. Beacon
// traffic and (on socket transports) connection count grow quadratically
// with the group, which is what RingK exists to break.
type Full struct{}

// Monitors implements Topology: every other view member, in view order.
func (Full) Monitors(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	if !contains(view, self) {
		return nil
	}
	return others(view, self)
}

// MonitoredBy implements Inverter: the relation is symmetric.
func (Full) MonitoredBy(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	if !contains(view, self) {
		return nil
	}
	return others(view, self)
}

// DefaultRingK is the successor count a zero-valued RingK uses.
const DefaultRingK = 3

// RingK is ring-k monitoring: the view's seniority order is closed into a
// ring, and each process monitors its K rank-successors (and is therefore
// monitored by its K rank-predecessors, the set it beacons to). Beacon
// traffic is O(n·k) instead of O(n²) and a socket transport's lazy dialing
// opens ~n·k connections instead of n(n−1)/2.
//
// The ring is recomputed from the membership list on every call, so each
// view installation re-closes it around excluded members — k consecutive
// failures between two installations are the window's tolerance, and the
// suspicion-relay path (see internal/core's SuspicionRelayer) carries a
// monitor's faulty_p(q) around the live remainder of the ring so it
// reaches the coordinator (or, when the coordinator is the suspect, the
// member next in rank) even though they do not monitor q themselves.
//
// When K ≥ len(view)−1 every successor set is the whole group and RingK
// degenerates to Full exactly.
type RingK struct {
	// K is the number of rank-successors each process monitors
	// (DefaultRingK when ≤ 0).
	K int
}

func (r RingK) k() int {
	if r.K <= 0 {
		return DefaultRingK
	}
	return r.K
}

// Monitors implements Topology: the k members following self in the
// cyclic seniority order.
func (r RingK) Monitors(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	return r.ring(view, self, +1)
}

// MonitoredBy implements Inverter: the k members preceding self in the
// cyclic seniority order, nearest first.
func (r RingK) MonitoredBy(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	return r.ring(view, self, -1)
}

// ring walks k steps around the view in the given direction from self.
func (r RingK) ring(view []ids.ProcID, self ids.ProcID, dir int) []ids.ProcID {
	i := indexOf(view, self)
	if i < 0 {
		return nil
	}
	n := len(view)
	k := r.k()
	if k >= n-1 {
		return others(view, self) // degenerate: the ring is the full mesh
	}
	out := make([]ids.ProcID, 0, k)
	for j := 1; j <= k; j++ {
		out = append(out, view[((i+dir*j)%n+n)%n])
	}
	return out
}

// indexOf returns self's position in view, or -1.
func indexOf(view []ids.ProcID, self ids.ProcID) int {
	for i, m := range view {
		if m == self {
			return i
		}
	}
	return -1
}

func contains(view []ids.ProcID, self ids.ProcID) bool {
	return indexOf(view, self) >= 0
}

// others returns view minus self, preserving order.
func others(view []ids.ProcID, self ids.ProcID) []ids.ProcID {
	if len(view) <= 1 {
		return nil
	}
	out := make([]ids.ProcID, 0, len(view)-1)
	for _, m := range view {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}
