// Package topology makes the monitoring relation of the live runtime a
// pluggable policy: a Topology maps a view's membership to the set of
// members each process watches, decoupling *who monitors whom* from *who
// is a member*. Full reproduces the pre-extraction all-to-all behavior;
// RingK monitors k rank-successors around the seniority ring, cutting
// beacon traffic from O(n²) to O(n·k) while the suspicion-relay path in
// internal/core preserves F1's eventual-suspicion contract.
package topology
