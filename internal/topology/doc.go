// Package topology makes the monitoring relation of the live runtime a
// pluggable policy: a Topology maps a view's membership to the set of
// members each process watches, decoupling *who monitors whom* from *who
// is a member*. Full reproduces the pre-extraction all-to-all behavior;
// RingK monitors k rank-successors around the seniority ring, cutting
// beacon traffic from O(n²) to O(n·k) while the suspicion-relay path in
// internal/core preserves F1's eventual-suspicion contract; Hier cuts
// the seniority order into contiguous clusters of C — each an
// intra-cluster ring-K, stitched by a ring-K of the cluster leaders —
// keeping O(n·k) beacons while shrinking the suspicion-dissemination
// diameter from O(n/k) hops to O(C/K + n/(C·K)), the shape that holds
// exclusion latency flat past the flat ring's scale wall (DESIGN.md
// §10, experiment E19). Every implementation is stateless and
// recomputed per install, so churn re-closes the rings; Parse resolves
// the CLI vocabulary ("full", "ring:k", "hier:c:k") shared by gmpsim
// and gmpbench.
package topology
