package topology

import (
	"strings"
	"testing"

	"procgroup/internal/ids"
)

// TestParseErrorPaths pins every rejection branch of the spec grammar,
// including the offending spec appearing in the message (the CLI tools
// surface these verbatim).
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"full:3", "takes no parameters"},
		{"full:", "takes no parameters"},
		{":", "takes no parameters"}, // empty name is "full"; the colon is an argument
		{"mesh", "unknown spec"},
		{"Ring", "unknown spec"}, // the vocabulary is case-sensitive
		{"ring:0", "positive integer"},
		{"ring:-2", "positive integer"},
		{"ring:x", "positive integer"},
		{"ring:", "positive integer"}, // trailing colon is an empty parameter
		{"ring:1:2", "too many parameters"},
		{"hier:0", "positive integer"},
		{"hier:4:0", "positive integer"},
		{"hier:4:k", "positive integer"},
		{"hier:2:3:4", "too many parameters"},
	}
	for _, c := range cases {
		topo, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted: %#v", c.spec, topo)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want it to mention %q", c.spec, err, c.want)
		}
		if !strings.Contains(err.Error(), c.spec) {
			t.Errorf("Parse(%q) error %q does not name the offending spec", c.spec, err)
		}
	}
}

// TestParsePartialHierDefaults: "hier:c" leaves k at 0, which the Hier
// methods resolve to the documented default — the zero-padding contract.
func TestParsePartialHierDefaults(t *testing.T) {
	topo, err := Parse("hier:5")
	if err != nil {
		t.Fatal(err)
	}
	h, ok := topo.(Hier)
	if !ok || h.C != 5 || h.K != 0 {
		t.Fatalf("Parse(\"hier:5\") = %#v, want Hier{C:5, K:0}", topo)
	}
	if got := len(h.Monitors(view(20), view(20)[1])); got != DefaultRingK {
		t.Errorf("hier:5 non-leader monitors %d members, want the default k %d", got, DefaultRingK)
	}
}

// TestHierClusterSizeOne: C=1 makes every member its own cluster's
// leader, so the hierarchy collapses to a single leader ring over the
// whole view — exactly RingK with the same k, inverse included.
func TestHierClusterSizeOne(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		v := view(n)
		h := Hier{C: 1, K: 2}
		r := RingK{K: 2}
		for _, self := range v {
			if got, want := h.Monitors(v, self), r.Monitors(v, self); !equal(got, want) {
				t.Errorf("n=%d C=1: Monitors(%v) = %v, want RingK %v", n, self, got, want)
			}
			if got, want := h.MonitoredBy(v, self), r.MonitoredBy(v, self); !equal(got, want) {
				t.Errorf("n=%d C=1: MonitoredBy(%v) = %v, want RingK %v", n, self, got, want)
			}
		}
	}
}

// TestHierKCoversCluster: k ≥ cluster size − 1 makes each cluster an
// internal full mesh; a leader additionally walks the leader ring, with
// the duplicate walks deduplicated.
func TestHierKCoversCluster(t *testing.T) {
	// n=9, C=3, K=5: clusters {0,1,2} {3,4,5} {6,7,8}, leaders {0,3,6};
	// K=5 exceeds both the cluster size and the leader count.
	v := view(9)
	h := Hier{C: 3, K: 5}

	// Non-leader: the rest of its cluster, nothing more.
	if got, want := h.Monitors(v, v[4]), []ids.ProcID{v[3], v[5]}; !sameSet(got, want) {
		t.Errorf("Monitors(v4) = %v, want exactly its cluster-mates %v", got, want)
	}
	// Leader: cluster-mates plus every other leader, each exactly once.
	got := h.Monitors(v, v[3])
	want := []ids.ProcID{v[4], v[5], v[0], v[6]}
	if !sameSet(got, want) {
		t.Errorf("Monitors(leader v3) = %v, want %v", got, want)
	}
	seen := ids.NewSet()
	for _, p := range got {
		if seen.Has(p) {
			t.Errorf("Monitors(leader v3) lists %v twice", p)
		}
		seen.Add(p)
	}
}

// TestHierNonDivisibleN: when C does not divide n the last cluster is a
// contiguous remainder — its members must ring among themselves only,
// and its leader must still stitch into the leader ring.
func TestHierNonDivisibleN(t *testing.T) {
	// n=10, C=4, K=1: clusters {0..3} {4..7} {8,9}, leaders {0,4,8}.
	v := view(10)
	h := Hier{C: 4, K: 1}

	// The remainder cluster's non-leader wraps its two-member sub-ring.
	if got, want := h.Monitors(v, v[9]), []ids.ProcID{v[8]}; !equal(got, want) {
		t.Errorf("Monitors(v9) = %v, want %v", got, want)
	}
	// Its leader monitors its only cluster-mate and the next leader (wrap).
	if got, want := h.Monitors(v, v[8]), []ids.ProcID{v[9], v[0]}; !equal(got, want) {
		t.Errorf("Monitors(leader v8) = %v, want %v", got, want)
	}
	// No member of a full cluster reaches into the remainder cluster
	// except via the leader ring.
	for _, self := range []ids.ProcID{v[1], v[2], v[3], v[5], v[6], v[7]} {
		for _, q := range h.Monitors(v, self) {
			if q == v[8] || q == v[9] {
				t.Errorf("non-leader %v monitors %v across the cluster cut", self, q)
			}
		}
	}
	// A two-member remainder still leaves everyone monitored (coverage).
	monitored := ids.NewSet()
	for _, p := range v {
		for _, q := range h.Monitors(v, p) {
			monitored.Add(q)
		}
	}
	for _, p := range v {
		if !monitored.Has(p) {
			t.Errorf("%v monitored by nobody under the non-divisible layout", p)
		}
	}
}
