package topology

import (
	"math/rand"
	"sync"
	"testing"

	"procgroup/internal/ids"
)

func TestHierDegeneratesToRingKAtOneCluster(t *testing.T) {
	// n ≤ C is a single cluster: the hierarchy must be ring-k exactly,
	// including the inverse relation.
	for _, n := range []int{2, 3, 7, 8} {
		v := view(n)
		h := Hier{C: 8, K: 2}
		r := RingK{K: 2}
		for _, self := range v {
			if got, want := h.Monitors(v, self), r.Monitors(v, self); !equal(got, want) {
				t.Errorf("n=%d Hier.Monitors(%v) = %v, want RingK %v", n, self, got, want)
			}
			if got, want := h.MonitoredBy(v, self), r.MonitoredBy(v, self); !equal(got, want) {
				t.Errorf("n=%d Hier.MonitoredBy(%v) = %v, want RingK %v", n, self, got, want)
			}
		}
	}
}

func TestHierLeaderRingLinksClusters(t *testing.T) {
	// n=9, C=3, K=1: clusters {0,1,2} {3,4,5} {6,7,8}, leaders {0,3,6}.
	v := view(9)
	h := Hier{C: 3, K: 1}

	// A leader monitors its intra-cluster successor and the next leader.
	if got, want := h.Monitors(v, v[0]), []ids.ProcID{v[1], v[3]}; !equal(got, want) {
		t.Errorf("Monitors(leader v0) = %v, want %v", got, want)
	}
	// A non-leader stays inside its cluster, wrapping its sub-ring.
	if got, want := h.Monitors(v, v[2]), []ids.ProcID{v[0]}; !equal(got, want) {
		t.Errorf("Monitors(v2) = %v, want %v", got, want)
	}
	// Inverse of a mid leader: intra predecessor (wrap) + previous leader.
	if got, want := h.MonitoredBy(v, v[3]), []ids.ProcID{v[5], v[0]}; !equal(got, want) {
		t.Errorf("MonitoredBy(leader v3) = %v, want %v", got, want)
	}
	// The last cluster's leader wraps the leader ring back to the first.
	if got, want := h.Monitors(v, v[6]), []ids.ProcID{v[7], v[0]}; !equal(got, want) {
		t.Errorf("Monitors(leader v6) = %v, want %v", got, want)
	}
}

func TestHierZeroValueUsesDefaults(t *testing.T) {
	v := view(2 * DefaultHierClusterSize)
	got := Hier{}.Monitors(v, v[1])
	if len(got) != DefaultRingK {
		t.Errorf("zero-value Hier non-leader monitors %d members, want %d", len(got), DefaultRingK)
	}
}

// TestHierStronglyConnected: the relay/digest flood only reaches every
// operational member if the monitoring graph is strongly connected —
// intra-cluster rings pass through every member and the leader ring links
// every cluster, for any (n, C, K), including filtered (post-suspicion)
// views of any composition.
func TestHierStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(60)
		v := view(n)
		h := Hier{C: 1 + rng.Intn(12), K: 1 + rng.Intn(4)}
		// Reachability from every member over monitor edges.
		idx := make(map[ids.ProcID]int, n)
		for i, p := range v {
			idx[p] = i
		}
		for s := range v {
			seen := make([]bool, n)
			seen[s] = true
			queue := []int{s}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, q := range h.Monitors(v, v[cur]) {
					if j := idx[q]; !seen[j] {
						seen[j] = true
						queue = append(queue, j)
					}
				}
			}
			for j, ok := range seen {
				if !ok {
					t.Fatalf("n=%d C=%d K=%d: %v cannot reach %v over monitor edges", n, h.C, h.K, v[s], v[j])
				}
			}
		}
	}
}

// TestCoverageInvariantUnderConcurrentInstalls drives Monitors/MonitoredBy
// from many goroutines over differently-filtered views simultaneously —
// the live runtime's shape, where every node recomputes its watch and
// beacon sets on each install while relays filter the view down to
// unsuspected members. Topologies must be pure (this test is the -race
// witness) and must preserve the coverage invariant on every filtered
// view they can be handed.
func TestCoverageInvariantUnderConcurrentInstalls(t *testing.T) {
	base := view(32)
	topos := []Topology{RingK{K: 3}, Hier{C: 6, K: 2}, Hier{C: 3, K: 1}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 200; trial++ {
				// A random "install": some suffix of the group excluded,
				// some random members excluded, order preserved.
				v := make([]ids.ProcID, 0, len(base))
				for _, p := range base {
					if rng.Intn(4) > 0 {
						v = append(v, p)
					}
				}
				if len(v) < 2 {
					continue
				}
				for _, topo := range topos {
					monitored := ids.NewSet()
					for _, p := range v {
						for _, q := range topo.Monitors(v, p) {
							if q == p || !contains(v, q) {
								t.Errorf("%T: Monitors(%v) yields %v outside the filtered view", topo, p, q)
								return
							}
							monitored.Add(q)
						}
						if !sameSet(topo.(Inverter).MonitoredBy(v, p), BeaconTargets(generically{topo}, v, p)) {
							t.Errorf("%T: inverse mismatch for %v", topo, p)
							return
						}
					}
					for _, q := range v {
						if !monitored.Has(q) {
							t.Errorf("%T n=%d: %v monitored by nobody", topo, len(v), q)
							return
						}
					}
				}
			}
		}(int64(g) + 100)
	}
	wg.Wait()
}

func TestParseTopologySpecs(t *testing.T) {
	cases := []struct {
		spec string
		want Topology
	}{
		{"full", Full{}},
		{"", Full{}},
		{"ring", RingK{}},
		{"ring:4", RingK{K: 4}},
		{"hier", Hier{}},
		{"hier:16", Hier{C: 16}},
		{"hier:16:3", Hier{C: 16, K: 3}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"ring:0", "ring:x", "ring:1:2", "hier:0", "hier:2:3:4", "mesh", "full:3"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
