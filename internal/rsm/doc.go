// Package rsm turns the broadcast layer's totally-ordered delivery into
// a replicated state machine: every group member hosts a Node that
// applies the same command sequence to a deterministic StateMachine, so
// any member accepts writes and all members converge on the same state.
//
// A proposal is acknowledged only at *stability* — once every member of
// an installed view has processed it into the order — which is the
// paper-side moment after which no crash or view change can lose it.
// Joiners catch up by snapshot (StateMachine.Snapshot/Restore riding the
// broadcast layer's ViewSync), so the group serves a working set far
// larger than any single view change could replay.
//
// The package also carries the certification battery the benchmark and
// tests run: a Recorder that captures each replica's processed order,
// CheckTotalOrder (exactly-once, pairwise prefix consistency, agreement
// among survivors, per-view slot agreement) and CheckKVLinearizable
// (acked-durability, real-time order, read-your-writes against a replay
// of the order) — the replication analogue of the GMP property checker,
// run beside it over the same traces.
package rsm
