package rsm

import (
	"bytes"
	"encoding/gob"
)

// KV is the replicated key-value state machine behind examples/kvstore
// and the kv benchmark: string keys and values, last-writer-wins under
// the broadcast total order. Commands are the compact byte encodings of
// EncodePut and EncodeGet. Not safe for concurrent use on its own — a
// Node drives it from the event loop.
type KV struct {
	m map[string]string
}

// NewKV builds an empty store.
func NewKV() *KV { return &KV{m: make(map[string]string)} }

// Command opcodes (first byte of a command encoding).
const (
	cmdPut = 'P'
	cmdGet = 'G'
)

// EncodePut encodes a write command: key := val.
func EncodePut(key, val string) []byte {
	b := make([]byte, 0, 3+len(key)+len(val))
	b = append(b, cmdPut, byte(len(key)>>8), byte(len(key)))
	b = append(b, key...)
	return append(b, val...)
}

// EncodeGet encodes a read command for key.
func EncodeGet(key string) []byte {
	b := make([]byte, 0, 1+len(key))
	b = append(b, cmdGet)
	return append(b, key...)
}

// DecodeCmd splits a command encoding back into opcode, key and (for
// puts) value. ok is false on malformed input.
func DecodeCmd(cmd []byte) (write bool, key, val string, ok bool) {
	if len(cmd) == 0 {
		return false, "", "", false
	}
	switch cmd[0] {
	case cmdPut:
		if len(cmd) < 3 {
			return false, "", "", false
		}
		kl := int(cmd[1])<<8 | int(cmd[2])
		if len(cmd) < 3+kl {
			return false, "", "", false
		}
		return true, string(cmd[3 : 3+kl]), string(cmd[3+kl:]), true
	case cmdGet:
		return false, string(cmd[1:]), "", true
	}
	return false, "", "", false
}

// Apply implements StateMachine: puts store and echo the value, gets
// return the current value (empty for a missing key).
func (k *KV) Apply(cmd []byte) []byte {
	write, key, val, ok := DecodeCmd(cmd)
	if !ok {
		return nil
	}
	if write {
		k.m[key] = val
		return []byte(val)
	}
	return []byte(k.m[key])
}

// Len reports the number of keys.
func (k *KV) Len() int { return len(k.m) }

// Get reads a key directly (tests; not part of the replicated path).
func (k *KV) Get(key string) string { return k.m[key] }

// Snapshot implements StateMachine.
func (k *KV) Snapshot() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(k.m); err != nil {
		return nil
	}
	return buf.Bytes()
}

// Restore implements StateMachine.
func (k *KV) Restore(snap []byte) {
	m := make(map[string]string)
	if len(snap) > 0 {
		_ = gob.NewDecoder(bytes.NewReader(snap)).Decode(&m)
	}
	k.m = m
}
