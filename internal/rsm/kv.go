package rsm

import (
	"procgroup/internal/transport"
)

// KV is the replicated key-value state machine behind examples/kvstore
// and the kv benchmark: string keys and values, last-writer-wins under
// the broadcast total order. Commands are the compact byte encodings of
// EncodePut and EncodeGet. Not safe for concurrent use on its own — a
// Node drives it from the event loop.
type KV struct {
	m map[string]string
}

// NewKV builds an empty store.
func NewKV() *KV { return &KV{m: make(map[string]string)} }

// Command opcodes (first byte of a command encoding).
const (
	cmdPut = 'P'
	cmdGet = 'G'
)

// EncodePut encodes a write command: key := val.
func EncodePut(key, val string) []byte {
	b := make([]byte, 0, 3+len(key)+len(val))
	b = append(b, cmdPut, byte(len(key)>>8), byte(len(key)))
	b = append(b, key...)
	return append(b, val...)
}

// EncodeGet encodes a read command for key.
func EncodeGet(key string) []byte {
	b := make([]byte, 0, 1+len(key))
	b = append(b, cmdGet)
	return append(b, key...)
}

// DecodeCmd splits a command encoding back into opcode, key and (for
// puts) value. ok is false on malformed input.
func DecodeCmd(cmd []byte) (write bool, key, val string, ok bool) {
	if len(cmd) == 0 {
		return false, "", "", false
	}
	switch cmd[0] {
	case cmdPut:
		if len(cmd) < 3 {
			return false, "", "", false
		}
		kl := int(cmd[1])<<8 | int(cmd[2])
		if len(cmd) < 3+kl {
			return false, "", "", false
		}
		return true, string(cmd[3 : 3+kl]), string(cmd[3+kl:]), true
	case cmdGet:
		return false, string(cmd[1:]), "", true
	}
	return false, "", "", false
}

// Apply implements StateMachine: puts store and echo the value, gets
// return the current value (empty for a missing key).
func (k *KV) Apply(cmd []byte) []byte {
	write, key, val, ok := DecodeCmd(cmd)
	if !ok {
		return nil
	}
	if write {
		k.m[key] = val
		return []byte(val)
	}
	return []byte(k.m[key])
}

// Len reports the number of keys.
func (k *KV) Len() int { return len(k.m) }

// Get reads a key directly (tests; not part of the replicated path).
func (k *KV) Get(key string) string { return k.m[key] }

// ReadLocal implements LocalReader: a Get command is served straight from
// local state (the Node fences it on stability); anything else must enter
// the total order.
func (k *KV) ReadLocal(cmd []byte) ([]byte, bool) {
	write, key, _, ok := DecodeCmd(cmd)
	if !ok || write {
		return nil, false
	}
	return []byte(k.m[key]), true
}

// Snapshot implements StateMachine on the repo's binary wire codec:
// uvarint entry count, then per entry a length-prefixed key and value.
// ViewSync snapshots grow with KV size, so this rides the same compact
// primitives as every other hot-path frame instead of gob.
func (k *KV) Snapshot() []byte {
	var e transport.Encoder
	e.Uvarint(uint64(len(k.m)))
	for key, val := range k.m {
		e.String(key)
		e.String(val)
	}
	return e.Bytes()
}

// Restore implements StateMachine. A malformed snapshot restores the
// longest well-formed prefix (truncation is stream corruption; the joiner
// re-syncs on the next view anyway).
func (k *KV) Restore(snap []byte) {
	d := transport.NewDecoder(snap)
	n := d.Count(2) // min entry: two 1-byte length prefixes
	m := make(map[string]string, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		key := d.String()
		val := d.String()
		if d.Err() != nil {
			break
		}
		m[key] = val
	}
	k.m = m
}
