package rsm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/check"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/rsm"
)

// swarm is a test harness around one live cluster whose nodes each host
// a KV replica.
type swarm struct {
	t   *testing.T
	c   *live.Cluster
	n   int // initial group size
	rec *rsm.Recorder

	mu    sync.Mutex
	nodes map[ids.ProcID]*rsm.Node
	ops   []rsm.ClientOp
}

func startKV(t *testing.T, opts live.Options) *swarm {
	return startKVCfg(t, opts, broadcast.Config{})
}

// startKVCfg starts the swarm with an explicit broadcast configuration
// (group-commit batching, ack coalescing).
func startKVCfg(t *testing.T, opts live.Options, bc broadcast.Config) *swarm {
	t.Helper()
	if opts.N <= 0 {
		opts.N = 3
	}
	s := &swarm{t: t, n: opts.N, rec: rsm.NewRecorder(), nodes: make(map[ids.ProcID]*rsm.Node)}
	opts.App = func(n live.AppNode) live.AppHook {
		node := rsm.NewNode(n, rsm.Config{Machine: rsm.NewKV(), Recorder: s.rec, Broadcast: bc})
		s.mu.Lock()
		s.nodes[n.ID()] = node
		s.mu.Unlock()
		return node.Hook()
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 10 * time.Millisecond
	}
	if opts.SuspectAfter == 0 {
		opts.SuspectAfter = 80 * time.Millisecond
	}
	s.c = live.Start(opts)
	t.Cleanup(s.c.Stop)
	return s
}

func (s *swarm) node(p ids.ProcID) *rsm.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[p]
}

// do proposes one command through replica p and records the client op.
func (s *swarm) do(p ids.ProcID, cmd []byte, write bool, key, val string, timeout time.Duration) (string, bool) {
	n := s.node(p)
	if n == nil {
		return "", false
	}
	invoke := time.Now().UnixNano()
	resp, pubID, err := n.Propose(cmd, timeout)
	complete := time.Now().UnixNano()
	op := rsm.ClientOp{
		Write: write, Key: key, Val: val,
		Origin: p, PubID: pubID,
		Invoke: invoke, Complete: complete,
		Acked: err == nil,
	}
	if !write && err == nil {
		op.Val = string(resp)
	}
	s.mu.Lock()
	s.ops = append(s.ops, op)
	s.mu.Unlock()
	return string(resp), err == nil
}

func (s *swarm) put(p ids.ProcID, key, val string, timeout time.Duration) bool {
	_, ok := s.do(p, rsm.EncodePut(key, val), true, key, val, timeout)
	return ok
}

func (s *swarm) get(p ids.ProcID, key string, timeout time.Duration) (string, bool) {
	return s.do(p, rsm.EncodeGet(key), false, key, "", timeout)
}

// readLocal reads key through replica p under ReadLocal and records the
// client op with its fence identity for the checker. local reports
// whether the fast path actually served it (vs sequenced fallback).
func (s *swarm) readLocal(p ids.ProcID, key string, timeout time.Duration) (val string, local, ok bool) {
	n := s.node(p)
	if n == nil {
		return "", false, false
	}
	invoke := time.Now().UnixNano()
	res, err := n.Read(rsm.EncodeGet(key), rsm.ReadLocal, timeout)
	complete := time.Now().UnixNano()
	op := rsm.ClientOp{
		Write: false, Key: key, Val: string(res.Resp),
		Origin: p, PubID: res.PubID,
		Invoke: invoke, Complete: complete,
		Acked: err == nil,
		Local: res.Local, Fence: res.Fence,
	}
	s.mu.Lock()
	s.ops = append(s.ops, op)
	s.mu.Unlock()
	return string(res.Resp), res.Local, err == nil
}

// settle waits until every alive replica's applied sequence ends at the
// same command (joiners apply a suffix, so lengths may differ) and the
// group stops applying.
func (s *swarm) settle(timeout time.Duration) {
	s.t.Helper()
	deadline := time.Now().Add(timeout)
	var last int
	stableFor := 0
	for time.Now().Before(deadline) {
		seqs := s.rec.Sequences()
		alive := s.c.Running()
		ends := make(map[rsm.CmdID]bool)
		total := 0
		for _, p := range alive {
			a := rsm.AppliedOf(seqs[p])
			if len(a) > 0 {
				ends[rsm.CmdID{Origin: a[len(a)-1].Origin, PubID: a[len(a)-1].PubID}] = true
			}
			total += len(a)
		}
		if len(ends) <= 1 && total == last {
			stableFor++
			if stableFor >= 5 {
				return
			}
		} else {
			stableFor = 0
		}
		last = total
		time.Sleep(20 * time.Millisecond)
	}
	s.t.Fatalf("replicas did not settle within %v", timeout)
}

// certify runs the full battery: GMP properties, total order,
// linearizability of the recorded client history.
func (s *swarm) certify() {
	s.t.Helper()
	alive := s.c.Running()
	running := ids.NewSet(alive...)
	if rep := check.Run(check.Input{
		Recorder: s.c.Recorder(),
		Initial:  ids.Gen(s.n),
		Alive:    running.Has,
	}); !rep.OK() {
		s.t.Errorf("GMP certification failed:\n%v", rep)
	}
	seqs := s.rec.Sequences()
	if err := rsm.CheckTotalOrder(seqs, alive); err != nil {
		s.t.Errorf("total order: %v", err)
	}
	s.mu.Lock()
	ops := append([]rsm.ClientOp(nil), s.ops...)
	s.mu.Unlock()
	// Reference order from survivors only: a crashed sequencer's record
	// may end in a post-cut suffix (see CheckTotalOrder's doc).
	aliveSeqs := make(map[ids.ProcID][]rsm.Record, len(seqs))
	for _, p := range alive {
		if sq, ok := seqs[p]; ok {
			aliveSeqs[p] = sq
		}
	}
	if err := rsm.CheckKVLinearizable(ops, rsm.LongestApplied(aliveSeqs)); err != nil {
		s.t.Errorf("linearizability: %v", err)
	}
}

func TestKVSteadyState(t *testing.T) {
	s := startKV(t, live.Options{N: 5})
	if _, err := s.c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	procs := ids.Gen(5)
	for i := 0; i < 60; i++ {
		p := procs[i%len(procs)]
		key := fmt.Sprintf("k%d", i%7)
		if !s.put(p, key, fmt.Sprintf("v%d-%d", i, i%7), 10*time.Second) {
			t.Fatalf("write %d via %v not acked", i, p)
		}
		if i%5 == 4 {
			if _, ok := s.get(p, key, 10*time.Second); !ok {
				t.Fatalf("read %d via %v not acked", i, p)
			}
		}
	}
	s.settle(10 * time.Second)
	s.certify()
}

func TestKVSurvivesSequencerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash convergence needs real time")
	}
	s := startKV(t, live.Options{N: 5})
	v, err := s.c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seqID := v.Mgr() // the coordinator IS the sequencer: the worst crash
	procs := ids.Gen(5)

	// Writers hammer every replica while the sequencer dies mid-stream.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, p := range procs {
		if p == seqID {
			continue
		}
		wg.Add(1)
		go func(p ids.ProcID) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.put(p, fmt.Sprintf("%v-k%d", p, i%5), fmt.Sprintf("%v-v%d", p, i), 15*time.Second)
			}
		}(p)
	}
	time.Sleep(150 * time.Millisecond)
	s.c.Kill(seqID)
	if _, err := s.c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Post-crash writes through the new view must still ack.
	newV, _ := s.c.WaitConverged(10 * time.Second)
	if !s.put(newV.Mgr(), "after-crash", "ok", 15*time.Second) {
		t.Fatal("write after sequencer crash not acked")
	}
	s.settle(15 * time.Second)
	s.certify()
}

func TestKVJoinStateTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("join convergence needs real time")
	}
	s := startKV(t, live.Options{N: 3})
	if _, err := s.c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	procs := ids.Gen(3)
	for i := 0; i < 30; i++ {
		if !s.put(procs[i%3], fmt.Sprintf("pre%d", i), fmt.Sprintf("val%d", i), 10*time.Second) {
			t.Fatalf("pre-join write %d not acked", i)
		}
	}

	joiner := ids.Named("p9")
	s.c.Join(joiner, procs[0])
	if _, err := s.c.WaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait for the joiner's replica hook to be registered and synced.
	deadline := time.Now().Add(10 * time.Second)
	for s.node(joiner) == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	// Reads THROUGH THE JOINER must see every pre-join write: the state
	// transfer carried the snapshot, the total order carries the reads.
	for i := 0; i < 30; i += 7 {
		key := fmt.Sprintf("pre%d", i)
		got, ok := s.get(joiner, key, 15*time.Second)
		if !ok {
			t.Fatalf("read of %q via joiner not acked", key)
		}
		if want := fmt.Sprintf("val%d", i); got != want {
			t.Fatalf("joiner read %q = %q, want %q (state transfer lost it)", key, got, want)
		}
	}
	if !s.put(joiner, "via-joiner", "yes", 15*time.Second) {
		t.Fatal("write through joiner not acked")
	}
	s.settle(15 * time.Second)
	s.certify()
}
