package rsm

import (
	"fmt"
	"sort"
	"sync"

	"procgroup/internal/broadcast"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Record is one order position as one replica processed it. (Origin,
// PubID) is the command's global identity; (Ver, Seq) the slot it held at
// this replica — a command redelivered by state transfer appears under
// the new view's slot at replicas that caught up there. Applied is false
// when the replica recognized the command as already applied and skipped
// it (the exactly-once dedup).
type Record struct {
	Ver     member.Version
	Seq     uint64
	Origin  ids.ProcID
	PubID   uint64
	Body    []byte
	Applied bool
}

// CmdID is a command's global identity across views and replicas.
type CmdID struct {
	Origin ids.ProcID
	PubID  uint64
}

func (r Record) id() CmdID { return CmdID{r.Origin, r.PubID} }

// Recorder captures, per replica, every order position processed — the
// raw material of the total-order checker. Safe for concurrent use:
// storage is sharded per replica, so at recording rates (every order
// position at every replica) the event loops never contend on a shared
// lock — each appends to its own shard, and the outer mutex is only taken
// to look a shard up.
type Recorder struct {
	mu     sync.Mutex
	shards map[ids.ProcID]*recShard
}

type recShard struct {
	mu      sync.Mutex
	recs    []Record
	applied int   // running count of applied records
	last    CmdID // identity of the last applied record
}

// NewRecorder builds an empty recorder shared by a group's replicas.
func NewRecorder() *Recorder {
	return &Recorder{shards: make(map[ids.ProcID]*recShard)}
}

// shardFor returns replica's shard, creating it on first use; a Node
// caches it so the hot observe path takes only the uncontended shard lock.
func (r *Recorder) shardFor(replica ids.ProcID) *recShard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.shards[replica]
	if s == nil {
		s = &recShard{}
		r.shards[replica] = s
	}
	return s
}

func (s *recShard) observe(m broadcast.Msg, applied bool) {
	rec := Record{
		Ver: m.Ver, Seq: m.Seq,
		Origin: m.Origin, PubID: m.PubID,
		Body:    append([]byte(nil), m.Body...),
		Applied: applied,
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	if applied {
		s.applied++
		s.last = CmdID{Origin: m.Origin, PubID: m.PubID}
	}
	s.mu.Unlock()
}

// Sequences returns a deep-enough copy of every replica's processed
// order (records are value types; bodies are shared, treated read-only).
func (r *Recorder) Sequences() map[ids.ProcID][]Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ProcID][]Record, len(r.shards))
	for p, s := range r.shards {
		s.mu.Lock()
		out[p] = append([]Record(nil), s.recs...)
		s.mu.Unlock()
	}
	return out
}

// Frontier is one replica's applied-history summary: how many commands
// it has applied and the identity of the last one.
type Frontier struct {
	Applied int
	Last    CmdID
}

// Frontiers summarizes every replica's applied sequence without copying
// history — the cheap poll for settle/quiesce loops, where Sequences'
// full deep copy (hundreds of MB under bench load) would dominate the
// run.
func (r *Recorder) Frontiers() map[ids.ProcID]Frontier {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ProcID]Frontier, len(r.shards))
	for p, s := range r.shards {
		s.mu.Lock()
		out[p] = Frontier{Applied: s.applied, Last: s.last}
		s.mu.Unlock()
	}
	return out
}

// AppliedOf filters one replica's records down to its applied sequence.
func AppliedOf(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if rec.Applied {
			out = append(out, rec)
		}
	}
	return out
}

// CheckTotalOrder is the broadcast layer's certification: given every
// replica's processed order and the set of replicas alive (and quiesced)
// at the end of the run, it verifies
//
//  1. exactly-once — no replica applied the same (Origin, PubID) twice;
//  2. total order — all replicas' applied sequences are pairwise
//     consistent under alignment: a replica that joined mid-run applies
//     a suffix of the global order (its snapshot absorbed the prefix),
//     so each pair is aligned at their first shared command and must
//     agree on the whole overlap — no two replicas ever apply the same
//     pair of commands in opposite orders;
//  3. agreement — replicas alive at the end converged on the same final
//     command (with 2, their overlapping histories are identical);
//  4. per-view order — within each view version, every replica processed
//     slots contiguously from 1, and any two replicas that both
//     processed a slot of that view saw the same command in it.
//
// One exception, straight from the virtual-synchrony model: a replica
// that did NOT survive to the end may carry a divergent *suffix*. A
// dying sequencer applies a slot locally the moment it assigns it, so a
// crash can strand entries it applied that no survivor ever received;
// the flush cut excludes them, the origins resubmit, and the commands
// re-sequence into the next view in whatever cross-origin interleaving
// the resubmissions arrive in. Those entries were never stable, so no
// client ack depends on them — the durability the checkers guarantee is
// for acked ops and for survivors. Pairwise comparison involving a dead
// replica therefore stops at the first mismatch (its post-cut tail);
// every check over alive replicas remains exact, as does per-view slot
// agreement (a slot the old view assigned is the same command at every
// replica that processed it, dead or not).
//
// A nil error is the "identical per-view command sequences, no divergence
// anywhere among survivors" verdict the bench report quotes.
func CheckTotalOrder(seqs map[ids.ProcID][]Record, alive []ids.ProcID) error {
	replicas := make([]ids.ProcID, 0, len(seqs))
	for p := range seqs {
		replicas = append(replicas, p)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i].Less(replicas[j]) })
	aliveSet := ids.NewSet(alive...)

	applied := make(map[ids.ProcID][]Record, len(seqs))
	index := make(map[ids.ProcID]map[CmdID]int, len(seqs))
	for _, p := range replicas {
		a := AppliedOf(seqs[p])
		idx := make(map[CmdID]int, len(a))
		for i, rec := range a {
			if _, dup := idx[rec.id()]; dup {
				return fmt.Errorf("replica %v applied %v/%d twice", p, rec.Origin, rec.PubID)
			}
			idx[rec.id()] = i
		}
		applied[p], index[p] = a, idx
	}

	for i, p := range replicas {
		for _, q := range replicas[i+1:] {
			a, b := applied[p], applied[q]
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			// Align q's sequence inside p's at their first shared
			// command; disjoint histories (p crashed before q joined)
			// have nothing to agree on.
			off, found := -1, false
			for j, rec := range b {
				if k, ok := index[p][rec.id()]; ok {
					off, found = k-j, true
					break
				}
			}
			if !found {
				continue
			}
			bothAlive := aliveSet.Has(p) && aliveSet.Has(q)
			for j, rec := range b {
				k := off + j
				if k < 0 || k >= len(a) {
					continue
				}
				if a[k].id() != rec.id() {
					if !bothAlive {
						// A dead replica's post-cut suffix may diverge
						// (see the doc comment); nothing after the first
						// mismatch is part of the surviving order.
						break
					}
					return fmt.Errorf("order divergence: %v applied %v/%d at aligned position %d where %v applied %v/%d",
						q, rec.Origin, rec.PubID, k, p, a[k].Origin, a[k].PubID)
				}
			}
		}
	}

	var last CmdID
	haveLast := false
	for _, p := range alive {
		a, ok := applied[p]
		if !ok || len(a) == 0 {
			continue // a replica that applied nothing constrains nothing
		}
		end := a[len(a)-1].id()
		if !haveLast {
			last, haveLast = end, true
			continue
		}
		if end != last {
			return fmt.Errorf("alive replicas diverge at the end: %v finished at %v/%d, others at %v/%d",
				p, end.Origin, end.PubID, last.Origin, last.PubID)
		}
	}

	// Per-view slot agreement: slot → command, and contiguity per replica.
	type slot struct {
		ver member.Version
		seq uint64
	}
	owner := make(map[slot]CmdID)
	for _, p := range replicas {
		next := make(map[member.Version]uint64)
		for _, rec := range seqs[p] {
			if want, ok := next[rec.Ver]; ok {
				if rec.Seq != want {
					return fmt.Errorf("replica %v processed view %d slot %d after slot %d (non-contiguous)",
						p, rec.Ver, rec.Seq, want-1)
				}
			} else if rec.Seq != 1 {
				return fmt.Errorf("replica %v entered view %d at slot %d, not 1", p, rec.Ver, rec.Seq)
			}
			next[rec.Ver] = rec.Seq + 1
			s := slot{rec.Ver, rec.Seq}
			if id, ok := owner[s]; ok {
				if id != rec.id() {
					return fmt.Errorf("view %d slot %d holds %v/%d at one replica and %v/%d at %v",
						rec.Ver, rec.Seq, id.Origin, id.PubID, rec.Origin, rec.PubID, p)
				}
			} else {
				owner[s] = rec.id()
			}
		}
	}
	return nil
}

// LongestApplied returns the longest applied sequence among the given
// replicas — under a passing CheckTotalOrder it is *the* total order,
// every other replica's applied sequence being a prefix of it.
func LongestApplied(seqs map[ids.ProcID][]Record) []Record {
	var best []Record
	var bestID ids.ProcID
	first := true
	for p, s := range seqs {
		a := AppliedOf(s)
		if first || len(a) > len(best) || (len(a) == len(best) && p.Less(bestID)) {
			best, bestID, first = a, p, false
		}
	}
	return best
}

// ClientOp is one client-side operation of the KV workload, as the bench
// or test harness recorded it: what was asked, what came back, and when.
// Acked sequenced ops carry the (Origin, PubID) identity Propose
// returned; acked local reads carry the fence instead — the (Origin,
// PubID) of the last command applied at the serving replica when the
// value was captured, naming the order prefix the read reflects.
type ClientOp struct {
	Write    bool
	Key      string
	Val      string // write: value written; read: value returned
	Origin   ids.ProcID
	PubID    uint64
	Invoke   int64 // ns on the harness clock
	Complete int64
	Acked    bool
	Local    bool  // read served locally behind the stability fence
	Fence    CmdID // local reads only; zero = read of the empty prefix
}

// CheckKVLinearizable verifies the KV workload's client-visible story
// against the applied total order:
//
//  1. durability — every acked sequenced op appears in the order exactly
//     once (zero acked-write loss), and every acked local read's fence
//     names a command the order contains;
//  2. real time — if op A completed before op B was invoked, A's
//     linearization point precedes B's. Sequenced ops linearize at their
//     order position p; a local read fenced at position p linearizes just
//     after p (it observed p's effects, and completed only once that
//     prefix was stable). Encoding points as 2p for sequenced ops and
//     2p+1 for local reads makes the sweep a single integer comparison:
//     two local reads may legally share a point (both saw the same
//     prefix), every other tie is impossible, so any point strictly below
//     an earlier-completed op's point is a violation — an acked write
//     reordered behind a later op, or a read that returned state older
//     than one it was invoked after;
//  3. read values — replaying the order's commands through a fresh KV,
//     every acked sequenced read returned exactly the replayed state of
//     its key at its own order position, and every acked local read
//     returned the replayed state of its key just after its fence
//     position (the empty state for a zero fence).
//
// Together with CheckTotalOrder (one agreed order) this is
// linearizability of the acked history: the order is a legal sequential
// KV execution consistent with real time, in both read modes.
func CheckKVLinearizable(ops []ClientOp, order []Record) error {
	pos := make(map[CmdID]int, len(order))
	for i, rec := range order {
		pos[rec.id()] = i
	}
	// point is an op's linearization point in sweep encoding; ok is false
	// when the op (or its fence) is missing from the order.
	point := func(op ClientOp) (int, bool) {
		if op.Local {
			if (op.Fence == CmdID{}) {
				return -1, true // read of the empty prefix
			}
			p, ok := pos[op.Fence]
			return 2*p + 1, ok
		}
		p, ok := pos[CmdID{op.Origin, op.PubID}]
		return 2 * p, ok
	}

	acked := make([]ClientOp, 0, len(ops))
	for _, op := range ops {
		if op.Acked {
			acked = append(acked, op)
		}
	}
	seen := make(map[CmdID]bool, len(acked))
	for _, op := range acked {
		if op.Local {
			if _, ok := point(op); !ok {
				return fmt.Errorf("local read of key %q fenced at %v/%d, which is absent from the applied order",
					op.Key, op.Fence.Origin, op.Fence.PubID)
			}
			continue
		}
		id := CmdID{op.Origin, op.PubID}
		if seen[id] {
			return fmt.Errorf("acked op %v/%d recorded twice by the harness", op.Origin, op.PubID)
		}
		seen[id] = true
		if _, ok := pos[id]; !ok {
			return fmt.Errorf("ACKED OP LOST: %v/%d (key %q) acked but absent from the applied order",
				op.Origin, op.PubID, op.Key)
		}
	}

	// Real-time order: walk acked ops by invocation time, tracking the max
	// linearization point among ops completed before each invocation; the
	// new op's point must not precede any of them.
	byComplete := append([]ClientOp(nil), acked...)
	sort.Slice(byComplete, func(i, j int) bool { return byComplete[i].Complete < byComplete[j].Complete })
	byInvoke := append([]ClientOp(nil), acked...)
	sort.Slice(byInvoke, func(i, j int) bool { return byInvoke[i].Invoke < byInvoke[j].Invoke })
	const noPoint = -2 // below every encoded point, including the empty-prefix read's -1
	maxPt, ci := noPoint, 0
	for _, op := range byInvoke {
		for ci < len(byComplete) && byComplete[ci].Complete < op.Invoke {
			if pt, _ := point(byComplete[ci]); pt > maxPt {
				maxPt = pt
			}
			ci++
		}
		if pt, _ := point(op); pt < maxPt {
			return fmt.Errorf("real-time violation: op on key %q invoked after an op that completed earlier yet linearized at %d < %d",
				op.Key, pt, maxPt)
		}
	}

	// Read values: replay the order; compare sequenced reads at their own
	// position and local reads just after their fence position.
	vals := make(map[CmdID]ClientOp, len(acked))
	localAt := make(map[int][]ClientOp)
	for _, op := range acked {
		if op.Local {
			p := -1
			if (op.Fence != CmdID{}) {
				p = pos[op.Fence]
			}
			localAt[p] = append(localAt[p], op)
			continue
		}
		vals[CmdID{op.Origin, op.PubID}] = op
	}
	kv := NewKV()
	checkLocal := func(p int) error {
		for _, op := range localAt[p] {
			if got := kv.Get(op.Key); got != op.Val {
				return fmt.Errorf("STALE LOCAL READ: key %q read as %q but the order says %q at fence position %d",
					op.Key, op.Val, got, p)
			}
		}
		return nil
	}
	if err := checkLocal(-1); err != nil {
		return err
	}
	for i, rec := range order {
		out := kv.Apply(rec.Body)
		if op, ok := vals[rec.id()]; ok && !op.Write {
			if got := string(out); got != op.Val {
				return fmt.Errorf("STALE READ: %v/%d read key %q as %q but the order says %q at its position",
					op.Origin, op.PubID, op.Key, op.Val, got)
			}
		}
		if err := checkLocal(i); err != nil {
			return err
		}
	}
	return nil
}
