package rsm

import (
	"fmt"
	"sort"
	"sync"

	"procgroup/internal/broadcast"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Record is one order position as one replica processed it. (Origin,
// PubID) is the command's global identity; (Ver, Seq) the slot it held at
// this replica — a command redelivered by state transfer appears under
// the new view's slot at replicas that caught up there. Applied is false
// when the replica recognized the command as already applied and skipped
// it (the exactly-once dedup).
type Record struct {
	Ver     member.Version
	Seq     uint64
	Origin  ids.ProcID
	PubID   uint64
	Body    []byte
	Applied bool
}

// CmdID is a command's global identity across views and replicas.
type CmdID struct {
	Origin ids.ProcID
	PubID  uint64
}

func (r Record) id() CmdID { return CmdID{r.Origin, r.PubID} }

// Recorder captures, per replica, every order position processed — the
// raw material of the total-order checker. Safe for concurrent use (each
// replica's event loop appends to its own slice under the lock).
type Recorder struct {
	mu  sync.Mutex
	seq map[ids.ProcID][]Record
}

// NewRecorder builds an empty recorder shared by a group's replicas.
func NewRecorder() *Recorder {
	return &Recorder{seq: make(map[ids.ProcID][]Record)}
}

func (r *Recorder) observe(replica ids.ProcID, m broadcast.Msg, applied bool) {
	rec := Record{
		Ver: m.Ver, Seq: m.Seq,
		Origin: m.Origin, PubID: m.PubID,
		Body:    append([]byte(nil), m.Body...),
		Applied: applied,
	}
	r.mu.Lock()
	r.seq[replica] = append(r.seq[replica], rec)
	r.mu.Unlock()
}

// Sequences returns a deep-enough copy of every replica's processed
// order (records are value types; bodies are shared, treated read-only).
func (r *Recorder) Sequences() map[ids.ProcID][]Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ProcID][]Record, len(r.seq))
	for p, s := range r.seq {
		out[p] = append([]Record(nil), s...)
	}
	return out
}

// AppliedOf filters one replica's records down to its applied sequence.
func AppliedOf(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if rec.Applied {
			out = append(out, rec)
		}
	}
	return out
}

// CheckTotalOrder is the broadcast layer's certification: given every
// replica's processed order and the set of replicas alive (and quiesced)
// at the end of the run, it verifies
//
//  1. exactly-once — no replica applied the same (Origin, PubID) twice;
//  2. total order — all replicas' applied sequences are pairwise
//     consistent under alignment: a replica that joined mid-run applies
//     a suffix of the global order (its snapshot absorbed the prefix),
//     so each pair is aligned at their first shared command and must
//     agree on the whole overlap — no two replicas ever apply the same
//     pair of commands in opposite orders;
//  3. agreement — replicas alive at the end converged on the same final
//     command (with 2, their overlapping histories are identical);
//  4. per-view order — within each view version, every replica processed
//     slots contiguously from 1, and any two replicas that both
//     processed a slot of that view saw the same command in it.
//
// A nil error is the "identical per-view command sequences, no divergence
// anywhere" verdict the bench report quotes.
func CheckTotalOrder(seqs map[ids.ProcID][]Record, alive []ids.ProcID) error {
	replicas := make([]ids.ProcID, 0, len(seqs))
	for p := range seqs {
		replicas = append(replicas, p)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i].Less(replicas[j]) })

	applied := make(map[ids.ProcID][]Record, len(seqs))
	index := make(map[ids.ProcID]map[CmdID]int, len(seqs))
	for _, p := range replicas {
		a := AppliedOf(seqs[p])
		idx := make(map[CmdID]int, len(a))
		for i, rec := range a {
			if _, dup := idx[rec.id()]; dup {
				return fmt.Errorf("replica %v applied %v/%d twice", p, rec.Origin, rec.PubID)
			}
			idx[rec.id()] = i
		}
		applied[p], index[p] = a, idx
	}

	for i, p := range replicas {
		for _, q := range replicas[i+1:] {
			a, b := applied[p], applied[q]
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			// Align q's sequence inside p's at their first shared
			// command; disjoint histories (p crashed before q joined)
			// have nothing to agree on.
			off, found := -1, false
			for j, rec := range b {
				if k, ok := index[p][rec.id()]; ok {
					off, found = k-j, true
					break
				}
			}
			if !found {
				continue
			}
			for j, rec := range b {
				k := off + j
				if k < 0 || k >= len(a) {
					continue
				}
				if a[k].id() != rec.id() {
					return fmt.Errorf("order divergence: %v applied %v/%d at aligned position %d where %v applied %v/%d",
						q, rec.Origin, rec.PubID, k, p, a[k].Origin, a[k].PubID)
				}
			}
		}
	}

	var last CmdID
	haveLast := false
	for _, p := range alive {
		a, ok := applied[p]
		if !ok || len(a) == 0 {
			continue // a replica that applied nothing constrains nothing
		}
		end := a[len(a)-1].id()
		if !haveLast {
			last, haveLast = end, true
			continue
		}
		if end != last {
			return fmt.Errorf("alive replicas diverge at the end: %v finished at %v/%d, others at %v/%d",
				p, end.Origin, end.PubID, last.Origin, last.PubID)
		}
	}

	// Per-view slot agreement: slot → command, and contiguity per replica.
	type slot struct {
		ver member.Version
		seq uint64
	}
	owner := make(map[slot]CmdID)
	for _, p := range replicas {
		next := make(map[member.Version]uint64)
		for _, rec := range seqs[p] {
			if want, ok := next[rec.Ver]; ok {
				if rec.Seq != want {
					return fmt.Errorf("replica %v processed view %d slot %d after slot %d (non-contiguous)",
						p, rec.Ver, rec.Seq, want-1)
				}
			} else if rec.Seq != 1 {
				return fmt.Errorf("replica %v entered view %d at slot %d, not 1", p, rec.Ver, rec.Seq)
			}
			next[rec.Ver] = rec.Seq + 1
			s := slot{rec.Ver, rec.Seq}
			if id, ok := owner[s]; ok {
				if id != rec.id() {
					return fmt.Errorf("view %d slot %d holds %v/%d at one replica and %v/%d at %v",
						rec.Ver, rec.Seq, id.Origin, id.PubID, rec.Origin, rec.PubID, p)
				}
			} else {
				owner[s] = rec.id()
			}
		}
	}
	return nil
}

// LongestApplied returns the longest applied sequence among the given
// replicas — under a passing CheckTotalOrder it is *the* total order,
// every other replica's applied sequence being a prefix of it.
func LongestApplied(seqs map[ids.ProcID][]Record) []Record {
	var best []Record
	var bestID ids.ProcID
	first := true
	for p, s := range seqs {
		a := AppliedOf(s)
		if first || len(a) > len(best) || (len(a) == len(best) && p.Less(bestID)) {
			best, bestID, first = a, p, false
		}
	}
	return best
}

// ClientOp is one client-side operation of the KV workload, as the bench
// or test harness recorded it: what was asked, what came back, and when.
// Acked ops carry the (Origin, PubID) identity Propose returned.
type ClientOp struct {
	Write    bool
	Key      string
	Val      string // write: value written; read: value returned
	Origin   ids.ProcID
	PubID    uint64
	Invoke   int64 // ns on the harness clock
	Complete int64
	Acked    bool
}

// CheckKVLinearizable verifies the KV workload's client-visible story
// against the applied total order:
//
//  1. durability — every acked op appears in the order exactly once
//     (zero acked-write loss);
//  2. real time — if op A completed before op B was invoked, A precedes
//     B in the order (no acked write reordered behind a later op, no
//     stale read after an ack);
//  3. read values — replaying the order's commands through a fresh KV,
//     every acked read returned exactly the replayed state of its key at
//     its own order position.
//
// Together with CheckTotalOrder (one agreed order) this is
// linearizability of the acked history: the order is a legal sequential
// KV execution consistent with real time.
func CheckKVLinearizable(ops []ClientOp, order []Record) error {
	pos := make(map[CmdID]int, len(order))
	for i, rec := range order {
		pos[rec.id()] = i
	}

	acked := make([]ClientOp, 0, len(ops))
	for _, op := range ops {
		if op.Acked {
			acked = append(acked, op)
		}
	}
	seen := make(map[CmdID]bool, len(acked))
	for _, op := range acked {
		id := CmdID{op.Origin, op.PubID}
		if seen[id] {
			return fmt.Errorf("acked op %v/%d recorded twice by the harness", op.Origin, op.PubID)
		}
		seen[id] = true
		if _, ok := pos[id]; !ok {
			return fmt.Errorf("ACKED OP LOST: %v/%d (key %q) acked but absent from the applied order",
				op.Origin, op.PubID, op.Key)
		}
	}

	// Real-time order: walk acked ops by completion time, tracking the
	// max order position among ops completed so far; any later-invoked op
	// must land strictly after all of them.
	byComplete := append([]ClientOp(nil), acked...)
	sort.Slice(byComplete, func(i, j int) bool { return byComplete[i].Complete < byComplete[j].Complete })
	byInvoke := append([]ClientOp(nil), acked...)
	sort.Slice(byInvoke, func(i, j int) bool { return byInvoke[i].Invoke < byInvoke[j].Invoke })
	maxPos, ci := -1, 0
	for _, op := range byInvoke {
		for ci < len(byComplete) && byComplete[ci].Complete < op.Invoke {
			if p := pos[CmdID{byComplete[ci].Origin, byComplete[ci].PubID}]; p > maxPos {
				maxPos = p
			}
			ci++
		}
		if p := pos[CmdID{op.Origin, op.PubID}]; p <= maxPos && maxPos >= 0 {
			return fmt.Errorf("real-time violation: op %v/%d (key %q) invoked after an op that completed earlier yet ordered at %d ≤ %d",
				op.Origin, op.PubID, op.Key, p, maxPos)
		}
	}

	// Read values: replay the order and compare acked reads.
	vals := make(map[CmdID]ClientOp, len(acked))
	for _, op := range acked {
		vals[CmdID{op.Origin, op.PubID}] = op
	}
	kv := NewKV()
	for _, rec := range order {
		out := kv.Apply(rec.Body)
		op, ok := vals[rec.id()]
		if !ok || op.Write {
			continue
		}
		if got := string(out); got != op.Val {
			return fmt.Errorf("STALE READ: %v/%d read key %q as %q but the order says %q at its position",
				op.Origin, op.PubID, op.Key, op.Val, got)
		}
	}
	return nil
}
