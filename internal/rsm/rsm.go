package rsm

import (
	"errors"
	"sync/atomic"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/ids"
	"procgroup/internal/live"
)

// StateMachine is the deterministic application a Node replicates. All
// three methods run on the node's event loop; Apply must be a pure
// function of the machine's state and the command bytes, because every
// replica applies the same command sequence and divergence here is
// divergence forever.
type StateMachine interface {
	// Apply executes one command and returns its response.
	Apply(cmd []byte) []byte
	// Snapshot serializes the full state for joiner state transfer.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snap []byte)
}

// LocalReader is optionally implemented by state machines whose read-only
// commands can be answered from local state without mutating it. A Node
// uses it for the ReadLocal fast path: the read executes here, fenced on
// the stability frontier instead of entering the total order. ok must be
// false for any command that writes.
type LocalReader interface {
	ReadLocal(cmd []byte) (resp []byte, ok bool)
}

// Config wires one replica.
type Config struct {
	// Machine is the application state machine (required).
	Machine StateMachine
	// Recorder, when set, captures every order position this replica
	// processes for the total-order and linearizability checkers.
	Recorder *Recorder
	// Broadcast tunes the underlying broadcast layer (optional).
	Broadcast broadcast.Config
}

// ErrTimeout reports a Propose that saw no outcome in time — the node
// died, or stability is blocked behind a membership change that has not
// completed yet. The command may still execute; the caller must treat it
// as unacknowledged, not as failed.
var ErrTimeout = errors.New("rsm: propose timed out")

// ReadConcern selects how a Read executes.
type ReadConcern int

const (
	// ReadLocal serves the read from this replica's state behind the
	// stability fence: capture the value now, complete once the captured
	// prefix is stable. Linearizable — the fence guarantees the read never
	// exposes state a crash could still lose, and the capture point (which
	// lies between invoke and complete) is the linearization point — but
	// it costs no total-order traffic. Falls back to the sequenced path
	// when the machine has no LocalReader or local state is not fenceable
	// (a joiner that restored a snapshot but has applied nothing since).
	ReadLocal ReadConcern = iota
	// ReadLinearizable sequences the read through the total order like a
	// write — the conservative path, and the only one for machines whose
	// reads are not side-effect-free.
	ReadLinearizable
)

// ReadResult is one Read's outcome plus the identity the certification
// harness correlates it with: a sequenced read has an order (Origin,
// PubID); a local read has the fence — the last command applied here at
// capture, naming the order prefix the returned value reflects.
type ReadResult struct {
	Resp  []byte
	Local bool
	PubID uint64 // sequenced path: this origin's order identity
	Fence CmdID  // local path: zero means "read of the empty prefix"
}

// Node is one replica of the state machine: a broadcast endpoint that
// applies the delivered total order and acks proposals at stability. Any
// replica accepts writes — commands funnel through the current view's
// sequencer regardless of which member they enter at. Build one per
// process with NewNode from a live.AppHookFactory.
type Node struct {
	ln   live.AppNode
	b    *broadcast.Broadcaster
	sm   StateMachine
	rec  *Recorder
	rsh  *recShard
	self ids.ProcID
	resp map[uint64][]byte // loop-owned: Apply responses for own proposals

	// Loop-owned read-fence identity: the last command applied here names
	// the global-order prefix the local state equals, which is what a
	// local read's linearization point is certified against. A Restore
	// invalidates it (the snapshot's coverage has no single command name)
	// until the next apply.
	fenceID CmdID
	fenceOK bool

	localReads     atomic.Uint64
	sequencedReads atomic.Uint64
	readFallbacks  atomic.Uint64
}

// NewNode builds a replica on one live node. Returns the Node; install
// node.Hook() as the live AppHook (or use the one-liner factory in the
// root package).
func NewNode(n live.AppNode, cfg Config) *Node {
	node := &Node{
		ln:      n,
		sm:      cfg.Machine,
		rec:     cfg.Recorder,
		self:    n.ID(),
		resp:    make(map[uint64][]byte),
		fenceOK: true, // empty state = the empty order prefix
	}
	if cfg.Recorder != nil {
		node.rsh = cfg.Recorder.shardFor(node.self)
	}
	bc := cfg.Broadcast
	bc.Deliver = node.deliver
	bc.Observe = node.observe
	bc.Snapshot = cfg.Machine.Snapshot
	bc.Restore = node.restore
	node.b = broadcast.New(n, bc)
	return node
}

// Hook is the live.AppHook to install for this replica.
func (n *Node) Hook() live.AppHook { return n.b }

// Broadcaster exposes the underlying broadcast layer (stats, tests).
func (n *Node) Broadcaster() *broadcast.Broadcaster { return n.b }

// ID is the replica's process identity.
func (n *Node) ID() ids.ProcID { return n.self }

// Stats is one replica's broadcast and read-path counters.
type Stats struct {
	Broadcast broadcast.StatsSnapshot
	// LocalReads served behind the stability fence; SequencedReads went
	// through total order (ReadLinearizable or fallback); ReadFallbacks
	// counts ReadLocal requests that had to fall back.
	LocalReads     uint64
	SequencedReads uint64
	ReadFallbacks  uint64
}

// Stats reads the replica's counters; safe from any goroutine.
func (n *Node) Stats() Stats {
	return Stats{
		Broadcast:      n.b.StatsRef().Snapshot(),
		LocalReads:     n.localReads.Load(),
		SequencedReads: n.sequencedReads.Load(),
		ReadFallbacks:  n.readFallbacks.Load(),
	}
}

// Add sums two replicas' stats (group aggregation).
func (a Stats) Add(b Stats) Stats {
	a.Broadcast = a.Broadcast.Add(b.Broadcast)
	a.LocalReads += b.LocalReads
	a.SequencedReads += b.SequencedReads
	a.ReadFallbacks += b.ReadFallbacks
	return a
}

// deliver applies one command in total order (event loop).
func (n *Node) deliver(m broadcast.Msg) {
	out := n.sm.Apply(m.Body)
	n.fenceID = CmdID{Origin: m.Origin, PubID: m.PubID}
	n.fenceOK = true
	if m.Origin == n.self {
		n.resp[m.PubID] = out
	}
}

// restore installs a state-transfer snapshot (event loop). The snapshot
// covers an order prefix no single command names, so the read fence is
// invalid until the next apply — local reads fall back meanwhile.
func (n *Node) restore(snap []byte) {
	n.sm.Restore(snap)
	n.fenceID = CmdID{}
	n.fenceOK = false
}

// observe records every processed order position (event loop).
func (n *Node) observe(m broadcast.Msg, applied bool) {
	if n.rsh != nil {
		n.rsh.observe(m, applied)
	}
}

// ProposeAsync replicates cmd without blocking; done runs on the node's
// event loop once the command is *stable* — applied into the total order
// and acknowledged by every member of an installed view — with the local
// Apply response and the origin pubID. done never fires if the node
// itself dies; callers own that timeout. Pipelined clients (the bench's
// windowed load generators) use this to keep many commands in flight per
// goroutine.
func (n *Node) ProposeAsync(cmd []byte, done func(resp []byte, pubID uint64, err error)) {
	n.b.Propose(cmd, func(id uint64, err error) {
		var out []byte
		if err == nil {
			out = n.resp[id]
			delete(n.resp, id)
		}
		done(out, id, err)
	})
}

// Propose replicates cmd and blocks until it is stable, then returns the
// local Apply response. Safe from any goroutine. The returned pubID is
// this origin's sequence number for the command, the identity checkers
// correlate client ops with order entries by. On timeout the command's
// fate is unknown (see ErrTimeout).
func (n *Node) Propose(cmd []byte, timeout time.Duration) (resp []byte, pubID uint64, err error) {
	type result struct {
		out []byte
		id  uint64
		err error
	}
	ch := make(chan result, 1)
	n.ProposeAsync(cmd, func(out []byte, id uint64, err error) {
		ch <- result{out, id, err}
	})
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.id, r.err
	case <-t.C:
		return nil, 0, ErrTimeout
	}
}

// Read executes a read-only command under the given concern. Safe from
// any goroutine. ReadLocal runs it on this replica behind the stability
// fence — no broadcast traffic — and falls back to the sequenced path
// when local state is not fenceable; ReadLinearizable always sequences.
func (n *Node) Read(cmd []byte, rc ReadConcern, timeout time.Duration) (ReadResult, error) {
	if rc == ReadLocal {
		if _, ok := n.sm.(LocalReader); ok {
			res, done, err := n.readLocal(cmd, timeout)
			if done {
				return res, err
			}
			n.readFallbacks.Add(1)
		} else {
			n.readFallbacks.Add(1)
		}
	}
	resp, id, err := n.Propose(cmd, timeout)
	if err != nil {
		return ReadResult{}, err
	}
	n.sequencedReads.Add(1)
	return ReadResult{Resp: resp, PubID: id}, nil
}

// readLocal is the fenced fast path: capture the value and the fence on
// the event loop, complete once the captured prefix is stable. done is
// false when the read must fall back to the sequenced path.
func (n *Node) readLocal(cmd []byte, timeout time.Duration) (res ReadResult, done bool, err error) {
	type capture struct {
		res ReadResult
		ok  bool
	}
	ch := make(chan capture, 1)
	n.ln.Run(func() {
		if !n.fenceOK {
			ch <- capture{}
			return
		}
		out, ok := n.sm.(LocalReader).ReadLocal(cmd)
		if !ok {
			ch <- capture{}
			return
		}
		r := ReadResult{Resp: out, Local: true, Fence: n.fenceID}
		n.b.Fence(func() { ch <- capture{res: r, ok: true} })
	})
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c := <-ch:
		if !c.ok {
			return ReadResult{}, false, nil
		}
		n.localReads.Add(1)
		return c.res, true, nil
	case <-t.C:
		return ReadResult{}, true, ErrTimeout
	}
}
