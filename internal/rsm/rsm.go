package rsm

import (
	"errors"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/ids"
	"procgroup/internal/live"
)

// StateMachine is the deterministic application a Node replicates. All
// three methods run on the node's event loop; Apply must be a pure
// function of the machine's state and the command bytes, because every
// replica applies the same command sequence and divergence here is
// divergence forever.
type StateMachine interface {
	// Apply executes one command and returns its response.
	Apply(cmd []byte) []byte
	// Snapshot serializes the full state for joiner state transfer.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snap []byte)
}

// Config wires one replica.
type Config struct {
	// Machine is the application state machine (required).
	Machine StateMachine
	// Recorder, when set, captures every order position this replica
	// processes for the total-order and linearizability checkers.
	Recorder *Recorder
	// Broadcast tunes the underlying broadcast layer (optional).
	Broadcast broadcast.Config
}

// ErrTimeout reports a Propose that saw no outcome in time — the node
// died, or stability is blocked behind a membership change that has not
// completed yet. The command may still execute; the caller must treat it
// as unacknowledged, not as failed.
var ErrTimeout = errors.New("rsm: propose timed out")

// Node is one replica of the state machine: a broadcast endpoint that
// applies the delivered total order and acks proposals at stability. Any
// replica accepts writes — commands funnel through the current view's
// sequencer regardless of which member they enter at. Build one per
// process with NewNode from a live.AppHookFactory.
type Node struct {
	b    *broadcast.Broadcaster
	sm   StateMachine
	rec  *Recorder
	self ids.ProcID
	resp map[uint64][]byte // loop-owned: Apply responses for own proposals
}

// NewNode builds a replica on one live node. Returns the Node; install
// node.Hook() as the live AppHook (or use the one-liner factory in the
// root package).
func NewNode(n live.AppNode, cfg Config) *Node {
	node := &Node{
		sm:   cfg.Machine,
		rec:  cfg.Recorder,
		self: n.ID(),
		resp: make(map[uint64][]byte),
	}
	bc := cfg.Broadcast
	bc.Deliver = node.deliver
	bc.Observe = node.observe
	bc.Snapshot = cfg.Machine.Snapshot
	bc.Restore = cfg.Machine.Restore
	node.b = broadcast.New(n, bc)
	return node
}

// Hook is the live.AppHook to install for this replica.
func (n *Node) Hook() live.AppHook { return n.b }

// Broadcaster exposes the underlying broadcast layer (stats, tests).
func (n *Node) Broadcaster() *broadcast.Broadcaster { return n.b }

// ID is the replica's process identity.
func (n *Node) ID() ids.ProcID { return n.self }

// deliver applies one command in total order (event loop).
func (n *Node) deliver(m broadcast.Msg) {
	out := n.sm.Apply(m.Body)
	if m.Origin == n.self {
		n.resp[m.PubID] = out
	}
}

// observe records every processed order position (event loop).
func (n *Node) observe(m broadcast.Msg, applied bool) {
	if n.rec != nil {
		n.rec.observe(n.self, m, applied)
	}
}

// Propose replicates cmd and blocks until it is *stable* — applied into
// the total order and acknowledged by every member of an installed view —
// then returns the local Apply response. Safe from any goroutine. The
// returned pubID is this origin's sequence number for the command, the
// identity checkers correlate client ops with order entries by. On
// timeout the command's fate is unknown (see ErrTimeout).
func (n *Node) Propose(cmd []byte, timeout time.Duration) (resp []byte, pubID uint64, err error) {
	type result struct {
		out []byte
		id  uint64
		err error
	}
	ch := make(chan result, 1)
	n.b.Propose(cmd, func(id uint64, err error) {
		var out []byte
		if err == nil {
			out = n.resp[id]
			delete(n.resp, id)
		}
		ch <- result{out, id, err}
	})
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.id, r.err
	case <-t.C:
		return nil, 0, ErrTimeout
	}
}
