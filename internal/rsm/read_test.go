package rsm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/rsm"
)

// batchedCfg is the group-commit configuration the batched swarm tests
// run under: moderate caps so batches actually form at test load.
func batchedCfg() broadcast.Config {
	return broadcast.Config{
		Batch: broadcast.BatchConfig{MaxEntries: 16, MaxDelay: time.Millisecond},
		Ack:   broadcast.AckConfig{Every: 16, Delay: time.Millisecond},
	}
}

// TestKVBatchedSteadyState is TestKVSteadyState under group commit: the
// same write/read mix must certify identically, and the batch machinery
// must actually have engaged.
func TestKVBatchedSteadyState(t *testing.T) {
	s := startKVCfg(t, live.Options{N: 5}, batchedCfg())
	if _, err := s.c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	procs := ids.Gen(5)
	for i := 0; i < 60; i++ {
		p := procs[i%len(procs)]
		key := fmt.Sprintf("k%d", i%7)
		if !s.put(p, key, fmt.Sprintf("v%d-%d", i, i%7), 10*time.Second) {
			t.Fatalf("write %d via %v not acked", i, p)
		}
		if i%5 == 4 {
			if _, ok := s.get(p, key, 10*time.Second); !ok {
				t.Fatalf("read %d via %v not acked", i, p)
			}
		}
	}
	s.settle(10 * time.Second)
	s.certify()

	var st rsm.Stats
	s.mu.Lock()
	for _, n := range s.nodes {
		st = st.Add(n.Stats())
	}
	s.mu.Unlock()
	if st.Broadcast.PubBatches == 0 || st.Broadcast.SeqdBatches == 0 {
		t.Errorf("batching never engaged: %d pub batches, %d seqd batches",
			st.Broadcast.PubBatches, st.Broadcast.SeqdBatches)
	}
}

// TestKVBatchedSurvivesSequencerCrash: the acceptance bar's crash arm
// under batching — killing the sequencer mid-batch-stream must lose no
// acked write and still certify the full battery.
func TestKVBatchedSurvivesSequencerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash convergence needs real time")
	}
	s := startKVCfg(t, live.Options{N: 5}, batchedCfg())
	v, err := s.c.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seqID := v.Mgr()
	procs := ids.Gen(5)

	stop := make(chan struct{})
	doneCh := make(chan struct{})
	for _, p := range procs {
		if p == seqID {
			continue
		}
		go func(p ids.ProcID) {
			defer func() { doneCh <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.put(p, fmt.Sprintf("%v-k%d", p, i%5), fmt.Sprintf("%v-v%d", p, i), 15*time.Second)
			}
		}(p)
	}
	time.Sleep(150 * time.Millisecond)
	s.c.Kill(seqID)
	if _, err := s.c.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	for i := 0; i < 4; i++ {
		<-doneCh
	}

	newV, _ := s.c.WaitConverged(10 * time.Second)
	if !s.put(newV.Mgr(), "after-crash", "ok", 15*time.Second) {
		t.Fatal("write after sequencer crash not acked")
	}
	s.settle(15 * time.Second)
	s.certify()
}

// TestKVLocalReads: stability-fenced local reads return the latest acked
// value without entering the total order, on every replica, and the whole
// history (sequenced writes + local reads) certifies linearizable.
func TestKVLocalReads(t *testing.T) {
	s := startKVCfg(t, live.Options{N: 3}, batchedCfg())
	if _, err := s.c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	procs := ids.Gen(3)
	for round := 0; round < 10; round++ {
		key := fmt.Sprintf("k%d", round%3)
		val := fmt.Sprintf("v%d", round)
		if !s.put(procs[round%3], key, val, 10*time.Second) {
			t.Fatalf("write %d not acked", round)
		}
		// Read-your-writes through EVERY replica: the put acked at
		// stability, so each member has applied it and the fenced local
		// read must return it.
		for _, p := range procs {
			got, local, ok := s.readLocal(p, key, 10*time.Second)
			if !ok {
				t.Fatalf("local read of %q via %v not acked", key, p)
			}
			if !local {
				t.Errorf("read of %q via %v fell back to the sequenced path", key, p)
			}
			if got != val {
				t.Fatalf("local read of %q via %v = %q, want %q", key, p, got, val)
			}
		}
	}
	s.settle(10 * time.Second)
	s.certify()

	var st rsm.Stats
	s.mu.Lock()
	for _, n := range s.nodes {
		st = st.Add(n.Stats())
	}
	s.mu.Unlock()
	if st.LocalReads == 0 {
		t.Error("no reads took the local path")
	}
	if st.Broadcast.Fences == 0 {
		t.Error("local reads registered no stability fences")
	}
}

// TestKVSnapshotBinaryCodec: the KV snapshot rides the binary wire codec
// and round-trips exactly; malformed input restores the longest
// well-formed prefix without panicking.
func TestKVSnapshotBinaryCodec(t *testing.T) {
	kv := rsm.NewKV()
	want := map[string]string{"": "empty-key", "k1": "v1", "long-" + strings.Repeat("k", 300): strings.Repeat("v", 1000)}
	for k, v := range want {
		kv.Apply(rsm.EncodePut(k, v))
	}
	snap := kv.Snapshot()

	got := rsm.NewKV()
	got.Restore(snap)
	if got.Len() != len(want) {
		t.Fatalf("restored %d keys, want %d", got.Len(), len(want))
	}
	for k, v := range want {
		if g := got.Get(k); g != v {
			t.Fatalf("restored %q = %q, want %q", k, g, v)
		}
	}

	// Truncation at every byte: never panic, never invent state beyond
	// the prefix that survived.
	for n := 0; n < len(snap); n++ {
		fresh := rsm.NewKV()
		fresh.Restore(snap[:n])
		if fresh.Len() > len(want) {
			t.Fatalf("truncated snapshot restored %d keys, more than the original %d", fresh.Len(), len(want))
		}
	}
	empty := rsm.NewKV()
	empty.Restore(nil)
	if empty.Len() != 0 {
		t.Fatalf("nil snapshot restored %d keys", empty.Len())
	}
}

// TestKVReadLocalCommandGate: only read commands qualify for the local
// path; writes must refuse it.
func TestKVReadLocalCommandGate(t *testing.T) {
	kv := rsm.NewKV()
	kv.Apply(rsm.EncodePut("k", "v"))
	if out, ok := kv.ReadLocal(rsm.EncodeGet("k")); !ok || string(out) != "v" {
		t.Fatalf("ReadLocal(get k) = %q, %v; want \"v\", true", out, ok)
	}
	if _, ok := kv.ReadLocal(rsm.EncodePut("k", "w")); ok {
		t.Fatal("ReadLocal accepted a write command")
	}
	if _, ok := kv.ReadLocal(nil); ok {
		t.Fatal("ReadLocal accepted a malformed command")
	}
}

// rec builds one applied order record for the checker-negative tests.
func rec(origin ids.ProcID, pubID uint64, body []byte) rsm.Record {
	return rsm.Record{Ver: 0, Seq: pubID, Origin: origin, PubID: pubID, Body: body, Applied: true}
}

// TestCheckerCatchesStaleLocalRead: a local read whose value predates its
// own fence position must fail certification.
func TestCheckerCatchesStaleLocalRead(t *testing.T) {
	pa := ids.Named("pa")
	order := []rsm.Record{
		rec(pa, 1, rsm.EncodePut("k", "v1")),
		rec(pa, 2, rsm.EncodePut("k", "v2")),
	}
	ops := []rsm.ClientOp{
		{Write: true, Key: "k", Val: "v1", Origin: pa, PubID: 1, Invoke: 1, Complete: 2, Acked: true},
		{Write: true, Key: "k", Val: "v2", Origin: pa, PubID: 2, Invoke: 3, Complete: 4, Acked: true},
		// Fenced at pa/2 (state says v2) but claims it read v1: stale.
		{Key: "k", Val: "v1", Invoke: 5, Complete: 6, Acked: true,
			Local: true, Fence: rsm.CmdID{Origin: pa, PubID: 2}},
	}
	err := rsm.CheckKVLinearizable(ops, order)
	if err == nil || !strings.Contains(err.Error(), "STALE LOCAL READ") {
		t.Fatalf("stale local read not caught: %v", err)
	}

	// The honest version of the same history certifies.
	ops[2].Val = "v2"
	if err := rsm.CheckKVLinearizable(ops, order); err != nil {
		t.Fatalf("honest local read rejected: %v", err)
	}
}

// TestCheckerCatchesLocalReadRealTimeViolation: a local read invoked
// after a later write completed, yet fenced before that write, breaks
// real time and must fail certification.
func TestCheckerCatchesLocalReadRealTimeViolation(t *testing.T) {
	pa := ids.Named("pa")
	order := []rsm.Record{
		rec(pa, 1, rsm.EncodePut("k", "v1")),
		rec(pa, 2, rsm.EncodePut("k", "v2")),
	}
	ops := []rsm.ClientOp{
		{Write: true, Key: "k", Val: "v1", Origin: pa, PubID: 1, Invoke: 1, Complete: 2, Acked: true},
		{Write: true, Key: "k", Val: "v2", Origin: pa, PubID: 2, Invoke: 3, Complete: 4, Acked: true},
		// Invoked at 5 — after pa/2 completed — but fenced at pa/1 and
		// returning v1: it observed state older than a write that finished
		// before it began.
		{Key: "k", Val: "v1", Invoke: 5, Complete: 6, Acked: true,
			Local: true, Fence: rsm.CmdID{Origin: pa, PubID: 1}},
	}
	err := rsm.CheckKVLinearizable(ops, order)
	if err == nil || !strings.Contains(err.Error(), "real-time violation") {
		t.Fatalf("local-read real-time violation not caught: %v", err)
	}
}

// TestCheckerCatchesLostLocalReadFence: a local read fenced at a command
// the applied order does not contain means the read observed state that
// was later lost — certification must fail.
func TestCheckerCatchesLostLocalReadFence(t *testing.T) {
	pa := ids.Named("pa")
	order := []rsm.Record{rec(pa, 1, rsm.EncodePut("k", "v1"))}
	ops := []rsm.ClientOp{
		{Key: "k", Val: "v?", Invoke: 1, Complete: 2, Acked: true,
			Local: true, Fence: rsm.CmdID{Origin: pa, PubID: 9}},
	}
	if err := rsm.CheckKVLinearizable(ops, order); err == nil {
		t.Fatal("local read fenced at a lost command passed certification")
	}
}

// TestCheckerAcceptsEmptyPrefixLocalRead: a zero fence is a legal read of
// the empty prefix — it must certify iff the value is the empty state's.
func TestCheckerAcceptsEmptyPrefixLocalRead(t *testing.T) {
	pa := ids.Named("pa")
	order := []rsm.Record{rec(pa, 1, rsm.EncodePut("k", "v1"))}
	ops := []rsm.ClientOp{
		{Key: "k", Val: "", Invoke: 1, Complete: 2, Acked: true, Local: true},
	}
	if err := rsm.CheckKVLinearizable(ops, order); err != nil {
		t.Fatalf("empty-prefix local read rejected: %v", err)
	}
	ops[0].Val = "v1" // claims a value the empty prefix cannot hold
	if err := rsm.CheckKVLinearizable(ops, order); err == nil {
		t.Fatal("empty-prefix local read with a non-empty value passed")
	}
}
