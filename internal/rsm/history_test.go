package rsm

import (
	"strings"
	"testing"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// The checkers are the certification; these tests prove they actually
// catch each class of violation (a checker that always passes certifies
// nothing).

func rec(ver member.Version, seq uint64, origin ids.ProcID, pubID uint64, applied bool) Record {
	return Record{Ver: ver, Seq: seq, Origin: origin, PubID: pubID, Body: EncodePut("k", "v"), Applied: applied}
}

func TestCheckTotalOrderAcceptsCleanHistories(t *testing.T) {
	p1, p2, p9 := ids.Named("p1"), ids.Named("p2"), ids.Named("p9")
	full := []Record{
		rec(0, 1, p1, 1, true),
		rec(0, 2, p2, 1, true),
		rec(1, 1, p1, 2, true),
	}
	// p9 joined at view 1: its applied history is a suffix of the global
	// order, and the view-1 entry it replayed holds the same slot.
	joiner := []Record{rec(1, 1, p1, 2, true)}
	seqs := map[ids.ProcID][]Record{p1: full, p2: full, p9: joiner}
	if err := CheckTotalOrder(seqs, []ids.ProcID{p1, p2, p9}); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestCheckTotalOrderCatchesDuplicateApply(t *testing.T) {
	p1 := ids.Named("p1")
	seqs := map[ids.ProcID][]Record{p1: {
		rec(0, 1, p1, 1, true),
		rec(1, 1, p1, 1, true), // same (origin, pubID) applied again post view change
	}}
	err := CheckTotalOrder(seqs, []ids.ProcID{p1})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate apply not caught: %v", err)
	}
}

func TestCheckTotalOrderCatchesDivergence(t *testing.T) {
	p1, p2 := ids.Named("p1"), ids.Named("p2")
	seqs := map[ids.ProcID][]Record{
		p1: {rec(0, 1, p1, 1, true), rec(0, 2, p2, 1, true)},
		p2: {rec(0, 1, p2, 1, true), rec(0, 2, p1, 1, true)}, // opposite order
	}
	if err := CheckTotalOrder(seqs, []ids.ProcID{p1, p2}); err == nil {
		t.Fatal("opposite apply orders not caught")
	}
}

func TestCheckTotalOrderAllowsDeadReplicaDivergentSuffix(t *testing.T) {
	p1, p2, p3 := ids.Named("p1"), ids.Named("p2"), ids.Named("p3")
	// p1 was the view-0 sequencer: it applied slots 3 and 4 the moment it
	// assigned them, then died before the frames reached anyone. The
	// survivors' flush cut excludes those entries; the origins resubmit
	// and the commands re-sequence into view 1 in the opposite
	// cross-origin interleaving. p1's suffix diverges — legitimately.
	deadSeq := []Record{
		rec(0, 1, p1, 1, true),
		rec(0, 2, p2, 1, true),
		rec(0, 3, p2, 2, true), // stranded: survivors never saw slots 3, 4
		rec(0, 4, p3, 1, true),
	}
	survivor := []Record{
		rec(0, 1, p1, 1, true),
		rec(0, 2, p2, 1, true),
		rec(1, 1, p3, 1, true), // re-sequenced, other interleaving
		rec(1, 2, p2, 2, true),
	}
	seqs := map[ids.ProcID][]Record{p1: deadSeq, p2: survivor, p3: survivor}
	if err := CheckTotalOrder(seqs, []ids.ProcID{p2, p3}); err != nil {
		t.Fatalf("dead sequencer's post-cut suffix rejected: %v", err)
	}
	// The identical divergence between two replicas both alive at the end
	// is a real total-order violation.
	if err := CheckTotalOrder(seqs, []ids.ProcID{p1, p2, p3}); err == nil {
		t.Fatal("divergent suffix on an alive replica not caught")
	}
}

func TestCheckTotalOrderCatchesEndDisagreement(t *testing.T) {
	p1, p2 := ids.Named("p1"), ids.Named("p2")
	seqs := map[ids.ProcID][]Record{
		p1: {rec(0, 1, p1, 1, true), rec(0, 2, p2, 1, true)},
		p2: {rec(0, 1, p1, 1, true)}, // alive but stopped short
	}
	err := CheckTotalOrder(seqs, []ids.ProcID{p1, p2})
	if err == nil || !strings.Contains(err.Error(), "diverge at the end") {
		t.Fatalf("end disagreement not caught: %v", err)
	}
	// The same gap is fine when the short replica is dead.
	if err := CheckTotalOrder(seqs, []ids.ProcID{p1}); err != nil {
		t.Fatalf("dead replica's short history rejected: %v", err)
	}
}

func TestCheckTotalOrderCatchesSlotConflict(t *testing.T) {
	p1, p2 := ids.Named("p1"), ids.Named("p2")
	// Disjoint applied histories (alignment skips them), but the two
	// replicas disagree about what view 0 slot 1 held.
	seqs := map[ids.ProcID][]Record{
		p1: {rec(0, 1, p1, 1, true)},
		p2: {rec(0, 1, p2, 5, true)},
	}
	err := CheckTotalOrder(seqs, nil)
	if err == nil || !strings.Contains(err.Error(), "slot") {
		t.Fatalf("slot conflict not caught: %v", err)
	}
}

func TestCheckTotalOrderCatchesSlotGap(t *testing.T) {
	p1 := ids.Named("p1")
	seqs := map[ids.ProcID][]Record{p1: {
		rec(0, 1, p1, 1, true),
		rec(0, 3, p1, 2, true), // slot 2 never processed
	}}
	err := CheckTotalOrder(seqs, []ids.ProcID{p1})
	if err == nil || !strings.Contains(err.Error(), "non-contiguous") {
		t.Fatalf("slot gap not caught: %v", err)
	}
	// Entering a view above slot 1 is the same defect at the boundary.
	seqs = map[ids.ProcID][]Record{p1: {rec(2, 4, p1, 1, true)}}
	if err := CheckTotalOrder(seqs, []ids.ProcID{p1}); err == nil {
		t.Fatal("view entered mid-order not caught")
	}
}

func op(origin ids.ProcID, pubID uint64, write bool, key, val string, invoke, complete int64) ClientOp {
	return ClientOp{
		Write: write, Key: key, Val: val,
		Origin: origin, PubID: pubID,
		Invoke: invoke, Complete: complete, Acked: true,
	}
}

func orderOf(ops ...ClientOp) []Record {
	out := make([]Record, 0, len(ops))
	for i, o := range ops {
		body := EncodeGet(o.Key)
		if o.Write {
			body = EncodePut(o.Key, o.Val)
		}
		out = append(out, Record{
			Ver: 0, Seq: uint64(i + 1),
			Origin: o.Origin, PubID: o.PubID,
			Body: body, Applied: true,
		})
	}
	return out
}

func TestCheckKVLinearizableAcceptsCleanHistory(t *testing.T) {
	p1 := ids.Named("p1")
	w := op(p1, 1, true, "k", "v1", 10, 20)
	r := op(p1, 2, false, "k", "v1", 30, 40)
	if err := CheckKVLinearizable([]ClientOp{w, r}, orderOf(w, r)); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestCheckKVLinearizableCatchesLostAckedWrite(t *testing.T) {
	p1 := ids.Named("p1")
	w := op(p1, 1, true, "k", "v1", 10, 20)
	err := CheckKVLinearizable([]ClientOp{w}, nil) // acked, absent from the order
	if err == nil || !strings.Contains(err.Error(), "ACKED OP LOST") {
		t.Fatalf("lost acked write not caught: %v", err)
	}
	// Unacked ops constrain nothing: a timed-out write may or may not land.
	w.Acked = false
	if err := CheckKVLinearizable([]ClientOp{w}, nil); err != nil {
		t.Fatalf("unacked op rejected: %v", err)
	}
}

func TestCheckKVLinearizableCatchesStaleRead(t *testing.T) {
	p1 := ids.Named("p1")
	w := op(p1, 1, true, "k", "v2", 10, 20)
	r := op(p1, 2, false, "k", "v1", 30, 40) // returned the old value
	err := CheckKVLinearizable([]ClientOp{w, r}, orderOf(w, r))
	if err == nil || !strings.Contains(err.Error(), "STALE READ") {
		t.Fatalf("stale read not caught: %v", err)
	}
}

func TestCheckKVLinearizableCatchesRealTimeViolation(t *testing.T) {
	p1, p2 := ids.Named("p1"), ids.Named("p2")
	a := op(p1, 1, true, "k", "v1", 10, 20) // completed before b was invoked...
	b := op(p2, 1, true, "k", "v2", 30, 40)
	err := CheckKVLinearizable([]ClientOp{a, b}, orderOf(b, a)) // ...yet ordered after it
	if err == nil || !strings.Contains(err.Error(), "real-time") {
		t.Fatalf("real-time violation not caught: %v", err)
	}
	// Concurrent ops (overlapping windows) may order either way.
	c := op(p2, 2, true, "k", "v3", 15, 40)
	if err := CheckKVLinearizable([]ClientOp{a, c}, orderOf(c, a)); err != nil {
		t.Fatalf("concurrent reordering rejected: %v", err)
	}
}

func TestCheckKVLinearizableCatchesDoubleRecord(t *testing.T) {
	p1 := ids.Named("p1")
	w := op(p1, 1, true, "k", "v1", 10, 20)
	err := CheckKVLinearizable([]ClientOp{w, w}, orderOf(w))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double-recorded op not caught: %v", err)
	}
}
