package twophase

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
)

func contains(members []ids.ProcID, p ids.ProcID) bool {
	for _, m := range members {
		if m == p {
			return true
		}
	}
	return false
}

func TestClaim72_TwoPhaseViolatesGMP3(t *testing.T) {
	c := Figure11(Config(), 51)
	procs := c.Initial()
	target := procs[8]
	c.Run()

	// The invisible commit really happened: p3 died holding v1 without
	// the target.
	p3 := c.Views(procs[2])
	if len(p3) < 2 || p3[1].Ver != 1 {
		t.Fatalf("schedule broken: p3 never installed the invisible v1: %v", p3)
	}
	if contains(p3[1].Members, target) {
		t.Fatalf("schedule broken: p3's v1 still contains the target: %v", p3[1].Members)
	}

	rep := c.Check()
	if rep.OK() {
		t.Fatal("two-phase reconfiguration passed the checker; Claim 7.2 says it must not")
	}
	if len(rep.Of("GMP-3")) == 0 {
		t.Errorf("want a GMP-3 violation (divergent v1), got:\n%v", rep)
	}

	// And the divergence is exactly the predicted one: the survivors'
	// v1 removed Mgr instead of the target.
	p4 := c.Views(procs[3])
	if len(p4) < 2 {
		t.Fatalf("p4 never reconfigured: %v", p4)
	}
	if !contains(p4[1].Members, target) {
		t.Errorf("expected the survivors' v1 to (wrongly) keep the target: %v", p4[1].Members)
	}
	if contains(p4[1].Members, procs[0]) {
		t.Errorf("expected the survivors' v1 to remove Mgr: %v", p4[1].Members)
	}
}

func TestClaim72_ThreePhaseSurvivesSameSchedule(t *testing.T) {
	// The identical adversarial schedule under the paper's three-phase
	// reconfiguration: Phase II disseminates (remove target : p2 : 1) to
	// a majority before p2's commit, so p4 detects and propagates the
	// invisible commit and every v1 in the run — including dead p3's — is
	// identical.
	c := Figure11(core.DefaultConfig(), 51)
	procs := c.Initial()
	c.Run()

	p3 := c.Views(procs[2])
	if len(p3) < 2 || p3[1].Ver != 1 {
		t.Fatalf("schedule broken: p3 never installed v1: %v", p3)
	}
	rep := c.Check()
	if !rep.OK() {
		t.Fatalf("three-phase run must satisfy GMP on the Figure 11 schedule:\n%v", rep)
	}
	p4 := c.Views(procs[3])
	if len(p4) < 2 || p4[1].Ver != 1 {
		t.Fatalf("p4 never reconfigured: %v", p4)
	}
	want := ids.NewSet(p3[1].Members...)
	if len(p4[1].Members) != want.Len() {
		t.Fatalf("v1 diverged despite three phases: %v vs %v", p3[1].Members, p4[1].Members)
	}
	for _, m := range p4[1].Members {
		if !want.Has(m) {
			t.Errorf("v1 diverged despite three phases: %v vs %v", p3[1].Members, p4[1].Members)
		}
	}
}

func TestTwoPhaseIsCheaperButUnsound(t *testing.T) {
	// The two-phase variant does save the proposal round's messages —
	// soundness, not cost, is why the paper needs three phases.
	c2 := Figure11(Config(), 51)
	c2.Run()
	c3 := Figure11(core.DefaultConfig(), 51)
	c3.Run()
	two := c2.Messages(core.LabelPropose, core.LabelProposeOK)
	three := c3.Messages(core.LabelPropose, core.LabelProposeOK)
	if two != 0 {
		t.Errorf("two-phase variant sent %d proposal messages, want 0", two)
	}
	if three == 0 {
		t.Error("three-phase variant sent no proposal messages")
	}
}
