package twophase

import (
	"procgroup/internal/core"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

// Config returns the strawman configuration: the final algorithm but with
// reconfiguration cut down to two phases.
func Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.TwoPhaseReconfig = true
	return cfg
}

// Figure11 builds the paper's Figure 11 schedule on a 9-process group and
// returns the cluster ready to Run:
//
//  1. Mgr (p1) starts excluding p9 but crashes during the invitation
//     broadcast, so only p2 and p3 ever learn the plan (remove p9 : p1 : 1).
//  2. p2 reconfigures. It determines that version 1 should be "remove p9"
//     and commits — but crashes during the commit broadcast, reaching only
//     p3. p3 installs v1 = Proc − {p9} … and then crashes too. The commit
//     is now invisible: no survivor ever saw it, and under the two-phase
//     protocol no survivor ever saw a *proposal* for it either.
//  3. p4 reconfigures with the surviving majority.
//
// Under the three-phase algorithm, step 2's proposal round placed
// (remove p9 : p2 : 1) in a majority of next-lists, so p4's Determine
// propagates it and v1 stays unique. Under the two-phase strawman, p4 sees
// no proposal at all, proposes "remove Mgr" for v1, and p3's grave holds a
// different v1 — the GMP-3 violation of Claim 7.2.
//
// The group is sized 9 so both variants retain a Phase-I majority: the
// three-phase proposal legitimately marks the live target p9 faulty at
// every respondent (Prop. 6.2), which removes p9 from the pool of
// processes whose answers later initiators may accept (S1).
func Figure11(cfg core.Config, seed int64) *scenario.Cluster {
	c := scenario.New(scenario.Options{N: 9, Seed: seed, Config: cfg, MuteOracle: true})
	procs := c.Initial()
	target := procs[8]

	// Step 1: Mgr learns of p9's "failure", invites, dies mid-broadcast.
	c.SuspectAt(procs[0], target, 10)
	c.CrashDuringBroadcast(procs[0], 2, core.LabelInvite) // reaches p2, p3 only

	// Step 2: p2 takes over, commits invisibly, dies; p3 follows it.
	c.SuspectAt(procs[1], procs[0], 100)
	c.CrashDuringBroadcast(procs[1], 1, core.LabelReconfCommit) // reaches p3 only
	c.CrashAt(procs[2], 400)

	// Step 3: p4 reconfigures with the surviving majority.
	for _, dead := range procs[:3] {
		c.SuspectAt(procs[3], dead, sim.Time(500))
	}
	return c
}
