// Package twophase demonstrates Claim 7.2: a reconfiguration protocol with
// only two phases (interrogate → commit, no proposal round) cannot solve
// GMP when the coordinator can fail. Without Phase II, an initiator's
// choice of update is never disseminated to a majority before it commits —
// so a commit that reaches only processes which then crash is genuinely
// invisible to every later reconfigurer, which will propose something else
// for the same version number and violate GMP-3 (Figure 11).
//
// The protocol itself is the core GMP node with Config.TwoPhaseReconfig
// set; this package contributes the adversarial schedule and the paired
// verdicts: the two-phase variant is convicted by the checker on the very
// schedule the three-phase algorithm survives.
package twophase
