package onephase

import (
	"testing"

	"procgroup/internal/baseline"
	"procgroup/internal/core"
	"procgroup/internal/ids"
)

func factory(id ids.ProcID, env core.Env) baseline.Node { return New(id, env) }

// TestClaim71_CrossSuspicionDiverges reproduces the proof of Claim 7.1:
// partition Proc into R and S with r ∈ R and Mgr ∈ S; everyone in R
// suspects Mgr and everyone in S suspects r. r's removal broadcast is
// discarded by S (property S1) and Mgr's by R, so R installs Proc−{Mgr} as
// v1 while S installs Proc−{r} as v1 — Memb¹ differs across live
// processes, violating GMP-3.
func TestClaim71_CrossSuspicionDiverges(t *testing.T) {
	h := baseline.NewHarness(baseline.Options{N: 6, Seed: 31, MuteOracle: true}, factory)
	procs := h.Initial()
	mgr := procs[0]
	r := procs[1]
	rSide := procs[1:4] // r, p3, p4
	sSide := procs[4:6] // p5, p6 side with Mgr
	for _, p := range rSide {
		h.SuspectAt(p, mgr, 10)
	}
	h.SuspectAt(mgr, r, 10)
	for _, p := range sSide {
		h.SuspectAt(p, r, 10)
	}
	h.Run()

	rep := h.Check()
	if rep.OK() {
		t.Fatal("one-phase protocol passed the checker; Claim 7.1 says it must not")
	}
	if len(rep.Of("GMP-3")) == 0 {
		t.Errorf("want a GMP-3 violation, got:\n%v", rep)
	}
	// The divergence is exactly the one from the claim's proof.
	vr := h.Node(procs[2]).View() // R side
	vs := h.Node(procs[4]).View() // S side
	if vr.Has(mgr) || !vr.Has(r) {
		t.Errorf("R side view %v should exclude Mgr and keep r", vr)
	}
	if vs.Has(r) || !vs.Has(mgr) {
		t.Errorf("S side view %v should exclude r and keep Mgr", vs)
	}
}

// TestHealthyPathWorks shows the strawman is not trivially broken: with a
// stable coordinator it does exclude a crashed process consistently — the
// flaw only appears when the coordinator itself can fail.
func TestHealthyPathWorks(t *testing.T) {
	h := baseline.NewHarness(baseline.Options{N: 5, Seed: 32}, factory)
	procs := h.Initial()
	h.CrashAt(procs[4], 20)
	h.Run()

	rep := h.Check()
	if !rep.OK() {
		t.Fatalf("healthy one-phase run should pass: %v", rep)
	}
	for _, p := range procs[:4] {
		v := h.Node(p).View()
		if v.Has(procs[4]) || v.Size() != 4 {
			t.Errorf("%v view %v", p, v)
		}
	}
}

// TestMessageCost records the one-phase cost: n−2 messages per exclusion —
// cheap, and exactly why the paper must prove it unsound rather than
// inefficient.
func TestMessageCost(t *testing.T) {
	n := 8
	h := baseline.NewHarness(baseline.Options{N: n, Seed: 33}, factory)
	procs := h.Initial()
	h.CrashAt(procs[n-1], 20)
	h.Run()
	if got, want := h.Messages(LabelRemove), n-2; got != want {
		t.Errorf("one-phase exclusion cost %d, want %d", got, want)
	}
}
