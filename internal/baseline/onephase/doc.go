// Package onephase is the one-phase membership strawman of Claim 7.1: a
// coordinator (or self-appointed successor) simply broadcasts removals and
// everyone applies them on receipt — no acknowledgement, no agreement
// round. The paper proves this cannot solve GMP when the coordinator can
// fail: cross-partition suspicions make two processes broadcast conflicting
// removals that property S1 confines to disjoint audiences, so local views
// for the same version number diverge (GMP-3 is violated). The tests in
// this package reproduce exactly that run and convict it with the shared
// checker.
package onephase
