package onephase

import (
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// LabelRemove is the single message kind of the protocol.
const LabelRemove = "Remove1P"

// Remove is the unacknowledged removal broadcast.
type Remove struct {
	Target ids.ProcID
	Ver    member.Version
}

// MsgLabel implements netsim.Labeled.
func (Remove) MsgLabel() string { return LabelRemove }

// Node runs the one-phase protocol.
type Node struct {
	id       ids.ProcID
	env      core.Env
	alive    bool
	view     *member.View
	isolated ids.Set
}

// New builds a node.
func New(id ids.ProcID, env core.Env) *Node {
	return &Node{id: id, env: env, alive: true, isolated: ids.NewSet()}
}

// Bootstrap installs the initial commonly-known view.
func (n *Node) Bootstrap(initial []ids.ProcID) {
	n.view = member.NewView(initial)
	n.env.RecordInstall(n.view.Version(), n.view.Members())
}

// Alive reports whether the node still executes.
func (n *Node) Alive() bool { return n.alive }

// View returns a copy of the local view.
func (n *Node) View() *member.View {
	if n.view == nil {
		return nil
	}
	return n.view.Clone()
}

// Suspect is the F1 input. The acting rule is the one-phase analogue of the
// paper's succession: the coordinator removes suspects directly; an outer
// process acts only once every higher-ranked member is suspected, then
// broadcasts the removals itself.
func (n *Node) Suspect(q ids.ProcID) {
	if !n.alive || q == n.id || n.isolated.Has(q) || !n.view.Has(q) {
		return
	}
	n.isolated.Add(q)
	n.env.Record(event.Faulty, q)
	n.act()
}

// act broadcasts and applies removals for every suspect once this node is
// the highest-ranked unsuspected member.
func (n *Node) act() {
	for _, h := range n.view.HigherRanked(n.id) {
		if !n.isolated.Has(h) {
			return // somebody above us is responsible
		}
	}
	for {
		var target ids.ProcID
		for _, m := range n.view.Members() {
			if n.isolated.Has(m) {
				target = m
				break
			}
		}
		if target.IsNil() {
			return
		}
		ver := n.view.Version() + 1
		for _, m := range n.view.Members() {
			if m != n.id && m != target {
				n.env.Send(m, Remove{Target: target, Ver: ver})
			}
		}
		n.apply(target)
	}
}

func (n *Node) apply(target ids.ProcID) {
	if err := n.view.Apply(member.Remove(target)); err != nil {
		return
	}
	n.env.Record(event.Remove, target)
	n.env.RecordInstall(n.view.Version(), n.view.Members())
}

// Deliver applies a received removal, subject to property S1.
func (n *Node) Deliver(from ids.ProcID, payload any) {
	if !n.alive || n.isolated.Has(from) || !n.view.Has(from) {
		return
	}
	m, ok := payload.(Remove)
	if !ok {
		return
	}
	if m.Target == n.id {
		n.alive = false
		n.env.Record(event.Quit, ids.Nil)
		n.env.Quit()
		return
	}
	if !n.view.Has(m.Target) {
		return
	}
	// F2 gossip keeps GMP-1 technically satisfied; the property this
	// protocol loses is GMP-3.
	if !n.isolated.Has(m.Target) {
		n.isolated.Add(m.Target)
		n.env.Record(event.Faulty, m.Target)
	}
	n.apply(m.Target)
}
