// Package symmetric is the comparison protocol of §1/§8: a fully symmetric
// membership service in the style the paper attributes to Bruso [5] — every
// process behaves identically, flooding accusations to the whole group and
// excluding a member once a majority has accused it. It is correct for
// well-separated failures and needs no coordinator, but each exclusion
// costs (n−1)² messages where the asymmetric GMP protocol pays 3n−5 — the
// "order of magnitude more messages in all situations" the paper cites.
// Benchmarks in the repository root regenerate that comparison.
package symmetric
