package symmetric

import (
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// LabelAccuse is the protocol's single message kind.
const LabelAccuse = "Accuse"

// Accuse floods one process's belief that Target is faulty. A first-hand
// detection and an echo are deliberately the same message: the protocol is
// symmetric.
type Accuse struct {
	Target ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (Accuse) MsgLabel() string { return LabelAccuse }

// Node runs the symmetric protocol.
type Node struct {
	id       ids.ProcID
	env      core.Env
	alive    bool
	view     *member.View
	isolated ids.Set
	accused  ids.Set                // targets this node has flooded
	echoes   map[ids.ProcID]ids.Set // target → accusers seen (incl. self)
	selfAcc  ids.Set                // processes that accused this node
}

// New builds a node.
func New(id ids.ProcID, env core.Env) *Node {
	return &Node{
		id:       id,
		env:      env,
		alive:    true,
		isolated: ids.NewSet(),
		accused:  ids.NewSet(),
		echoes:   make(map[ids.ProcID]ids.Set),
		selfAcc:  ids.NewSet(),
	}
}

// Bootstrap installs the initial view.
func (n *Node) Bootstrap(initial []ids.ProcID) {
	n.view = member.NewView(initial)
	n.env.RecordInstall(n.view.Version(), n.view.Members())
}

// Alive reports whether the node still executes.
func (n *Node) Alive() bool { return n.alive }

// View returns a copy of the local view.
func (n *Node) View() *member.View {
	if n.view == nil {
		return nil
	}
	return n.view.Clone()
}

// Suspect is the F1 input: flood the accusation.
func (n *Node) Suspect(q ids.ProcID) {
	if !n.alive || q == n.id || !n.view.Has(q) {
		return
	}
	n.accuse(q)
}

func (n *Node) accuse(q ids.ProcID) {
	if n.accused.Has(q) {
		return
	}
	n.accused.Add(q)
	if !n.isolated.Has(q) {
		n.isolated.Add(q)
		n.env.Record(event.Faulty, q)
	}
	set, ok := n.echoes[q]
	if !ok {
		set = ids.NewSet()
		n.echoes[q] = set
	}
	set.Add(n.id)
	for _, m := range n.view.Members() {
		if m != n.id {
			n.env.Send(m, Accuse{Target: q})
		}
	}
	n.maybeCommit(q)
}

// Deliver counts accusations; an accusation we have not flooded yet is
// echoed (that is the n² of the protocol).
func (n *Node) Deliver(from ids.ProcID, payload any) {
	if !n.alive || n.isolated.Has(from) || !n.view.Has(from) {
		return
	}
	m, ok := payload.(Accuse)
	if !ok {
		return
	}
	if m.Target == n.id {
		n.selfAcc.Add(from)
		if n.selfAcc.Len() >= n.view.Majority()-1 {
			// A majority (them plus themselves) holds us faulty: quit.
			n.alive = false
			n.env.Record(event.Quit, ids.Nil)
			n.env.Quit()
		}
		return
	}
	if !n.view.Has(m.Target) {
		return
	}
	set, ok := n.echoes[m.Target]
	if !ok {
		set = ids.NewSet()
		n.echoes[m.Target] = set
	}
	set.Add(from)
	n.accuse(m.Target) // echo once; no-op if already flooded
	n.maybeCommit(m.Target)
}

func (n *Node) maybeCommit(q ids.ProcID) {
	if !n.view.Has(q) || n.echoes[q].Len() < n.view.Majority() {
		return
	}
	if err := n.view.Apply(member.Remove(q)); err != nil {
		return
	}
	n.env.Record(event.Remove, q)
	n.env.RecordInstall(n.view.Version(), n.view.Members())
}
