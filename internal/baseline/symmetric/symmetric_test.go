package symmetric

import (
	"testing"

	"procgroup/internal/baseline"
	"procgroup/internal/core"
	"procgroup/internal/ids"
)

func factory(id ids.ProcID, env core.Env) baseline.Node { return New(id, env) }

func TestSingleExclusionConverges(t *testing.T) {
	h := baseline.NewHarness(baseline.Options{N: 6, Seed: 41}, factory)
	procs := h.Initial()
	h.CrashAt(procs[5], 20)
	h.Run()

	rep := h.Check()
	if !rep.OK() {
		t.Fatalf("symmetric single-failure run should pass: %v", rep)
	}
	for _, p := range procs[:5] {
		v := h.Node(p).View()
		if v.Has(procs[5]) || v.Size() != 5 {
			t.Errorf("%v view %v", p, v)
		}
	}
}

func TestExclusionCostsQuadratic(t *testing.T) {
	// Every live process floods one accusation to n−1 peers: (n−1)²
	// messages per exclusion, against the asymmetric protocol's 3n−5.
	for _, n := range []int{4, 8, 16, 32} {
		h := baseline.NewHarness(baseline.Options{N: n, Seed: 42}, factory)
		procs := h.Initial()
		h.CrashAt(procs[n-1], 20)
		h.Run()
		got := h.Messages(LabelAccuse)
		want := (n - 1) * (n - 1)
		if got != want {
			t.Errorf("n=%d: symmetric cost %d, want (n−1)²=%d", n, got, want)
		}
		gmp := 3*n - 5
		if got <= gmp {
			t.Errorf("n=%d: symmetric (%d) should cost more than GMP (%d)", n, got, gmp)
		}
	}
}

func TestOrderOfMagnitudeAtScale(t *testing.T) {
	// §1: "an order of magnitude more messages in all situations" — at
	// n=32 the ratio exceeds 10×.
	n := 32
	ratio := float64((n-1)*(n-1)) / float64(3*n-5)
	if ratio < 10 {
		t.Errorf("ratio at n=%d is %.1f, want ≥10", n, ratio)
	}
}

func TestSequentialFailuresConverge(t *testing.T) {
	h := baseline.NewHarness(baseline.Options{N: 7, Seed: 43}, factory)
	procs := h.Initial()
	h.CrashAt(procs[6], 20)
	h.CrashAt(procs[5], 500)
	h.Run()

	rep := h.Check()
	if !rep.OK() {
		t.Fatalf("sequential failures should stay consistent: %v", rep)
	}
	v := h.Node(procs[0]).View()
	if v.Size() != 5 {
		t.Errorf("final view %v, want 5 members", v)
	}
}

func TestMajorityAccusationKillsLiveTarget(t *testing.T) {
	// A spuriously accused live process quits once a majority accuses it
	// (GMP-5 resolution in the symmetric world).
	h := baseline.NewHarness(baseline.Options{N: 5, Seed: 44, MuteOracle: true}, factory)
	procs := h.Initial()
	victim := procs[4]
	for _, p := range procs[:3] {
		h.SuspectAt(p, victim, 10)
	}
	h.Run()

	if h.Alive(victim) {
		t.Error("majority-accused process should have quit")
	}
	rep := h.Check()
	if !rep.OK() {
		t.Fatalf("spurious-accusation run should stay consistent: %v", rep)
	}
}
