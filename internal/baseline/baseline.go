package baseline

import (
	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/netsim"
	"procgroup/internal/sim"
	"procgroup/internal/trace"
)

// Node is the protocol surface the harness drives; core.Node and every
// baseline node satisfy it.
type Node interface {
	Deliver(from ids.ProcID, payload any)
	Suspect(q ids.ProcID)
	Bootstrap(initial []ids.ProcID)
	Alive() bool
	View() *member.View
}

// Factory builds one protocol node for a process.
type Factory func(id ids.ProcID, env core.Env) Node

// Options configures a baseline harness.
type Options struct {
	N           int
	Seed        int64
	Delay       netsim.DelayFn
	DetectDelay netsim.DelayFn
	MuteOracle  bool
}

// Harness runs a set of baseline nodes on the simulated substrate.
type Harness struct {
	Sched  *sim.Scheduler
	Net    *netsim.Network
	Oracle *fd.Oracle
	Rec    *trace.Recorder

	initial []ids.ProcID
	nodes   map[ids.ProcID]Node
}

// NewHarness builds and bootstraps a cluster of factory-made nodes.
func NewHarness(opts Options, factory Factory) *Harness {
	procs := ids.Gen(opts.N)
	sched := sim.NewScheduler(opts.Seed)
	rec := trace.NewRecorder(func() int64 { return int64(sched.Now()) })
	net := netsim.New(sched, opts.Delay, rec)
	oracle := fd.NewOracle(sched, net, opts.DetectDelay)
	if opts.MuteOracle {
		oracle.Mute()
	}
	h := &Harness{
		Sched:   sched,
		Net:     net,
		Oracle:  oracle,
		Rec:     rec,
		initial: procs,
		nodes:   make(map[ids.ProcID]Node, len(procs)),
	}
	for _, p := range procs {
		n := factory(p, &env{h: h, id: p})
		h.nodes[p] = n
		net.Register(p, n.Deliver)
		oracle.Register(p, n.Suspect)
	}
	for _, p := range procs {
		h.nodes[p].Bootstrap(procs)
	}
	return h
}

// env adapts the substrate to core.Env for baseline nodes.
type env struct {
	h  *Harness
	id ids.ProcID
}

func (e *env) Send(to ids.ProcID, payload any) { e.h.Net.Send(e.id, to, payload) }

func (e *env) After(d int64, fn func()) (cancel func()) {
	cancelled := false
	e.h.Sched.After(sim.Time(d), func() {
		if !cancelled {
			fn()
		}
	})
	return func() { cancelled = true }
}

func (e *env) Quit() { e.h.Net.Crash(e.id) }

func (e *env) Record(k event.Kind, other ids.ProcID) { e.h.Rec.RecordInternal(e.id, k, other) }

func (e *env) RecordInstall(ver member.Version, members []ids.ProcID) {
	e.h.Rec.RecordInstall(e.id, ver, members)
}

// Initial returns the bootstrap membership.
func (h *Harness) Initial() []ids.ProcID {
	out := make([]ids.ProcID, len(h.initial))
	copy(out, h.initial)
	return out
}

// Node returns p's node.
func (h *Harness) Node(p ids.ProcID) Node { return h.nodes[p] }

// Alive reports whether p is still executing.
func (h *Harness) Alive(p ids.ProcID) bool {
	n, ok := h.nodes[p]
	return ok && n.Alive() && h.Net.Alive(p)
}

// CrashAt schedules a crash.
func (h *Harness) CrashAt(p ids.ProcID, t sim.Time) {
	h.Sched.At(t, func() { h.Net.Crash(p) })
}

// SuspectAt injects faulty_p(q) at t.
func (h *Harness) SuspectAt(p, q ids.ProcID, t sim.Time) { h.Oracle.Inject(p, q, t) }

// Run drains the schedule.
func (h *Harness) Run() { h.Sched.Run() }

// Messages sums recorded sends for the labels (all when empty).
func (h *Harness) Messages(labels ...string) int { return h.Rec.MessagesSent(labels...) }

// Check runs the GMP checker over the recorded run.
func (h *Harness) Check() *check.Report {
	return check.Run(check.Input{Recorder: h.Rec, Initial: h.Initial(), Alive: h.Alive})
}
