// Package baseline hosts the comparison protocols of the evaluation: the
// one-phase and two-phase strawmen the paper proves inadequate (§7.3,
// Claims 7.1 and 7.2) and a symmetric all-to-all membership protocol in the
// style the paper attributes to Bruso — "an order of magnitude more
// messages in all situations" (§1). This file provides the shared harness
// that wires any baseline node onto the simulated substrate so the same
// checker and counters apply to all of them.
package baseline
