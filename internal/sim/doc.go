// Package sim is a deterministic discrete-event scheduler: the substitute
// substrate for the asynchronous environment of the paper (§2.1). Message
// transmission times are unbounded in the model; here they are arbitrary
// finite values drawn from a seeded generator, so every run is exactly
// reproducible and the evaluation's message counts are exact. The protocol
// never reads the clock to make decisions — virtual time exists only to
// order deliveries and to drive the failure-detection substrate (the paper
// likewise uses time "only as an (approximate) tool for detecting possible
// crash failures", §2.2).
package sim
