package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract ticks.
type Time int64

// item is a scheduled callback. seq breaks ties deterministically so that
// two events at the same instant run in scheduling order.
type item struct {
	at  Time
	seq int64
	fn  func()
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Scheduler executes callbacks in virtual-time order. It is single-threaded:
// all protocol code runs inside callbacks, which is what makes simulated
// runs deterministic.
type Scheduler struct {
	now   Time
	heap  itemHeap
	seq   int64
	rng   *rand.Rand
	steps int64
	limit int64
}

// defaultStepLimit guards against runaway schedules (livelock in a buggy
// protocol would otherwise hang the test suite).
const defaultStepLimit = 50_000_000

// NewScheduler returns a scheduler whose randomness derives entirely from
// seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng:   rand.New(rand.NewSource(seed)),
		limit: defaultStepLimit,
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand exposes the seeded generator (delay sampling, scenario jitter).
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Steps returns the number of callbacks executed so far.
func (s *Scheduler) Steps() int64 { return s.steps }

// SetStepLimit overrides the runaway guard.
func (s *Scheduler) SetStepLimit(n int64) { s.limit = n }

// At schedules fn at absolute time t. Scheduling in the past is clamped to
// the present (the callback runs at Now, after already-queued callbacks for
// that instant).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.heap, item{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d ticks from now.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step runs the earliest pending callback. It reports false when the queue
// is empty.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	it := heap.Pop(&s.heap).(item)
	s.now = it.at
	s.steps++
	if s.steps > s.limit {
		panic(fmt.Sprintf("sim: step limit %d exceeded (livelock?)", s.limit))
	}
	it.fn()
	return true
}

// Run drains the queue and returns the number of callbacks executed.
func (s *Scheduler) Run() int64 {
	start := s.steps
	for s.Step() {
	}
	return s.steps - start
}

// RunUntil executes callbacks with time ≤ t, then sets Now to t.
func (s *Scheduler) RunUntil(t Time) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued callbacks.
func (s *Scheduler) Pending() int { return len(s.heap) }
