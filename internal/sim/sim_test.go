package sim

import (
	"testing"
)

func TestRunInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %d, want 30", s.Now())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	s.After(5, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Errorf("fired = %v, want [5 10]", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.At(10, func() {
		s.At(3, func() { // in the past — must run "now", not travel back
			if s.Now() != 10 {
				t.Errorf("past callback ran at %d", s.Now())
			}
			ran = true
		})
	})
	s.Run()
	if !ran {
		t.Error("past-scheduled callback never ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(5, func() { got = append(got, 5) })
	s.At(15, func() { got = append(got, 15) })
	s.RunUntil(10)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("RunUntil(10) executed %v", got)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %d, want 10", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(got) != 2 {
		t.Error("remaining event lost")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(42)
		var samples []int64
		var step func()
		step = func() {
			samples = append(samples, s.Rand().Int63n(1000))
			if len(samples) < 50 {
				s.After(Time(1+s.Rand().Int63n(9)), step)
			}
		}
		s.After(1, step)
		s.Run()
		return samples
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStepLimitPanics(t *testing.T) {
	s := NewScheduler(1)
	s.SetStepLimit(100)
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected step-limit panic")
		}
	}()
	s.Run()
}

func TestStepsCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		s.After(Time(i), func() {})
	}
	if n := s.Run(); n != 7 {
		t.Errorf("Run returned %d, want 7", n)
	}
	if s.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", s.Steps())
	}
}
