// Package channel implements the paper's channel substrate (§3): the
// reliable FIFO property "requires a (1-bit) sequence number on each
// message and an acknowledgement protocol". This is the alternating-bit
// protocol: a stop-and-wait sender that retransmits the current frame until
// the matching 1-bit acknowledgement arrives, and a receiver that delivers
// a frame exactly once, in order, over a link that may lose, duplicate and
// reorder. The rest of the repository runs over netsim's already-FIFO
// channels; this package exists because the paper's model explicitly calls
// for the layer, and its tests demonstrate that the assumption is
// implementable rather than assumed.
package channel
