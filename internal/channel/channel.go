package channel

import (
	"math/rand"

	"procgroup/internal/sim"
)

// Frame is a data transmission carrying the alternating bit.
type Frame struct {
	Bit     bool
	Payload any
}

// Ack acknowledges the frame carrying Bit.
type Ack struct {
	Bit bool
}

// Timeline is the clock the channel machinery runs on, measured in
// abstract ticks: the deterministic *sim.Scheduler in tests and the
// simulator, or a real-time adapter (one tick = one millisecond) under the
// live lossy transport. Implementations must serialize all callbacks with
// each other and with the channel's methods — the alternating-bit state
// machines are single-threaded by design.
type Timeline interface {
	Now() sim.Time
	At(t sim.Time, fn func())
	After(d sim.Time, fn func())
}

// Sender is the stop-and-wait transmitter. All methods must run on the
// timeline's thread.
type Sender struct {
	sched    Timeline
	transmit func(Frame)
	rto      sim.Time

	queue    []any
	bit      bool
	inflight bool
	gen      int
}

// NewSender builds a sender that transmits frames through transmit and
// retransmits every rto ticks until acknowledged.
func NewSender(sched Timeline, rto sim.Time, transmit func(Frame)) *Sender {
	return &Sender{sched: sched, transmit: transmit, rto: rto}
}

// Send queues a payload for in-order reliable delivery.
func (s *Sender) Send(payload any) {
	s.queue = append(s.queue, payload)
	s.pump()
}

// Pending returns the number of queued-but-unacknowledged payloads.
func (s *Sender) Pending() int { return len(s.queue) }

func (s *Sender) pump() {
	if s.inflight || len(s.queue) == 0 {
		return
	}
	s.inflight = true
	s.emit(s.gen)
}

func (s *Sender) emit(gen int) {
	if gen != s.gen || !s.inflight {
		return
	}
	s.transmit(Frame{Bit: s.bit, Payload: s.queue[0]})
	s.sched.After(s.rto, func() { s.emit(gen) })
}

// Stop abandons the queue and halts retransmission: the generation bump
// invalidates every scheduled emit closure, so no further frames leave.
// Used when the channel's endpoint is torn down (peer unregistered).
func (s *Sender) Stop() {
	s.inflight = false
	s.queue = nil
	s.gen++
}

// OnAck processes an acknowledgement; a stale bit is ignored (it
// acknowledges a frame we have already advanced past).
func (s *Sender) OnAck(a Ack) {
	if !s.inflight || a.Bit != s.bit {
		return
	}
	s.inflight = false
	s.queue = s.queue[1:]
	s.bit = !s.bit
	s.gen++
	s.pump()
}

// Receiver is the delivery side: exactly-once, in-order.
type Receiver struct {
	expect  bool
	ack     func(Ack)
	deliver func(any)
}

// NewReceiver builds a receiver that sends acknowledgements through ack and
// hands deduplicated, ordered payloads to deliver.
func NewReceiver(ack func(Ack), deliver func(any)) *Receiver {
	return &Receiver{ack: ack, deliver: deliver}
}

// OnFrame processes a (possibly duplicated or stale) frame. Every frame is
// acknowledged with its own bit so a lost ack is repaired by the
// retransmission; only a frame carrying the expected bit is delivered.
func (r *Receiver) OnFrame(f Frame) {
	if f.Bit == r.expect {
		r.deliver(f.Payload)
		r.expect = !r.expect
	}
	r.ack(Ack{Bit: f.Bit})
}

// Lossy wraps a raw transmit function with loss, duplication and random
// delay, turning a perfect link into the adversarial one the protocol must
// survive. Like a physical wire — and like the link model a 1-bit sequence
// number requires — the link never reorders: delivery times are clamped
// monotone per link. (Handling reordering takes a full sliding window;
// the paper's "(1-bit) sequence number" fixes exactly the loss/duplication
// adversary.) Randomness comes from the scheduler's seeded generator, so
// runs are reproducible.
func Lossy(sched Timeline, rng *rand.Rand, loss, dup float64, minD, maxD sim.Time, deliver func(any)) func(any) {
	span := int64(maxD - minD + 1)
	var last sim.Time
	post := func(p any) {
		at := sched.Now() + minD + sim.Time(rng.Int63n(span))
		if at <= last {
			at = last + 1
		}
		last = at
		sched.At(at, func() { deliver(p) })
	}
	return func(p any) {
		if rng.Float64() < loss {
			return
		}
		post(p)
		if rng.Float64() < dup {
			post(p)
		}
	}
}

// Pair wires a bidirectional ABP channel across a lossy link and returns
// the application-level send function. Payloads handed to send come out of
// deliver exactly once, in order, despite loss/duplication/reordering.
func Pair(sched Timeline, rng *rand.Rand, loss, dup float64, minD, maxD sim.Time, rto sim.Time, deliver func(any)) (send func(any), sender *Sender) {
	var recv *Receiver
	// Forward path: frames from sender to receiver.
	frameOut := Lossy(sched, rng, loss, dup, minD, maxD, func(p any) {
		f, ok := p.(Frame)
		if !ok {
			return
		}
		recv.OnFrame(f)
	})
	s := NewSender(sched, rto, func(f Frame) { frameOut(f) })
	// Reverse path: acks from receiver to sender.
	ackOut := Lossy(sched, rng, loss, dup, minD, maxD, func(p any) {
		a, ok := p.(Ack)
		if !ok {
			return
		}
		s.OnAck(a)
	})
	recv = NewReceiver(func(a Ack) { ackOut(a) }, deliver)
	return s.Send, s
}
