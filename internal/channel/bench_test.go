package channel

import (
	"fmt"
	"testing"

	"procgroup/internal/sim"
)

// BenchmarkABPUnderLoss measures the §3 channel layer: simulated deliveries
// per second while pushing a message stream through increasing loss rates.
func BenchmarkABPUnderLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched := sim.NewScheduler(int64(i + 1))
				delivered := 0
				send, _ := Pair(sched, sched.Rand(), loss, 0.1, 1, 10, 30, func(any) {
					delivered++
				})
				const stream = 64
				sched.At(0, func() {
					for k := 0; k < stream; k++ {
						send(k)
					}
				})
				sched.Run()
				if delivered != stream {
					b.Fatalf("delivered %d of %d", delivered, stream)
				}
			}
		})
	}
}
