package channel

import (
	"testing"
	"testing/quick"

	"procgroup/internal/sim"
)

func TestPerfectLinkDeliversInOrder(t *testing.T) {
	sched := sim.NewScheduler(1)
	var got []int
	send, sender := Pair(sched, sched.Rand(), 0, 0, 1, 1, 50, func(p any) {
		got = append(got, p.(int))
	})
	sched.At(0, func() {
		for i := 0; i < 20; i++ {
			send(i)
		}
	})
	sched.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if sender.Pending() != 0 {
		t.Errorf("sender still has %d pending", sender.Pending())
	}
}

func TestSurvivesLossDuplicationReordering(t *testing.T) {
	// 30% loss, 20% duplication, delays 1..40: the
	// alternating-bit layer must still deliver exactly-once in order.
	sched := sim.NewScheduler(7)
	var got []int
	send, _ := Pair(sched, sched.Rand(), 0.30, 0.20, 1, 40, 60, func(p any) {
		got = append(got, p.(int))
	})
	const n = 120
	sched.At(0, func() {
		for i := 0; i < n; i++ {
			send(i)
		}
	})
	sched.Run()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}

func TestQuickRandomAdversary(t *testing.T) {
	f := func(seed int64, lossRaw, dupRaw uint8) bool {
		loss := float64(lossRaw%45) / 100 // up to 44% loss
		dup := float64(dupRaw%45) / 100
		sched := sim.NewScheduler(seed)
		var got []int
		send, _ := Pair(sched, sched.Rand(), loss, dup, 1, 25, 40, func(p any) {
			got = append(got, p.(int))
		})
		const n = 40
		sched.At(0, func() {
			for i := 0; i < n; i++ {
				send(i)
			}
		})
		sched.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReceiverDeduplicates(t *testing.T) {
	var got []any
	var acks []Ack
	r := NewReceiver(func(a Ack) { acks = append(acks, a) }, func(p any) { got = append(got, p) })
	f := Frame{Bit: false, Payload: "x"}
	r.OnFrame(f)
	r.OnFrame(f) // duplicate: must ack but not deliver
	if len(got) != 1 {
		t.Errorf("delivered %d times", len(got))
	}
	if len(acks) != 2 {
		t.Errorf("acked %d times, want 2 (lost-ack repair)", len(acks))
	}
}

func TestSenderIgnoresStaleAcks(t *testing.T) {
	sched := sim.NewScheduler(1)
	sent := 0
	s := NewSender(sched, 100, func(Frame) { sent++ })
	sched.At(0, func() {
		s.Send("a")
		s.OnAck(Ack{Bit: true}) // wrong bit: not ours
	})
	sched.RunUntil(50)
	if s.Pending() != 1 {
		t.Errorf("stale ack advanced the window: pending=%d", s.Pending())
	}
	sched.At(51, func() { s.OnAck(Ack{Bit: false}) })
	sched.RunUntil(60)
	if s.Pending() != 0 {
		t.Errorf("matching ack did not advance: pending=%d", s.Pending())
	}
}

func TestRetransmissionOnSilence(t *testing.T) {
	sched := sim.NewScheduler(1)
	sent := 0
	s := NewSender(sched, 10, func(Frame) { sent++ })
	sched.At(0, func() { s.Send("a") })
	sched.RunUntil(45)
	if sent < 4 { // t=0,10,20,30,40
		t.Errorf("only %d transmissions in 45 ticks with rto=10", sent)
	}
	sched.At(46, func() { s.OnAck(Ack{Bit: false}) })
	sched.RunUntil(100)
	after := sent
	sched.RunUntil(200)
	if sent != after {
		t.Error("retransmissions continued after the ack")
	}
}

func TestSenderStopHaltsRetransmission(t *testing.T) {
	// A stopped sender (its endpoint torn down) must abandon its queue
	// and never transmit again, even with retransmission timers pending.
	sched := sim.NewScheduler(1)
	transmitted := 0
	s := NewSender(sched, 10, func(Frame) { transmitted++ })
	sched.At(0, func() {
		s.Send(1)
		s.Send(2)
	})
	sched.At(25, func() { s.Stop() }) // after ~3 transmissions of frame 1
	sched.RunUntil(500)
	if s.Pending() != 0 {
		t.Errorf("stopped sender still has %d pending", s.Pending())
	}
	atStop := transmitted
	sched.RunUntil(1000)
	if transmitted != atStop {
		t.Errorf("sender transmitted %d frames after Stop", transmitted-atStop)
	}
	// Frame 2 must never have left: only frame-1 retransmissions ran.
	if transmitted == 0 || transmitted > 4 {
		t.Errorf("transmitted %d frames before Stop, want 1-4 retries of the first", transmitted)
	}
}
