package member

import (
	"errors"
	"fmt"
	"strings"

	"procgroup/internal/ids"
)

// Version is the ordinal of a local or system view: Memb⁰ has Version 0,
// installing one update produces Version 1, and so on. The paper's ver(p).
type Version int

// OpKind says whether an update adds or removes a process (§7 extends the
// exclusion-only protocol with 'add').
type OpKind uint8

// Enum of operation kinds; starts at 1 so the zero value is invalid.
const (
	// OpRemove excludes a process from the view.
	OpRemove OpKind = iota + 1
	// OpAdd joins a process to the view (lowest seniority).
	OpAdd
)

// String returns the paper's spelling of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRemove:
		return "remove"
	case OpAdd:
		return "add"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a single membership update, the paper's op(proc-id).
// The zero Op is the nil operation (nil-id): "no further change planned".
type Op struct {
	Kind   OpKind
	Target ids.ProcID
}

// NilOp is the "no pending operation" marker (the paper's nil-id).
var NilOp = Op{}

// IsNil reports whether the operation is the nil-id marker.
func (o Op) IsNil() bool { return o == NilOp }

// Remove builds a removal operation.
func Remove(target ids.ProcID) Op { return Op{Kind: OpRemove, Target: target} }

// Add builds a join operation.
func Add(target ids.ProcID) Op { return Op{Kind: OpAdd, Target: target} }

// String renders the op as the paper writes it, e.g. "remove(p3)".
func (o Op) String() string {
	if o.IsNil() {
		return "nil-id"
	}
	return o.Kind.String() + "(" + o.Target.String() + ")"
}

// Seq is the sequence of operations a process has committed, the paper's
// seq(p). Two processes with equal Seq have identical local views
// (Theorem 5.1); the reconfiguration Phase-I responses carry it so the
// initiator can compute the catch-up list RL_r = seq(L) − seq(r).
type Seq []Op

// Clone returns an independent copy.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Equal reports element-wise equality.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether s is a (possibly equal) prefix of t.
func (s Seq) IsPrefixOf(t Seq) bool {
	if len(s) > len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Minus returns the suffix of s that extends the shorter sequence t.
// It is the paper's seq(L) − seq(r) (procedure Determine, line D.0) and
// requires t to be a prefix of s.
func (s Seq) Minus(t Seq) (Seq, error) {
	if !t.IsPrefixOf(s) {
		return nil, fmt.Errorf("member: %v is not a prefix of %v", t, s)
	}
	return s[len(t):].Clone(), nil
}

// String renders the sequence, e.g. "[remove(p2) add(p5)]".
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Triple is an entry of next(p): process p expects coordinator Coord to
// commit operation Op, resulting in view version Ver (§4.4). The wildcard
// entry (? : r : ?) recorded when answering an interrogation has
// Wildcard == true, in which case Op and Ver are meaningless.
type Triple struct {
	Op       Op
	Coord    ids.ProcID
	Ver      Version
	Wildcard bool
}

// WildcardFor builds the (? : r : ?) triple appended when a process
// responds to recv(r, p, Interrogate).
func WildcardFor(coord ids.ProcID) Triple {
	return Triple{Coord: coord, Wildcard: true}
}

// String renders the triple in the paper's (op : coord : ver) notation.
func (t Triple) String() string {
	if t.Wildcard {
		return "(? : " + t.Coord.String() + " : ?)"
	}
	return fmt.Sprintf("(%s : %s : %d)", t.Op, t.Coord, t.Ver)
}

// Next is the expectation list next(p) described in §4.4. It is kept short:
// a quiescent process has an empty list or the single contingent entry from
// the last commit; answering an interrogation appends a wildcard; a proposal
// replaces the list outright.
type Next []Triple

// Clone returns an independent copy.
func (n Next) Clone() Next {
	if n == nil {
		return nil
	}
	out := make(Next, len(n))
	copy(out, n)
	return out
}

// MaxVer returns the largest concrete version among the entries, or -1 if
// there is none. Prop. 5.3 proves max_{π∈next(q)} 3rd(π) = ver(q)+1 for
// non-faulty q.
func (n Next) MaxVer() Version {
	max := Version(-1)
	for _, t := range n {
		if !t.Wildcard && t.Ver > max {
			max = t.Ver
		}
	}
	return max
}

// String renders the list.
func (n Next) String() string {
	parts := make([]string, len(n))
	for i, t := range n {
		parts[i] = t.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Errors returned by View operations.
var (
	ErrNotMember     = errors.New("member: process not in view")
	ErrAlreadyMember = errors.New("member: process already in view")
	ErrNilTarget     = errors.New("member: operation targets nil-id")
)

// View is a local membership view Memb(p): an ordered list of processes in
// decreasing seniority. The first element is the most senior member and is
// the coordinator Mgr; rank(p) = |view| − index(p), so rank(Mgr) = |view|
// and the least senior member has rank 1 (§4.2). Joins append at the end
// (lowest seniority), which keeps relative ranks stable (§4.2: "while p and
// q are in the same system views, their ranking relative to each other will
// not change").
type View struct {
	ver     Version
	members []ids.ProcID
	index   map[ids.ProcID]int
}

// NewView builds the version-0 view over the given processes in seniority
// order. The slice is copied (do not share).
func NewView(members []ids.ProcID) *View { return NewViewAt(members, 0) }

// NewViewAt builds a view at an explicit version; joiners install the view
// a StateTransfer hands them at its recorded version.
func NewViewAt(members []ids.ProcID, ver Version) *View {
	v := &View{
		ver:     ver,
		members: make([]ids.ProcID, len(members)),
		index:   make(map[ids.ProcID]int, len(members)),
	}
	copy(v.members, members)
	for i, m := range v.members {
		v.index[m] = i
	}
	return v
}

// Clone returns a deep copy of the view.
func (v *View) Clone() *View {
	c := &View{
		ver:     v.ver,
		members: make([]ids.ProcID, len(v.members)),
		index:   make(map[ids.ProcID]int, len(v.index)),
	}
	copy(c.members, v.members)
	for i, m := range c.members {
		c.index[m] = i
	}
	return c
}

// Version returns ver(p), the number of updates applied so far.
func (v *View) Version() Version { return v.ver }

// Size returns the number of members.
func (v *View) Size() int { return len(v.members) }

// Members returns the members in seniority order (most senior first).
// The returned slice is a copy.
func (v *View) Members() []ids.ProcID {
	out := make([]ids.ProcID, len(v.members))
	copy(out, v.members)
	return out
}

// Has reports whether p is a member.
func (v *View) Has(p ids.ProcID) bool {
	_, ok := v.index[p]
	return ok
}

// Mgr returns the coordinator: the most senior member. Calling Mgr on an
// empty view returns ids.Nil.
func (v *View) Mgr() ids.ProcID {
	if len(v.members) == 0 {
		return ids.Nil
	}
	return v.members[0]
}

// Rank returns the paper's rank(p) within this view: |view| for the most
// senior member (Mgr), 1 for the least senior. Rank of a non-member is 0
// ("the rank of an excluded process is undefined").
func (v *View) Rank(p ids.ProcID) int {
	i, ok := v.index[p]
	if !ok {
		return 0
	}
	return len(v.members) - i
}

// HigherRanked returns the members strictly outranking p, in seniority
// order. It is the commonly-known universe from which HiFaulty(p) draws.
func (v *View) HigherRanked(p ids.ProcID) []ids.ProcID {
	i, ok := v.index[p]
	if !ok {
		return nil
	}
	out := make([]ids.ProcID, i)
	copy(out, v.members[:i])
	return out
}

// Majority returns the size of a majority subset: ⌊n/2⌋ + 1 (the paper's
// µ_{r,c}).
func (v *View) Majority() int { return Majority(len(v.members)) }

// Apply mutates the view with one operation and bumps the version.
// Removal preserves the relative order of the survivors (everyone
// lower-ranked moves up one rank, §4.2); addition appends at lowest
// seniority.
func (v *View) Apply(op Op) error {
	if op.IsNil() || op.Target.IsNil() {
		return ErrNilTarget
	}
	switch op.Kind {
	case OpRemove:
		i, ok := v.index[op.Target]
		if !ok {
			return fmt.Errorf("%w: remove %v from %v", ErrNotMember, op.Target, v)
		}
		v.members = append(v.members[:i], v.members[i+1:]...)
		delete(v.index, op.Target)
		for j := i; j < len(v.members); j++ {
			v.index[v.members[j]] = j
		}
	case OpAdd:
		if v.Has(op.Target) {
			return fmt.Errorf("%w: add %v to %v", ErrAlreadyMember, op.Target, v)
		}
		v.index[op.Target] = len(v.members)
		v.members = append(v.members, op.Target)
	default:
		return fmt.Errorf("member: unknown op kind %v", op.Kind)
	}
	v.ver++
	return nil
}

// ApplyAll applies the operations in order, stopping at the first error.
func (v *View) ApplyAll(ops Seq) error {
	for _, op := range ops {
		if err := v.Apply(op); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two views have the same version and membership
// (including seniority order).
func (v *View) Equal(w *View) bool {
	if v.ver != w.ver || len(v.members) != len(w.members) {
		return false
	}
	for i := range v.members {
		if v.members[i] != w.members[i] {
			return false
		}
	}
	return true
}

// SameMembers reports membership equality ignoring version numbers.
func (v *View) SameMembers(w *View) bool {
	if len(v.members) != len(w.members) {
		return false
	}
	for i := range v.members {
		if v.members[i] != w.members[i] {
			return false
		}
	}
	return true
}

// String renders the view as "v3⟨p1 p2 p4⟩".
func (v *View) String() string {
	parts := make([]string, len(v.members))
	for i, m := range v.members {
		parts[i] = m.String()
	}
	return fmt.Sprintf("v%d⟨%s⟩", v.ver, strings.Join(parts, " "))
}

// Majority returns ⌊n/2⌋ + 1, the cardinality µ(S) of a majority subset of
// an n-element set (§7).
func Majority(n int) int { return n/2 + 1 }

// MajoritiesIntersect reports whether majority subsets of two sets of the
// given sizes must intersect when the larger contains the smaller plus one
// element. Prop. 7.1 proves µ(S) + µ(S′) > |S′| whenever |S′| = |S|+1,
// which is the fact that makes one-process-at-a-time view changes safe.
func MajoritiesIntersect(small, large int) bool {
	return Majority(small)+Majority(large) > large
}
