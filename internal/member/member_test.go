package member

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"procgroup/internal/ids"
)

func view(names ...string) *View {
	procs := make([]ids.ProcID, len(names))
	for i, n := range names {
		procs[i] = ids.Named(n)
	}
	return NewView(procs)
}

func TestRankSemantics(t *testing.T) {
	v := view("p1", "p2", "p3", "p4")
	// rank(Mgr) = |view|, lowest-ranked member has rank 1 (§4.2).
	if got := v.Rank(ids.Named("p1")); got != 4 {
		t.Errorf("rank(p1) = %d, want 4", got)
	}
	if got := v.Rank(ids.Named("p4")); got != 1 {
		t.Errorf("rank(p4) = %d, want 1", got)
	}
	if got := v.Rank(ids.Named("px")); got != 0 {
		t.Errorf("rank of non-member = %d, want 0 (undefined)", got)
	}
	if v.Mgr() != ids.Named("p1") {
		t.Errorf("Mgr = %v, want p1", v.Mgr())
	}
}

func TestRemovePromotesLowerSeniorities(t *testing.T) {
	// §4.2's rank invariants: rank(Mgr) = |view|, the lowest-ranked member
	// has rank 1, and removal moves every process that was below the
	// removed one up one seniority position (its distance from the top
	// shrinks by one) while preserving relative order.
	v := view("p1", "p2", "p3", "p4")
	distFromTop := func(p ids.ProcID) int { return v.Size() - v.Rank(p) }
	d3, d4 := distFromTop(ids.Named("p3")), distFromTop(ids.Named("p4"))
	if err := v.Apply(Remove(ids.Named("p2"))); err != nil {
		t.Fatal(err)
	}
	if got := distFromTop(ids.Named("p3")); got != d3-1 {
		t.Errorf("p3 distance from top = %d, want %d", got, d3-1)
	}
	if got := distFromTop(ids.Named("p4")); got != d4-1 {
		t.Errorf("p4 distance from top = %d, want %d", got, d4-1)
	}
	// rank(Mgr) tracks the shrunken view size.
	if got := v.Rank(v.Mgr()); got != v.Size() {
		t.Errorf("rank(Mgr) = %d, want |view| = %d", got, v.Size())
	}
	if got := v.Rank(ids.Named("p4")); got != 1 {
		t.Errorf("rank(lowest) = %d, want 1", got)
	}
	if v.Version() != 1 {
		t.Errorf("Version = %d, want 1", v.Version())
	}
}

func TestRemoveMgrPromotesNext(t *testing.T) {
	v := view("p1", "p2", "p3")
	if err := v.Apply(Remove(ids.Named("p1"))); err != nil {
		t.Fatal(err)
	}
	if v.Mgr() != ids.Named("p2") {
		t.Errorf("Mgr after removing p1 = %v, want p2", v.Mgr())
	}
}

func TestAddAppendsAtLowestSeniority(t *testing.T) {
	v := view("p1", "p2")
	if err := v.Apply(Add(ids.Named("p9"))); err != nil {
		t.Fatal(err)
	}
	if got := v.Rank(ids.Named("p9")); got != 1 {
		t.Errorf("rank(joiner) = %d, want 1", got)
	}
	if v.Mgr() != ids.Named("p1") {
		t.Errorf("Mgr changed on join: %v", v.Mgr())
	}
}

func TestApplyErrors(t *testing.T) {
	v := view("p1", "p2")
	if err := v.Apply(Remove(ids.Named("px"))); !errors.Is(err, ErrNotMember) {
		t.Errorf("remove non-member: err = %v, want ErrNotMember", err)
	}
	if err := v.Apply(Add(ids.Named("p1"))); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("add member: err = %v, want ErrAlreadyMember", err)
	}
	if err := v.Apply(NilOp); !errors.Is(err, ErrNilTarget) {
		t.Errorf("apply nil op: err = %v, want ErrNilTarget", err)
	}
	if v.Version() != 0 {
		t.Errorf("failed ops must not bump version; Version = %d", v.Version())
	}
}

func TestHigherRanked(t *testing.T) {
	v := view("p1", "p2", "p3", "p4")
	got := v.HigherRanked(ids.Named("p3"))
	want := []ids.ProcID{ids.Named("p1"), ids.Named("p2")}
	if len(got) != len(want) {
		t.Fatalf("HigherRanked(p3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HigherRanked(p3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if hr := v.HigherRanked(ids.Named("p1")); len(hr) != 0 {
		t.Errorf("HigherRanked(Mgr) = %v, want empty", hr)
	}
}

func TestRelativeRankStableAcrossChanges(t *testing.T) {
	// §4.2: while p and q are in the same system views, their relative
	// ranking never changes. Exercise across a random op schedule.
	v := view("p1", "p2", "p3", "p4", "p5", "p6")
	rng := rand.New(rand.NewSource(7))
	joinN := 0
	for step := 0; step < 100; step++ {
		m := v.Members()
		// Check pairwise order consistency with seniority list.
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if v.Rank(m[i]) <= v.Rank(m[j]) {
					t.Fatalf("seniority order violated: rank(%v)=%d <= rank(%v)=%d",
						m[i], v.Rank(m[i]), m[j], v.Rank(m[j]))
				}
			}
		}
		if v.Size() > 2 && rng.Intn(2) == 0 {
			victim := m[1+rng.Intn(len(m)-1)]
			if err := v.Apply(Remove(victim)); err != nil {
				t.Fatal(err)
			}
		} else {
			joinN++
			if err := v.Apply(Add(ids.ProcID{Site: "j", Incarnation: uint32(joinN)})); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSeqMinus(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	s := Seq{Remove(a), Remove(b)}
	tail, err := s.Minus(Seq{Remove(a)})
	if err != nil {
		t.Fatal(err)
	}
	if !tail.Equal(Seq{Remove(b)}) {
		t.Errorf("Minus = %v", tail)
	}
	if _, err := s.Minus(Seq{Remove(b)}); err == nil {
		t.Error("Minus with non-prefix should fail")
	}
	if !(Seq{}).IsPrefixOf(s) {
		t.Error("empty seq must prefix everything")
	}
}

func TestSeqCloneIndependent(t *testing.T) {
	s := Seq{Remove(ids.Named("a"))}
	c := s.Clone()
	c[0] = Remove(ids.Named("b"))
	if s[0] != Remove(ids.Named("a")) {
		t.Error("clone aliased original")
	}
	if Seq(nil).Clone() != nil {
		t.Error("nil clone should stay nil")
	}
}

func TestNextMaxVer(t *testing.T) {
	n := Next{
		{Op: Remove(ids.Named("a")), Coord: ids.Named("m"), Ver: 3},
		WildcardFor(ids.Named("r")),
		{Op: Remove(ids.Named("b")), Coord: ids.Named("r"), Ver: 5},
	}
	if got := n.MaxVer(); got != 5 {
		t.Errorf("MaxVer = %d, want 5", got)
	}
	if got := (Next{WildcardFor(ids.Named("r"))}).MaxVer(); got != -1 {
		t.Errorf("MaxVer of all-wildcard = %d, want -1", got)
	}
}

func TestMajorityFacts(t *testing.T) {
	// Fact 7.1: |S| even ⇒ 2µ(S) = |S| + 2.
	// Fact 7.2: |S| odd  ⇒ 2µ(S) = |S| + 1.
	for n := 1; n <= 200; n++ {
		mu := Majority(n)
		if n%2 == 0 && 2*mu != n+2 {
			t.Errorf("Fact 7.1 fails at n=%d: 2µ=%d", n, 2*mu)
		}
		if n%2 == 1 && 2*mu != n+1 {
			t.Errorf("Fact 7.2 fails at n=%d: 2µ=%d", n, 2*mu)
		}
	}
}

func TestProposition71MajoritiesIntersect(t *testing.T) {
	// Prop. 7.1: |S′| = |S|+1 ⇒ µ(S) + µ(S′) > |S′|. This is the law that
	// makes one-at-a-time view changes safe.
	for n := 1; n <= 500; n++ {
		if !MajoritiesIntersect(n, n+1) {
			t.Errorf("Prop 7.1 fails at |S|=%d", n)
		}
	}
}

func TestMajoritiesIntersectQuick(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%1000) + 1
		return MajoritiesIntersect(n, n+1) && MajoritiesIntersect(n, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewEqualAndClone(t *testing.T) {
	v := view("p1", "p2", "p3")
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not Equal")
	}
	if err := c.Apply(Remove(ids.Named("p3"))); err != nil {
		t.Fatal(err)
	}
	if v.Equal(c) {
		t.Error("Equal after divergence")
	}
	if v.Size() != 3 {
		t.Error("mutating clone affected original")
	}
	// SameMembers ignores version.
	d := view("p1", "p2", "p3")
	if err := d.Apply(Remove(ids.Named("p3"))); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(Add(ids.Named("p3"))); err != nil {
		t.Fatal(err)
	}
	if d.Equal(v) {
		t.Error("versions differ; Equal must be false")
	}
	if !d.SameMembers(v) {
		t.Error("SameMembers should hold")
	}
}

func TestApplyAll(t *testing.T) {
	v := view("p1", "p2", "p3")
	ops := Seq{Remove(ids.Named("p3")), Add(ids.Named("p4"))}
	if err := v.ApplyAll(ops); err != nil {
		t.Fatal(err)
	}
	if v.Version() != 2 || !v.Has(ids.Named("p4")) || v.Has(ids.Named("p3")) {
		t.Errorf("unexpected view %v", v)
	}
	if err := v.ApplyAll(Seq{Remove(ids.Named("zz"))}); err == nil {
		t.Error("ApplyAll should surface op errors")
	}
}

func TestStringForms(t *testing.T) {
	v := view("p1", "p2")
	if v.String() != "v0⟨p1 p2⟩" {
		t.Errorf("View.String = %q", v.String())
	}
	if Remove(ids.Named("p2")).String() != "remove(p2)" {
		t.Errorf("Op.String = %q", Remove(ids.Named("p2")).String())
	}
	if NilOp.String() != "nil-id" {
		t.Errorf("NilOp.String = %q", NilOp.String())
	}
	tr := Triple{Op: Add(ids.Named("p9")), Coord: ids.Named("p1"), Ver: 7}
	if tr.String() != "(add(p9) : p1 : 7)" {
		t.Errorf("Triple.String = %q", tr.String())
	}
	if WildcardFor(ids.Named("r")).String() != "(? : r : ?)" {
		t.Errorf("wildcard String = %q", WildcardFor(ids.Named("r")).String())
	}
}

func TestSeqReplayReconstructsView(t *testing.T) {
	// Property: replaying seq(p) over the initial view always reproduces
	// Memb(p) — the invariant Theorem 5.1 leans on when Phase-I responses
	// carry sequences instead of views.
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		initial := []ids.ProcID{ids.Named("p1"), ids.Named("p2"), ids.Named("p3"), ids.Named("p4")}
		v := NewView(initial)
		var seq Seq
		join := 0
		for s := 0; s < int(steps%48); s++ {
			var op Op
			if v.Size() > 1 && rng.Intn(2) == 0 {
				m := v.Members()
				op = Remove(m[rng.Intn(len(m))])
			} else {
				join++
				op = Add(ids.ProcID{Site: "r", Incarnation: uint32(join)})
			}
			if v.Apply(op) != nil {
				continue
			}
			seq = append(seq, op)
		}
		replay := NewView(initial)
		if replay.ApplyAll(seq) != nil {
			return false
		}
		return replay.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSeqPrefixLaws(t *testing.T) {
	// Property: for random sequences, s.Minus(prefix) re-concatenates to
	// s, and IsPrefixOf is a partial order compatible with length.
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Seq
		for i := 0; i < 20; i++ {
			s = append(s, Remove(ids.ProcID{Site: "x", Incarnation: uint32(rng.Intn(1000))}))
		}
		k := int(cut) % (len(s) + 1)
		prefix := s[:k].Clone()
		if !prefix.IsPrefixOf(s) {
			return false
		}
		tail, err := s.Minus(prefix)
		if err != nil {
			return false
		}
		whole := append(prefix.Clone(), tail...)
		return whole.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestViewApplyQuickNeverCorrupts(t *testing.T) {
	// Property: after any sequence of valid ops, the index map and the
	// member slice agree and version equals the op count.
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := view("p1", "p2", "p3", "p4")
		applied := 0
		join := 0
		for s := 0; s < int(steps%64); s++ {
			if v.Size() > 1 && rng.Intn(2) == 0 {
				m := v.Members()
				if v.Apply(Remove(m[rng.Intn(len(m))])) == nil {
					applied++
				}
			} else {
				join++
				if v.Apply(Add(ids.ProcID{Site: "q", Incarnation: uint32(join)})) == nil {
					applied++
				}
			}
			for i, m := range v.Members() {
				if v.Rank(m) != v.Size()-i {
					return false
				}
			}
		}
		return int(v.Version()) == applied
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
