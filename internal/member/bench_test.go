package member

import (
	"testing"

	"procgroup/internal/ids"
)

func BenchmarkViewApplyRemove(b *testing.B) {
	procs := ids.Gen(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := NewView(procs)
		for _, p := range procs[1:] {
			if err := v.Apply(Remove(p)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkViewRank(b *testing.B) {
	v := NewView(ids.Gen(128))
	target := ids.Named("p64")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v.Rank(target) == 0 {
			b.Fatal("member lost")
		}
	}
}

func BenchmarkSeqMinus(b *testing.B) {
	procs := ids.Gen(256)
	var s Seq
	for _, p := range procs {
		s = append(s, Remove(p))
	}
	prefix := s[:255]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Minus(prefix); err != nil {
			b.Fatal(err)
		}
	}
}
