// Package member implements the membership bookkeeping of the paper:
// local views Memb(p) with seniority ranks (§4.2), view versions ver(p),
// committed-operation sequences seq(p) (§4.4), expectation triples next(p)
// (§4.4), and the majority arithmetic of §7 (Facts 7.1–7.3, Prop. 7.1).
package member
