package broadcast

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// timerNode is a fakeNode whose After timers are captured and fired by
// the test — the clock the coalescing windows run on.
type timerNode struct {
	fakeNode
	timers []*fakeTimer
}

type fakeTimer struct {
	d    time.Duration
	fn   func()
	dead bool
}

func (n *timerNode) After(d time.Duration, fn func()) func() {
	t := &fakeTimer{d: d, fn: fn}
	n.timers = append(n.timers, t)
	return func() { t.dead = true }
}

// fire runs every pending timer once (timers armed during firing wait for
// the next call) and reports how many ran.
func (n *timerNode) fire() int {
	pending := n.timers
	n.timers = nil
	ran := 0
	for _, t := range pending {
		if !t.dead {
			t.fn()
			ran++
		}
	}
	return ran
}

// syncAsMember drives b (a non-sequencer) through install + ViewSync so
// the view's order is open. Returns the sequencer's id.
func syncAsMember(b *Broadcaster, n interface{ takeSent() []fakeSend }, ver uint64) ids.ProcID {
	seq := proc("p1")
	b.HandleInstall(member.Version(ver), []ids.ProcID{seq, b.self})
	b.HandleApp(seq, ViewSync{Ver: ver, HasSnap: true})
	n.takeSent()
	return seq
}

func countAcks(sent []fakeSend) (acks int, last uint64) {
	for _, s := range sent {
		if a, ok := s.payload.(AckSeq); ok {
			acks++
			last = a.Seq
		}
	}
	return
}

// TestAckCoalescing pins the ack-storm fix: with AckConfig{Every: B,
// Delay: T}, a member sends at most one cumulative AckSeq per window of B
// delivered entries, and the delay timer flushes a partial window — never
// more than one ack per (B entries | T) window.
func TestAckCoalescing(t *testing.T) {
	fn := &timerNode{fakeNode: fakeNode{id: proc("p2")}}
	b := New(fn, Config{Ack: AckConfig{Every: 4, Delay: 5 * time.Millisecond}})
	seq := syncAsMember(b, fn, 0)
	px := proc("p9")

	// Three deliveries: under the count cap, all suppressed behind the timer.
	for i := uint64(1); i <= 3; i++ {
		b.HandleApp(seq, Seqd(entry(0, i, px, i)))
	}
	if acks, _ := countAcks(fn.takeSent()); acks != 0 {
		t.Fatalf("sent %d acks inside a 3-entry window, want 0 (coalesced)", acks)
	}
	if got := b.stats.AcksSuppressed.Load(); got != 3 {
		t.Fatalf("AcksSuppressed = %d, want 3", got)
	}

	// The 4th delivery completes the window: exactly one cumulative ack.
	b.HandleApp(seq, Seqd(entry(0, 4, px, 4)))
	if acks, last := countAcks(fn.takeSent()); acks != 1 || last != 4 {
		t.Fatalf("window of 4 sent %d acks (last seq %d), want exactly 1 covering 4", acks, last)
	}

	// The completed window's timer was cancelled: firing it sends nothing.
	fn.fire()
	if acks, _ := countAcks(fn.takeSent()); acks != 0 {
		t.Fatalf("cancelled ack timer still sent %d acks", acks)
	}

	// A partial window flushes on the timer — one ack, cumulative.
	b.HandleApp(seq, Seqd(entry(0, 5, px, 5)))
	b.HandleApp(seq, Seqd(entry(0, 6, px, 6)))
	if acks, _ := countAcks(fn.takeSent()); acks != 0 {
		t.Fatal("partial window acked before its timer")
	}
	fn.fire()
	if acks, last := countAcks(fn.takeSent()); acks != 1 || last != 6 {
		t.Fatalf("timer flush sent %d acks (last seq %d), want exactly 1 covering 6", acks, last)
	}
	// An empty window's timer sends nothing.
	fn.fire()
	if acks, _ := countAcks(fn.takeSent()); acks != 0 {
		t.Fatal("ack sent with nothing pending")
	}
}

// pubBatches filters a send capture down to its PubBatch frames.
func pubBatches(sent []fakeSend) []PubBatch {
	var out []PubBatch
	for _, s := range sent {
		if pb, ok := s.payload.(PubBatch); ok {
			out = append(out, pb)
		}
	}
	return out
}

// TestGroupCommitOriginBatching pins the pipeline-paced flush discipline:
// an idle origin ships a proposal immediately (no batching latency on a
// quiet group), proposals arriving while a batch is in flight accumulate
// and leave as ONE PubBatch when the pipeline drains, the entry cap
// flushes early, and the timer is only a fallback — never individual Pubs.
func TestGroupCommitOriginBatching(t *testing.T) {
	fn := &timerNode{fakeNode: fakeNode{id: proc("p2")}}
	b := New(fn, Config{Batch: BatchConfig{MaxEntries: 4, MaxDelay: time.Millisecond}})
	seq := syncAsMember(b, fn, 0)

	// Idle pipeline: the first proposal leaves at once, a batch of one.
	b.Propose([]byte{0}, nil)
	sent := fn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("idle-pipeline proposal sent %d frames, want 1 PubBatch", len(sent))
	}
	pb, ok := sent[0].payload.(PubBatch)
	if !ok || sent[0].to != seq {
		t.Fatalf("idle flush sent %T to %v, want PubBatch to the sequencer", sent[0].payload, sent[0].to)
	}
	if len(pb.Pubs) != 1 || pb.Pubs[0].PubID != 1 || pb.Origin != b.self {
		t.Fatalf("idle-pipeline PubBatch = %+v, want pub 1 from self", pb)
	}

	// While that batch is in flight, new proposals accumulate silently.
	for i := 1; i < 4; i++ {
		b.Propose([]byte{byte(i)}, nil)
	}
	if got := pubBatches(fn.takeSent()); len(got) != 0 {
		t.Fatalf("proposals escaped a busy pipeline: %v", got)
	}

	// The in-flight pub's slot coming home drains the pipeline: the
	// accumulation leaves as one PubBatch in PubID order.
	b.HandleApp(seq, SeqdBatch{Ver: 0, FirstSeq: 1,
		Entries: []SeqdItem{{Origin: b.self, PubID: 1, Body: []byte{0}}}})
	got := pubBatches(fn.takeSent())
	if len(got) != 1 {
		t.Fatalf("pipeline drain sent %d PubBatches, want 1", len(got))
	}
	if len(got[0].Pubs) != 3 {
		t.Fatalf("drained PubBatch carries %d pubs, want 3", len(got[0].Pubs))
	}
	for i, it := range got[0].Pubs {
		if it.PubID != uint64(i+2) {
			t.Fatalf("batch item %d has PubID %d, want %d (PubID order)", i, it.PubID, i+2)
		}
	}

	// Hitting the entry cap flushes immediately, busy pipeline or not.
	for i := 0; i < 4; i++ {
		b.Propose([]byte{byte(i)}, nil)
	}
	got = pubBatches(fn.takeSent())
	if len(got) != 1 || len(got[0].Pubs) != 4 {
		t.Fatalf("cap-triggered flush = %v, want one PubBatch of 4", got)
	}

	// A sub-cap straggler behind a busy pipeline waits for the fallback
	// timer — and leaves as a batch, not a Pub.
	b.Propose([]byte{9}, nil)
	if got := pubBatches(fn.takeSent()); len(got) != 0 {
		t.Fatalf("straggler escaped before the fallback timer: %v", got)
	}
	fn.fire() // MaxDelay
	got = pubBatches(fn.takeSent())
	if len(got) != 1 || len(got[0].Pubs) != 1 {
		t.Fatalf("timer flush = %v, want one PubBatch of 1", got)
	}
	if stats := b.stats.PubBatches.Load(); stats != 4 {
		t.Fatalf("PubBatches = %d, want 4", stats)
	}
}

// syncAsSequencer drives b (the view's coordinator) through install and
// the flush barrier with one other member, so it is the open sequencer.
func syncAsSequencer(t *testing.T, b *Broadcaster, n interface{ takeSent() []fakeSend }, ver uint64, other ids.ProcID) {
	t.Helper()
	b.HandleInstall(member.Version(ver), []ids.ProcID{b.self, other})
	b.HandleApp(other, Flush{Ver: ver, Joining: true})
	for _, s := range n.takeSent() {
		if _, ok := s.payload.(ViewSync); ok {
			return
		}
	}
	t.Fatal("sequencer did not fan out ViewSync after the flush barrier")
}

// TestGroupCommitSequencerRangesAndPiggyback: the sequencer assigns one
// contiguous slot range per incoming batch, fans it out as a single
// SeqdBatch, and carries the stability frontier on the next batch instead
// of a separate Stable broadcast (with the timer as liveness fallback).
func TestGroupCommitSequencerRangesAndPiggyback(t *testing.T) {
	fn := &timerNode{fakeNode: fakeNode{id: proc("p1")}}
	b := New(fn, Config{Batch: BatchConfig{MaxEntries: 8, MaxDelay: time.Millisecond}})
	p2 := proc("p2")
	syncAsSequencer(t, b, fn, 0, p2)

	items := []PubItem{{PubID: 1, Body: []byte("a")}, {PubID: 2, Body: []byte("b")}, {PubID: 3, Body: []byte("c")}}
	b.HandleApp(p2, PubBatch{Origin: p2, Pubs: items})
	sent := fn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("sequencing a batch sent %d frames, want 1 SeqdBatch", len(sent))
	}
	sb := sent[0].payload.(SeqdBatch)
	if sb.FirstSeq != 1 || len(sb.Entries) != 3 || sb.Stable != 0 {
		t.Fatalf("SeqdBatch = %+v, want contiguous range [1,4) with stable 0", sb)
	}

	// p2 acks the range; the frontier advances but no Stable frame goes
	// out — it is marked for piggyback on the next SeqdBatch.
	b.HandleApp(p2, AckSeq{Ver: 0, Seq: 3})
	if sent := fn.takeSent(); len(sent) != 0 {
		t.Fatalf("frontier advance broadcast %v immediately; batching must piggyback", sent)
	}
	if b.stable != 3 {
		t.Fatalf("sequencer stable = %d, want 3", b.stable)
	}

	b.HandleApp(p2, PubBatch{Origin: p2, Pubs: []PubItem{{PubID: 4, Body: []byte("d")}}})
	sent = fn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("second batch sent %d frames, want 1", len(sent))
	}
	sb = sent[0].payload.(SeqdBatch)
	if sb.FirstSeq != 4 || sb.Stable != 3 {
		t.Fatalf("second SeqdBatch = %+v, want FirstSeq 4 carrying stable 3", sb)
	}
	if got := b.stats.StablePiggybacked.Load(); got != 1 {
		t.Fatalf("StablePiggybacked = %d, want 1", got)
	}

	// With no follow-up batch, the fallback timer broadcasts Stable alone.
	b.HandleApp(p2, AckSeq{Ver: 0, Seq: 4})
	if sent := fn.takeSent(); len(sent) != 0 {
		t.Fatal("stable broadcast before the fallback timer")
	}
	fn.fire()
	sent = fn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("fallback fired %d frames, want 1 Stable", len(sent))
	}
	if st := sent[0].payload.(Stable); st.Seq != 4 {
		t.Fatalf("fallback Stable.Seq = %d, want 4", st.Seq)
	}
	// Duplicate sequencing protection across batches: re-sending the
	// first batch (a resubmission race) sequences nothing.
	before := b.stats.Sequenced.Load()
	b.HandleApp(p2, PubBatch{Origin: p2, Pubs: items})
	if got := b.stats.Sequenced.Load(); got != before {
		t.Fatalf("duplicate batch re-sequenced %d entries", got-before)
	}
}

// TestBatchCapOneIsLegacyWire pins the degenerate case: MaxEntries ≤ 1
// keeps the exact unbatched vocabulary — individual Pub and Seqd frames,
// an AckSeq per delivery, standalone Stable broadcasts, and no batch
// frames or coalescing timers anywhere.
func TestBatchCapOneIsLegacyWire(t *testing.T) {
	// Origin side: each proposal leaves immediately as its own Pub.
	fn := &timerNode{fakeNode: fakeNode{id: proc("p2")}}
	b := New(fn, Config{Batch: BatchConfig{MaxEntries: 1}})
	seq := syncAsMember(b, fn, 0)
	for i := 0; i < 3; i++ {
		b.Propose([]byte{byte(i)}, nil)
	}
	sent := fn.takeSent()
	if len(sent) != 3 {
		t.Fatalf("3 proposals sent %d frames, want 3 individual Pubs", len(sent))
	}
	for i, s := range sent {
		if p, ok := s.payload.(Pub); !ok || p.PubID != uint64(i+1) {
			t.Fatalf("frame %d = %+v, want Pub %d", i, s.payload, i+1)
		}
	}
	// Delivery side: one AckSeq per Seqd, immediately.
	px := proc("p9")
	b.HandleApp(seq, Seqd(entry(0, 1, px, 1)))
	b.HandleApp(seq, Seqd(entry(0, 2, px, 2)))
	if acks, last := countAcks(fn.takeSent()); acks != 2 || last != 2 {
		t.Fatalf("2 deliveries sent %d acks (last %d), want one per entry", acks, last)
	}
	if len(fn.timers) != 0 {
		t.Fatalf("legacy path armed %d timers", len(fn.timers))
	}

	// Sequencer side: Pub in → Seqd out, Stable broadcast on ack.
	sn := &timerNode{fakeNode: fakeNode{id: proc("p1")}}
	sq := New(sn, Config{Batch: BatchConfig{MaxEntries: 1}})
	p2 := proc("p2")
	syncAsSequencer(t, sq, sn, 0, p2)
	sq.HandleApp(p2, Pub{Origin: p2, PubID: 1, Body: []byte("x")})
	sent = sn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("sequencing one pub sent %d frames, want 1 Seqd", len(sent))
	}
	if s, ok := sent[0].payload.(Seqd); !ok || s.Seq != 1 {
		t.Fatalf("frame = %+v, want Seqd at slot 1", sent[0].payload)
	}
	sq.HandleApp(p2, AckSeq{Ver: 0, Seq: 1})
	sent = sn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("stability advance sent %d frames, want 1 Stable broadcast", len(sent))
	}
	if st, ok := sent[0].payload.(Stable); !ok || st.Seq != 1 {
		t.Fatalf("frame = %+v, want Stable 1", sent[0].payload)
	}
	if n := sq.stats.SeqdBatches.Load() + sq.stats.PubBatches.Load() + sq.stats.StablePiggybacked.Load(); n != 0 {
		t.Fatalf("legacy wire used %d batch-path operations", n)
	}
}

// TestFenceReleasesOnlyAtStability: a read fence registered while the
// processed prefix is unstable holds until the frontier covers it; with
// nothing unstable it releases immediately.
func TestFenceReleasesOnlyAtStability(t *testing.T) {
	fn := &timerNode{fakeNode: fakeNode{id: proc("p2")}}
	b := New(fn, Config{})
	seq := syncAsMember(b, fn, 0)

	released := 0
	b.Fence(func() { released++ })
	if released != 1 {
		t.Fatal("fence over an empty (trivially stable) prefix must release immediately")
	}

	px := proc("p9")
	b.HandleApp(seq, Seqd(entry(0, 1, px, 1)))
	b.Fence(func() { released++ })
	if released != 1 {
		t.Fatal("fence released while its prefix was unstable")
	}
	b.HandleApp(seq, Stable{Ver: 0, Seq: 1})
	if released != 2 {
		t.Fatal("fence not released when the frontier covered its prefix")
	}
}

// TestFenceRetargetsAcrossViewChange: a pending fence survives an
// install, re-targets to the new view's covering prefix, and releases at
// the new view's stability — never before.
func TestFenceRetargetsAcrossViewChange(t *testing.T) {
	fn := &timerNode{fakeNode: fakeNode{id: proc("p2")}}
	b := New(fn, Config{})
	seq := syncAsMember(b, fn, 0)
	px := proc("p9")
	b.HandleApp(seq, Seqd(entry(0, 1, px, 1)))

	released := 0
	b.Fence(func() { released++ })

	members := []ids.ProcID{seq, b.self}
	b.HandleInstall(1, members)
	if released != 0 {
		t.Fatal("fence released by the install itself")
	}
	// The new view re-sequences the entry; sync reopens the order.
	b.HandleApp(seq, ViewSync{Ver: 1, Entries: []Entry{entry(1, 1, px, 1)}})
	if released != 0 {
		t.Fatal("fence released before the re-sequenced prefix was stable")
	}
	b.HandleApp(seq, Stable{Ver: 1, Seq: 1})
	if released != 1 {
		t.Fatal("fence not released at the new view's stability")
	}
}

// --- batched vs unbatched equivalence ---------------------------------------

// simNet wires Broadcasters through in-memory inboxes under a seeded
// scheduler: one message delivery or timer firing at a time, order chosen
// by the rng. Deterministic for a given seed, so the batched and
// unbatched arms replay the identical script.
type simNet struct {
	rng   *rand.Rand
	order []ids.ProcID
	nodes map[ids.ProcID]*simNode
}

type simNode struct {
	net    *simNet
	id     ids.ProcID
	b      *Broadcaster
	inbox  []fakeSend
	timers []*fakeTimer
	dead   bool

	applied []CmdKey
	acked   map[uint64]bool // own pubIDs acked at stability
}

// CmdKey is a command's global identity in the sim.
type CmdKey struct {
	Origin ids.ProcID
	PubID  uint64
}

func (n *simNode) ID() ids.ProcID { return n.id }
func (n *simNode) Send(to ids.ProcID, payload any) {
	if dst, ok := n.net.nodes[to]; ok && !dst.dead {
		dst.inbox = append(dst.inbox, fakeSend{to: n.id, payload: payload}) // to field reused as "from"
	}
}
func (n *simNode) Run(fn func()) { fn() }
func (n *simNode) After(d time.Duration, fn func()) func() {
	t := &fakeTimer{d: d, fn: fn}
	n.timers = append(n.timers, t)
	return func() { t.dead = true }
}

func newSimNet(seed int64, members []ids.ProcID, cfg Config) *simNet {
	net := &simNet{rng: rand.New(rand.NewSource(seed)), order: members, nodes: make(map[ids.ProcID]*simNode)}
	for _, p := range members {
		sn := &simNode{net: net, id: p, acked: make(map[uint64]bool)}
		c := cfg
		c.Deliver = func(m Msg) { sn.applied = append(sn.applied, CmdKey{m.Origin, m.PubID}) }
		sn.b = New(sn, c)
		net.nodes[p] = sn
	}
	return net
}

// step delivers one queued message (random busy node, FIFO within the
// node); with none queued it fires one pending timer. False = quiescent.
func (net *simNet) step() bool {
	busy := make([]*simNode, 0, len(net.order))
	for _, p := range net.order {
		if n := net.nodes[p]; !n.dead && len(n.inbox) > 0 {
			busy = append(busy, n)
		}
	}
	if len(busy) > 0 {
		n := busy[net.rng.Intn(len(busy))]
		m := n.inbox[0]
		n.inbox = n.inbox[1:]
		n.b.HandleApp(m.to, m.payload)
		return true
	}
	for _, p := range net.order {
		n := net.nodes[p]
		if n.dead {
			continue
		}
		for len(n.timers) > 0 {
			t := n.timers[0]
			n.timers = n.timers[1:]
			if !t.dead {
				t.fn()
				return true
			}
		}
	}
	return false
}

func (net *simNet) settle(t *testing.T, limit int) {
	for i := 0; i < limit; i++ {
		if !net.step() {
			return
		}
	}
	t.Fatal("sim did not quiesce")
}

// runGroupCommitSim drives one seeded run: four members bootstrap view 0,
// propose concurrently, the sequencer dies mid-stream, the survivors
// install view 1, and the rest of the load lands there. Returns each
// survivor's applied sequence and the set of acked commands.
func runGroupCommitSim(t *testing.T, seed int64, cfg Config) (map[ids.ProcID][]CmdKey, map[CmdKey]bool) {
	members := []ids.ProcID{proc("p1"), proc("p2"), proc("p3"), proc("p4")}
	survivors := members[1:]
	net := newSimNet(seed, members, cfg)
	// The script rng is separate from the scheduler rng: the scheduler
	// draws differently once frame counts diverge between modes, but the
	// script (who proposes, when) must be identical in both.
	script := rand.New(rand.NewSource(seed ^ 0x5eed))

	for _, p := range members {
		net.nodes[p].b.HandleInstall(0, members)
	}
	propose := func(p ids.ProcID) {
		n := net.nodes[p]
		n.b.Propose([]byte(fmt.Sprintf("%v", p)), func(id uint64, err error) {
			if err == nil {
				n.acked[id] = true
			}
		})
	}
	// First half of the load interleaves with bootstrap and each other.
	for i := 0; i < 20; i++ {
		propose(members[script.Intn(len(members))])
		for s := script.Intn(6); s > 0; s-- {
			net.step()
		}
	}
	// The sequencer dies; survivors install the next view mid-traffic.
	net.nodes[members[0]].dead = true
	for _, p := range survivors {
		net.nodes[p].b.HandleInstall(1, survivors)
	}
	for i := 0; i < 20; i++ {
		propose(survivors[script.Intn(len(survivors))])
		for s := script.Intn(6); s > 0; s-- {
			net.step()
		}
	}
	net.settle(t, 100000)

	applied := make(map[ids.ProcID][]CmdKey)
	acked := make(map[CmdKey]bool)
	for _, p := range survivors {
		applied[p] = net.nodes[p].applied
		for id := range net.nodes[p].acked {
			acked[CmdKey{p, id}] = true
		}
	}
	return applied, acked
}

// TestBatchedMatchesUnbatchedUnderViewChanges is the cross-mode property
// test: for each seed, a batched and an unbatched run of the same script
// (same proposals, same sequencer crash, same scheduler randomness) must
// (a) keep every survivor's applied sequence identical within the run,
// (b) respect per-origin FIFO with no duplicates, (c) lose no acked
// command, and (d) deliver the same survivor-origin command set in both
// modes — batching may interleave origins differently at the sequencer,
// but it must not add, drop, or reorder any origin's own commands.
func TestBatchedMatchesUnbatchedUnderViewChanges(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		unb, unbAcked := runGroupCommitSim(t, seed, Config{})
		bat, batAcked := runGroupCommitSim(t, seed, Config{
			Batch: BatchConfig{MaxEntries: 4, MaxDelay: time.Millisecond},
			Ack:   AckConfig{Every: 4, Delay: time.Millisecond},
		})

		for name, run := range map[string]map[ids.ProcID][]CmdKey{"unbatched": unb, "batched": bat} {
			var ref []CmdKey
			var refP ids.ProcID
			first := true
			for p, seq := range run {
				// (b) exactly-once + per-origin FIFO.
				seen := make(map[CmdKey]bool)
				lastPub := make(map[ids.ProcID]uint64)
				for _, k := range seq {
					if seen[k] {
						t.Fatalf("seed %d %s: %v applied %v twice", seed, name, p, k)
					}
					seen[k] = true
					if k.PubID <= lastPub[k.Origin] {
						t.Fatalf("seed %d %s: %v broke origin FIFO at %v", seed, name, p, k)
					}
					lastPub[k.Origin] = k.PubID
				}
				// (a) all survivors agree on the whole order.
				if first {
					ref, refP, first = seq, p, false
				} else if !reflect.DeepEqual(ref, seq) {
					t.Fatalf("seed %d %s: survivors %v and %v applied different orders:\n%v\n%v",
						seed, name, refP, p, ref, seq)
				}
			}
		}

		// (c) zero acked loss, in each mode.
		for name, pair := range map[string]struct {
			acked map[CmdKey]bool
			run   map[ids.ProcID][]CmdKey
		}{"unbatched": {unbAcked, unb}, "batched": {batAcked, bat}} {
			for p, seq := range pair.run {
				have := make(map[CmdKey]bool, len(seq))
				for _, k := range seq {
					have[k] = true
				}
				for k := range pair.acked {
					if !have[k] {
						t.Fatalf("seed %d %s: acked %v missing from %v's applied order", seed, name, k, p)
					}
				}
			}
		}

		// (d) identical survivor-origin delivery sets across modes.
		setOf := func(run map[ids.ProcID][]CmdKey) map[CmdKey]bool {
			out := make(map[CmdKey]bool)
			for _, seq := range run {
				for _, k := range seq {
					if k.Origin != proc("p1") {
						out[k] = true
					}
				}
			}
			return out
		}
		if a, b := setOf(unb), setOf(bat); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: survivor-origin delivery sets differ between modes:\nunbatched %v\nbatched  %v", seed, a, b)
		}
	}
}

// TestGroupCommitLivenessAfterSequencerCrash is the liveness property:
// once the network quiesces (no queued frames, no pending timers), every
// proposal made by a survivor must have completed — the pipeline-paced
// flush must never strand queued pubs behind a pipeline slot that a view
// change emptied. Bursty load (many proposals between scheduler steps)
// keeps the origin pipelines deep across the crash, which is exactly
// where a pacing leak would deadlock the real system.
func TestGroupCommitLivenessAfterSequencerCrash(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		members := []ids.ProcID{proc("p1"), proc("p2"), proc("p3"), proc("p4")}
		survivors := members[1:]
		net := newSimNet(seed, members, Config{
			Batch: BatchConfig{MaxEntries: 8, MaxDelay: time.Millisecond},
			Ack:   AckConfig{Every: 8, Delay: time.Millisecond},
		})
		script := rand.New(rand.NewSource(seed ^ 0x11fe))
		for _, p := range members {
			net.nodes[p].b.HandleInstall(0, members)
		}
		proposed := make(map[ids.ProcID]int)
		propose := func(p ids.ProcID) {
			proposed[p]++
			n := net.nodes[p]
			n.b.Propose([]byte{byte(proposed[p])}, func(id uint64, err error) {
				if err == nil {
					n.acked[id] = true
				}
			})
		}
		for i := 0; i < 40; i++ {
			propose(members[script.Intn(len(members))])
			if script.Intn(3) == 0 {
				for s := script.Intn(8); s > 0; s-- {
					net.step()
				}
			}
		}
		net.nodes[members[0]].dead = true
		for _, p := range survivors {
			net.nodes[p].b.HandleInstall(1, survivors)
		}
		for i := 0; i < 40; i++ {
			propose(survivors[script.Intn(len(survivors))])
			if script.Intn(3) == 0 {
				for s := script.Intn(8); s > 0; s-- {
					net.step()
				}
			}
		}
		net.settle(t, 200000)
		for _, p := range survivors {
			n := net.nodes[p]
			if len(n.acked) != proposed[p] {
				t.Fatalf("seed %d: %v quiesced with %d/%d proposals acked",
					seed, p, len(n.acked), proposed[p])
			}
		}
	}
}
