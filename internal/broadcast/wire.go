package broadcast

import (
	"math"

	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// Wire kind tags for the broadcast vocabulary, in the substrate range
// (≥ 16) next to live's Heartbeat (16) and SuspicionDigest (17).
const (
	kindPub       = 18
	kindSeqd      = 19
	kindAckSeq    = 20
	kindStable    = 21
	kindFlush     = 22
	kindViewSync  = 23
	kindPubBatch  = 24
	kindSeqdBatch = 25
)

// Pub submits one application message to the view's sequencer. PubID is
// the origin's own monotonic counter: the sequencer orders each origin's
// pubs in PubID order and drops duplicates (a resubmission after a view
// change can race the original), so a pub is sequenced at most once.
type Pub struct {
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// Seqd is one sequenced message, fanned out by the sequencer to every
// view member: position Seq in view Ver's total order.
type Seqd struct {
	Ver    uint64
	Seq    uint64
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// AckSeq is a member's cumulative delivery acknowledgement: it has
// processed view Ver's order contiguously through Seq.
type AckSeq struct {
	Ver uint64
	Seq uint64
}

// Stable announces the sequencer's stability frontier: every member of
// view Ver has processed the order through Seq, so prefixes up to Seq can
// be pruned from retained logs and acked to clients — no crash or view
// change can lose them now.
type Stable struct {
	Ver uint64
	Seq uint64
}

// PubItem is one queued proposal inside a PubBatch: the origin's pub
// counter and the application body.
type PubItem struct {
	PubID uint64
	Body  []byte
}

// PubBatch is the group-commit submission frame: every proposal an origin
// had queued when its batcher flushed (size-, byte- or time-capped),
// coalesced into one frame to the view's sequencer. Items are in PubID
// order; the sequencer's per-origin duplicate filter applies to each item
// exactly as if it had arrived as an individual Pub.
type PubBatch struct {
	Origin ids.ProcID
	Pubs   []PubItem
}

// SeqdItem is one sequenced message inside a SeqdBatch; its order slot is
// implicit — the batch's FirstSeq plus the item's index.
type SeqdItem struct {
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// SeqdBatch is the group-commit fan-out frame: a contiguous slot range
// [FirstSeq, FirstSeq+len(Entries)) of view Ver's total order, assigned in
// one sequencing step. Stable piggybacks the sequencer's current stability
// frontier, replacing the separate Stable broadcast on the hot path — a
// member processes the entries first, then folds the frontier in, exactly
// the order the unbatched wire (Seqd… then Stable) would have delivered.
type SeqdBatch struct {
	Ver      uint64
	FirstSeq uint64
	Stable   uint64
	Entries  []SeqdItem
}

// Entry is one retained log position: the (Ver, Seq) it was sequenced at
// and the message itself. Flush tails and ViewSync orders are entry
// sequences.
type Entry struct {
	Ver    uint64
	Seq    uint64
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// Applied is one origin's applied frontier: the highest PubID of that
// origin processed into the local order. Per-origin frontiers are exact
// summaries because pubs are sequenced in PubID order (see Pub).
type Applied struct {
	Origin ids.ProcID
	Max    uint64
}

// Flush is a member's state offer to the new view's sequencer, sent on
// every install: its retained (unstable) log tail, its applied frontiers,
// and whether it is joining fresh (needs a snapshot). The sequencer
// installs the view's order only after every member's flush is in — the
// flush barrier that makes delivery view-synchronous (DESIGN.md §11).
type Flush struct {
	Ver     uint64 // the newly installed view this flush is for
	Applied []Applied
	Tail    []Entry
	Joining bool
}

// ViewSync opens view Ver's total order: the union of the flushed tails
// re-sequenced from 1, the applied frontiers covering everything at or
// below them, and (when some member is joining) a state snapshot that
// those frontiers describe. Members process Entries in order — applying
// what their own frontiers show unprocessed, skipping the rest — and only
// then deliver new Seqd traffic for Ver.
type ViewSync struct {
	Ver      uint64
	Applied  []Applied
	Entries  []Entry
	Snapshot []byte // app snapshot for joiners; nil when no member is joining
	HasSnap  bool
}

// AppTraffic marks the vocabulary for live's application routing.
func (Pub) AppTraffic()       {}
func (Seqd) AppTraffic()      {}
func (AckSeq) AppTraffic()    {}
func (Stable) AppTraffic()    {}
func (Flush) AppTraffic()     {}
func (ViewSync) AppTraffic()  {}
func (PubBatch) AppTraffic()  {}
func (SeqdBatch) AppTraffic() {}

// MsgLabel implements netsim.Labeled for uniform counting.
func (Pub) MsgLabel() string       { return "B.Pub" }
func (Seqd) MsgLabel() string      { return "B.Seqd" }
func (AckSeq) MsgLabel() string    { return "B.AckSeq" }
func (Stable) MsgLabel() string    { return "B.Stable" }
func (Flush) MsgLabel() string     { return "B.Flush" }
func (ViewSync) MsgLabel() string  { return "B.ViewSync" }
func (PubBatch) MsgLabel() string  { return "B.PubBatch" }
func (SeqdBatch) MsgLabel() string { return "B.SeqdBatch" }

func encProc(e *transport.Encoder, p ids.ProcID) {
	e.String(p.Site)
	e.Uvarint(uint64(p.Incarnation))
}

func decProc(d *transport.Decoder) ids.ProcID {
	site := d.String()
	inc := d.Uvarint()
	if inc > math.MaxUint32 {
		inc = 0 // corrupt incarnation; tolerated like the digest decoder
	}
	return ids.ProcID{Site: site, Incarnation: uint32(inc)}
}

func encEntry(e *transport.Encoder, en Entry) {
	e.Uvarint(en.Ver)
	e.Uvarint(en.Seq)
	encProc(e, en.Origin)
	e.Uvarint(en.PubID)
	e.Blob(en.Body)
}

func decEntry(d *transport.Decoder) Entry {
	return Entry{
		Ver:    d.Uvarint(),
		Seq:    d.Uvarint(),
		Origin: decProc(d),
		PubID:  d.Uvarint(),
		Body:   d.Blob(),
	}
}

func encApplied(e *transport.Encoder, a []Applied) {
	e.Uvarint(uint64(len(a)))
	for _, f := range a {
		encProc(e, f.Origin)
		e.Uvarint(f.Max)
	}
}

func decApplied(d *transport.Decoder) []Applied {
	n := d.Count(3) // min: 1-byte site len + 1-byte inc + 1-byte max
	if n == 0 {
		return nil
	}
	out := make([]Applied, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, Applied{Origin: decProc(d), Max: d.Uvarint()})
	}
	return out
}

func decEntries(d *transport.Decoder) []Entry {
	// Min entry wire size: ver + seq + 2-byte proc + pubID + 1-byte blob.
	n := d.Count(6)
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, decEntry(d))
	}
	return out
}

func init() {
	// Gob escape hatch (transports without the binary fast path).
	transport.RegisterPayload(Pub{})
	transport.RegisterPayload(Seqd{})
	transport.RegisterPayload(AckSeq{})
	transport.RegisterPayload(Stable{})
	transport.RegisterPayload(Flush{})
	transport.RegisterPayload(ViewSync{})
	transport.RegisterPayload(PubBatch{})
	transport.RegisterPayload(SeqdBatch{})

	transport.RegisterBinaryPayload(kindPub, Pub{},
		func(e *transport.Encoder, v any) {
			p := v.(Pub)
			encProc(e, p.Origin)
			e.Uvarint(p.PubID)
			e.Blob(p.Body)
		},
		func(d *transport.Decoder) any {
			return Pub{Origin: decProc(d), PubID: d.Uvarint(), Body: d.Blob()}
		})

	transport.RegisterBinaryPayload(kindSeqd, Seqd{},
		func(e *transport.Encoder, v any) {
			s := v.(Seqd)
			encEntry(e, Entry(s))
		},
		func(d *transport.Decoder) any {
			return Seqd(decEntry(d))
		})

	transport.RegisterBinaryPayload(kindAckSeq, AckSeq{},
		func(e *transport.Encoder, v any) {
			a := v.(AckSeq)
			e.Uvarint(a.Ver)
			e.Uvarint(a.Seq)
		},
		func(d *transport.Decoder) any {
			return AckSeq{Ver: d.Uvarint(), Seq: d.Uvarint()}
		})

	transport.RegisterBinaryPayload(kindStable, Stable{},
		func(e *transport.Encoder, v any) {
			s := v.(Stable)
			e.Uvarint(s.Ver)
			e.Uvarint(s.Seq)
		},
		func(d *transport.Decoder) any {
			return Stable{Ver: d.Uvarint(), Seq: d.Uvarint()}
		})

	transport.RegisterBinaryPayload(kindFlush, Flush{},
		func(e *transport.Encoder, v any) {
			f := v.(Flush)
			e.Uvarint(f.Ver)
			e.Bool(f.Joining)
			encApplied(e, f.Applied)
			e.Uvarint(uint64(len(f.Tail)))
			for _, en := range f.Tail {
				encEntry(e, en)
			}
		},
		func(d *transport.Decoder) any {
			return Flush{
				Ver:     d.Uvarint(),
				Joining: d.Bool(),
				Applied: decApplied(d),
				Tail:    decEntries(d),
			}
		})

	transport.RegisterBinaryPayload(kindPubBatch, PubBatch{},
		func(e *transport.Encoder, v any) {
			pb := v.(PubBatch)
			encProc(e, pb.Origin)
			e.Uvarint(uint64(len(pb.Pubs)))
			for _, p := range pb.Pubs {
				e.Uvarint(p.PubID)
				e.Blob(p.Body)
			}
		},
		func(d *transport.Decoder) any {
			pb := PubBatch{Origin: decProc(d)}
			n := d.Count(2) // min item: 1-byte pubID + 1-byte blob len
			if n == 0 {
				return pb
			}
			pb.Pubs = make([]PubItem, 0, n)
			// One arena for every body in the batch: the remaining input
			// bounds the total body bytes, so the appends never reallocate
			// and the whole batch costs one body allocation.
			arena := make([]byte, 0, d.Remaining())
			for i := 0; i < n && d.Err() == nil; i++ {
				it := PubItem{PubID: d.Uvarint()}
				it.Body, arena = d.BlobInto(arena)
				pb.Pubs = append(pb.Pubs, it)
			}
			return pb
		})

	transport.RegisterBinaryPayload(kindSeqdBatch, SeqdBatch{},
		func(e *transport.Encoder, v any) {
			sb := v.(SeqdBatch)
			e.Uvarint(sb.Ver)
			e.Uvarint(sb.FirstSeq)
			e.Uvarint(sb.Stable)
			e.Uvarint(uint64(len(sb.Entries)))
			for _, it := range sb.Entries {
				encProc(e, it.Origin)
				e.Uvarint(it.PubID)
				e.Blob(it.Body)
			}
		},
		func(d *transport.Decoder) any {
			sb := SeqdBatch{Ver: d.Uvarint(), FirstSeq: d.Uvarint(), Stable: d.Uvarint()}
			n := d.Count(4) // min item: 2-byte proc + 1-byte pubID + 1-byte blob len
			if n == 0 {
				return sb
			}
			sb.Entries = make([]SeqdItem, 0, n)
			arena := make([]byte, 0, d.Remaining())
			for i := 0; i < n && d.Err() == nil; i++ {
				it := SeqdItem{Origin: decProc(d), PubID: d.Uvarint()}
				it.Body, arena = d.BlobInto(arena)
				sb.Entries = append(sb.Entries, it)
			}
			return sb
		})

	transport.RegisterBinaryPayload(kindViewSync, ViewSync{},
		func(e *transport.Encoder, v any) {
			s := v.(ViewSync)
			e.Uvarint(s.Ver)
			e.Bool(s.HasSnap)
			e.Blob(s.Snapshot)
			encApplied(e, s.Applied)
			e.Uvarint(uint64(len(s.Entries)))
			for _, en := range s.Entries {
				encEntry(e, en)
			}
		},
		func(d *transport.Decoder) any {
			return ViewSync{
				Ver:      d.Uvarint(),
				HasSnap:  d.Bool(),
				Snapshot: d.Blob(),
				Applied:  decApplied(d),
				Entries:  decEntries(d),
			}
		})
}
