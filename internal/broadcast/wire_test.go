package broadcast

import (
	"reflect"
	"testing"

	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// wirePayloads covers the whole broadcast vocabulary (kinds 18–25), with
// populated and zero-valued fields.
func wirePayloads() []any {
	px := ids.ProcID{Site: "p3", Incarnation: 2}
	return []any{
		Pub{Origin: px, PubID: 7, Body: []byte("set k v")},
		Pub{Origin: ids.Named("p1")}, // zero PubID, nil body
		PubBatch{Origin: px, Pubs: []PubItem{
			{PubID: 7, Body: []byte("set k v")},
			{PubID: 8, Body: nil}, // empty body mid-batch
			{PubID: 9, Body: []byte("set k2 w")},
		}},
		PubBatch{Origin: ids.Named("p1")}, // empty batch
		SeqdBatch{Ver: 3, FirstSeq: 12, Stable: 9, Entries: []SeqdItem{
			{Origin: px, PubID: 7, Body: []byte("set k v")},
			{Origin: ids.Named("p1"), PubID: 2, Body: nil},
			{Origin: px, PubID: 8, Body: []byte("z")},
		}},
		SeqdBatch{Ver: 4}, // empty range, frontier only
		Seqd{Ver: 3, Seq: 12, Origin: px, PubID: 7, Body: []byte("set k v")},
		AckSeq{Ver: 3, Seq: 12},
		AckSeq{},
		Stable{Ver: 3, Seq: 9},
		Flush{
			Ver:     4,
			Applied: []Applied{{Origin: px, Max: 7}, {Origin: ids.Named("p1"), Max: 2}},
			Tail:    []Entry{{Ver: 3, Seq: 10, Origin: px, PubID: 6, Body: []byte("x")}},
			Joining: true,
		},
		Flush{Ver: 4}, // empty tail, no frontiers
		ViewSync{
			Ver:      4,
			Applied:  []Applied{{Origin: px, Max: 7}},
			Entries:  []Entry{{Ver: 4, Seq: 1, Origin: px, PubID: 7, Body: []byte("set k v")}},
			Snapshot: []byte{1, 2, 3},
			HasSnap:  true,
		},
		ViewSync{Ver: 5},
	}
}

// TestBroadcastWireRoundTrip: every broadcast payload travels the binary
// fast path (no gob fallback) and round-trips structurally intact.
func TestBroadcastWireRoundTrip(t *testing.T) {
	for _, payload := range wirePayloads() {
		in := transport.Frame{From: "p1", To: "p3#2", Seq: 5, MsgID: 0, Body: payload}
		blob, err := transport.EncodeFrame(in)
		if err != nil {
			t.Fatalf("%T: encode: %v", payload, err)
		}
		if blob[0] == 0 {
			t.Errorf("%T: fell back to the gob escape hatch; broadcast payloads must have binary codecs", payload)
		}
		out, err := transport.DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if !wireEqual(in, out) {
			t.Errorf("%T: round trip\n in: %#v\nout: %#v", payload, in, out)
		}
	}
}

// TestBroadcastWireRoundTripGob: the kind-0 escape hatch carries the same
// vocabulary (transports without the binary fast path stay compatible).
func TestBroadcastWireRoundTripGob(t *testing.T) {
	for _, payload := range wirePayloads() {
		in := transport.Frame{From: "p1", To: "p2", Seq: 1, MsgID: 0, Body: payload}
		blob, err := transport.EncodeFrameGob(in)
		if err != nil {
			t.Fatalf("%T: gob encode: %v", payload, err)
		}
		out, err := transport.DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if !wireEqual(in, out) {
			t.Errorf("%T: gob round trip\n in: %#v\nout: %#v", payload, in, out)
		}
	}
}

// wireEqual compares frames treating nil and empty slices as equal: the
// binary codec does not distinguish them (a zero-length blob decodes nil),
// and no consumer does either.
func wireEqual(a, b transport.Frame) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(f transport.Frame) transport.Frame {
	switch v := f.Body.(type) {
	case Pub:
		v.Body = unempty(v.Body)
		f.Body = v
	case Seqd:
		v.Body = unempty(v.Body)
		f.Body = v
	case PubBatch:
		if len(v.Pubs) == 0 {
			v.Pubs = nil
		}
		for i := range v.Pubs {
			v.Pubs[i].Body = unempty(v.Pubs[i].Body)
		}
		f.Body = v
	case SeqdBatch:
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
		for i := range v.Entries {
			v.Entries[i].Body = unempty(v.Entries[i].Body)
		}
		f.Body = v
	case Flush:
		if len(v.Applied) == 0 {
			v.Applied = nil
		}
		if len(v.Tail) == 0 {
			v.Tail = nil
		}
		f.Body = v
	case ViewSync:
		if len(v.Applied) == 0 {
			v.Applied = nil
		}
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
		v.Snapshot = unempty(v.Snapshot)
		f.Body = v
	}
	return f
}

func unempty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

// TestBroadcastWireRejectsCorruption: truncating a Flush (the widest
// payload) at every byte must error or truncate cleanly, never panic.
func TestBroadcastWireRejectsCorruption(t *testing.T) {
	px := ids.ProcID{Site: "p3", Incarnation: 2}
	blob, err := transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Seq: 1, Body: Flush{
		Ver:     4,
		Applied: []Applied{{Origin: px, Max: 7}},
		Tail:    []Entry{{Ver: 3, Seq: 10, Origin: px, PubID: 6, Body: []byte("x")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := transport.DecodeFrame(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
	// A hostile slice count must not force a huge allocation or panic.
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)-1] = 0xff
	transport.DecodeFrame(corrupt)
}

// TestBatchWireRejectsCorruption: the batch frames' truncation behavior,
// byte by byte, plus arena-decode independence — each decoded body must
// be its own value, not a window into a neighbor's bytes.
func TestBatchWireRejectsCorruption(t *testing.T) {
	px := ids.ProcID{Site: "p3", Incarnation: 2}
	sb := SeqdBatch{Ver: 3, FirstSeq: 5, Stable: 2, Entries: []SeqdItem{
		{Origin: px, PubID: 7, Body: []byte("abc")},
		{Origin: px, PubID: 8, Body: []byte("defg")},
	}}
	blob, err := transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Seq: 1, Body: sb})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := transport.DecodeFrame(blob[:n]); err == nil {
			t.Errorf("SeqdBatch truncated to %d bytes decoded without error", n)
		}
	}
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)-1] = 0xff // hostile trailing count/length byte
	transport.DecodeFrame(corrupt)

	out, err := transport.DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Body.(SeqdBatch)
	// Appending to one arena-decoded body must not clobber the next one
	// (BlobInto returns capacity-clipped subslices).
	_ = append(got.Entries[0].Body, 'X', 'Y', 'Z')
	if string(got.Entries[1].Body) != "defg" {
		t.Fatalf("append to entry 0's body corrupted entry 1: %q", got.Entries[1].Body)
	}

	pb := PubBatch{Origin: px, Pubs: []PubItem{{PubID: 1, Body: []byte("aa")}, {PubID: 2, Body: []byte("bb")}}}
	blob, err = transport.EncodeFrame(transport.Frame{From: "p1", To: "p2", Seq: 1, Body: pb})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := transport.DecodeFrame(blob[:n]); err == nil {
			t.Errorf("PubBatch truncated to %d bytes decoded without error", n)
		}
	}
}
