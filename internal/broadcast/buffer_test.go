package broadcast

import (
	"math/rand"
	"testing"
	"time"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// fakeNode is a deterministic live.AppNode: sends are captured, Run is
// synchronous, timers never fire. It drives one Broadcaster directly,
// with the test playing the network.
type fakeNode struct {
	id   ids.ProcID
	sent []fakeSend
}

type fakeSend struct {
	to      ids.ProcID
	payload any
}

func (f *fakeNode) ID() ids.ProcID { return f.id }
func (f *fakeNode) Send(to ids.ProcID, payload any) {
	f.sent = append(f.sent, fakeSend{to, payload})
}
func (f *fakeNode) Run(fn func())                      { fn() }
func (f *fakeNode) After(time.Duration, func()) func() { return func() {} }
func (f *fakeNode) takeSent() []fakeSend               { s := f.sent; f.sent = nil; return s }
func proc(s string) ids.ProcID                         { return ids.Named(s) }

func entry(ver, seq uint64, origin ids.ProcID, pubID uint64) Entry {
	return Entry{Ver: ver, Seq: seq, Origin: origin, PubID: pubID, Body: []byte{byte(pubID)}}
}

func TestFutureViewBufferReplaysInOrder(t *testing.T) {
	fn := &fakeNode{id: proc("p2")}
	var got []Msg
	b := New(fn, Config{Deliver: func(m Msg) { got = append(got, m) }})
	seq, self := proc("p1"), proc("p2")
	members := []ids.ProcID{seq, self}

	b.HandleInstall(0, members)
	sent := fn.takeSent()
	if len(sent) != 1 {
		t.Fatalf("install should flush to the sequencer, sent %v", sent)
	}
	if f, ok := sent[0].payload.(Flush); !ok || sent[0].to != seq || !f.Joining {
		t.Fatalf("expected joining Flush to %v, got %+v", seq, sent[0])
	}
	b.HandleApp(seq, ViewSync{Ver: 0, HasSnap: true})

	px := proc("p9")
	// Traffic for view 2, which this member has not installed: the whole
	// tail must park in the view-change buffer, per-channel order intact.
	b.HandleApp(seq, ViewSync{Ver: 2, Entries: []Entry{entry(2, 1, px, 1), entry(2, 2, px, 2)}})
	b.HandleApp(seq, Seqd(entry(2, 3, px, 3)))
	b.HandleApp(seq, Seqd(entry(2, 4, px, 4)))
	if n := b.stats.BufferedFuture.Load(); n != 3 {
		t.Fatalf("BufferedFuture = %d, want 3", n)
	}
	if len(got) != 0 {
		t.Fatalf("future traffic delivered early: %v", got)
	}

	// Current-view traffic still flows around the parked tail.
	py := proc("p8")
	b.HandleApp(seq, Seqd(entry(0, 1, py, 1)))
	if len(got) != 1 || got[0].Origin != py {
		t.Fatalf("current-view Seqd not delivered, got %v", got)
	}

	// Installing view 1 must not leak view-2 traffic...
	b.HandleInstall(1, members)
	if len(got) != 1 {
		t.Fatalf("view-2 traffic replayed at view 1: %v", got)
	}
	// ...installing view 2 replays it: ViewSync first (it arrived first),
	// then the Seqds behind it, delivering px 1..4 in order.
	b.HandleInstall(2, members)
	if len(got) != 5 {
		t.Fatalf("replay delivered %d messages, want 5: %v", len(got), got)
	}
	for i, m := range got[1:] {
		if m.Origin != px || m.PubID != uint64(i+1) || m.Ver != member.Version(2) {
			t.Fatalf("replayed message %d = %+v, want px/%d in view 2", i, m, i+1)
		}
	}
}

func TestStaleViewTrafficDropped(t *testing.T) {
	fn := &fakeNode{id: proc("p2")}
	var got []Msg
	b := New(fn, Config{Deliver: func(m Msg) { got = append(got, m) }})
	seq := proc("p1")
	members := []ids.ProcID{seq, proc("p2")}
	b.HandleInstall(3, members)
	b.HandleApp(seq, ViewSync{Ver: 3, HasSnap: true})

	px := proc("p9")
	b.HandleApp(seq, Seqd(entry(1, 1, px, 1)))
	b.HandleApp(seq, Stable{Ver: 2, Seq: 5})
	b.HandleApp(seq, ViewSync{Ver: 1})
	if n := b.stats.DroppedStale.Load(); n != 3 {
		t.Fatalf("DroppedStale = %d, want 3", n)
	}
	if len(got) != 0 {
		t.Fatalf("stale traffic delivered: %v", got)
	}
}

func TestFutureBufferOverflowCapped(t *testing.T) {
	fn := &fakeNode{id: proc("p2")}
	b := New(fn, Config{MaxBuffered: 8})
	seq := proc("p1")
	b.HandleInstall(0, []ids.ProcID{seq, proc("p2")})
	px := proc("p9")
	for i := 0; i < 20; i++ {
		b.HandleApp(seq, Seqd(entry(5, uint64(i+1), px, uint64(i+1))))
	}
	if n := b.stats.BufferedFuture.Load(); n != 8 {
		t.Fatalf("BufferedFuture = %d, want cap 8", n)
	}
	if n := b.stats.DroppedOverflow.Load(); n != 12 {
		t.Fatalf("DroppedOverflow = %d, want 12", n)
	}
}

func TestFutureBufferOverflowEvictsFarthestFirst(t *testing.T) {
	// Churn-storm shape: the buffer fills with far-future junk (view 9),
	// then the traffic the very next install needs (view 1) arrives. The
	// old rule rejected the incoming frame regardless of version; now the
	// near-future frame must displace a far-future one.
	fn := &fakeNode{id: proc("p2")}
	var got []Msg
	b := New(fn, Config{MaxBuffered: 8, Deliver: func(m Msg) { got = append(got, m) }})
	seq := proc("p1")
	members := []ids.ProcID{seq, proc("p2")}
	b.HandleInstall(0, members)
	b.HandleApp(seq, ViewSync{Ver: 0, HasSnap: true})

	px := proc("p9")
	for i := 0; i < 8; i++ {
		b.HandleApp(seq, Seqd(entry(9, uint64(i+1), px, uint64(i+1))))
	}
	// The near-future view's sync + first entry arrive at a full buffer.
	b.HandleApp(seq, ViewSync{Ver: 1, Entries: []Entry{entry(1, 1, px, 41)}})
	b.HandleApp(seq, Seqd(entry(1, 2, px, 42)))

	if n := b.futureN; n != 8 {
		t.Fatalf("futureN = %d, want cap 8", n)
	}
	if n := b.stats.DroppedOverflow.Load(); n != 2 {
		t.Fatalf("DroppedOverflow = %d, want 2 (both evicted from view 9)", n)
	}
	// Both drops were at distance ≥4 (view 9 from view 0).
	if n := b.stats.OverflowDist[3].Load(); n != 2 {
		t.Fatalf("OverflowDist[≥4] = %d, want 2", n)
	}
	if n := b.stats.OverflowDist[0].Load(); n != 0 {
		t.Fatalf("OverflowDist[1] = %d, want 0 — the near-future frames must not be the drops", n)
	}

	// Install view 1: the parked ViewSync and Seqd replay in order.
	b.HandleInstall(1, members)
	if len(got) != 2 || got[0].PubID != 41 || got[1].PubID != 42 {
		t.Fatalf("view-1 replay delivered %v, want px/41 then px/42", got)
	}

	// The surviving view-9 frames are the 6 oldest (FIFO prefix intact):
	// seqs 1..6 remain, 7 and 8 were evicted newest-first.
	if q := b.future[9]; len(q) != 6 {
		t.Fatalf("view-9 buffer holds %d frames, want 6", len(q))
	} else {
		for i, fm := range q {
			if e := fm.payload.(Seqd); e.Seq != uint64(i+1) {
				t.Fatalf("view-9 survivor %d has seq %d, want %d (FIFO prefix broken)", i, e.Seq, i+1)
			}
		}
	}
}

func TestFutureBufferOverflowFarIncomingStillDropped(t *testing.T) {
	// When the incoming frame is as far as (or farther than) anything
	// parked, it is itself the junk: drop it, don't churn the buffer.
	fn := &fakeNode{id: proc("p2")}
	b := New(fn, Config{MaxBuffered: 4})
	seq := proc("p1")
	b.HandleInstall(0, []ids.ProcID{seq, proc("p2")})
	px := proc("p9")
	for i := 0; i < 4; i++ {
		b.HandleApp(seq, Seqd(entry(3, uint64(i+1), px, uint64(i+1))))
	}
	b.HandleApp(seq, Seqd(entry(7, 1, px, 9)))
	if _, ok := b.future[7]; ok {
		t.Fatal("farther-future frame displaced nearer parked traffic")
	}
	if n := b.stats.DroppedOverflow.Load(); n != 1 {
		t.Fatalf("DroppedOverflow = %d, want 1", n)
	}
	if n := b.stats.OverflowDist[3].Load(); n != 1 {
		t.Fatalf("OverflowDist[≥4] = %d, want 1 (the view-7 frame)", n)
	}
}

func TestSkippedInstallDropsIntermediateBuffer(t *testing.T) {
	// A reconfiguration can batch several ops into one install, so a
	// member may never install some intermediate version: anything parked
	// for it must drain as stale, not replay into the wrong view.
	fn := &fakeNode{id: proc("p2")}
	var got []Msg
	b := New(fn, Config{Deliver: func(m Msg) { got = append(got, m) }})
	seq := proc("p1")
	members := []ids.ProcID{seq, proc("p2")}
	b.HandleInstall(0, members)
	b.HandleApp(seq, ViewSync{Ver: 0, HasSnap: true})

	px := proc("p9")
	b.HandleApp(seq, Seqd(entry(1, 1, px, 1)))                               // for skipped view 1
	b.HandleApp(seq, ViewSync{Ver: 3, Entries: []Entry{entry(3, 1, px, 7)}}) // for view 3
	b.HandleInstall(3, members)
	if n := b.stats.DroppedStale.Load(); n != 1 {
		t.Fatalf("DroppedStale = %d, want 1 (the view-1 Seqd)", n)
	}
	if len(got) != 1 || got[0].PubID != 7 {
		t.Fatalf("view-3 replay delivered %v, want exactly px/7", got)
	}
}

// TestFutureBufferProperty is the randomized property test: traffic for
// several not-yet-installed views arrives in an arbitrary interleaving
// (per-view channel order preserved, as FIFO channels guarantee); after
// the installs land in version order, every view's messages must have
// been delivered exactly once, in per-view sequence order, with nothing
// delivered before its install.
func TestFutureBufferProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fn := &fakeNode{id: proc("p2")}
		var got []Msg
		b := New(fn, Config{Deliver: func(m Msg) { got = append(got, m) }, MaxBuffered: 1 << 14})
		seq := proc("p1")
		members := []ids.ProcID{seq, proc("p2")}
		b.HandleInstall(0, members)
		b.HandleApp(seq, ViewSync{Ver: 0, HasSnap: true})

		px := proc("p9")
		nViews := 2 + rng.Intn(4)
		scripts := make([][]any, nViews) // per-view message queue, FIFO
		var want []uint64                // pubIDs in expected delivery order
		pub := uint64(0)
		for v := 0; v < nViews; v++ {
			ver := uint64(v + 1)
			nmsg := 1 + rng.Intn(5)
			var ents []Entry
			var script []any
			seqNo := uint64(0)
			// The view opens with its ViewSync carrying a random prefix
			// of its entries; the rest follow as Seqds.
			nSync := rng.Intn(nmsg + 1)
			for i := 0; i < nmsg; i++ {
				pub++
				seqNo++
				e := entry(ver, seqNo, px, pub)
				want = append(want, pub)
				if i < nSync {
					ents = append(ents, e)
				} else {
					script = append(script, Seqd(e))
				}
			}
			scripts[v] = append([]any{ViewSync{Ver: ver, Entries: ents}}, script...)
		}

		// Random fair interleaving across views, order within preserved.
		for {
			live := make([]int, 0, nViews)
			for v, s := range scripts {
				if len(s) > 0 {
					live = append(live, v)
				}
			}
			if len(live) == 0 {
				break
			}
			v := live[rng.Intn(len(live))]
			b.HandleApp(seq, scripts[v][0])
			scripts[v] = scripts[v][1:]
		}
		if len(got) != 0 {
			t.Fatalf("seed %d: %d messages delivered before their views installed", seed, len(got))
		}

		for v := 1; v <= nViews; v++ {
			b.HandleInstall(member.Version(v), members)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: delivered %d messages, want %d", seed, len(got), len(want))
		}
		for i, m := range got {
			if m.PubID != want[i] {
				t.Fatalf("seed %d: delivery %d = pub %d, want %d", seed, i, m.PubID, want[i])
			}
		}
		seen := make(map[uint64]bool)
		for _, m := range got {
			if seen[m.PubID] {
				t.Fatalf("seed %d: pub %d delivered twice", seed, m.PubID)
			}
			seen[m.PubID] = true
		}
	}
}

func TestProposeBeforeFirstInstallIsHeldThenSent(t *testing.T) {
	fn := &fakeNode{id: proc("p2")}
	b := New(fn, Config{})
	seq := proc("p1")
	done := 0
	b.Propose([]byte("x"), func(uint64, error) { done++ })
	if len(fn.takeSent()) != 0 {
		t.Fatal("pub escaped before any view installed")
	}
	b.HandleInstall(0, []ids.ProcID{seq, proc("p2")})
	fn.takeSent() // the flush
	b.HandleApp(seq, ViewSync{Ver: 0, HasSnap: true})
	var pubs int
	for _, s := range fn.takeSent() {
		if p, ok := s.payload.(Pub); ok {
			pubs++
			if s.to != seq || p.PubID != 1 {
				t.Fatalf("pub resubmitted wrong: %+v", s)
			}
		}
	}
	if pubs != 1 {
		t.Fatalf("held proposal sent %d times after sync, want 1", pubs)
	}
	if done != 0 {
		t.Fatal("proposal acked without stability")
	}
	// Sequence comes back, then stability: the ack fires only at Stable.
	b.HandleApp(seq, Seqd(entry(0, 1, proc("p2"), 1)))
	if done != 0 {
		t.Fatal("proposal acked at delivery; stability is the contract")
	}
	b.HandleApp(seq, Stable{Ver: 0, Seq: 1})
	if done != 1 {
		t.Fatalf("proposal not acked at stability (done=%d)", done)
	}
}
