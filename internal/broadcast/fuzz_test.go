package broadcast

import (
	"bytes"
	"encoding/binary"
	"testing"

	"procgroup/internal/ids"
	"procgroup/internal/transport"
)

// FuzzReadBatch mirrors transport's FuzzReadFrame for the group-commit
// frames: whatever a truncated, mutated, or hostile stream carries into a
// PubBatch/SeqdBatch decode, ReadFrame must return a frame or an error —
// never panic, never over-allocate past the input that arrived (the arena
// decode sizes itself from Remaining, so a lying count cannot force more).
// Valid decodes must re-encode, proving the value is inside the codec's
// domain.
func FuzzReadBatch(f *testing.F) {
	seed := func(fr transport.Frame) {
		blob, err := transport.EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
		buf.Write(hdr[:])
		buf.Write(blob)
		f.Add(buf.Bytes())
		if len(buf.Bytes()) > 6 {
			f.Add(buf.Bytes()[:len(buf.Bytes())-3]) // truncated body
		}
	}
	px := ids.ProcID{Site: "p3", Incarnation: 2}
	seed(transport.Frame{From: "p1", To: "p2", Seq: 3, Body: PubBatch{
		Origin: px,
		Pubs:   []PubItem{{PubID: 7, Body: []byte("set k v")}, {PubID: 8, Body: []byte("set k2 w")}},
	}})
	seed(transport.Frame{From: "p1", To: "p2", Seq: 3, Body: PubBatch{Origin: px}})
	seed(transport.Frame{From: "p1", To: "p3#2", Seq: 9, Body: SeqdBatch{
		Ver: 3, FirstSeq: 12, Stable: 9,
		Entries: []SeqdItem{{Origin: px, PubID: 7, Body: []byte("set k v")}, {Origin: px, PubID: 8}},
	}})
	seed(transport.Frame{From: "p1", To: "p2", Body: SeqdBatch{Ver: 4}})
	{ // hostile 64-bit item count inside a SeqdBatch
		var e transport.Encoder
		e.Byte(kindSeqdBatch)
		e.String("p1")
		e.String("p2")
		e.Uvarint(1)       // mux seq
		e.Varint(0)        // msg id
		e.Uvarint(3)       // ver
		e.Uvarint(1)       // first seq
		e.Uvarint(0)       // stable
		e.Uvarint(1 << 62) // item count
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(e.Bytes())))
		f.Add(append(hdr[:], e.Bytes()...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := transport.ReadFrame(bytes.NewReader(data))
		if err != nil || fr.Body == nil {
			return
		}
		if _, err := transport.EncodeFrame(fr); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%#v)", err, fr)
		}
	})
}
