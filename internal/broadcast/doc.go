// Package broadcast delivers totally-ordered messages within the views
// installed by the group membership protocol — the Isis-style group
// communication the paper built its GMP to carry (§1).
//
// Within a view the order is coordinator-sequenced: origins number their
// publications (PubID) and send them to the view's coordinator, which
// assigns each a slot (Ver, Seq) and fans it out; members process slots
// contiguously and acknowledge cumulatively. A slot acknowledged by every
// member of the view is *stable*: no crash or membership change can lose
// it, so that — and only that — is when a client ack fires.
//
// Across views the layer is view-synchronous by state transfer: every
// install triggers a flush barrier (each member offers its retained
// unstable log and applied frontiers to the new coordinator), the
// coordinator unions the tails into the new view's opening order, and a
// ViewSync replays it to everyone — survivors apply what they missed and
// deduplicate what they already had by per-origin PubID frontier, while
// joiners restore the snapshot the frontiers describe. Messages arriving
// for a view this member has not installed yet park in the view-change
// buffer and replay, per-channel order intact, when the install lands.
// DESIGN.md §11 explains why the flush barrier is load-bearing.
//
// The layer rides the live runtime as an application hook
// (live.Options.App): its traffic shares the group's transport but is
// fenced from both the protocol state machine and the failure detector.
package broadcast
