package broadcast

import (
	"sort"
	"sync/atomic"
	"time"

	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
)

// Msg is one position of a view's total order as this member processed
// it: the (Ver, Seq) it holds locally, the origin's identity and pub
// counter, and the application body. A message re-sequenced across a view
// change keeps its (Origin, PubID) — that pair is its global identity —
// while (Ver, Seq) names its slot in the order of the view that carried
// it here.
type Msg struct {
	Ver    member.Version
	Seq    uint64
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// BatchConfig tunes group commit on the origin→sequencer leg: queued
// Propose bodies coalesce into one PubBatch frame, flushed when any cap
// trips. MaxEntries ≤ 1 disables batching entirely — every Propose sends
// an individual Pub, the sequencer fans out individual Seqds and separate
// Stable broadcasts, reproducing the unbatched wire exactly (the
// degenerate case the A/B benchmarks pin).
type BatchConfig struct {
	// MaxEntries flushes the queue at this many proposals (≤ 1 = off).
	MaxEntries int
	// MaxBytes flushes the queue at this many queued body bytes
	// (default 256 KiB; stays well under the transport's frame cap).
	MaxBytes int
	// MaxDelay bounds how long a queued proposal waits for company
	// (default 1ms — the live loop's timer floor). It also bounds the
	// sequencer's Stable piggyback: if no SeqdBatch goes out within
	// MaxDelay of the frontier advancing, Stable is broadcast alone.
	MaxDelay time.Duration
}

// AckConfig coalesces the member→sequencer delivery acks. Acks are
// cumulative, so one ack covering B entries carries exactly the
// information of B per-entry acks — the unbatched wire's ack-per-Seqd is
// pure storm. Every ≤ 1 keeps the legacy ack-per-delivery behavior.
type AckConfig struct {
	// Every sends the cumulative ack once this many deliveries are
	// unacknowledged.
	Every int
	// Delay bounds how long a delivery waits unacknowledged when the
	// count cap is not reached (default 1ms).
	Delay time.Duration
}

// Config wires a Broadcaster to its application. All callbacks run on
// the node's event loop.
type Config struct {
	// Deliver applies one message in total order. Exactly-once per
	// (Origin, PubID): a message redelivered by state transfer after a
	// view change is deduplicated before it reaches Deliver.
	Deliver func(Msg)
	// Observe, when set, sees every order position this member processes
	// — applied or deduplicated — in order. Checkers use it to compare
	// the per-view command sequence across members independently of who
	// had already applied what before the view change.
	Observe func(m Msg, applied bool)
	// Snapshot captures the application state for joiner state transfer;
	// Restore installs such a snapshot on a fresh member. Leaving them
	// nil means joiners start from empty state (tests only).
	Snapshot func() []byte
	Restore  func([]byte)
	// MaxBuffered caps the messages parked for views this member has not
	// installed yet (default 4096); beyond it new arrivals are dropped
	// and counted (senders recover by the usual resubmission paths).
	MaxBuffered int
	// Batch enables group commit (see BatchConfig). The zero value is
	// the unbatched legacy wire.
	Batch BatchConfig
	// Ack coalesces delivery acks (see AckConfig). The zero value acks
	// every delivery immediately, the legacy behavior.
	Ack AckConfig
}

// Stats counts a Broadcaster's work; fields are atomics so tests and
// benches can read them from any goroutine.
type Stats struct {
	Sequenced       atomic.Uint64 // entries sequenced here (as coordinator)
	Processed       atomic.Uint64 // order positions processed
	Applied         atomic.Uint64 // messages delivered to the app
	BufferedFuture  atomic.Uint64 // messages parked for a future view
	DroppedStale    atomic.Uint64 // old-view messages dropped
	DroppedOverflow atomic.Uint64 // future-view messages dropped at cap
	// OverflowDist buckets the overflow drops by how many views past the
	// current one the dropped frame was addressed to: 1, 2, 3, ≥4.
	// Eviction is farthest-future-first, so under a churn storm the mass
	// should sit in the high buckets — drops at distance 1 starving a
	// pending install's ViewSync are the bias this histogram makes
	// visible. Frames dropped before the first install (no reference
	// view) count in the first bucket.
	OverflowDist [4]atomic.Uint64
	Resubmits    atomic.Uint64 // pubs resubmitted after a view change
	Syncs        atomic.Uint64 // ViewSync rounds completed here

	PubBatches  atomic.Uint64 // PubBatch flushes sent as origin
	SeqdBatches atomic.Uint64 // SeqdBatch fan-outs sent as sequencer
	// BatchHist buckets the sequenced batch sizes (entries per
	// SeqdBatch): 1, 2–4, 5–16, 17–64, ≥65.
	BatchHist [5]atomic.Uint64

	AcksSent       atomic.Uint64 // cumulative AckSeq frames sent
	AcksSuppressed atomic.Uint64 // deliveries that deferred instead of acking

	StablePiggybacked atomic.Uint64 // frontier advances carried by a SeqdBatch
	StableBroadcasts  atomic.Uint64 // standalone Stable fan-outs

	Fences          atomic.Uint64 // read fences registered
	FencesImmediate atomic.Uint64 // fences satisfied without waiting
}

// StatsSnapshot is a plain-value copy of Stats, addable across a group's
// replicas (the root API surfaces the aggregate like TransportStats).
type StatsSnapshot struct {
	Sequenced, Processed, Applied       uint64
	BufferedFuture                      uint64
	DroppedStale, DroppedOverflow       uint64
	OverflowDist                        [4]uint64
	Resubmits, Syncs                    uint64
	PubBatches, SeqdBatches             uint64
	BatchHist                           [5]uint64
	AcksSent, AcksSuppressed            uint64
	StablePiggybacked, StableBroadcasts uint64
	Fences, FencesImmediate             uint64
}

// Snapshot reads every counter once.
func (s *Stats) Snapshot() StatsSnapshot {
	out := StatsSnapshot{
		Sequenced: s.Sequenced.Load(), Processed: s.Processed.Load(), Applied: s.Applied.Load(),
		BufferedFuture: s.BufferedFuture.Load(),
		DroppedStale:   s.DroppedStale.Load(), DroppedOverflow: s.DroppedOverflow.Load(),
		Resubmits: s.Resubmits.Load(), Syncs: s.Syncs.Load(),
		PubBatches: s.PubBatches.Load(), SeqdBatches: s.SeqdBatches.Load(),
		AcksSent: s.AcksSent.Load(), AcksSuppressed: s.AcksSuppressed.Load(),
		StablePiggybacked: s.StablePiggybacked.Load(), StableBroadcasts: s.StableBroadcasts.Load(),
		Fences: s.Fences.Load(), FencesImmediate: s.FencesImmediate.Load(),
	}
	for i := range s.BatchHist {
		out.BatchHist[i] = s.BatchHist[i].Load()
	}
	for i := range s.OverflowDist {
		out.OverflowDist[i] = s.OverflowDist[i].Load()
	}
	return out
}

// Add sums two snapshots field-wise (replica-set aggregation).
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	a.Sequenced += b.Sequenced
	a.Processed += b.Processed
	a.Applied += b.Applied
	a.BufferedFuture += b.BufferedFuture
	a.DroppedStale += b.DroppedStale
	a.DroppedOverflow += b.DroppedOverflow
	for i := range a.OverflowDist {
		a.OverflowDist[i] += b.OverflowDist[i]
	}
	a.Resubmits += b.Resubmits
	a.Syncs += b.Syncs
	a.PubBatches += b.PubBatches
	a.SeqdBatches += b.SeqdBatches
	for i := range a.BatchHist {
		a.BatchHist[i] += b.BatchHist[i]
	}
	a.AcksSent += b.AcksSent
	a.AcksSuppressed += b.AcksSuppressed
	a.StablePiggybacked += b.StablePiggybacked
	a.StableBroadcasts += b.StableBroadcasts
	a.Fences += b.Fences
	a.FencesImmediate += b.FencesImmediate
	return a
}

// histBucket maps a batch size to its BatchHist bucket.
func histBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 4:
		return 1
	case n <= 16:
		return 2
	case n <= 64:
		return 3
	default:
		return 4
	}
}

// Broadcaster delivers totally-ordered messages within installed views:
// the view's coordinator sequences, every install triggers a flush
// barrier and state transfer (DESIGN.md §11), and messages for views not
// yet installed locally are buffered for redelivery. With Batch set it
// runs the group-commit wire (DESIGN.md §12): origins coalesce proposals
// into PubBatch frames, the sequencer assigns contiguous slot ranges and
// fans out SeqdBatch frames carrying the stability frontier, and members
// ack coalesced. It implements live.AppHook; attach one per node via
// live.Options.App. All state is loop-owned — only Propose and the Stats
// fields are safe from other goroutines.
type Broadcaster struct {
	n     live.AppNode
	cfg   Config
	self  ids.ProcID
	stats Stats

	batching bool // cfg.Batch.MaxEntries > 1

	installed  bool
	ver        uint64 // current installed view version
	members    []ids.ProcID
	memberSet  ids.Set
	seqID      ids.ProcID // the view's sequencer: its coordinator
	isSeq      bool
	synced     bool // this view's order is open (ViewSync processed/built)
	everSynced bool // false until first sync: a joiner, needs a snapshot

	// order state for the current view
	next    uint64           // next order position to process
	pending map[uint64]Entry // out-of-order entries (defensive; FIFO feeds us in order)
	applied map[ids.ProcID]uint64
	log     []Entry // retained entries above stable, ascending Seq
	stable  uint64

	// cross-view buffers
	future  map[uint64][]futureMsg // ver → messages parked until that install
	futureN int
	preSync []futureMsg // current-view traffic arriving before sync (defensive)
	pubHold []Pub       // pubs held while this node is the (un-synced) sequencer

	// origin state
	nextPub  uint64
	inflight map[uint64]*pubState

	// origin group-commit queue (batching only): pubIDs awaiting a flush
	pubQueue      []uint64
	pubQueueBytes int
	pubsUnseqd    int // own pubs shipped but not yet slotted (pipeline depth)
	cancelFlush   func()

	// member ack coalescing
	ackLast   uint64 // highest seq acked to the sequencer this view
	cancelAck func()

	// read fences: stability-fenced local reads (DESIGN.md §12)
	fences []fence

	// sequencer state
	seqNext      uint64
	acks         map[ids.ProcID]uint64
	flushes      map[ids.ProcID]Flush
	stableDirty  bool // frontier advanced; piggyback on the next SeqdBatch
	cancelStable func()
}

// fenceResync marks a fence awaiting the view's sync before it can be
// given a seq target.
const fenceResync = ^uint64(0)

type fence struct {
	seq uint64 // release once stable ≥ seq (current view)
	fn  func()
}

type futureMsg struct {
	from    ids.ProcID
	payload any
}

type pubState struct {
	body []byte
	done func(pubID uint64, err error)
	seq  uint64 // slot in the current view's order; 0 = unassigned
}

// New builds a Broadcaster for one node. Use it from a live.AppHookFactory:
//
//	opts.App = func(n live.AppNode) live.AppHook {
//		return broadcast.New(n, cfg)
//	}
func New(n live.AppNode, cfg Config) *Broadcaster {
	if cfg.MaxBuffered <= 0 {
		cfg.MaxBuffered = 4096
	}
	if cfg.Batch.MaxEntries > 1 {
		if cfg.Batch.MaxBytes <= 0 {
			cfg.Batch.MaxBytes = 256 << 10
		}
		if cfg.Batch.MaxDelay <= 0 {
			cfg.Batch.MaxDelay = time.Millisecond
		}
	}
	if cfg.Ack.Every > 1 && cfg.Ack.Delay <= 0 {
		cfg.Ack.Delay = time.Millisecond
	}
	return &Broadcaster{
		n:        n,
		cfg:      cfg,
		self:     n.ID(),
		batching: cfg.Batch.MaxEntries > 1,
		pending:  make(map[uint64]Entry),
		applied:  make(map[ids.ProcID]uint64),
		future:   make(map[uint64][]futureMsg),
		inflight: make(map[uint64]*pubState),
		acks:     make(map[ids.ProcID]uint64),
		flushes:  make(map[ids.ProcID]Flush),
	}
}

// StatsRef exposes the node's counters.
func (b *Broadcaster) StatsRef() *Stats { return &b.stats }

// Propose submits body for total-order delivery; safe from any
// goroutine. done runs on the node's event loop once the outcome is
// known: err == nil only after the message is *stable* — processed into
// the order by every member of some installed view — which is the moment
// no crash or view change can lose it (the bench acks clients here).
// done never fires if the node itself dies; callers own that timeout.
func (b *Broadcaster) Propose(body []byte, done func(pubID uint64, err error)) {
	b.n.Run(func() {
		b.nextPub++
		id := b.nextPub
		p := &pubState{body: body, done: done}
		b.inflight[id] = p
		if b.installed && b.synced {
			b.sendPub(id, p)
		}
		// Not synced yet: afterSync's resubmission sweep picks it up.
	})
}

// Fence runs fn on the event loop once every order position this member
// has processed so far is *stable* — processed by every member of an
// installed view. This is the read fence behind stability-fenced local
// reads: a value captured now may include entries not yet stable, so the
// caller captures first and completes at release, which places the read's
// linearization point at the capture position without ever exposing state
// a crash could still lose. Must be called on the event loop. If a view
// change intervenes, the fence re-targets to the new view's covering
// prefix (a superset of everything captured) and releases at its
// stability.
func (b *Broadcaster) Fence(fn func()) {
	b.stats.Fences.Add(1)
	if b.installed && b.synced && b.stable >= b.next-1 {
		b.stats.FencesImmediate.Add(1)
		fn()
		return
	}
	seq := fenceResync
	if b.installed && b.synced {
		seq = b.next - 1
	}
	b.fences = append(b.fences, fence{seq: seq, fn: fn})
}

func (b *Broadcaster) sendPub(id uint64, p *pubState) {
	if b.batching {
		b.enqueuePub(id, len(p.body))
		return
	}
	pub := Pub{Origin: b.self, PubID: id, Body: p.body}
	if b.isSeq {
		if b.synced {
			b.sequence(pub)
		} else {
			b.pubHold = append(b.pubHold, pub)
		}
		return
	}
	b.n.Send(b.seqID, pub)
}

// enqueuePub queues one proposal for the next group-commit flush. The
// flush is pipeline-paced, the classic group-commit discipline: ship
// immediately when this origin has nothing in flight (the batch is
// whatever accumulated — size 1 at low load, so an idle group pays no
// batching latency), let an in-flight batch absorb new arrivals, and
// flush early when a size cap trips. The timer is only a liveness
// fallback for the sequencer's ride-along queue and for pipeline state
// lost to a view change.
func (b *Broadcaster) enqueuePub(id uint64, size int) {
	b.pubQueue = append(b.pubQueue, id)
	b.pubQueueBytes += size
	if (!b.isSeq && b.pubsUnseqd == 0) ||
		len(b.pubQueue) >= b.cfg.Batch.MaxEntries || b.pubQueueBytes >= b.cfg.Batch.MaxBytes {
		b.flushPubs()
		return
	}
	if b.cancelFlush == nil {
		b.cancelFlush = b.n.After(b.cfg.Batch.MaxDelay, func() {
			b.cancelFlush = nil
			if b.installed && b.synced {
				b.flushPubs()
			}
		})
	}
}

// flushPubs drains the origin's queue into one PubBatch (or sequences it
// directly when this node is the sequencer). Queue entries that completed
// or were assigned a slot while queued are skipped.
func (b *Broadcaster) flushPubs() {
	if b.cancelFlush != nil {
		b.cancelFlush()
		b.cancelFlush = nil
	}
	if len(b.pubQueue) == 0 || !b.installed || !b.synced {
		return
	}
	items := make([]PubItem, 0, len(b.pubQueue))
	for _, id := range b.pubQueue {
		p, ok := b.inflight[id]
		if !ok || p.seq != 0 {
			continue
		}
		items = append(items, PubItem{PubID: id, Body: p.body})
	}
	b.pubQueue = b.pubQueue[:0]
	b.pubQueueBytes = 0
	if len(items) == 0 {
		return
	}
	b.stats.PubBatches.Add(1)
	if b.isSeq {
		b.sequenceBatch(b.self, items)
		return
	}
	b.pubsUnseqd += len(items)
	b.n.Send(b.seqID, PubBatch{Origin: b.self, Pubs: items})
}

// --- live.AppHook ------------------------------------------------------------

// HandleApp routes one received broadcast payload (event loop).
func (b *Broadcaster) HandleApp(from ids.ProcID, payload any) {
	switch m := payload.(type) {
	case Pub:
		b.onPub(m)
	case PubBatch:
		b.onPubBatch(m)
	case Seqd:
		if b.route(m.Ver, from, payload) {
			b.onSeqd(m)
		}
	case SeqdBatch:
		if b.route(m.Ver, from, payload) {
			b.onSeqdBatch(m)
		}
	case AckSeq:
		if b.route(m.Ver, from, payload) {
			b.onAckSeq(from, m)
		}
	case Stable:
		if b.route(m.Ver, from, payload) {
			b.onStable(m)
		}
	case Flush:
		if b.route(m.Ver, from, payload) {
			b.onFlush(from, m)
		}
	case ViewSync:
		if b.route(m.Ver, from, payload) {
			b.onViewSync(m)
		}
	}
}

// route files a view-tagged payload: current view → handle now (true);
// future view → park in the view-change buffer; past view → drop. The
// buffer preserves arrival order per view, so per-channel FIFO survives
// parking (a ViewSync always replays before the Seqds behind it).
func (b *Broadcaster) route(ver uint64, from ids.ProcID, payload any) bool {
	if b.installed && ver == b.ver {
		return true
	}
	if !b.installed || ver > b.ver {
		if b.futureN >= b.cfg.MaxBuffered {
			// Farthest-future first. Rejecting the *incoming* frame
			// regardless of version let parked far-future junk starve a
			// near-future view's ViewSync/flush traffic during a churn
			// storm — exactly the frames the next install needs to
			// replay. When the incoming frame is nearer than the
			// farthest parked view, evict one frame from that view
			// instead (its newest, preserving the survivors' FIFO
			// order); otherwise the incoming frame is the junk.
			far := b.farthestFuture()
			if far <= ver {
				b.stats.DroppedOverflow.Add(1)
				b.noteOverflow(ver)
				return false
			}
			q := b.future[far]
			if len(q) == 1 {
				delete(b.future, far)
			} else {
				b.future[far] = q[:len(q)-1]
			}
			b.futureN--
			b.stats.DroppedOverflow.Add(1)
			b.noteOverflow(far)
		}
		b.future[ver] = append(b.future[ver], futureMsg{from: from, payload: payload})
		b.futureN++
		b.stats.BufferedFuture.Add(1)
		return false
	}
	b.stats.DroppedStale.Add(1)
	return false
}

// farthestFuture returns the highest view version currently parked, or 0
// when the buffer is empty. Only called on the overflow path, so the
// linear scan over distinct parked versions is off the hot path.
func (b *Broadcaster) farthestFuture() uint64 {
	var far uint64
	for ver := range b.future {
		if ver > far {
			far = ver
		}
	}
	return far
}

// noteOverflow buckets an overflow drop by the dropped frame's view
// distance from the current view (1, 2, 3, ≥4; pre-install drops count
// as distance 1).
func (b *Broadcaster) noteOverflow(ver uint64) {
	d := uint64(1)
	if b.installed && ver > b.ver {
		d = ver - b.ver
	}
	i := int(d - 1)
	if i > len(b.stats.OverflowDist)-1 {
		i = len(b.stats.OverflowDist) - 1
	}
	b.stats.OverflowDist[i].Add(1)
}

// HandleInstall opens a new view (event loop): reset per-view state,
// offer this member's retained log to the new sequencer (the flush
// barrier), and replay anything parked for this version.
func (b *Broadcaster) HandleInstall(ver member.Version, members []ids.ProcID) {
	v := uint64(ver)
	b.installed = true
	b.ver = v
	b.members = append([]ids.ProcID(nil), members...)
	b.memberSet = ids.NewSet(members...)
	b.seqID = b.members[0]
	b.isSeq = b.seqID == b.self
	b.synced = false
	b.pending = make(map[uint64]Entry)
	b.preSync = nil
	if !b.isSeq {
		b.pubHold = nil // origins resubmit below; held pubs are stale
	}
	for _, p := range b.inflight {
		p.seq = 0 // slots are per-view; the sync re-assigns or resubmits
	}
	b.acks = make(map[ids.ProcID]uint64)
	b.flushes = make(map[ids.ProcID]Flush)

	// Group-commit state is per-view: queued pubs resubmit via afterSync,
	// pending acks and frontier piggybacks are meaningless under the new
	// version, and fences re-target once the new order is open.
	b.pubQueue = b.pubQueue[:0]
	b.pubQueueBytes = 0
	b.pubsUnseqd = 0
	b.ackLast = 0
	b.stableDirty = false
	if b.cancelFlush != nil {
		b.cancelFlush()
		b.cancelFlush = nil
	}
	if b.cancelAck != nil {
		b.cancelAck()
		b.cancelAck = nil
	}
	if b.cancelStable != nil {
		b.cancelStable()
		b.cancelStable = nil
	}
	for i := range b.fences {
		b.fences[i].seq = fenceResync
	}

	f := Flush{
		Ver:     v,
		Applied: b.appliedList(),
		Tail:    append([]Entry(nil), b.log...),
		Joining: !b.everSynced,
	}
	if b.isSeq {
		b.onFlush(b.self, f)
	} else {
		b.n.Send(b.seqID, f)
	}
	b.drainFuture(v)
}

// drainFuture replays parked messages for every version ≤ v, in arrival
// order; route re-files or drops them against the now-current view.
func (b *Broadcaster) drainFuture(v uint64) {
	vers := make([]uint64, 0, len(b.future))
	for ver := range b.future {
		if ver <= v {
			vers = append(vers, ver)
		}
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
	for _, ver := range vers {
		msgs := b.future[ver]
		delete(b.future, ver)
		b.futureN -= len(msgs)
		for _, fm := range msgs {
			b.HandleApp(fm.from, fm.payload)
		}
	}
}

// --- order processing --------------------------------------------------------

func (b *Broadcaster) onSeqd(m Seqd) {
	if !b.synced {
		b.preSync = append(b.preSync, futureMsg{from: m.Origin, payload: m})
		return
	}
	b.processEntry(Entry(m))
	if !b.isSeq {
		b.maybeAck()
	}
}

// onSeqdBatch files one contiguous slot range of the current view's
// order, acks the whole range at most once, then folds in the piggybacked
// stability frontier — the same order (entries, ack, stable) the
// unbatched wire produces with individual frames.
func (b *Broadcaster) onSeqdBatch(m SeqdBatch) {
	if !b.synced {
		b.preSync = append(b.preSync, futureMsg{payload: m})
		return
	}
	for i, it := range m.Entries {
		b.processEntry(Entry{Ver: m.Ver, Seq: m.FirstSeq + uint64(i), Origin: it.Origin, PubID: it.PubID, Body: it.Body})
	}
	if !b.isSeq {
		b.maybeAck()
	}
	if m.Stable > b.stable {
		b.setStable(m.Stable)
	}
}

// maybeAck implements ack coalescing: send the cumulative ack once Every
// deliveries are pending, otherwise hold it behind the ack timer. With
// Every ≤ 1 every delivery acks immediately (legacy).
func (b *Broadcaster) maybeAck() {
	if b.ackLast >= b.next-1 {
		return
	}
	if b.cfg.Ack.Every <= 1 || b.next-1-b.ackLast >= uint64(b.cfg.Ack.Every) {
		b.sendAck()
		return
	}
	b.stats.AcksSuppressed.Add(1)
	if b.cancelAck == nil {
		b.cancelAck = b.n.After(b.cfg.Ack.Delay, func() {
			b.cancelAck = nil
			if b.installed && b.synced && !b.isSeq && b.ackLast < b.next-1 {
				b.sendAck()
			}
		})
	}
}

func (b *Broadcaster) sendAck() {
	if b.cancelAck != nil {
		b.cancelAck()
		b.cancelAck = nil
	}
	b.ackLast = b.next - 1
	b.stats.AcksSent.Add(1)
	b.n.Send(b.seqID, AckSeq{Ver: b.ver, Seq: b.ackLast})
}

// processEntry files one entry of the current view's order, applying the
// contiguous prefix.
func (b *Broadcaster) processEntry(en Entry) {
	if en.Seq != b.next {
		if en.Seq > b.next {
			b.pending[en.Seq] = en
		}
		return
	}
	b.applyEntry(en)
	for len(b.pending) > 0 {
		nxt, ok := b.pending[b.next]
		if !ok {
			return
		}
		delete(b.pending, b.next)
		b.applyEntry(nxt)
	}
}

// applyEntry processes order position en.Seq: it always joins the
// retained log (it is part of the view's order whether or not this member
// applies it), and reaches Deliver only if this origin frontier has not
// seen it — the dedup that makes redelivery across view changes
// exactly-once.
func (b *Broadcaster) applyEntry(en Entry) {
	b.next = en.Seq + 1
	b.log = append(b.log, en)
	b.stats.Processed.Add(1)
	applied := en.PubID > b.applied[en.Origin]
	m := Msg{Ver: member.Version(en.Ver), Seq: en.Seq, Origin: en.Origin, PubID: en.PubID, Body: en.Body}
	if applied {
		b.applied[en.Origin] = en.PubID
		b.stats.Applied.Add(1)
		if b.cfg.Deliver != nil {
			b.cfg.Deliver(m)
		}
	}
	if b.cfg.Observe != nil {
		b.cfg.Observe(m, applied)
	}
	if en.Origin == b.self {
		if p, ok := b.inflight[en.PubID]; ok {
			if p.seq == 0 && b.pubsUnseqd > 0 {
				// One in-flight pub came home with its slot; once the whole
				// pipeline drains, ship the batch that accumulated meanwhile.
				if b.pubsUnseqd--; b.pubsUnseqd == 0 && len(b.pubQueue) > 0 {
					b.flushPubs()
				}
			}
			p.seq = en.Seq
		}
	}
}

func (b *Broadcaster) onStable(m Stable) {
	if !b.synced {
		b.preSync = append(b.preSync, futureMsg{payload: m})
		return
	}
	if m.Seq > b.stable {
		b.setStable(m.Seq)
	}
}

// setStable advances the stability frontier: prune the retained log,
// complete the client acks that were waiting on durability, and release
// the read fences the frontier now covers.
func (b *Broadcaster) setStable(s uint64) {
	b.stable = s
	i := 0
	for i < len(b.log) && b.log[i].Seq <= s {
		i++
	}
	b.log = append([]Entry(nil), b.log[i:]...)
	for id, p := range b.inflight {
		if p.seq != 0 && p.seq <= s {
			delete(b.inflight, id)
			if p.done != nil {
				p.done(id, nil)
			}
		}
	}
	if len(b.fences) > 0 {
		keep := b.fences[:0]
		for _, f := range b.fences {
			if f.seq <= s {
				f.fn()
			} else {
				keep = append(keep, f)
			}
		}
		b.fences = keep
	}
}

// --- sequencer ---------------------------------------------------------------

func (b *Broadcaster) onPub(p Pub) {
	if b.installed && b.isSeq && b.synced {
		if b.batching {
			b.sequenceBatch(p.Origin, []PubItem{{PubID: p.PubID, Body: p.Body}})
			b.flushOwnAlong()
		} else {
			b.sequence(p)
		}
		return
	}
	b.holdPub(p)
}

func (b *Broadcaster) onPubBatch(pb PubBatch) {
	if b.installed && b.isSeq && b.synced {
		b.sequenceBatch(pb.Origin, pb.Pubs)
		b.flushOwnAlong()
		return
	}
	for _, it := range pb.Pubs {
		b.holdPub(Pub{Origin: pb.Origin, PubID: it.PubID, Body: it.Body})
	}
}

// flushOwnAlong paces the sequencer's own group-commit queue off the
// traffic it sequences for everyone else: whenever a remote batch comes
// through, the queued local pubs ride out right behind it. The sequencer
// has no in-flight pipeline to pace by (it slots its own pubs the moment
// they flush), so without this only the size caps or the fallback timer
// would ship its queue.
func (b *Broadcaster) flushOwnAlong() {
	if len(b.pubQueue) > 0 {
		b.flushPubs()
	}
}

// holdPub parks a pub: this node may be (or become) the sequencer
// mid-sync. Pubs held across a view change where it is not are discarded
// — origins resubmit on their own installs.
func (b *Broadcaster) holdPub(p Pub) {
	if len(b.pubHold) < b.cfg.MaxBuffered {
		b.pubHold = append(b.pubHold, p)
	} else {
		b.stats.DroppedOverflow.Add(1)
	}
}

// sequence assigns the next order slot to a fresh pub and fans it out as
// an individual Seqd — the unbatched wire. The per-origin frontier is a
// complete duplicate filter: pubs arrive and are re-submitted in PubID
// order, so each origin's sequenced set is always a PubID prefix and one
// max suffices.
func (b *Broadcaster) sequence(p Pub) {
	if p.PubID <= b.applied[p.Origin] {
		return // duplicate (resubmission raced the original)
	}
	en := Entry{Ver: b.ver, Seq: b.seqNext, Origin: p.Origin, PubID: p.PubID, Body: p.Body}
	b.seqNext++
	b.stats.Sequenced.Add(1)
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, Seqd(en))
		}
	}
	b.processEntry(en)
	b.noteAck(b.self, b.next-1)
}

// sequenceBatch is the group-commit sequencing step: filter duplicates,
// assign one contiguous slot range to everything fresh, and fan the range
// out as a single SeqdBatch carrying the current stability frontier.
func (b *Broadcaster) sequenceBatch(origin ids.ProcID, items []PubItem) {
	// Items arrive in PubID order (FIFO channels, sorted resubmission),
	// so one frontier comparison per item is a complete duplicate filter,
	// and filtering first keeps the assigned range contiguous.
	keep := 0
	for _, it := range items {
		if it.PubID > b.applied[origin] {
			items[keep] = it
			keep++
		}
	}
	if keep == 0 {
		return
	}
	first := b.seqNext
	ents := make([]SeqdItem, keep)
	for i, it := range items[:keep] {
		ents[i] = SeqdItem{Origin: origin, PubID: it.PubID, Body: it.Body}
	}
	b.seqNext += uint64(keep)
	b.stats.Sequenced.Add(uint64(keep))
	b.stats.SeqdBatches.Add(1)
	b.stats.BatchHist[histBucket(keep)].Add(1)
	if b.stableDirty {
		b.stableDirty = false
		if b.cancelStable != nil {
			b.cancelStable()
			b.cancelStable = nil
		}
		b.stats.StablePiggybacked.Add(1)
	}
	sb := SeqdBatch{Ver: b.ver, FirstSeq: first, Stable: b.stable, Entries: ents}
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, sb)
		}
	}
	for i, it := range ents {
		b.processEntry(Entry{Ver: b.ver, Seq: first + uint64(i), Origin: origin, PubID: it.PubID, Body: it.Body})
	}
	b.noteAck(b.self, b.next-1)
}

func (b *Broadcaster) onAckSeq(from ids.ProcID, m AckSeq) {
	if !b.isSeq || !b.synced || !b.memberSet.Has(from) {
		return
	}
	b.noteAck(from, m.Seq)
}

func (b *Broadcaster) noteAck(from ids.ProcID, s uint64) {
	if s > b.acks[from] {
		b.acks[from] = s
	}
	b.advanceStable()
}

// advanceStable recomputes the stability frontier: the minimum contiguous
// ack over every member of the view. Crossing it triggers the Stable
// fan-out that lets everyone prune and ack — broadcast immediately on the
// unbatched wire, piggybacked on the next SeqdBatch under group commit
// (with a MaxDelay timer so a quiescent group still learns it).
func (b *Broadcaster) advanceStable() {
	min := ^uint64(0)
	for _, m := range b.members {
		if a := b.acks[m]; a < min {
			min = a
		}
	}
	if min == ^uint64(0) || min <= b.stable {
		return
	}
	b.setStable(min)
	if !b.batching {
		b.broadcastStable()
		return
	}
	b.stableDirty = true
	if b.cancelStable == nil {
		b.cancelStable = b.n.After(b.cfg.Batch.MaxDelay, func() {
			b.cancelStable = nil
			if b.stableDirty && b.installed && b.synced && b.isSeq {
				b.stableDirty = false
				b.broadcastStable()
			}
		})
	}
}

func (b *Broadcaster) broadcastStable() {
	b.stats.StableBroadcasts.Add(1)
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, Stable{Ver: b.ver, Seq: b.stable})
		}
	}
}

// --- flush + state transfer --------------------------------------------------

func (b *Broadcaster) onFlush(from ids.ProcID, f Flush) {
	if !b.isSeq || b.synced || !b.memberSet.Has(from) {
		return
	}
	b.flushes[from] = f
	if len(b.flushes) == len(b.members) {
		b.buildSync()
	}
}

// buildSync is the sequencer's install step, run once every member's
// flush is in: union the tails, re-sequence them as the new view's
// opening order, adopt it locally, and fan out the ViewSync that opens
// the view for everyone else.
func (b *Broadcaster) buildSync() {
	type key struct {
		o  ids.ProcID
		id uint64
	}
	floor := make(map[ids.ProcID]uint64)
	best := make(map[key]Entry)
	anyJoin := false
	for _, f := range b.flushes {
		if f.Joining {
			anyJoin = true
		}
		for _, a := range f.Applied {
			if a.Max > floor[a.Origin] {
				floor[a.Origin] = a.Max
			}
		}
		for _, en := range f.Tail {
			k := key{en.Origin, en.PubID}
			// Keep the occurrence sequenced latest: a member that synced
			// a later view holds a superset of every earlier tail, and
			// its ordering is the authoritative extension.
			if cur, ok := best[k]; !ok || en.Ver > cur.Ver || (en.Ver == cur.Ver && en.Seq > cur.Seq) {
				best[k] = en
			}
		}
	}
	ents := make([]Entry, 0, len(best))
	for _, en := range best {
		ents = append(ents, en)
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Ver != ents[j].Ver {
			return ents[i].Ver < ents[j].Ver
		}
		return ents[i].Seq < ents[j].Seq
	})
	order := make([]Entry, len(ents))
	for i, en := range ents {
		en.Ver, en.Seq = b.ver, uint64(i+1)
		order[i] = en
	}

	// Adopt the order locally: catch up on whatever this node had not
	// applied, then fold in the flushed frontiers (they only describe
	// stable history every survivor — including this node — already holds).
	b.next = 1
	b.log = nil
	b.stable = 0
	b.pending = make(map[uint64]Entry)
	b.synced = true
	b.everSynced = true
	b.stats.Syncs.Add(1)
	for _, en := range order {
		b.processEntry(en)
	}
	for o, mx := range floor {
		if mx > b.applied[o] {
			b.applied[o] = mx
		}
	}

	vs := ViewSync{Ver: b.ver, Applied: b.appliedList(), Entries: order}
	if anyJoin && b.cfg.Snapshot != nil {
		vs.Snapshot = b.cfg.Snapshot()
		vs.HasSnap = true
	}
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, vs)
		}
	}
	b.seqNext = uint64(len(order)) + 1
	b.acks = map[ids.ProcID]uint64{b.self: b.next - 1}
	b.afterSync()
	b.advanceStable() // a single-member view is stable immediately
}

func (b *Broadcaster) onViewSync(m ViewSync) {
	if b.isSeq || b.synced {
		return
	}
	b.next = 1
	b.log = nil
	b.stable = 0
	b.pending = make(map[uint64]Entry)
	b.synced = true
	wasJoiner := !b.everSynced
	b.everSynced = true
	b.stats.Syncs.Add(1)
	if wasJoiner {
		// The snapshot already contains every entry the frontiers cover,
		// so adopting them first makes the replay below skip exactly the
		// entries the snapshot holds.
		if m.HasSnap && b.cfg.Restore != nil {
			b.cfg.Restore(m.Snapshot)
		}
		b.applied = appliedMap(m.Applied)
	}
	for _, en := range m.Entries {
		b.processEntry(en)
	}
	// Fold in the stable-history floor only AFTER replaying the order:
	// merging first would mark the catch-up entries already-seen and a
	// survivor would silently skip applying them.
	for _, a := range m.Applied {
		if a.Max > b.applied[a.Origin] {
			b.applied[a.Origin] = a.Max
		}
	}
	b.afterSync()
	b.ackLast = b.next - 1
	b.stats.AcksSent.Add(1)
	b.n.Send(b.seqID, AckSeq{Ver: b.ver, Seq: b.ackLast})
}

// afterSync resolves this origin's in-flight pubs against the freshly
// opened order: re-assigned ones wait for stability, stable-historical
// ones complete now, lost ones resubmit — the at-least-once loop that,
// with the sequencer's duplicate filter, yields exactly-once. It then
// re-targets read fences to the new view's covering prefix and flushes
// the group-commit queue the resubmissions refilled.
func (b *Broadcaster) afterSync() {
	ordered := make([]uint64, 0, len(b.inflight))
	for id := range b.inflight {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	selfFloor := b.applied[b.self]
	for _, id := range ordered {
		p := b.inflight[id]
		switch {
		case p.seq != 0:
			// Carried into this view's order; completes at stability.
		case id <= selfFloor:
			// Below the applied floor yet absent from the order: it is
			// stable history from an earlier view — already durable.
			delete(b.inflight, id)
			if p.done != nil {
				p.done(id, nil)
			}
		default:
			b.stats.Resubmits.Add(1)
			b.sendPub(id, p)
		}
	}
	if b.isSeq {
		hold := b.pubHold
		b.pubHold = nil
		for _, p := range hold {
			if b.batching {
				b.sequenceBatch(p.Origin, []PubItem{{PubID: p.PubID, Body: p.Body}})
			} else {
				b.sequence(p)
			}
		}
	}
	pre := b.preSync
	b.preSync = nil
	for _, fm := range pre {
		b.HandleApp(fm.from, fm.payload)
	}
	// Fences registered before (or during) the change now cover at most
	// the new view's processed prefix: re-target and release what the
	// (reset) frontier already covers.
	if len(b.fences) > 0 {
		target := b.next - 1
		if b.stable >= target {
			fences := b.fences
			b.fences = nil
			for _, f := range fences {
				f.fn()
			}
		} else {
			for i := range b.fences {
				b.fences[i].seq = target
			}
		}
	}
	b.flushPubs()
}

func (b *Broadcaster) appliedList() []Applied {
	out := make([]Applied, 0, len(b.applied))
	for o, mx := range b.applied {
		out = append(out, Applied{Origin: o, Max: mx})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin.Less(out[j].Origin) })
	return out
}

func appliedMap(list []Applied) map[ids.ProcID]uint64 {
	m := make(map[ids.ProcID]uint64, len(list))
	for _, a := range list {
		if a.Max > m[a.Origin] {
			m[a.Origin] = a.Max
		}
	}
	return m
}
