package broadcast

import (
	"sort"
	"sync/atomic"

	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
)

// Msg is one position of a view's total order as this member processed
// it: the (Ver, Seq) it holds locally, the origin's identity and pub
// counter, and the application body. A message re-sequenced across a view
// change keeps its (Origin, PubID) — that pair is its global identity —
// while (Ver, Seq) names its slot in the order of the view that carried
// it here.
type Msg struct {
	Ver    member.Version
	Seq    uint64
	Origin ids.ProcID
	PubID  uint64
	Body   []byte
}

// Config wires a Broadcaster to its application. All callbacks run on
// the node's event loop.
type Config struct {
	// Deliver applies one message in total order. Exactly-once per
	// (Origin, PubID): a message redelivered by state transfer after a
	// view change is deduplicated before it reaches Deliver.
	Deliver func(Msg)
	// Observe, when set, sees every order position this member processes
	// — applied or deduplicated — in order. Checkers use it to compare
	// the per-view command sequence across members independently of who
	// had already applied what before the view change.
	Observe func(m Msg, applied bool)
	// Snapshot captures the application state for joiner state transfer;
	// Restore installs such a snapshot on a fresh member. Leaving them
	// nil means joiners start from empty state (tests only).
	Snapshot func() []byte
	Restore  func([]byte)
	// MaxBuffered caps the messages parked for views this member has not
	// installed yet (default 4096); beyond it new arrivals are dropped
	// and counted (senders recover by the usual resubmission paths).
	MaxBuffered int
}

// Stats counts a Broadcaster's work; fields are atomics so tests and
// benches can read them from any goroutine.
type Stats struct {
	Sequenced       atomic.Uint64 // entries sequenced here (as coordinator)
	Processed       atomic.Uint64 // order positions processed
	Applied         atomic.Uint64 // messages delivered to the app
	BufferedFuture  atomic.Uint64 // messages parked for a future view
	DroppedStale    atomic.Uint64 // old-view messages dropped
	DroppedOverflow atomic.Uint64 // future-view messages dropped at cap
	Resubmits       atomic.Uint64 // pubs resubmitted after a view change
	Syncs           atomic.Uint64 // ViewSync rounds completed here
}

// Broadcaster delivers totally-ordered messages within installed views:
// the view's coordinator sequences, every install triggers a flush
// barrier and state transfer (DESIGN.md §11), and messages for views not
// yet installed locally are buffered for redelivery. It implements
// live.AppHook; attach one per node via live.Options.App. All state is
// loop-owned — only Propose and the Stats fields are safe from other
// goroutines.
type Broadcaster struct {
	n     live.AppNode
	cfg   Config
	self  ids.ProcID
	stats Stats

	installed  bool
	ver        uint64 // current installed view version
	members    []ids.ProcID
	memberSet  ids.Set
	seqID      ids.ProcID // the view's sequencer: its coordinator
	isSeq      bool
	synced     bool // this view's order is open (ViewSync processed/built)
	everSynced bool // false until first sync: a joiner, needs a snapshot

	// order state for the current view
	next    uint64           // next order position to process
	pending map[uint64]Entry // out-of-order entries (defensive; FIFO feeds us in order)
	applied map[ids.ProcID]uint64
	log     []Entry // retained entries above stable, ascending Seq
	stable  uint64

	// cross-view buffers
	future  map[uint64][]futureMsg // ver → messages parked until that install
	futureN int
	preSync []futureMsg // current-view traffic arriving before sync (defensive)
	pubHold []Pub       // pubs held while this node is the (un-synced) sequencer

	// origin state
	nextPub  uint64
	inflight map[uint64]*pubState

	// sequencer state
	seqNext uint64
	acks    map[ids.ProcID]uint64
	flushes map[ids.ProcID]Flush
}

type futureMsg struct {
	from    ids.ProcID
	payload any
}

type pubState struct {
	body []byte
	done func(pubID uint64, err error)
	seq  uint64 // slot in the current view's order; 0 = unassigned
}

// New builds a Broadcaster for one node. Use it from a live.AppHookFactory:
//
//	opts.App = func(n live.AppNode) live.AppHook {
//		return broadcast.New(n, cfg)
//	}
func New(n live.AppNode, cfg Config) *Broadcaster {
	if cfg.MaxBuffered <= 0 {
		cfg.MaxBuffered = 4096
	}
	return &Broadcaster{
		n:        n,
		cfg:      cfg,
		self:     n.ID(),
		pending:  make(map[uint64]Entry),
		applied:  make(map[ids.ProcID]uint64),
		future:   make(map[uint64][]futureMsg),
		inflight: make(map[uint64]*pubState),
		acks:     make(map[ids.ProcID]uint64),
		flushes:  make(map[ids.ProcID]Flush),
	}
}

// Stats exposes the node's counters.
func (b *Broadcaster) StatsRef() *Stats { return &b.stats }

// Propose submits body for total-order delivery; safe from any
// goroutine. done runs on the node's event loop once the outcome is
// known: err == nil only after the message is *stable* — processed into
// the order by every member of some installed view — which is the moment
// no crash or view change can lose it (the bench acks clients here).
// done never fires if the node itself dies; callers own that timeout.
func (b *Broadcaster) Propose(body []byte, done func(pubID uint64, err error)) {
	b.n.Run(func() {
		b.nextPub++
		id := b.nextPub
		p := &pubState{body: body, done: done}
		b.inflight[id] = p
		if b.installed && b.synced {
			b.sendPub(id, p)
		}
		// Not synced yet: afterSync's resubmission sweep picks it up.
	})
}

func (b *Broadcaster) sendPub(id uint64, p *pubState) {
	pub := Pub{Origin: b.self, PubID: id, Body: p.body}
	if b.isSeq {
		if b.synced {
			b.sequence(pub)
		} else {
			b.pubHold = append(b.pubHold, pub)
		}
		return
	}
	b.n.Send(b.seqID, pub)
}

// --- live.AppHook ------------------------------------------------------------

// HandleApp routes one received broadcast payload (event loop).
func (b *Broadcaster) HandleApp(from ids.ProcID, payload any) {
	switch m := payload.(type) {
	case Pub:
		b.onPub(m)
	case Seqd:
		if b.route(m.Ver, from, payload) {
			b.onSeqd(m)
		}
	case AckSeq:
		if b.route(m.Ver, from, payload) {
			b.onAckSeq(from, m)
		}
	case Stable:
		if b.route(m.Ver, from, payload) {
			b.onStable(m)
		}
	case Flush:
		if b.route(m.Ver, from, payload) {
			b.onFlush(from, m)
		}
	case ViewSync:
		if b.route(m.Ver, from, payload) {
			b.onViewSync(m)
		}
	}
}

// route files a view-tagged payload: current view → handle now (true);
// future view → park in the view-change buffer; past view → drop. The
// buffer preserves arrival order per view, so per-channel FIFO survives
// parking (a ViewSync always replays before the Seqds behind it).
func (b *Broadcaster) route(ver uint64, from ids.ProcID, payload any) bool {
	if b.installed && ver == b.ver {
		return true
	}
	if !b.installed || ver > b.ver {
		if b.futureN >= b.cfg.MaxBuffered {
			b.stats.DroppedOverflow.Add(1)
			return false
		}
		b.future[ver] = append(b.future[ver], futureMsg{from: from, payload: payload})
		b.futureN++
		b.stats.BufferedFuture.Add(1)
		return false
	}
	b.stats.DroppedStale.Add(1)
	return false
}

// HandleInstall opens a new view (event loop): reset per-view state,
// offer this member's retained log to the new sequencer (the flush
// barrier), and replay anything parked for this version.
func (b *Broadcaster) HandleInstall(ver member.Version, members []ids.ProcID) {
	v := uint64(ver)
	b.installed = true
	b.ver = v
	b.members = append([]ids.ProcID(nil), members...)
	b.memberSet = ids.NewSet(members...)
	b.seqID = b.members[0]
	b.isSeq = b.seqID == b.self
	b.synced = false
	b.pending = make(map[uint64]Entry)
	b.preSync = nil
	if !b.isSeq {
		b.pubHold = nil // origins resubmit below; held pubs are stale
	}
	for _, p := range b.inflight {
		p.seq = 0 // slots are per-view; the sync re-assigns or resubmits
	}
	b.acks = make(map[ids.ProcID]uint64)
	b.flushes = make(map[ids.ProcID]Flush)

	f := Flush{
		Ver:     v,
		Applied: b.appliedList(),
		Tail:    append([]Entry(nil), b.log...),
		Joining: !b.everSynced,
	}
	if b.isSeq {
		b.onFlush(b.self, f)
	} else {
		b.n.Send(b.seqID, f)
	}
	b.drainFuture(v)
}

// drainFuture replays parked messages for every version ≤ v, in arrival
// order; route re-files or drops them against the now-current view.
func (b *Broadcaster) drainFuture(v uint64) {
	vers := make([]uint64, 0, len(b.future))
	for ver := range b.future {
		if ver <= v {
			vers = append(vers, ver)
		}
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
	for _, ver := range vers {
		msgs := b.future[ver]
		delete(b.future, ver)
		b.futureN -= len(msgs)
		for _, fm := range msgs {
			b.HandleApp(fm.from, fm.payload)
		}
	}
}

// --- order processing --------------------------------------------------------

func (b *Broadcaster) onSeqd(m Seqd) {
	if !b.synced {
		b.preSync = append(b.preSync, futureMsg{from: m.Origin, payload: m})
		return
	}
	b.processEntry(Entry(m))
	if !b.isSeq {
		b.n.Send(b.seqID, AckSeq{Ver: b.ver, Seq: b.next - 1})
	}
}

// processEntry files one entry of the current view's order, applying the
// contiguous prefix.
func (b *Broadcaster) processEntry(en Entry) {
	if en.Seq != b.next {
		if en.Seq > b.next {
			b.pending[en.Seq] = en
		}
		return
	}
	b.applyEntry(en)
	for {
		nxt, ok := b.pending[b.next]
		if !ok {
			return
		}
		delete(b.pending, b.next)
		b.applyEntry(nxt)
	}
}

// applyEntry processes order position en.Seq: it always joins the
// retained log (it is part of the view's order whether or not this member
// applies it), and reaches Deliver only if this origin frontier has not
// seen it — the dedup that makes redelivery across view changes
// exactly-once.
func (b *Broadcaster) applyEntry(en Entry) {
	b.next = en.Seq + 1
	b.log = append(b.log, en)
	b.stats.Processed.Add(1)
	applied := en.PubID > b.applied[en.Origin]
	m := Msg{Ver: member.Version(en.Ver), Seq: en.Seq, Origin: en.Origin, PubID: en.PubID, Body: en.Body}
	if applied {
		b.applied[en.Origin] = en.PubID
		b.stats.Applied.Add(1)
		if b.cfg.Deliver != nil {
			b.cfg.Deliver(m)
		}
	}
	if b.cfg.Observe != nil {
		b.cfg.Observe(m, applied)
	}
	if en.Origin == b.self {
		if p, ok := b.inflight[en.PubID]; ok {
			p.seq = en.Seq
		}
	}
}

func (b *Broadcaster) onStable(m Stable) {
	if !b.synced {
		b.preSync = append(b.preSync, futureMsg{payload: m})
		return
	}
	if m.Seq > b.stable {
		b.setStable(m.Seq)
	}
}

// setStable advances the stability frontier: prune the retained log and
// complete the client acks that were waiting on durability.
func (b *Broadcaster) setStable(s uint64) {
	b.stable = s
	i := 0
	for i < len(b.log) && b.log[i].Seq <= s {
		i++
	}
	b.log = append([]Entry(nil), b.log[i:]...)
	for id, p := range b.inflight {
		if p.seq != 0 && p.seq <= s {
			delete(b.inflight, id)
			if p.done != nil {
				p.done(id, nil)
			}
		}
	}
}

// --- sequencer ---------------------------------------------------------------

func (b *Broadcaster) onPub(p Pub) {
	if b.installed && b.isSeq && b.synced {
		b.sequence(p)
		return
	}
	// Hold: this node may be (or become) the sequencer mid-sync. Pubs
	// held across a view change where it is not are discarded — origins
	// resubmit on their own installs.
	if len(b.pubHold) < b.cfg.MaxBuffered {
		b.pubHold = append(b.pubHold, p)
	} else {
		b.stats.DroppedOverflow.Add(1)
	}
}

// sequence assigns the next order slot to a fresh pub and fans it out.
// The per-origin frontier is a complete duplicate filter: pubs arrive and
// are re-submitted in PubID order, so each origin's sequenced set is
// always a PubID prefix and one max suffices.
func (b *Broadcaster) sequence(p Pub) {
	if p.PubID <= b.applied[p.Origin] {
		return // duplicate (resubmission raced the original)
	}
	en := Entry{Ver: b.ver, Seq: b.seqNext, Origin: p.Origin, PubID: p.PubID, Body: p.Body}
	b.seqNext++
	b.stats.Sequenced.Add(1)
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, Seqd(en))
		}
	}
	b.processEntry(en)
	b.noteAck(b.self, b.next-1)
}

func (b *Broadcaster) onAckSeq(from ids.ProcID, m AckSeq) {
	if !b.isSeq || !b.synced || !b.memberSet.Has(from) {
		return
	}
	b.noteAck(from, m.Seq)
}

func (b *Broadcaster) noteAck(from ids.ProcID, s uint64) {
	if s > b.acks[from] {
		b.acks[from] = s
	}
	b.advanceStable()
}

// advanceStable recomputes the stability frontier: the minimum contiguous
// ack over every member of the view. Crossing it triggers the Stable
// fan-out that lets everyone prune and ack.
func (b *Broadcaster) advanceStable() {
	min := ^uint64(0)
	for _, m := range b.members {
		if a := b.acks[m]; a < min {
			min = a
		}
	}
	if min == ^uint64(0) || min <= b.stable {
		return
	}
	b.setStable(min)
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, Stable{Ver: b.ver, Seq: min})
		}
	}
}

// --- flush + state transfer --------------------------------------------------

func (b *Broadcaster) onFlush(from ids.ProcID, f Flush) {
	if !b.isSeq || b.synced || !b.memberSet.Has(from) {
		return
	}
	b.flushes[from] = f
	if len(b.flushes) == len(b.members) {
		b.buildSync()
	}
}

// buildSync is the sequencer's install step, run once every member's
// flush is in: union the tails, re-sequence them as the new view's
// opening order, adopt it locally, and fan out the ViewSync that opens
// the view for everyone else.
func (b *Broadcaster) buildSync() {
	type key struct {
		o  ids.ProcID
		id uint64
	}
	floor := make(map[ids.ProcID]uint64)
	best := make(map[key]Entry)
	anyJoin := false
	for _, f := range b.flushes {
		if f.Joining {
			anyJoin = true
		}
		for _, a := range f.Applied {
			if a.Max > floor[a.Origin] {
				floor[a.Origin] = a.Max
			}
		}
		for _, en := range f.Tail {
			k := key{en.Origin, en.PubID}
			// Keep the occurrence sequenced latest: a member that synced
			// a later view holds a superset of every earlier tail, and
			// its ordering is the authoritative extension.
			if cur, ok := best[k]; !ok || en.Ver > cur.Ver || (en.Ver == cur.Ver && en.Seq > cur.Seq) {
				best[k] = en
			}
		}
	}
	ents := make([]Entry, 0, len(best))
	for _, en := range best {
		ents = append(ents, en)
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Ver != ents[j].Ver {
			return ents[i].Ver < ents[j].Ver
		}
		return ents[i].Seq < ents[j].Seq
	})
	order := make([]Entry, len(ents))
	for i, en := range ents {
		en.Ver, en.Seq = b.ver, uint64(i+1)
		order[i] = en
	}

	// Adopt the order locally: catch up on whatever this node had not
	// applied, then fold in the flushed frontiers (they only describe
	// stable history every survivor — including this node — already holds).
	b.next = 1
	b.log = nil
	b.stable = 0
	b.pending = make(map[uint64]Entry)
	b.synced = true
	b.everSynced = true
	b.stats.Syncs.Add(1)
	for _, en := range order {
		b.processEntry(en)
	}
	for o, mx := range floor {
		if mx > b.applied[o] {
			b.applied[o] = mx
		}
	}

	vs := ViewSync{Ver: b.ver, Applied: b.appliedList(), Entries: order}
	if anyJoin && b.cfg.Snapshot != nil {
		vs.Snapshot = b.cfg.Snapshot()
		vs.HasSnap = true
	}
	for _, m := range b.members {
		if m != b.self {
			b.n.Send(m, vs)
		}
	}
	b.seqNext = uint64(len(order)) + 1
	b.acks = map[ids.ProcID]uint64{b.self: b.next - 1}
	b.afterSync()
	b.advanceStable() // a single-member view is stable immediately
}

func (b *Broadcaster) onViewSync(m ViewSync) {
	if b.isSeq || b.synced {
		return
	}
	b.next = 1
	b.log = nil
	b.stable = 0
	b.pending = make(map[uint64]Entry)
	b.synced = true
	wasJoiner := !b.everSynced
	b.everSynced = true
	b.stats.Syncs.Add(1)
	if wasJoiner {
		// The snapshot already contains every entry the frontiers cover,
		// so adopting them first makes the replay below skip exactly the
		// entries the snapshot holds.
		if m.HasSnap && b.cfg.Restore != nil {
			b.cfg.Restore(m.Snapshot)
		}
		b.applied = appliedMap(m.Applied)
	}
	for _, en := range m.Entries {
		b.processEntry(en)
	}
	// Fold in the stable-history floor only AFTER replaying the order:
	// merging first would mark the catch-up entries already-seen and a
	// survivor would silently skip applying them.
	for _, a := range m.Applied {
		if a.Max > b.applied[a.Origin] {
			b.applied[a.Origin] = a.Max
		}
	}
	b.afterSync()
	b.n.Send(b.seqID, AckSeq{Ver: b.ver, Seq: b.next - 1})
}

// afterSync resolves this origin's in-flight pubs against the freshly
// opened order: re-assigned ones wait for stability, stable-historical
// ones complete now, lost ones resubmit — the at-least-once loop that,
// with the sequencer's duplicate filter, yields exactly-once.
func (b *Broadcaster) afterSync() {
	ordered := make([]uint64, 0, len(b.inflight))
	for id := range b.inflight {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	selfFloor := b.applied[b.self]
	for _, id := range ordered {
		p := b.inflight[id]
		switch {
		case p.seq != 0:
			// Carried into this view's order; completes at stability.
		case id <= selfFloor:
			// Below the applied floor yet absent from the order: it is
			// stable history from an earlier view — already durable.
			delete(b.inflight, id)
			if p.done != nil {
				p.done(id, nil)
			}
		default:
			b.stats.Resubmits.Add(1)
			b.sendPub(id, p)
		}
	}
	if b.isSeq {
		hold := b.pubHold
		b.pubHold = nil
		for _, p := range hold {
			b.sequence(p)
		}
	}
	pre := b.preSync
	b.preSync = nil
	for _, fm := range pre {
		b.HandleApp(fm.from, fm.payload)
	}
}

func (b *Broadcaster) appliedList() []Applied {
	out := make([]Applied, 0, len(b.applied))
	for o, mx := range b.applied {
		out = append(out, Applied{Origin: o, Max: mx})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin.Less(out[j].Origin) })
	return out
}

func appliedMap(list []Applied) map[ids.ProcID]uint64 {
	m := make(map[ids.ProcID]uint64, len(list))
	for _, a := range list {
		if a.Max > m[a.Origin] {
			m[a.Origin] = a.Max
		}
	}
	return m
}
