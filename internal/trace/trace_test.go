package trace

import (
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

func TestHistoriesGetSeqNumbers(t *testing.T) {
	r := NewRecorder(nil)
	a, b := ids.Named("a"), ids.Named("b")
	r.RecordStart(a)
	r.RecordStart(b)
	r.RecordInternal(a, event.Faulty, b)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Seq != 1 || evs[2].Seq != 2 {
		t.Errorf("per-process Seq wrong: %v / %v", evs[0], evs[2])
	}
	if evs[2].Kind != event.Faulty || evs[2].Other != b {
		t.Errorf("internal event malformed: %v", evs[2])
	}
}

func TestCausalStampsAcrossMessages(t *testing.T) {
	r := NewRecorder(nil)
	a, b, c := ids.Named("a"), ids.Named("b"), ids.Named("c")
	r.RecordStart(a)
	r.RecordStart(b)
	r.RecordStart(c)
	r.RecordSend(a, b, 1, "M")
	r.RecordRecv(a, b, 1, "M")
	r.RecordSend(b, c, 2, "M")
	r.RecordRecv(b, c, 2, "M")
	evs := r.Events()
	sendA := evs[3]
	recvC := evs[6]
	if !sendA.Clock.HappensBefore(recvC.Clock) {
		t.Errorf("transitive causality lost: %v vs %v", sendA.Clock, recvC.Clock)
	}
	if recvC.Lamport <= sendA.Lamport {
		t.Errorf("lamport not monotone along chain: %d vs %d", sendA.Lamport, recvC.Lamport)
	}
}

func TestDropDoesNotPropagateCausality(t *testing.T) {
	// Property S1: a discarded message influences nobody.
	r := NewRecorder(nil)
	a, b := ids.Named("a"), ids.Named("b")
	r.RecordStart(a)
	r.RecordStart(b)
	r.RecordSend(a, b, 1, "M")
	r.RecordDrop(a, b, 1, "M")
	evs := r.Events()
	send, drop := evs[2], evs[3]
	if send.Clock.HappensBefore(drop.Clock) {
		t.Error("S1 violated: dropped message created causality")
	}
}

func TestMessageCounters(t *testing.T) {
	r := NewRecorder(nil)
	a, b := ids.Named("a"), ids.Named("b")
	r.RecordStart(a)
	r.RecordSend(a, b, 1, "Invite")
	r.RecordSend(a, b, 2, "Invite")
	r.RecordSend(a, b, 3, "Commit")
	if got := r.MessagesSent(); got != 3 {
		t.Errorf("total = %d", got)
	}
	if got := r.MessagesSent("Invite"); got != 2 {
		t.Errorf("Invite = %d", got)
	}
	if got := r.MessagesSent("Invite", "Commit"); got != 3 {
		t.Errorf("Invite+Commit = %d", got)
	}
	counts := r.CountsByLabel()
	if counts["Commit"] != 1 {
		t.Errorf("CountsByLabel = %v", counts)
	}
	counts["Commit"] = 99
	if r.CountsByLabel()["Commit"] != 1 {
		t.Error("CountsByLabel leaked internal map")
	}
}

func TestViewLog(t *testing.T) {
	r := NewRecorder(nil)
	a := ids.Named("a")
	r.RecordStart(a)
	ms := []ids.ProcID{a, ids.Named("b")}
	r.RecordInstall(a, 1, ms)
	ms[1] = ids.Named("zz") // recorder must have copied
	log := r.ViewLog(a)
	if len(log) != 1 || log[0].Ver != 1 {
		t.Fatalf("ViewLog = %v", log)
	}
	if log[0].Members[1] != ids.Named("b") {
		t.Error("RecordInstall aliased caller slice")
	}
	if r.ViewLog(ids.Named("nobody")) != nil && len(r.ViewLog(ids.Named("nobody"))) != 0 {
		t.Error("unknown proc should have empty log")
	}
}

func TestProcs(t *testing.T) {
	r := NewRecorder(nil)
	r.RecordStart(ids.Named("b"))
	r.RecordStart(ids.Named("a"))
	got := r.Procs()
	if len(got) != 2 || got[0] != ids.Named("a") || got[1] != ids.Named("b") {
		t.Errorf("Procs = %v", got)
	}
}

func TestClockSource(t *testing.T) {
	now := int64(0)
	r := NewRecorder(func() int64 { return now })
	a := ids.Named("a")
	r.RecordStart(a)
	now = 42
	r.RecordInternal(a, event.Quit, ids.Nil)
	evs := r.Events()
	if evs[0].Time != 0 || evs[1].Time != 42 {
		t.Errorf("times = %d,%d", evs[0].Time, evs[1].Time)
	}
}

func TestInstallRecordsVersion(t *testing.T) {
	r := NewRecorder(nil)
	a := ids.Named("a")
	r.RecordStart(a)
	r.RecordInstall(a, member.Version(7), []ids.ProcID{a})
	evs := r.Events()
	last := evs[len(evs)-1]
	if last.Kind != event.InstallView || last.Ver != 7 {
		t.Errorf("install event = %v", last)
	}
}
