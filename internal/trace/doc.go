// Package trace records system runs: every send, receive, and internal
// event of every process, stamped with Lamport and vector clocks. A
// recorded run is the paper's n-tuple of process histories (§2.1); the
// checker replays it to verify GMP-0..GMP-5 and the benchmark harness
// reads its message counters to reproduce the §7.2 complexity analysis.
package trace
