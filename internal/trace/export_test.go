package trace

import (
	"bytes"
	"strings"
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
)

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(nil)
	a, b := ids.Named("a"), ids.ProcID{Site: "b", Incarnation: 2}
	r.RecordStart(a)
	r.RecordStart(b)
	r.RecordInstall(a, 0, []ids.ProcID{a, b})
	r.RecordSend(a, b, 7, "Commit")
	r.RecordRecv(a, b, 7, "Commit")
	r.RecordInternal(b, event.Faulty, a)
	r.RecordDrop(a, b, 9, "OK")

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Proc != w.Proc || g.Kind != w.Kind || g.Other != w.Other ||
			g.MsgID != w.MsgID || g.Label != w.Label || g.Seq != w.Seq ||
			g.Lamport != w.Lamport || g.Ver != w.Ver {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if !g.Clock.LessEq(w.Clock) || !w.Clock.LessEq(g.Clock) {
			t.Errorf("event %d clock mismatch: %v vs %v", i, g.Clock, w.Clock)
		}
		if len(g.Members) != len(w.Members) {
			t.Errorf("event %d members mismatch: %v vs %v", i, g.Members, w.Members)
		}
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"no-such-kind","proc":"a"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{nope`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if got, err := ReadJSONL(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty input should parse to empty run, got %v, %v", got, err)
	}
}
