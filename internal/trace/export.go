package trace

// Run export/import: a recorded run serializes to JSON Lines, one event
// per line, so traces can be archived, diffed across seeds, or inspected
// with standard tooling. The format round-trips everything the checker
// needs, which makes offline re-checking of archived runs possible.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"procgroup/internal/causal"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// jsonEvent is the wire form of one event.
type jsonEvent struct {
	Index   int               `json:"i"`
	Seq     int               `json:"seq"`
	Proc    string            `json:"proc"`
	Kind    string            `json:"kind"`
	Other   string            `json:"other,omitempty"`
	MsgID   int64             `json:"msg,omitempty"`
	Label   string            `json:"label,omitempty"`
	Ver     int               `json:"ver,omitempty"`
	Level   float64           `json:"level,omitempty"`
	Members []string          `json:"members,omitempty"`
	Time    int64             `json:"t"`
	Lamport uint64            `json:"lamport"`
	Clock   map[string]uint64 `json:"vc"`
}

// kindNames maps Kind values to stable wire names and back.
var kindNames = map[event.Kind]string{
	event.Start:       "start",
	event.Send:        "send",
	event.Recv:        "recv",
	event.Drop:        "drop",
	event.Faulty:      "faulty",
	event.Operating:   "operating",
	event.Remove:      "remove",
	event.Add:         "add",
	event.InstallView: "install",
	event.Quit:        "quit",
	event.Crash:       "crash",
	event.Initiate:    "initiate",
}

var kindValues = func() map[string]event.Kind {
	m := make(map[string]event.Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSONL streams the recorded run to w as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		je := jsonEvent{
			Index:   e.Index,
			Seq:     e.Seq,
			Proc:    e.Proc.String(),
			Kind:    kindNames[e.Kind],
			MsgID:   e.MsgID,
			Label:   e.Label,
			Ver:     int(e.Ver),
			Level:   e.Level,
			Time:    e.Time,
			Lamport: e.Lamport,
			Clock:   make(map[string]uint64, len(e.Clock)),
		}
		if !e.Other.IsNil() {
			je.Other = e.Other.String()
		}
		for p, n := range e.Clock {
			je.Clock[p.String()] = n
		}
		for _, m := range e.Members {
			je.Members = append(je.Members, m.String())
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", e.Index, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a run previously written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]event.Event, error) {
	var out []event.Event
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		kind, ok := kindValues[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", len(out), je.Kind)
		}
		proc, err := ids.Parse(je.Proc)
		if err != nil {
			return nil, err
		}
		other := ids.Nil
		if je.Other != "" {
			if other, err = ids.Parse(je.Other); err != nil {
				return nil, err
			}
		}
		e := event.Event{
			Index:   je.Index,
			Seq:     je.Seq,
			Proc:    proc,
			Kind:    kind,
			Other:   other,
			MsgID:   je.MsgID,
			Label:   je.Label,
			Ver:     member.Version(je.Ver),
			Level:   je.Level,
			Time:    je.Time,
			Lamport: je.Lamport,
			Clock:   causal.New(),
		}
		for p, n := range je.Clock {
			pid, perr := ids.Parse(p)
			if perr != nil {
				return nil, perr
			}
			e.Clock[pid] = n
		}
		for _, m := range je.Members {
			pid, perr := ids.Parse(m)
			if perr != nil {
				return nil, perr
			}
			e.Members = append(e.Members, pid)
		}
		out = append(out, e)
	}
}
