package trace

import (
	"sync"

	"procgroup/internal/causal"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// ViewRecord is one entry of a process's view-installation log.
type ViewRecord struct {
	Ver     member.Version
	Members []ids.ProcID
}

// Recorder accumulates a run. It is safe for concurrent use so the live
// (goroutine) runtime can share one recorder; the simulator uses it
// single-threaded.
type Recorder struct {
	mu      sync.Mutex
	clock   func() int64
	events  []event.Event
	vcs     map[ids.ProcID]causal.VC
	lamport map[ids.ProcID]uint64
	inFly   map[int64]stamp
	counts  map[string]int
	sent    int
	views   map[ids.ProcID][]ViewRecord
	hist    map[ids.ProcID]int
}

type stamp struct {
	vc      causal.VC
	lamport uint64
}

// NewRecorder builds a recorder; clock supplies event times (virtual or
// wall). A nil clock records zero times.
func NewRecorder(clock func() int64) *Recorder {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Recorder{
		clock:   clock,
		vcs:     make(map[ids.ProcID]causal.VC),
		lamport: make(map[ids.ProcID]uint64),
		inFly:   make(map[int64]stamp),
		counts:  make(map[string]int),
		views:   make(map[ids.ProcID][]ViewRecord),
		hist:    make(map[ids.ProcID]int),
	}
}

func (r *Recorder) vcOf(p ids.ProcID) causal.VC {
	vc, ok := r.vcs[p]
	if !ok {
		vc = causal.New()
		r.vcs[p] = vc
	}
	return vc
}

// append assumes r.mu is held and the process clocks are already advanced.
func (r *Recorder) append(e event.Event) {
	e.Index = len(r.events)
	r.hist[e.Proc]++
	e.Seq = r.hist[e.Proc]
	e.Time = r.clock()
	e.Lamport = r.lamport[e.Proc]
	e.Clock = r.vcs[e.Proc].Clone()
	r.events = append(r.events, e)
}

// RecordStart logs the unique start event of a process history.
func (r *Recorder) RecordStart(p ids.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vcOf(p).Tick(p)
	r.lamport[p]++
	r.append(event.Event{Proc: p, Kind: event.Start})
}

// RecordSend logs send(from, to, m) and remembers the message's causal
// stamp so the matching receive can merge it.
func (r *Recorder) RecordSend(from, to ids.ProcID, msgID int64, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vc := r.vcOf(from)
	vc.Tick(from)
	r.lamport[from]++
	r.inFly[msgID] = stamp{vc: vc.Clone(), lamport: r.lamport[from]}
	r.counts[label]++
	r.sent++
	r.append(event.Event{Proc: from, Kind: event.Send, Other: to, MsgID: msgID, Label: label})
}

// RecordRecv logs recv(from, to, m), merging the sender's stamp.
func (r *Recorder) RecordRecv(from, to ids.ProcID, msgID int64, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vc := r.vcOf(to)
	st, ok := r.inFly[msgID]
	if ok {
		vc.Merge(st.vc)
		if st.lamport > r.lamport[to] {
			r.lamport[to] = st.lamport
		}
		delete(r.inFly, msgID)
	}
	vc.Tick(to)
	r.lamport[to]++
	r.append(event.Event{Proc: to, Kind: event.Recv, Other: from, MsgID: msgID, Label: label})
}

// RecordDrop logs a message discarded at the receiver (property S1). The
// drop does NOT merge the sender's clock: a discarded message causally
// influences nobody, which is precisely S1's purpose.
func (r *Recorder) RecordDrop(from, to ids.ProcID, msgID int64, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.inFly, msgID)
	r.vcOf(to).Tick(to)
	r.lamport[to]++
	r.append(event.Event{Proc: to, Kind: event.Drop, Other: from, MsgID: msgID, Label: label})
}

// RecordInternal logs a protocol-internal event such as faulty_p(q).
func (r *Recorder) RecordInternal(p ids.ProcID, k event.Kind, other ids.ProcID) {
	r.RecordInternalLevel(p, k, other, 0)
}

// RecordInternalLevel logs a protocol-internal event carrying the failure
// detector's suspicion level — how confident the detector was when
// faulty_p(q) fired (see event.Event.Level). Level 0 marks events with no
// graded detector behind them.
func (r *Recorder) RecordInternalLevel(p ids.ProcID, k event.Kind, other ids.ProcID, level float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vcOf(p).Tick(p)
	r.lamport[p]++
	r.append(event.Event{Proc: p, Kind: k, Other: other, Level: level})
}

// RecordInstall logs a completed local view transition.
func (r *Recorder) RecordInstall(p ids.ProcID, ver member.Version, members []ids.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vcOf(p).Tick(p)
	r.lamport[p]++
	ms := make([]ids.ProcID, len(members))
	copy(ms, members)
	r.views[p] = append(r.views[p], ViewRecord{Ver: ver, Members: ms})
	r.append(event.Event{Proc: p, Kind: event.InstallView, Other: ids.Nil, Ver: ver, Members: ms})
}

// Events returns a copy of the recorded run.
func (r *Recorder) Events() []event.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]event.Event, len(r.events))
	copy(out, r.events)
	return out
}

// MessagesSent returns the total number of messages recorded, or — when
// labels are given — the sum over those message kinds only. The §7.2
// analysis counts protocol messages (invitations, OKs, commits,
// interrogations, proposals), so benches pass the relevant labels.
func (r *Recorder) MessagesSent(labels ...string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(labels) == 0 {
		return r.sent
	}
	total := 0
	for _, l := range labels {
		total += r.counts[l]
	}
	return total
}

// CountsByLabel returns a copy of the per-kind message counters.
func (r *Recorder) CountsByLabel() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// ViewLog returns the sequence of views installed by p, in order.
func (r *Recorder) ViewLog(p ids.ProcID) []ViewRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	log := r.views[p]
	out := make([]ViewRecord, len(log))
	copy(out, log)
	return out
}

// Procs returns every process that appears in the run, deterministically
// ordered.
func (r *Recorder) Procs() []ids.ProcID {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := ids.NewSet()
	for p := range r.hist {
		s.Add(p)
	}
	return s.Sorted()
}
