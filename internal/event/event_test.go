package event

import (
	"strings"
	"testing"

	"procgroup/internal/ids"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Start:       "start",
		Send:        "send",
		Recv:        "recv",
		Drop:        "drop",
		Faulty:      "faulty",
		Operating:   "operating",
		Remove:      "remove",
		Add:         "add",
		InstallView: "install",
		Quit:        "quit",
		Crash:       "crash",
		Initiate:    "initiate",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestEventStringForms(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	tests := []struct {
		e    Event
		want []string
	}{
		{Event{Index: 3, Proc: a, Kind: Send, Other: b, Label: "Invite"}, []string{"send", "Invite", "a", "b"}},
		{Event{Index: 4, Proc: b, Kind: Faulty, Other: a}, []string{"faulty(a)"}},
		{Event{Index: 5, Proc: a, Kind: InstallView, Ver: 2, Members: []ids.ProcID{a}}, []string{"install v2"}},
		{Event{Index: 6, Proc: a, Kind: Quit}, []string{"quit"}},
	}
	for _, tt := range tests {
		got := tt.e.String()
		for _, frag := range tt.want {
			if !strings.Contains(got, frag) {
				t.Errorf("String() = %q, want fragment %q", got, frag)
			}
		}
	}
}
