package event

import (
	"fmt"

	"procgroup/internal/causal"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Kind discriminates event types.
type Kind uint8

// The event kinds of the model.
const (
	// Start is the unique first event of every process history.
	Start Kind = iota + 1
	// Send is send(p, q, m).
	Send
	// Recv is recv(p, q, m).
	Recv
	// Drop marks a message discarded at the receiver by property S1
	// (sender believed faulty) — the "ray terminating without reaching
	// another history" in the paper's figures.
	Drop
	// Faulty is faulty_p(q): p starts believing q faulty (F1 or F2).
	Faulty
	// Operating is operating_p(q), the join-side counterpart (§7.1).
	Operating
	// Remove is remove_p(q): p deletes q from its local view.
	Remove
	// Add is add_p(q): p adds q to its local view.
	Add
	// InstallView marks a completed local view transition; Ver and
	// Members carry the resulting view.
	InstallView
	// Quit is quit_p executed by the protocol (e.g. an initiator that
	// misses its majority, or a process learning of its own exclusion).
	Quit
	// Crash is an injected crash (the environment's quit_p).
	Crash
	// Initiate marks the start of a reconfiguration attempt (§4.2).
	Initiate
)

// String names the kind as the paper spells it.
func (k Kind) String() string {
	switch k {
	case Start:
		return "start"
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Drop:
		return "drop"
	case Faulty:
		return "faulty"
	case Operating:
		return "operating"
	case Remove:
		return "remove"
	case Add:
		return "add"
	case InstallView:
		return "install"
	case Quit:
		return "quit"
	case Crash:
		return "crash"
	case Initiate:
		return "initiate"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one entry in a process history.
type Event struct {
	// Index is the global sequence number within the recorded run.
	Index int
	// Seq is the 1-based position within Proc's own history.
	Seq int
	// Proc is the process executing the event.
	Proc ids.ProcID
	// Kind discriminates the event.
	Kind Kind
	// Other is the peer: message counterpart for Send/Recv/Drop, the
	// subject q for Faulty/Operating/Remove/Add.
	Other ids.ProcID
	// MsgID pairs a Recv with its Send.
	MsgID int64
	// Label carries the message kind for Send/Recv/Drop.
	Label string
	// Ver is the resulting local view version for InstallView.
	Ver member.Version
	// Members is the resulting membership for InstallView.
	Members []ids.ProcID
	// Level is the failure detector's suspicion level at the moment a
	// Faulty event fired — elapsed/threshold for the fixed-timeout
	// detector, φ for the accrual detector. Zero for events whose
	// suspicion did not come from a graded local detector (F2 gossip,
	// oracle injection, simulator schedules).
	Level float64
	// Time is the (virtual or wall) time of the event.
	Time int64
	// Lamport is the event's Lamport timestamp.
	Lamport uint64
	// Clock is the event's vector clock (stamped after the event).
	Clock causal.VC
}

// String renders a compact one-line description.
func (e Event) String() string {
	switch e.Kind {
	case Send, Recv, Drop:
		return fmt.Sprintf("%d %s %s(%s,%s,%s)", e.Index, e.Proc, e.Kind, e.Proc, e.Other, e.Label)
	case InstallView:
		return fmt.Sprintf("%d %s install v%d %v", e.Index, e.Proc, e.Ver, e.Members)
	case Faulty, Operating, Remove, Add:
		return fmt.Sprintf("%d %s %s(%s)", e.Index, e.Proc, e.Kind, e.Other)
	default:
		return fmt.Sprintf("%d %s %s", e.Index, e.Proc, e.Kind)
	}
}
