// Package event defines the event vocabulary of the paper's system model
// (§2.1–§2.2): send/receive events plus the protocol-specific internal
// events faulty_p(q), remove_p(q), add_p(q), quit_p, and view installations.
// A recorded run (see internal/trace) is a sequence of these events, one
// history per process — exactly the paper's notion of a system run.
package event
