package transport

import (
	"fmt"
	"net"
	"sync"

	"procgroup/internal/ids"
)

// UDP is the datagram plane: every registered process owns one UDP
// socket, a send is one sendto, and a frame is one datagram — no
// connections, no queues, no backpressure. A send either reaches the
// wire immediately or is dropped and counted; nothing a slow or dead
// peer does can delay a frame behind it. That makes the plane exactly
// wrong for protocol traffic (which needs the reliable-FIFO channels of
// §2.1) and exactly right for beacons: a heartbeat's value is its
// arrival TIME, a lost one costs a fraction of a detector sample, but a
// queued one poisons the inter-arrival fit with delay the peer never
// exhibited. TwoPlane composes this plane under a stream plane so each
// traffic class gets the semantics it needs.
//
// Frames travel as bare codec bodies (no length prefix — the datagram
// boundary frames them) with Seq always 0: there is no mux and no
// ordering check. Per-channel FIFO is therefore only as good as the
// network's reordering behavior; on loopback and within one L2 segment
// that is in-order in practice, and beacons are order-free anyway.
type UDP struct {
	host string

	mu     sync.RWMutex
	addrs  map[ids.ProcID]*net.UDPAddr
	locals map[ids.ProcID]*udpEndpoint
	egress *net.UDPConn // lazy shared socket for sends from unregistered ids
	closed bool
	wg     sync.WaitGroup
	stats  statCounters

	// beacons caches the encoded bytes of each (channel, kind) beacon —
	// identical every time (no MsgID, no Seq), so the steady-state
	// beacon send allocates nothing. Bounded by channels × beacon kinds.
	beaconMu sync.RWMutex
	beacons  map[beaconKey][]byte
}

// udpEndpoint is one registered process's socket and handler.
type udpEndpoint struct {
	conn *net.UDPConn
	h    Handler
}

// maxDatagram bounds an encoded frame on the datagram plane, under the
// 65,507-byte UDP payload ceiling with headroom. Beacons are tens of
// bytes; anything near this limit belongs on the stream plane.
const maxDatagram = 60 << 10

// NewUDP builds a UDP transport whose sockets bind loopback.
func NewUDP() *UDP { return NewUDPHost("127.0.0.1") }

// NewUDPHost builds a UDP transport binding sockets on host.
func NewUDPHost(host string) *UDP {
	return &UDP{
		host:    host,
		addrs:   make(map[ids.ProcID]*net.UDPAddr),
		locals:  make(map[ids.ProcID]*udpEndpoint),
		beacons: make(map[beaconKey][]byte),
	}
}

// AddPeer introduces a remote process reachable at addr, for deployments
// where the group spans OS processes or hosts.
func (t *UDP) AddPeer(p ids.ProcID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: udp peer %v: %w", p, err)
	}
	t.mu.Lock()
	t.addrs[p] = ua
	t.mu.Unlock()
	return nil
}

// Addr reports the socket address of a registered process, for handing
// to AddPeer on other transports.
func (t *UDP) Addr(p ids.ProcID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[p]
	if !ok {
		return "", false
	}
	return a.String(), true
}

// Register implements Transport: it opens p's socket and starts its read
// loop.
func (t *UDP) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: udp is closed")
	}
	if _, dup := t.locals[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(t.host)})
	if err != nil {
		return fmt.Errorf("transport: udp socket for %v: %w", p, err)
	}
	ep := &udpEndpoint{conn: conn, h: h}
	t.locals[p] = ep
	t.addrs[p] = conn.LocalAddr().(*net.UDPAddr)
	t.wg.Add(1)
	go t.readLoop(ep)
	return nil
}

// Unregister implements Transport: p's socket closes, so datagrams sent
// to it vanish into a closed port — the dead-host behavior. The stale
// address stays in addrs on purpose.
func (t *UDP) Unregister(p ids.ProcID) {
	t.mu.Lock()
	ep, ok := t.locals[p]
	if ok {
		delete(t.locals, p)
	}
	t.mu.Unlock()
	if ok {
		ep.conn.Close()
	}
}

// Send implements Transport: encode, one sendto, done. Every failure
// drops the frame where it stands and counts the reason; nothing ever
// queues.
func (t *UDP) Send(from, to ids.ProcID, m Message) {
	t.stats.noteSend(m.Payload)
	if from == to {
		// Self-sends never touch the socket, matching Inmem's contract.
		t.mu.RLock()
		closed := t.closed
		ep := t.locals[to]
		t.mu.RUnlock()
		switch {
		case closed:
			t.stats.drop(dropClosed)
		case ep == nil:
			t.stats.drop(dropUnknownPeer)
		default:
			ep.h(from, m)
		}
		return
	}
	t.mu.RLock()
	closed := t.closed
	dst := t.addrs[to]
	src := t.locals[from]
	t.mu.RUnlock()
	if closed {
		t.stats.drop(dropClosed)
		return
	}
	if dst == nil {
		t.stats.drop(dropUnknownPeer)
		return
	}

	// Beacons send from a per-(channel, kind) byte cache — the 0-alloc
	// fast path the stream plane's writer has, kept on the datagram plane.
	// Volatile beacons (digest contents change per send) must skip the
	// cache and take the ordinary encode path below.
	if c := binCodecFor(m.Payload); c != nil && c.beacon && !c.volatile && m.MsgID == 0 {
		b := t.beaconBytes(beaconKey{ch: chanKey{from, to}, kind: c.kind}, m)
		if b == nil {
			t.stats.drop(dropWriteFailed)
			return
		}
		t.write(src, b, dst)
		return
	}

	bp := encBufs.Get().(*[]byte)
	b, err := AppendFrame((*bp)[:0], Frame{From: from.String(), To: to.String(), MsgID: m.MsgID, Body: m.Payload})
	if err != nil {
		encBufs.Put(bp)
		t.stats.drop(dropWriteFailed)
		return
	}
	if len(b) > maxDatagram {
		*bp = b[:0]
		encBufs.Put(bp)
		t.stats.drop(dropTruncated)
		return
	}
	t.write(src, b, dst)
	*bp = b[:0]
	encBufs.Put(bp)
}

// beaconBytes returns (building and caching on first use) the encoded
// datagram for one channel's beacon of one kind.
func (t *UDP) beaconBytes(k beaconKey, m Message) []byte {
	t.beaconMu.RLock()
	b, ok := t.beacons[k]
	t.beaconMu.RUnlock()
	if ok {
		return b
	}
	b, err := AppendFrame(nil, Frame{From: k.ch.from.String(), To: k.ch.to.String(), Body: m.Payload})
	if err != nil || len(b) > maxDatagram {
		return nil
	}
	t.beaconMu.Lock()
	if cached, ok := t.beacons[k]; ok {
		b = cached
	} else {
		t.beacons[k] = b
	}
	t.beaconMu.Unlock()
	return b
}

// write performs the sendto: from the sender's own socket when it is
// registered here (stable source address), else from a lazily-opened
// shared egress socket.
func (t *UDP) write(src *udpEndpoint, b []byte, dst *net.UDPAddr) {
	conn := t.egressConn(src)
	if conn == nil {
		t.stats.drop(dropClosed)
		return
	}
	if _, err := conn.WriteToUDP(b, dst); err != nil {
		t.stats.drop(dropWriteFailed)
	}
}

func (t *UDP) egressConn(src *udpEndpoint) *net.UDPConn {
	if src != nil {
		return src.conn
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if t.egress == nil {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(t.host)})
		if err != nil {
			return nil
		}
		t.egress = conn
	}
	return t.egress
}

// readLoop drains one endpoint's socket. One datagram is one frame;
// undecodable bytes are dropped and counted, never fatal — unlike a
// corrupt stream there is no shared state to distrust, the next
// datagram is independent.
func (t *UDP) readLoop(ep *udpEndpoint) {
	defer t.wg.Done()
	// The buffer exceeds the maximum UDP payload, so the kernel never
	// truncates a read; Truncated counts only send-side oversize.
	buf := make([]byte, 64<<10)
	var d Decoder
	d.intern = make(map[string]string)
	for {
		n, _, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Unregister/Close
		}
		if n == 0 {
			t.stats.drop(dropDecodeFailed)
			continue
		}
		d.reset(buf[:n])
		f, err := decodeFrame(&d)
		if err != nil {
			t.stats.drop(dropDecodeFailed)
			continue
		}
		t.deliver(ep, f)
	}
}

// deliver routes one decoded datagram to the endpoint that received it.
// A frame addressed to some other process is dropped, not misdelivered
// — the port-reuse hazard: after a process dies, the OS can hand its
// port to a new socket while senders still target the stale address.
func (t *UDP) deliver(ep *udpEndpoint, f Frame) {
	from, err := ids.Parse(f.From)
	if err != nil {
		t.stats.drop(dropDecodeFailed)
		return
	}
	to, err := ids.Parse(f.To)
	if err != nil {
		t.stats.drop(dropDecodeFailed)
		return
	}
	t.mu.RLock()
	local := t.locals[to]
	t.mu.RUnlock()
	if local != ep {
		return // misaddressed: stale port reuse or stray traffic
	}
	ep.h(from, Message{MsgID: f.MsgID, Payload: f.Body})
}

// Stats implements Transport. ConnsOpen stays 0: the plane is
// connectionless, which is the point.
func (t *UDP) Stats() Stats { return t.stats.snapshot() }

// Close implements Transport.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*udpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.locals = make(map[ids.ProcID]*udpEndpoint)
	egress := t.egress
	t.egress = nil
	t.mu.Unlock()
	for _, ep := range eps {
		ep.conn.Close()
	}
	if egress != nil {
		egress.Close()
	}
	t.wg.Wait()
	return nil
}
