package transport

import (
	"sync"
	"testing"
	"time"

	"procgroup/internal/ids"
)

func TestChaosFIFOUnderJitter(t *testing.T) {
	// Per-frame jitter up to 3ms over a 500-frame burst: delivery must
	// stay ordered and exactly-once — jitter stretches a channel, never
	// reorders it.
	tr := NewChaos(NewInmem(), ChaosOptions{
		Seed:    3,
		Default: ChaosLink{Jitter: 3 * time.Millisecond},
	})
	defer tr.Close()
	checkFIFO(t, tr, 500, 20*time.Second)
}

func TestChaosCleanLinkIsTransparent(t *testing.T) {
	// No configured adversity: sends go straight through the inner
	// transport with no delay line and no injected drops.
	tr := NewChaos(NewInmem(), ChaosOptions{})
	defer tr.Close()
	checkFIFO(t, tr, 200, 2*time.Second)
	if got := tr.Stats().ChaosInjected; got != 0 {
		t.Errorf("clean chaos injected %d drops", got)
	}
}

func TestChaosLossIsCountedAsInjected(t *testing.T) {
	tr := NewChaos(NewInmem(), ChaosOptions{Default: ChaosLink{Loss: 1}})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	if s.len() != 0 {
		t.Errorf("total loss delivered %d frames", s.len())
	}
	st := tr.Stats()
	if st.ChaosInjected != 50 {
		t.Errorf("ChaosInjected = %d, want 50", st.ChaosInjected)
	}
	if st.UnknownPeer != 0 || st.QueueSaturated != 0 {
		t.Errorf("chaos drops leaked into inner buckets: %+v", st)
	}
}

func TestChaosAsymmetricPartition(t *testing.T) {
	// Block a→b only: b still reaches a — the asymmetric half-open
	// failure real networks produce and global fail-stop models cannot.
	tr := NewChaos(NewInmem(), ChaosOptions{})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var atB, atA sink
	if err := tr.Register(a, atA.handler); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, atB.handler); err != nil {
		t.Fatal(err)
	}
	tr.SetLink(a, b, ChaosLink{Blocked: true})
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 0}})
	tr.Send(b, a, Message{MsgID: 2, Payload: fifoPayload{N: 1}})
	waitFor(t, time.Second, func() bool { return atA.len() == 1 }, "b→a delivery")
	if atB.len() != 0 {
		t.Errorf("blocked direction delivered %d frames", atB.len())
	}
	if got := tr.Stats().ChaosInjected; got != 1 {
		t.Errorf("ChaosInjected = %d, want 1", got)
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	tr := NewChaos(NewInmem(), ChaosOptions{})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Partition(a, b)
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 0}})
	tr.Heal(a, b)
	tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{N: 1}})
	waitFor(t, time.Second, func() bool { return s.len() == 1 }, "post-heal delivery")
	if m := s.msg(0); m.MsgID != 2 {
		t.Errorf("delivered MsgID %d, want only the post-heal frame", m.MsgID)
	}
}

func TestChaosDelayDefersDelivery(t *testing.T) {
	const delay = 30 * time.Millisecond
	tr := NewChaos(NewInmem(), ChaosOptions{Default: ChaosLink{Delay: delay}})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 0}})
	if s.len() != 0 && time.Since(start) < delay {
		t.Fatal("frame delivered before its delay elapsed")
	}
	waitFor(t, 2*time.Second, func() bool { return s.len() == 1 }, "delayed delivery")
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("delivered after %v, configured delay %v", elapsed, delay)
	}
}

func TestChaosBurstWindowsDropEverything(t *testing.T) {
	// A 25ms total outage every 50ms: a steady 1ms send stream must see
	// both delivered frames and injected drops.
	tr := NewChaos(NewInmem(), ChaosOptions{
		Default: ChaosLink{BurstEvery: 50 * time.Millisecond, BurstFor: 25 * time.Millisecond},
	})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
		time.Sleep(time.Millisecond)
	}
	delivered, injected := s.len(), tr.Stats().ChaosInjected
	if delivered == 0 {
		t.Error("burst link delivered nothing — outage never ends")
	}
	if injected == 0 {
		t.Error("burst link dropped nothing — outage never happens")
	}
	if int64(delivered)+injected != 150 {
		t.Errorf("delivered %d + injected %d ≠ 150 sent", delivered, injected)
	}
}

func TestChaosStallProcessFreezesThenThaws(t *testing.T) {
	// StallProcess must hold — not drop — every frame touching the
	// stalled process, releasing them in send order when the stall ends:
	// the wire silhouette of a GC pause, with §2.1 FIFO intact.
	tr := NewChaos(NewInmem(), ChaosOptions{})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	type arrival struct {
		n  int
		at time.Time
	}
	var mu sync.Mutex
	var got []arrival
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, func(_ ids.ProcID, m Message) {
		mu.Lock()
		got = append(got, arrival{n: m.Payload.(fifoPayload).N, at: time.Now()})
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const stall = 60 * time.Millisecond
	start := time.Now()
	tr.StallProcess(a, stall)
	// Frames sent during the stall (including an MsgID-0 beacon shape)…
	tr.Send(a, b, Message{MsgID: 0, Payload: fifoPayload{N: 1}})
	tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{N: 2}})
	time.Sleep(stall / 3)
	// …and one sent mid-stall must all thaw together, in order.
	tr.Send(a, b, Message{MsgID: 3, Payload: fifoPayload{N: 3}})

	mu.Lock()
	early := len(got)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("%d frames leaked through an active stall", early)
	}

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/3 frames thawed after the stall", n)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, ar := range got {
		if ar.n != i+1 {
			t.Errorf("arrival %d = frame %d; thaw broke FIFO", i, ar.n)
		}
		if ar.at.Sub(start) < stall {
			t.Errorf("frame %d delivered %v after stall start, want ≥ %v", ar.n, ar.at.Sub(start), stall)
		}
	}
	if got := tr.Stats().ChaosInjected; got != 0 {
		t.Errorf("stall injected %d drops; it must hold frames, not drop them", got)
	}
}

func TestChaosStallExpiresAndCleansUp(t *testing.T) {
	// After the stall window passes, new frames flow promptly again and
	// the stall record is pruned.
	tr := NewChaos(NewInmem(), ChaosOptions{})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.StallProcess(a, 10*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 0}})

	deadline := time.Now().Add(5 * time.Second)
	for s.len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("post-stall frame not delivered")
		}
		time.Sleep(time.Millisecond)
	}
	tr.mu.Lock()
	left := len(tr.stalled)
	tr.mu.Unlock()
	if left != 0 {
		t.Errorf("%d expired stall records not pruned", left)
	}
}

func TestChaosStackedWrappersSumInjectedDrops(t *testing.T) {
	// Chaos wraps any Transport — including another Chaos. Each layer's
	// deliberate drops must survive into the outer Stats.
	inner := NewChaos(NewInmem(), ChaosOptions{Default: ChaosLink{Loss: 1}})
	outer := NewChaos(inner, ChaosOptions{})
	defer outer.Close()
	a, b := ids.Named("a"), ids.Named("b")
	if err := outer.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := outer.Register(b, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		outer.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	if got := outer.Stats().ChaosInjected; got != 10 {
		t.Errorf("outer Stats().ChaosInjected = %d, want 10 (inner wrapper's drops)", got)
	}
}

func TestChaosReconfiguredLinkKeepsFIFO(t *testing.T) {
	// Once a channel has a delay line, later frames ride it even after the
	// link is reconfigured to zero delay — a frame sampled at d=0 must not
	// overtake queued predecessors.
	tr := NewChaos(NewInmem(), ChaosOptions{Seed: 11})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.SetLink(a, b, ChaosLink{Delay: 5 * time.Millisecond, Jitter: 5 * time.Millisecond})
	for i := 0; i < 100; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	tr.SetLink(a, b, ChaosLink{})
	for i := 100; i < 200; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	waitFor(t, 10*time.Second, func() bool { return s.len() == 200 }, "all frames")
	for i := 0; i < 200; i++ {
		if m := s.msg(i); m.MsgID != int64(i+1) {
			t.Fatalf("position %d: MsgID %d — FIFO violated across reconfiguration", i, m.MsgID)
		}
	}
}
