package transport

// Chaos is the live runtime's adversity dial: a wrapper that degrades any
// inner Transport with configurable per-link delay, jitter, loss, burst
// outages and (asymmetric) partitions. The simulator has always been able
// to schedule this adversity on virtual time (internal/netsim); Chaos
// opens the same scenario space to the live goroutine runtime, which is
// what makes failure-detector policies comparable under realistic link
// behavior rather than only on a quiet loopback.
//
// The one property Chaos is careful to preserve is the paper's §2.1
// channel assumption: per-channel FIFO. Delayed frames of one directed
// channel drain through a single FIFO queue worker, so jitter stretches a
// channel but never reorders it — reordering adversity stays the
// simulator's job. Loss, by contrast, is exactly what the assumption
// permits a real network to do before the channel layer repairs it; a
// chaos drop is indistinguishable from a datagram vanishing.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"procgroup/internal/ids"
)

// ChaosLink shapes one directed link. The zero value is a clean link.
type ChaosLink struct {
	// Delay is added to every frame's delivery.
	Delay time.Duration
	// Jitter adds a further uniform random [0, Jitter) per frame. FIFO
	// order within the channel is preserved regardless.
	Jitter time.Duration
	// Loss drops each frame independently with this probability. NOTE:
	// nothing above a Chaos wrapper repairs loss, so nonzero Loss on
	// protocol traffic breaks the §2.1 reliable-channel assumption the
	// state machine runs on — rounds wedge and the group treats the
	// victims as failed (safety holds, progress may not). Use it to
	// study exactly that; use BeaconLoss to stress only the failure
	// detector.
	Loss float64
	// BeaconLoss drops only substrate beacons (frames with MsgID 0 —
	// unrecorded liveness traffic) with this probability. Beacons are
	// idempotent and loss-tolerant by design, so BeaconLoss thins the
	// failure detector's signal without touching the protocol's
	// reliable channels.
	BeaconLoss float64
	// BurstEvery/BurstFor schedule periodic total outages: during the
	// last BurstFor of every BurstEvery period the link drops
	// everything. Zero disables bursts.
	BurstEvery time.Duration
	BurstFor   time.Duration
	// Blocked hard-partitions the link (directed — blocking p→q alone
	// models an asymmetric partition).
	Blocked bool
}

// clean reports whether the link needs no delay queue.
func (l ChaosLink) clean() bool { return l.Delay <= 0 && l.Jitter <= 0 }

// ChaosOptions configures a Chaos wrapper.
type ChaosOptions struct {
	// Seed feeds the loss/jitter generator; runs with equal seeds and
	// send sequences draw identical chaos.
	Seed int64
	// Default is the link configuration for every pair without an
	// explicit SetLink override.
	Default ChaosLink
}

// chaosItem is one delayed frame. (chanKey, naming a directed channel, is
// shared with the TCP mux — see tcp.go.)
type chaosItem struct {
	at   time.Time
	from ids.ProcID
	to   ids.ProcID
	m    Message
}

// chaosQueue is a single directed channel's delay line: an unbounded FIFO
// drained by one worker goroutine, so delivery order equals send order no
// matter what each frame's sampled delay was.
type chaosQueue struct {
	mu   sync.Mutex
	q    []chaosItem
	wake chan struct{} // capacity 1
}

func (cq *chaosQueue) push(it chaosItem) {
	cq.mu.Lock()
	cq.q = append(cq.q, it)
	cq.mu.Unlock()
	select {
	case cq.wake <- struct{}{}:
	default:
	}
}

func (cq *chaosQueue) pop() (chaosItem, bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if len(cq.q) == 0 {
		return chaosItem{}, false
	}
	it := cq.q[0]
	cq.q = cq.q[1:]
	return it, true
}

// Chaos wraps an inner Transport with adversarial link behavior. Configure
// per-link overrides with SetLink/Partition/Heal at any time, including
// while the group is running — that is the point.
type Chaos struct {
	inner Transport
	start time.Time

	mu      sync.Mutex
	rng     *rand.Rand
	def     ChaosLink
	links   map[chanKey]ChaosLink
	queues  map[chanKey]*chaosQueue
	stalled map[ids.ProcID]time.Time // process → stall end (StallProcess)
	closed  bool

	injected atomic.Int64
	stats    statCounters // closed-drop accounting for sends after Close
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewChaos wraps inner. The wrapper takes ownership: closing the Chaos
// closes inner.
func NewChaos(inner Transport, opts ChaosOptions) *Chaos {
	return &Chaos{
		inner:   inner,
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		def:     opts.Default,
		links:   make(map[chanKey]ChaosLink),
		queues:  make(map[chanKey]*chaosQueue),
		stalled: make(map[ids.ProcID]time.Time),
		stop:    make(chan struct{}),
	}
}

// SetLink overrides the directed link from → to. Asymmetric degradation
// is first-class: configure p→q without touching q→p.
func (c *Chaos) SetLink(from, to ids.ProcID, l ChaosLink) {
	c.mu.Lock()
	c.links[chanKey{from, to}] = l
	c.mu.Unlock()
}

// SetLinkBoth overrides both directions between a and b.
func (c *Chaos) SetLinkBoth(a, b ids.ProcID, l ChaosLink) {
	c.SetLink(a, b, l)
	c.SetLink(b, a, l)
}

// Partition blocks both directions between a and b, preserving the links'
// other degradation parameters.
func (c *Chaos) Partition(a, b ids.ProcID) { c.setBlocked(a, b, true) }

// Heal unblocks both directions between a and b.
func (c *Chaos) Heal(a, b ids.ProcID) { c.setBlocked(a, b, false) }

func (c *Chaos) setBlocked(a, b ids.ProcID, blocked bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range []chanKey{{a, b}, {b, a}} {
		l, ok := c.links[k]
		if !ok {
			l = c.def
		}
		l.Blocked = blocked
		c.links[k] = l
	}
}

// StallProcess freezes the wire around p for d from now: every frame to
// or from p is held and delivered only once the stall ends, in send
// order. This is the wire silhouette of a stop-the-world pause (GC,
// scheduler starvation, swap storm): the process neither emits nor
// absorbs traffic for a while, then everything thaws at once. Unlike
// Loss, nothing is dropped — per-channel FIFO and the §2.1 reliable-
// channel assumption survive — so the profile stresses exactly the
// failure detector's timing judgment, which is what the E22 stall arms
// measure. Overlapping stalls extend to the latest deadline.
func (c *Chaos) StallProcess(p ids.ProcID, d time.Duration) {
	until := time.Now().Add(d)
	c.mu.Lock()
	if cur, ok := c.stalled[p]; !ok || until.After(cur) {
		c.stalled[p] = until
	}
	c.mu.Unlock()
}

// stallHoldLocked returns the latest stall deadline covering either end
// of the channel (zero when none), pruning expired entries; c.mu held.
func (c *Chaos) stallHoldLocked(from, to ids.ProcID) time.Time {
	if len(c.stalled) == 0 {
		return time.Time{}
	}
	now := time.Now()
	var hold time.Time
	for _, p := range [2]ids.ProcID{from, to} {
		if until, ok := c.stalled[p]; ok {
			if until.After(now) {
				if until.After(hold) {
					hold = until
				}
			} else {
				delete(c.stalled, p)
			}
		}
	}
	return hold
}

// Register implements Transport.
func (c *Chaos) Register(p ids.ProcID, h Handler) error { return c.inner.Register(p, h) }

// Unregister implements Transport.
func (c *Chaos) Unregister(p ids.ProcID) { c.inner.Unregister(p) }

// Send implements Transport: sample the link's behavior, then deliver
// through the channel's delay line (or directly for clean links).
func (c *Chaos) Send(from, to ids.ProcID, m Message) {
	key := chanKey{from, to}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.stats.drop(dropClosed)
		return
	}
	link, ok := c.links[key]
	if !ok {
		link = c.def
	}
	if c.dropsLocked(link, m) {
		c.mu.Unlock()
		c.injected.Add(1)
		// The sender still paid for this frame; count it here because
		// the inner transport will never see it.
		c.stats.noteSend(m.Payload)
		return
	}
	d := link.Delay
	if link.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(link.Jitter)))
	}
	hold := c.stallHoldLocked(from, to)
	q := c.queues[key]
	if q == nil && (!link.clean() || !hold.IsZero()) {
		q = &chaosQueue{wake: make(chan struct{}, 1)}
		c.queues[key] = q
		c.wg.Add(1)
		go c.drain(q)
	}
	c.mu.Unlock()

	// Once a channel has a delay line, everything rides it — a frame that
	// sampled zero delay must not overtake queued predecessors.
	if q == nil {
		c.inner.Send(from, to, m)
		return
	}
	at := time.Now().Add(d)
	if hold.After(at) {
		at = hold // frozen by a process stall: thaw at its end, in order
	}
	q.push(chaosItem{at: at, from: from, to: to, m: m})
}

// dropsLocked decides whether this frame dies here; c.mu must be held.
func (c *Chaos) dropsLocked(link ChaosLink, m Message) bool {
	if link.Blocked {
		return true
	}
	if link.BurstEvery > 0 && link.BurstFor > 0 {
		// Bursts occupy the tail of each period so a group booted at
		// t=0 starts outside an outage.
		phase := time.Since(c.start) % link.BurstEvery
		if phase >= link.BurstEvery-link.BurstFor {
			return true
		}
	}
	if m.MsgID == 0 && link.BeaconLoss > 0 && c.rng.Float64() < link.BeaconLoss {
		return true
	}
	return link.Loss > 0 && c.rng.Float64() < link.Loss
}

// drain is a channel's delay-line worker: sleep until the head frame's
// delivery time, send it on, repeat. Frames still queued at Close are
// discarded, like any datagram in flight when the plug is pulled.
func (c *Chaos) drain(q *chaosQueue) {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		it, ok := q.pop()
		if !ok {
			select {
			case <-q.wake:
				continue
			case <-c.stop:
				return
			}
		}
		if wait := time.Until(it.at); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-c.stop:
				timer.Stop()
				return
			}
		}
		c.inner.Send(it.from, it.to, it.m)
	}
}

// Stats implements Transport: the inner transport's counters plus the
// frames chaos itself consumed.
func (c *Chaos) Stats() Stats {
	s := c.inner.Stats()
	// Add, don't overwrite: stacked Chaos wrappers each contribute their
	// own injected drops.
	s.ChaosInjected += c.injected.Load()
	own := c.stats.snapshot()
	s.Closed += own.Closed
	s.SuspicionFrames += own.SuspicionFrames
	return s
}

// Close implements Transport: stops every delay line, then closes inner.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	return c.inner.Close()
}
