package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"procgroup/internal/ids"
)

// TCP is the socket transport: every registered process owns a listener,
// and every unordered peer pair {p, q} shares ONE multiplexed connection
// carrying channel-tagged frames for both directions — n(n−1)/2 sockets
// for a fully-connected n-process group instead of the n(n−1) of the old
// one-socket-per-directed-channel design. The §2.1 per-channel FIFO
// property stays structural: TCP orders bytes within the stream, a single
// writer goroutine per pair drains the per-channel FIFO queues fairly
// (round-robin, in-queue order), and every sequenced frame carries a
// per-channel mux sequence number that the reader checks.
//
// Peers register locally (loopback clusters) or are introduced with
// AddPeer (cross-host deployments). Sends to a peer that is unknown,
// unreachable, or whose channel queue is saturated are dropped — the
// failure detector owns liveness, the transport only moves bytes — and
// every drop is counted by reason (Stats).
type TCP struct {
	host string

	mu     sync.RWMutex
	addrs  map[ids.ProcID]string
	locals map[ids.ProcID]*tcpEndpoint
	pairs  map[pairKey]*pairMux
	closed bool
	wg     sync.WaitGroup
	stats  statCounters
}

// chanKey names one directed channel.
type chanKey struct{ from, to ids.ProcID }

// pairKey names one unordered peer pair, canonically ordered (a ≤ b).
type pairKey struct{ a, b ids.ProcID }

func pairOf(p, q ids.ProcID) pairKey {
	if q.Less(p) {
		p, q = q, p
	}
	return pairKey{a: p, b: q}
}

// tcpEndpoint is one registered process's accepting side.
type tcpEndpoint struct {
	ln net.Listener
	h  Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// tcpQueueDepth bounds a channel's outbound queue. Protocol traffic is a
// handful of messages per view change; hitting this depth means the peer
// is unreachable and the frames would be dropped at dial time anyway.
// (A var, not a const, so saturation tests can lower it.)
var tcpQueueDepth = 1024

// NewTCP builds a TCP transport whose listeners bind loopback.
func NewTCP() *TCP { return NewTCPHost("127.0.0.1") }

// NewTCPHost builds a TCP transport binding listeners on host.
func NewTCPHost(host string) *TCP {
	return &TCP{
		host:   host,
		addrs:  make(map[ids.ProcID]string),
		locals: make(map[ids.ProcID]*tcpEndpoint),
		pairs:  make(map[pairKey]*pairMux),
	}
}

// AddPeer introduces a remote process reachable at addr, for deployments
// where the group spans OS processes or hosts.
func (t *TCP) AddPeer(p ids.ProcID, addr string) {
	t.mu.Lock()
	t.addrs[p] = addr
	t.mu.Unlock()
}

// Addr reports the listen address of a registered process, for handing to
// AddPeer on other transports.
func (t *TCP) Addr(p ids.ProcID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[p]
	return a, ok
}

// Stats implements Transport. ConnsOpen reports the pair links currently
// established — the lazily-dialed connection footprint a monitoring
// topology actually produces (pairs whose mux exists but whose link is
// down or not yet dialed do not count).
func (t *TCP) Stats() Stats {
	s := t.stats.snapshot()
	t.mu.RLock()
	pairs := make([]*pairMux, 0, len(t.pairs))
	for _, m := range t.pairs {
		pairs = append(pairs, m)
	}
	t.mu.RUnlock()
	for _, m := range pairs {
		m.mu.Lock()
		if m.conn != nil {
			s.ConnsOpen++
		}
		m.mu.Unlock()
	}
	return s
}

// Register implements Transport: it opens p's listener and starts its
// accept loop.
func (t *TCP) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp is closed")
	}
	if _, dup := t.locals[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(t.host, "0"))
	if err != nil {
		return fmt.Errorf("transport: listen for %v: %w", p, err)
	}
	ep := &tcpEndpoint{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	t.locals[p] = ep
	t.addrs[p] = ln.Addr().String()
	t.wg.Add(1)
	go t.accept(ep)
	return nil
}

// Unregister implements Transport: p's listener, its accepted connections,
// and every pair mux touching p close, so peers sending to it fail and
// drop, like a dead host. Channels between other pairs are untouched.
func (t *TCP) Unregister(p ids.ProcID) {
	t.mu.Lock()
	ep, ok := t.locals[p]
	if ok {
		delete(t.locals, p)
	}
	// The stale address stays in addrs: dials to it now fail, which is
	// exactly the dead-host behavior senders must see.
	var drop []*pairMux
	for k, m := range t.pairs {
		if k.a == p || k.b == p {
			drop = append(drop, m)
			delete(t.pairs, k)
		}
	}
	t.mu.Unlock()
	if ok {
		ep.shutdown()
	}
	for _, m := range drop {
		m.stop()
	}
}

// Send implements Transport.
func (t *TCP) Send(from, to ids.ProcID, m Message) {
	if from == to {
		// Self-sends never touch a socket (there is no {p, p} pair);
		// deliver directly, matching Inmem's contract.
		t.mu.RLock()
		closed := t.closed
		ep := t.locals[to]
		t.mu.RUnlock()
		switch {
		case closed:
			t.stats.drop(dropClosed)
		case ep == nil:
			t.stats.drop(dropUnknownPeer)
		default:
			ep.h(from, m)
		}
		return
	}
	k := pairOf(from, to)
	t.mu.RLock()
	closed := t.closed
	mx := t.pairs[k]
	t.mu.RUnlock()
	if closed {
		t.stats.closed.Add(1)
		return
	}
	if mx == nil {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			t.stats.closed.Add(1)
			return
		}
		mx = t.pairs[k]
		if mx == nil {
			mx = t.newPairLocked(k, to)
		}
		t.mu.Unlock()
	}
	mx.enqueue(chanKey{from, to}, m)
}

// newPairLocked creates the mux for pair k and starts its writer; t.mu
// must be held. dialTo is the end this instance dials if it has to
// establish the link itself.
func (t *TCP) newPairLocked(k pairKey, dialTo ids.ProcID) *pairMux {
	m := &pairMux{
		t:      t,
		key:    k,
		dialTo: dialTo,
		queues: make(map[chanKey]*muxQueue, 2),
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	t.pairs[k] = m
	t.wg.Add(1)
	go m.run()
	return m
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.locals = make(map[ids.ProcID]*tcpEndpoint)
	muxes := make([]*pairMux, 0, len(t.pairs))
	for _, m := range t.pairs {
		muxes = append(muxes, m)
	}
	t.pairs = make(map[pairKey]*pairMux)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	for _, m := range muxes {
		m.stop()
	}
	t.wg.Wait()
	return nil
}

// accept runs one endpoint's accept loop.
func (t *TCP) accept(ep *tcpEndpoint) {
	defer t.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed by shutdown
		}
		if !ep.track(c) {
			c.Close()
			return
		}
		t.wg.Add(1)
		go t.readConn(c, ep, nil)
	}
}

// readConn drains one connection — accepted (ep non-nil) or dialed by a
// pair writer (m non-nil) — routing each frame to the addressed local
// handler. A muxHello adopts the connection into its pair's mux so the
// accepting side can send on the same socket.
func (t *TCP) readConn(c net.Conn, ep *tcpEndpoint, m *pairMux) {
	defer t.wg.Done()
	fr := newFrameReader(c)
	lastSeq := make(map[chanKey]uint64)
	for {
		f, err := fr.read()
		if err != nil {
			break // EOF on peer close, or corruption: abandon the stream
		}
		if _, hello := f.Body.(muxHello); hello {
			mm, keep := t.adopt(f, c)
			if !keep {
				break
			}
			if mm != nil {
				m = mm
			}
			continue
		}
		t.route(f, lastSeq)
	}
	if m != nil {
		m.dropConn(c)
	}
	if ep != nil {
		ep.untrack(c)
	}
	c.Close()
}

// route hands one inbound frame to the local process it addresses. A
// frame for a process this instance does not host is dropped, not
// misdelivered — the port-reuse hazard: after a process dies, the OS can
// hand its ephemeral port to a new listener while senders still dial the
// stale address. Sequenced frames (Seq > 0) must advance their channel's
// mux sequence within this connection — the §2.1 FIFO contract made
// checkable on the wire for the stream's lifetime. Across a reconnect
// the check starts fresh: the boundary keeps datagram semantics (a frame
// retried on the replacement connection can duplicate or reorder against
// the dying stream's tail), exactly as the one-socket-per-channel design
// behaved on redial.
func (t *TCP) route(f Frame, lastSeq map[chanKey]uint64) {
	from, err := ids.Parse(f.From)
	if err != nil {
		return
	}
	to, err := ids.Parse(f.To)
	if err != nil {
		return
	}
	t.mu.RLock()
	ep := t.locals[to]
	t.mu.RUnlock()
	if ep == nil {
		return
	}
	if f.Seq != 0 {
		k := chanKey{from, to}
		if f.Seq <= lastSeq[k] {
			return // stale or replayed within the stream: never reorder
		}
		lastSeq[k] = f.Seq
	}
	ep.h(from, Message{MsgID: f.MsgID, Payload: f.Body})
}

// adopt attaches an accepted mux connection to its pair entry, resolving
// simultaneous opens deterministically: the connection initiated by the
// smaller pair end survives on both sides. Returns the mux to associate
// with the reader (nil for read-only use) and whether to keep reading.
func (t *TCP) adopt(hello Frame, c net.Conn) (*pairMux, bool) {
	init, err := ids.Parse(hello.From)
	if err != nil {
		return nil, false
	}
	acceptor, err := ids.Parse(hello.To)
	if err != nil || init == acceptor {
		return nil, false
	}
	k := pairOf(init, acceptor)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false
	}
	if _, local := t.locals[acceptor]; !local {
		// A hello for a pair this instance does not host: stale-port or
		// adversarial traffic. Reject rather than allocate mux state and
		// a writer goroutine for an unverifiable pair.
		t.mu.Unlock()
		return nil, false
	}
	m := t.pairs[k]
	if m == nil {
		m = t.newPairLocked(k, init) // redials go back to the initiator
	}
	t.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, false
	}
	switch {
	case m.conn == nil:
		m.conn, m.connInit = c, init
		m.wakeLocked()
		return m, true
	case m.connInit == init && m.conn.LocalAddr().String() == c.RemoteAddr().String():
		// The far end of our own dialed connection (both pair ends live
		// in this instance): read from it, write on the dialed end.
		return nil, true
	case m.connInit == init, init.Less(m.connInit):
		// Same initiator on a new socket (remote redialed after its old
		// conn died), or a simultaneous open won by the smaller end:
		// the inbound connection replaces the incumbent.
		old := m.conn
		m.conn, m.connInit = c, init
		old.Close()
		m.wakeLocked()
		return m, true
	default:
		return nil, false // simultaneous open, incumbent wins: reject inbound
	}
}

// --- pairMux -----------------------------------------------------------------

// pairMux is the multiplexed link for one unordered peer pair. All
// directed channels between the two ends share one connection; a single
// writer goroutine drains the per-channel FIFO queues round-robin so no
// channel can starve another, and each channel's frames enter the byte
// stream in send order. Pure beacons bypass sequencing, coalesce in the
// queue, and are written from a cached per-channel encoding — a
// steady-state heartbeat costs no allocations at all.
type pairMux struct {
	t   *TCP
	key pairKey

	mu       sync.Mutex
	queues   map[chanKey]*muxQueue
	rr       []chanKey // round-robin scan order over queues
	rrNext   int
	pending  int
	conn     net.Conn   // established link: dialed here or adopted from accept
	connInit ids.ProcID // which pair end initiated conn (simultaneous-open tie-break)
	dialTo   ids.ProcID // the end this instance dials to establish the link
	stopped  bool

	wake chan struct{}
	quit chan struct{}
}

// muxQueue is one directed channel's FIFO of queued frames.
type muxQueue struct {
	frames  []muxFrame
	head    int
	seq     uint64       // last mux sequence stamped on this channel
	beacons map[byte]int // queued beacon frames per kind (for coalescing)
}

type muxFrame struct {
	f          Frame
	beacon     bool
	beaconKind byte // valid when beacon: distinct beacon types never coalesce
}

func (m *pairMux) other(p ids.ProcID) ids.ProcID {
	if p == m.key.a {
		return m.key.b
	}
	return m.key.a
}

func (m *pairMux) wakeLocked() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// enqueue appends one message to its channel's FIFO queue. Beacons
// coalesce per kind: a channel never holds more than one undelivered
// beacon of a given type, because a second one would carry no extra
// liveness information.
func (m *pairMux) enqueue(k chanKey, msg Message) {
	c := binCodecFor(msg.Payload)
	beacon := c != nil && c.beacon && msg.MsgID == 0
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		m.t.stats.closed.Add(1)
		return
	}
	q := m.queues[k]
	if q == nil {
		q = &muxQueue{}
		m.queues[k] = q
		m.rr = append(m.rr, k)
	}
	if beacon && q.beacons[c.kind] > 0 {
		m.mu.Unlock()
		return // coalesced into the same-kind beacon already queued
	}
	if len(q.frames)-q.head >= tcpQueueDepth {
		m.mu.Unlock()
		m.t.stats.queueSaturated.Add(1)
		return
	}
	f := Frame{From: k.from.String(), To: k.to.String(), MsgID: msg.MsgID, Body: msg.Payload}
	mf := muxFrame{f: f, beacon: beacon}
	if beacon {
		if q.beacons == nil {
			q.beacons = make(map[byte]int, 1)
		}
		q.beacons[c.kind]++
		mf.beaconKind = c.kind
	} else {
		q.seq++
		mf.f.Seq = q.seq
	}
	q.frames = append(q.frames, mf)
	m.pending++
	m.mu.Unlock()
	m.wakeLocked()
}

// next pops the next frame to write, scanning channels round-robin from
// just past the last one served.
func (m *pairMux) next() (muxFrame, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending == 0 {
		return muxFrame{}, false
	}
	n := len(m.rr)
	for i := 0; i < n; i++ {
		slot := (m.rrNext + i) % n
		q := m.queues[m.rr[slot]]
		if q.head == len(q.frames) {
			continue
		}
		mf := q.frames[q.head]
		q.frames[q.head] = muxFrame{}
		q.head++
		if q.head == len(q.frames) {
			q.frames, q.head = q.frames[:0], 0
		}
		if mf.beacon {
			q.beacons[mf.beaconKind]--
		}
		m.pending--
		m.rrNext = (slot + 1) % n
		return mf, true
	}
	return muxFrame{}, false
}

// run is the pair's writer goroutine: it drains the channel queues over a
// buffered stream, flushing whenever the queues empty, dialing lazily and
// retrying each frame once on a fresh connection.
func (m *pairMux) run() {
	defer m.t.wg.Done()
	var (
		cur       net.Conn
		bw        *bufio.Writer
		unflushed int64                // frames written into bw since its last successful flush
		beacons   map[beaconKey][]byte // cached beacon encodings per channel and kind
	)
	// lose counts the frames sitting in a dying buffer: like bytes in a
	// dead peer's kernel buffer they are gone, but unlike those they are
	// observable here, so they land in WriteFailed.
	lose := func() {
		m.t.stats.writeFailed.Add(unflushed)
		unflushed = 0
	}
	flush := func() {
		if bw != nil && bw.Buffered() > 0 {
			if err := bw.Flush(); err != nil {
				lose()
				m.dropConn(cur)
				cur, bw = nil, nil
			}
		}
		unflushed = 0
	}
	for {
		mf, ok := m.next()
		if !ok {
			flush()
			select {
			case <-m.quit:
				return
			case <-m.wake:
				continue
			}
		}
		reason := dropWriteFailed
		for attempt := 0; attempt < 2; attempt++ {
			c, why := m.ensureConn()
			if c == nil {
				reason = why
				if bw != nil {
					lose()
				}
				cur, bw = nil, nil
				break
			}
			if c != cur {
				if bw != nil {
					lose() // an adopted conn replaced cur mid-stream: its buffer died with it
				}
				cur, bw = c, bufio.NewWriterSize(c, 32<<10)
			}
			var err error
			if mf.beacon {
				err = writeCachedBeacon(bw, &beacons, mf.beaconKind, mf.f)
			} else {
				err = WriteFrame(bw, mf.f)
			}
			if err == nil {
				unflushed++
				reason = dropNone
				break
			}
			lose()
			m.dropConn(c)
			cur, bw = nil, nil
		}
		if reason != dropNone {
			m.t.stats.drop(reason)
		}
	}
}

// beaconKey names one beacon type's traffic on one directed channel.
type beaconKey struct {
	ch   chanKey
	kind byte
}

// writeCachedBeacon writes a beacon frame from a per-(channel, kind)
// cache of its encoded bytes: a given beacon type is identical every
// time (no MsgID, no mux sequence), so the steady-state heartbeat path
// allocates nothing.
func writeCachedBeacon(w *bufio.Writer, cache *map[beaconKey][]byte, kind byte, f Frame) error {
	from, err := ids.Parse(f.From)
	if err != nil {
		return err
	}
	to, err := ids.Parse(f.To)
	if err != nil {
		return err
	}
	k := beaconKey{ch: chanKey{from, to}, kind: kind}
	if *cache == nil {
		*cache = make(map[beaconKey][]byte, 2)
	}
	b, ok := (*cache)[k]
	if !ok {
		body, err := AppendFrame(make([]byte, 4), f) // 4-byte prefix + body, one Write
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
		b = body
		(*cache)[k] = b
	}
	_, err = w.Write(b)
	return err
}

// ensureConn returns the pair's connection, dialing (and introducing the
// link with a muxHello) if none is established. A connection adopted from
// the accept side while we dialed wins — the dialed socket is closed.
func (m *pairMux) ensureConn() (net.Conn, dropReason) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil, dropClosed
	}
	if m.conn != nil {
		c := m.conn
		m.mu.Unlock()
		return c, dropNone
	}
	dialTo := m.dialTo
	init := m.other(dialTo)
	m.mu.Unlock()

	t := m.t
	t.mu.RLock()
	addr, ok := t.addrs[dialTo]
	t.mu.RUnlock()
	if !ok {
		return nil, dropUnknownPeer
	}
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, dropDialFailed
	}
	if err := WriteFrame(c, Frame{From: init.String(), To: dialTo.String(), Body: muxHello{}}); err != nil {
		c.Close()
		return nil, dropDialFailed
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		c.Close()
		return nil, dropClosed
	}
	if m.conn != nil { // adopted while we dialed: the established link wins
		adopted := m.conn
		m.mu.Unlock()
		c.Close()
		return adopted, dropNone
	}
	m.conn, m.connInit = c, init
	m.mu.Unlock()
	t.wg.Add(1)
	go t.readConn(c, nil, m) // the reverse direction rides the same socket
	return c, dropNone
}

// dropConn clears c from the mux if it is the established connection and
// closes it; the writer redials (or picks up an adopted replacement) on
// the next frame.
func (m *pairMux) dropConn(c net.Conn) {
	m.mu.Lock()
	if m.conn == c {
		m.conn, m.connInit = nil, ids.Nil
	}
	m.mu.Unlock()
	c.Close()
}

// stop tears the mux down: queued frames are discarded and the writer
// exits.
func (m *pairMux) stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	c := m.conn
	m.conn = nil
	m.queues = make(map[chanKey]*muxQueue)
	m.rr, m.pending = nil, 0
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
	close(m.quit)
}

// --- tcpEndpoint -------------------------------------------------------------

func (ep *tcpEndpoint) track(c net.Conn) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.done {
		return false
	}
	ep.conns[c] = struct{}{}
	return true
}

func (ep *tcpEndpoint) untrack(c net.Conn) {
	ep.mu.Lock()
	delete(ep.conns, c)
	ep.mu.Unlock()
	c.Close()
}

func (ep *tcpEndpoint) shutdown() {
	ep.mu.Lock()
	ep.done = true
	conns := make([]net.Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.conns = make(map[net.Conn]struct{})
	ep.mu.Unlock()
	ep.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
