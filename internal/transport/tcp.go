package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"procgroup/internal/ids"
)

// TCP is the socket transport: every registered process owns a listener,
// and every directed channel (from, to) is one length-prefixed gob stream
// over its own connection, dialed lazily and redialed on failure. One
// connection per channel is what makes the §2.1 FIFO property structural:
// TCP orders bytes within a stream, and a single writer goroutine drains
// each channel's queue in send order.
//
// Peers register locally (loopback clusters) or are introduced with
// AddPeer (cross-host deployments). Sends to a peer that is unknown,
// unreachable, or whose channel queue is saturated are dropped — the
// failure detector owns liveness, the transport only moves bytes.
type TCP struct {
	host string

	mu     sync.Mutex
	addrs  map[ids.ProcID]string
	locals map[ids.ProcID]*tcpEndpoint
	chans  map[chanKey]*tcpChan
	closed bool
	wg     sync.WaitGroup
}

// chanKey names one directed channel.
type chanKey struct{ from, to ids.ProcID }

// tcpEndpoint is one registered process's accepting side.
type tcpEndpoint struct {
	owner string // ids.ProcID.String() of the registered process
	ln    net.Listener
	h     Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// tcpChan is one directed channel's sending side.
type tcpChan struct {
	q    chan Frame
	stop chan struct{}
}

// tcpQueueDepth bounds a channel's outbound queue. Protocol traffic is a
// handful of messages per view change; hitting this depth means the peer
// is unreachable and the frames would be dropped at dial time anyway.
const tcpQueueDepth = 1024

// NewTCP builds a TCP transport whose listeners bind loopback.
func NewTCP() *TCP { return NewTCPHost("127.0.0.1") }

// NewTCPHost builds a TCP transport binding listeners on host.
func NewTCPHost(host string) *TCP {
	return &TCP{
		host:   host,
		addrs:  make(map[ids.ProcID]string),
		locals: make(map[ids.ProcID]*tcpEndpoint),
		chans:  make(map[chanKey]*tcpChan),
	}
}

// AddPeer introduces a remote process reachable at addr, for deployments
// where the group spans OS processes or hosts.
func (t *TCP) AddPeer(p ids.ProcID, addr string) {
	t.mu.Lock()
	t.addrs[p] = addr
	t.mu.Unlock()
}

// Addr reports the listen address of a registered process, for handing to
// AddPeer on other transports.
func (t *TCP) Addr(p ids.ProcID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[p]
	return a, ok
}

// Register implements Transport: it opens p's listener and starts its
// accept loop.
func (t *TCP) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp is closed")
	}
	if _, dup := t.locals[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(t.host, "0"))
	if err != nil {
		return fmt.Errorf("transport: listen for %v: %w", p, err)
	}
	ep := &tcpEndpoint{owner: p.String(), ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	t.locals[p] = ep
	t.addrs[p] = ln.Addr().String()
	t.wg.Add(1)
	go t.accept(ep)
	return nil
}

// Unregister implements Transport: p's listener and accepted connections
// close, so peers dialing it fail and drop, like a dead host.
func (t *TCP) Unregister(p ids.ProcID) {
	t.mu.Lock()
	ep, ok := t.locals[p]
	if ok {
		delete(t.locals, p)
	}
	// The stale address stays in addrs: dials to it now fail, which is
	// exactly the dead-host behavior senders must see.
	var drop []*tcpChan
	for k, ch := range t.chans {
		if k.from == p {
			drop = append(drop, ch)
			delete(t.chans, k)
		}
	}
	t.mu.Unlock()
	if ok {
		ep.shutdown()
	}
	for _, ch := range drop {
		close(ch.stop)
	}
}

// Send implements Transport.
func (t *TCP) Send(from, to ids.ProcID, m Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	k := chanKey{from, to}
	ch, ok := t.chans[k]
	if !ok {
		ch = &tcpChan{q: make(chan Frame, tcpQueueDepth), stop: make(chan struct{})}
		t.chans[k] = ch
		t.wg.Add(1)
		go t.write(ch, to)
	}
	t.mu.Unlock()
	f := Frame{From: from.String(), To: to.String(), MsgID: m.MsgID, Body: m.Payload}
	select {
	case ch.q <- f:
	default: // peer unreachable long enough to fill the queue: datagram loss
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.locals = make(map[ids.ProcID]*tcpEndpoint)
	chs := make([]*tcpChan, 0, len(t.chans))
	for _, ch := range t.chans {
		chs = append(chs, ch)
	}
	t.chans = make(map[chanKey]*tcpChan)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	for _, ch := range chs {
		close(ch.stop)
	}
	t.wg.Wait()
	return nil
}

// accept runs one endpoint's accept loop.
func (t *TCP) accept(ep *tcpEndpoint) {
	defer t.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed by shutdown
		}
		if !ep.track(c) {
			c.Close()
			return
		}
		t.wg.Add(1)
		go t.read(ep, c)
	}
}

// read drains one accepted connection, handing each frame to the
// endpoint's handler in stream order.
func (t *TCP) read(ep *tcpEndpoint, c net.Conn) {
	defer t.wg.Done()
	defer ep.untrack(c)
	for {
		f, err := ReadFrame(c)
		if err != nil {
			return // EOF on peer close, or corruption: abandon the stream
		}
		if f.To != ep.owner {
			// Addressed to a different process: the OS reused a dead
			// process's ephemeral port for this endpoint and a sender is
			// still dialing the stale address. Those datagrams are lost,
			// not misdelivered.
			continue
		}
		from, err := ids.Parse(f.From)
		if err != nil {
			continue
		}
		ep.h(from, Message{MsgID: f.MsgID, Payload: f.Body})
	}
}

// write drains one directed channel's queue over a lazily-dialed
// connection, redialing once per frame on failure.
func (t *TCP) write(ch *tcpChan, to ids.ProcID) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-ch.stop:
			return
		case f := <-ch.q:
			for attempt := 0; attempt < 2; attempt++ {
				if conn == nil {
					t.mu.Lock()
					addr, ok := t.addrs[to]
					t.mu.Unlock()
					if !ok {
						break // unknown peer: drop
					}
					c, err := net.DialTimeout("tcp", addr, time.Second)
					if err != nil {
						break // unreachable: drop, redial on next frame
					}
					conn = c
				}
				if err := WriteFrame(conn, f); err != nil {
					conn.Close()
					conn = nil
					continue // one reconnect attempt for this frame
				}
				break
			}
		}
	}
}

func (ep *tcpEndpoint) track(c net.Conn) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.done {
		return false
	}
	ep.conns[c] = struct{}{}
	return true
}

func (ep *tcpEndpoint) untrack(c net.Conn) {
	ep.mu.Lock()
	delete(ep.conns, c)
	ep.mu.Unlock()
	c.Close()
}

func (ep *tcpEndpoint) shutdown() {
	ep.mu.Lock()
	ep.done = true
	conns := make([]net.Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.conns = make(map[net.Conn]struct{})
	ep.mu.Unlock()
	ep.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
