package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"procgroup/internal/ids"
)

// TCP is the socket transport: every registered process owns a listener,
// and every unordered peer pair {p, q} shares ONE multiplexed connection
// carrying channel-tagged frames for both directions — n(n−1)/2 sockets
// for a fully-connected n-process group instead of the n(n−1) of the old
// one-socket-per-directed-channel design. The §2.1 per-channel FIFO
// property stays structural: TCP orders bytes within the stream, a single
// writer goroutine per pair drains the per-channel FIFO queues fairly
// (round-robin, in-queue order), and every sequenced frame carries a
// per-channel mux sequence number that the reader checks.
//
// Peers register locally (loopback clusters) or are introduced with
// AddPeer (cross-host deployments). Sends to a peer that is unknown,
// unreachable, or whose channel queue is saturated are dropped — the
// failure detector owns liveness, the transport only moves bytes — and
// every drop is counted by reason (Stats).
type TCP struct {
	host string

	mu     sync.RWMutex
	addrs  map[ids.ProcID]string
	locals map[ids.ProcID]*tcpEndpoint
	pairs  map[pairKey]*pairMux
	closed bool
	wg     sync.WaitGroup
	stats  statCounters

	// localsGen counts mutations of locals; readers cache endpoint
	// lookups against it (routeState.endpoint).
	localsGen atomic.Uint64

	// pairsSnap is a copy-on-write snapshot of pairs, republished on
	// every (rare) mutation, so the Send fast path resolves its mux with
	// one atomic load instead of an RWMutex round trip per frame.
	pairsSnap atomic.Pointer[map[pairKey]*pairMux]

	// shards is the decode worker pool (nil when tcpReadShards ≤ 1 and
	// connections decode inline on their read goroutine). See readShard.
	shards  []*readShard
	shardWg sync.WaitGroup
}

// chanKey names one directed channel.
type chanKey struct{ from, to ids.ProcID }

// pairKey names one unordered peer pair, canonically ordered (a ≤ b).
type pairKey struct{ a, b ids.ProcID }

func pairOf(p, q ids.ProcID) pairKey {
	if q.Less(p) {
		p, q = q, p
	}
	return pairKey{a: p, b: q}
}

// tcpEndpoint is one registered process's accepting side.
type tcpEndpoint struct {
	ln net.Listener
	h  Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// tcpQueueDepth bounds a channel's outbound queue. Protocol traffic is a
// handful of messages per view change; hitting this depth means the peer
// is unreachable and the frames would be dropped at dial time anyway.
// (A var, not a const, so saturation tests can lower it.)
var tcpQueueDepth = 1024

// tcpReadShards sets the decode fan-out of transports built after it:
// inbound frames are decoded by this many worker goroutines instead of
// on each connection's read goroutine, so decode work scales with the
// cores available. At 1 (any single-core box) the pool is skipped
// entirely — a per-frame goroutine handoff on one core only adds
// scheduling latency. (A var, not a const, so tests can force the
// sharded path regardless of GOMAXPROCS.)
var tcpReadShards = min(runtime.GOMAXPROCS(0), 16)

// tcpPostDialHook, when non-nil (tests only), runs in ensureConn after
// the dial and hello succeed but before the pair state is re-examined —
// the simultaneous-open window, made steerable so the adopt/ensureConn
// interleaving can be forced deterministically instead of raced.
var tcpPostDialHook func(init, dialTo ids.ProcID)

// NewTCP builds a TCP transport whose listeners bind loopback.
func NewTCP() *TCP { return NewTCPHost("127.0.0.1") }

// NewTCPHost builds a TCP transport binding listeners on host.
func NewTCPHost(host string) *TCP {
	t := &TCP{
		host:   host,
		addrs:  make(map[ids.ProcID]string),
		locals: make(map[ids.ProcID]*tcpEndpoint),
		pairs:  make(map[pairKey]*pairMux),
	}
	if n := tcpReadShards; n > 1 {
		t.shards = make([]*readShard, n)
		for i := range t.shards {
			sh := &readShard{ch: make(chan shardItem, 256)}
			t.shards[i] = sh
			t.shardWg.Add(1)
			go t.runShard(sh)
		}
	}
	return t
}

// AddPeer introduces a remote process reachable at addr, for deployments
// where the group spans OS processes or hosts.
func (t *TCP) AddPeer(p ids.ProcID, addr string) {
	t.mu.Lock()
	t.addrs[p] = addr
	t.mu.Unlock()
}

// Addr reports the listen address of a registered process, for handing to
// AddPeer on other transports.
func (t *TCP) Addr(p ids.ProcID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[p]
	return a, ok
}

// Stats implements Transport. ConnsOpen reports the pair links currently
// established — the lazily-dialed connection footprint a monitoring
// topology actually produces (pairs whose mux exists but whose link is
// down or not yet dialed do not count).
func (t *TCP) Stats() Stats {
	s := t.stats.snapshot()
	t.mu.RLock()
	pairs := make([]*pairMux, 0, len(t.pairs))
	for _, m := range t.pairs {
		pairs = append(pairs, m)
	}
	t.mu.RUnlock()
	for _, m := range pairs {
		m.mu.Lock()
		if m.conn != nil {
			s.ConnsOpen++
		}
		s.SendQueueNow += int64(m.pending)
		m.mu.Unlock()
	}
	return s
}

// Register implements Transport: it opens p's listener and starts its
// accept loop.
func (t *TCP) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp is closed")
	}
	if _, dup := t.locals[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(t.host, "0"))
	if err != nil {
		return fmt.Errorf("transport: listen for %v: %w", p, err)
	}
	ep := &tcpEndpoint{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	t.locals[p] = ep
	t.localsGen.Add(1)
	t.addrs[p] = ln.Addr().String()
	t.wg.Add(1)
	go t.accept(ep)
	return nil
}

// Unregister implements Transport: p's listener, its accepted connections,
// and every pair mux touching p close, so peers sending to it fail and
// drop, like a dead host. Channels between other pairs are untouched.
func (t *TCP) Unregister(p ids.ProcID) {
	t.mu.Lock()
	ep, ok := t.locals[p]
	if ok {
		delete(t.locals, p)
		t.localsGen.Add(1)
	}
	// The stale address stays in addrs: dials to it now fail, which is
	// exactly the dead-host behavior senders must see.
	var drop []*pairMux
	for k, m := range t.pairs {
		if k.a == p || k.b == p {
			drop = append(drop, m)
			delete(t.pairs, k)
		}
	}
	if len(drop) > 0 {
		t.republishPairsLocked()
	}
	t.mu.Unlock()
	if ok {
		ep.shutdown()
	}
	for _, m := range drop {
		m.stop()
	}
}

// Send implements Transport.
func (t *TCP) Send(from, to ids.ProcID, m Message) {
	t.stats.noteSend(m.Payload)
	if from == to {
		// Self-sends never touch a socket (there is no {p, p} pair);
		// deliver directly, matching Inmem's contract.
		t.mu.RLock()
		closed := t.closed
		ep := t.locals[to]
		t.mu.RUnlock()
		switch {
		case closed:
			t.stats.drop(dropClosed)
		case ep == nil:
			t.stats.drop(dropUnknownPeer)
		default:
			ep.h(from, m)
		}
		return
	}
	k := pairOf(from, to)
	// Fast path: resolve the mux from the lock-free snapshot. enqueue
	// reports false only for a mux stopped since the snapshot — fall
	// through and let the locked path sort out why.
	if snap := t.pairsSnap.Load(); snap != nil {
		if mx := (*snap)[k]; mx != nil && mx.enqueue(chanKey{from, to}, m) {
			return
		}
	}
	t.mu.RLock()
	closed := t.closed
	mx := t.pairs[k]
	t.mu.RUnlock()
	if closed {
		t.stats.closed.Add(1)
		return
	}
	if mx == nil {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			t.stats.closed.Add(1)
			return
		}
		mx = t.pairs[k]
		if mx == nil {
			mx = t.newPairLocked(k, to)
		}
		t.mu.Unlock()
	}
	if !mx.enqueue(chanKey{from, to}, m) {
		t.stats.closed.Add(1)
	}
}

// newPairLocked creates the mux for pair k and starts its writer; t.mu
// must be held. dialTo is the end this instance dials if it has to
// establish the link itself.
func (t *TCP) newPairLocked(k pairKey, dialTo ids.ProcID) *pairMux {
	m := &pairMux{
		t:      t,
		key:    k,
		dialTo: dialTo,
		queues: make(map[chanKey]*muxQueue, 2),
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	t.pairs[k] = m
	t.republishPairsLocked()
	t.wg.Add(1)
	go m.run()
	return m
}

// republishPairsLocked refreshes the lock-free pairs snapshot; t.mu must
// be held. Pair churn is rare (creation, unregister, close), so the copy
// cost never rides the send path.
func (t *TCP) republishPairsLocked() {
	snap := make(map[pairKey]*pairMux, len(t.pairs))
	for k, m := range t.pairs {
		snap[k] = m
	}
	t.pairsSnap.Store(&snap)
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := make([]*tcpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.locals = make(map[ids.ProcID]*tcpEndpoint)
	t.localsGen.Add(1)
	muxes := make([]*pairMux, 0, len(t.pairs))
	for _, m := range t.pairs {
		muxes = append(muxes, m)
	}
	t.pairs = make(map[pairKey]*pairMux)
	t.republishPairsLocked()
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	for _, m := range muxes {
		m.stop()
	}
	t.wg.Wait()
	// Readers are gone, so nothing can enqueue into the shard pool; let
	// the workers drain what is in flight and exit.
	for _, sh := range t.shards {
		close(sh.ch)
	}
	t.shardWg.Wait()
	return nil
}

// accept runs one endpoint's accept loop.
func (t *TCP) accept(ep *tcpEndpoint) {
	defer t.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed by shutdown
		}
		if !ep.track(c) {
			c.Close()
			return
		}
		t.wg.Add(1)
		go t.readConn(c, ep, nil)
	}
}

// readConn drains one connection — accepted (ep non-nil) or dialed by a
// pair writer (m non-nil) — routing each frame to the addressed local
// handler. The stream is buffered, so a frame costs amortized fractions
// of a read syscall rather than two. A muxHello adopts the connection
// into its pair's mux so the accepting side can send on the same socket.
//
// With a shard pool (multi-core), the reader only frames the stream: it
// peeks each frame's channel identifiers, hashes them, and hands the raw
// body to that channel's decode shard. One channel always maps to one
// shard, so the §2.1 per-channel FIFO survives the fan-out; distinct
// channels decode concurrently. Without a pool the reader decodes
// inline, exactly the single-core-optimal path.
func (t *TCP) readConn(c net.Conn, ep *tcpEndpoint, m *pairMux) {
	defer t.wg.Done()
	fr := newFrameReader(bufio.NewReaderSize(c, 128<<10))
	shards := t.shards
	var states []*routeState
	if len(shards) > 0 {
		// Per-connection, per-shard routing state: shard i is the only
		// goroutine that ever touches states[i].
		states = make([]*routeState, len(shards))
		for i := range states {
			states[i] = newRouteState()
		}
	}
	var rs *routeState
	if len(shards) == 0 {
		rs = newRouteState()
	}
	for {
		body, err := fr.readBody()
		if err != nil {
			break // EOF on peer close, or framing corruption: abandon the stream
		}
		if len(body) == 0 {
			t.stats.drop(dropDecodeFailed)
			break
		}
		if len(shards) == 0 {
			// Single-core path: decode and route inline — the frame stays
			// on this goroutine's stack.
			fr.dec.reset(body)
			f, err := decodeFrame(&fr.dec)
			if err != nil {
				t.stats.drop(dropDecodeFailed)
				break
			}
			if _, hello := f.Body.(muxHello); hello {
				mm, keep := t.adopt(f, c)
				if !keep {
					break
				}
				if mm != nil {
					m = mm
				}
				continue
			}
			t.route(f, rs)
			continue
		}
		// Hellos and gob frames decode inline even with shards: a hello
		// must adopt before later frames dispatch, and a gob body's
		// channel cannot be found without decoding it. A decoded gob
		// frame still rides its channel's shard queue so it cannot
		// reorder against binary frames of the same channel.
		if body[0] == kindMuxHello || body[0] == kindGob {
			fr.dec.reset(body)
			f := new(Frame) // escapes by design: it may be handed to a shard
			*f, err = decodeFrame(&fr.dec)
			if err != nil {
				t.stats.drop(dropDecodeFailed)
				break
			}
			if _, hello := f.Body.(muxHello); hello {
				mm, keep := t.adopt(*f, c)
				if !keep {
					break
				}
				if mm != nil {
					m = mm
				}
				continue
			}
			idx := int(fnvStrings(f.From, f.To) % uint32(len(shards)))
			shards[idx].ch <- shardItem{f: f, rs: states[idx], conn: c}
			continue
		}
		h, ok := chanShard(body)
		if !ok {
			t.stats.drop(dropDecodeFailed)
			break
		}
		idx := int(h % uint32(len(shards)))
		bp := shardBufs.Get().(*[]byte)
		*bp = append((*bp)[:0], body...)
		shards[idx].ch <- shardItem{body: bp, rs: states[idx], conn: c}
	}
	if m != nil {
		m.dropConn(c)
	}
	if ep != nil {
		ep.untrack(c)
	}
	c.Close()
}

// readShard is one decode worker: a FIFO of raw frame bodies drained by
// one goroutine, so everything dispatched to a shard stays in dispatch
// order.
type readShard struct {
	ch chan shardItem
}

// shardItem is one inbound frame in flight to its decode shard: either a
// raw pooled body, or (gob frames) an already-decoded frame that only
// needs routing. rs is the dispatching connection's routing state for
// this shard; conn lets the worker kill the stream on decode failure.
type shardItem struct {
	body *[]byte
	f    *Frame
	rs   *routeState
	conn net.Conn
}

// shardBufs pools raw frame bodies between connection readers and decode
// shards.
var shardBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// runShard decodes and routes frames for one shard.
func (t *TCP) runShard(sh *readShard) {
	defer t.shardWg.Done()
	var d Decoder
	d.intern = make(map[string]string)
	for it := range sh.ch {
		if it.f != nil {
			t.route(*it.f, it.rs)
			continue
		}
		d.reset(*it.body)
		f, err := decodeFrame(&d)
		shardBufs.Put(it.body)
		if err != nil {
			// Undecodable bytes mean the stream can no longer be trusted;
			// closing the conn unwinds its reader, mirroring the inline
			// path's abandon-on-corruption.
			t.stats.drop(dropDecodeFailed)
			it.conn.Close()
			continue
		}
		t.route(f, it.rs)
	}
}

// chanShard extracts the From/To identifier bytes of a binary frame body
// without decoding it and hashes them, so a reader can pick the frame's
// decode shard. Every frame of one directed channel hashes identically —
// per-channel FIFO is preserved across the fan-out.
func chanShard(body []byte) (uint32, bool) {
	off := 1 // skip the kind tag; two uvarint-length-prefixed strings follow
	h := uint32(2166136261)
	for i := 0; i < 2; i++ {
		n, w := binary.Uvarint(body[off:])
		if w <= 0 || n > uint64(len(body)-off-w) {
			return 0, false
		}
		off += w
		for _, b := range body[off : off+int(n)] {
			h = (h ^ uint32(b)) * 16777619
		}
		off += int(n)
	}
	return h, true
}

// fnvStrings hashes from and to exactly as chanShard hashes their wire
// bytes, so pre-decoded frames land in the same shard as binary ones.
func fnvStrings(from, to string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(from); i++ {
		h = (h ^ uint32(from[i])) * 16777619
	}
	for i := 0; i < len(to); i++ {
		h = (h ^ uint32(to[i])) * 16777619
	}
	return h
}

// routeState caches one inbound goroutine's routing lookups so the
// steady-state read path avoids a string-keyed map hash and an RWMutex
// round per frame. An instance is confined to a single goroutine's view
// of a single connection: the connection reader (inline decode) or one
// decode shard, and dies with the connection — which is what starts the
// FIFO check fresh across a reconnect.
type routeState struct {
	seqs  map[chanKey]*uint64 // per-channel mux sequence floor
	lastK chanKey             // cache of the channel the previous frame used
	lastP *uint64
	eps   [2]epCache // a mux connection serves exactly two destinations
	next  int
	gen   uint64
}

type epCache struct {
	to ids.ProcID
	ep *tcpEndpoint
	ok bool
}

func newRouteState() *routeState { return &routeState{seqs: make(map[chanKey]*uint64)} }

func (rs *routeState) seqPtr(k chanKey) *uint64 {
	if rs.lastP != nil && k == rs.lastK {
		return rs.lastP
	}
	p := rs.seqs[k]
	if p == nil {
		p = new(uint64)
		rs.seqs[k] = p
	}
	rs.lastK, rs.lastP = k, p
	return p
}

// endpoint resolves to's local endpoint through a generation-checked
// cache: any Register/Unregister bumps t.localsGen, invalidating every
// cached entry at once, so a cached hit can never outlive the
// registration it saw.
func (rs *routeState) endpoint(t *TCP, to ids.ProcID) *tcpEndpoint {
	if t.localsGen.Load() == rs.gen {
		for i := range rs.eps {
			if rs.eps[i].ok && rs.eps[i].to == to {
				return rs.eps[i].ep
			}
		}
	}
	t.mu.RLock()
	ep := t.locals[to]
	gen := t.localsGen.Load() // re-read under the lock: stable vs writers
	t.mu.RUnlock()
	if gen != rs.gen {
		rs.eps, rs.next, rs.gen = [2]epCache{}, 0, gen
	}
	rs.eps[rs.next] = epCache{to: to, ep: ep, ok: true}
	rs.next = (rs.next + 1) % len(rs.eps)
	return ep
}

// route hands one inbound frame to the local process it addresses. A
// frame for a process this instance does not host is dropped, not
// misdelivered — the port-reuse hazard: after a process dies, the OS can
// hand its ephemeral port to a new listener while senders still dial the
// stale address. Sequenced frames (Seq > 0) must advance their channel's
// mux sequence within this connection — the §2.1 FIFO contract made
// checkable on the wire for the stream's lifetime. Across a reconnect
// the check starts fresh: the boundary keeps datagram semantics (a frame
// retried on the replacement connection can duplicate or reorder against
// the dying stream's tail), exactly as the one-socket-per-channel design
// behaved on redial.
func (t *TCP) route(f Frame, rs *routeState) {
	from, err := ids.Parse(f.From)
	if err != nil {
		return
	}
	to, err := ids.Parse(f.To)
	if err != nil {
		return
	}
	ep := rs.endpoint(t, to)
	if ep == nil {
		return
	}
	if f.Seq != 0 {
		p := rs.seqPtr(chanKey{from, to})
		if f.Seq <= *p {
			return // stale or replayed within the stream: never reorder
		}
		*p = f.Seq
	}
	ep.h(from, Message{MsgID: f.MsgID, Payload: f.Body})
}

// adopt attaches an accepted mux connection to its pair entry, resolving
// simultaneous opens deterministically: the connection initiated by the
// smaller pair end survives on both sides. Returns the mux to associate
// with the reader (nil for read-only use) and whether to keep reading.
func (t *TCP) adopt(hello Frame, c net.Conn) (*pairMux, bool) {
	init, err := ids.Parse(hello.From)
	if err != nil {
		return nil, false
	}
	acceptor, err := ids.Parse(hello.To)
	if err != nil || init == acceptor {
		return nil, false
	}
	k := pairOf(init, acceptor)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false
	}
	if _, local := t.locals[acceptor]; !local {
		// A hello for a pair this instance does not host: stale-port or
		// adversarial traffic. Reject rather than allocate mux state and
		// a writer goroutine for an unverifiable pair.
		t.mu.Unlock()
		return nil, false
	}
	m := t.pairs[k]
	if m == nil {
		m = t.newPairLocked(k, init) // redials go back to the initiator
	}
	t.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, false
	}
	switch {
	case m.conn == nil:
		m.conn, m.connInit = c, init
		m.wakeLocked()
		return m, true
	case m.connInit == init && m.conn.LocalAddr().String() == c.RemoteAddr().String():
		// The far end of our own dialed connection (both pair ends live
		// in this instance): read from it, write on the dialed end.
		return nil, true
	case m.connInit == init, init.Less(m.connInit):
		// Same initiator on a new socket (remote redialed after its old
		// conn died), or a simultaneous open won by the smaller end:
		// the inbound connection replaces the incumbent.
		old := m.conn
		m.conn, m.connInit = c, init
		old.Close()
		m.wakeLocked()
		return m, true
	default:
		return nil, false // simultaneous open, incumbent wins: reject inbound
	}
}

// --- pairMux -----------------------------------------------------------------

// pairMux is the multiplexed link for one unordered peer pair. All
// directed channels between the two ends share one connection; a single
// writer goroutine drains the per-channel FIFO queues round-robin so no
// channel can starve another, and each channel's frames enter the byte
// stream in send order. Pure beacons bypass sequencing, coalesce in the
// queue, and are written from a cached per-channel encoding — a
// steady-state heartbeat costs no allocations at all.
type pairMux struct {
	t   *TCP
	key pairKey

	mu       sync.Mutex
	queues   map[chanKey]*muxQueue
	lastK    chanKey   // cache of the queue the previous enqueue used:
	lastQ    *muxQueue // a mux serves 2 channels, so the hit rate is high
	rr       []chanKey // round-robin scan order over queues
	rrNext   int
	pending  int
	conn     net.Conn   // established link: dialed here or adopted from accept
	connInit ids.ProcID // which pair end initiated conn (simultaneous-open tie-break)
	dialTo   ids.ProcID // the end this instance dials to establish the link
	stopped  bool

	wake chan struct{}
	quit chan struct{}
}

// muxQueue is one directed channel's FIFO of queued frames.
type muxQueue struct {
	frames  []muxFrame
	head    int
	seq     uint64       // last mux sequence stamped on this channel
	beacons map[byte]int // queued beacon frames per kind (for coalescing)
}

type muxFrame struct {
	f          Frame
	beacon     bool
	beaconKind byte // valid when beacon: distinct beacon types never coalesce
}

func (m *pairMux) other(p ids.ProcID) ids.ProcID {
	if p == m.key.a {
		return m.key.b
	}
	return m.key.a
}

func (m *pairMux) wakeLocked() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// enqueue appends one message to its channel's FIFO queue, reporting
// false if the mux has been stopped (the caller owns that accounting).
// Beacons coalesce per kind: a channel never holds more than one
// undelivered beacon of a given type, because a second one would carry
// no extra liveness information.
func (m *pairMux) enqueue(k chanKey, msg Message) bool {
	c := binCodecFor(msg.Payload)
	// Volatile beacons carry changing contents, so neither coalescing
	// nor the writer's byte cache may treat them as interchangeable;
	// they ride the queue as ordinary sequenced frames.
	beacon := c != nil && c.beacon && !c.volatile && msg.MsgID == 0
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return false
	}
	q := m.lastQ
	if q == nil || k != m.lastK {
		q = m.queues[k]
		if q == nil {
			q = &muxQueue{}
			m.queues[k] = q
			m.rr = append(m.rr, k)
		}
		m.lastK, m.lastQ = k, q
	}
	if beacon && q.beacons[c.kind] > 0 {
		m.mu.Unlock()
		return true // coalesced into the same-kind beacon already queued
	}
	if len(q.frames)-q.head >= tcpQueueDepth {
		m.mu.Unlock()
		m.t.stats.queueSaturated.Add(1)
		return true
	}
	f := Frame{From: k.from.String(), To: k.to.String(), MsgID: msg.MsgID, Body: msg.Payload}
	mf := muxFrame{f: f, beacon: beacon}
	if beacon {
		if q.beacons == nil {
			q.beacons = make(map[byte]int, 1)
		}
		q.beacons[c.kind]++
		mf.beaconKind = c.kind
	} else {
		q.seq++
		mf.f.Seq = q.seq
	}
	q.frames = append(q.frames, mf)
	m.pending++
	depth := len(q.frames) - q.head
	m.mu.Unlock()
	m.t.stats.queueDepth(int64(depth))
	m.wakeLocked()
	return true
}

// Batch limits for the pair writer. A batch becomes one vectored write;
// the byte cap chunks a burst of large frames so the encode arena stays
// bounded no matter what rides the stream.
const (
	batchMaxFrames = 1024
	batchMaxBytes  = 256 << 10
)

// popLocked pops the next frame to write, scanning channels round-robin
// from just past the last one served; m.mu must be held.
func (m *pairMux) popLocked() (muxFrame, bool) {
	if m.pending == 0 {
		return muxFrame{}, false
	}
	n := len(m.rr)
	for i := 0; i < n; i++ {
		slot := (m.rrNext + i) % n
		q := m.queues[m.rr[slot]]
		if q.head == len(q.frames) {
			continue
		}
		mf := q.frames[q.head]
		q.frames[q.head] = muxFrame{}
		q.head++
		if q.head == len(q.frames) {
			q.frames, q.head = q.frames[:0], 0
		}
		if mf.beacon {
			q.beacons[mf.beaconKind]--
		}
		m.pending--
		m.rrNext = (slot + 1) % n
		return mf, true
	}
	return muxFrame{}, false
}

// nextBatch drains every ready channel queue round-robin into dst under
// ONE lock acquisition, up to the batch frame cap — under backlog the
// per-frame synchronization cost amortizes across the whole batch.
func (m *pairMux) nextBatch(dst []muxFrame) []muxFrame {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(dst) < batchMaxFrames {
		mf, ok := m.popLocked()
		if !ok {
			break
		}
		dst = append(dst, mf)
	}
	return dst
}

// run is the pair's writer goroutine: it pops a batch of ready frames,
// encodes them back-to-back into a reusable arena, and hands the result
// to the kernel as one vectored write — syscalls and queue locks cost
// per batch, not per frame.
func (m *pairMux) run() {
	defer m.t.wg.Done()
	w := muxWriter{m: m}
	var batch []muxFrame
	for {
		batch = m.nextBatch(batch[:0])
		if len(batch) == 0 {
			select {
			case <-m.quit:
				return
			case <-m.wake:
				continue
			}
		}
		w.writeBatch(batch)
	}
}

// muxWriter owns one writer goroutine's scratch state: the encode arena,
// the vectored-write buffer list, and the per-channel beacon cache.
type muxWriter struct {
	m       *pairMux
	arena   []byte
	bufs    net.Buffers
	vec     net.Buffers // scratch header consumed by WriteTo
	beacons map[beaconKey][]byte
}

// writeBatch encodes the batch into the arena and writes it out in
// chunks of at most batchMaxBytes, each chunk one vectored write. A
// failed chunk retries in full on a fresh connection (hard or soft
// budget per flush) — duplicating across the boundary is permitted
// datagram semantics, and sequenced frames deduplicate at the reader's
// mux sequence check. Once a hard chunk is lost the rest of the batch
// is dropped too: the link stayed down through the whole retry budget,
// and redialing per chunk would only stall the queues further. A lost
// heartbeat-only chunk just skips ahead — any protocol frames later in
// the batch still get their own hard retries.
func (w *muxWriter) writeBatch(batch []muxFrame) {
	a := w.arena[:0]
	chunk := 0    // frames encoded into a and not yet written
	hard := false // chunk holds a frame the reliable-FIFO contract covers
	for i := range batch {
		mf := &batch[i]
		var err error
		if mf.beacon {
			a, err = w.appendBeacon(a, mf)
		} else {
			a, err = appendPrefixed(a, mf.f)
			hard = true
		}
		if err != nil {
			w.m.t.stats.drop(dropWriteFailed) // unencodable frame: skip it, keep the batch
			continue
		}
		chunk++
		if len(a) >= batchMaxBytes {
			if ok, why := w.flush(a, chunk, hard); !ok && hard {
				w.m.t.stats.dropN(why, int64(len(batch)-i-1))
				w.reclaim(a)
				return
			}
			a, chunk, hard = a[:0], 0, false
		}
	}
	w.flush(a, chunk, hard) // the batch ends here: nothing left to count on failure
	w.reclaim(a)
}

// flushAttempts bounds flush's redial-and-rewrite loop for hard chunks.
// Protocol frames ride the stream plane on the paper's reliable-FIFO
// contract (§2.1) and nothing above the transport retransmits, so a
// transiently unreachable peer (a dial racing a simultaneous open, an
// accept loop starved on a loaded host) must be retried here, with
// backoff, rather than silently dropped. The bound keeps a writer from
// spinning on a genuinely dead peer — only this pair's queue stalls
// meanwhile, and a dead peer has nothing else to say on it. (A crashed
// peer refuses instantly, so the dead-host cost is the backoff sleeps,
// not the dial timeouts; the budget is sized for a host descheduled for
// whole seconds, as happens with hundreds of member processes per core
// in the E19 harness.)
//
// Heartbeat-only chunks get soft treatment instead — one immediate
// retry, no backoff: a beacon's information content is its arrival
// time, so a beacon held back by backoff sleeps is worse than a beacon
// dropped (the next one is a fresh sample one interval later, while a
// stale one distorts every inter-arrival the detector fits — the §9
// drop-don't-queue argument, applied to the retry path itself).
const flushAttempts = 8

// flushSoftAttempts is the retry budget for heartbeat-only chunks.
const flushSoftAttempts = 2

// flushBackoffCap caps the linear per-attempt backoff.
const flushBackoffCap = 500 * time.Millisecond

// flush writes a as one vectored write, redialing with backoff on
// failure; the chunk's frames are accounted as drops only once the link
// stays unestablishable (or rejected) through every attempt.
func (w *muxWriter) flush(a []byte, frames int, hard bool) (bool, dropReason) {
	if frames == 0 {
		return true, dropNone
	}
	attempts := flushSoftAttempts
	if hard {
		attempts = flushAttempts
	}
	why := dropWriteFailed
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && hard {
			backoff := min(time.Duration(attempt)*100*time.Millisecond, flushBackoffCap)
			select {
			case <-w.m.quit:
				w.m.t.stats.dropN(dropClosed, int64(frames))
				return false, dropClosed
			case <-time.After(backoff):
			}
		}
		c, dialWhy := w.m.ensureConn()
		if c == nil {
			why = dialWhy
			if why != dropDialFailed {
				// Stopped mux or unknown peer: no later attempt can do
				// better, so don't stall the queue behind a lost cause.
				w.m.t.stats.dropN(why, int64(frames))
				return false, why
			}
			continue
		}
		// WriteTo consumes the Buffers header it is given, so hand it a
		// scratch copy of the header (a field, not a local: a local would
		// escape per call); w.bufs keeps its capacity across batches.
		w.bufs = append(w.bufs[:0], a)
		w.vec = w.bufs
		if _, err := w.vec.WriteTo(c); err == nil {
			return true, dropNone
		}
		why = dropWriteFailed
		w.m.dropConn(c)
	}
	w.m.t.stats.dropN(why, int64(frames))
	return false, why
}

// reclaim keeps the arena for the next batch unless a burst of large
// frames ballooned it past any steady-state need.
func (w *muxWriter) reclaim(a []byte) {
	if cap(a) > batchMaxBytes+maxFrame {
		a = nil
	}
	w.arena = a[:0:cap(a)]
}

// appendPrefixed appends f's length-prefixed wire encoding to a.
func appendPrefixed(a []byte, f Frame) ([]byte, error) {
	start := len(a)
	b, err := AppendFrame(append(a, 0, 0, 0, 0), f)
	if err != nil {
		return a[:start], err
	}
	body := len(b) - start - 4
	if body > maxFrame {
		return b[:start], fmt.Errorf("transport: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(b[start:start+4], uint32(body))
	return b, nil
}

// beaconKey names one beacon type's traffic on one directed channel.
type beaconKey struct {
	ch   chanKey
	kind byte
}

// appendBeacon appends a beacon frame's bytes from a per-(channel, kind)
// cache: a given beacon type is identical every time (no MsgID, no mux
// sequence), so the steady-state heartbeat path allocates nothing.
func (w *muxWriter) appendBeacon(a []byte, mf *muxFrame) ([]byte, error) {
	from, err := ids.Parse(mf.f.From)
	if err != nil {
		return a, err
	}
	to, err := ids.Parse(mf.f.To)
	if err != nil {
		return a, err
	}
	k := beaconKey{ch: chanKey{from, to}, kind: mf.beaconKind}
	if w.beacons == nil {
		w.beacons = make(map[beaconKey][]byte, 2)
	}
	b, ok := w.beacons[k]
	if !ok {
		b, err = appendPrefixed(nil, mf.f)
		if err != nil {
			return a, err
		}
		w.beacons[k] = b
	}
	return append(a, b...), nil
}

// ensureConn returns the pair's connection, dialing (and introducing the
// link with a muxHello) if none is established. A connection adopted from
// the accept side while we dialed is resolved by the same rule adopt
// applies: the connection initiated by the smaller pair end survives.
// Both sides must pick the same winner — if this end kept whichever
// socket happened to establish first while the far end kept the other,
// a simultaneous open would leave each side writing into a connection
// its peer has already abandoned.
func (m *pairMux) ensureConn() (net.Conn, dropReason) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil, dropClosed
	}
	if m.conn != nil {
		c := m.conn
		m.mu.Unlock()
		return c, dropNone
	}
	dialTo := m.dialTo
	init := m.other(dialTo)
	m.mu.Unlock()

	t := m.t
	t.mu.RLock()
	addr, ok := t.addrs[dialTo]
	t.mu.RUnlock()
	if !ok {
		return nil, dropUnknownPeer
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, dropDialFailed
	}
	if err := WriteFrame(c, Frame{From: init.String(), To: dialTo.String(), Body: muxHello{}}); err != nil {
		c.Close()
		return nil, dropDialFailed
	}
	if h := tcpPostDialHook; h != nil {
		h(init, dialTo)
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		c.Close()
		return nil, dropClosed
	}
	if m.conn != nil { // adopted from the accept side while we dialed
		if !init.Less(m.connInit) {
			// The adopted connection's initiator wins the simultaneous
			// open (or it is this instance's own loopback leg): keep it.
			adopted := m.conn
			m.mu.Unlock()
			c.Close()
			return adopted, dropNone
		}
		// This end is the smaller initiator: the far end's adopt keeps
		// the connection *we* dialed, so the adopted one here is already
		// abandoned over there. Our dial wins on both sides.
		old := m.conn
		m.conn, m.connInit = c, init
		m.mu.Unlock()
		old.Close()
		t.wg.Add(1)
		go t.readConn(c, nil, m)
		return c, dropNone
	}
	m.conn, m.connInit = c, init
	m.mu.Unlock()
	t.wg.Add(1)
	go t.readConn(c, nil, m) // the reverse direction rides the same socket
	return c, dropNone
}

// dropConn clears c from the mux if it is the established connection and
// closes it; the writer redials (or picks up an adopted replacement) on
// the next frame.
func (m *pairMux) dropConn(c net.Conn) {
	m.mu.Lock()
	if m.conn == c {
		m.conn, m.connInit = nil, ids.Nil
	}
	m.mu.Unlock()
	c.Close()
}

// stop tears the mux down: queued frames are discarded and the writer
// exits.
func (m *pairMux) stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	c := m.conn
	m.conn = nil
	m.queues = make(map[chanKey]*muxQueue)
	m.lastQ = nil
	m.rr, m.pending = nil, 0
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
	close(m.quit)
}

// --- tcpEndpoint -------------------------------------------------------------

func (ep *tcpEndpoint) track(c net.Conn) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.done {
		return false
	}
	ep.conns[c] = struct{}{}
	return true
}

func (ep *tcpEndpoint) untrack(c net.Conn) {
	ep.mu.Lock()
	delete(ep.conns, c)
	ep.mu.Unlock()
	c.Close()
}

func (ep *tcpEndpoint) shutdown() {
	ep.mu.Lock()
	ep.done = true
	conns := make([]net.Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.conns = make(map[net.Conn]struct{})
	ep.mu.Unlock()
	ep.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
