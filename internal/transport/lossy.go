package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"procgroup/internal/channel"
	"procgroup/internal/ids"
	"procgroup/internal/sim"
)

// LossyOptions shapes the adversarial datagram link under a Lossy
// transport.
type LossyOptions struct {
	// Loss is the per-datagram drop probability (default 0.05).
	Loss float64
	// Dup is the per-datagram duplication probability (default 0.02).
	Dup float64
	// MinDelay/MaxDelay bound the per-datagram latency (default 1–4ms).
	MinDelay, MaxDelay time.Duration
	// RTO is the alternating-bit retransmission timeout (default 10ms).
	RTO time.Duration
	// Seed drives the loss/dup/delay randomness (default 1).
	Seed int64
}

func (o *LossyOptions) fill() {
	if o.Loss == 0 {
		o.Loss = 0.05
	}
	if o.Dup == 0 {
		o.Dup = 0.02
	}
	if o.MinDelay == 0 {
		o.MinDelay = time.Millisecond
	}
	if o.MaxDelay < o.MinDelay {
		o.MaxDelay = 4 * o.MinDelay
	}
	if o.RTO == 0 {
		o.RTO = 10 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Lossy is the paper's §3 substrate made concrete: an in-process datagram
// link that loses, duplicates and delays encoded frames, with the
// alternating-bit protocol of internal/channel layered per directed
// channel to restore the reliable FIFO property the protocol assumes.
// Where the channel package's own tests prove the ABP correct in
// isolation, this transport runs the whole GMP cluster over it — the
// "implementable rather than assumed" claim end-to-end.
//
// Every frame crosses the link as its encoded wire bytes (the same codec
// TCP uses), so a duplicated or delayed datagram is a real byte blob, not
// a shared pointer.
//
// All channel-machine state runs on a single event-loop goroutine driving
// a timestamp-ordered heap (a real-time analogue of sim.Scheduler). The
// loop is what makes the link non-reordering: the ABP's 1-bit sequence
// number only repairs loss and duplication, and independent OS timers with
// near-equal deadlines can fire out of order, so ordering must come from
// the heap, not from timer arrival.
type Lossy struct {
	opts  LossyOptions
	start time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	handlers map[ids.ProcID]Handler
	links    map[chanKey]*lossyLink
	events   eventHeap
	seq      int64
	closed   bool
	stats    statCounters

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// lossyQueueDepth bounds one ABP sender's unacknowledged backlog; past it
// the channel is effectively down and further sends drop like datagrams.
const lossyQueueDepth = 1024

// lossyLink is one directed channel's ABP stack.
type lossyLink struct {
	send   func(any)
	sender *channel.Sender
}

// event is one scheduled callback; fn runs on the loop goroutine.
type event struct {
	at  sim.Time
	seq int64 // FIFO tiebreak among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// NewLossy builds a lossy-datagram transport and starts its event loop.
func NewLossy(opts LossyOptions) *Lossy {
	opts.fill()
	t := &Lossy{
		opts:     opts,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		handlers: make(map[ids.ProcID]Handler),
		links:    make(map[chanKey]*lossyLink),
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go t.loop()
	return t
}

// --- channel.Timeline over real time (one tick = one millisecond) -----------

// Now implements channel.Timeline.
func (t *Lossy) Now() sim.Time { return sim.Time(time.Since(t.start) / time.Millisecond) }

// At implements channel.Timeline: fn is queued on the event heap and runs
// on the loop goroutine, in (time, insertion) order.
func (t *Lossy) At(at sim.Time, fn func()) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.seq++
	heap.Push(&t.events, event{at: at, seq: t.seq, fn: fn})
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// After implements channel.Timeline.
func (t *Lossy) After(d sim.Time, fn func()) { t.At(t.Now()+d, fn) }

// loop pops due events in timestamp order and sleeps until the next one.
func (t *Lossy) loop() {
	defer close(t.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var due []event
		t.mu.Lock()
		now := t.Now()
		for t.events.Len() > 0 && t.events.peek().at <= now {
			due = append(due, heap.Pop(&t.events).(event))
		}
		sleep := time.Hour
		if t.events.Len() > 0 {
			sleep = time.Duration(t.events.peek().at-now) * time.Millisecond
			if sleep <= 0 {
				sleep = time.Millisecond
			}
		}
		t.mu.Unlock()
		for _, e := range due {
			e.fn()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)
		select {
		case <-t.quit:
			return
		case <-t.wake:
		case <-timer.C:
		}
	}
}

// --- Transport ---------------------------------------------------------------

// Register implements Transport.
func (t *Lossy) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: lossy is closed")
	}
	if _, dup := t.handlers[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	t.handlers[p] = h
	return nil
}

// Unregister implements Transport: links touching p stop retransmitting
// (on the loop goroutine, where channel state lives).
func (t *Lossy) Unregister(p ids.ProcID) {
	t.mu.Lock()
	delete(t.handlers, p)
	var stopped []*lossyLink
	for k, l := range t.links {
		if k.from == p || k.to == p {
			stopped = append(stopped, l)
			delete(t.links, k)
		}
	}
	t.mu.Unlock()
	for _, l := range stopped {
		s := l.sender
		t.At(t.Now(), func() { s.Stop() })
	}
}

// Send implements Transport: the frame is encoded (through the codec's
// pooled scratch buffers — only the exact-size datagram that crosses the
// link is retained) and handed to the channel's stop-and-wait sender on
// the loop goroutine. Successive sends on one channel carry increasing
// heap sequence numbers, so the ABP queue sees them in send order.
func (t *Lossy) Send(from, to ids.ProcID, m Message) {
	t.stats.noteSend(m.Payload)
	body, err := EncodeFrame(Frame{From: from.String(), To: to.String(), MsgID: m.MsgID, Body: m.Payload})
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.stats.drop(dropClosed)
		return
	}
	k := chanKey{from, to}
	l, ok := t.links[k]
	if !ok {
		l = t.newLinkLocked(k)
		t.links[k] = l
	}
	t.mu.Unlock()
	t.At(t.Now(), func() {
		// Loop goroutine: the only place sender state may be read.
		if l.sender.Pending() >= lossyQueueDepth {
			t.stats.drop(dropQueueSaturated)
			return
		}
		l.send(body)
	})
}

// Stats implements Transport.
func (t *Lossy) Stats() Stats { return t.stats.snapshot() }

// newLinkLocked wires one directed channel: ABP sender and receiver across
// a lossy link, delivering decoded frames to the destination handler.
// Construction only allocates; all state transitions run on the loop.
func (t *Lossy) newLinkLocked(k chanKey) *lossyLink {
	deliver := func(p any) {
		body, ok := p.([]byte)
		if !ok {
			return
		}
		f, err := DecodeFrame(body)
		if err != nil {
			return
		}
		from, err := ids.Parse(f.From)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handlers[k.to]
		t.mu.Unlock()
		if h == nil {
			// Destination unregistered while the datagram was in flight.
			t.stats.drop(dropUnknownPeer)
			return
		}
		h(from, Message{MsgID: f.MsgID, Payload: f.Body})
	}
	ticks := func(d time.Duration) sim.Time { return sim.Time(d / time.Millisecond) }
	send, sender := channel.Pair(t, t.rng,
		t.opts.Loss, t.opts.Dup,
		ticks(t.opts.MinDelay), ticks(t.opts.MaxDelay), ticks(t.opts.RTO),
		deliver)
	return &lossyLink{send: send, sender: sender}
}

// Close implements Transport: the event loop exits and pending events are
// discarded.
func (t *Lossy) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.handlers = make(map[ids.ProcID]Handler)
	t.links = make(map[chanKey]*lossyLink)
	t.events = nil
	t.mu.Unlock()
	close(t.quit)
	<-t.done
	return nil
}
