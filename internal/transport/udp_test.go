package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"procgroup/internal/ids"
)

// TestUDPDelivery: frames cross the datagram plane intact — identity,
// MsgID, payload. Loopback UDP does not reorder in practice, but the
// test only demands arrival, matching the plane's best-effort contract.
func TestUDPDelivery(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 7, Payload: fifoPayload{N: 3}})
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "datagram delivery")
	m := s.msg(0)
	if m.MsgID != 7 {
		t.Errorf("MsgID = %d, want 7", m.MsgID)
	}
	if p, ok := m.Payload.(fifoPayload); !ok || p.N != 3 {
		t.Errorf("payload = %#v, want fifoPayload{N: 3}", m.Payload)
	}
	s.mu.Lock()
	from := s.from[0]
	s.mu.Unlock()
	if from != a {
		t.Errorf("from = %v, want %v", from, a)
	}
}

// TestUDPBeaconFastPath: beacons ride the cached-encoding path and still
// arrive as the canonical payload value.
func TestUDPBeaconFastPath(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Send(a, b, Message{Payload: hb{}})
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "beacon delivery")
	if _, ok := s.msg(0).Payload.(hb); !ok {
		t.Errorf("payload = %#v, want hb{}", s.msg(0).Payload)
	}
}

// TestUDPSelfSendDeliversDirectly: a self-send never touches the socket.
func TestUDPSelfSendDeliversDirectly(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a := ids.Named("a")
	var s sink
	if err := tr.Register(a, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, a, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	if s.len() != 1 {
		t.Fatalf("self-send delivered %d messages, want 1 (synchronously)", s.len())
	}
}

// TestUDPStatsCountUnknownPeer: a send with no known destination address
// is dropped and counted.
func TestUDPStatsCountUnknownPeer(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a := ids.Named("a")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: fifoPayload{}})
	if got := tr.Stats().UnknownPeer; got != 1 {
		t.Errorf("UnknownPeer = %d, want 1", got)
	}
}

// TestUDPOversizeSendCountsTruncated: an encoding past the datagram
// ceiling is dropped where it stands, counted as Truncated — it would
// be cut short (or rejected) by the kernel anyway.
func TestUDPOversizeSendCountsTruncated(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: gobOnlyPayload{S: strings.Repeat("x", maxDatagram+1)}})
	if got := tr.Stats().Truncated; got != 1 {
		t.Errorf("Truncated = %d, want 1", got)
	}
	if s.len() != 0 {
		t.Errorf("oversize datagram was delivered")
	}
}

// TestUDPMisaddressedDatagramDropped is the port-reuse hazard on the
// datagram plane: a frame landing on b's socket but addressed to some
// other process must be dropped, not delivered to b.
func TestUDPMisaddressedDatagramDropped(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b, c := ids.Named("a"), ids.Named("b"), ids.Named("c")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	// Point c's address at b's socket — the shape of the OS recycling a
	// dead process's port.
	addr, ok := tr.Addr(b)
	if !ok {
		t.Fatal("no address for b")
	}
	if err := tr.AddPeer(c, addr); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, c, Message{MsgID: 1, Payload: fifoPayload{N: 9}})
	tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{N: 2}}) // control frame
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "control frame")
	time.Sleep(20 * time.Millisecond) // give the misaddressed frame time to (not) arrive
	if s.len() != 1 || s.msg(0).MsgID != 2 {
		t.Fatalf("misaddressed datagram reached b's handler: %d messages, first MsgID %d", s.len(), s.msg(0).MsgID)
	}
}

// TestUDPGarbageDatagramCountsDecodeFailed: bytes that do not parse are
// dropped and counted; the socket keeps reading — unlike a corrupt
// stream, the next datagram is independent.
func TestUDPGarbageDatagramCountsDecodeFailed(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	addr, _ := tr.Addr(b)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xfe, 0xba, 0xad}); err != nil { // unknown kind, garbage tail
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return tr.Stats().DecodeFailed >= 1 }, "decode-failed count")
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{}}) // socket must still be alive
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "delivery after garbage")
}

// TestUDPUnregisterSilencesEndpoint: after Unregister, datagrams to the
// old address vanish like sends to a dead host.
func TestUDPUnregisterSilencesEndpoint(t *testing.T) {
	tr := NewUDP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{}})
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "pre-unregister delivery")
	tr.Unregister(b)
	tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{}})
	time.Sleep(20 * time.Millisecond)
	if s.len() != 1 {
		t.Errorf("delivery after Unregister: %d messages", s.len())
	}
}

// --- TwoPlane ----------------------------------------------------------------

// planeCounter wraps a Transport and counts Sends, so a test can see
// which plane TwoPlane routed a frame to.
type planeCounter struct {
	Transport
	sends int64
	mu    sync.Mutex
}

func (p *planeCounter) Send(from, to ids.ProcID, m Message) {
	p.mu.Lock()
	p.sends++
	p.mu.Unlock()
	p.Transport.Send(from, to, m)
}

func (p *planeCounter) count() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sends
}

// TestTwoPlaneRoutesByTrafficClass: pure beacons take the beacon plane;
// protocol frames, gob payloads, and beacon payloads with a MsgID take
// the stream plane.
func TestTwoPlaneRoutesByTrafficClass(t *testing.T) {
	stream := &planeCounter{Transport: NewInmem()}
	beacon := &planeCounter{Transport: NewInmem()}
	tp := NewTwoPlane(stream, beacon)
	defer tp.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tp.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tp.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tp.Send(a, b, Message{Payload: hb{}})                    // pure beacon → beacon plane
	tp.Send(a, b, Message{MsgID: 1, Payload: hb{}})          // recorded send → stream plane
	tp.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{}}) // gob protocol traffic → stream plane
	if got := beacon.count(); got != 1 {
		t.Errorf("beacon plane carried %d frames, want 1", got)
	}
	if got := stream.count(); got != 2 {
		t.Errorf("stream plane carried %d frames, want 2", got)
	}
	if s.len() != 3 {
		t.Errorf("delivered %d frames, want 3", s.len())
	}
}

// TestTwoPlaneStatsMerge: both planes' drop counters surface in one
// Stats value.
func TestTwoPlaneStatsMerge(t *testing.T) {
	stream, beacon := NewInmem(), NewInmem()
	tp := NewTwoPlane(stream, beacon)
	defer tp.Close()
	a := ids.Named("a")
	if err := tp.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	ghost := ids.Named("ghost")
	tp.Send(a, ghost, Message{MsgID: 1, Payload: fifoPayload{}}) // stream-plane drop
	tp.Send(a, ghost, Message{Payload: hb{}})                    // beacon-plane drop
	if got := tp.Stats().UnknownPeer; got != 2 {
		t.Errorf("merged UnknownPeer = %d, want 2", got)
	}
}

// TestTwoPlaneRegisterIsAtomic: a Register that fails on the beacon
// plane must unwind the stream plane's registration too.
func TestTwoPlaneRegisterIsAtomic(t *testing.T) {
	stream, beacon := NewInmem(), NewInmem()
	a := ids.Named("a")
	// Pre-claim a on the beacon plane so TwoPlane's Register collides.
	if err := beacon.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tp := NewTwoPlane(stream, beacon)
	defer tp.Close()
	if err := tp.Register(a, func(ids.ProcID, Message) {}); err == nil {
		t.Fatal("Register succeeded despite beacon-plane collision")
	}
	// The stream plane must have been unwound: a fresh Register works.
	beacon.Unregister(a)
	if err := tp.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatalf("re-Register after unwind: %v", err)
	}
}

// --- Chaos over the datagram plane -------------------------------------------

// TestChaosOverUDPLoss: a fully lossy chaos wrapper over the UDP plane
// consumes every frame and counts it as injected.
func TestChaosOverUDPLoss(t *testing.T) {
	ch := NewChaos(NewUDP(), ChaosOptions{Default: ChaosLink{Loss: 1}})
	defer ch.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := ch.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ch.Send(a, b, Message{Payload: hb{}})
	}
	if got := ch.Stats().ChaosInjected; got != 10 {
		t.Errorf("ChaosInjected = %d, want 10", got)
	}
	if s.len() != 0 {
		t.Errorf("%d frames survived a Loss=1 link", s.len())
	}
}

// TestChaosOverUDPDelay: chaos delay stretches the datagram plane
// without losing frames.
func TestChaosOverUDPDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	ch := NewChaos(NewUDP(), ChaosOptions{Default: ChaosLink{Delay: delay}})
	defer ch.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := ch.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ch.Send(a, b, Message{Payload: hb{}})
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "delayed beacon")
	if took := time.Since(start); took < delay {
		t.Errorf("beacon arrived after %v, want ≥ %v", took, delay)
	}
}

// TestChaosOverUDPPartition: a partitioned link drops beacons until
// healed — the knob the saturation experiment's chaos arms turn.
func TestChaosOverUDPPartition(t *testing.T) {
	ch := NewChaos(NewUDP(), ChaosOptions{})
	defer ch.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := ch.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	ch.Partition(a, b)
	ch.Send(a, b, Message{Payload: hb{}})
	if got := ch.Stats().ChaosInjected; got != 1 {
		t.Errorf("partitioned send: ChaosInjected = %d, want 1", got)
	}
	ch.Heal(a, b)
	ch.Send(a, b, Message{Payload: hb{}})
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "post-heal beacon")
}
