package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"procgroup/internal/core"
)

// Frame is the unit of the wire codec: one message on one directed
// channel, self-contained so it can travel over a byte stream (TCP) or a
// datagram link (Lossy) alike.
type Frame struct {
	From  string // ids.ProcID.String() of the sender
	To    string // ids.ProcID.String() of the destination
	MsgID int64
	Body  any // a registered protocol payload
}

// maxFrame bounds a decoded frame; protocol messages are tiny (a view's
// worth of identifiers at most), so anything near this is stream
// corruption, not traffic.
const maxFrame = 1 << 20

// RegisterPayload makes a concrete payload type encodable inside a Frame.
// The core vocabulary is pre-registered; substrate layers register their
// own beacons (live registers Heartbeat).
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	for _, v := range []any{
		core.Invite{}, core.OK{}, core.Commit{},
		core.Interrogate{}, core.InterrogateOK{},
		core.Propose{}, core.ProposeOK{}, core.ReconfCommit{},
		core.FaultyReport{}, core.JoinRequest{}, core.StateTransfer{},
	} {
		RegisterPayload(v)
	}
}

// EncodeFrame renders f as a self-contained gob blob (no stream state:
// every frame re-carries its type wiring, which is what lets the lossy
// transport drop frames without corrupting a shared decoder).
func EncodeFrame(f Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFrame parses a blob produced by EncodeFrame.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return Frame{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return f, nil
}

// WriteFrame writes f to w as a 4-byte big-endian length prefix followed
// by the gob body.
func WriteFrame(w io.Writer, f Frame) error {
	body, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Frame{}, fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(body)
}
