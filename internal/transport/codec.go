package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
	"sync/atomic"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Frame is the unit of the wire codec: one message on one directed
// channel, self-contained so it can travel over a byte stream (TCP) or a
// datagram link (Lossy) alike.
type Frame struct {
	From  string // ids.ProcID.String() of the sender
	To    string // ids.ProcID.String() of the destination
	Seq   uint64 // per-channel mux sequence (0 = unsequenced, e.g. beacons)
	MsgID int64
	Body  any // a registered protocol payload
}

// maxFrame bounds a decoded frame; protocol messages are tiny (a view's
// worth of identifiers at most), so anything near this is stream
// corruption, not traffic.
const maxFrame = 1 << 20

// Wire format (the 4-byte big-endian length prefix of WriteFrame/ReadFrame
// is outside this layout):
//
//	byte 0:  payload kind tag
//	kind 0:  the rest is a self-contained gob blob of the whole Frame —
//	         the escape hatch for payload types with no binary codec.
//	kind>0:  uvarint-len From | uvarint-len To | uvarint Seq |
//	         varint MsgID | kind-specific payload fields
//
// Strings are uvarint length + raw bytes; process identifiers inside
// payloads are Site string + uvarint incarnation; versions and MsgIDs are
// zigzag varints; slices are uvarint count + elements (count 0 decodes to
// nil). The golden-bytes test in codec_test.go pins this layout.
const (
	kindGob byte = iota // gob escape hatch
	kindInvite
	kindOK
	kindCommit
	kindInterrogate
	kindInterrogateOK
	kindPropose
	kindProposeOK
	kindReconfCommit
	kindFaultyReport
	kindJoinRequest
	kindStateTransfer
	kindMuxHello // transport-internal: announces a mux connection's pair
)

// Substrate layers register their own payloads at kinds ≥ 16; 0–15 are
// reserved for the closed core vocabulary and transport bookkeeping.

// RegisterPayload makes a concrete payload type encodable inside a Frame
// through the kind-0 gob escape hatch. The core vocabulary additionally
// has hand-rolled binary codecs (below); payload types registered only
// here still travel, paying the gob tax per frame.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	for _, v := range []any{
		core.Invite{}, core.OK{}, core.Commit{},
		core.Interrogate{}, core.InterrogateOK{},
		core.Propose{}, core.ProposeOK{}, core.ReconfCommit{},
		core.FaultyReport{}, core.JoinRequest{}, core.StateTransfer{},
	} {
		RegisterPayload(v)
	}
}

// --- Binary payload registry -------------------------------------------------

// payloadCodec is one registered payload type's binary wiring.
type payloadCodec struct {
	kind  byte
	typ   reflect.Type
	empty bool // fieldless payload: decode returns proto, zero allocations
	// beacon marks idempotent liveness signals (heartbeats): they are
	// exempt from per-channel mux sequencing (Seq stays 0), their encoded
	// bytes are cacheable per channel, and queued duplicates coalesce.
	beacon bool
	// volatile marks a beacon whose encoding varies between sends: it
	// still rides the beacon plane, but the per-channel byte caches and
	// duplicate coalescing must not apply — a cached first encoding
	// would silently replay stale contents forever.
	volatile bool
	// suspicion marks payloads that disseminate failure suspicions;
	// every send of one increments Stats.SuspicionFrames.
	suspicion bool
	proto     any
	enc       func(*Encoder, any)
	dec       func(*Decoder) any
}

// PayloadClass refines how a registered binary payload is treated on the
// wire, beyond its field codec.
type PayloadClass struct {
	// Beacon marks an idempotent liveness signal: exempt from mux
	// sequencing, routed to the datagram plane by TwoPlane when MsgID
	// is 0.
	Beacon bool
	// Volatile marks a beacon whose encoded bytes differ between sends,
	// disabling the per-channel beacon byte caches and coalescing that
	// assume a beacon kind is identical every time. Meaningless without
	// Beacon.
	Volatile bool
	// Suspicion marks a payload carrying failure-suspicion
	// dissemination; sends are counted in Stats.SuspicionFrames.
	Suspicion bool
}

// binReg is the registry. Lookups are lock-free — the codec paths hit
// them once per frame on both the encode and decode side, and a shared
// RWMutex there is a measurable fraction of the wire budget; the mutex
// only serializes (rare, init-time) registration.
var binReg = struct {
	sync.Mutex // serializes registration; readers never take it
	byKind     [256]atomic.Pointer[payloadCodec]
	byType     sync.Map // reflect.Type → *payloadCodec
}{}

func registerBinary(kind byte, proto any, enc func(*Encoder, any), dec func(*Decoder) any, empty bool, class PayloadClass) {
	if kind == kindGob {
		panic("transport: kind 0 is the gob escape hatch")
	}
	c := &payloadCodec{
		kind: kind, typ: reflect.TypeOf(proto), empty: empty,
		beacon: class.Beacon, volatile: class.Volatile, suspicion: class.Suspicion,
		proto: proto, enc: enc, dec: dec,
	}
	binReg.Lock()
	defer binReg.Unlock()
	if prev := binReg.byKind[kind].Load(); prev != nil {
		panic(fmt.Sprintf("transport: kind %d already registered to %v", kind, prev.typ))
	}
	if _, dup := binReg.byType.Load(c.typ); dup {
		panic(fmt.Sprintf("transport: %v already has a binary codec", c.typ))
	}
	binReg.byKind[kind].Store(c)
	binReg.byType.Store(c.typ, c)
}

// RegisterBinaryPayload gives a payload type a hand-rolled binary codec at
// the given kind tag (≥ 16 for layers outside this package). enc must
// write and dec must read exactly the same field sequence.
func RegisterBinaryPayload(kind byte, proto any, enc func(*Encoder, any), dec func(*Decoder) any) {
	registerBinary(kind, proto, enc, dec, false, PayloadClass{})
}

// RegisterEmptyPayload registers a fieldless payload type: it costs one
// kind byte on the wire and decodes to a canonical value with zero
// allocations.
func RegisterEmptyPayload(kind byte, proto any) {
	registerBinary(kind, proto, nil, nil, true, PayloadClass{})
}

// RegisterBeaconPayload registers a fieldless liveness beacon. Beacons get
// the fast path end to end: cached per-channel encodings (a steady-state
// beacon send allocates nothing), no mux sequencing, and coalescing of
// duplicates queued behind a slow link.
func RegisterBeaconPayload(kind byte, proto any) {
	registerBinary(kind, proto, nil, nil, true, PayloadClass{Beacon: true})
}

// RegisterClassedPayload registers a binary payload with explicit wire
// treatment. It exists for payloads outside the fixed registration
// shapes above — e.g. a suspicion digest is a beacon (rides the datagram
// plane at cadence) but Volatile (its entries change between sends, so
// byte caches must not apply) and Suspicion (its sends are the cost the
// digest experiment measures).
func RegisterClassedPayload(kind byte, proto any, enc func(*Encoder, any), dec func(*Decoder) any, class PayloadClass) {
	registerBinary(kind, proto, enc, dec, false, class)
}

func binCodecFor(v any) *payloadCodec {
	if c, ok := binReg.byType.Load(reflect.TypeOf(v)); ok {
		return c.(*payloadCodec)
	}
	return nil
}

func binCodecByKind(kind byte) *payloadCodec {
	return binReg.byKind[kind].Load()
}

// muxHello announces which unordered peer pair a freshly dialed mux
// connection serves: From is the initiating end, To the accepted end. It
// never reaches handlers.
type muxHello struct{}

func init() {
	RegisterBeaconPayload(kindMuxHello, muxHello{})
	registerCoreCodecs()
}

// --- Encoder / Decoder -------------------------------------------------------

// Encoder appends wire primitives to a byte slice. The zero value is
// ready to use; Bytes returns the accumulated encoding.
type Encoder struct{ b []byte }

// Bytes returns the encoded bytes accumulated so far.
func (e *Encoder) Bytes() []byte { return e.b }

// Byte appends one raw byte.
func (e *Encoder) Byte(v byte) { e.b = append(e.b, v) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Float64 appends an IEEE-754 double as its fixed 8-byte big-endian bit
// pattern (suspicion levels are unbounded reals; varints buy nothing).
func (e *Encoder) Float64(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// String appends a uvarint length followed by the raw bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a uvarint length followed by the raw bytes, for opaque
// byte-slice payload fields (bulk traffic riding the group's wire).
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.b = append(e.b, b...)
}

// Decoder reads wire primitives from a byte slice. After any failure every
// subsequent read returns a zero value and Err reports the first error —
// codecs read their whole field sequence and check Err once. Decoded
// values never alias the input buffer (strings are copied), so callers may
// pool and reuse it.
type Decoder struct {
	b      []byte
	off    int
	err    error
	intern map[string]string // optional: long-lived readers dedup strings
}

// NewDecoder returns a Decoder over b, for sub-encodings that reuse the
// wire primitives outside a Frame (e.g. application snapshots riding
// ViewSync).
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

func (d *Decoder) reset(b []byte) {
	d.b, d.off, d.err = b, 0, nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: decode: truncated or corrupt %s at offset %d", what, d.off)
	}
}

// Err reports the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left unread.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Float64 reads a fixed 8-byte big-endian IEEE-754 double.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// String reads a uvarint-length-prefixed string (always a copy of the
// input, interned on long-lived readers).
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string")
		return ""
	}
	b := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	// Intern only plausibly-repeating short strings (process identifiers
	// are a handful of bytes), and bound the entry count, so adversarial
	// input cannot pin unbounded memory to a long-lived reader.
	if d.intern != nil && len(b) <= 64 {
		if s, ok := d.intern[string(b)]; ok {
			return s
		}
		s := string(b)
		if len(d.intern) < 1024 {
			d.intern[s] = s
		}
		return s
	}
	return string(b)
}

// Blob reads a uvarint-length-prefixed byte slice (always a copy of the
// input — the buffer may be pooled). An empty blob decodes to nil.
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("blob")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// BlobInto reads a uvarint-length-prefixed byte slice like Blob, but
// copies it into arena's spare capacity instead of a fresh allocation,
// returning the blob and the extended arena. Batch codecs size the arena
// once (total remaining input is an upper bound on total blob bytes) and
// decode every body into it — one allocation per batch instead of one per
// element. The returned blob is capacity-clipped, so appends to it cannot
// clobber a neighbor. An empty blob decodes to nil.
func (d *Decoder) BlobInto(arena []byte) (blob, out []byte) {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil, arena
	}
	if n > uint64(d.Remaining()) {
		d.fail("blob")
		return nil, arena
	}
	start := len(arena)
	arena = append(arena, d.b[d.off:d.off+int(n)]...)
	d.off += int(n)
	return arena[start:len(arena):len(arena)], arena
}

// Count reads a slice length and bounds it by the minimum wire size of
// one element against the remaining input — the safe way for external
// payload codecs to size their element loops (see count).
func (d *Decoder) Count(minElem int) int { return d.count(minElem) }

// count reads a slice length and bounds it by the minimum wire size of
// one element against the remaining input, so a corrupt count cannot
// force an allocation larger than the input that carried it.
func (d *Decoder) count(minElem int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	// Divide, don't multiply: n*minElem can wrap for a hostile 64-bit
	// count and slip past the bound as a small (or negative) number.
	if n > uint64(d.Remaining())/uint64(minElem) {
		d.fail("count")
		return 0
	}
	return int(n)
}

// prealloc clamps a decoded count to a sane initial capacity; append
// grows honest slices past it.
func prealloc(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// --- Frame encode / decode ---------------------------------------------------

// encBufs pools encode scratch buffers: the steady-state wire path
// allocates nothing per frame beyond what the caller retains.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. Payload types with a binary codec use it; everything else falls
// back to the kind-0 gob escape hatch.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	c := binCodecFor(f.Body)
	if c == nil {
		blob, err := EncodeFrameGob(f)
		if err != nil {
			return nil, err
		}
		return append(dst, blob...), nil
	}
	e := Encoder{b: dst}
	e.Byte(c.kind)
	e.String(f.From)
	e.String(f.To)
	e.Uvarint(f.Seq)
	e.Varint(f.MsgID)
	if !c.empty {
		c.enc(&e, f.Body)
	}
	return e.b, nil
}

// EncodeFrame renders f as a self-contained byte blob (pooled scratch
// space, exact-size result — safe to retain, queue, or duplicate).
func EncodeFrame(f Frame) ([]byte, error) {
	bp := encBufs.Get().(*[]byte)
	b, err := AppendFrame((*bp)[:0], f)
	if err != nil {
		encBufs.Put(bp)
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b[:0]
	encBufs.Put(bp)
	return out, nil
}

// EncodeFrameGob forces the kind-0 escape hatch: one self-contained gob
// blob per frame, re-carrying its type wiring every time. Unregistered
// payload types take this path automatically; it is exported as the
// baseline arm of the codec benchmarks.
func EncodeFrameGob(f Frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(kindGob)
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFrame parses a blob produced by AppendFrame/EncodeFrame.
func DecodeFrame(b []byte) (Frame, error) {
	var d Decoder
	d.reset(b)
	return decodeFrame(&d)
}

func decodeFrame(d *Decoder) (Frame, error) {
	if d.Remaining() == 0 {
		return Frame{}, fmt.Errorf("transport: decode empty frame")
	}
	kind := d.Byte()
	if kind == kindGob {
		var f Frame
		if err := gob.NewDecoder(bytes.NewReader(d.b[d.off:])).Decode(&f); err != nil {
			return Frame{}, fmt.Errorf("transport: decode frame: %w", err)
		}
		return f, nil
	}
	c := binCodecByKind(kind)
	if c == nil {
		return Frame{}, fmt.Errorf("transport: unknown payload kind %d", kind)
	}
	f := Frame{From: d.String(), To: d.String(), Seq: d.Uvarint(), MsgID: d.Varint()}
	if c.empty {
		f.Body = c.proto
	} else {
		f.Body = c.dec(d)
	}
	if err := d.Err(); err != nil {
		return Frame{}, err
	}
	if d.Remaining() != 0 {
		return Frame{}, fmt.Errorf("transport: %d trailing bytes after kind-%d frame", d.Remaining(), kind)
	}
	return f, nil
}

// WriteFrame writes f to w as a 4-byte big-endian length prefix followed
// by the wire body, in a single Write (one syscall per frame on sockets).
func WriteFrame(w io.Writer, f Frame) error {
	bp := encBufs.Get().(*[]byte)
	b, err := AppendFrame(append((*bp)[:0], 0, 0, 0, 0), f)
	if err != nil {
		encBufs.Put(bp)
		return err
	}
	body := len(b) - 4
	if body > maxFrame {
		*bp = b[:0]
		encBufs.Put(bp)
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(body))
	_, err = w.Write(b)
	*bp = b[:0]
	encBufs.Put(bp)
	return err
}

// ReadFrame reads one length-prefixed frame from r. The body buffer is
// pooled — decoded frames never alias it.
func ReadFrame(r io.Reader) (Frame, error) {
	var fr frameReader
	fr.r = r
	return fr.read()
}

// frameReader reads length-prefixed frames from one stream with a
// reusable body buffer and string interning: the steady-state read path
// of a mux connection allocates nothing for beacons and only the payload
// for protocol frames.
type frameReader struct {
	r   io.Reader
	hdr [4]byte // field, not a local: a local would escape through io.ReadFull
	buf []byte
	dec Decoder
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r, dec: Decoder{intern: make(map[string]string)}}
}

func (fr *frameReader) read() (Frame, error) {
	body, err := fr.readBody()
	if err != nil {
		return Frame{}, err
	}
	fr.dec.reset(body)
	return decodeFrame(&fr.dec)
}

// readBody reads one length-prefixed frame body into the reader's
// reusable buffer. The returned slice is valid only until the next call.
func (fr *frameReader) readBody() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// --- Core vocabulary codecs --------------------------------------------------

func putProcID(e *Encoder, p ids.ProcID) {
	e.String(p.Site)
	e.Uvarint(uint64(p.Incarnation))
}

func getProcID(d *Decoder) ids.ProcID {
	site := d.String()
	inc := d.Uvarint()
	if inc > math.MaxUint32 {
		d.fail("incarnation")
		return ids.Nil
	}
	return ids.ProcID{Site: site, Incarnation: uint32(inc)}
}

func putProcIDs(e *Encoder, s []ids.ProcID) {
	e.Uvarint(uint64(len(s)))
	for _, p := range s {
		putProcID(e, p)
	}
}

func getProcIDs(d *Decoder) []ids.ProcID {
	n := d.count(2) // site length prefix + incarnation, ≥ 2 bytes each
	if n == 0 {
		return nil
	}
	out := make([]ids.ProcID, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, getProcID(d))
	}
	return out
}

func putOp(e *Encoder, op member.Op) {
	e.Byte(byte(op.Kind))
	putProcID(e, op.Target)
}

func getOp(d *Decoder) member.Op {
	kind := d.Byte()
	return member.Op{Kind: member.OpKind(kind), Target: getProcID(d)}
}

func putVer(e *Encoder, v member.Version) { e.Varint(int64(v)) }

func getVer(d *Decoder) member.Version { return member.Version(d.Varint()) }

func putSeq(e *Encoder, s member.Seq) {
	e.Uvarint(uint64(len(s)))
	for _, op := range s {
		putOp(e, op)
	}
}

func getSeq(d *Decoder) member.Seq {
	n := d.count(3) // op kind + process id, ≥ 3 bytes each
	if n == 0 {
		return nil
	}
	out := make(member.Seq, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, getOp(d))
	}
	return out
}

func putNext(e *Encoder, next member.Next) {
	e.Uvarint(uint64(len(next)))
	for _, t := range next {
		putOp(e, t.Op)
		putProcID(e, t.Coord)
		putVer(e, t.Ver)
		e.Bool(t.Wildcard)
	}
}

func getNext(d *Decoder) member.Next {
	n := d.count(7) // op + coord id + version + wildcard, ≥ 7 bytes each
	if n == 0 {
		return nil
	}
	out := make(member.Next, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, member.Triple{Op: getOp(d), Coord: getProcID(d), Ver: getVer(d), Wildcard: d.Bool()})
	}
	return out
}

func registerCoreCodecs() {
	registerBinary(kindInvite, core.Invite{},
		func(e *Encoder, v any) {
			m := v.(core.Invite)
			putOp(e, m.Op)
			putVer(e, m.Ver)
		},
		func(d *Decoder) any {
			return core.Invite{Op: getOp(d), Ver: getVer(d)}
		}, false, PayloadClass{})

	registerBinary(kindOK, core.OK{},
		func(e *Encoder, v any) { putVer(e, v.(core.OK).Ver) },
		func(d *Decoder) any { return core.OK{Ver: getVer(d)} }, false, PayloadClass{})

	registerBinary(kindCommit, core.Commit{},
		func(e *Encoder, v any) {
			m := v.(core.Commit)
			putOp(e, m.Op)
			putVer(e, m.Ver)
			putOp(e, m.Next)
			putVer(e, m.NextVer)
			putProcIDs(e, m.Faulty)
			putProcIDs(e, m.Recovered)
		},
		func(d *Decoder) any {
			return core.Commit{
				Op: getOp(d), Ver: getVer(d),
				Next: getOp(d), NextVer: getVer(d),
				Faulty: getProcIDs(d), Recovered: getProcIDs(d),
			}
		}, false, PayloadClass{})

	registerBinary(kindInterrogate, core.Interrogate{}, nil, nil, true, PayloadClass{})

	registerBinary(kindInterrogateOK, core.InterrogateOK{},
		func(e *Encoder, v any) {
			m := v.(core.InterrogateOK)
			putVer(e, m.Ver)
			putSeq(e, m.Seq)
			putNext(e, m.Next)
			putProcIDs(e, m.Faulty)
		},
		func(d *Decoder) any {
			return core.InterrogateOK{Ver: getVer(d), Seq: getSeq(d), Next: getNext(d), Faulty: getProcIDs(d)}
		}, false, PayloadClass{})

	registerBinary(kindPropose, core.Propose{},
		func(e *Encoder, v any) {
			m := v.(core.Propose)
			putSeq(e, m.RL)
			putVer(e, m.Ver)
			putOp(e, m.Invis)
			putProcIDs(e, m.Faulty)
		},
		func(d *Decoder) any {
			return core.Propose{RL: getSeq(d), Ver: getVer(d), Invis: getOp(d), Faulty: getProcIDs(d)}
		}, false, PayloadClass{})

	registerBinary(kindProposeOK, core.ProposeOK{},
		func(e *Encoder, v any) { putVer(e, v.(core.ProposeOK).Ver) },
		func(d *Decoder) any { return core.ProposeOK{Ver: getVer(d)} }, false, PayloadClass{})

	registerBinary(kindReconfCommit, core.ReconfCommit{},
		func(e *Encoder, v any) {
			m := v.(core.ReconfCommit)
			putSeq(e, m.RL)
			putVer(e, m.Ver)
			putOp(e, m.Invis)
			putProcIDs(e, m.Faulty)
		},
		func(d *Decoder) any {
			return core.ReconfCommit{RL: getSeq(d), Ver: getVer(d), Invis: getOp(d), Faulty: getProcIDs(d)}
		}, false, PayloadClass{})

	// FaultyReport is the point-to-point suspicion vocabulary (direct
	// reports to the coordinator and the topology relay flood), so it is
	// the relay arm of the SuspicionFrames cost comparison.
	registerBinary(kindFaultyReport, core.FaultyReport{},
		func(e *Encoder, v any) { putProcID(e, v.(core.FaultyReport).Suspect) },
		func(d *Decoder) any { return core.FaultyReport{Suspect: getProcID(d)} }, false, PayloadClass{Suspicion: true})

	registerBinary(kindJoinRequest, core.JoinRequest{},
		func(e *Encoder, v any) { putProcID(e, v.(core.JoinRequest).Joiner) },
		func(d *Decoder) any { return core.JoinRequest{Joiner: getProcID(d)} }, false, PayloadClass{})

	registerBinary(kindStateTransfer, core.StateTransfer{},
		func(e *Encoder, v any) {
			m := v.(core.StateTransfer)
			putProcIDs(e, m.Members)
			putVer(e, m.Ver)
			putSeq(e, m.Seq)
			putProcID(e, m.Coord)
			putOp(e, m.Next)
			putVer(e, m.NextVer)
		},
		func(d *Decoder) any {
			return core.StateTransfer{
				Members: getProcIDs(d), Ver: getVer(d), Seq: getSeq(d),
				Coord: getProcID(d), Next: getOp(d), NextVer: getVer(d),
			}
		}, false, PayloadClass{})
}
