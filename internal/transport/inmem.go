package transport

import (
	"fmt"
	"sync"

	"procgroup/internal/ids"
)

// Inmem is the in-process transport: Send invokes the destination handler
// synchronously on the caller's goroutine. Because each sender issues its
// sends sequentially, per-channel FIFO holds by construction — this is
// exactly the mailbox-to-mailbox delivery the live runtime used before the
// transport layer was extracted.
type Inmem struct {
	mu       sync.RWMutex
	handlers map[ids.ProcID]Handler
	closed   bool
	stats    statCounters
}

// NewInmem builds an empty in-process transport.
func NewInmem() *Inmem {
	return &Inmem{handlers: make(map[ids.ProcID]Handler)}
}

// Register implements Transport.
func (t *Inmem) Register(p ids.ProcID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: inmem is closed")
	}
	if _, dup := t.handlers[p]; dup {
		return fmt.Errorf("transport: %v already registered", p)
	}
	t.handlers[p] = h
	return nil
}

// Unregister implements Transport.
func (t *Inmem) Unregister(p ids.ProcID) {
	t.mu.Lock()
	delete(t.handlers, p)
	t.mu.Unlock()
}

// Send implements Transport. Unknown destinations drop the message.
func (t *Inmem) Send(from, to ids.ProcID, m Message) {
	t.stats.noteSend(m.Payload)
	t.mu.RLock()
	h := t.handlers[to]
	closed := t.closed
	t.mu.RUnlock()
	switch {
	case closed:
		t.stats.drop(dropClosed)
	case h == nil:
		t.stats.drop(dropUnknownPeer)
	default:
		h(from, m)
	}
}

// Stats implements Transport.
func (t *Inmem) Stats() Stats { return t.stats.snapshot() }

// Close implements Transport.
func (t *Inmem) Close() error {
	t.mu.Lock()
	t.handlers = make(map[ids.ProcID]Handler)
	t.closed = true
	t.mu.Unlock()
	return nil
}
