package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// sink collects delivered messages for one registered process.
type sink struct {
	mu   sync.Mutex
	got  []Message
	from []ids.ProcID
}

func (s *sink) handler(from ids.ProcID, m Message) {
	s.mu.Lock()
	s.got = append(s.got, m)
	s.from = append(s.from, from)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) msg(i int) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[i]
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fifoPayload is a minimal registered payload for ordering tests.
type fifoPayload struct{ N int }

func init() { RegisterPayload(fifoPayload{}) }

// checkFIFO sends n messages on one channel and asserts ordered,
// exactly-once delivery — the §2.1 channel property every Transport must
// provide.
func checkFIFO(t *testing.T, tr Transport, n int, wait time.Duration) {
	t.Helper()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	waitFor(t, wait, func() bool { return s.len() >= n }, "all messages")
	if s.len() != n {
		t.Fatalf("delivered %d messages, want exactly %d", s.len(), n)
	}
	for i := 0; i < n; i++ {
		m := s.msg(i)
		if m.MsgID != int64(i+1) {
			t.Fatalf("position %d: got MsgID %d — FIFO violated", i, m.MsgID)
		}
		if p, ok := m.Payload.(fifoPayload); !ok || p.N != i {
			t.Fatalf("position %d: payload %#v", i, m.Payload)
		}
	}
}

func TestInmemFIFO(t *testing.T) {
	tr := NewInmem()
	defer tr.Close()
	checkFIFO(t, tr, 500, 2*time.Second)
}

func TestTCPFIFO(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	checkFIFO(t, tr, 500, 10*time.Second)
}

// TestLossyFIFO is the §3 demonstration in miniature: the link loses,
// duplicates and delays datagrams, and the alternating-bit layer must
// still deliver every payload exactly once, in order.
func TestLossyFIFO(t *testing.T) {
	tr := NewLossy(LossyOptions{
		Loss: 0.15, Dup: 0.1,
		MinDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
		RTO: 6 * time.Millisecond, Seed: 7,
	})
	defer tr.Close()
	checkFIFO(t, tr, 120, 30*time.Second)
}

// TestSendToUnknownIsDropped: datagrams to unregistered ids vanish
// silently on every implementation.
func TestSendToUnknownIsDropped(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.tr.Close()
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			tc.tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: fifoPayload{}})
		})
	}
}

// TestDuplicateRegistrationFails on every implementation.
func TestDuplicateRegistrationFails(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.tr.Close()
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err == nil {
				t.Fatal("duplicate registration accepted")
			}
		})
	}
}

// TestTCPUnregisterDropsThenReconnect: killing an endpoint makes sends to
// it vanish like datagrams to a dead host, and a later re-registration
// (fresh port) is reachable again through the per-frame redial.
func TestTCPUnregisterDropsThenReconnect(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	waitFor(t, 5*time.Second, func() bool { return s.len() == 1 }, "first delivery")

	tr.Unregister(b)
	// These race the writer noticing the endpoint died; they must be
	// dropped or fail quietly, never panic or wedge.
	for i := 0; i < 10; i++ {
		tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{N: 2}})
	}

	var s2 sink
	if err := tr.Register(b, s2.handler); err != nil {
		t.Fatal(err)
	}
	// The writer holds a dead connection and drops one frame discovering
	// it; keep sending until one lands on the new endpoint.
	waitFor(t, 10*time.Second, func() bool {
		tr.Send(a, b, Message{MsgID: 3, Payload: fifoPayload{N: 3}})
		return s2.len() > 0
	}, "redelivery after re-register")
}

// TestTCPHeartbeatStyleTraffic mixes protocol payloads with MsgID-0
// beacons, as the live runtime does.
func TestTCPHeartbeatStyleTraffic(t *testing.T) {
	RegisterPayload(beacon{})
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Send(a, b, Message{MsgID: 0, Payload: beacon{}})
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: core.OK{Ver: member.Version(i)}})
	}
	waitFor(t, 10*time.Second, func() bool { return s.len() == 40 }, "all traffic")
}

type beacon struct{}

// TestCloseIsIdempotent on every implementation.
func TestCloseIsIdempotent(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			tc.tr.Close()
			tc.tr.Close()
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err == nil {
				t.Fatal("registration accepted after Close")
			}
			tc.tr.Send(a, a, Message{MsgID: 1, Payload: fifoPayload{}}) // must not panic
		})
	}
}

// TestTCPMisaddressedFrameDropped: an endpoint must drop frames whose To
// is a different process — the port-reuse hazard: after a process dies,
// the OS can hand its ephemeral port to a newly registered one while
// senders still dial the stale address.
func TestTCPMisaddressedFrameDropped(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	b := ids.Named("b")
	var s sink
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	addr, _ := tr.Addr(b)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame addressed to a dead process whose port b inherited.
	if err := WriteFrame(conn, Frame{From: "a", To: "dead", MsgID: 1, Body: fifoPayload{N: 1}}); err != nil {
		t.Fatal(err)
	}
	// A correctly addressed frame on the same stream.
	if err := WriteFrame(conn, Frame{From: "a", To: "b", MsgID: 2, Body: fifoPayload{N: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "the addressed frame")
	if s.len() != 1 || s.msg(0).MsgID != 2 {
		t.Fatalf("got %d deliveries, first MsgID %d; want only the frame addressed to b", s.len(), s.msg(0).MsgID)
	}
}

// TestTCPOneConnectionPerPair is the mux acceptance test: a fully
// connected group of n processes exchanging traffic on every directed
// channel must open exactly n(n−1)/2 connections — one per unordered peer
// pair — not one per directed channel.
func TestTCPOneConnectionPerPair(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	const n = 4
	procs := make([]ids.ProcID, n)
	sinks := make([]sink, n)
	for i := range procs {
		procs[i] = ids.Named(string(rune('a' + i)))
		if err := tr.Register(procs[i], sinks[i].handler); err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	for i, p := range procs {
		for _, q := range procs {
			if p == q {
				continue
			}
			tr.Send(p, q, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
			want++
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		got := 0
		for i := range sinks {
			got += sinks[i].len()
		}
		return got >= want
	}, "all-to-all traffic")

	pairs := n * (n - 1) / 2
	tr.mu.RLock()
	muxes := len(tr.pairs)
	conns := 0
	for _, m := range tr.pairs {
		m.mu.Lock()
		if m.conn != nil {
			conns++
		}
		m.mu.Unlock()
	}
	accepted := 0
	for _, ep := range tr.locals {
		ep.mu.Lock()
		accepted += len(ep.conns)
		ep.mu.Unlock()
	}
	tr.mu.RUnlock()
	if muxes != pairs {
		t.Errorf("%d pair muxes for %d procs, want %d", muxes, n, pairs)
	}
	if conns != pairs {
		t.Errorf("%d established connections, want exactly %d (one per unordered pair)", conns, pairs)
	}
	// Every pair connection terminates in exactly one accepted socket, so
	// a per-directed-channel design (2 per pair) would double this.
	if accepted != pairs {
		t.Errorf("%d accepted sockets, want %d", accepted, pairs)
	}
}

// TestTCPStatsCountDropReasons: frames lost to unknown peers, saturated
// queues, and post-close sends must land in distinct counters.
func TestTCPConnsOpenGauge(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	a, b, c := ids.Named("a"), ids.Named("b"), ids.Named("c")
	var sa, sb, sc sink
	for _, reg := range []struct {
		p ids.ProcID
		s *sink
	}{{a, &sa}, {b, &sb}, {c, &sc}} {
		if err := tr.Register(reg.p, reg.s.handler); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Stats().ConnsOpen; got != 0 {
		t.Fatalf("ConnsOpen before any traffic = %d, want 0 (dialing is lazy)", got)
	}
	// First frame on a pair establishes exactly one link.
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	waitFor(t, 5*time.Second, func() bool { return sb.len() == 1 }, "a→b delivery")
	if got := tr.Stats().ConnsOpen; got != 1 {
		t.Errorf("ConnsOpen after a→b = %d, want 1", got)
	}
	// The reverse direction rides the same socket: still one link.
	tr.Send(b, a, Message{MsgID: 2, Payload: fifoPayload{N: 2}})
	waitFor(t, 5*time.Second, func() bool { return sa.len() == 1 }, "b→a delivery")
	if got := tr.Stats().ConnsOpen; got != 1 {
		t.Errorf("ConnsOpen after b→a on the same pair = %d, want 1", got)
	}
	tr.Send(a, c, Message{MsgID: 3, Payload: fifoPayload{N: 3}})
	waitFor(t, 5*time.Second, func() bool { return sc.len() == 1 }, "a→c delivery")
	if got := tr.Stats().ConnsOpen; got != 2 {
		t.Errorf("ConnsOpen with two active pairs = %d, want 2", got)
	}
	// Unregistering tears down every pair touching the process.
	tr.Unregister(c)
	waitFor(t, 5*time.Second, func() bool { return tr.Stats().ConnsOpen == 1 },
		"gauge to drop after Unregister")
}

func TestInmemConnsOpenAlwaysZero(t *testing.T) {
	tr := NewInmem()
	defer tr.Close()
	var s sink
	if err := tr.Register(ids.Named("a"), s.handler); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(ids.Named("b"), s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(ids.Named("a"), ids.Named("b"), Message{MsgID: 1, Payload: fifoPayload{}})
	if got := tr.Stats().ConnsOpen; got != 0 {
		t.Errorf("inmem ConnsOpen = %d, want 0 (connectionless)", got)
	}
}

func TestTCPStatsCountDropReasons(t *testing.T) {
	oldDepth := tcpQueueDepth
	tcpQueueDepth = 1
	defer func() { tcpQueueDepth = oldDepth }()

	tr := NewTCP()
	a, b, ghost := ids.Named("a"), ids.Named("b"), ids.Named("ghost")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}

	// Unknown peer: no address at all.
	tr.Send(a, ghost, Message{MsgID: 1, Payload: fifoPayload{}})
	waitFor(t, 5*time.Second, func() bool { return tr.Stats().UnknownPeer >= 1 }, "unknown-peer drop")

	// Saturation: the writer blocks dialing an unroutable address while
	// more sends than the queue holds pile up behind it.
	tr.AddPeer(b, "10.255.255.1:9") // RFC 1918 blackhole: dial hangs until timeout
	for i := 0; i < 10; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 2), Payload: fifoPayload{N: i}})
	}
	waitFor(t, 10*time.Second, func() bool { return tr.Stats().QueueSaturated >= 1 }, "queue-saturated drop")

	tr.Close()
	tr.Send(a, ghost, Message{MsgID: 99, Payload: fifoPayload{}})
	if got := tr.Stats().Closed; got < 1 {
		t.Errorf("Closed = %d after post-close send, want ≥ 1", got)
	}
	if total := tr.Stats().Dropped(); total < 3 {
		t.Errorf("Dropped() = %d, want the sum of all reasons (≥ 3)", total)
	}
}

// TestTCPStatsCountDialFailures: sends to a dead (closed) endpoint must
// surface as DialFailed, not vanish into the same bucket as congestion.
func TestTCPStatsCountDialFailures(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tr.Unregister(b) // b's listener closes; its address goes stale
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{}})
	waitFor(t, 5*time.Second, func() bool { return tr.Stats().DialFailed >= 1 }, "dial-failed drop")
}

// TestInmemStats: the in-process transport distinguishes unknown peers
// from post-close sends too.
func TestInmemStats(t *testing.T) {
	tr := NewInmem()
	a := ids.Named("a")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: fifoPayload{}})
	if got := tr.Stats().UnknownPeer; got != 1 {
		t.Errorf("UnknownPeer = %d, want 1", got)
	}
	tr.Close()
	tr.Send(a, a, Message{MsgID: 2, Payload: fifoPayload{}})
	if got := tr.Stats().Closed; got != 1 {
		t.Errorf("Closed = %d, want 1", got)
	}
}

// TestLossyStatsCountUnknownPeer: datagrams in flight to an unregistered
// destination are counted when they land.
func TestLossyStatsCountUnknownPeer(t *testing.T) {
	tr := NewLossy(LossyOptions{Loss: 0.0001, Dup: 0.0001})
	defer tr.Close()
	a := ids.Named("a")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: fifoPayload{}})
	waitFor(t, 10*time.Second, func() bool { return tr.Stats().UnknownPeer >= 1 }, "unknown-peer drop")
}

// TestTCPShardedReaderFIFO forces the multi-core decode fan-out (inert
// on a single-core box, where NewTCP skips the pool) and re-proves the
// §2.1 per-channel FIFO across it, on both codec paths: gob frames
// decode inline but ride their channel's shard queue, binary frames are
// hashed to a shard pre-decode. One channel must always map to one
// shard or ordering dies.
func TestTCPShardedReaderFIFO(t *testing.T) {
	oldShards := tcpReadShards
	tcpReadShards = 4
	defer func() { tcpReadShards = oldShards }()
	tr := NewTCP()
	defer tr.Close()
	if len(tr.shards) != 4 {
		t.Fatalf("shard pool size %d, want 4", len(tr.shards))
	}
	checkFIFO(t, tr, 500, 10*time.Second) // gob-payload arm

	// Binary-payload arm: core.OK frames carry mux sequences through the
	// pre-decode hash path.
	a, b := ids.Named("x"), ids.Named("y")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: core.OK{Ver: member.Version(i)}})
	}
	waitFor(t, 10*time.Second, func() bool { return s.len() >= n }, "binary frames")
	if s.len() != n {
		t.Fatalf("delivered %d binary frames, want exactly %d", s.len(), n)
	}
	for i := 0; i < n; i++ {
		m := s.msg(i)
		if m.MsgID != int64(i+1) {
			t.Fatalf("position %d: got MsgID %d — FIFO violated across shards", i, m.MsgID)
		}
		if ok, is := m.Payload.(core.OK); !is || ok.Ver != member.Version(i) {
			t.Fatalf("position %d: payload %#v", i, m.Payload)
		}
	}
}

// TestSendCloseRace hammers Send from several goroutines while Close runs
// concurrently, on all three transports. The close path must be
// race-clean (this test exists for -race) and must never panic or wedge a
// sender.
func TestSendCloseRace(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func() Transport
	}{
		{"inmem", func() Transport { return NewInmem() }},
		{"tcp", func() Transport { return NewTCP() }},
		{"lossy", func() Transport { return NewLossy(LossyOptions{}) }},
		{"chaos", func() Transport {
			return NewChaos(NewInmem(), ChaosOptions{Default: ChaosLink{Jitter: time.Millisecond, Loss: 0.1}})
		}},
		{"udp", func() Transport { return NewUDP() }},
		{"twoplane", func() Transport { return NewTwoPlane(NewTCP(), NewUDP()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.make()
			procs := []ids.ProcID{ids.Named("a"), ids.Named("b"), ids.Named("c")}
			for _, p := range procs {
				if err := tr.Register(p, func(ids.ProcID, Message) {}); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						from := procs[i%len(procs)]
						to := procs[(i+1+g)%len(procs)]
						tr.Send(from, to, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
					}
				}(g)
			}
			time.Sleep(20 * time.Millisecond) // let traffic flow before the rug-pull
			if err := tr.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			close(stop)
			wg.Wait()
			tr.Send(procs[0], procs[1], Message{MsgID: 1, Payload: fifoPayload{}}) // post-close send must not panic
		})
	}
}

// TestLossyInvertedDelayBoundsDoNotPanic: MaxDelay below MinDelay must be
// clamped, not passed through to a negative randomness span.
func TestLossyInvertedDelayBoundsDoNotPanic(t *testing.T) {
	tr := NewLossy(LossyOptions{
		MinDelay: 10 * time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
		Loss:     0.01, Dup: 0.01,
	})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	waitFor(t, 10*time.Second, func() bool { return s.len() == 1 }, "delivery with clamped bounds")
}

// TestBeaconCoalescingInQueue: beacons queued behind a stuck link
// coalesce to at most one in flight plus one queued — a second
// undelivered beacon carries no extra liveness information — while
// protocol frames are all retained in FIFO order.
func TestBeaconCoalescingInQueue(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	tr.AddPeer(b, "10.255.255.1:9") // blackhole: the writer wedges in dial
	for i := 0; i < 50; i++ {
		tr.Send(a, b, Message{Payload: hb{}}) // hb is a registered beacon (bench_test.go)
	}
	for i := 0; i < 50; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	tr.mu.RLock()
	m := tr.pairs[pairOf(a, b)]
	tr.mu.RUnlock()
	m.mu.Lock()
	pending := m.pending
	beacons := 0
	for _, q := range m.queues {
		for _, n := range q.beacons {
			beacons += n
		}
	}
	m.mu.Unlock()
	if beacons > 1 {
		t.Errorf("%d beacons queued, want ≤ 1 (coalesced)", beacons)
	}
	// 50 protocol frames plus ≤1 coalesced beacon, minus the ≤2 the
	// writer may have popped before wedging.
	if pending < 48 || pending > 51 {
		t.Errorf("pending = %d, want the full protocol backlog (≈50) and one beacon", pending)
	}
	if sat := tr.Stats().QueueSaturated; sat != 0 {
		t.Errorf("coalescing counted as drops: QueueSaturated = %d", sat)
	}
}
