package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// sink collects delivered messages for one registered process.
type sink struct {
	mu   sync.Mutex
	got  []Message
	from []ids.ProcID
}

func (s *sink) handler(from ids.ProcID, m Message) {
	s.mu.Lock()
	s.got = append(s.got, m)
	s.from = append(s.from, from)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) msg(i int) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[i]
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fifoPayload is a minimal registered payload for ordering tests.
type fifoPayload struct{ N int }

func init() { RegisterPayload(fifoPayload{}) }

// checkFIFO sends n messages on one channel and asserts ordered,
// exactly-once delivery — the §2.1 channel property every Transport must
// provide.
func checkFIFO(t *testing.T, tr Transport, n int, wait time.Duration) {
	t.Helper()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: fifoPayload{N: i}})
	}
	waitFor(t, wait, func() bool { return s.len() >= n }, "all messages")
	if s.len() != n {
		t.Fatalf("delivered %d messages, want exactly %d", s.len(), n)
	}
	for i := 0; i < n; i++ {
		m := s.msg(i)
		if m.MsgID != int64(i+1) {
			t.Fatalf("position %d: got MsgID %d — FIFO violated", i, m.MsgID)
		}
		if p, ok := m.Payload.(fifoPayload); !ok || p.N != i {
			t.Fatalf("position %d: payload %#v", i, m.Payload)
		}
	}
}

func TestInmemFIFO(t *testing.T) {
	tr := NewInmem()
	defer tr.Close()
	checkFIFO(t, tr, 500, 2*time.Second)
}

func TestTCPFIFO(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	checkFIFO(t, tr, 500, 10*time.Second)
}

// TestLossyFIFO is the §3 demonstration in miniature: the link loses,
// duplicates and delays datagrams, and the alternating-bit layer must
// still deliver every payload exactly once, in order.
func TestLossyFIFO(t *testing.T) {
	tr := NewLossy(LossyOptions{
		Loss: 0.15, Dup: 0.1,
		MinDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
		RTO: 6 * time.Millisecond, Seed: 7,
	})
	defer tr.Close()
	checkFIFO(t, tr, 120, 30*time.Second)
}

// TestSendToUnknownIsDropped: datagrams to unregistered ids vanish
// silently on every implementation.
func TestSendToUnknownIsDropped(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.tr.Close()
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			tc.tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: fifoPayload{}})
		})
	}
}

// TestDuplicateRegistrationFails on every implementation.
func TestDuplicateRegistrationFails(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.tr.Close()
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err == nil {
				t.Fatal("duplicate registration accepted")
			}
		})
	}
}

// TestTCPUnregisterDropsThenReconnect: killing an endpoint makes sends to
// it vanish like datagrams to a dead host, and a later re-registration
// (fresh port) is reachable again through the per-frame redial.
func TestTCPUnregisterDropsThenReconnect(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	waitFor(t, 5*time.Second, func() bool { return s.len() == 1 }, "first delivery")

	tr.Unregister(b)
	// These race the writer noticing the endpoint died; they must be
	// dropped or fail quietly, never panic or wedge.
	for i := 0; i < 10; i++ {
		tr.Send(a, b, Message{MsgID: 2, Payload: fifoPayload{N: 2}})
	}

	var s2 sink
	if err := tr.Register(b, s2.handler); err != nil {
		t.Fatal(err)
	}
	// The writer holds a dead connection and drops one frame discovering
	// it; keep sending until one lands on the new endpoint.
	waitFor(t, 10*time.Second, func() bool {
		tr.Send(a, b, Message{MsgID: 3, Payload: fifoPayload{N: 3}})
		return s2.len() > 0
	}, "redelivery after re-register")
}

// TestTCPHeartbeatStyleTraffic mixes protocol payloads with MsgID-0
// beacons, as the live runtime does.
func TestTCPHeartbeatStyleTraffic(t *testing.T) {
	RegisterPayload(beacon{})
	tr := NewTCP()
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Send(a, b, Message{MsgID: 0, Payload: beacon{}})
		tr.Send(a, b, Message{MsgID: int64(i + 1), Payload: core.OK{Ver: member.Version(i)}})
	}
	waitFor(t, 10*time.Second, func() bool { return s.len() == 40 }, "all traffic")
}

type beacon struct{}

// TestCloseIsIdempotent on every implementation.
func TestCloseIsIdempotent(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
	}{
		{"inmem", NewInmem()},
		{"tcp", NewTCP()},
		{"lossy", NewLossy(LossyOptions{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := ids.Named("a")
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
				t.Fatal(err)
			}
			tc.tr.Close()
			tc.tr.Close()
			if err := tc.tr.Register(a, func(ids.ProcID, Message) {}); err == nil {
				t.Fatal("registration accepted after Close")
			}
			tc.tr.Send(a, a, Message{MsgID: 1, Payload: fifoPayload{}}) // must not panic
		})
	}
}

// TestTCPMisaddressedFrameDropped: an endpoint must drop frames whose To
// is a different process — the port-reuse hazard: after a process dies,
// the OS can hand its ephemeral port to a newly registered one while
// senders still dial the stale address.
func TestTCPMisaddressedFrameDropped(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	b := ids.Named("b")
	var s sink
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	addr, _ := tr.Addr(b)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame addressed to a dead process whose port b inherited.
	if err := WriteFrame(conn, Frame{From: "a", To: "dead", MsgID: 1, Body: fifoPayload{N: 1}}); err != nil {
		t.Fatal(err)
	}
	// A correctly addressed frame on the same stream.
	if err := WriteFrame(conn, Frame{From: "a", To: "b", MsgID: 2, Body: fifoPayload{N: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.len() >= 1 }, "the addressed frame")
	if s.len() != 1 || s.msg(0).MsgID != 2 {
		t.Fatalf("got %d deliveries, first MsgID %d; want only the frame addressed to b", s.len(), s.msg(0).MsgID)
	}
}

// TestLossyInvertedDelayBoundsDoNotPanic: MaxDelay below MinDelay must be
// clamped, not passed through to a negative randomness span.
func TestLossyInvertedDelayBoundsDoNotPanic(t *testing.T) {
	tr := NewLossy(LossyOptions{
		MinDelay: 10 * time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
		Loss:     0.01, Dup: 0.01,
	})
	defer tr.Close()
	a, b := ids.Named("a"), ids.Named("b")
	var s sink
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, s.handler); err != nil {
		t.Fatal(err)
	}
	tr.Send(a, b, Message{MsgID: 1, Payload: fifoPayload{N: 1}})
	waitFor(t, 10*time.Second, func() bool { return s.len() == 1 }, "delivery with clamped bounds")
}
