// Package transport is the pluggable message substrate of the live
// runtime: it moves protocol payloads between registered processes while
// preserving the per-channel FIFO order the paper's model assumes (§2.1).
// The live cluster speaks only the Transport interface; the concrete
// implementations are
//
//   - Inmem: direct in-process delivery, the seed's original behavior and
//     the default for tests and single-process deployments;
//   - TCP: real sockets on loopback or a LAN, one multiplexed
//     length-prefixed binary stream per unordered peer pair
//     (channel-tagged frames, per-channel FIFO queues behind one writer),
//     with reconnect — the paper's asynchronous network made literal;
//   - Lossy: an adversarial datagram link (loss, duplication, delay)
//     repaired by the alternating-bit protocol of internal/channel — the
//     paper's §3 claim that reliable FIFO channels are implementable
//     rather than assumed, demonstrated end-to-end;
//   - Chaos: a wrapper that degrades any of the above with per-link
//     delay, jitter, beacon loss, burst outages and asymmetric
//     partitions, reconfigurable at runtime — the live chaos harness
//     that opens the simulator's adversity space (internal/netsim) to
//     the goroutine runtime, used by E16's failure-detector A/B.
//
// Every implementation shares datagram-drop semantics for dead hosts
// (silence is the failure detector's problem, §2.2) and per-reason drop
// accounting through Stats. The wire codec (Frame, AppendFrame /
// EncodeFrame / ReadFrame) is a hand-rolled length-prefixed binary format
// covering the whole internal/core wire vocabulary plus registered
// substrate beacons, with a gob escape hatch for everything else; the
// format is pinned byte-for-byte by golden tests (DESIGN.md §6).
package transport
