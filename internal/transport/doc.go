// Package transport is the pluggable message substrate of the live
// runtime: it moves protocol payloads between registered processes while
// preserving the per-channel FIFO order the paper's model assumes (§2.1).
// The live cluster speaks only the Transport interface; the concrete
// implementations are
//
//   - Inmem: direct in-process delivery, the seed's original behavior and
//     the default for tests and single-process deployments;
//   - TCP: real sockets on loopback or a LAN, one multiplexed
//     length-prefixed binary stream per unordered peer pair
//     (channel-tagged frames, per-channel FIFO queues drained by one
//     writer into vectored batches, decoded by a channel-sharded reader
//     pool), with reconnect — the paper's asynchronous network made
//     literal;
//   - UDP: one datagram per frame — no ordering, no retransmission, no
//     backpressure. The wrong contract for protocol traffic and exactly
//     the right one for beacons, whose information content is their
//     arrival time: a drop costs one idempotent sample, while queueing
//     delay (what a shared stream imposes) distorts every inter-arrival
//     the failure detector fits (DESIGN.md §9);
//   - TwoPlane: the composition that routes beacon-class payloads to a
//     datagram plane and everything else to a stream plane, exposing the
//     split via BeaconPlaner so the live runtime can send cadence-pure
//     beacons;
//   - Lossy: an adversarial datagram link (loss, duplication, delay)
//     repaired by the alternating-bit protocol of internal/channel — the
//     paper's §3 claim that reliable FIFO channels are implementable
//     rather than assumed, demonstrated end-to-end;
//   - Chaos: a wrapper that degrades any of the above — including UDP —
//     with per-link delay, jitter, beacon loss, burst outages and
//     asymmetric partitions, reconfigurable at runtime — the live chaos
//     harness that opens the simulator's adversity space
//     (internal/netsim) to the goroutine runtime, used by E16's
//     failure-detector A/B.
//
// Every implementation shares datagram-drop semantics for dead hosts
// (silence is the failure detector's problem, §2.2) and per-reason drop
// accounting through Stats, which also gauges send-queue depth (current
// and high-water) so congestion is observable before it becomes drops,
// and counts suspicion-class frames (Stats.SuspicionFrames) so the
// digest-vs-relay dissemination cost of DESIGN.md §10 is measured at
// the wire. The TCP stream plane honors the reliable-FIFO contract
// through transient faults: simultaneous opens resolve to the same
// socket on both ends (smaller initiator wins), and the pair writer
// retries failed dials and writes with backoff before accounting a
// drop.
// The wire codec (Frame, AppendFrame / EncodeFrame / ReadFrame /
// DecodeFrame) is a hand-rolled binary format — length-prefixed on
// streams, bare frame body per datagram — covering the whole
// internal/core wire vocabulary plus registered substrate beacons, with
// a gob escape hatch for everything else; the format is pinned
// byte-for-byte by golden tests (DESIGN.md §6).
package transport
