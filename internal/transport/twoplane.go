package transport

import (
	"errors"

	"procgroup/internal/ids"
)

// BeaconPlaner is implemented by transports that carry beacon traffic on
// a dedicated plane, decoupled from stream backpressure. The live
// runtime detects it to switch beacon scheduling from piggyback
// suppression (a protocol send doubles as a beacon) to cadence-pure
// emission: on a dedicated plane a beacon costs one datagram and its
// arrival time is a clean detector sample, so suppressing it only
// removes evidence.
type BeaconPlaner interface {
	Transport
	// BeaconPlane exposes the plane beacons ride, for tests and tools
	// that inspect or degrade it independently of protocol traffic.
	BeaconPlane() Transport
}

// TwoPlane splits one group's traffic across two transports by class:
// beacon payloads (registered with RegisterBeaconPayload, MsgID 0) ride
// the datagram plane, everything else rides the stream plane. The
// planes never share a queue, a connection, or a lock — a saturated
// stream cannot delay a beacon, so the failure detector's inter-arrival
// samples measure the peer, not the peer's bulk traffic.
//
// Both planes see every Register/Unregister, so either can deliver to
// the process; handlers must tolerate that (the live runtime's mailbox
// does trivially). Typically the stream plane is *TCP and the beacon
// plane *UDP — possibly wrapped in Chaos to degrade one plane without
// the other.
type TwoPlane struct {
	stream Transport
	beacon Transport
}

// NewTwoPlane composes a stream plane and a beacon plane into one
// Transport. The composite owns both: Close closes them.
func NewTwoPlane(stream, beacon Transport) *TwoPlane {
	return &TwoPlane{stream: stream, beacon: beacon}
}

// StreamPlane exposes the plane protocol traffic rides.
func (t *TwoPlane) StreamPlane() Transport { return t.stream }

// BeaconPlane implements BeaconPlaner.
func (t *TwoPlane) BeaconPlane() Transport { return t.beacon }

// Register implements Transport: the process attaches to both planes,
// or neither.
func (t *TwoPlane) Register(p ids.ProcID, h Handler) error {
	if err := t.stream.Register(p, h); err != nil {
		return err
	}
	if err := t.beacon.Register(p, h); err != nil {
		t.stream.Unregister(p)
		return err
	}
	return nil
}

// Unregister implements Transport.
func (t *TwoPlane) Unregister(p ids.ProcID) {
	t.stream.Unregister(p)
	t.beacon.Unregister(p)
}

// Send implements Transport, routing by traffic class: pure beacons
// (beacon-registered payload, MsgID 0 — the exact coalescing predicate
// of the stream mux) take the datagram plane, everything else the
// stream plane.
func (t *TwoPlane) Send(from, to ids.ProcID, m Message) {
	if c := binCodecFor(m.Payload); c != nil && c.beacon && m.MsgID == 0 {
		t.beacon.Send(from, to, m)
		return
	}
	t.stream.Send(from, to, m)
}

// Stats implements Transport: both planes' counters, merged.
func (t *TwoPlane) Stats() Stats {
	return t.stream.Stats().merge(t.beacon.Stats())
}

// Close implements Transport: both planes close; the first error wins
// but both always run.
func (t *TwoPlane) Close() error {
	return errors.Join(t.stream.Close(), t.beacon.Close())
}
