package transport

import (
	"sync/atomic"

	"procgroup/internal/ids"
)

// Message is one transport-level datagram: a protocol payload plus the
// trace-correlation id assigned by the sender (0 marks unrecorded
// substrate traffic such as heartbeats).
type Message struct {
	MsgID   int64
	Payload any
}

// Handler consumes messages delivered to a registered process. Transports
// call handlers from their own delivery goroutines, one message at a time
// per channel; handlers must not block (the live runtime's handlers only
// append to an unbounded mailbox).
type Handler func(from ids.ProcID, m Message)

// Transport moves messages between registered processes.
//
// Semantics shared by every implementation:
//
//   - Send is asynchronous and never blocks the caller on the network.
//   - Messages on one directed channel (from, to) are delivered in send
//     order — the reliable-FIFO channel property of §2.1.
//   - A send to an unregistered (or unreachable) process is silently
//     dropped, exactly like a datagram to a dead host; the failure
//     detector, not the transport, is responsible for noticing silence.
//   - Close tears the whole substrate down; all subsequent operations are
//     no-ops.
type Transport interface {
	// Register attaches a process and its delivery handler. It returns an
	// error if the transport is closed, the id is already registered, or
	// (for socket transports) the endpoint cannot be opened.
	Register(p ids.ProcID, h Handler) error
	// Unregister detaches p: its endpoint stops accepting and later sends
	// to it are dropped. Unregistering an unknown id is a no-op.
	Unregister(p ids.ProcID)
	// Send transmits m on the directed channel from → to.
	Send(from, to ids.ProcID, m Message)
	// Stats reports the per-reason drop counters accumulated so far.
	Stats() Stats
	// Close shuts the transport down and releases its resources.
	Close() error
}

// Stats counts messages a transport dropped, by reason. Drops are normal
// operation for a datagram-semantics substrate — the counters exist so an
// operator can tell a congested link (QueueSaturated) from a dead or
// unknown host (DialFailed / UnknownPeer), which are indistinguishable
// from silence at the protocol layer.
type Stats struct {
	// QueueSaturated counts sends dropped because a channel's bounded
	// outbound queue was full: the peer was unreachable (or slow) long
	// enough for traffic to back up.
	QueueSaturated int64
	// UnknownPeer counts sends dropped because the destination had no
	// known address or registered handler.
	UnknownPeer int64
	// DialFailed counts frames dropped because the destination endpoint
	// could not be reached — the dead-host case.
	DialFailed int64
	// WriteFailed counts frames dropped after exhausting write retries
	// on a connection that broke mid-stream.
	WriteFailed int64
	// Closed counts sends issued after the transport (or the channel's
	// link) was closed.
	Closed int64
	// ChaosInjected counts frames deliberately discarded by a Chaos
	// wrapper (loss, burst windows, partitions) — injected faults, never
	// congestion or dead hosts.
	ChaosInjected int64
	// Truncated counts datagrams dropped at a size boundary: a send whose
	// encoding exceeds the datagram plane's maximum, or a receive the
	// kernel cut short. Stream transports never truncate (they reject
	// oversize frames as WriteFailed before any bytes move).
	Truncated int64
	// DecodeFailed counts inbound frames discarded because their bytes did
	// not parse — corruption, version skew, or garbage aimed at the port.
	// The sender is unknown by definition, so these cannot be attributed
	// to a channel.
	DecodeFailed int64
	// SuspicionFrames counts outbound frames whose payload disseminates
	// failure suspicions (FaultyReport point-to-point traffic and
	// suspicion digests alike). It is a cost counter, not a drop: the
	// digest-vs-flood comparison reads this directly instead of
	// inferring dissemination traffic from beacon counts.
	SuspicionFrames int64
	// ConnsOpen is a gauge, not a counter: the number of connections
	// currently established (TCP: one per peer pair with an active
	// multiplexed link; always 0 on connectionless transports). Because
	// the TCP transport dials lazily — a link exists only once some
	// frame actually needed it — this measures the monitoring topology's
	// real footprint: a full mesh settles at n(n−1)/2, ring-k at ~n·k.
	ConnsOpen int64
	// SendQueueNow is a gauge: frames currently sitting in stream-plane
	// send queues across every channel. Zero on datagram transports,
	// which never queue.
	SendQueueNow int64
	// SendQueueMax is a high-water mark: the deepest any single channel's
	// send queue has been since the transport started. Together with
	// SendQueueNow it makes stream-plane backpressure observable before
	// it matures into QueueSaturated drops.
	SendQueueMax int64
}

// Dropped sums every drop reason. The gauges (ConnsOpen, SendQueueNow,
// SendQueueMax) are state, not drops, and are excluded.
func (s Stats) Dropped() int64 {
	return s.QueueSaturated + s.UnknownPeer + s.DialFailed + s.WriteFailed +
		s.Closed + s.ChaosInjected + s.Truncated + s.DecodeFailed
}

// merge sums o's counters into s and returns the result, for transports
// composed of several planes. Counters add; ConnsOpen and SendQueueNow
// are additive gauges; SendQueueMax is a per-channel high-water mark, so
// the merged value is the larger of the two.
func (s Stats) merge(o Stats) Stats {
	s.QueueSaturated += o.QueueSaturated
	s.UnknownPeer += o.UnknownPeer
	s.DialFailed += o.DialFailed
	s.WriteFailed += o.WriteFailed
	s.Closed += o.Closed
	s.ChaosInjected += o.ChaosInjected
	s.Truncated += o.Truncated
	s.DecodeFailed += o.DecodeFailed
	s.SuspicionFrames += o.SuspicionFrames
	s.ConnsOpen += o.ConnsOpen
	s.SendQueueNow += o.SendQueueNow
	if o.SendQueueMax > s.SendQueueMax {
		s.SendQueueMax = o.SendQueueMax
	}
	return s
}

// dropReason indexes statCounters; dropNone marks a delivered frame.
type dropReason int

const (
	dropNone dropReason = iota
	dropQueueSaturated
	dropUnknownPeer
	dropDialFailed
	dropWriteFailed
	dropClosed
	dropTruncated
	dropDecodeFailed
)

// statCounters is the shared atomic implementation behind every
// transport's Stats. sendQueueMax is the high-water mark satellite
// gauge; stream transports raise it via queueDepth on every enqueue.
type statCounters struct {
	queueSaturated, unknownPeer, dialFailed, writeFailed, closed atomic.Int64
	truncated, decodeFailed                                      atomic.Int64
	suspicionFrames                                              atomic.Int64
	sendQueueMax                                                 atomic.Int64
}

func (c *statCounters) drop(r dropReason) { c.dropN(r, 1) }

// noteSend classifies one outbound payload for the cost counters: frames
// carrying suspicion dissemination are counted whether or not they later
// drop — the protocol paid the send either way. Transports call it once
// per Send, before routing or queueing.
func (c *statCounters) noteSend(payload any) {
	if pc := binCodecFor(payload); pc != nil && pc.suspicion {
		c.suspicionFrames.Add(1)
	}
}

func (c *statCounters) dropN(r dropReason, n int64) {
	if n <= 0 {
		return
	}
	switch r {
	case dropQueueSaturated:
		c.queueSaturated.Add(n)
	case dropUnknownPeer:
		c.unknownPeer.Add(n)
	case dropDialFailed:
		c.dialFailed.Add(n)
	case dropWriteFailed:
		c.writeFailed.Add(n)
	case dropClosed:
		c.closed.Add(n)
	case dropTruncated:
		c.truncated.Add(n)
	case dropDecodeFailed:
		c.decodeFailed.Add(n)
	}
}

// queueDepth records a channel queue's depth after an enqueue, raising
// the high-water mark if this is the deepest any queue has been.
func (c *statCounters) queueDepth(depth int64) {
	for {
		cur := c.sendQueueMax.Load()
		if depth <= cur || c.sendQueueMax.CompareAndSwap(cur, depth) {
			return
		}
	}
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		QueueSaturated:  c.queueSaturated.Load(),
		UnknownPeer:     c.unknownPeer.Load(),
		DialFailed:      c.dialFailed.Load(),
		WriteFailed:     c.writeFailed.Load(),
		Closed:          c.closed.Load(),
		Truncated:       c.truncated.Load(),
		DecodeFailed:    c.decodeFailed.Load(),
		SuspicionFrames: c.suspicionFrames.Load(),
		SendQueueMax:    c.sendQueueMax.Load(),
	}
}
