package transport

import (
	"bytes"
	"reflect"
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// TestFrameRoundTrip encodes every protocol message kind through the wire
// codec and checks the decoded payload is structurally identical.
func TestFrameRoundTrip(t *testing.T) {
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	payloads := []any{
		core.Invite{Op: member.Remove(p3), Ver: 4},
		core.OK{Ver: 4},
		core.Commit{
			Op: member.Remove(p3), Ver: 4,
			Next: member.Add(ids.Named("q1")), NextVer: 5,
			Faulty: []ids.ProcID{p3}, Recovered: []ids.ProcID{ids.Named("q1")},
		},
		core.Interrogate{},
		core.InterrogateOK{Ver: 2, Seq: member.Seq{member.Remove(p3)}, Faulty: []ids.ProcID{p3}},
		core.Propose{RL: member.Seq{member.Add(p3)}, Ver: 3, Invis: member.Remove(p3)},
		core.ProposeOK{Ver: 3},
		core.ReconfCommit{RL: member.Seq{member.Add(p3)}, Ver: 3},
		core.FaultyReport{Suspect: p3},
		core.JoinRequest{Joiner: p3},
		core.StateTransfer{Members: []ids.ProcID{p3}, Ver: 7, Coord: ids.Named("p1")},
	}
	for _, payload := range payloads {
		in := Frame{From: "p1", To: "p3#2", MsgID: 42, Body: payload}
		blob, err := EncodeFrame(in)
		if err != nil {
			t.Fatalf("%T: encode: %v", payload, err)
		}
		out, err := DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: round trip\n in: %#v\nout: %#v", payload, in, out)
		}
	}
}

// TestFrameStreamFraming writes several frames to one stream and reads
// them back in order — the length-prefix discipline TCP connections use.
func TestFrameStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	for i := int64(1); i <= 5; i++ {
		f := Frame{From: "p1", To: "p2", MsgID: i, Body: core.OK{Ver: member.Version(i)}}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 5; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.MsgID != i {
			t.Errorf("frame %d read out of order: got MsgID %d", i, f.MsgID)
		}
	}
}

// TestReadFrameRejectsOversizedLength guards the corruption path: a bogus
// length prefix must error out, not allocate gigabytes.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	buf := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}
