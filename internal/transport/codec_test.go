package transport

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// testPayloads covers every protocol message kind, with populated and
// zero-valued fields.
func testPayloads() []any {
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	return []any{
		core.Invite{Op: member.Remove(p3), Ver: 4},
		core.OK{Ver: 4},
		core.Commit{
			Op: member.Remove(p3), Ver: 4,
			Next: member.Add(ids.Named("q1")), NextVer: 5,
			Faulty: []ids.ProcID{p3}, Recovered: []ids.ProcID{ids.Named("q1")},
		},
		core.Commit{}, // all-zero fields, nil slices
		core.Interrogate{},
		core.InterrogateOK{
			Ver: 2, Seq: member.Seq{member.Remove(p3)},
			Next:   member.Next{{Op: member.Add(p3), Coord: ids.Named("p1"), Ver: 3}, member.WildcardFor(ids.Named("p2"))},
			Faulty: []ids.ProcID{p3},
		},
		core.Propose{RL: member.Seq{member.Add(p3)}, Ver: 3, Invis: member.Remove(p3)},
		core.ProposeOK{Ver: 3},
		core.ReconfCommit{RL: member.Seq{member.Add(p3)}, Ver: 3},
		core.FaultyReport{Suspect: p3},
		core.JoinRequest{Joiner: p3},
		core.StateTransfer{Members: []ids.ProcID{p3}, Ver: 7, Coord: ids.Named("p1")},
	}
}

// TestFrameRoundTrip encodes every protocol message kind through the
// binary wire codec and checks the decoded frame is structurally
// identical — including the mux header fields (Seq, MsgID).
func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range testPayloads() {
		in := Frame{From: "p1", To: "p3#2", Seq: 9, MsgID: 42, Body: payload}
		blob, err := EncodeFrame(in)
		if err != nil {
			t.Fatalf("%T: encode: %v", payload, err)
		}
		if blob[0] == 0 {
			t.Errorf("%T: fell back to the gob escape hatch; core payloads must have binary codecs", payload)
		}
		out, err := DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: round trip\n in: %#v\nout: %#v", payload, in, out)
		}
	}
}

// TestFrameRoundTripGob proves codec equivalence: the kind-0 escape hatch
// carries the same vocabulary to the same decoded frames.
func TestFrameRoundTripGob(t *testing.T) {
	for _, payload := range testPayloads() {
		in := Frame{From: "p1", To: "p3#2", Seq: 9, MsgID: 42, Body: payload}
		blob, err := EncodeFrameGob(in)
		if err != nil {
			t.Fatalf("%T: gob encode: %v", payload, err)
		}
		if blob[0] != 0 {
			t.Fatalf("%T: gob arm must carry kind tag 0, got %d", payload, blob[0])
		}
		out, err := DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T: gob round trip\n in: %#v\nout: %#v", payload, in, out)
		}
	}
}

// gobOnlyPayload has no binary codec; it must travel via the escape hatch.
type gobOnlyPayload struct{ S string }

func init() { RegisterPayload(gobOnlyPayload{}) }

// TestUnregisteredPayloadFallsBackToGob: payload types without a binary
// codec still travel, tagged kind 0.
func TestUnregisteredPayloadFallsBackToGob(t *testing.T) {
	in := Frame{From: "a", To: "b", MsgID: 1, Body: gobOnlyPayload{S: "x"}}
	blob, err := EncodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != 0 {
		t.Fatalf("unregistered payload got kind %d, want the gob escape hatch", blob[0])
	}
	out, err := DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("gob fallback round trip\n in: %#v\nout: %#v", in, out)
	}
}

// TestGoldenWireFormat pins the binary layout byte for byte: if this test
// breaks, the wire format changed and cross-version framing with it —
// bump a kind tag instead of silently re-shaping an existing encoding.
func TestGoldenWireFormat(t *testing.T) {
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	cases := []struct {
		frame Frame
		hex   string
	}{
		{
			Frame{From: "p1", To: "p2", Seq: 7, MsgID: 42, Body: core.OK{Ver: 4}},
			"02027031027032075408",
		},
		{
			Frame{From: "p1", To: "p3#2", Seq: 1, MsgID: -3, Body: core.Invite{Op: member.Remove(p3), Ver: 4}},
			"0102703104703323320105010270330208",
		},
		{
			Frame{From: "p1", To: "p2", Seq: 2, MsgID: 5, Body: core.Commit{
				Op: member.Remove(p3), Ver: 4,
				Next: member.Add(ids.Named("q1")), NextVer: 5,
				Faulty: []ids.ProcID{p3}, Recovered: []ids.ProcID{ids.Named("q1")},
			}},
			"03027031027032020a01027033020802027131000a01027033020102713100",
		},
		{
			Frame{From: "p2", To: "p1", Seq: 3, MsgID: 6, Body: core.Interrogate{}},
			"04027032027031030c",
		},
		{
			Frame{From: "p2", To: "p1", Seq: 4, MsgID: 7, Body: core.InterrogateOK{
				Ver: 2, Seq: member.Seq{member.Remove(p3)},
				Next:   member.Next{{Op: member.Add(p3), Coord: ids.Named("p1"), Ver: 3}, member.WildcardFor(ids.Named("p2"))},
				Faulty: []ids.ProcID{p3},
			}},
			"05027032027031040e040101027033020202027033020270310006000000000270320000010102703302",
		},
		{
			Frame{From: "p4", To: "p5", Seq: 9, MsgID: 8, Body: core.StateTransfer{
				Members: []ids.ProcID{ids.Named("p1"), p3}, Ver: 7,
				Seq:   member.Seq{member.Add(p3)},
				Coord: ids.Named("p1"), Next: member.Remove(p3), NextVer: 8,
			}},
			"0b02703402703509100202703100027033020e01020270330202703100010270330210",
		},
	}
	for _, tc := range cases {
		got, err := EncodeFrame(tc.frame)
		if err != nil {
			t.Fatalf("%T: encode: %v", tc.frame.Body, err)
		}
		want, err := hex.DecodeString(tc.hex)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%T: wire bytes changed\n got %x\nwant %x", tc.frame.Body, got, want)
		}
		back, err := DecodeFrame(want)
		if err != nil {
			t.Fatalf("%T: golden bytes no longer decode: %v", tc.frame.Body, err)
		}
		if !reflect.DeepEqual(tc.frame, back) {
			t.Errorf("%T: golden decode\n in: %#v\nout: %#v", tc.frame.Body, tc.frame, back)
		}
	}
}

// TestFrameStreamFraming writes several frames to one stream and reads
// them back in order — the length-prefix discipline TCP connections use.
func TestFrameStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	for i := int64(1); i <= 5; i++ {
		f := Frame{From: "p1", To: "p2", MsgID: i, Body: core.OK{Ver: member.Version(i)}}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 5; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.MsgID != i {
			t.Errorf("frame %d read out of order: got MsgID %d", i, f.MsgID)
		}
	}
}

// TestReadFrameRejectsOversizedLength guards the corruption path: a bogus
// length prefix must error out, not allocate gigabytes.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	buf := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// TestDecodeFrameRejectsCorruption: truncations, trailing garbage, and
// unknown kinds must all error, never panic or mis-decode.
func TestDecodeFrameRejectsCorruption(t *testing.T) {
	blob, err := EncodeFrame(Frame{From: "p1", To: "p3#2", Seq: 9, MsgID: 42, Body: core.Commit{
		Faulty: []ids.ProcID{ids.Named("p2")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeFrame(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
	if _, err := DecodeFrame(append(append([]byte{}, blob...), 0x01)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeFrame([]byte{0xfe, 0x00}); err == nil {
		t.Error("unknown kind tag accepted")
	}
	// A corrupt slice count must not force a huge allocation.
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)-1] = 0xff
	DecodeFrame(corrupt) // must not panic; error or partial decode both fine
}

// TestDecodeFrameRejectsOverflowingCount: a hostile 64-bit slice count
// must fail the bounds check, not wrap it and panic make() with a
// negative capacity (one such frame from any peer would crash the
// process via the TCP read loop).
func TestDecodeFrameRejectsOverflowingCount(t *testing.T) {
	var e Encoder
	e.Byte(kindPropose) // Propose: RL (Seq), Ver, Invis, Faulty
	e.String("p1")
	e.String("p2")
	e.Uvarint(1)       // mux Seq
	e.Varint(1)        // MsgID
	e.Uvarint(1 << 63) // RL count: n*minElem wraps to 0
	if _, err := DecodeFrame(e.Bytes()); err == nil {
		t.Fatal("overflowing slice count accepted")
	}
}

// TestDecoderNeverAliasesInput: the read path reuses body buffers, so a
// decoded frame must survive the buffer being clobbered.
func TestDecoderNeverAliasesInput(t *testing.T) {
	in := Frame{From: "proc-one", To: "proc-two", Seq: 1, MsgID: 2, Body: core.JoinRequest{Joiner: ids.Named("joiner")}}
	blob, err := EncodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		blob[i] = 0xAA
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("decoded frame aliased its input buffer:\n in: %#v\nout: %#v", in, out)
	}
}

// TestEmptyPayloadDecodesToCanonicalValue: fieldless payloads decode to
// the registered prototype without allocating a fresh value.
func TestEmptyPayloadDecodesToCanonicalValue(t *testing.T) {
	blob, err := EncodeFrame(Frame{From: "a", To: "b", Seq: 1, Body: core.Interrogate{}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFrame(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Body.(core.Interrogate); !ok {
		t.Fatalf("decoded %T, want core.Interrogate", f.Body)
	}
}
