// Wire-path benchmarks: the codec (binary vs. the retained gob arm) and
// raw mux-connection throughput. cmd/gmpbench -exp transport runs the
// same measurements programmatically and emits BENCH_transport.json so
// the perf trajectory is machine-readable across PRs.
//
// Run with: go test -bench=. -benchmem ./internal/transport
package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// hb is the benchmark's stand-in for a substrate heartbeat.
type hb struct{}

func init() { RegisterBeaconPayload(200, hb{}) }

// benchFrames is a protocol-shaped traffic mix: mostly small round
// messages, one fat commit, one beacon-sized empty payload.
func benchFrames() []Frame {
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	return []Frame{
		{From: "p1", To: "p2", Seq: 1, MsgID: 42, Body: core.OK{Ver: 4}},
		{From: "p1", To: "p3#2", Seq: 2, MsgID: 43, Body: core.Invite{Op: member.Remove(p3), Ver: 4}},
		{From: "p1", To: "p2", Seq: 3, MsgID: 44, Body: core.Commit{
			Op: member.Remove(p3), Ver: 4,
			Next: member.Add(ids.Named("q1")), NextVer: 5,
			Faulty: []ids.ProcID{p3}, Recovered: []ids.ProcID{ids.Named("q1")},
		}},
		{From: "p2", To: "p1", Seq: 4, MsgID: 45, Body: core.Interrogate{}},
	}
}

// BenchmarkFrameCodec measures the wire codec per frame: the binary path
// against the retained gob escape hatch, encode-only and full round
// trips. The acceptance bar for the fast path is ≥10× fewer allocs/op
// than gob.
func BenchmarkFrameCodec(b *testing.B) {
	frames := benchFrames()
	b.Run("binary/encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendFrame(buf[:0], frames[i%len(frames)])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary/roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendFrame(buf[:0], frames[i%len(frames)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeFrame(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeFrameGob(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blob, err := EncodeFrameGob(frames[i%len(frames)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeFrame(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPThroughput pushes frames through one mux connection and
// reports frames/sec end to end (enqueue → writer → socket → reader →
// handler). The window keeps the sender inside the bounded channel queue
// so no frame is dropped and every one is awaited.
func BenchmarkTCPThroughput(b *testing.B) {
	tr := NewTCP()
	defer tr.Close()
	a, c := ids.Named("a"), ids.Named("b")
	var received atomic.Int64
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		b.Fatal(err)
	}
	if err := tr.Register(c, func(ids.ProcID, Message) { received.Add(1) }); err != nil {
		b.Fatal(err)
	}
	// Prime the connection so dial cost stays out of the steady state;
	// warm-up frames can legitimately drop, so retry under a deadline.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() == 0 {
		tr.Send(a, c, Message{MsgID: 1, Payload: core.OK{Ver: 0}})
		if time.Now().After(deadline) {
			b.Fatal("warm-up frame never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let any retried warm-ups land before counting
	received.Store(0)

	const window = 512 // stay under tcpQueueDepth: throughput, not drops
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for int64(i)-received.Load() >= window {
			time.Sleep(50 * time.Microsecond)
		}
		tr.Send(a, c, Message{MsgID: int64(i + 1), Payload: core.OK{Ver: member.Version(i)}})
	}
	for received.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "frames/sec")
}

// BenchmarkHeartbeatSend measures the beacon fast path end to end: each
// op sends one beacon and waits for its delivery, so every iteration
// exercises the full enqueue → cached-encode → write → read → route
// path (never the coalescing early-return) and must allocate nothing.
func BenchmarkHeartbeatSend(b *testing.B) {
	tr := NewTCP()
	defer tr.Close()
	a, c := ids.Named("a"), ids.Named("b")
	var received atomic.Int64
	if err := tr.Register(a, func(ids.ProcID, Message) {}); err != nil {
		b.Fatal(err)
	}
	if err := tr.Register(c, func(ids.ProcID, Message) { received.Add(1) }); err != nil {
		b.Fatal(err)
	}
	tr.Send(a, c, Message{Payload: hb{}})
	waitAtLeast(b, &received, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(a, c, Message{Payload: hb{}})
		waitAtLeast(b, &received, int64(i+2))
	}
}

// waitAtLeast waits (allocation-free) until n deliveries have landed. It
// sleeps rather than spinning: a busy spin can monopolize the scheduler
// on small GOMAXPROCS and leave socket readiness to sysmon's 10ms
// netpoll fallback, measuring the runtime instead of the wire.
func waitAtLeast(b *testing.B, received *atomic.Int64, n int64) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < n {
		if time.Now().After(deadline) {
			b.Fatalf("delivery %d never arrived", n)
		}
		time.Sleep(10 * time.Microsecond)
	}
}

func ExampleStats() {
	tr := NewInmem()
	defer tr.Close()
	a := ids.Named("a")
	tr.Register(a, func(ids.ProcID, Message) {})
	tr.Send(a, ids.Named("ghost"), Message{MsgID: 1, Payload: core.OK{}})
	fmt.Println(tr.Stats().UnknownPeer)
	// Output: 1
}
