package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"procgroup/internal/ids"
)

// These are the deterministic regression tests for the TCP simultaneous-
// open fix: when both ends of a pair dial each other at once, both must
// keep the connection initiated by the *smaller* pair end — an end that
// kept whichever socket happened to land first would write into a
// connection its peer has already abandoned, silently breaking the §2.1
// reliable-FIFO channel. tcpPostDialHook freezes ensureConn inside its
// dial window while the test injects the opposing adopt, forcing the
// exact interleaving instead of racing for it.

// pairMuxOf waits for the transport to hold a mux for {a, b}.
func pairMuxOf(t *testing.T, tr *TCP, a, b ids.ProcID) *pairMux {
	t.Helper()
	k := pairOf(a, b)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		tr.mu.RLock()
		m := tr.pairs[k]
		tr.mu.RUnlock()
		if m != nil {
			return m
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("pair mux never created")
	return nil
}

// injectAdopt dials tr's listener for acceptor raw and introduces itself
// as init — the opposing leg of a simultaneous open — then waits until
// the pair mux has adopted it. Returns the test-held end of the socket.
func injectAdopt(t *testing.T, tr *TCP, init, acceptor ids.ProcID) net.Conn {
	t.Helper()
	addr, ok := tr.Addr(acceptor)
	if !ok {
		t.Fatalf("no listener address for %v", acceptor)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("inject dial: %v", err)
	}
	if err := WriteFrame(c, Frame{From: init.String(), To: acceptor.String(), Body: muxHello{}}); err != nil {
		t.Fatalf("inject hello: %v", err)
	}
	m := pairMuxOf(t, tr, init, acceptor)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		adopted := m.conn != nil && m.connInit == init
		m.mu.Unlock()
		if adopted {
			return c
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("injected connection never adopted")
	return nil
}

// TestTCPSimultaneousOpenDialerWins: the dialing end is the smaller pair
// end, so its own dialed connection must win — the injected inbound
// socket (the larger end's leg of the simultaneous open) is adopted
// mid-dial and must then be abandoned, and every queued frame must reach
// the peer over the surviving connection in FIFO order.
func TestTCPSimultaneousOpenDialerWins(t *testing.T) {
	trA, trB := NewTCP(), NewTCP()
	defer trA.Close()
	defer trB.Close()
	a, b := ids.Named("a"), ids.Named("b") // a < b: a's dial must win

	var mu sync.Mutex
	var got []int
	if err := trA.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := trB.Register(b, func(_ ids.ProcID, m Message) {
		mu.Lock()
		got = append(got, int(m.MsgID))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	addrB, _ := trB.Addr(b)
	trA.AddPeer(b, addrB)

	// The hook runs on trA's mux writer mid-ensureConn: trA has dialed
	// trB and is about to re-examine the pair — inject b's opposing leg
	// now, so the writer resumes facing an adopted rival connection.
	var raw net.Conn
	hookDone := make(chan struct{})
	tcpPostDialHook = func(init, dialTo ids.ProcID) {
		tcpPostDialHook = nil // fire exactly once, for a's dial only
		raw = injectAdopt(t, trA, b, a)
		close(hookDone)
	}
	defer func() { tcpPostDialHook = nil }()

	const n = 100
	for i := 1; i <= n; i++ {
		trA.Send(a, b, Message{MsgID: int64(i), Payload: fifoPayload{N: i}})
	}
	select {
	case <-hookDone:
	case <-time.After(10 * time.Second):
		t.Fatal("ensureConn never reached the simultaneous-open window")
	}

	// The smaller end's dial won: trA must abandon the injected socket.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(raw); err == nil {
		t.Fatal("trA wrote into the abandoned (larger-initiator) connection")
	}
	raw.Close()

	// And the queued traffic arrives intact, in order, over the winner.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	}, fmt.Sprintf("%d frames after simultaneous open", n))
	mu.Lock()
	defer mu.Unlock()
	for i, id := range got {
		if id != i+1 {
			t.Fatalf("FIFO broken across simultaneous open: position %d = msg %d", i, id)
		}
	}
}

// TestTCPSimultaneousOpenAcceptorWins: the dialing end is the *larger*
// pair end, so the adopted connection (initiated by the smaller end) must
// win and the dial be discarded — proven by reading the frames off the
// injected socket itself: the transport must write its queued traffic
// into the peer-initiated connection, not the one it dialed.
func TestTCPSimultaneousOpenAcceptorWins(t *testing.T) {
	trA, trB := NewTCP(), NewTCP()
	defer trA.Close()
	defer trB.Close()
	a, b := ids.Named("a"), ids.Named("b") // b dials: a's injected leg must win

	if err := trA.Register(a, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := trB.Register(b, func(ids.ProcID, Message) {}); err != nil {
		t.Fatal(err)
	}
	addrA, _ := trA.Addr(a)
	trB.AddPeer(a, addrA)

	var raw net.Conn
	hookDone := make(chan struct{})
	tcpPostDialHook = func(init, dialTo ids.ProcID) {
		tcpPostDialHook = nil
		raw = injectAdopt(t, trB, a, b)
		close(hookDone)
	}
	defer func() { tcpPostDialHook = nil }()

	trB.Send(b, a, Message{MsgID: 7, Payload: fifoPayload{N: 7}})
	select {
	case <-hookDone:
	case <-time.After(10 * time.Second):
		t.Fatal("ensureConn never reached the simultaneous-open window")
	}

	// The queued frame must surface on the injected (smaller-initiator)
	// socket — the far end of the connection trB was obliged to keep.
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := ReadFrame(raw)
	if err != nil {
		t.Fatalf("trB never wrote into the peer-initiated connection: %v", err)
	}
	if f.From != b.String() || f.To != a.String() || f.MsgID != 7 {
		t.Fatalf("unexpected frame on the surviving connection: %+v", f)
	}
	raw.Close()
}
