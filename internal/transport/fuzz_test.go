package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// FuzzReadFrame hammers the stream decode path with truncated, corrupted
// and adversarial input: whatever arrives, ReadFrame must return a frame
// or an error — never panic, never over-allocate past maxFrame. Valid
// decodes must re-encode, proving the decoded value is inside the codec's
// domain.
//
// The seed corpus is built from real encodings (binary and gob arms) so
// mutation starts from structurally plausible bytes.
func FuzzReadFrame(f *testing.F) {
	seed := func(fr Frame) {
		blob, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
		buf.Write(hdr[:])
		buf.Write(blob)
		f.Add(buf.Bytes())
		if len(buf.Bytes()) > 6 {
			f.Add(buf.Bytes()[:len(buf.Bytes())-3]) // truncated body
			f.Add(buf.Bytes()[:2])                  // truncated header
		}
	}
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	seed(Frame{From: "p1", To: "p2", Seq: 7, MsgID: 42, Body: core.OK{Ver: 4}})
	seed(Frame{From: "p1", To: "p3#2", Seq: 1, MsgID: 5, Body: core.Commit{
		Op: member.Remove(p3), Ver: 4, Faulty: []ids.ProcID{p3},
	}})
	seed(Frame{From: "p2", To: "p1", Seq: 4, MsgID: 7, Body: core.InterrogateOK{
		Ver: 2, Seq: member.Seq{member.Remove(p3)}, Next: member.Next{member.WildcardFor(ids.Named("p2"))},
	}})
	seed(Frame{From: "a", To: "b", MsgID: 1, Body: gobOnlyPayload{S: "x"}})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0xfe, 0x01}) // unknown kind
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})             // oversized length
	{                                                 // hostile 64-bit slice count (would wrap a multiplicative bound)
		var e Encoder
		e.Byte(6) // Propose
		e.String("p1")
		e.String("p2")
		e.Uvarint(1)
		e.Varint(1)
		e.Uvarint(1 << 63)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(e.Bytes())))
		f.Add(append(hdr[:], e.Bytes()...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil || fr.Body == nil {
			// Errors are expected on corrupt input; a nil Body can fall
			// out of a mutated gob blob and is unencodable by design.
			return
		}
		if _, err := EncodeFrame(fr); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%#v)", err, fr)
		}
	})
}

// FuzzReadDatagram is FuzzReadFrame's sibling for the datagram plane:
// one UDP payload is one bare frame body (no length prefix — the
// datagram boundary frames it), fed straight to DecodeFrame exactly as
// UDP's read loop does. Whatever a hostile or corrupt datagram carries,
// decode must return a frame or an error — never panic — and valid
// decodes must re-encode.
func FuzzReadDatagram(f *testing.F) {
	seed := func(fr Frame) {
		blob, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		if len(blob) > 3 {
			f.Add(blob[:len(blob)-3]) // truncated tail — the kernel cannot, but a peer can
		}
	}
	p3 := ids.ProcID{Site: "p3", Incarnation: 2}
	seed(Frame{From: "p1", To: "p2", Body: core.OK{Ver: 4}})
	seed(Frame{From: "p1", To: "p2", Body: muxHello{}}) // beacon-shaped: kind + identifiers only
	seed(Frame{From: "p1", To: "p3#2", MsgID: 5, Body: core.Commit{
		Op: member.Remove(p3), Ver: 4, Faulty: []ids.ProcID{p3},
	}})
	seed(Frame{From: "a", To: "b", MsgID: 1, Body: gobOnlyPayload{S: "x"}})
	f.Add([]byte{})           // zero-length datagram
	f.Add([]byte{0xfe, 0x01}) // unknown kind
	{                         // hostile 64-bit slice count (would wrap a multiplicative bound)
		var e Encoder
		e.Byte(6) // Propose
		e.String("p1")
		e.String("p2")
		e.Uvarint(0)
		e.Varint(1)
		e.Uvarint(1 << 63)
		f.Add(e.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil || fr.Body == nil {
			return
		}
		if _, err := EncodeFrame(fr); err != nil {
			t.Fatalf("decoded datagram does not re-encode: %v (%#v)", err, fr)
		}
	})
}
