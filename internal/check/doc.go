// Package check verifies recorded runs against the paper's specification:
// the six GMP properties of §2.3 and the consistent-cut structure of
// Theorem 6.1. The checker is protocol-agnostic — it reads only the event
// trace — which is what lets the same machinery certify the core protocol
// and convict the §7.3 baselines.
package check
