package check

import (
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/trace"
)

// syntheticRun builds a large clean trace: rounds of suspicion → removal →
// install, propagated by commit messages, shrinking a 32-process group.
func syntheticRun(rounds int) (*trace.Recorder, []ids.ProcID) {
	procs := ids.Gen(32)
	r := trace.NewRecorder(nil)
	for _, p := range procs {
		r.RecordStart(p)
	}
	members := append([]ids.ProcID(nil), procs...)
	for _, p := range procs {
		r.RecordInstall(p, 0, members)
	}
	var msg int64
	for g := 1; g <= rounds; g++ {
		victim := members[len(members)-1]
		members = members[:len(members)-1]
		coord := members[0]
		ver := member.Version(g)
		r.RecordInternal(coord, event.Faulty, victim)
		r.RecordInternal(coord, event.Remove, victim)
		r.RecordInstall(coord, ver, members)
		for _, p := range members[1:] {
			msg++
			r.RecordSend(coord, p, msg, "Commit")
			r.RecordRecv(coord, p, msg, "Commit")
			r.RecordInternal(p, event.Faulty, victim)
			r.RecordInternal(p, event.Remove, victim)
			r.RecordInstall(p, ver, members)
		}
	}
	return r, procs
}

func TestSyntheticRunIsClean(t *testing.T) {
	r, procs := syntheticRun(8)
	rep := Run(Input{Recorder: r, Initial: procs, Alive: func(p ids.ProcID) bool {
		// The removed tail is "dead"; the first 24 survive.
		for _, q := range procs[:24] {
			if p == q {
				return true
			}
		}
		return false
	}})
	if !rep.OK() {
		t.Fatalf("synthetic run flagged: %v", rep)
	}
}

// BenchmarkCheckerOnLargeTrace measures full GMP verification (properties,
// cuts, knowledge chain) over a ~2500-event run.
func BenchmarkCheckerOnLargeTrace(b *testing.B) {
	r, procs := syntheticRun(16)
	alive := func(p ids.ProcID) bool {
		for _, q := range procs[:16] {
			if p == q {
				return true
			}
		}
		return false
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := Run(Input{Recorder: r, Initial: procs, Alive: alive}); !rep.OK() {
			b.Fatalf("clean run flagged: %v", rep)
		}
	}
}
