package check

import (
	"strings"
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/trace"
)

// mk builds a recorder pre-loaded with starts for the given processes.
func mk(procs ...ids.ProcID) *trace.Recorder {
	r := trace.NewRecorder(nil)
	for _, p := range procs {
		r.RecordStart(p)
	}
	return r
}

func allAlive(ids.ProcID) bool { return true }

func TestCleanRunPasses(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	// a suspects b, removes it; b is dead.
	r.RecordInternal(a, event.Faulty, b)
	r.RecordInternal(a, event.Remove, b)
	r.RecordInstall(a, 1, []ids.ProcID{a})
	rep := Run(Input{Recorder: r, Initial: initial, Alive: func(p ids.ProcID) bool { return p == a }})
	if !rep.OK() {
		t.Fatalf("clean run flagged: %v", rep)
	}
	if rep.String() != "all GMP properties hold" {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestGMP0MissingInitialView(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	// b never installs v0.
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("GMP-0")) == 0 {
		t.Errorf("missing initial view not flagged: %v", rep)
	}
}

func TestGMP0WrongInitialMembership(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, []ids.ProcID{b}) // wrong Proc
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("GMP-0")) == 0 {
		t.Errorf("wrong initial membership not flagged: %v", rep)
	}
}

func TestGMP1RemovalWithoutSuspicion(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Remove, b) // capricious removal
	r.RecordInstall(a, 1, []ids.ProcID{a})
	rep := Run(Input{Recorder: r, Initial: initial, Alive: func(p ids.ProcID) bool { return p == a }})
	if len(rep.Of("GMP-1")) == 0 {
		t.Errorf("capricious removal not flagged: %v", rep)
	}
}

func TestGMP3DivergentViews(t *testing.T) {
	a, b, x, y := ids.Named("a"), ids.Named("b"), ids.Named("x"), ids.Named("y")
	initial := []ids.ProcID{a, b, x, y}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b, y})
	r.RecordInternal(b, event.Faulty, y)
	r.RecordInternal(b, event.Remove, y)
	r.RecordInstall(b, 1, []ids.ProcID{a, b, x}) // same version, different view
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("GMP-3")) == 0 {
		t.Errorf("divergent v1 not flagged: %v", rep)
	}
}

func TestGMP3SkippedVersion(t *testing.T) {
	a := ids.Named("a")
	r := mk(a)
	r.RecordInstall(a, 0, []ids.ProcID{a})
	r.RecordInstall(a, 2, []ids.ProcID{a}) // skipped v1
	rep := Run(Input{Recorder: r, Initial: []ids.ProcID{a}, Alive: allAlive})
	if len(rep.Of("GMP-3")) == 0 {
		t.Errorf("skipped version not flagged: %v", rep)
	}
}

func TestGMP4Reinstatement(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a)
	r.RecordInstall(a, 0, initial)
	r.RecordInternal(a, event.Faulty, b)
	r.RecordInternal(a, event.Remove, b)
	r.RecordInstall(a, 1, []ids.ProcID{a})
	r.RecordInstall(a, 2, initial) // b comes back — forbidden
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("GMP-4")) == 0 {
		t.Errorf("re-instatement not flagged: %v", rep)
	}
}

func TestGMP5UnresolvedSuspicion(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, b)
	// Run ends with both still in the (only) view: never resolved.
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("GMP-5")) == 0 {
		t.Errorf("unresolved suspicion not flagged: %v", rep)
	}
}

func TestGMP5ResolvedBySuspecterLeaving(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, b) // a suspects b…
	r.RecordInternal(b, event.Faulty, a) // …but the group removes a instead
	r.RecordInternal(b, event.Remove, a)
	r.RecordInstall(b, 1, []ids.ProcID{b})
	rep := Run(Input{Recorder: r, Initial: initial,
		Alive: func(p ids.ProcID) bool { return p == b }})
	if !rep.OK() {
		t.Errorf("out(p) resolution should satisfy GMP-5: %v", rep)
	}
}

func TestConvergenceDivergentFinals(t *testing.T) {
	a, b, x := ids.Named("a"), ids.Named("b"), ids.Named("x")
	initial := []ids.ProcID{a, b, x}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b})
	// b never learns; run "ends" with a at v1 and b at v0.
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("CONV")) == 0 {
		t.Errorf("divergent final views not flagged: %v", rep)
	}
}

func TestCutViolationLaterInstallInCausalPast(t *testing.T) {
	// Build a run where b installs v1 causally AFTER a already installed
	// v2: no consistent cut can then contain all v1 installs and no v2
	// install, so the Views(r) sequence of GMP-2 cannot exist.
	a, b, x, y := ids.Named("a"), ids.Named("b"), ids.Named("x"), ids.Named("y")
	initial := []ids.ProcID{a, b, x, y}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b, y})
	r.RecordInternal(a, event.Faulty, y)
	r.RecordInternal(a, event.Remove, y)
	r.RecordInstall(a, 2, []ids.ProcID{a, b})
	r.RecordSend(a, b, 77, "M") // carries knowledge of v2
	r.RecordRecv(a, b, 77, "M")
	r.RecordInternal(b, event.Faulty, x)
	r.RecordInternal(b, event.Remove, x)
	r.RecordInstall(b, 1, []ids.ProcID{a, b, y}) // v1 after seeing v2
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("CUT")) == 0 {
		t.Errorf("install-order inversion not flagged: %v", rep)
	}
}

func TestCutConsistentNormalOrder(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	x := ids.Named("x")
	initial := []ids.ProcID{a, b, x}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b})
	r.RecordSend(a, b, 5, "Commit")
	r.RecordRecv(a, b, 5, "Commit")
	r.RecordInternal(b, event.Faulty, x)
	r.RecordInternal(b, event.Remove, x)
	r.RecordInstall(b, 1, []ids.ProcID{a, b})
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("CUT")) != 0 {
		t.Errorf("consistent run flagged: %v", rep)
	}
}

func TestSplitBrainDetected(t *testing.T) {
	// Two disjoint halves each form a self-consistent view of their own:
	// both "system views" exist simultaneously — CONV must flag it.
	a, b, c, d := ids.Named("a"), ids.Named("b"), ids.Named("c"), ids.Named("d")
	initial := []ids.ProcID{a, b, c, d}
	r := mk(a, b, c, d)
	for _, p := range initial {
		r.RecordInstall(p, 0, initial)
	}
	for _, p := range []ids.ProcID{a, b} {
		r.RecordInternal(p, event.Faulty, c)
		r.RecordInternal(p, event.Remove, c)
		r.RecordInternal(p, event.Faulty, d)
		r.RecordInternal(p, event.Remove, d)
		r.RecordInstall(p, 1, []ids.ProcID{a, b})
		r.RecordInstall(p, 2, []ids.ProcID{a, b})
	}
	for _, p := range []ids.ProcID{c, d} {
		r.RecordInternal(p, event.Faulty, a)
		r.RecordInternal(p, event.Remove, a)
		r.RecordInternal(p, event.Faulty, b)
		r.RecordInternal(p, event.Remove, b)
		r.RecordInstall(p, 1, []ids.ProcID{c, d})
		r.RecordInstall(p, 2, []ids.ProcID{c, d})
	}
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	found := false
	for _, v := range rep.Of("CONV") {
		if strings.Contains(v.Detail, "split brain") {
			found = true
		}
	}
	if !found {
		t.Errorf("split brain not flagged: %v", rep)
	}
}

func TestGroupExtinctionIsNotDivergence(t *testing.T) {
	a, b := ids.Named("a"), ids.Named("b")
	initial := []ids.ProcID{a, b}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	rep := Run(Input{Recorder: r, Initial: initial,
		Alive: func(ids.ProcID) bool { return false }})
	if len(rep.Of("CONV")) != 0 {
		t.Errorf("extinct group flagged as divergent: %v", rep)
	}
}

func TestKnowledgeViolationFlagged(t *testing.T) {
	// b jumps to v2 with no causal witness of v1 anywhere in its past:
	// Eq. 4's knowledge chain is broken even though b's own log is
	// (deliberately) also GMP-3-broken. The KNOW check must fire
	// independently.
	a, b, x, y := ids.Named("a"), ids.Named("b"), ids.Named("x"), ids.Named("y")
	initial := []ids.ProcID{a, b, x, y}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	// a legitimately reaches v1.
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b, y})
	// b leaps to v2 without ever hearing from a.
	r.RecordInternal(b, event.Faulty, x)
	r.RecordInternal(b, event.Remove, x)
	r.RecordInternal(b, event.Faulty, y)
	r.RecordInternal(b, event.Remove, y)
	r.RecordInstall(b, 2, []ids.ProcID{a, b})
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("KNOW")) == 0 {
		t.Errorf("missing v1 witness not flagged: %v", rep)
	}
}

func TestKnowledgeSatisfiedByMessageChain(t *testing.T) {
	a, b, x := ids.Named("a"), ids.Named("b"), ids.Named("x")
	initial := []ids.ProcID{a, b, x}
	r := mk(a, b)
	r.RecordInstall(a, 0, initial)
	r.RecordInstall(b, 0, initial)
	r.RecordInternal(a, event.Faulty, x)
	r.RecordInternal(a, event.Remove, x)
	r.RecordInstall(a, 1, []ids.ProcID{a, b})
	r.RecordSend(a, b, 9, "Commit")
	r.RecordRecv(a, b, 9, "Commit")
	r.RecordInternal(b, event.Faulty, x)
	r.RecordInternal(b, event.Remove, x)
	r.RecordInstall(b, 1, []ids.ProcID{a, b})
	rep := Run(Input{Recorder: r, Initial: initial, Alive: allAlive})
	if len(rep.Of("KNOW")) != 0 {
		t.Errorf("legitimate chain flagged: %v", rep)
	}
}

func TestViolationStringAndOf(t *testing.T) {
	v := Violation{Property: "GMP-1", Detail: "boom"}
	if v.String() != "GMP-1: boom" {
		t.Errorf("Violation.String = %q", v.String())
	}
	rep := &Report{Violations: []Violation{v, {Property: "CUT", Detail: "x"}}}
	if len(rep.Of("GMP-1")) != 1 || len(rep.Of("CUT")) != 1 || len(rep.Of("GMP-9")) != 0 {
		t.Error("Of() filtering broken")
	}
	if !strings.Contains(rep.String(), "boom") {
		t.Errorf("Report.String = %q", rep.String())
	}
}
