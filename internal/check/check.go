package check

import (
	"fmt"
	"strings"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/trace"
)

// Violation is one failed property instance.
type Violation struct {
	// Property names the failed clause: "GMP-0" … "GMP-5", "CONV", "CUT".
	Property string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Report is the outcome of checking one run.
type Report struct {
	Violations []Violation
}

// OK reports whether every property held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Of returns the violations of one property.
func (r *Report) Of(property string) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Property == property {
			out = append(out, v)
		}
	}
	return out
}

// String lists the violations, or "all GMP properties hold".
func (r *Report) String() string {
	if r.OK() {
		return "all GMP properties hold"
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\n")
}

func (r *Report) addf(property, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Property: property,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// Input bundles what the checker needs about a finished run.
type Input struct {
	// Recorder holds the trace.
	Recorder *trace.Recorder
	// Initial is the bootstrap membership (GMP-0's Proc).
	Initial []ids.ProcID
	// Alive reports whether a process was still executing at the end of
	// the run; nil treats every process as alive (strictest reading).
	Alive func(ids.ProcID) bool
}

// Run evaluates every property and returns the report.
func Run(in Input) *Report {
	r := &Report{}
	events := in.Recorder.Events()
	procs := in.Recorder.Procs()
	alive := in.Alive
	if alive == nil {
		alive = func(ids.ProcID) bool { return true }
	}

	viewLogs := make(map[ids.ProcID][]trace.ViewRecord, len(procs))
	for _, p := range procs {
		viewLogs[p] = in.Recorder.ViewLog(p)
	}

	checkGMP0(r, in.Initial, procs, viewLogs)
	checkGMP1(r, events)
	checkGMP23(r, procs, viewLogs)
	checkGMP4(r, procs, viewLogs)
	checkGMP5(r, events, procs, viewLogs, alive)
	checkConvergence(r, procs, viewLogs, alive)
	checkCuts(r, events, procs, viewLogs)
	checkKnowledge(r, events)
	return r
}

// checkKnowledge verifies the Appendix's Equation 4:
//
//	(ver(p) = x) ⇒ K_p ◇ IsSysView(x−1)
//
// operationally: when p installs version x it must already know — i.e.
// hold in its causal past — an installation of version x−1, because over
// FIFO channels the commit "!x" follows "!x−1" from the coordinator. A
// protocol that lets a process reach version x without any causal witness
// of version x−1 has broken the knowledge chain that Theorem 6.1's view
// sequence rests on.
func checkKnowledge(r *Report, events []event.Event) {
	var installs []event.Event
	for _, e := range events {
		if e.Kind == event.InstallView {
			installs = append(installs, e)
		}
	}
	for _, e := range installs {
		if e.Ver == 0 {
			continue // Sys⁰ is commonly known at startup (GMP-0)
		}
		witnessed := false
		for _, f := range installs {
			if f.Ver == e.Ver-1 && f.Clock.LessEq(e.Clock) {
				witnessed = true
				break
			}
		}
		if !witnessed {
			r.addf("KNOW", "%v installed v%d (event %d) with no install of v%d in its causal past (Eq. 4 broken)",
				e.Proc, e.Ver, e.Index, e.Ver-1)
		}
	}
}

// checkGMP0: every initial member starts from the commonly-known view
// Proc = Sys⁰ at version 0.
func checkGMP0(r *Report, initial []ids.ProcID, procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord) {
	initialSet := ids.NewSet(initial...)
	for _, p := range procs {
		if !initialSet.Has(p) {
			continue // joiner: starts from a later view by design
		}
		log := logs[p]
		if len(log) == 0 {
			r.addf("GMP-0", "%v never installed the initial view", p)
			continue
		}
		if log[0].Ver != 0 {
			r.addf("GMP-0", "%v's first view is v%d, want v0", p, log[0].Ver)
			continue
		}
		if !sameMembers(log[0].Members, initial) {
			r.addf("GMP-0", "%v's initial view %v differs from Proc %v", p, log[0].Members, initial)
		}
	}
}

// checkGMP1: q ∉ Memb(p) ⇒ faulty_p(q) — every removal (and every quit
// caused by exclusion) is preceded by a suspicion at the removing process.
func checkGMP1(r *Report, events []event.Event) {
	faultyBefore := make(map[[2]ids.ProcID]bool)
	for _, e := range events {
		switch e.Kind {
		case event.Faulty:
			faultyBefore[[2]ids.ProcID{e.Proc, e.Other}] = true
		case event.Remove:
			if !faultyBefore[[2]ids.ProcID{e.Proc, e.Other}] {
				r.addf("GMP-1", "%v removed %v without ever suspecting it (event %d)", e.Proc, e.Other, e.Index)
			}
		}
	}
}

// checkGMP23: GMP-2 and GMP-3 — processes install consecutive versions, and
// any two processes installing the same version install the same membership
// (all see the same sequence of views; failed processes see a prefix).
func checkGMP23(r *Report, procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord) {
	byVer := make(map[member.Version][]ids.ProcID)
	ref := make(map[member.Version][]ids.ProcID)
	for _, p := range procs {
		log := logs[p]
		for i, vr := range log {
			if i > 0 && vr.Ver != log[i-1].Ver+1 {
				r.addf("GMP-3", "%v skipped from v%d to v%d", p, log[i-1].Ver, vr.Ver)
			}
			if prev, ok := ref[vr.Ver]; ok {
				if !sameMembers(prev, vr.Members) {
					r.addf("GMP-3", "view v%d differs: %v installed %v, %v installed %v",
						vr.Ver, byVer[vr.Ver][0], prev, p, vr.Members)
				}
			} else {
				ref[vr.Ver] = vr.Members
			}
			byVer[vr.Ver] = append(byVer[vr.Ver], p)
		}
	}
}

// checkGMP4: processes are never re-instated — once q leaves p's local
// view, it never reappears in it.
func checkGMP4(r *Report, procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord) {
	for _, p := range procs {
		gone := ids.NewSet()
		var present ids.Set
		for _, vr := range logs[p] {
			now := ids.NewSet(vr.Members...)
			if present != nil {
				for q := range present {
					if !now.Has(q) {
						gone.Add(q)
					}
				}
			}
			for q := range now {
				if gone.Has(q) {
					r.addf("GMP-4", "%v re-instated %v at v%d", p, q, vr.Ver)
				}
			}
			present = now
		}
	}
}

// checkGMP5: faulty_p(q) ⇒ ◇(out(q)) ∨ ◇(out(p)) — by the quiescent end of
// the run, the suspicion must have resolved: suspect or suspecter is out of
// the final view (or dead).
func checkGMP5(r *Report, events []event.Event, procs []ids.ProcID,
	logs map[ids.ProcID][]trace.ViewRecord, alive func(ids.ProcID) bool) {
	final := finalViews(procs, logs, alive)
	if final == nil {
		return // no converged final view; CONV reports separately
	}
	inFinal := ids.NewSet(final...)
	for _, e := range events {
		if e.Kind != event.Faulty {
			continue
		}
		p, q := e.Proc, e.Other
		pIn := alive(p) && inFinal.Has(p)
		qIn := alive(q) && inFinal.Has(q)
		if pIn && qIn {
			r.addf("GMP-5", "suspicion faulty_%v(%v) (event %d) never resolved: both remain in the final view",
				p, q, e.Index)
		}
	}
}

// checkConvergence verifies that the run's end state contains exactly one
// self-consistent system view: a view V such that every live member of V
// reports V as its own final view (the operational reading of
// Sys(c, S) = S, §2.2). Live processes outside V are allowed to hold stale
// views — they are the "perceived faulty" processes that S1 has isolated
// and that will never act inside the group again. Zero candidates means
// the group lost its system view (Claim 7.1's divergence); two or more
// with different membership is a split brain.
func checkConvergence(r *Report, procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord, alive func(ids.ProcID) bool) {
	anyLive := false
	for _, p := range procs {
		if alive(p) && len(logs[p]) > 0 {
			anyLive = true
			break
		}
	}
	if !anyLive {
		// Group extinction (e.g. a majority was lost and every initiator
		// quit) is a liveness condition the paper explicitly allows — "no
		// algorithm can make progress unless some recoveries occur" — not
		// a divergence.
		return
	}
	finals := selfConsistentFinals(procs, logs, alive)
	switch {
	case len(finals) == 0:
		var summary []string
		for _, p := range procs {
			if alive(p) && len(logs[p]) > 0 {
				last := logs[p][len(logs[p])-1]
				summary = append(summary, fmt.Sprintf("%v@v%d%v", p, last.Ver, last.Members))
			}
		}
		r.addf("CONV", "no self-consistent final system view exists: %s", strings.Join(summary, ", "))
	case len(finals) > 1:
		r.addf("CONV", "split brain: %d self-consistent final views: %v", len(finals), finals)
	}
}

// selfConsistentFinals returns the distinct final views V for which every
// live member of V holds V as its last installed view.
func selfConsistentFinals(procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord, alive func(ids.ProcID) bool) [][]ids.ProcID {
	last := make(map[ids.ProcID]trace.ViewRecord)
	for _, p := range procs {
		if alive(p) && len(logs[p]) > 0 {
			last[p] = logs[p][len(logs[p])-1]
		}
	}
	var out [][]ids.ProcID
	seen := map[string]bool{}
	for p, vr := range last {
		members := ids.NewSet(vr.Members...)
		if !members.Has(p) {
			continue
		}
		ok := true
		for _, q := range vr.Members {
			qvr, live := last[q]
			if !live {
				continue // dead members see a prefix; that is allowed
			}
			if qvr.Ver != vr.Ver || !sameMembers(qvr.Members, vr.Members) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		key := members.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, members.Sorted())
		}
	}
	return out
}

// finalViews returns the membership of the unique self-consistent final
// view, or nil when none (or several) exist.
func finalViews(procs []ids.ProcID, logs map[ids.ProcID][]trace.ViewRecord, alive func(ids.ProcID) bool) []ids.ProcID {
	finals := selfConsistentFinals(procs, logs, alive)
	if len(finals) != 1 {
		return nil
	}
	return finals[0]
}

// checkCuts verifies the cut structure of GMP-2 / Theorem 6.1: for every
// version x there must EXIST a consistent cut c_x whose frontier includes
// all version-≤x installations and no later ones, and these cuts must be
// totally ordered (c_x << c_{x+1}). Taking c_x as the causal past-closure
// of the version-x install events (which is consistent by construction),
// existence fails exactly when some install of a version y > x lies in the
// causal past of an install of version x — so that is what we check, via
// the events' vector clocks. Eq. 3's "quit_p otherwise" clause is covered:
// crashed processes contribute their whole (terminated) history, which is
// always closure-safe because a crashed process influences nobody.
func checkCuts(r *Report, events []event.Event, _ []ids.ProcID, _ map[ids.ProcID][]trace.ViewRecord) {
	var installs []event.Event
	for _, e := range events {
		if e.Kind == event.InstallView {
			installs = append(installs, e)
		}
	}
	for _, lo := range installs {
		for _, hi := range installs {
			if hi.Ver <= lo.Ver {
				continue
			}
			// hi (a later view) must not be causally at-or-before lo:
			// otherwise lo's cut would have to contain hi, and the view
			// sequence could not be separated into c_lo << c_hi.
			if hi.Clock.LessEq(lo.Clock) {
				r.addf("CUT", "install of v%d at %v (event %d) lies in the causal past of install of v%d at %v (event %d): no consistent cut separates the views",
					hi.Ver, hi.Proc, hi.Index, lo.Ver, lo.Proc, lo.Index)
			}
		}
	}
}

func sameMembers(a, b []ids.ProcID) bool {
	if len(a) != len(b) {
		return false
	}
	as := ids.NewSet(a...)
	for _, q := range b {
		if !as.Has(q) {
			return false
		}
	}
	return true
}
