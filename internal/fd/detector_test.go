package fd

import (
	"math/rand"
	"testing"
	"time"

	"procgroup/internal/ids"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func TestTimeoutFirstCheckStartsClock(t *testing.T) {
	d := NewTimeout(20 * time.Millisecond)
	q := ids.Named("q")
	// Never observed: the first check must register, not suspect — the
	// grace the pre-extraction live runtime gave fresh view members.
	if d.Suspect(q, at(0)) {
		t.Fatal("unknown peer suspected on first check")
	}
	if d.Suspect(q, at(20*time.Millisecond)) {
		t.Error("suspected at exactly the threshold (must be strict >)")
	}
	if !d.Suspect(q, at(20*time.Millisecond+time.Nanosecond)) {
		t.Error("not suspected past the threshold")
	}
}

func TestTimeoutObserveResetsSilence(t *testing.T) {
	d := NewTimeout(20 * time.Millisecond)
	q := ids.Named("q")
	d.Observe(q, at(0))
	d.Observe(q, at(15*time.Millisecond))
	if d.Suspect(q, at(30*time.Millisecond)) {
		t.Error("suspected 15ms after last traffic with a 20ms threshold")
	}
	if !d.Suspect(q, at(36*time.Millisecond)) {
		t.Error("not suspected 21ms after last traffic")
	}
}

func TestTimeoutSuspicionLevel(t *testing.T) {
	d := NewTimeout(20 * time.Millisecond)
	q := ids.Named("q")
	if got := d.Suspicion(q, at(0)); got != 0 {
		t.Errorf("untracked peer level = %v, want 0", got)
	}
	d.Observe(q, at(0))
	if got := d.Suspicion(q, at(10*time.Millisecond)); got != 0.5 {
		t.Errorf("level at half threshold = %v, want 0.5", got)
	}
	if got := d.Suspicion(q, at(40*time.Millisecond)); got != 2 {
		t.Errorf("level at twice threshold = %v, want 2", got)
	}
}

func TestTimeoutRetainDropsDeparted(t *testing.T) {
	d := NewTimeout(20 * time.Millisecond)
	p, q := ids.Named("p"), ids.Named("q")
	d.Observe(p, at(0))
	d.Observe(q, at(0))
	d.Retain([]ids.ProcID{p})
	// q's state is gone: a later check re-registers it instead of
	// suspecting on ancient history.
	if d.Suspect(q, at(time.Hour)) {
		t.Error("forgotten peer suspected from stale state")
	}
	if !d.Suspect(p, at(time.Hour)) {
		t.Error("retained peer not suspected after an hour of silence")
	}
}

// oldBeatDetector replays, literally, the failure-detection logic the live
// runtime's beat loop ran before extraction into this package:
//
//	ln.lastSeen[e.from] = time.Now()          // on every receive
//	seen, ok := ln.lastSeen[m]                // on every beat tick
//	if !ok { ln.lastSeen[m] = now; continue }
//	if now.Sub(seen) > ln.c.opts.SuspectAfter { ln.node.Suspect(m) }
//
// TestTimeoutMatchesPreRefactorBeatLoop drives it and the extracted
// Timeout detector over identical randomized arrival/tick schedules and
// requires bit-identical suspect decisions — the extraction is
// behavior-preserving by construction, not by resemblance.
type oldBeatDetector struct {
	after    time.Duration
	lastSeen map[ids.ProcID]time.Time
}

func (o *oldBeatDetector) receive(q ids.ProcID, now time.Time) { o.lastSeen[q] = now }

func (o *oldBeatDetector) beatSuspects(q ids.ProcID, now time.Time) bool {
	seen, ok := o.lastSeen[q]
	if !ok {
		o.lastSeen[q] = now
		return false
	}
	return now.Sub(seen) > o.after
}

func TestTimeoutMatchesPreRefactorBeatLoop(t *testing.T) {
	const after = 30 * time.Millisecond
	peers := []ids.ProcID{ids.Named("a"), ids.Named("b"), ids.Named("c")}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		olddet := &oldBeatDetector{after: after, lastSeen: make(map[ids.ProcID]time.Time)}
		newdet := NewTimeout(after)
		now := t0
		for step := 0; step < 500; step++ {
			now = now.Add(time.Duration(rng.Intn(10_000)) * time.Microsecond)
			switch rng.Intn(3) {
			case 0: // traffic arrives from a random peer
				q := peers[rng.Intn(len(peers))]
				olddet.receive(q, now)
				newdet.Observe(q, now)
			default: // a beat tick checks every peer
				for _, q := range peers {
					want := olddet.beatSuspects(q, now)
					got := newdet.Suspect(q, now)
					if got != want {
						t.Fatalf("seed %d step %d peer %v: Suspect = %v, pre-refactor logic = %v",
							seed, step, q, got, want)
					}
				}
			}
		}
	}
}
