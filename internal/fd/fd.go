package fd

// The simulator's detector: an oracle wired to the simulated network's
// crash notifications, with configurable latency and spurious-suspicion
// injection. The live runtime's detectors live in detector.go/accrual.go.

import (
	"procgroup/internal/ids"
	"procgroup/internal/netsim"
	"procgroup/internal/sim"
)

// SuspectFn is a process's local F1 input: the environment telling it to
// execute faulty_p(q).
type SuspectFn func(q ids.ProcID)

// Oracle watches crashes on a simulated network and, after a per-observer
// delay, delivers faulty_p(q) suspicions to every live registered process.
// It also supports injecting spurious suspicions of live processes, which
// is how scenarios exercise the erroneous-detection paths (§2.3: "if the
// detection was erroneous ... the outcome will depend on the pattern of
// communication that ensues").
type Oracle struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	delay    netsim.DelayFn
	watchers map[ids.ProcID]SuspectFn
	muted    bool
}

// NewOracle builds the detector and subscribes it to the network's crash
// notifications. delay controls the time between a crash and each
// observer's suspicion (nil means uniform 5..20 ticks).
func NewOracle(sched *sim.Scheduler, net *netsim.Network, delay netsim.DelayFn) *Oracle {
	if delay == nil {
		delay = netsim.UniformDelay(5, 20)
	}
	o := &Oracle{
		sched:    sched,
		net:      net,
		delay:    delay,
		watchers: make(map[ids.ProcID]SuspectFn),
	}
	net.OnCrash(o.processCrashed)
	return o
}

// Register subscribes p's suspicion input. Each process registers exactly
// once, at startup.
func (o *Oracle) Register(p ids.ProcID, fn SuspectFn) { o.watchers[p] = fn }

// Mute stops automatic crash→suspicion propagation; scenarios that need
// full manual control over who suspects whom (Table 1, Figure 11) mute the
// oracle and inject every suspicion themselves.
func (o *Oracle) Mute() { o.muted = true }

func (o *Oracle) processCrashed(crashed ids.ProcID) {
	if o.muted {
		return
	}
	// Iterate observers deterministically: the per-observer delays come
	// from the shared seeded generator, so map-order iteration would make
	// identical seeds produce different schedules.
	watchers := make(ids.Set, len(o.watchers))
	for p := range o.watchers {
		watchers.Add(p)
	}
	for _, p := range watchers.Sorted() {
		if p == crashed || !o.net.Alive(p) {
			continue
		}
		observer, suspect := o.watchers[p], crashed
		who := p
		o.sched.After(o.delay(o.sched.Rand(), crashed, p), func() {
			if o.net.Alive(who) {
				observer(suspect)
			}
		})
	}
}

// Inject schedules faulty_p(q) at absolute time t regardless of q's actual
// state — a spurious detection when q is alive.
func (o *Oracle) Inject(p, q ids.ProcID, t sim.Time) {
	o.sched.At(t, func() {
		if fn, ok := o.watchers[p]; ok && o.net.Alive(p) {
			fn(q)
		}
	})
}
