package fd

import (
	"math/rand"
	"testing"
	"time"

	"procgroup/internal/ids"
)

// feed delivers beacon arrivals to the detector at the given interval
// starting from start, returning the time of the last arrival.
func feed(d *Accrual, q ids.ProcID, start time.Time, interval time.Duration, n int) time.Time {
	now := start
	for i := 0; i < n; i++ {
		d.ObserveBeacon(q, now)
		if i < n-1 {
			now = now.Add(interval)
		}
	}
	return now
}

func TestAccrualSteadyArrivalsAdaptBelowFixedTimeout(t *testing.T) {
	// A peer beaconing every 2ms: the fitted distribution is tight, so φ
	// crosses the threshold a few ms after the last arrival — far below
	// the 20ms a fixed detector would wait — yet never at the very next
	// expected arrival time.
	d := NewAccrual(AccrualOptions{Fallback: 20 * time.Millisecond})
	q := ids.Named("q")
	last := feed(d, q, t0, 2*time.Millisecond, 50)

	if d.Suspect(q, last.Add(4*time.Millisecond)) {
		t.Error("suspected at 2× the mean interval — too trigger-happy")
	}
	if !d.Suspect(q, last.Add(12*time.Millisecond)) {
		t.Error("not suspected after 6× the mean interval on a steady link")
	}
	// The adaptive threshold beats the fixed one: by 20ms of silence the
	// suspicion is unambiguous.
	if lvl := d.Suspicion(q, last.Add(20*time.Millisecond)); lvl < 8 {
		t.Errorf("φ after 20ms silence on a 2ms link = %v, want ≥ 8", lvl)
	}
}

func TestAccrualJitteryArrivalsEarnPatience(t *testing.T) {
	// Same mean rate, heavy jitter: the detector must wait longer than on
	// the steady link before suspecting.
	steady := NewAccrual(AccrualOptions{})
	jittery := NewAccrual(AccrualOptions{})
	q := ids.Named("q")
	feed(steady, q, t0, 2*time.Millisecond, 200)

	rng := rand.New(rand.NewSource(1))
	now := t0
	var lastJ time.Time
	for i := 0; i < 200; i++ {
		jittery.ObserveBeacon(q, now)
		lastJ = now
		now = now.Add(time.Duration(500+rng.Intn(7000)) * time.Microsecond) // 0.5–7.5ms
	}

	// At the same absolute silence the jittery link must look less
	// suspicious than the steady one.
	const silence = 10 * time.Millisecond
	lvlSteady := steady.Suspicion(q, t0.Add(2*time.Millisecond*199).Add(silence))
	lvlJittery := jittery.Suspicion(q, lastJ.Add(silence))
	if lvlJittery >= lvlSteady {
		t.Errorf("φ(jittery)=%v ≥ φ(steady)=%v at equal silence; jitter should buy patience",
			lvlJittery, lvlSteady)
	}
	// But a genuinely dead jittery peer is still caught.
	if !jittery.Suspect(q, lastJ.Add(100*time.Millisecond)) {
		t.Error("jittery link not suspected after 100ms of silence")
	}
}

func TestAccrualPauseThenResumeRecovers(t *testing.T) {
	// A long pause (e.g. a stall shorter than anyone's patience…) followed
	// by resumed traffic: the detector must stop suspecting as soon as
	// traffic resumes, and the absorbed outlier must not poison the window
	// into permanent paranoia or permanent blindness.
	d := NewAccrual(AccrualOptions{})
	q := ids.Named("q")
	last := feed(d, q, t0, 2*time.Millisecond, 100)

	pauseEnd := last.Add(80 * time.Millisecond)
	if !d.Suspect(q, last.Add(60*time.Millisecond)) {
		t.Fatal("not suspected during an 80ms pause on a 2ms link")
	}
	// Traffic resumes.
	last = feed(d, q, pauseEnd, 2*time.Millisecond, 30)
	if d.Suspect(q, last.Add(time.Millisecond)) {
		t.Error("still suspected 1ms after traffic resumed")
	}
	// The one 80ms outlier widens the fit but must not make the detector
	// blind: a dead peer is still suspected well within the fallback.
	if !d.Suspect(q, last.Add(150*time.Millisecond)) {
		t.Error("post-pause window too forgiving: 150ms of silence not suspected")
	}
}

func TestAccrualBootstrapFallsBackToFixedTimeout(t *testing.T) {
	d := NewAccrual(AccrualOptions{Fallback: 25 * time.Millisecond, MinSamples: 3})
	q := ids.Named("q")
	// First check registers; before MinSamples intervals, the fixed
	// fallback governs.
	if d.Suspect(q, t0) {
		t.Fatal("unknown peer suspected on first check")
	}
	if d.Suspect(q, t0.Add(25*time.Millisecond)) {
		t.Error("suspected at exactly the fallback threshold")
	}
	if !d.Suspect(q, t0.Add(26*time.Millisecond)) {
		t.Error("not suspected past the fallback threshold")
	}
	// Suspicion during bootstrap normalizes so Phi is crossed exactly at
	// the fallback.
	d2 := NewAccrual(AccrualOptions{Phi: 8, Fallback: 20 * time.Millisecond})
	d2.ObserveBeacon(q, t0)
	if lvl := d2.Suspicion(q, t0.Add(10*time.Millisecond)); lvl != 4 {
		t.Errorf("bootstrap level at half fallback = %v, want 4", lvl)
	}
}

func TestAccrualRetainDropsDeparted(t *testing.T) {
	d := NewAccrual(AccrualOptions{})
	p, q := ids.Named("p"), ids.Named("q")
	feed(d, p, t0, 2*time.Millisecond, 10)
	feed(d, q, t0, 2*time.Millisecond, 10)
	d.Retain([]ids.ProcID{p})
	if d.Suspect(q, t0.Add(time.Hour)) {
		t.Error("forgotten peer suspected from stale state")
	}
	if !d.Suspect(p, t0.Add(time.Hour)) {
		t.Error("retained peer not suspected after an hour")
	}
}

func TestAccrualProtocolBurstsDoNotPoisonTheWindow(t *testing.T) {
	// A burst of protocol frames µs apart (an agreement round) must not
	// collapse the fitted cadence: only beacons contribute samples, so
	// the suspicion threshold after the burst equals the steady-state
	// one. This is the regression test for the live cascade where a
	// burst-tightened window turned the next ordinary beacon gap into a
	// false suspicion that excluded half the group.
	d := NewAccrual(AccrualOptions{})
	q := ids.Named("q")
	last := feed(d, q, t0, 2*time.Millisecond, 50)

	// 200 protocol frames 50µs apart.
	now := last
	for i := 0; i < 200; i++ {
		now = now.Add(50 * time.Microsecond)
		d.Observe(q, now)
	}
	// Liveness is refreshed by the burst…
	if d.Suspect(q, now.Add(4*time.Millisecond)) {
		t.Error("suspected 4ms after a protocol burst — the window was poisoned")
	}
	// …and the threshold still reflects the 2ms beacon cadence, so a
	// genuinely dead peer is caught on the steady-state schedule.
	if !d.Suspect(q, now.Add(12*time.Millisecond)) {
		t.Error("not suspected 12ms after last traffic on a 2ms cadence")
	}
}

func TestAccrualFirstBeaconContributesNoSample(t *testing.T) {
	// A peer's first-ever beacon (or one arriving right after a Suspect
	// check registered the peer) has no previous traffic to measure a
	// gap from; pushing a zero-length or registration-relative interval
	// would bias the fit toward instant suspicion.
	d := NewAccrual(AccrualOptions{MinSamples: 1, Fallback: 50 * time.Millisecond})
	q := ids.Named("q")
	d.ObserveBeacon(q, t0)
	// Were a 0-length sample pushed, MinSamples=1 would be met with a
	// fit of mean 0 — suspecting after a few ms. The fallback must still
	// govern instead.
	if d.Suspect(q, t0.Add(20*time.Millisecond)) {
		t.Error("suspected inside the fallback window: first beacon poisoned the fit")
	}
	if !d.Suspect(q, t0.Add(51*time.Millisecond)) {
		t.Error("not suspected past the fallback threshold")
	}

	// Same via the Suspect-registration path.
	d2 := NewAccrual(AccrualOptions{MinSamples: 1, Fallback: 50 * time.Millisecond})
	d2.Suspect(q, t0) // registers
	d2.ObserveBeacon(q, t0.Add(3*time.Millisecond))
	d2.ObserveBeacon(q, t0.Add(5*time.Millisecond)) // the one real 2ms sample
	if d2.Suspect(q, t0.Add(6*time.Millisecond)) {
		t.Error("suspected 1ms after a beacon — registration gap entered the window")
	}
}

func TestAccrualRearmDoesNotAnchorSamples(t *testing.T) {
	// Rearm refreshes the silence clock with a synthetic timestamp (the
	// caller's own stall, not traffic); the gap from it to the next real
	// beacon must not enter the window — else every stall would drag the
	// fitted cadence toward the stall-to-beacon spacing.
	d := NewAccrual(AccrualOptions{MinSamples: 1, Fallback: 200 * time.Millisecond})
	q := ids.Named("q")
	d.Rearm(q, t0) // first contact via the stall path
	b1 := t0.Add(50 * time.Millisecond)
	d.ObserveBeacon(q, b1) // were the rearm gap sampled: a 50ms interval
	b2 := b1.Add(2 * time.Millisecond)
	d.ObserveBeacon(q, b2) // the one genuine sample: 2ms
	// With only the genuine 2ms sample in the window, 40ms of silence is
	// unambiguous death; a poisoned 50ms-mean fit would stay quiet.
	if !d.Suspect(q, b2.Add(40*time.Millisecond)) {
		t.Error("rearm-to-beacon gap entered the window and inflated the fit")
	}

	// And rearming an established peer suppresses exactly one sample.
	d2 := NewAccrual(AccrualOptions{})
	last := feed(d2, q, t0, 2*time.Millisecond, 50)
	d2.Rearm(q, last.Add(30*time.Millisecond))
	if d2.Suspect(q, last.Add(32*time.Millisecond)) {
		t.Error("suspected right after a rearm — silence clock not refreshed")
	}
	resumed := feed(d2, q, last.Add(35*time.Millisecond), 2*time.Millisecond, 5)
	if d2.Suspect(q, resumed.Add(4*time.Millisecond)) {
		t.Error("suspected at 2× cadence after post-rearm traffic resumed")
	}
	if !d2.Suspect(q, resumed.Add(15*time.Millisecond)) {
		t.Error("not suspected at 7× cadence — rearm should not widen the fit")
	}
}

func TestAccrualStallGapDoesNotInflateWindow(t *testing.T) {
	// A beacon gap that spans a stall (500ms on a 2ms link — ours or the
	// peer's, either way not cadence) must not enter the ring: one such
	// sample would inflate σ to tens of ms and leave the detector blind
	// to real crashes for the remaining lifetime of the 128-sample
	// window. MaxSample (= Fallback here) discards it; the gap still
	// refreshes the liveness clock.
	d := NewAccrual(AccrualOptions{Fallback: 20 * time.Millisecond})
	q := ids.Named("q")
	last := feed(d, q, t0, 2*time.Millisecond, 100)

	// The stall: one beacon 500ms late, then cadence resumes.
	resume := last.Add(500 * time.Millisecond)
	last = feed(d, q, resume, 2*time.Millisecond, 10)

	// Liveness recovered…
	if d.Suspect(q, last.Add(4*time.Millisecond)) {
		t.Error("suspected at 2× cadence after the stall cleared")
	}
	// …and the fit still reflects the 2ms cadence: a dead peer is caught
	// on the steady-state schedule. With the 0.5s outlier in the window,
	// σ≈44ms would keep even 100ms of silence unsuspicious.
	if !d.Suspect(q, last.Add(12*time.Millisecond)) {
		t.Error("stall-spanning interval entered the window and inflated σ")
	}
}

func TestAccrualWindowSlides(t *testing.T) {
	// With a small window, old behavior ages out: a link that migrates
	// from 20ms to 2ms beacons tightens its threshold accordingly.
	d := NewAccrual(AccrualOptions{Window: 16})
	q := ids.Named("q")
	last := feed(d, q, t0, 20*time.Millisecond, 32)
	if d.Suspect(q, last.Add(21*time.Millisecond)) {
		t.Fatal("suspected 1σ past the mean on the slow regime")
	}
	if !d.Suspect(q, last.Add(28*time.Millisecond)) {
		t.Fatal("not suspected 8σ past the mean on the slow regime")
	}
	last = feed(d, q, last.Add(20*time.Millisecond), 2*time.Millisecond, 32)
	if !d.Suspect(q, last.Add(15*time.Millisecond)) {
		t.Error("threshold did not tighten after the window slid to the fast regime")
	}
}
