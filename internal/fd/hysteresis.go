package fd

// Suspicion hysteresis: the policy layer that fixes the false-suspicion
// cascade at its root. The paper (§2.2) permits wrong detections — GMP
// stays consistent despite them — but every wrong detection still costs a
// reconfiguration, and under production-shaped timing adversity (GC
// pauses, single-core starvation, flapping links at the detection
// threshold) a raw threshold detector converts each timing accident into
// a view change. PR 9 met exactly that: a starved-but-alive member was
// excluded and quit itself, and the kv bench papered over it by inflating
// SuspectAfter 80ms→250ms — buying patience for flapping peers by slowing
// detection of genuinely dead ones.
//
// Hysteresis decouples the two costs. The wrapped (inner) detector keeps
// its fast threshold; the wrapper only *confirms* a suspicion after the
// inner detector has held it continuously for a dwell period, and a peer
// that repeatedly crosses the threshold and then proves alive (a
// "flapper") earns progressively more dwell. A genuinely crashed peer
// pays one dwell of extra latency, once; a flapping peer is absorbed at
// the policy layer instead of being excluded again and again. Every
// crossing that recovers is, by definition, a detector mistake — the peer
// was alive — so the wrapper is also the measurement point for the QoS
// quantities E22 reports: mistake rate and mistake duration (Chen/Toueg
// via Dobre et al., PAPERS.md).

import (
	"math"
	"sync/atomic"
	"time"

	"procgroup/internal/ids"
)

// HysteresisOptions tunes the hysteresis wrapper. The zero value is a
// measurement-only passthrough: Dwell 0 confirms every inner crossing
// immediately (behaviorally identical to the raw inner detector) while
// Stats still counts crossings, flaps, and mistake durations.
type HysteresisOptions struct {
	// Dwell is the confirm-before-suspect delay: the inner detector must
	// report q suspect continuously for Dwell before the wrapper does.
	// Traffic from q during the dwell cancels the crossing (a flap).
	// Zero confirms immediately.
	Dwell time.Duration
	// FlapPenalty scales the extra dwell a flapping peer earns: the
	// effective dwell is Dwell·(1 + FlapPenalty·flapScore), where
	// flapScore counts recovered crossings and decays exponentially.
	// Zero disables the penalty.
	FlapPenalty float64
	// MaxPenalty caps FlapPenalty·flapScore so a long-lived flapper's
	// dwell stays bounded (a real crash of a former flapper must still
	// be detected promptly). Default 8 when the penalty is enabled.
	MaxPenalty float64
	// PenaltyHalfLife is the exponential half-life of flapScore: a peer
	// that stops flapping gradually pays back down to the base dwell.
	// Default 30s when the penalty is enabled.
	PenaltyHalfLife time.Duration
	// Stats, when non-nil, aggregates crossing/mistake accounting. The
	// same *HysteresisStats may be shared by every detector a Factory
	// builds, giving a cluster-wide view (the E22 harness does this).
	Stats *HysteresisStats
}

func (o HysteresisOptions) withDefaults() HysteresisOptions {
	if o.FlapPenalty > 0 {
		if o.MaxPenalty <= 0 {
			o.MaxPenalty = 8
		}
		if o.PenaltyHalfLife <= 0 {
			o.PenaltyHalfLife = 30 * time.Second
		}
	}
	return o
}

// HysteresisStats is the shared mistake ledger. All counters are atomic so
// one instance can aggregate across every node of a cluster (each node's
// detector runs on its own event loop).
type HysteresisStats struct {
	// Crossings counts inner-detector threshold crossings observed.
	Crossings atomic.Uint64
	// Flaps counts crossings cancelled by traffic before confirmation —
	// mistakes the hysteresis layer absorbed.
	Flaps atomic.Uint64
	// Confirms counts crossings that survived the dwell and surfaced to
	// the protocol as suspicions.
	Confirms atomic.Uint64
	// ConfirmedRecoveries counts confirmed suspicions after which the
	// peer still proved alive — protocol-visible mistakes.
	ConfirmedRecoveries atomic.Uint64
	// Mistakes counts recovered crossings (= Flaps + ConfirmedRecoveries)
	// and MistakeNs sums their durations from crossing to recovery: the
	// raw material of the QoS mistake-duration metric.
	Mistakes  atomic.Uint64
	MistakeNs atomic.Int64
}

// MeanMistake returns the mean duration of recovered crossings, or 0 when
// none were observed.
func (s *HysteresisStats) MeanMistake() time.Duration {
	n := s.Mistakes.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.MistakeNs.Load() / int64(n))
}

// hystState is the wrapper's per-peer memory: the current crossing (if
// any) and the decayed flap score.
type hystState struct {
	crossed   bool
	confirmed bool
	crossedAt time.Time
	flap      float64   // decayed count of recovered crossings
	flapAt    time.Time // timestamp flap was last decayed to
}

// Hysteresis wraps any Detector with confirm-before-suspect dwell and a
// flap-aware penalty. Like every detector it is event-loop-owned and
// needs no locking (the shared Stats are atomic).
type Hysteresis struct {
	opts  HysteresisOptions
	inner Detector
	peers map[ids.ProcID]*hystState
}

// NewHysteresis wraps inner with the given hysteresis policy.
func NewHysteresis(inner Detector, opts HysteresisOptions) *Hysteresis {
	return &Hysteresis{
		opts:  opts.withDefaults(),
		inner: inner,
		peers: make(map[ids.ProcID]*hystState),
	}
}

// NewHysteresisFactory returns a Factory producing independent Hysteresis
// wrappers over detectors built by inner. A Stats pointer in opts is
// shared across all of them.
func NewHysteresisFactory(inner Factory, opts HysteresisOptions) Factory {
	return func() Detector { return NewHysteresis(inner(), opts) }
}

// Observe implements Detector: traffic from q proves it alive, so an open
// crossing is a mistake — record it, bump the flap score, and forward.
func (h *Hysteresis) Observe(q ids.ProcID, at time.Time) {
	if st, ok := h.peers[q]; ok && st.crossed {
		h.recover(st, at)
	}
	h.inner.Observe(q, at)
}

// ObserveBeacon implements Detector; beacons prove liveness exactly like
// protocol traffic does.
func (h *Hysteresis) ObserveBeacon(q ids.ProcID, at time.Time) {
	if st, ok := h.peers[q]; ok && st.crossed {
		h.recover(st, at)
	}
	h.inner.ObserveBeacon(q, at)
}

// recover closes an open crossing because q produced traffic: the
// crossing was a mistake. Its duration feeds the mistake ledger and the
// peer's flap score grows, earning it more dwell next time.
func (h *Hysteresis) recover(st *hystState, at time.Time) {
	if s := h.opts.Stats; s != nil {
		if st.confirmed {
			s.ConfirmedRecoveries.Add(1)
		} else {
			s.Flaps.Add(1)
		}
		s.Mistakes.Add(1)
		if d := at.Sub(st.crossedAt); d > 0 {
			s.MistakeNs.Add(int64(d))
		}
	}
	h.decay(st, at)
	st.flap++
	st.crossed = false
	st.confirmed = false
}

// Suspicion implements Detector: the inner level is forwarded unchanged,
// so the Faulty trace event still records how confident the *detector*
// was when the policy layer let the suspicion through.
func (h *Hysteresis) Suspicion(q ids.ProcID, at time.Time) float64 {
	return h.inner.Suspicion(q, at)
}

// Suspect implements Detector: report true only once the inner detector
// has held the suspicion for the peer's effective dwell.
func (h *Hysteresis) Suspect(q ids.ProcID, at time.Time) bool {
	raw := h.inner.Suspect(q, at)
	st, ok := h.peers[q]
	if !ok {
		st = &hystState{}
		h.peers[q] = st
	}
	if !raw {
		// The inner detector cleared without traffic reaching us (e.g. a
		// refresh we did not mediate). No liveness was proven, so close
		// the crossing without charging a mistake.
		st.crossed = false
		st.confirmed = false
		return false
	}
	if !st.crossed {
		st.crossed = true
		st.confirmed = false
		st.crossedAt = at
		if s := h.opts.Stats; s != nil {
			s.Crossings.Add(1)
		}
	}
	if !st.confirmed && at.Sub(st.crossedAt) >= h.dwell(st, at) {
		st.confirmed = true
		if s := h.opts.Stats; s != nil {
			s.Confirms.Add(1)
		}
	}
	return st.confirmed
}

// dwell computes q's effective dwell: the base dwell scaled up by the
// decayed flap score, capped by MaxPenalty.
func (h *Hysteresis) dwell(st *hystState, at time.Time) time.Duration {
	if h.opts.FlapPenalty <= 0 || st.flap == 0 {
		return h.opts.Dwell
	}
	h.decay(st, at)
	pen := h.opts.FlapPenalty * st.flap
	if pen > h.opts.MaxPenalty {
		pen = h.opts.MaxPenalty
	}
	return h.opts.Dwell + time.Duration(pen*float64(h.opts.Dwell))
}

// decay applies the exponential half-life to st.flap up to time at.
func (h *Hysteresis) decay(st *hystState, at time.Time) {
	if h.opts.PenaltyHalfLife <= 0 {
		return
	}
	if !st.flapAt.IsZero() && st.flap > 0 {
		if dt := at.Sub(st.flapAt); dt > 0 {
			st.flap *= math.Exp2(-float64(dt) / float64(h.opts.PenaltyHalfLife))
		}
	}
	st.flapAt = at
}

// Rearm implements Detector: our OWN stall fabricated the silence, so the
// open crossing (if any) is evidence-free — drop it without charging the
// peer a mistake or a flap — and forward so the inner detector refreshes
// its clock without anchoring a sample.
func (h *Hysteresis) Rearm(q ids.ProcID, at time.Time) {
	if st, ok := h.peers[q]; ok {
		st.crossed = false
		st.confirmed = false
	}
	h.inner.Rearm(q, at)
}

// Retain implements Detector: prune the wrapper's own per-peer state and
// forward so the inner detector prunes too.
func (h *Hysteresis) Retain(members []ids.ProcID) {
	retainKeys(h.peers, members)
	h.inner.Retain(members)
}
