// Package fd is the failure-detection substrate — the F1 mechanism the
// paper deliberately abstracts (§2.2): "we are not concerned with the
// details of the mechanism used here, but for liveness, we do assume that
// it occurs in finite time after a real crash". Detections may be wrong;
// staying consistent despite that is GMP's whole contribution (§2.3). The
// package therefore treats detection as a policy space and provides one
// implementation per substrate:
//
//   - Oracle (fd.go) serves the simulator: it watches crashes on the
//     simulated network and delivers faulty_p(q) suspicions after a
//     configurable per-observer delay, with injection hooks for the
//     spurious suspicions the adversarial scenarios need (Table 1,
//     Figure 11).
//
//   - Timeout (detector.go) serves the live runtime: the classic fixed
//     silence threshold, extracted behavior-preservingly from the
//     pre-refactor heartbeat loop (the extraction is pinned bit-for-bit
//     by TestTimeoutMatchesPreRefactorBeatLoop).
//
//   - Accrual (accrual.go) is the adaptive alternative: per-peer
//     inter-arrival statistics fed by beacon receipts, emitting a
//     continuous suspicion level φ = −log₁₀ P(silence | alive) in the
//     style of Hayashibara et al.'s φ-accrual detector. Suspect-after
//     then tracks each link's measured behavior instead of a global
//     worst-case constant — the lever E15/E16 (EXPERIMENTS.md) measure,
//     since agreement time is detector-bound (§2.2).
//
// Live detectors implement the Detector interface and are chosen per
// group through a Factory (GroupOptions.Detector in the root API); they
// are driven entirely from each node's event loop with explicit
// timestamps, so synthetic arrival schedules unit-test exactly the code
// the live runtime runs.
package fd
