package fd

// The φ-accrual detector (Hayashibara et al., "The φ accrual failure
// detector", SRDS 2004 — see PAPERS.md for the lineage through Sens et
// al.'s adaptive implementations): instead of a boolean built from one
// global constant, maintain per-peer inter-arrival statistics and output a
// continuous suspicion level φ = −log₁₀ P(silence this long | the peer is
// alive). The threshold then adapts to each link's measured behavior — a
// peer heartbeating every 2ms is suspected after a few ms of silence while
// a jittery link earns proportionally more patience, which is precisely
// the fix for E15's finding that exclusion latency is detector-bound.

import (
	"math"
	"time"

	"procgroup/internal/ids"
)

// AccrualOptions tunes the φ-accrual detector. The zero value selects the
// documented defaults.
type AccrualOptions struct {
	// Phi is the suspicion threshold: suspect q once φ(q) ≥ Phi.
	// φ = 8 means "the chance a live peer stays silent this long is
	// 10⁻⁸ under the fitted arrival distribution". Default 8.
	Phi float64
	// Window is the number of inter-arrival samples kept per peer.
	// Default 128.
	Window int
	// MinSamples gates adaptivity: until a peer has contributed this
	// many intervals, suspicion falls back to the fixed Fallback
	// timeout. Default 3.
	MinSamples int
	// Fallback is the fixed silence threshold used before MinSamples
	// intervals have been observed (and the bound Suspicion normalizes
	// against during bootstrap). Default 200ms.
	Fallback time.Duration
	// MinStdDev floors the fitted standard deviation so a perfectly
	// regular beacon stream cannot drive the distribution's tail to
	// zero width (and every OS scheduling hiccup into a suspicion).
	// Default 1ms.
	MinStdDev time.Duration
	// MaxSample bounds the inter-arrival gap admitted into the window as
	// a cadence sample. A gap longer than this spans a stall (ours or the
	// peer's) rather than measuring beacon cadence; before this guard,
	// one giant post-stall interval entered the 128-sample ring and
	// inflated σ — and thus patience toward genuinely dead peers — for
	// the lifetime of the whole window. Oversized gaps still refresh the
	// liveness clock; they just contribute no sample. Groups whose beacon
	// interval approaches Fallback should raise this. Default: Fallback.
	MaxSample time.Duration
}

func (o AccrualOptions) withDefaults() AccrualOptions {
	if o.Phi <= 0 {
		o.Phi = 8
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.Fallback <= 0 {
		o.Fallback = 200 * time.Millisecond
	}
	if o.MinStdDev <= 0 {
		o.MinStdDev = time.Millisecond
	}
	if o.MaxSample <= 0 {
		o.MaxSample = o.Fallback
	}
	return o
}

// Accrual is the adaptive detector. One instance serves one process; all
// methods run on that process's event loop (no locking).
type Accrual struct {
	opts  AccrualOptions
	peers map[ids.ProcID]*arrivals
}

// arrivals is the per-peer sliding window of inter-arrival intervals with
// incrementally maintained first and second moments. seen distinguishes a
// peer whose last is real traffic from one merely registered by a
// Suspect/track call: an interval is a cadence sample only when measured
// from actual traffic.
type arrivals struct {
	last       time.Time
	seen       bool
	ring       []float64 // seconds
	idx, n     int
	sum, sumSq float64
}

func (a *arrivals) push(v float64) {
	if a.n == len(a.ring) {
		old := a.ring[a.idx]
		a.sum -= old
		a.sumSq -= old * old
	} else {
		a.n++
	}
	a.ring[a.idx] = v
	a.sum += v
	a.sumSq += v * v
	a.idx = (a.idx + 1) % len(a.ring)
}

func (a *arrivals) meanStd() (mean, std float64) {
	mean = a.sum / float64(a.n)
	variance := a.sumSq/float64(a.n) - mean*mean
	if variance < 0 { // floating-point cancellation on tight windows
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// NewAccrual builds an adaptive detector with the given options (zero
// value = defaults).
func NewAccrual(opts AccrualOptions) *Accrual {
	return &Accrual{opts: opts.withDefaults(), peers: make(map[ids.ProcID]*arrivals)}
}

// NewAccrualFactory returns a Factory producing independent NewAccrual
// detectors.
func NewAccrualFactory(opts AccrualOptions) Factory {
	return func() Detector { return NewAccrual(opts) }
}

// Observe implements Detector: protocol traffic refreshes q's liveness
// clock but contributes no cadence sample — µs-apart protocol bursts must
// not collapse the fitted distribution (and with them every scheduling
// hiccup would become a suspicion cascade).
func (d *Accrual) Observe(q ids.ProcID, at time.Time) {
	st := d.track(q, at)
	st.last = at
	st.seen = true
}

// ObserveBeacon implements Detector: a coalesced beacon arrives exactly
// when the channel was otherwise silent for a full interval, so the gap
// since the previous traffic of any kind is one liveness-pulse period —
// the inter-arrival sample the φ fit is defined over.
func (d *Accrual) ObserveBeacon(q ids.ProcID, at time.Time) {
	st := d.track(q, at)
	// Only a gap measured from previous *traffic* is a cadence sample: a
	// peer just registered (by track here, or by an earlier Suspect
	// check) would otherwise contribute a zero-length or
	// registration-relative interval and bias the fit low. And only a gap
	// within MaxSample measures cadence: a longer one spans a stall, and
	// admitting it would inflate σ for the whole window (the post-stall
	// pollution E22's stall arms exercise).
	if st.seen {
		if iv := at.Sub(st.last).Seconds(); iv >= 0 && iv <= d.opts.MaxSample.Seconds() {
			st.push(iv)
		}
	}
	st.last = at
	st.seen = true
}

// track returns q's state, creating it (first seen at `at`) if absent.
func (d *Accrual) track(q ids.ProcID, at time.Time) *arrivals {
	st, ok := d.peers[q]
	if !ok {
		st = &arrivals{ring: make([]float64, d.opts.Window), last: at}
		d.peers[q] = st
	}
	return st
}

// phi computes −log₁₀ P(interval > elapsed) under a normal fit of q's
// observed inter-arrival distribution, with the σ floor applied. Larger is
// more suspicious; the value is capped so a long-dead peer cannot push it
// to +Inf.
func (d *Accrual) phi(st *arrivals, elapsed float64) float64 {
	mean, std := st.meanStd()
	if floor := d.opts.MinStdDev.Seconds(); std < floor {
		std = floor
	}
	// P(X > elapsed), X ~ N(mean, std): 0.5·erfc((elapsed−mean)/(σ√2)).
	p := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	const phiCap = 100 // −log₁₀ of the smallest tail we care to distinguish
	if p < 1e-100 {
		return phiCap
	}
	return -math.Log10(p)
}

// Suspicion implements Detector: φ once the window is primed, and the
// fallback-normalized silence fraction scaled to the φ threshold before
// that (so bootstrap suspicions cross Phi exactly when the fallback
// timeout elapses). Untracked peers are 0.
func (d *Accrual) Suspicion(q ids.ProcID, at time.Time) float64 {
	st, ok := d.peers[q]
	if !ok {
		return 0
	}
	elapsed := at.Sub(st.last).Seconds()
	if st.n < d.opts.MinSamples {
		return d.opts.Phi * (elapsed / d.opts.Fallback.Seconds())
	}
	return d.phi(st, elapsed)
}

// Suspect implements Detector. As with Timeout, the first check of an
// unknown peer starts its clock and reports healthy.
func (d *Accrual) Suspect(q ids.ProcID, at time.Time) bool {
	st, ok := d.peers[q]
	if !ok {
		d.track(q, at)
		return false
	}
	if st.n < d.opts.MinSamples {
		return at.Sub(st.last) > d.opts.Fallback
	}
	return d.phi(st, at.Sub(st.last).Seconds()) >= d.opts.Phi
}

// Rearm implements Detector: refresh the silence clock but clear seen —
// `last` is now a synthetic timestamp, and the gap from it to the next
// real beacon must not enter the window as a cadence sample.
func (d *Accrual) Rearm(q ids.ProcID, at time.Time) {
	st := d.track(q, at)
	st.last = at
	st.seen = false
}

// Retain implements Detector.
func (d *Accrual) Retain(members []ids.ProcID) { retainKeys(d.peers, members) }
