package fd

import (
	"testing"
	"time"

	"procgroup/internal/ids"
)

func TestHysteresisDwellAbsorbsTransientCrossing(t *testing.T) {
	// A crossing shorter than the dwell never surfaces: the inner detector
	// suspects, traffic resumes, and the wrapper reports a flap instead of
	// a suspicion.
	var stats HysteresisStats
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
		Dwell: 15 * time.Millisecond,
		Stats: &stats,
	})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)

	// 25ms of silence: inner crosses (>20ms) but dwell (15ms more) has not
	// elapsed since the crossing was first seen.
	at := t0.Add(25 * time.Millisecond)
	if h.Suspect(q, at) {
		t.Fatal("confirmed before the dwell elapsed")
	}
	// 10ms later, still inside the dwell; then traffic resumes.
	if h.Suspect(q, at.Add(10*time.Millisecond)) {
		t.Fatal("confirmed mid-dwell")
	}
	h.ObserveBeacon(q, at.Add(12*time.Millisecond))
	if h.Suspect(q, at.Add(14*time.Millisecond)) {
		t.Fatal("suspected after the peer proved alive")
	}
	if got := stats.Crossings.Load(); got != 1 {
		t.Errorf("crossings = %d, want 1", got)
	}
	if got := stats.Flaps.Load(); got != 1 {
		t.Errorf("flaps = %d, want 1", got)
	}
	if got := stats.Confirms.Load(); got != 0 {
		t.Errorf("confirms = %d, want 0", got)
	}
	// The mistake lasted from the first Suspect observation of the
	// crossing (25ms) to recovery (37ms).
	if d := stats.MeanMistake(); d != 12*time.Millisecond {
		t.Errorf("mean mistake duration = %v, want 12ms", d)
	}
}

func TestHysteresisConfirmsSustainedSilence(t *testing.T) {
	// A real crash: the inner detector stays suspicious, so after the
	// dwell the wrapper confirms — detection is delayed by at most one
	// dwell, never suppressed.
	var stats HysteresisStats
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
		Dwell: 15 * time.Millisecond,
		Stats: &stats,
	})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)

	crossed := t0.Add(25 * time.Millisecond)
	if h.Suspect(q, crossed) {
		t.Fatal("confirmed before the dwell elapsed")
	}
	if !h.Suspect(q, crossed.Add(15*time.Millisecond)) {
		t.Fatal("not confirmed after the dwell elapsed under sustained silence")
	}
	if got := stats.Confirms.Load(); got != 1 {
		t.Errorf("confirms = %d, want 1", got)
	}
	// Confirmation is sticky while silence lasts.
	if !h.Suspect(q, crossed.Add(40*time.Millisecond)) {
		t.Fatal("confirmation did not stick under continued silence")
	}
}

func TestHysteresisZeroDwellIsMeasuredPassthrough(t *testing.T) {
	// Dwell 0: behavior is the raw inner detector's, but crossings and
	// mistakes are still counted — the E22 "hysteresis off" arms rely on
	// this to measure mistake durations without changing behavior.
	var stats HysteresisStats
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{Stats: &stats})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)

	at := t0.Add(25 * time.Millisecond)
	if !h.Suspect(q, at) {
		t.Fatal("zero-dwell wrapper did not confirm on the first crossing")
	}
	h.ObserveBeacon(q, at.Add(5*time.Millisecond))
	if h.Suspect(q, at.Add(6*time.Millisecond)) {
		t.Fatal("suspected after recovery")
	}
	if got := stats.ConfirmedRecoveries.Load(); got != 1 {
		t.Errorf("confirmed recoveries = %d, want 1", got)
	}
	if got := stats.Mistakes.Load(); got != 1 {
		t.Errorf("mistakes = %d, want 1", got)
	}
}

func TestHysteresisFlapPenaltyGrowsDwell(t *testing.T) {
	// A repeat offender earns progressively more patience: after one flap
	// the effective dwell doubles (penalty 1.0), so a second crossing of
	// the same length that would have confirmed at base dwell is absorbed.
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
		Dwell:           10 * time.Millisecond,
		FlapPenalty:     1,
		PenaltyHalfLife: time.Hour, // effectively no decay inside the test
	})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)

	// First crossing: confirmed at base dwell.
	c1 := t0.Add(25 * time.Millisecond)
	h.Suspect(q, c1)
	if !h.Suspect(q, c1.Add(10*time.Millisecond)) {
		t.Fatal("first crossing not confirmed at base dwell")
	}
	// The peer proves alive: flap score 1.
	h.ObserveBeacon(q, c1.Add(12*time.Millisecond))

	// Second crossing: at base dwell it must NOT confirm (effective dwell
	// is now 20ms), at twice the base dwell it must.
	c2 := c1.Add(12*time.Millisecond + 25*time.Millisecond)
	h.Suspect(q, c2)
	if h.Suspect(q, c2.Add(10*time.Millisecond)) {
		t.Fatal("second crossing confirmed at base dwell despite flap penalty")
	}
	if !h.Suspect(q, c2.Add(20*time.Millisecond)) {
		t.Fatal("second crossing not confirmed at the doubled dwell")
	}
}

func TestHysteresisPenaltyDecays(t *testing.T) {
	// The flap score halves per half-life: long after the flapping
	// stopped, the peer is back to (almost) base dwell.
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
		Dwell:           10 * time.Millisecond,
		FlapPenalty:     1,
		PenaltyHalfLife: 100 * time.Millisecond,
	})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)
	c1 := t0.Add(25 * time.Millisecond)
	h.Suspect(q, c1)
	h.ObserveBeacon(q, c1.Add(2*time.Millisecond)) // flap: score 1

	// 10 half-lives later the score is ~1/1024: effective dwell ≈ base.
	c2 := c1.Add(time.Second)
	h.ObserveBeacon(q, c2)
	c3 := c2.Add(25 * time.Millisecond)
	h.Suspect(q, c3)
	if !h.Suspect(q, c3.Add(11*time.Millisecond)) {
		t.Fatal("decayed flap score still inflating the dwell after 10 half-lives")
	}
}

func TestHysteresisRearmDropsCrossingWithoutMistake(t *testing.T) {
	// Our own stall fabricated the silence: Rearm must close the open
	// crossing without charging the peer a flap or a mistake.
	var stats HysteresisStats
	h := NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
		Dwell:       10 * time.Millisecond,
		FlapPenalty: 1,
		Stats:       &stats,
	})
	q := ids.Named("q")
	h.ObserveBeacon(q, t0)
	h.Suspect(q, t0.Add(25*time.Millisecond)) // crossing opens
	h.Rearm(q, t0.Add(26*time.Millisecond))

	if got := stats.Mistakes.Load(); got != 0 {
		t.Errorf("mistakes after Rearm = %d, want 0 (no liveness was proven)", got)
	}
	if h.Suspect(q, t0.Add(30*time.Millisecond)) {
		t.Fatal("suspected right after Rearm refreshed the silence clock")
	}
	// And the dropped crossing earned no penalty: the next real crossing
	// confirms at base dwell.
	h.ObserveBeacon(q, t0.Add(35*time.Millisecond))
	c := t0.Add(35*time.Millisecond + 25*time.Millisecond)
	h.Suspect(q, c)
	if !h.Suspect(q, c.Add(10*time.Millisecond)) {
		t.Fatal("crossing after Rearm did not confirm at base dwell")
	}
}

func TestHysteresisOverAccrual(t *testing.T) {
	// The wrapper composes with the adaptive detector: φ crossings obey
	// the same dwell discipline.
	h := NewHysteresis(NewAccrual(AccrualOptions{}), HysteresisOptions{
		Dwell: 10 * time.Millisecond,
	})
	q := ids.Named("q")
	now := t0
	for i := 0; i < 50; i++ {
		h.ObserveBeacon(q, now)
		now = now.Add(2 * time.Millisecond)
	}
	last := now.Add(-2 * time.Millisecond)

	// 12ms silence on a 2ms link: φ has crossed (see the accrual tests)
	// but the dwell holds the suspicion back…
	crossed := last.Add(12 * time.Millisecond)
	if !h.inner.Suspect(q, crossed) {
		t.Fatal("precondition: inner accrual not suspicious at 12ms silence")
	}
	if h.Suspect(q, crossed) {
		t.Fatal("confirmed before the dwell elapsed")
	}
	// …and sustained silence confirms one dwell later.
	if !h.Suspect(q, crossed.Add(10*time.Millisecond)) {
		t.Fatal("not confirmed after dwell under sustained silence")
	}
}
