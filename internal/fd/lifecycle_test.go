package fd

import (
	"math/rand"
	"testing"
	"time"

	"procgroup/internal/ids"
)

// stateCount reports how many peers a detector currently tracks,
// recursing through hysteresis wrappers so hidden inner maps are audited
// too.
func stateCount(t *testing.T, d Detector) int {
	t.Helper()
	switch v := d.(type) {
	case *Timeout:
		return len(v.lastSeen)
	case *Accrual:
		return len(v.peers)
	case *Hysteresis:
		if inner := stateCount(t, v.inner); inner > len(v.peers) {
			return inner
		}
		return len(v.peers)
	default:
		t.Fatalf("stateCount: unhandled detector %T", d)
		return 0
	}
}

func TestRetainPrunesAllDetectorStateUnderChurn(t *testing.T) {
	// Property: across repeated exclude/readmit cycles with fresh
	// incarnations — the live runtime's churn shape, where every rebirth
	// is a brand-new ProcID — Retain keeps every detector's per-peer
	// state bounded by the member count. A leak here is unbounded memory
	// on any long-lived group with churn.
	detectors := map[string]func() Detector{
		"timeout": func() Detector { return NewTimeout(20 * time.Millisecond) },
		"accrual": func() Detector { return NewAccrual(AccrualOptions{}) },
		"hysteresis-over-timeout": func() Detector {
			return NewHysteresis(NewTimeout(20*time.Millisecond), HysteresisOptions{
				Dwell: 5 * time.Millisecond, FlapPenalty: 1,
			})
		},
		"hysteresis-over-accrual": func() Detector {
			return NewHysteresis(NewAccrual(AccrualOptions{}), HysteresisOptions{
				Dwell: 5 * time.Millisecond, FlapPenalty: 1,
			})
		},
	}

	for name, mk := range detectors {
		t.Run(name, func(t *testing.T) {
			d := mk()
			rng := rand.New(rand.NewSource(7))
			const sites = 8
			inc := make([]uint32, sites)
			members := make([]ids.ProcID, sites)
			for i := range members {
				members[i] = ids.ProcID{Site: "p" + string(rune('a'+i))}
			}

			now := t0
			for cycle := 0; cycle < 200; cycle++ {
				// Drive traffic and suspicion checks on current members,
				// including silences long enough to open crossings.
				for step := 0; step < 12; step++ {
					now = now.Add(time.Duration(1+rng.Intn(30)) * time.Millisecond)
					q := members[rng.Intn(sites)]
					switch rng.Intn(3) {
					case 0:
						d.ObserveBeacon(q, now)
					case 1:
						d.Observe(q, now)
					default:
						d.Suspect(q, now)
					}
				}
				// Exclude a random member and readmit a fresh incarnation
				// of the same site — the detector must forget the old one.
				i := rng.Intn(sites)
				inc[i]++
				members[i] = ids.ProcID{Site: members[i].Site, Incarnation: inc[i]}
				d.Retain(members)

				if got := stateCount(t, d); got > sites {
					t.Fatalf("cycle %d: tracking %d peers for a %d-member view — stale incarnations leaked",
						cycle, got, sites)
				}
			}
		})
	}
}
