package fd

import (
	"testing"

	"procgroup/internal/ids"
	"procgroup/internal/netsim"
	"procgroup/internal/sim"
)

func setup(seed int64) (*sim.Scheduler, *netsim.Network, *Oracle) {
	s := sim.NewScheduler(seed)
	n := netsim.New(s, netsim.ConstDelay(1), nil)
	o := NewOracle(s, n, netsim.ConstDelay(10))
	return s, n, o
}

func TestCrashPropagatesToAllLiveObservers(t *testing.T) {
	s, n, o := setup(1)
	procs := ids.Gen(4)
	suspects := map[ids.ProcID][]ids.ProcID{}
	for _, p := range procs {
		p := p
		n.Register(p, func(ids.ProcID, any) {})
		o.Register(p, func(q ids.ProcID) { suspects[p] = append(suspects[p], q) })
	}
	s.At(5, func() { n.Crash(procs[3]) })
	s.Run()
	for _, p := range procs[:3] {
		if len(suspects[p]) != 1 || suspects[p][0] != procs[3] {
			t.Errorf("%v suspects = %v, want [p4]", p, suspects[p])
		}
	}
	if len(suspects[procs[3]]) != 0 {
		t.Error("crashed process received a suspicion of itself")
	}
}

func TestDetectionHasLatency(t *testing.T) {
	s, n, o := setup(1)
	a, b := ids.Named("a"), ids.Named("b")
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	var at sim.Time = -1
	o.Register(a, func(ids.ProcID) { at = s.Now() })
	o.Register(b, func(ids.ProcID) {})
	s.At(5, func() { n.Crash(b) })
	s.Run()
	if at != 15 {
		t.Errorf("suspicion at %d, want crash(5) + delay(10) = 15", at)
	}
}

func TestCrashedObserverGetsNoSuspicions(t *testing.T) {
	s, n, o := setup(1)
	a, b, c := ids.Named("a"), ids.Named("b"), ids.Named("c")
	for _, p := range []ids.ProcID{a, b, c} {
		n.Register(p, func(ids.ProcID, any) {})
	}
	fired := false
	o.Register(a, func(ids.ProcID) { fired = true })
	o.Register(b, func(ids.ProcID) {})
	s.At(5, func() { n.Crash(c) })
	s.At(7, func() { n.Crash(a) }) // a dies before its detection at 15
	s.Run()
	if fired {
		t.Error("a was dead at detection time but its callback fired")
	}
}

func TestInjectSpuriousSuspicion(t *testing.T) {
	s, n, o := setup(1)
	a, b := ids.Named("a"), ids.Named("b")
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	var got []ids.ProcID
	o.Register(a, func(q ids.ProcID) { got = append(got, q) })
	o.Inject(a, b, 3) // b is alive — spurious detection
	s.Run()
	if len(got) != 1 || got[0] != b {
		t.Errorf("injected suspicion = %v", got)
	}
	if !n.Alive(b) {
		t.Error("injection must not kill the suspect")
	}
}

func TestMuteSuppressesAutomaticDetection(t *testing.T) {
	s, n, o := setup(1)
	a, b := ids.Named("a"), ids.Named("b")
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	fired := false
	o.Register(a, func(ids.ProcID) { fired = true })
	o.Mute()
	s.At(1, func() { n.Crash(b) })
	s.Run()
	if fired {
		t.Error("muted oracle still propagated a crash")
	}
}
