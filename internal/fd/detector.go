package fd

// The live runtime's F1 policy, made pluggable. The paper abstracts the
// failure-detection mechanism entirely (§2.2): any mechanism that
// eventually notices a real crash satisfies F1, and wrong detections are
// legal — GMP's whole contribution is staying consistent despite them.
// That freedom is a design space: the fixed-timeout detector extracted
// from internal/live is one point in it, the φ-accrual detector of
// accrual.go another. Detector is the seam that lets the live runtime
// (and the root procgroup API) choose per group.

import (
	"time"

	"procgroup/internal/ids"
)

// Detector is the live runtime's pluggable F1 policy: it watches traffic
// arrival per peer and answers "should q be suspected now?". One Detector
// instance serves one process and is driven entirely from that process's
// event loop, so implementations need no internal locking.
//
// Time is always passed in rather than read from the clock, which keeps
// detectors deterministic under test: synthetic arrival schedules exercise
// exactly the code the live runtime runs.
type Detector interface {
	// Observe records that protocol traffic from q arrived at time at.
	// Every receive proves liveness; adaptive detectors must NOT treat
	// protocol inter-arrival gaps as cadence samples (a burst of frames
	// µs apart would collapse the fitted distribution and make the next
	// normal beacon gap look like death).
	Observe(q ids.ProcID, at time.Time)
	// ObserveBeacon records that a substrate heartbeat from q arrived at
	// time at. Beacons prove liveness too, and — because the live
	// runtime coalesces them (a pure beacon is sent only on a channel
	// silent for a full interval) — the gap since the previous traffic
	// of any kind is exactly one liveness-pulse period, the sample an
	// adaptive detector should fit.
	ObserveBeacon(q ids.ProcID, at time.Time)
	// Suspicion reports the current suspicion level of q at time at — a
	// monotone function of the silence observed so far. For the timeout
	// detector it is elapsed/threshold; for the accrual detector it is φ.
	// The level is recorded on the Faulty trace event when a suspicion
	// fires, so traces show how confident the detector was.
	Suspicion(q ids.ProcID, at time.Time) float64
	// Suspect reports whether q should be suspected at time at. A peer
	// never observed before is registered as first seen at `at` and not
	// suspected — the grace the pre-extraction live runtime gave newly
	// installed members.
	Suspect(q ids.ProcID, at time.Time) bool
	// Rearm refreshes q's silence clock after the caller detected its
	// OWN scheduling stall: the elapsed silence it observed is
	// unreliable, but no traffic actually arrived, so adaptive
	// detectors must not let the refresh anchor an arrival sample (the
	// gap to the next real beacon would be fabricated).
	Rearm(q ids.ProcID, at time.Time)
	// Retain drops tracking state for every peer not in members; the
	// live runtime calls it at each view installation so departed
	// processes stop consuming memory.
	Retain(members []ids.ProcID)
}

// Factory builds one Detector per process; it is what GroupOptions carries
// so every node of a live cluster gets its own independent instance.
type Factory func() Detector

// Timeout is the fixed-threshold detector extracted verbatim from the
// pre-refactor live runtime: q is suspected once the silence since its
// last observed traffic strictly exceeds After. It is the paper's
// simplest F1 realization — one global constant, no per-link adaptation.
type Timeout struct {
	// After is the silence threshold.
	After time.Duration

	lastSeen map[ids.ProcID]time.Time
}

// NewTimeout builds a fixed-threshold detector.
func NewTimeout(after time.Duration) *Timeout {
	return &Timeout{After: after, lastSeen: make(map[ids.ProcID]time.Time)}
}

// NewTimeoutFactory returns a Factory producing independent NewTimeout
// detectors — the live runtime's default when no detector is configured.
func NewTimeoutFactory(after time.Duration) Factory {
	return func() Detector { return NewTimeout(after) }
}

// Observe implements Detector.
func (t *Timeout) Observe(q ids.ProcID, at time.Time) { t.lastSeen[q] = at }

// ObserveBeacon implements Detector; the fixed-threshold policy makes no
// distinction between beacon and protocol traffic.
func (t *Timeout) ObserveBeacon(q ids.ProcID, at time.Time) { t.lastSeen[q] = at }

// Rearm implements Detector; with no arrival statistics to protect, it is
// a plain refresh.
func (t *Timeout) Rearm(q ids.ProcID, at time.Time) { t.lastSeen[q] = at }

// Suspicion implements Detector: elapsed silence as a fraction of the
// threshold (1.0 = at the suspicion boundary). An untracked peer is 0.
func (t *Timeout) Suspicion(q ids.ProcID, at time.Time) float64 {
	seen, ok := t.lastSeen[q]
	if !ok || t.After <= 0 {
		return 0
	}
	return float64(at.Sub(seen)) / float64(t.After)
}

// Suspect implements Detector. The first check of an unknown peer starts
// its silence clock and reports healthy — exactly the `lastSeen[m] = now;
// continue` the live runtime's beat loop performed before extraction.
func (t *Timeout) Suspect(q ids.ProcID, at time.Time) bool {
	seen, ok := t.lastSeen[q]
	if !ok {
		t.lastSeen[q] = at
		return false
	}
	return at.Sub(seen) > t.After
}

// Retain implements Detector.
func (t *Timeout) Retain(members []ids.ProcID) { retainKeys(t.lastSeen, members) }

// retainKeys prunes every key of m not listed in members — the shared
// Retain implementation of all detectors.
func retainKeys[V any](m map[ids.ProcID]V, members []ids.ProcID) {
	keep := make(map[ids.ProcID]bool, len(members))
	for _, q := range members {
		keep[q] = true
	}
	for q := range m {
		if !keep[q] {
			delete(m, q)
		}
	}
}
