package netsim

import (
	"fmt"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/sim"
	"procgroup/internal/trace"
)

// crashKind is the event recorded for environment-injected crashes.
const crashKind = event.Crash

// Labeled is implemented by payloads that name their message kind; the
// recorder uses the label for per-kind counting. Unlabeled payloads are
// counted under "%T".
type Labeled interface {
	MsgLabel() string
}

// Message is an in-flight datagram.
type Message struct {
	ID      int64
	From    ids.ProcID
	To      ids.ProcID
	Payload any
}

// Label returns the payload's message-kind label.
func (m Message) Label() string {
	if l, ok := m.Payload.(Labeled); ok {
		return l.MsgLabel()
	}
	return fmt.Sprintf("%T", m.Payload)
}

// Verdict is an interceptor's decision about a message.
type Verdict int

// Interceptor outcomes.
const (
	// Pass lets the message proceed normally.
	Pass Verdict = iota + 1
	// Drop silently discards the message (it still counts as sent).
	Drop
)

// Interceptor inspects every message at send time. Interceptors implement
// adversarial schedules: partitions, targeted drops, crash-after-k-sends.
type Interceptor func(Message) Verdict

// Handler receives delivered messages.
type Handler func(from ids.ProcID, payload any)

// DelayFn samples a delivery delay for a channel.
type DelayFn func(rng interface{ Int63n(int64) int64 }, from, to ids.ProcID) sim.Time

// ConstDelay returns a fixed-delay function.
func ConstDelay(d sim.Time) DelayFn {
	return func(_ interface{ Int63n(int64) int64 }, _, _ ids.ProcID) sim.Time { return d }
}

// UniformDelay returns delays uniform in [min, max].
func UniformDelay(min, max sim.Time) DelayFn {
	if max < min {
		min, max = max, min
	}
	return func(rng interface{ Int63n(int64) int64 }, _, _ ids.ProcID) sim.Time {
		return min + sim.Time(rng.Int63n(int64(max-min+1)))
	}
}

type endpoint struct {
	handler Handler
	alive   bool
}

type chanKey struct{ from, to ids.ProcID }

// Network is the simulated interconnect. All methods must be called from
// scheduler callbacks (single-threaded).
type Network struct {
	sched        *sim.Scheduler
	delay        DelayFn
	rec          *trace.Recorder
	eps          map[ids.ProcID]*endpoint
	lastDeliver  map[chanKey]sim.Time
	interceptors []Interceptor
	onCrash      []func(ids.ProcID)
	nextID       int64
}

// New builds a network over the scheduler. rec may be nil (no recording).
func New(sched *sim.Scheduler, delay DelayFn, rec *trace.Recorder) *Network {
	if delay == nil {
		delay = UniformDelay(1, 10)
	}
	return &Network{
		sched:       sched,
		delay:       delay,
		rec:         rec,
		eps:         make(map[ids.ProcID]*endpoint),
		lastDeliver: make(map[chanKey]sim.Time),
	}
}

// Register attaches a process's message handler and records its start
// event. Re-registering an id panics: a recovered process must come back
// under a fresh incarnation (§1).
func (n *Network) Register(p ids.ProcID, h Handler) {
	if _, dup := n.eps[p]; dup {
		panic(fmt.Sprintf("netsim: duplicate registration of %v (recoveries need new incarnations)", p))
	}
	n.eps[p] = &endpoint{handler: h, alive: true}
	if n.rec != nil {
		n.rec.RecordStart(p)
	}
}

// Alive reports whether p is registered and not crashed.
func (n *Network) Alive(p ids.ProcID) bool {
	ep, ok := n.eps[p]
	return ok && ep.alive
}

// AddInterceptor appends a send-time interceptor.
func (n *Network) AddInterceptor(f Interceptor) { n.interceptors = append(n.interceptors, f) }

// OnCrash registers a callback invoked whenever a process crashes (the
// failure-detection oracle subscribes here).
func (n *Network) OnCrash(f func(ids.ProcID)) { n.onCrash = append(n.onCrash, f) }

// Crash kills p: no further sends from it, and messages still in flight to
// it are discarded at delivery time. Crashing is idempotent.
func (n *Network) Crash(p ids.ProcID) {
	ep, ok := n.eps[p]
	if !ok || !ep.alive {
		return
	}
	ep.alive = false
	if n.rec != nil {
		n.rec.RecordInternal(p, crashKind, ids.Nil)
	}
	for _, f := range n.onCrash {
		f(p)
	}
}

// Send transmits payload from → to over the reliable FIFO channel. Sends
// from crashed processes are ignored (the process no longer executes);
// sends to unknown or crashed destinations are recorded as sent and then
// lost, like a datagram to a dead host. Send returns true if the message
// was actually put in flight.
func (n *Network) Send(from, to ids.ProcID, payload any) bool {
	src, ok := n.eps[from]
	if !ok || !src.alive {
		return false
	}
	n.nextID++
	m := Message{ID: n.nextID, From: from, To: to, Payload: payload}
	if n.rec != nil {
		n.rec.RecordSend(from, to, m.ID, m.Label())
	}
	for _, f := range n.interceptors {
		if f(m) == Drop {
			return false
		}
	}
	// FIFO: per-channel delivery times are forced monotone, so a sampled
	// delay can never overtake an earlier message on the same channel.
	key := chanKey{from: from, to: to}
	at := n.sched.Now() + n.delay(n.sched.Rand(), from, to)
	if last := n.lastDeliver[key]; at <= last {
		at = last + 1
	}
	n.lastDeliver[key] = at
	n.sched.At(at, func() { n.deliver(m) })
	return true
}

func (n *Network) deliver(m Message) {
	dst, ok := n.eps[m.To]
	if !ok || !dst.alive {
		return // lost to a crash — channels are reliable, endpoints are not
	}
	if n.rec != nil {
		n.rec.RecordRecv(m.From, m.To, m.ID, m.Label())
	}
	dst.handler(m.From, m.Payload)
}

// Bcast sends payload to each destination in order. It mirrors the paper's
// Bcast(p, G, m): indivisible at the sender (no interleaved events) but not
// failure-atomic — a crash interceptor can kill the sender mid-loop,
// truncating the broadcast.
func (n *Network) Bcast(from ids.ProcID, dests []ids.ProcID, payload any) int {
	sent := 0
	for _, d := range dests {
		if d == from {
			continue
		}
		if n.Send(from, d, payload) {
			sent++
		}
	}
	return sent
}

// CrashAfterSends installs an interceptor that lets p send k more messages
// matching the label filter (empty filter = any message) and then crashes p
// the moment it attempts the (k+1)-th. This reproduces Figure 3: a
// coordinator dying partway through a commit broadcast.
func (n *Network) CrashAfterSends(p ids.ProcID, k int, label string) {
	remaining := k
	n.AddInterceptor(func(m Message) Verdict {
		if m.From != p || !n.Alive(p) {
			return Pass
		}
		if label != "" && m.Label() != label {
			return Pass
		}
		if remaining > 0 {
			remaining--
			return Pass
		}
		n.Crash(p)
		return Drop
	})
}

// PartitionBetween installs an interceptor that drops every message between
// the two groups (both directions). It returns a heal function.
func (n *Network) PartitionBetween(a, b []ids.ProcID) (heal func()) {
	inA, inB := ids.NewSet(a...), ids.NewSet(b...)
	active := true
	n.AddInterceptor(func(m Message) Verdict {
		if !active {
			return Pass
		}
		if (inA.Has(m.From) && inB.Has(m.To)) || (inB.Has(m.From) && inA.Has(m.To)) {
			return Drop
		}
		return Pass
	})
	return func() { active = false }
}
