package netsim

import (
	"testing"
	"testing/quick"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/sim"
	"procgroup/internal/trace"
)

type ping struct{ n int }

func (ping) MsgLabel() string { return "Ping" }

func newNet(seed int64, delay DelayFn) (*sim.Scheduler, *Network, *trace.Recorder) {
	s := sim.NewScheduler(seed)
	rec := trace.NewRecorder(func() int64 { return int64(s.Now()) })
	return s, New(s, delay, rec), rec
}

func TestFIFOPerChannel(t *testing.T) {
	// Even with wildly random delays, per-channel order must hold (§2.1:
	// channels are FIFO).
	f := func(seed int64) bool {
		s, n, _ := newNet(seed, UniformDelay(1, 100))
		a, b := ids.Named("a"), ids.Named("b")
		var got []int
		n.Register(a, func(ids.ProcID, any) {})
		n.Register(b, func(_ ids.ProcID, p any) { got = append(got, p.(ping).n) })
		s.At(0, func() {
			for i := 0; i < 50; i++ {
				n.Send(a, b, ping{n: i})
			}
		})
		s.Run()
		if len(got) != 50 {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCrossChannelMayReorderButLossless(t *testing.T) {
	s, n, _ := newNet(3, UniformDelay(1, 50))
	a, b, c := ids.Named("a"), ids.Named("b"), ids.Named("c")
	recv := 0
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	n.Register(c, func(ids.ProcID, any) { recv++ })
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			n.Send(a, c, ping{n: i})
			n.Send(b, c, ping{n: i})
		}
	})
	s.Run()
	if recv != 40 {
		t.Errorf("received %d, want 40 (channels are lossless)", recv)
	}
}

func TestCrashStopsSendsAndDelivery(t *testing.T) {
	s, n, rec := newNet(1, ConstDelay(5))
	a, b := ids.Named("a"), ids.Named("b")
	got := 0
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) { got++ })
	s.At(0, func() { n.Send(a, b, ping{}) }) // in flight before crash: lost at delivery
	s.At(1, func() { n.Crash(b) })
	s.At(2, func() {
		if n.Send(b, a, ping{}) {
			t.Error("crashed process managed to send")
		}
	})
	s.Run()
	if got != 0 {
		t.Errorf("crashed process received %d messages", got)
	}
	if n.Alive(b) {
		t.Error("b still alive")
	}
	// The send was still recorded (it left a, counts toward complexity).
	if rec.MessagesSent("Ping") != 1 {
		t.Errorf("sent count = %d, want 1", rec.MessagesSent("Ping"))
	}
}

func TestCrashNotification(t *testing.T) {
	s, n, _ := newNet(1, nil)
	a := ids.Named("a")
	var crashed []ids.ProcID
	n.OnCrash(func(p ids.ProcID) { crashed = append(crashed, p) })
	n.Register(a, func(ids.ProcID, any) {})
	s.At(0, func() { n.Crash(a); n.Crash(a) }) // idempotent
	s.Run()
	if len(crashed) != 1 || crashed[0] != a {
		t.Errorf("crash notifications = %v", crashed)
	}
}

func TestBcastSkipsSelfAndCountsSends(t *testing.T) {
	s, n, rec := newNet(1, ConstDelay(1))
	procs := ids.Gen(4)
	for _, p := range procs {
		n.Register(p, func(ids.ProcID, any) {})
	}
	s.At(0, func() {
		if sent := n.Bcast(procs[0], procs, ping{}); sent != 3 {
			t.Errorf("Bcast sent %d, want 3", sent)
		}
	})
	s.Run()
	if rec.MessagesSent() != 3 {
		t.Errorf("recorded %d sends", rec.MessagesSent())
	}
}

func TestCrashAfterSendsTruncatesBroadcast(t *testing.T) {
	// Figure 3: the coordinator dies after reaching only k destinations.
	s, n, _ := newNet(1, ConstDelay(1))
	procs := ids.Gen(5)
	got := map[ids.ProcID]int{}
	for _, p := range procs {
		p := p
		n.Register(p, func(ids.ProcID, any) { got[p]++ })
	}
	n.CrashAfterSends(procs[0], 2, "Ping")
	s.At(0, func() { n.Bcast(procs[0], procs, ping{}) })
	s.Run()
	delivered := 0
	for _, c := range got {
		delivered += c
	}
	if delivered != 2 {
		t.Errorf("delivered %d, want exactly 2 (truncated broadcast)", delivered)
	}
	if n.Alive(procs[0]) {
		t.Error("sender should have crashed mid-broadcast")
	}
	// Deterministic destination order ⇒ exactly p2 and p3 got it.
	if got[procs[1]] != 1 || got[procs[2]] != 1 {
		t.Errorf("wrong recipients: %v", got)
	}
}

func TestCrashAfterSendsLabelFilter(t *testing.T) {
	s, n, _ := newNet(1, ConstDelay(1))
	a, b := ids.Named("a"), ids.Named("b")
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	n.CrashAfterSends(a, 0, "Other") // only "Other" messages are fatal
	s.At(0, func() {
		if !n.Send(a, b, ping{}) {
			t.Error("unrelated label should pass")
		}
	})
	s.Run()
	if !n.Alive(a) {
		t.Error("a crashed on a non-matching label")
	}
}

func TestPartitionDropsAndHeals(t *testing.T) {
	s, n, _ := newNet(1, ConstDelay(1))
	a, b := ids.Named("a"), ids.Named("b")
	got := 0
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) { got++ })
	heal := n.PartitionBetween([]ids.ProcID{a}, []ids.ProcID{b})
	s.At(0, func() { n.Send(a, b, ping{}) })
	s.At(5, func() { heal(); n.Send(a, b, ping{}) })
	s.Run()
	if got != 1 {
		t.Errorf("delivered %d, want 1 (one dropped, one after heal)", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, n, _ := newNet(1, nil)
	a := ids.Named("a")
	n.Register(a, func(ids.ProcID, any) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	n.Register(a, func(ids.ProcID, any) {})
}

func TestSendRecvRecordedWithCausality(t *testing.T) {
	s, n, rec := newNet(1, ConstDelay(3))
	a, b := ids.Named("a"), ids.Named("b")
	n.Register(a, func(ids.ProcID, any) {})
	n.Register(b, func(ids.ProcID, any) {})
	s.At(0, func() { n.Send(a, b, ping{}) })
	s.Run()
	evs := rec.Events()
	var send, recv *event.Event
	for i := range evs {
		switch evs[i].Kind {
		case event.Send:
			send = &evs[i]
		case event.Recv:
			recv = &evs[i]
		}
	}
	if send == nil || recv == nil {
		t.Fatalf("missing send/recv in %v", evs)
	}
	if !send.Clock.HappensBefore(recv.Clock) {
		t.Errorf("send %v must happen-before recv %v", send.Clock, recv.Clock)
	}
	if recv.Time != 3 {
		t.Errorf("recv time = %d, want 3", recv.Time)
	}
	if send.MsgID != recv.MsgID {
		t.Error("send/recv MsgID mismatch")
	}
}

func TestUniformDelayBounds(t *testing.T) {
	s := sim.NewScheduler(9)
	d := UniformDelay(5, 2) // reversed bounds are normalized
	for i := 0; i < 100; i++ {
		v := d(s.Rand(), ids.Named("a"), ids.Named("b"))
		if v < 2 || v > 5 {
			t.Fatalf("delay %d out of [2,5]", v)
		}
	}
}
