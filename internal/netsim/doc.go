// Package netsim simulates the paper's communication substrate: a complete
// network of reliable (lossless, non-generating) FIFO channels with
// unbounded — here: arbitrary, seeded — delivery delays (§2.1). It adds the
// failure-injection machinery the evaluation needs: whole-process crashes,
// crashes in the middle of a broadcast (Figure 3's interrupted commit), and
// message interceptors for building adversarial schedules.
package netsim
