// Package ids defines process identities for the group membership protocol.
//
// The paper models recovery by treating a "recovered" process as a new and
// different process instance (§1). An identity therefore carries both a site
// name and an incarnation number: a process that crashes and later rejoins
// does so under a fresh incarnation, which is what lets the protocol satisfy
// GMP-4 (no re-instatement) while still supporting joins.
package ids
