package ids

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ProcID identifies a single process instance. The zero value is Nil.
type ProcID struct {
	// Site is the stable name of the host/slot, e.g. "p3".
	Site string
	// Incarnation distinguishes successive instances at the same site.
	// A recovered process always carries a larger incarnation.
	Incarnation uint32
}

// Nil is the distinguished "no process" identifier (the paper's nil-id).
var Nil = ProcID{}

// IsNil reports whether p is the nil identifier.
func (p ProcID) IsNil() bool { return p == Nil }

// String renders the identifier as "site" for incarnation 0 and
// "site#k" for later incarnations.
func (p ProcID) String() string {
	if p.IsNil() {
		return "<nil-id>"
	}
	if p.Incarnation == 0 {
		return p.Site
	}
	return p.Site + "#" + strconv.FormatUint(uint64(p.Incarnation), 10)
}

// Less orders identifiers lexicographically by site then incarnation.
// This order is only used for deterministic iteration, never for rank:
// rank is seniority within a view (see internal/member).
func (p ProcID) Less(q ProcID) bool {
	if p.Site != q.Site {
		return p.Site < q.Site
	}
	return p.Incarnation < q.Incarnation
}

// Parse parses the String form back into a ProcID.
func Parse(s string) (ProcID, error) {
	if s == "" || s == "<nil-id>" {
		return Nil, nil
	}
	site, incStr, found := strings.Cut(s, "#")
	if !found {
		return ProcID{Site: site}, nil
	}
	inc, err := strconv.ParseUint(incStr, 10, 32)
	if err != nil {
		return Nil, fmt.Errorf("ids: parse %q: %w", s, err)
	}
	return ProcID{Site: site, Incarnation: uint32(inc)}, nil
}

// Named returns the incarnation-0 identifier for a site name.
func Named(site string) ProcID { return ProcID{Site: site} }

// Gen deterministically generates n incarnation-0 process identifiers
// named p1..pn. It is the conventional way scenarios and tests build an
// initial group.
func Gen(n int) []ProcID {
	out := make([]ProcID, n)
	for i := range out {
		out[i] = ProcID{Site: "p" + strconv.Itoa(i+1)}
	}
	return out
}

// Set is a mutable set of process identifiers.
type Set map[ProcID]struct{}

// NewSet builds a set from the given members.
func NewSet(members ...ProcID) Set {
	s := make(Set, len(members))
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Add inserts p into the set.
func (s Set) Add(p ProcID) { s[p] = struct{}{} }

// Remove deletes p from the set.
func (s Set) Remove(p ProcID) { delete(s, p) }

// Has reports whether p is in the set.
func (s Set) Has(p ProcID) bool {
	_, ok := s[p]
	return ok
}

// Len returns the number of members.
func (s Set) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for p := range s {
		c.Add(p)
	}
	return c
}

// Sorted returns the members in deterministic (Less) order.
func (s Set) Sorted() []ProcID {
	out := make([]ProcID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// String renders the set in deterministic order, e.g. "{p1, p2#1}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}
