package ids

import (
	"testing"
	"testing/quick"
)

func TestProcIDString(t *testing.T) {
	tests := []struct {
		name string
		id   ProcID
		want string
	}{
		{"nil", Nil, "<nil-id>"},
		{"incarnation zero", ProcID{Site: "p1"}, "p1"},
		{"incarnation one", ProcID{Site: "p1", Incarnation: 1}, "p1#1"},
		{"large incarnation", ProcID{Site: "node-a", Incarnation: 42}, "node-a#42"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	tests := []ProcID{
		Nil,
		{Site: "p1"},
		{Site: "p1", Incarnation: 3},
		{Site: "node-b", Incarnation: 100},
	}
	for _, id := range tests {
		got, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("Parse(String(%v)) = %v, want identity", id, got)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("p1#notanumber"); err == nil {
		t.Error("Parse of malformed incarnation should fail")
	}
}

func TestIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Named("p1").IsNil() {
		t.Error("Named(p1).IsNil() = true")
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	f := func(a, b ProcID) bool {
		less, greater := a.Less(b), b.Less(a)
		if a == b {
			return !less && !greater
		}
		return less != greater // exactly one direction holds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGen(t *testing.T) {
	got := Gen(3)
	want := []ProcID{Named("p1"), Named("p2"), Named("p3")}
	if len(got) != len(want) {
		t.Fatalf("Gen(3) returned %d ids", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Gen(3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(Named("a"), Named("b"))
	if !s.Has(Named("a")) || !s.Has(Named("b")) {
		t.Fatal("missing members after NewSet")
	}
	if s.Has(Named("c")) {
		t.Fatal("unexpected member c")
	}
	s.Add(Named("c"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Remove(Named("a"))
	if s.Has(Named("a")) {
		t.Fatal("a still present after Remove")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSetCloneIsIndependent(t *testing.T) {
	s := NewSet(Named("a"))
	c := s.Clone()
	c.Add(Named("b"))
	if s.Has(Named("b")) {
		t.Error("mutating clone affected original")
	}
}

func TestSetSortedDeterministic(t *testing.T) {
	s := NewSet(Named("b"), Named("a"), ProcID{Site: "a", Incarnation: 2})
	got := s.Sorted()
	want := []ProcID{Named("a"), {Site: "a", Incarnation: 2}, Named("b")}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s.String() != "{a, a#2, b}" {
		t.Errorf("String() = %q", s.String())
	}
}
