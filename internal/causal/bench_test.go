package causal

import (
	"testing"

	"procgroup/internal/ids"
)

func benchClocks(n int) (VC, VC) {
	a, b := New(), New()
	for _, p := range ids.Gen(n) {
		a[p] = uint64(p.Incarnation) + 3
		b[p] = uint64(p.Incarnation) + 5
	}
	return a, b
}

func BenchmarkVCCompare(b *testing.B) {
	x, y := benchClocks(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if x.Compare(y) == Concurrent {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkVCMerge(b *testing.B) {
	x, y := benchClocks(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.Merge(y)
	}
}
