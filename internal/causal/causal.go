package causal

import (
	"fmt"
	"sort"
	"strings"

	"procgroup/internal/ids"
)

// Ordering is the outcome of comparing two vector clocks.
type Ordering int

// The four possible relations between two events' clocks.
const (
	// Before means the first event happens-before the second.
	Before Ordering = iota + 1
	// After means the second event happens-before the first.
	After
	// Equal means the clocks are identical (same event or replica).
	Equal
	// Concurrent means neither happens-before the other.
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case After:
		return "after"
	case Equal:
		return "equal"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VC is a vector clock: one monotone counter per process. The zero value
// (nil map) is a valid all-zero clock; mutating methods must be called on
// clocks created by New or Clone.
type VC map[ids.ProcID]uint64

// New returns an empty (all-zero) clock.
func New() VC { return make(VC) }

// Clone returns an independent copy.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	for p, n := range v {
		c[p] = n
	}
	return c
}

// Get returns the component for p (zero if absent).
func (v VC) Get(p ids.ProcID) uint64 { return v[p] }

// Tick increments p's component, stamping a new local event.
func (v VC) Tick(p ids.ProcID) { v[p]++ }

// Merge sets v to the component-wise maximum of v and o (the receive rule).
func (v VC) Merge(o VC) {
	for p, n := range o {
		if n > v[p] {
			v[p] = n
		}
	}
}

// LessEq reports v ≤ o component-wise.
func (v VC) LessEq(o VC) bool {
	for p, n := range v {
		if n > o[p] {
			return false
		}
	}
	return true
}

// Compare classifies the relation between two clocks.
func (v VC) Compare(o VC) Ordering {
	le, ge := v.LessEq(o), o.LessEq(v)
	switch {
	case le && ge:
		return Equal
	case le:
		return Before
	case ge:
		return After
	default:
		return Concurrent
	}
}

// HappensBefore reports strict causal precedence v → o.
func (v VC) HappensBefore(o VC) bool { return v.Compare(o) == Before }

// String renders the clock deterministically, e.g. "{p1:3 p2:1}".
func (v VC) String() string {
	procs := make([]ids.ProcID, 0, len(v))
	for p := range v {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].Less(procs[j]) })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range procs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", p, v[p])
	}
	b.WriteByte('}')
	return b.String()
}

// Frontier is a consistent cut described by its frontier: for each process,
// the index (1-based count) of its last included event. A cut c is
// consistent iff it is closed under happens-before (§2.1); ConsistentCut in
// the check package verifies that using the events' vector clocks.
type Frontier map[ids.ProcID]int

// Clone returns an independent copy of the frontier.
func (f Frontier) Clone() Frontier {
	c := make(Frontier, len(f))
	for p, n := range f {
		c[p] = n
	}
	return c
}

// Leq reports pointwise f ≤ g, the prefix order on cuts (c ≤ c′ in §2.1).
func (f Frontier) Leq(g Frontier) bool {
	for p, n := range f {
		if n > g[p] {
			return false
		}
	}
	return true
}

// StrictlyLess reports the paper's c << c′: every process history in f is a
// strict prefix of its history in g.
func (f Frontier) StrictlyLess(g Frontier) bool {
	for p, n := range g {
		if f[p] >= n {
			return false
		}
	}
	return true
}
