package causal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"procgroup/internal/ids"
)

var (
	pa = ids.Named("a")
	pb = ids.Named("b")
	pc = ids.Named("c")
)

func TestCompareBasics(t *testing.T) {
	empty := New()
	one := New()
	one.Tick(pa)

	if got := empty.Compare(one); got != Before {
		t.Errorf("empty vs ticked = %v, want Before", got)
	}
	if got := one.Compare(empty); got != After {
		t.Errorf("ticked vs empty = %v, want After", got)
	}
	if got := one.Compare(one.Clone()); got != Equal {
		t.Errorf("clone compare = %v, want Equal", got)
	}

	x, y := New(), New()
	x.Tick(pa)
	y.Tick(pb)
	if got := x.Compare(y); got != Concurrent {
		t.Errorf("independent ticks = %v, want Concurrent", got)
	}
}

func TestMessageChainHappensBefore(t *testing.T) {
	// a: e1 --m--> b: e2; e1 must happen-before e2.
	a, b := New(), New()
	a.Tick(pa) // e1 = send
	b.Merge(a)
	b.Tick(pb) // e2 = recv
	if !a.HappensBefore(b) {
		t.Errorf("send must happen-before recv: %v vs %v", a, b)
	}
	if b.HappensBefore(a) {
		t.Error("recv happens-before send?!")
	}
}

func TestTransitivity(t *testing.T) {
	// Chain a → b → c through two messages.
	a, b, c := New(), New(), New()
	a.Tick(pa)
	b.Merge(a)
	b.Tick(pb)
	snapshotB := b.Clone()
	c.Merge(b)
	c.Tick(pc)
	if !a.HappensBefore(snapshotB) || !snapshotB.HappensBefore(c) || !a.HappensBefore(c) {
		t.Error("happens-before must be transitive across a message chain")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New()
	v.Tick(pa)
	c := v.Clone()
	c.Tick(pa)
	if v.Get(pa) != 1 || c.Get(pa) != 2 {
		t.Errorf("clone aliasing: v=%v c=%v", v, c)
	}
}

func TestMergeIsComponentwiseMax(t *testing.T) {
	v := VC{pa: 3, pb: 1}
	o := VC{pa: 1, pb: 5, pc: 2}
	v.Merge(o)
	want := VC{pa: 3, pb: 5, pc: 2}
	if v.Compare(want) != Equal {
		t.Errorf("Merge = %v, want %v", v, want)
	}
}

// randomRun simulates a message-passing run and returns the event clocks in
// true temporal order, so later events can never happen-before earlier ones
// on the same process, and Compare must agree with message causality.
func randomRun(seed int64, steps int) []VC {
	rng := rand.New(rand.NewSource(seed))
	procs := []ids.ProcID{pa, pb, pc}
	clocks := map[ids.ProcID]VC{pa: New(), pb: New(), pc: New()}
	type msg struct{ stamp VC }
	var inflight []msg
	var out []VC
	for i := 0; i < steps; i++ {
		p := procs[rng.Intn(len(procs))]
		switch rng.Intn(3) {
		case 0: // internal
			clocks[p].Tick(p)
		case 1: // send
			clocks[p].Tick(p)
			inflight = append(inflight, msg{stamp: clocks[p].Clone()})
		case 2: // receive (if possible)
			if len(inflight) == 0 {
				clocks[p].Tick(p)
				break
			}
			k := rng.Intn(len(inflight))
			clocks[p].Merge(inflight[k].stamp)
			clocks[p].Tick(p)
			inflight = append(inflight[:k], inflight[k+1:]...)
		}
		out = append(out, clocks[p].Clone())
	}
	return out
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		evs := randomRun(seed, 60)
		for i := range evs {
			for j := range evs {
				ij, ji := evs[i].Compare(evs[j]), evs[j].Compare(evs[i])
				switch ij {
				case Before:
					if ji != After {
						return false
					}
				case After:
					if ji != Before {
						return false
					}
				case Equal:
					if ji != Equal {
						return false
					}
				case Concurrent:
					if ji != Concurrent {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFrontierOrders(t *testing.T) {
	c := Frontier{pa: 1, pb: 2}
	d := Frontier{pa: 2, pb: 3}
	if !c.Leq(d) {
		t.Error("c ≤ d expected")
	}
	if d.Leq(c) {
		t.Error("d ≤ c unexpected")
	}
	if !c.StrictlyLess(d) {
		t.Error("c << d expected")
	}
	e := Frontier{pa: 2, pb: 2}
	if c.StrictlyLess(e) {
		t.Error("c << e should fail: pb not strictly longer")
	}
	if !c.Leq(e) {
		t.Error("c ≤ e expected")
	}
	cl := c.Clone()
	cl[pa] = 99
	if c[pa] != 1 {
		t.Error("Frontier.Clone aliased")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Before: "before", After: "after", Equal: "equal", Concurrent: "concurrent",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}
