// Package causal implements the causality machinery of the paper's system
// model (§2.1): Lamport's happens-before relation, realized with vector
// clocks, and the notion of consistent cuts (runs closed under →). The
// checker package uses it to reconstruct and verify the cuts c_x of
// Theorem 6.1.
package causal
