package core_test

// Reproductions of the paper's evaluation scenarios: Table 1's initiation
// matrix and the adversarial schedules of Figures 3, 4 and 7. Each test
// finishes by running the GMP checker over the recorded trace.

import (
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

// initiators returns the processes that recorded an Initiate event.
func initiators(c *scenario.Cluster) ids.Set {
	out := ids.NewSet()
	for _, e := range c.Rec.Events() {
		if e.Kind == event.Initiate {
			out.Add(e.Proc)
		}
	}
	return out
}

func mustPass(t *testing.T, c *scenario.Cluster) {
	t.Helper()
	if rep := c.Check(); !rep.OK() {
		t.Errorf("GMP checker failed:\n%v", rep)
	}
}

// TestTable1_InitiationMatrix reproduces Table 1 (§4.2): with
// rank(Mgr) > rank(p) > rank(q) and Mgr believed faulty by both, who
// initiates reconfiguration depends on p's actual state and q's belief
// about p. We use n=5 (p1=Mgr, p2=p, p3=q; p4, p5 supply the majority).
func TestTable1_InitiationMatrix(t *testing.T) {
	newCluster := func() (*scenario.Cluster, []ids.ProcID) {
		c := scenario.New(scenario.Options{N: 5, Seed: 21, Config: finalConfig(), MuteOracle: true})
		return c, c.Initial()
	}
	suspectMgrAll := func(c *scenario.Cluster, procs []ids.ProcID, at sim.Time) {
		for _, obs := range procs[1:] {
			c.SuspectAt(obs, procs[0], at)
		}
	}

	t.Run("p up, q thinks p up: only p initiates", func(t *testing.T) {
		c, procs := newCluster()
		c.CrashAt(procs[0], 10)
		suspectMgrAll(c, procs, 20)
		c.Run()
		ini := initiators(c)
		if !ini.Has(procs[1]) {
			t.Error("p (p2) did not initiate")
		}
		if ini.Has(procs[2]) {
			t.Error("q (p3) initiated although it expected p to")
		}
		v, err := c.StableView()
		if err != nil {
			t.Fatal(err)
		}
		if v.Mgr() != procs[1] {
			t.Errorf("new Mgr = %v, want p2", v.Mgr())
		}
		mustPass(t, c)
	})

	t.Run("p failed, q thinks p up: q initiates eventually", func(t *testing.T) {
		c, procs := newCluster()
		c.CrashAt(procs[0], 10)
		c.CrashAt(procs[1], 12)
		// Nobody is told about p2's crash: q must time out on it.
		for _, obs := range procs[2:] {
			c.SuspectAt(obs, procs[0], 20)
		}
		c.Run()
		ini := initiators(c)
		if !ini.Has(procs[2]) {
			t.Error("q (p3) never initiated")
		}
		if ini.Has(procs[1]) {
			t.Error("dead p somehow initiated")
		}
		v, err := c.StableView()
		if err != nil {
			t.Fatal(err)
		}
		if v.Has(procs[0]) || v.Has(procs[1]) {
			t.Errorf("dead processes linger: %v", v)
		}
		if v.Mgr() != procs[2] {
			t.Errorf("new Mgr = %v, want p3", v.Mgr())
		}
		mustPass(t, c)
	})

	t.Run("p up, q thinks p failed: both initiate", func(t *testing.T) {
		c, procs := newCluster()
		c.CrashAt(procs[0], 10)
		suspectMgrAll(c, procs, 20)
		c.SuspectAt(procs[2], procs[1], 20) // spurious: p is alive
		c.Run()
		ini := initiators(c)
		if !ini.Has(procs[1]) || !ini.Has(procs[2]) {
			t.Errorf("want both p2 and p3 to initiate, got %v", ini)
		}
		// GMP-2: despite two concurrent initiations the surviving view is
		// unique, and the spuriously suspected p is excluded (GMP-5).
		v, err := c.StableView()
		if err != nil {
			t.Fatal(err)
		}
		if v.Has(procs[1]) {
			t.Errorf("spuriously suspected p still in view %v", v)
		}
		if v.Mgr() != procs[2] {
			t.Errorf("new Mgr = %v, want p3 (q)", v.Mgr())
		}
		mustPass(t, c)
	})

	t.Run("p failed, q thinks p failed: q initiates", func(t *testing.T) {
		c, procs := newCluster()
		c.CrashAt(procs[0], 10)
		c.CrashAt(procs[1], 12)
		for _, obs := range procs[2:] {
			c.SuspectAt(obs, procs[0], 20)
			c.SuspectAt(obs, procs[1], 22)
		}
		c.Run()
		ini := initiators(c)
		if !ini.Has(procs[2]) {
			t.Error("q (p3) did not initiate")
		}
		if ini.Has(procs[1]) {
			t.Error("dead p initiated")
		}
		v, err := c.StableView()
		if err != nil {
			t.Fatal(err)
		}
		if v.Mgr() != procs[2] {
			t.Errorf("new Mgr = %v, want p3", v.Mgr())
		}
		mustPass(t, c)
	})
}

// TestFigure3_InterruptedCommit reproduces Figure 3: Mgr crashes in the
// middle of a commit broadcast, so one process holds Memb¹ while the rest
// hold Memb⁰ and no system view exists. Reconfiguration must re-propose the
// partially committed update (Determine's S ≠ ∅ case) and restore a unique
// view.
func TestFigure3_InterruptedCommit(t *testing.T) {
	c := scenario.New(scenario.Options{N: 5, Seed: 22, Config: finalConfig(), MuteOracle: true})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[4], 10)           // Mgr starts excluding p5
	c.CrashDuringBroadcast(procs[0], 1, "Commit") // commit reaches p2 only
	for _, obs := range procs[1:4] {
		c.SuspectAt(obs, procs[0], 200)
	}
	c.Run()

	// The interrupted commit must really have split the versions.
	if got := c.Views(procs[1]); len(got) < 2 || got[1].Ver != 1 {
		t.Fatalf("p2 should hold the partial commit, views=%v", got)
	}
	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) || v.Has(procs[4]) {
		t.Errorf("final view %v should exclude Mgr and p5", v)
	}
	if v.Mgr() != procs[1] {
		t.Errorf("new Mgr = %v, want p2", v.Mgr())
	}
	mustPass(t, c)
}

// TestFigure4_ConcurrentInitiators reproduces Figure 4's moral: without the
// majority requirement two concurrent reconfigurers could install different
// views; with it, exactly one view sequence survives.
func TestFigure4_ConcurrentInitiators(t *testing.T) {
	c := scenario.New(scenario.Options{N: 5, Seed: 23, Config: finalConfig(), MuteOracle: true})
	procs := c.Initial()
	c.CrashAt(procs[0], 10)
	// p2 initiates first; p3 concurrently believes p2 faulty too and
	// initiates its own reconfiguration.
	c.SuspectAt(procs[1], procs[0], 100)
	c.SuspectAt(procs[3], procs[0], 100)
	c.SuspectAt(procs[4], procs[0], 100)
	c.SuspectAt(procs[2], procs[0], 110)
	c.SuspectAt(procs[2], procs[1], 110)
	c.Run()

	ini := initiators(c)
	if !ini.Has(procs[1]) || !ini.Has(procs[2]) {
		t.Fatalf("want concurrent initiations by p2 and p3, got %v", ini)
	}
	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) || v.Has(procs[1]) {
		t.Errorf("final view %v should exclude p1 and p2", v)
	}
	mustPass(t, c)
}

// TestFigure7_InvisibleCommit reproduces Figure 7 / §4.4: a commit that
// reaches only processes which subsequently fail. No survivor ever saw it —
// yet the reconfigurer must infer it from the Phase-I next-triples and
// propagate the same operation for the same version, or the dead process's
// history would violate GMP-3.
func TestFigure7_InvisibleCommit(t *testing.T) {
	c := scenario.New(scenario.Options{N: 7, Seed: 24, Config: finalConfig(), MuteOracle: true})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[6], 10)           // Mgr starts excluding p7
	c.CrashDuringBroadcast(procs[0], 1, "Commit") // commit reaches p2 only…
	c.CrashAt(procs[1], 100)                      // …and p2 dies with it
	for _, obs := range procs[2:6] {
		c.SuspectAt(obs, procs[0], 200)
		c.SuspectAt(obs, procs[1], 210)
	}
	c.Run()

	// p2 died holding v1 = Proc − {p7}: the invisible commit.
	p2views := c.Views(procs[1])
	if len(p2views) != 2 || p2views[1].Ver != 1 {
		t.Fatalf("p2 should have installed the invisible v1, got %v", p2views)
	}
	// The survivors' v1 must be identical to it (GMP-3 across the crash).
	p3views := c.Views(procs[2])
	if len(p3views) < 2 {
		t.Fatalf("p3 never progressed: %v", p3views)
	}
	if p3views[1].Ver != 1 {
		t.Fatalf("p3's second view is v%d", p3views[1].Ver)
	}
	want := ids.NewSet(p2views[1].Members...)
	for _, m := range p3views[1].Members {
		if !want.Has(m) {
			t.Errorf("v1 diverged: p2 %v vs p3 %v", p2views[1].Members, p3views[1].Members)
		}
	}
	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	for _, dead := range []ids.ProcID{procs[0], procs[1], procs[6]} {
		if v.Has(dead) {
			t.Errorf("dead %v in final view %v", dead, v)
		}
	}
	mustPass(t, c)
}

// TestRandomSchedulesSatisfyGMP fuzzes fault schedules: random crashes,
// spurious suspicions and joins, across seeds. Whatever happens, the
// recorded run must satisfy GMP-0..GMP-5 and the cut structure.
func TestRandomSchedulesSatisfyGMP(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		c := scenario.New(scenario.Options{N: 6, Seed: seed, Config: finalConfig()})
		procs := c.Initial()
		rng := c.Sched.Rand()
		// Two crashes at random times, one spurious suspicion, one join.
		v1 := procs[1+rng.Intn(5)]
		c.CrashAt(v1, sim.Time(10+rng.Intn(300)))
		v2 := procs[1+rng.Intn(5)]
		if v2 != v1 {
			c.CrashAt(v2, sim.Time(400+rng.Intn(300)))
		}
		obs := procs[rng.Intn(6)]
		sus := procs[rng.Intn(6)]
		if obs != sus {
			c.SuspectAt(obs, sus, sim.Time(200+rng.Intn(400)))
		}
		c.JoinAt(ids.ProcID{Site: "j1"}, procs[0], sim.Time(700+rng.Intn(200)))
		c.Run()

		if rep := c.Check(); !rep.OK() {
			t.Errorf("seed %d violates GMP:\n%v", seed, rep)
		}
	}
}
