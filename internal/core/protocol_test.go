package core_test

// Protocol-level tests driven through the scenario harness. These exercise
// the paper's algorithms end to end on the simulated substrate; the §7.2
// message-count identities have dedicated tests in the repository root.

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/netsim"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

func basicConfig() core.Config {
	return core.Config{Compression: false, MajorityCheck: false, ReconfigWait: 0}
}

func finalConfig() core.Config {
	cfg := core.DefaultConfig()
	return cfg
}

func TestSingleExclusionBasic(t *testing.T) {
	// §3.1: Mgr does not fail; one process crashes and is excluded.
	c := scenario.New(scenario.Options{N: 5, Seed: 1, Config: basicConfig()})
	procs := c.Initial()
	victim := procs[4]
	c.CrashAt(victim, 50)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 4 || v.Has(victim) {
		t.Errorf("stable view = %v, want victim excluded", v)
	}
	if v.Version() != 1 {
		t.Errorf("version = %d, want 1", v.Version())
	}
	if v.Mgr() != procs[0] {
		t.Errorf("Mgr = %v, want %v", v.Mgr(), procs[0])
	}
}

func TestSingleExclusionMessageCount(t *testing.T) {
	// §7.2 best case 1: a single two-phase exclusion costs 3n−5 protocol
	// messages: Invite to n−1, OKs from n−2, Commit to n−2.
	for _, n := range []int{3, 4, 5, 8, 16, 33} {
		c := scenario.New(scenario.Options{N: n, Seed: 7, Config: basicConfig()})
		c.CrashAt(c.Initial()[n-1], 50)
		c.Run()
		got := c.Messages(core.ExclusionLabels...)
		want := 3*n - 5
		if got != want {
			t.Errorf("n=%d: exclusion cost %d messages, paper says %d", n, got, want)
		}
	}
}

func TestCompressedPairMessageCount(t *testing.T) {
	// §7.2 best case 2: compressed rounds cost 2n_x−3 each. The commit
	// that installs round k doubles as round k+1's invitation, so a chain
	// of back-to-back exclusions decomposes as Σ_k (2m_k − 3) plus the
	// closing commit, where m_k is the view size entering round k. For a
	// pair starting at size n: (2n−3) + (2(n−1)−3) + (n−3).
	n := 8
	cfg := core.Config{Compression: true, MajorityCheck: false, ReconfigWait: 0}
	c := scenario.New(scenario.Options{
		N: n, Seed: 7, Config: cfg, MuteOracle: true,
		Delay: netsim.ConstDelay(1),
	})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[n-1], 10)
	c.SuspectAt(procs[0], procs[n-2], 11) // lands mid-round ⇒ compression
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != n-2 || v.Version() != 2 {
		t.Fatalf("stable view = %v", v)
	}
	got := c.Messages(core.ExclusionLabels...)
	want := (2*n - 3) + (2*(n-1) - 3) + (n - 3)
	if got != want {
		t.Errorf("pair cost = %d, want %d", got, want)
	}
	// The compressed second exclusion must be cheaper than a plain one.
	if plain := 3*n - 5; got-(3*n-5) >= plain {
		t.Errorf("compression saved nothing: pair=%d, plain=%d", got, plain)
	}
}

func TestWronglySuspectedProcessQuits(t *testing.T) {
	// §2.3: an erroneous detection may trigger the victim's exclusion; the
	// invite doubles as the kill signal, so the live victim quits (S1).
	c := scenario.New(scenario.Options{N: 4, Seed: 3, Config: basicConfig(), MuteOracle: true})
	procs := c.Initial()
	victim := procs[2]
	c.SuspectAt(procs[0], victim, 10) // Mgr spuriously suspects a live process
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Errorf("wrongly suspected process still in view %v", v)
	}
	if c.Node(victim).Alive() {
		t.Error("wrongly suspected process should have quit on the invitation")
	}
	if c.Node(victim).QuitReason() == "" {
		t.Error("quit reason missing")
	}
}

func TestOuterSuspicionReportedToMgr(t *testing.T) {
	// GMP-5 via F1+report: a non-coordinator detects the crash; the
	// coordinator must still drive the exclusion.
	c := scenario.New(scenario.Options{N: 5, Seed: 4, Config: basicConfig(), MuteOracle: true})
	procs := c.Initial()
	victim := procs[3]
	c.CrashAt(victim, 10)
	c.SuspectAt(procs[4], victim, 30) // only the lowest-ranked outer notices
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(victim) {
		t.Errorf("victim still in stable view %v", v)
	}
	if got := c.Messages(core.LabelFaultyReport); got == 0 {
		t.Error("no FaultyReport was sent")
	}
}

func TestIdenticalViewSequences(t *testing.T) {
	// GMP-3 on a busy run: several crashes, all survivors must install
	// identical view sequences.
	c := scenario.New(scenario.Options{N: 7, Seed: 5, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[6], 40)
	c.CrashAt(procs[5], 200)
	c.CrashAt(procs[4], 400)
	c.Run()

	ref := c.Views(procs[1])
	if len(ref) < 4 { // bootstrap + 3 exclusions
		t.Fatalf("p2 installed %d views, want ≥4: %v", len(ref), ref)
	}
	for _, p := range procs[1:4] {
		got := c.Views(p)
		if len(got) != len(ref) {
			t.Fatalf("%v installed %d views, p2 %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Ver != ref[i].Ver {
				t.Errorf("%v view %d version %d != %d", p, i, got[i].Ver, ref[i].Ver)
			}
			if len(got[i].Members) != len(ref[i].Members) {
				t.Errorf("%v view %d differs: %v vs %v", p, i, got[i].Members, ref[i].Members)
			}
		}
	}
}

func TestMgrCrashTriggersReconfiguration(t *testing.T) {
	// §4: the coordinator fails; the highest-ranked survivor (p2) must
	// interrogate, propose Mgr's removal, commit, and take over.
	c := scenario.New(scenario.Options{N: 5, Seed: 6, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[0], 50)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) {
		t.Errorf("failed Mgr still in view %v", v)
	}
	if v.Size() != 4 {
		t.Errorf("view size = %d, want 4", v.Size())
	}
	for _, n := range c.AliveNodes() {
		if n.Coordinator() != procs[1] {
			t.Errorf("%v thinks coordinator is %v, want %v", n.ID(), n.Coordinator(), procs[1])
		}
	}
	if !c.Node(procs[1]).IsCoordinator() {
		t.Error("p2 does not believe itself coordinator")
	}
	if got := c.Messages(core.LabelInterrogate); got == 0 {
		t.Error("no interrogation was sent")
	}
}

func TestReconfigurationMessageCount(t *testing.T) {
	// §7.2 best case 3: one successful reconfiguration costs 5n−9:
	// Interrogate n−1, responses n−2, Propose n−2, OKs n−2, Commit n−2.
	for _, n := range []int{4, 5, 8, 16, 33} {
		c := scenario.New(scenario.Options{N: n, Seed: 8, Config: finalConfig()})
		c.CrashAt(c.Initial()[0], 50)
		c.Run()
		if _, err := c.StableView(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := c.Messages(core.ReconfigLabels...)
		want := 5*n - 9
		if got != want {
			t.Errorf("n=%d: reconfiguration cost %d messages, paper says %d", n, got, want)
		}
	}
}

func TestMgrAndOthersCrashTogether(t *testing.T) {
	// Mgr plus one outer die: the reconfigurer must fold the second
	// failure into its contingent round (invis) and converge.
	c := scenario.New(scenario.Options{N: 6, Seed: 9, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[0], 50)
	c.CrashAt(procs[3], 55)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) || v.Has(procs[3]) {
		t.Errorf("crashed processes linger in %v", v)
	}
	if v.Size() != 4 {
		t.Errorf("view size = %d, want 4", v.Size())
	}
}

func TestSuccessiveMgrFailures(t *testing.T) {
	// The new coordinator fails too; the next in line reconfigures again.
	c := scenario.New(scenario.Options{N: 6, Seed: 10, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[0], 50)
	c.CrashAt(procs[1], 600) // after p2 has taken over
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) || v.Has(procs[1]) {
		t.Errorf("dead coordinators linger in %v", v)
	}
	for _, n := range c.AliveNodes() {
		if n.Coordinator() != procs[2] {
			t.Errorf("%v coordinator = %v, want p3", n.ID(), n.Coordinator())
		}
	}
}

func TestMinorityCannotReconfigure(t *testing.T) {
	// §4.3: an initiator that cannot gather µ responses must quit rather
	// than install a view. Crash a majority at once.
	c := scenario.New(scenario.Options{N: 5, Seed: 11, Config: finalConfig()})
	procs := c.Initial()
	for _, p := range procs[:3] { // Mgr + 2 others: only 2 of 5 remain
		c.CrashAt(p, 50)
	}
	c.Run()

	for _, p := range procs[3:] {
		n := c.Node(p)
		if n.Alive() {
			// A survivor may stay alive only if it never installed a
			// post-crash view (blocked, not diverged).
			if n.View().Version() != 0 {
				t.Errorf("%v installed %v without a majority", p, n.View())
			}
		}
	}
}

func TestJoinAddsProcess(t *testing.T) {
	// §7: joins run the same update algorithm with op='add'.
	c := scenario.New(scenario.Options{N: 4, Seed: 12, Config: finalConfig()})
	procs := c.Initial()
	j := ids.ProcID{Site: "p9"}
	c.JoinAt(j, procs[0], 50)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(j) {
		t.Fatalf("joiner absent from %v", v)
	}
	if v.Rank(j) != 1 {
		t.Errorf("joiner rank = %d, want 1 (lowest seniority)", v.Rank(j))
	}
	jn := c.Node(j)
	if jn.View() == nil || !jn.View().Equal(v) {
		t.Errorf("joiner's view %v differs from group view %v", jn.View(), v)
	}
	if jn.SeqLog().String() != c.Node(procs[1]).SeqLog().String() {
		t.Errorf("joiner seq %v != member seq %v", jn.SeqLog(), c.Node(procs[1]).SeqLog())
	}
}

func TestJoinViaNonCoordinatorContact(t *testing.T) {
	c := scenario.New(scenario.Options{N: 4, Seed: 13, Config: finalConfig()})
	procs := c.Initial()
	j := ids.ProcID{Site: "p9"}
	c.JoinAt(j, procs[3], 50) // contact the least senior member
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(j) {
		t.Errorf("joiner absent from %v (request not forwarded?)", v)
	}
}

func TestOnlineChurnJoinsAndExclusions(t *testing.T) {
	// §7: "a constant flow of requests to both exclude and join".
	c := scenario.New(scenario.Options{N: 5, Seed: 14, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[4], 50)
	c.JoinAt(ids.ProcID{Site: "q1"}, procs[0], 300)
	c.CrashAt(procs[3], 600)
	c.JoinAt(ids.ProcID{Site: "q2"}, procs[1], 900)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	want := []ids.ProcID{procs[0], procs[1], procs[2], {Site: "q1"}, {Site: "q2"}}
	if v.Size() != len(want) {
		t.Fatalf("stable view %v, want members %v", v, want)
	}
	for _, m := range want {
		if !v.Has(m) {
			t.Errorf("member %v missing from %v", m, v)
		}
	}
}

func TestRecoveryIsNewIncarnation(t *testing.T) {
	// GMP-4: a crashed site rejoins under a new incarnation and is a
	// different process; the old identifier never reappears.
	c := scenario.New(scenario.Options{N: 4, Seed: 15, Config: finalConfig()})
	procs := c.Initial()
	old := procs[3]
	c.CrashAt(old, 50)
	reborn := ids.ProcID{Site: old.Site, Incarnation: old.Incarnation + 1}
	c.JoinAt(reborn, procs[0], 500)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(old) {
		t.Errorf("old incarnation back in view %v", v)
	}
	if !v.Has(reborn) {
		t.Errorf("new incarnation missing from view %v", v)
	}
	// GMP-4 over every history: once out, never back.
	for _, p := range []ids.ProcID{procs[0], procs[1], procs[2]} {
		views := c.Views(p)
		seenOut := false
		for _, vr := range views {
			has := false
			for _, m := range vr.Members {
				if m == old {
					has = true
				}
			}
			if seenOut && has {
				t.Errorf("%v re-instated %v at v%d", p, old, vr.Ver)
			}
			if !has {
				seenOut = true
			}
		}
	}
}

func TestFailureStreamTotalMessages(t *testing.T) {
	// §7.2: n−1 successive exclusions under compression cost (n−1)²
	// messages in total. The paper's scenario spaces failures one round
	// apart ("if failures are not spaced 'too far' apart"): each new
	// suspicion reaches Mgr while the previous round is in flight, so
	// every commit piggybacks the next invitation.
	n := 6
	cfg := core.Config{Compression: true, MajorityCheck: false, ReconfigWait: 0}
	c := scenario.New(scenario.Options{
		N: n, Seed: 16, Config: cfg, MuteOracle: true,
		Delay: netsim.ConstDelay(1),
	})
	procs := c.Initial()
	// With unit delays a round turns over every 2 ticks; feed the next
	// suspicion to Mgr one tick after each round starts.
	c.SuspectAt(procs[0], procs[1], 10)
	for k := 2; k < n; k++ {
		c.SuspectAt(procs[0], procs[k], sim.Time(11+2*(k-2)))
	}
	c.Run()

	mgr := c.Node(procs[0])
	if got := mgr.View().Size(); got != 1 {
		t.Fatalf("Mgr view size = %d, want 1", got)
	}
	if got := mgr.View().Version(); got != member.Version(n-1) {
		t.Fatalf("Mgr version = %d, want %d", got, n-1)
	}
	got := c.Messages(core.ExclusionLabels...)
	want := (n - 1) * (n - 1)
	if got != want {
		t.Errorf("stream cost %d messages, paper says (n−1)² = %d", got, want)
	}
}
