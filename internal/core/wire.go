// Message vocabulary of the GMP protocol. Labels are stable strings used by
// the trace recorder for the §7.2 message accounting:
//
//	plain two-phase exclusion  = Invite + OK + Commit            (≤ 3n−5)
//	compressed exclusion round = OK + Commit                     (≤ 2n−3)
//	reconfiguration            = Interrogate + InterrogateOK +
//	                             Propose + ProposeOK + ReconfCommit (≤ 5n−9)
//
// FaultyReport, JoinRequest and StateTransfer are bookkeeping traffic that
// the paper's complexity analysis does not count; benches exclude them by
// label.
package core

import (
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Message labels (see package comment).
const (
	LabelInvite        = "Invite"
	LabelOK            = "OK"
	LabelCommit        = "Commit"
	LabelInterrogate   = "Interrogate"
	LabelInterrogateOK = "InterrogateOK"
	LabelPropose       = "Propose"
	LabelProposeOK     = "ProposeOK"
	LabelReconfCommit  = "ReconfCommit"
	LabelFaultyReport  = "FaultyReport"
	LabelJoinRequest   = "JoinRequest"
	LabelStateTransfer = "StateTransfer"
)

// ExclusionLabels are the message kinds counted by the §7.2 exclusion
// analysis.
var ExclusionLabels = []string{LabelInvite, LabelOK, LabelCommit}

// ReconfigLabels are the message kinds counted by the §7.2 reconfiguration
// analysis.
var ReconfigLabels = []string{
	LabelInterrogate, LabelInterrogateOK, LabelPropose, LabelProposeOK, LabelReconfCommit,
}

// ProtocolLabels is every protocol message kind (excludes bookkeeping).
var ProtocolLabels = append(append([]string{}, ExclusionLabels...), ReconfigLabels...)

// Invite is the coordinator's Phase-I invitation Invite(op(proc-id)) (Fig. 8).
// Ver is the view version that committing Op would produce.
type Invite struct {
	Op  member.Op
	Ver member.Version
}

// MsgLabel implements netsim.Labeled.
func (Invite) MsgLabel() string { return LabelInvite }

// OK acknowledges an invitation (explicit or contingent) for the view
// version Ver.
type OK struct {
	Ver member.Version
}

// MsgLabel implements netsim.Labeled.
func (OK) MsgLabel() string { return LabelOK }

// Commit is the coordinator's Phase-II message
// Commit(op(proc-id)) : Contingencies (Fig. 8). Next, when non-nil, is the
// contingent invitation for the following round (the §3.1 compression);
// NextVer is the version that op would produce. Faulty and Recovered carry
// the coordinator's pending sets — the F2 gossip that Fig. 9's outer loop
// applies on receipt.
type Commit struct {
	Op        member.Op
	Ver       member.Version
	Next      member.Op
	NextVer   member.Version
	Faulty    []ids.ProcID
	Recovered []ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (Commit) MsgLabel() string { return LabelCommit }

// Interrogate opens reconfiguration Phase I (Fig. 10). It deliberately
// carries no view version: interrogation traffic must bypass the
// future-view buffering so version-inconsistent states can be repaired
// (§4.1, footnote 10).
type Interrogate struct{}

// MsgLabel implements netsim.Labeled.
func (Interrogate) MsgLabel() string { return LabelInterrogate }

// InterrogateOK is the Phase-I response OK(seq(p), next(p)). Faulty carries
// the responder's pending suspicions so no exclusion request is lost across
// a coordinator change (Prop. 6.4's F2 propagation).
type InterrogateOK struct {
	Ver    member.Version
	Seq    member.Seq
	Next   member.Next
	Faulty []ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (InterrogateOK) MsgLabel() string { return LabelInterrogateOK }

// Propose is the Phase-II reconfiguration proposal
// Propose((op(proc-id) : r : v_r) : (next-op(next-id), F)) (Fig. 10).
// RL lists the operations whose application yields version Ver; receivers
// behind Ver apply the suffix they are missing. Invis is the contingent
// first operation of the initiator's subsequent coordinator role.
type Propose struct {
	RL     member.Seq
	Ver    member.Version
	Invis  member.Op
	Faulty []ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (Propose) MsgLabel() string { return LabelPropose }

// ProposeOK acknowledges a proposal for version Ver.
type ProposeOK struct {
	Ver member.Version
}

// MsgLabel implements netsim.Labeled.
func (ProposeOK) MsgLabel() string { return LabelProposeOK }

// ReconfCommit is the Phase-III reconfiguration commit (Fig. 10). Fields
// mirror Propose.
type ReconfCommit struct {
	RL     member.Seq
	Ver    member.Version
	Invis  member.Op
	Faulty []ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (ReconfCommit) MsgLabel() string { return LabelReconfCommit }

// FaultyReport is an outer process's request that the coordinator start the
// removal algorithm for Suspect (§3: "it sends a message to Mgr, requesting
// that it start the removal algorithm").
type FaultyReport struct {
	Suspect ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (FaultyReport) MsgLabel() string { return LabelFaultyReport }

// JoinRequest announces Joiner's desire to enter the group (§7). Any member
// forwards it to the coordinator.
type JoinRequest struct {
	Joiner ids.ProcID
}

// MsgLabel implements netsim.Labeled.
func (JoinRequest) MsgLabel() string { return LabelJoinRequest }

// StateTransfer initializes a joiner after its add commits: the view it is
// part of, the full committed history, and — when the commit carried a
// contingent next operation — the round the joiner must acknowledge like
// every other member.
type StateTransfer struct {
	Members []ids.ProcID
	Ver     member.Version
	Seq     member.Seq
	Coord   ids.ProcID
	Next    member.Op
	NextVer member.Version
}

// MsgLabel implements netsim.Labeled.
func (StateTransfer) MsgLabel() string { return LabelStateTransfer }
