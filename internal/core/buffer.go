package core

// Future-view message buffering (§3): "there be no messages from future
// views … the latter involves adding view numbers to messages so that they
// can be delayed when received from a process in a future view (i.e. until
// that view is installed locally)". Invitations and commits carry the view
// version they produce; when one arrives more than a step ahead of the
// local view, it is held back and replayed after every install.
// Reconfiguration traffic deliberately bypasses this layer (§4.1, footnote
// 10): interrogations must be able to cross version-inconsistent states.

import (
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// heldMessage is one buffered future-view message.
type heldMessage struct {
	from    ids.ProcID
	payload any
	ver     member.Version // version the message belongs to
}

// bufferIfFuture holds back update messages that run ahead of the local
// view. It returns true when the message was buffered (or dropped as
// unusable) and must not be dispatched now.
func (n *Node) bufferIfFuture(from ids.ProcID, payload any) bool {
	var ver member.Version
	switch m := payload.(type) {
	case Invite:
		ver = m.Ver
	case Commit:
		ver = m.Ver
	case OK:
		ver = m.Ver
	default:
		return false // reconfiguration and bookkeeping traffic bypasses
	}
	if ver <= n.view.Version()+1 {
		return false
	}
	n.held = append(n.held, heldMessage{from: from, payload: payload, ver: ver})
	return true
}

// drainHeld redelivers buffered messages that the latest install has made
// current. It runs after every install; messages still in the future stay
// buffered, and messages from since-isolated senders are discarded (S1).
func (n *Node) drainHeld() {
	if len(n.held) == 0 {
		return
	}
	pending := n.held
	n.held = nil
	for _, h := range pending {
		if !n.alive {
			return
		}
		if n.isolated.Has(h.from) {
			continue
		}
		if h.ver > n.view.Version()+1 {
			n.held = append(n.held, h)
			continue
		}
		n.Deliver(h.from, h.payload)
	}
}
