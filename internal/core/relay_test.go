package core_test

// The suspicion-relay path (core.SuspicionRelayer) unit-tested at the
// protocol layer: a ring-1 monitoring environment where the coordinator's
// death is observed by exactly one process, whose faulty_p(Mgr) must hop
// the ring to the member next in rank before reconfiguration can start.
// The simulator's environments implement no relayer, so every pinned
// message-count identity elsewhere in this package is untouched.

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
	"procgroup/internal/topology"
)

// relayBus is a tiny synchronous-pump substrate for driving core.Node
// directly: sends queue FIFO and pump delivers them one at a time.
type relayBus struct {
	nodes map[ids.ProcID]*core.Node
	queue []relayMsg
	dead  ids.Set

	// faultyReports counts FaultyReport sends per suspect, to bound the
	// relay flood.
	faultyReports map[ids.ProcID]int
}

type relayMsg struct {
	from, to ids.ProcID
	payload  any
}

func (b *relayBus) pump() {
	for len(b.queue) > 0 {
		m := b.queue[0]
		b.queue = b.queue[1:]
		if b.dead.Has(m.to) {
			continue
		}
		if n := b.nodes[m.to]; n != nil && n.Alive() {
			n.Deliver(m.from, m.payload)
		}
	}
}

// relayEnv implements core.Env plus core.SuspicionRelayer over a ring-k
// monitoring topology.
type relayEnv struct {
	bus  *relayBus
	id   ids.ProcID
	topo topology.RingK
}

func (e *relayEnv) Send(to ids.ProcID, payload any) {
	if fr, ok := payload.(core.FaultyReport); ok {
		e.bus.faultyReports[fr.Suspect]++
	}
	e.bus.queue = append(e.bus.queue, relayMsg{e.id, to, payload})
}

func (e *relayEnv) After(int64, func()) (cancel func())        { return func() {} }
func (e *relayEnv) Quit()                                      { e.bus.dead.Add(e.id) }
func (e *relayEnv) Record(event.Kind, ids.ProcID)              {}
func (e *relayEnv) RecordInstall(member.Version, []ids.ProcID) {}
func (e *relayEnv) RelayPeers(unsuspected []ids.ProcID) []ids.ProcID {
	return e.topo.Monitors(unsuspected, e.id)
}

func TestRelayCarriesCoordinatorSuspicionToNextInRank(t *testing.T) {
	const n, k = 5, 1
	procs := ids.Gen(n)
	bus := &relayBus{
		nodes:         make(map[ids.ProcID]*core.Node),
		dead:          ids.NewSet(),
		faultyReports: make(map[ids.ProcID]int),
	}
	cfg := core.Config{Compression: true, MajorityCheck: true} // no timers: the relay alone must suffice
	for _, p := range procs {
		bus.nodes[p] = core.New(p, &relayEnv{bus: bus, id: p, topo: topology.RingK{K: k}}, cfg)
	}
	for _, p := range procs {
		bus.nodes[p].Bootstrap(procs)
	}

	// The coordinator dies. Under ring-1 only p5 (its sole rank
	// predecessor) observes the silence.
	mgr, observer, heir := procs[0], procs[n-1], procs[1]
	bus.dead.Add(mgr)
	bus.nodes[observer].Suspect(mgr)
	bus.pump()

	for _, p := range procs[1:] {
		nd := bus.nodes[p]
		if !nd.Alive() {
			t.Fatalf("%v quit: %s", p, nd.QuitReason())
		}
		v := nd.View()
		if v.Has(mgr) {
			t.Errorf("%v still has the dead coordinator in %v", p, v)
		}
		if got := v.Mgr(); got != heir {
			t.Errorf("%v's coordinator = %v, want %v", p, got, heir)
		}
	}
	// The flood is bounded: each node relays a suspect to at most its k
	// peers once, plus the GMP-5 report.
	if got, max := bus.faultyReports[mgr], n*(k+1); got == 0 || got > max {
		t.Errorf("FaultyReport(%v) sent %d times, want 1..%d", mgr, got, max)
	}
}

func TestRelayInertWithoutRelayerEnv(t *testing.T) {
	// An environment that is not a SuspicionRelayer must see exactly the
	// seed behavior: a suspicion of the coordinator produces no
	// FaultyReport at all (reportSuspicions has nowhere to report, and
	// nothing relays).
	procs := ids.Gen(3)
	bus := &relayBus{
		nodes:         make(map[ids.ProcID]*core.Node),
		dead:          ids.NewSet(),
		faultyReports: make(map[ids.ProcID]int),
	}
	cfg := core.Config{Compression: true, MajorityCheck: true}
	for _, p := range procs {
		bus.nodes[p] = core.New(p, plainEnv{&relayEnv{bus: bus, id: p}}, cfg)
	}
	for _, p := range procs {
		bus.nodes[p].Bootstrap(procs)
	}
	bus.dead.Add(procs[0])
	bus.nodes[procs[2]].Suspect(procs[0])
	bus.pump()
	if got := bus.faultyReports[procs[0]]; got != 0 {
		t.Errorf("non-relayer env sent %d FaultyReports for the suspected coordinator, want 0", got)
	}
}

// plainEnv strips the SuspicionRelayer method set down to core.Env.
type plainEnv struct{ e *relayEnv }

func (p plainEnv) Send(to ids.ProcID, payload any)                { p.e.Send(to, payload) }
func (p plainEnv) After(d int64, fn func()) (cancel func())       { return p.e.After(d, fn) }
func (p plainEnv) Quit()                                          { p.e.Quit() }
func (p plainEnv) Record(k event.Kind, o ids.ProcID)              { p.e.Record(k, o) }
func (p plainEnv) RecordInstall(v member.Version, m []ids.ProcID) { p.e.RecordInstall(v, m) }
