package core

// Determine and GetStable (Fig. 6): from a majority of Phase-I responses,
// compute the unique proposal that is consistent with every update that
// might have been committed invisibly (§4.4, §5). The version-argument
// ambiguities in the TR's figure are resolved as documented in DESIGN.md §3.

import (
	"errors"
	"fmt"
	"sort"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// errSeqDiverged signals a violation of Theorem 5.1 (equal versions must
// imply equal sequences); it can only arise from a protocol bug or from
// deliberately weakened baselines.
var errSeqDiverged = errors.New("phase-I sequences are not prefix-ordered")

// proposal is one element of ProposalsForVer(x, r): an operation some
// respondent expected to be committed for version x, together with the
// lowest-ranked coordinator observed proposing it.
type proposal struct {
	op    member.Op
	coord ids.ProcID
}

// determine computes (RL_r, v, invis): the operations to propose, the
// version their installation produces, and the contingent operation for
// the round after reconfiguration.
func (n *Node) determine() (rl member.Seq, ver member.Version, invis member.Op, err error) {
	myVer := n.view.Version()
	// Iterate respondents deterministically; Theorem 5.1 makes any
	// representative of L (resp. S) equivalent, but reproducible runs
	// must not depend on map order.
	responders := make([]ids.ProcID, 0, len(n.reconf.responses))
	for p := range n.reconf.responses {
		responders = append(responders, p)
	}
	sort.Slice(responders, func(i, j int) bool { return responders[i].Less(responders[j]) })
	var longest, shortest *InterrogateOK
	for _, p := range responders {
		if p == n.id {
			continue
		}
		resp := n.reconf.responses[p]
		switch resp.Ver {
		case myVer + 1:
			if longest == nil {
				longest = &resp
			}
		case myVer - 1:
			if shortest == nil {
				shortest = &resp
			}
		}
	}

	switch {
	case longest != nil:
		// Incomplete installation of version ver(L): someone is one
		// update ahead of us; propagate exactly that update.
		ver = longest.Ver
		rl, err = longest.Seq.Minus(n.seq)
		if err != nil {
			return nil, 0, member.NilOp, fmt.Errorf("%w: %v", errSeqDiverged, err)
		}
		invis = n.chooseInvis(ver+1, rl)
	case shortest != nil:
		// Incomplete installation of our own version: re-propose it so
		// the laggards catch up and the version becomes stable.
		ver = myVer
		rl, err = n.seq.Minus(shortest.Seq)
		if err != nil {
			return nil, 0, member.NilOp, fmt.Errorf("%w: %v", errSeqDiverged, err)
		}
		invis = n.chooseInvis(ver+1, rl)
	default:
		// All respondents agree on our version; the contested question
		// is what version ver(r)+1 should be.
		ver = myVer + 1
		pfv := n.proposalsForVer(ver)
		switch len(pfv) {
		case 0:
			// Nobody heard any plan: the failed coordinator itself is
			// the only safe removal (line D.4).
			rl = member.Seq{member.Remove(n.mgr)}
		case 1:
			rl = member.Seq{pfv[0].op} // line D.5
		default:
			rl = member.Seq{n.getStable(pfv)} // line D.6
		}
		invis = n.chooseInvis(ver+1, rl)
	}
	return rl, ver, invis, nil
}

// chooseInvis picks the contingent operation for version x: the invisible-
// commit candidate among the respondents' expectations if there is one,
// otherwise the coordinator queues' next entry (lines D.1–D.3).
func (n *Node) chooseInvis(x member.Version, rl member.Seq) member.Op {
	pfv := n.proposalsForVer(x)
	switch len(pfv) {
	case 0:
		exclude := ids.NewSet()
		for _, op := range rl {
			exclude.Add(op.Target)
		}
		return n.nextOp(exclude)
	case 1:
		return pfv[0].op
	default:
		return n.getStable(pfv)
	}
}

// proposalsForVer builds ProposalsForVer(x, r) from the Phase-I responses:
// every concrete next-triple for version x, deduplicated by operation, each
// retaining the lowest-ranked coordinator seen proposing it. The result is
// deterministically ordered.
func (n *Node) proposalsForVer(x member.Version) []proposal {
	byOp := make(map[member.Op]ids.ProcID)
	for _, resp := range n.reconf.responses {
		for _, t := range resp.Next {
			if t.Wildcard || t.Ver != x || t.Op.IsNil() {
				continue
			}
			cur, seen := byOp[t.Op]
			if !seen || n.coordRank(t.Coord) < n.coordRank(cur) {
				byOp[t.Op] = t.Coord
			}
		}
	}
	out := make([]proposal, 0, len(byOp))
	for op, coord := range byOp {
		out = append(out, proposal{op: op, coord: coord})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].op.Target != out[j].op.Target {
			return out[i].op.Target.Less(out[j].op.Target)
		}
		return out[i].op.Kind < out[j].op.Kind
	})
	return out
}

// coordRank ranks a proposer for GetStable. Proposers absent from the view
// sort below everyone: their proposal epoch has passed.
func (n *Node) coordRank(p ids.ProcID) int { return n.view.Rank(p) }

// getStable implements GetStable(r, x) and embodies Prop. 5.6: of the (at
// most two) proposals for a version, only the one from the lowest-ranked
// proposer can have been committed invisibly — a lower-ranked initiator
// only got to propose because the higher-ranked proposer's commit provably
// failed to assemble a majority. Propagating it keeps the system consistent
// with any invisible commit (Cor. 5.2).
func (n *Node) getStable(pfv []proposal) member.Op {
	best := pfv[0]
	for _, cand := range pfv[1:] {
		if n.coordRank(cand.coord) < n.coordRank(best.coord) {
			best = cand
		}
	}
	return best.op
}
