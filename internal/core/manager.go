package core

// Coordinator (Mgr) role: the two-phase update algorithm of Fig. 8, with
// §3.1's compression of successive rounds. The coordinator holds two queues
// — Recovered(Mgr) and Faulty(Mgr) — and, while either is non-empty, runs
// rounds of: invite every view member, await each member's OK or its
// suspicion, commit, and piggyback the next operation on the commit.

import (
	"fmt"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// nextOp picks the operation a new round would perform, drawing joins
// before exclusions as Fig. 8 does. exclude lists targets that must be
// skipped (reconfiguration uses it to avoid re-proposing its own RL).
// It never mutates the queues: entries leave Faulty/Recovered only when the
// operation commits. Adds additionally pass the environment's readmission
// governor, if any: a vetoed joiner is skipped this scan — staying in
// Recovered(Mgr) for a later one — and never blocks the exclusions
// queued behind it.
func (n *Node) nextOp(exclude ids.Set) member.Op {
	gov, governed := n.env.(ReadmissionGovernor)
	for _, r := range n.recovered.Sorted() {
		if !n.view.Has(r) && (exclude == nil || !exclude.Has(r)) {
			if governed && !gov.AdmitJoiner(r) {
				continue
			}
			return member.Add(r)
		}
	}
	for _, f := range n.faulty.Sorted() {
		if n.view.Has(f) && (exclude == nil || !exclude.Has(f)) {
			return member.Remove(f)
		}
	}
	return member.NilOp
}

// maybeStartRound begins a fresh two-phase round when the coordinator is
// idle and has pending work. The fresh round always broadcasts an explicit
// invitation; compressed continuations are created by commitRound instead.
func (n *Node) maybeStartRound() {
	if n.round != nil || n.reconf != nil {
		return
	}
	op := n.nextOp(nil)
	if op.IsNil() {
		return
	}
	n.round = &updateRound{op: op, ver: n.view.Version() + 1, okFrom: ids.NewSet()}
	n.broadcastInvite()
	n.checkRound()
}

// broadcastInvite sends Invite(op) to every view member except ourselves —
// including the target, which must quit if it is alive (Fig. 2: "if
// p = proc-id then quit_p"), and including suspected members, whose
// response the await clause replaces with faulty_Mgr(p).
func (n *Node) broadcastInvite() {
	inv := Invite{Op: n.round.op, Ver: n.round.ver}
	for _, m := range n.view.Members() {
		if m != n.id {
			n.env.Send(m, inv)
		}
	}
}

// handleOK processes an outer process's acknowledgement, for either an
// explicit invitation or a commit-borne contingent one.
func (n *Node) handleOK(from ids.ProcID, m OK) {
	if n.round == nil || m.Ver != n.round.ver || !n.view.Has(from) {
		return
	}
	n.round.okFrom.Add(from)
	n.step()
}

// checkRound fires the commit once every view member is accounted for:
// Fig. 8's "∀p ∈ Memb(Mgr). await (OK(p) or faulty_Mgr(p))", followed by
// the majority gate of the final algorithm.
func (n *Node) checkRound() {
	if n.round == nil {
		return
	}
	for _, m := range n.view.Members() {
		if m == n.id {
			continue
		}
		if !n.round.okFrom.Has(m) && !n.isolated.Has(m) {
			return
		}
	}
	if n.majorityGate() && 1+n.round.okFrom.Len() < n.view.Majority() {
		n.quit("coordinator lost majority")
		return
	}
	n.commitRound()
}

// majorityGate reports whether commits require a majority of OKs: always in
// the final algorithm, and always after this node has lived through a
// reconfiguration (§4.5).
func (n *Node) majorityGate() bool { return n.cfg.MajorityCheck || n.everReconfigured }

// commitRound applies the round's operation, broadcasts the commit with its
// contingencies, and — if more work is queued — chains the next round,
// compressed onto the commit when the configuration allows.
func (n *Node) commitRound() {
	op, ver := n.round.op, n.round.ver
	n.round = nil
	if err := n.install(member.Seq{op}); err != nil {
		panic(fmt.Sprintf("core: coordinator %v cannot install own commit: %v", n.id, err))
	}

	next := n.nextOp(nil)
	commit := Commit{
		Op:        op,
		Ver:       ver,
		Faulty:    n.inViewFaulty(),
		Recovered: n.recovered.Sorted(),
	}
	if !next.IsNil() && n.cfg.Compression {
		commit.Next = next
		commit.NextVer = ver + 1
	}
	for _, m := range n.view.Members() {
		if m != n.id {
			n.env.Send(m, commit)
		}
	}
	if op.Kind == member.OpAdd {
		n.sendStateTransfer(op.Target, next, ver+1)
	}
	if next.IsNil() {
		n.next = nil
		return
	}
	n.round = &updateRound{op: next, ver: ver + 1, okFrom: ids.NewSet(), contingent: n.cfg.Compression}
	if !n.cfg.Compression {
		n.broadcastInvite()
	}
	// The contingent target may already be the only unaccounted member.
	n.checkRound()
}

// inViewFaulty returns Faulty(Mgr) restricted to current members — the F2
// gossip the commit carries.
func (n *Node) inViewFaulty() []ids.ProcID {
	var out []ids.ProcID
	for _, f := range n.faulty.Sorted() {
		if n.view.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// sendStateTransfer hands a just-admitted joiner the group state. When the
// add's commit carried a contingent next operation and rounds are
// compressed, the joiner is a full member of that round and must
// acknowledge it, so the transfer carries the pending operation too.
func (n *Node) sendStateTransfer(joiner ids.ProcID, next member.Op, nextVer member.Version) {
	st := StateTransfer{
		Members: n.view.Members(),
		Ver:     n.view.Version(),
		Seq:     n.seq.Clone(),
		Coord:   n.id,
	}
	if !next.IsNil() && n.cfg.Compression {
		st.Next = next
		st.NextVer = nextVer
	}
	n.env.Send(joiner, st)
}

// handleFaultyReport is F2 gossip: the sender believed Suspect faulty when
// it sent the report, so we adopt the belief; if we are the coordinator
// this enqueues the exclusion (GMP-5). A report is point-to-point
// knowledge, so under a partial monitoring topology the adopted suspicion
// is relayed onward — this hop-by-hop forwarding is what carries a
// monitor's observation around the topology to processes that do not
// monitor the suspect themselves.
func (n *Node) handleFaultyReport(from ids.ProcID, m FaultyReport) {
	if n.applyFaulty(m.Suspect) {
		n.disseminate(m.Suspect, 0)
		n.reportSuspicions()
	}
	n.step()
}

// handleJoinRequest sponsors a joiner: the coordinator queues the add; any
// other member records the joiner as operating and forwards the request
// (§7: Mgr initiates the join "when it becomes aware of p's desire to join
// the group").
func (n *Node) handleJoinRequest(from ids.ProcID, m JoinRequest) {
	if m.Joiner.IsNil() || m.Joiner == n.id || n.view.Has(m.Joiner) || n.isolated.Has(m.Joiner) {
		return
	}
	n.applyOperating(m.Joiner)
	n.reportSuspicions() // forwards the sponsorship to the coordinator
	n.step()
}
