// Package core implements the paper's contribution: the asymmetric Group
// Membership Protocol of Ricciardi & Birman (TR 91-1188). A Node is one
// process of the group. It plays three roles over its lifetime:
//
//   - outer process: answers the coordinator's invitations and installs
//     committed view changes (Fig. 9);
//   - coordinator (Mgr): drives the two-phase update algorithm, compressed
//     across successive rounds (Fig. 8);
//   - reconfigurer: when every higher-ranked process is suspected, runs the
//     three-phase Interrogate/Propose/Commit protocol that replaces a failed
//     coordinator while preserving any invisibly committed update
//     (Figs. 5, 6, 10).
//
// Nodes are single-threaded: the environment serializes message delivery,
// suspicion inputs, and timers.
//
// Under a partial monitoring topology the node also disseminates its
// point-to-point-learned suspicions: through the environment's
// SuspicionGossiper (batched digests riding the beacon plane,
// re-disseminated on absorb via GossipSuspectWithLevel) when gossip is
// active, else by relaying FaultyReport frames to its topology peers
// (SuspicionRelayer), with per-(suspect, peer) dedup pruned at every
// install. The one latency-critical hop — the expected initiator
// learning the coordinator is dead — always stays point-to-point.
package core
