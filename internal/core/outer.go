package core

// Outer-process role: Fig. 9's update loop. An outer process acknowledges
// the coordinator's invitations (explicit or commit-borne), installs
// committed operations, adopts the commit's contingency gossip (F2), and
// quits the moment the group declares it faulty.

import (
	"fmt"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// handleInvite answers Invite(op(proc-id)) from the coordinator.
func (n *Node) handleInvite(from ids.ProcID, m Invite) {
	if from != n.mgr {
		return // stale coordinator; S1 normally filters this earlier
	}
	if m.Ver != n.view.Version()+1 {
		return // duplicate or out-of-order invitation
	}
	if m.Op.Kind == member.OpRemove && m.Op.Target == n.id {
		n.quit("excluded by coordinator")
		return
	}
	n.noteOp(m.Op)
	n.env.Send(from, OK{Ver: m.Ver})
	n.next = member.Next{{Op: m.Op, Coord: from, Ver: m.Ver}}
	n.pending = &pendingUpdate{op: m.Op, ver: m.Ver}
	n.step()
}

// noteOp records the belief an operation implies: faulty for the removal
// target, operating for a joiner.
func (n *Node) noteOp(op member.Op) {
	switch op.Kind {
	case member.OpRemove:
		n.applyFaulty(op.Target)
	case member.OpAdd:
		n.applyOperating(op.Target)
	}
}

// handleCommit installs a committed operation and processes the commit's
// contingencies: the faulty/recovered gossip and, under compression, the
// piggybacked invitation for the next round.
func (n *Node) handleCommit(from ids.ProcID, m Commit) {
	if from != n.mgr {
		return
	}
	// "if (p ∈ L) or (p = next-id) then quit_p" (Fig. 2 / Fig. 9).
	for _, f := range m.Faulty {
		if f == n.id {
			n.quit("declared faulty by coordinator")
			return
		}
	}
	if m.Next.Kind == member.OpRemove && m.Next.Target == n.id {
		n.quit("contingently excluded by coordinator")
		return
	}
	n.adoptGossip(m.Faulty, m.Recovered)
	switch {
	case m.Ver == n.view.Version()+1:
		if err := n.install(member.Seq{m.Op}); err != nil {
			panic(fmt.Sprintf("core: %v cannot install commit %v: %v", n.id, m, err))
		}
	case m.Ver <= n.view.Version():
		// Already installed (e.g. via a racing reconfiguration commit).
	default:
		panic(fmt.Sprintf("core: %v received commit for v%d while at v%d (FIFO violated?)",
			n.id, m.Ver, n.view.Version()))
	}
	n.pending = nil
	if m.Next.IsNil() {
		n.next = nil
		n.step()
		return
	}
	n.noteOp(m.Next)
	n.next = member.Next{{Op: m.Next, Coord: from, Ver: m.NextVer}}
	if n.cfg.Compression {
		// §3.1: the contingent update, piggybacked on the commit, serves
		// as the invitation for the next view change.
		n.env.Send(from, OK{Ver: m.NextVer})
		n.pending = &pendingUpdate{op: m.Next, ver: m.NextVer}
	}
	n.step()
}

// adoptGossip applies F2: the sender believed these processes faulty or
// recovering when it sent the message. Coordinator-sourced suspicions need
// no report back, so they are marked reported.
func (n *Node) adoptGossip(faulty, recovered []ids.ProcID) {
	for _, f := range faulty {
		if n.applyFaulty(f) {
			n.reported.Add(f)
		}
	}
	for _, r := range recovered {
		n.applyOperating(r)
	}
}

// handleStateTransfer completes a join: install the group state the
// coordinator recorded at our add-commit and, if that commit carried a
// contingent next round, take part in it immediately.
func (n *Node) handleStateTransfer(from ids.ProcID, st StateTransfer) {
	if !n.joining {
		return
	}
	n.joining = false
	n.view = member.NewViewAt(st.Members, st.Ver)
	n.seq = st.Seq.Clone()
	n.mgr = st.Coord
	n.env.RecordInstall(n.view.Version(), n.view.Members())
	if !st.Next.IsNil() {
		n.noteOp(st.Next)
		n.next = member.Next{{Op: st.Next, Coord: st.Coord, Ver: st.NextVer}}
		n.env.Send(st.Coord, OK{Ver: st.NextVer})
		n.pending = &pendingUpdate{op: st.Next, ver: st.NextVer}
	}
	n.step()
}
