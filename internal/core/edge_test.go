package core_test

// Edge-case scenario tests: the interactions the paper's prose glosses
// over — joins colliding with coordinator failure, suspected joiners,
// partitions that heal after spurious suspicions, chains of recoveries.
// Every test ends with the GMP checker over the full trace.

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

func TestJoinWhileCoordinatorDies(t *testing.T) {
	// The join request lands just before the coordinator crashes. The
	// request must not wedge the group; whether the joiner is admitted
	// depends on whether the add round survived, but the survivors must
	// converge either way.
	for _, crashAt := range []sim.Time{55, 60, 70, 90} {
		c := scenario.New(scenario.Options{N: 5, Seed: int64(crashAt), Config: finalConfig()})
		procs := c.Initial()
		c.JoinAt(ids.ProcID{Site: "j1"}, procs[0], 50)
		c.CrashAt(procs[0], crashAt)
		c.Run()

		if rep := c.Check(); !rep.OK() {
			t.Errorf("crashAt=%d: %v", crashAt, rep)
		}
		alive := c.AliveMembers()
		if len(alive) < 4 {
			t.Errorf("crashAt=%d: only %v survived", crashAt, alive)
		}
	}
}

func TestConcurrentJoiners(t *testing.T) {
	c := scenario.New(scenario.Options{N: 4, Seed: 5, Config: finalConfig()})
	procs := c.Initial()
	c.JoinAt(ids.ProcID{Site: "j1"}, procs[0], 50)
	c.JoinAt(ids.ProcID{Site: "j2"}, procs[1], 51)
	c.JoinAt(ids.ProcID{Site: "j3"}, procs[3], 52)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 7 {
		t.Fatalf("view %v, want all three joiners admitted", v)
	}
	// Joins are serialized through the coordinator: ranks of the joiners
	// reflect admission order, all below the founders.
	for _, j := range []string{"j1", "j2", "j3"} {
		if r := v.Rank(ids.Named(j)); r > 3 {
			t.Errorf("joiner %s ranked %d, above a founder", j, r)
		}
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestJoinerCrashesBeforeAdmission(t *testing.T) {
	// The joiner dies after its request is queued but (possibly) before
	// its add commits; the group must converge regardless.
	for _, crashAt := range []sim.Time{55, 65, 80} {
		c := scenario.New(scenario.Options{N: 4, Seed: int64(crashAt) * 3, Config: finalConfig()})
		procs := c.Initial()
		j := c.JoinAt(ids.ProcID{Site: "j1"}, procs[0], 50)
		c.CrashAt(j.ID(), crashAt)
		c.Run()

		if rep := c.Check(); !rep.OK() {
			t.Errorf("crashAt=%d: %v", crashAt, rep)
		}
		v, err := c.StableView()
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		// If the dead joiner made it in, GMP-5 requires it back out.
		if v.Has(j.ID()) {
			t.Errorf("crashAt=%d: dead joiner lingers in %v", crashAt, v)
		}
	}
}

func TestHealedPartitionMinorityIsExcluded(t *testing.T) {
	// A transient partition makes the majority side suspect the minority
	// (spurious — they are alive). After the partition heals, S1 keeps
	// the excluded processes isolated: they must quit on the invitation
	// or linger outside, and must never corrupt the majority's views.
	c := scenario.New(scenario.Options{N: 5, Seed: 9, Config: finalConfig(), MuteOracle: true})
	procs := c.Initial()
	heal := c.Net.PartitionBetween(procs[:3], procs[3:])
	// The majority side times out on the minority.
	c.SuspectAt(procs[0], procs[3], 50)
	c.SuspectAt(procs[0], procs[4], 55)
	c.Sched.At(300, heal)
	c.Run()

	// The minority never received its eviction (the partition ate the
	// invitations), so p4/p5 legitimately linger alive at v0 outside the
	// group; the self-consistent system view is the majority's. The
	// strict StableView would reject the lingerers, so inspect directly.
	for _, p := range procs[:3] {
		v := c.Node(p).View()
		if v.Size() != 3 || v.Has(procs[3]) || v.Has(procs[4]) {
			t.Errorf("%v's view %v, want partitioned pair excluded", p, v)
		}
	}
	for _, p := range procs[3:] {
		if got := c.Node(p).View().Version(); got != 0 {
			t.Errorf("isolated %v advanced to v%d; S1 should have frozen it", p, got)
		}
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestRecoveryChainSameSite(t *testing.T) {
	// A site crashes and rejoins twice; each incarnation is a distinct
	// process and GMP-4 holds across the whole run.
	c := scenario.New(scenario.Options{N: 4, Seed: 11, Config: finalConfig()})
	procs := c.Initial()
	site := procs[3].Site
	c.CrashAt(procs[3], 50)
	inc1 := ids.ProcID{Site: site, Incarnation: 1}
	c.JoinAt(inc1, procs[0], 600)
	c.CrashAt(inc1, 1200)
	inc2 := ids.ProcID{Site: site, Incarnation: 2}
	c.JoinAt(inc2, procs[0], 1800)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(inc2) || v.Has(inc1) || v.Has(procs[3]) {
		t.Errorf("final view %v, want only incarnation 2 of %s", v, site)
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestJoinSurvivesCoordinatorCrashViaSponsorship(t *testing.T) {
	// The join request reaches a non-coordinator contact; the coordinator
	// dies before (or while) processing the forwarded sponsorship. After
	// reconfiguration the contact re-sponsors the joiner to the new
	// coordinator (Prop. 6.4's analogue for recoveries), so the join
	// completes without the joiner doing anything.
	c := scenario.New(scenario.Options{N: 5, Seed: 23, Config: finalConfig()})
	procs := c.Initial()
	c.JoinAt(ids.ProcID{Site: "j1"}, procs[3], 49)
	c.CrashAt(procs[0], 50) // dies before the forwarded request lands
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(ids.Named("j1")) {
		t.Errorf("joiner lost across the coordinator change: %v", v)
	}
	if v.Mgr() != procs[1] {
		t.Errorf("coordinator %v, want p2", v.Mgr())
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestJoinerRetriesAfterContactDeath(t *testing.T) {
	// The contact dies holding the only copy of the request; the joiner's
	// retry timer re-sends it. The contact is excluded meanwhile, so the
	// retry lands on a dead address until the joiner gives up — the group
	// must converge and the joiner must terminate rather than hang.
	c := scenario.New(scenario.Options{N: 5, Seed: 29, Config: finalConfig()})
	procs := c.Initial()
	j := c.JoinAt(ids.ProcID{Site: "j1"}, procs[4], 49)
	c.CrashAt(procs[4], 50)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[4]) {
		t.Errorf("dead contact still in view %v", v)
	}
	if j.Alive() {
		t.Error("orphaned joiner should have abandoned the join")
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestSpuriousSuspicionOfCoordinatorKillsIt(t *testing.T) {
	// GMP-5 cuts both ways: if an outer process wrongly suspects the
	// (alive) coordinator and everything above it, reconfiguration
	// excludes the coordinator — the interrogation is its death warrant.
	c := scenario.New(scenario.Options{N: 5, Seed: 13, Config: finalConfig(), MuteOracle: true})
	procs := c.Initial()
	c.SuspectAt(procs[1], procs[0], 50) // p2 wrongly suspects Mgr
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) {
		t.Errorf("suspected coordinator still in %v", v)
	}
	if c.Alive(procs[0]) {
		t.Error("wrongly suspected coordinator should have quit on the interrogation")
	}
	if v.Mgr() != procs[1] {
		t.Errorf("new coordinator %v, want p2", v.Mgr())
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestBackToBackReconfigurations(t *testing.T) {
	// Coordinators keep dying: p1, then p2, then p3. Each succession must
	// fold cleanly into the next.
	c := scenario.New(scenario.Options{N: 7, Seed: 17, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[0], 50)
	c.CrashAt(procs[1], 500)
	c.CrashAt(procs[2], 1000)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 4 || v.Mgr() != procs[3] {
		t.Errorf("final view %v, want 4 members under p4", v)
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestCompressionOffStillSatisfiesGMPUnderChurn(t *testing.T) {
	cfg := core.Config{Compression: false, MajorityCheck: true, ReconfigWait: 400}
	c := scenario.New(scenario.Options{N: 6, Seed: 19, Config: cfg})
	procs := c.Initial()
	c.CrashAt(procs[5], 50)
	c.CrashAt(procs[0], 400)
	c.JoinAt(ids.ProcID{Site: "j1"}, procs[1], 900)
	c.Run()

	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
	if _, err := c.StableView(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeGroupReconfigurationAndChurn(t *testing.T) {
	// Scale check: a 64-process group survives a coordinator failure, a
	// burst of outer failures and a join, with the checker over the whole
	// trace.
	if testing.Short() {
		t.Skip("large-group run skipped in -short mode")
	}
	c := scenario.New(scenario.Options{N: 64, Seed: 641, Config: finalConfig()})
	procs := c.Initial()
	c.CrashAt(procs[0], 50)
	for i := 60; i < 64; i++ {
		c.CrashAt(procs[i], sim.Time(300+10*i))
	}
	c.JoinAt(ids.ProcID{Site: "big1"}, procs[5], 2500)
	c.Run()

	v, err := c.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 60 { // 64 − 1 coordinator − 4 outer + 1 joiner
		t.Errorf("final view size %d, want 60", v.Size())
	}
	if v.Mgr() != procs[1] {
		t.Errorf("coordinator %v, want p2", v.Mgr())
	}
	if rep := c.Check(); !rep.OK() {
		t.Error(rep)
	}
}

func TestWideFuzzAcrossSeedsAndShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	shapes := []struct {
		name string
		cfg  core.Config
	}{
		{"final", finalConfig()},
		{"uncompressed", core.Config{Compression: false, MajorityCheck: true, ReconfigWait: 400}},
	}
	for _, shape := range shapes {
		for seed := int64(100); seed < 160; seed++ {
			c := scenario.New(scenario.Options{N: 8, Seed: seed, Config: shape.cfg})
			procs := c.Initial()
			rng := c.Sched.Rand()
			for k := 0; k < 3; k++ {
				c.CrashAt(procs[1+rng.Intn(7)], sim.Time(20+rng.Intn(900)))
			}
			if rng.Intn(2) == 0 {
				c.CrashAt(procs[0], sim.Time(200+rng.Intn(400)))
			}
			obs, sus := procs[rng.Intn(8)], procs[rng.Intn(8)]
			if obs != sus {
				c.SuspectAt(obs, sus, sim.Time(100+rng.Intn(800)))
			}
			c.JoinAt(ids.ProcID{Site: "z1"}, procs[1], sim.Time(1000+rng.Intn(400)))
			c.Run()
			if rep := c.Check(); !rep.OK() {
				t.Errorf("%s seed %d:\n%v", shape.name, seed, rep)
			}
		}
	}
}
