package core

import (
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Env is the runtime a Node executes against. The simulator and the live
// goroutine runtime provide different implementations; the protocol code is
// identical over both. All Env methods are invoked from within the node's
// (single-threaded) event handlers.
type Env interface {
	// Send transmits a protocol payload to another process.
	Send(to ids.ProcID, payload any)
	// After schedules fn after d abstract ticks (virtual time in the
	// simulator, milliseconds live) and returns a cancel function. fn
	// runs serialized with message delivery.
	After(d int64, fn func()) (cancel func())
	// Quit halts this process permanently; the environment treats it
	// exactly like a crash (quit_p in the model, §2.1).
	Quit()
	// Record logs a protocol-internal event (faulty, remove, initiate…).
	Record(k event.Kind, other ids.ProcID)
	// RecordInstall logs a completed local view transition.
	RecordInstall(ver member.Version, members []ids.ProcID)
}

// LevelRecorder is an optional Env extension. Environments whose failure
// detector grades its suspicions (the live runtime's accrual detector
// emits φ values) implement it so Faulty events recorded through
// Node.SuspectWithLevel carry the detector's confidence into the trace;
// environments without it fall back to the ungraded Record.
type LevelRecorder interface {
	// RecordLevel logs a protocol-internal event with the failure
	// detector's suspicion level attached.
	RecordLevel(k event.Kind, other ids.ProcID, level float64)
}

// Config tunes which variant of the algorithm a node runs.
type Config struct {
	// Compression enables §3.1's condensed rounds: a commit carrying a
	// contingent next operation doubles as the next invitation
	// (2n−3 messages per exclusion instead of 3n−5). The paper's final
	// algorithm compresses; disabling reproduces the plain two-phase
	// numbers.
	Compression bool
	// MajorityCheck makes the coordinator require a majority of OKs
	// before committing (the §7.1 final algorithm). With it disabled the
	// basic §3.1 algorithm tolerates |Memb|−1 failures but is only safe
	// while the coordinator cannot fail. After a node has participated
	// in any reconfiguration it enforces the majority gate regardless
	// ("Observe that Mgr must henceforth garner responses from a
	// majority of processes before it can commit any removals", §4.5).
	MajorityCheck bool
	// ReconfigWait is how long a process that suspects the coordinator
	// waits for a higher-ranked process to start reconfiguration before
	// suspecting that process too (Table 1's "Eventually" row). Zero
	// disables the timeout; suspicions then come only from the failure
	// detector.
	ReconfigWait int64
	// JoinRetry is how long a joiner waits for its StateTransfer before
	// re-sending the join request to its contact (the original may have
	// died with a failed coordinator). Zero disables retries.
	JoinRetry int64
	// TwoPhaseReconfig is the §7.3 strawman: reconfiguration skips the
	// proposal phase and commits straight after interrogation. Claim 7.2
	// proves this cannot solve GMP — without the Phase-II majority there
	// is no way to detect which of two competing proposals was committed
	// invisibly. It exists only so the baseline suite can demonstrate the
	// resulting GMP-3 violation; never enable it in real configurations.
	TwoPhaseReconfig bool
}

// DefaultConfig is the paper's final algorithm: compression on, majority
// gate on, initiation timeout armed.
func DefaultConfig() Config {
	return Config{
		Compression:   true,
		MajorityCheck: true,
		ReconfigWait:  400,
		JoinRetry:     800,
	}
}
