package core

import (
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Env is the runtime a Node executes against. The simulator and the live
// goroutine runtime provide different implementations; the protocol code is
// identical over both. All Env methods are invoked from within the node's
// (single-threaded) event handlers.
type Env interface {
	// Send transmits a protocol payload to another process.
	Send(to ids.ProcID, payload any)
	// After schedules fn after d abstract ticks (virtual time in the
	// simulator, milliseconds live) and returns a cancel function. fn
	// runs serialized with message delivery.
	After(d int64, fn func()) (cancel func())
	// Quit halts this process permanently; the environment treats it
	// exactly like a crash (quit_p in the model, §2.1).
	Quit()
	// Record logs a protocol-internal event (faulty, remove, initiate…).
	Record(k event.Kind, other ids.ProcID)
	// RecordInstall logs a completed local view transition.
	RecordInstall(ver member.Version, members []ids.ProcID)
}

// LevelRecorder is an optional Env extension. Environments whose failure
// detector grades its suspicions (the live runtime's accrual detector
// emits φ values) implement it so Faulty events recorded through
// Node.SuspectWithLevel carry the detector's confidence into the trace;
// environments without it fall back to the ungraded Record.
type LevelRecorder interface {
	// RecordLevel logs a protocol-internal event with the failure
	// detector's suspicion level attached.
	RecordLevel(k event.Kind, other ids.ProcID, level float64)
}

// SuspicionRelayer is an optional Env extension for partial monitoring
// topologies. Under all-to-all monitoring every process observes every
// failure itself, so F2 gossip plus the GMP-5 report to the coordinator
// disseminate everything that matters. Under a partial topology (e.g.
// ring-k) a failure is observed only by the suspect's few monitors — and
// when the suspect is the coordinator itself, reportSuspicions has nowhere
// to report. Environments that monitor partially implement RelayPeers, and
// the node then forwards every point-to-point-learned suspicion (its own
// detector's, or one received in a FaultyReport) to the returned peers as
// additional FaultyReport gossip. Relays hop the topology: each receiver
// adopts the belief and relays onward to its own peers, so a suspicion
// floods the live remainder of the topology and reaches the coordinator —
// or, when the coordinator is the suspect, the member next in rank —
// within a bounded O(n·k) messages (each node relays each suspect to at
// most its peer set, once).
//
// Suspicions learned from broadcast gossip (Commit/Propose/ReconfCommit
// contingencies, an initiator's inferable HiFaulty) are never relayed:
// the broadcast already reached everyone the relay could.
type SuspicionRelayer interface {
	// RelayPeers returns the peers to forward fresh suspicions to, given
	// the view members the node does not currently believe faulty, in
	// seniority order (self included). Environments whose topology is
	// effectively all-to-all return nil.
	RelayPeers(unsuspected []ids.ProcID) []ids.ProcID
}

// SuspicionGossiper is an optional Env extension that supersedes the
// point-to-point relay flood with batched suspicion digests. Where the
// SuspicionRelayer turns each fresh suspicion into one FaultyReport per
// topology peer (O(deg) extra frames per suspicion per hop), a gossiping
// environment batches every pending suspicion into a compact digest that
// piggybacks on the beacons it already sends — disseminating f suspicions
// costs digest *entries* on frames that were crossing the wire anyway.
//
// When GossipActive reports true, the node hands each point-to-point-
// learned suspicion (its own detector's, a FaultyReport's, a surmise) to
// GossipSuspicion instead of the relay set, and suspicions learned *from*
// a digest (Node.GossipSuspectWithLevel) are treated like broadcast gossip
// — adopted and re-gossiped, but not re-reported to the coordinator,
// because the digest flood reaches the coordinator too. The environment
// may report GossipActive false at any time (no beacon plane, all-to-all
// monitoring); the node then falls back to the relay unchanged, so the
// §7.2 message-count pins stand wherever digests are off.
type SuspicionGossiper interface {
	// GossipActive reports whether digest dissemination currently
	// applies. Consulted per suspicion, so an environment may flip modes
	// between views.
	GossipActive() bool
	// GossipSuspicion hands a point-to-point-learned suspicion to the
	// environment for batching into its next outgoing digests.
	GossipSuspicion(q ids.ProcID, level float64)
}

// ReadmissionGovernor is an optional Env extension that rate-limits
// readmissions. The paper's join path (§7) admits any recovered process
// whenever the coordinator learns of it — correct under crash-stop, but a
// *flapping* process (repeatedly excluded by timing mistakes, rejoining
// with a fresh incarnation each time) then drives one reconfiguration per
// flap, and every reconfiguration is a majority round the whole group
// pays for. Environments that implement this extension get consulted
// before the coordinator draws an Add from Recovered(Mgr); a vetoed
// joiner simply stays queued — the coordinator re-consults on later
// steps (join retries re-trigger them, and the environment may Poke), so
// admission is delayed, never denied. Exclusion safety is untouched:
// only Adds are governed.
type ReadmissionGovernor interface {
	// AdmitJoiner reports whether the coordinator may admit q now. The
	// environment owns the policy (the live runtime meters a token
	// bucket per site name); returning false defers the add. The method
	// may be called several times for one admission (round chaining,
	// reconfiguration), so implementations must treat a grant as open
	// until the add commits rather than charging each call.
	AdmitJoiner(q ids.ProcID) bool
}

// Config tunes which variant of the algorithm a node runs.
type Config struct {
	// Compression enables §3.1's condensed rounds: a commit carrying a
	// contingent next operation doubles as the next invitation
	// (2n−3 messages per exclusion instead of 3n−5). The paper's final
	// algorithm compresses; disabling reproduces the plain two-phase
	// numbers.
	Compression bool
	// MajorityCheck makes the coordinator require a majority of OKs
	// before committing (the §7.1 final algorithm). With it disabled the
	// basic §3.1 algorithm tolerates |Memb|−1 failures but is only safe
	// while the coordinator cannot fail. After a node has participated
	// in any reconfiguration it enforces the majority gate regardless
	// ("Observe that Mgr must henceforth garner responses from a
	// majority of processes before it can commit any removals", §4.5).
	MajorityCheck bool
	// ReconfigWait is how long a process that suspects the coordinator
	// waits for a higher-ranked process to start reconfiguration before
	// suspecting that process too (Table 1's "Eventually" row). Zero
	// disables the timeout; suspicions then come only from the failure
	// detector.
	ReconfigWait int64
	// JoinRetry is how long a joiner waits for its StateTransfer before
	// re-sending the join request to its contact (the original may have
	// died with a failed coordinator). Zero disables retries.
	JoinRetry int64
	// AwaitWait is the partial-topology await fallback. Every await
	// clause of the protocol ("OK(p) or faulty_Mgr(p)", Figs. 8–10)
	// terminates because F1 eventually reports any crashed member — an
	// assumption that silently relies on every awaiting process
	// monitoring every member. Under a partial monitoring topology a
	// dead member's only monitors can themselves die or be excluded
	// before their suspicion propagates, leaving a round or a
	// reconfiguration phase wedged on a member nobody watches anymore.
	// AwaitWait > 0 arms a timer per await: once a round or phase has
	// sat unresolved that long, the awaiting process surmises faulty of
	// every still-unaccounted member — its own local F1 input, wrong
	// detections being legal (§2.2) and Table 1's surmise being the
	// precedent. Zero disables the fallback (the default: all-to-all
	// monitoring feeds every await through the detector itself).
	AwaitWait int64
	// TwoPhaseReconfig is the §7.3 strawman: reconfiguration skips the
	// proposal phase and commits straight after interrogation. Claim 7.2
	// proves this cannot solve GMP — without the Phase-II majority there
	// is no way to detect which of two competing proposals was committed
	// invisibly. It exists only so the baseline suite can demonstrate the
	// resulting GMP-3 violation; never enable it in real configurations.
	TwoPhaseReconfig bool
}

// DefaultConfig is the paper's final algorithm: compression on, majority
// gate on, initiation timeout armed.
func DefaultConfig() Config {
	return Config{
		Compression:   true,
		MajorityCheck: true,
		ReconfigWait:  400,
		JoinRetry:     800,
	}
}
