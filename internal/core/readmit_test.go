package core_test

// The readmission-governor seam (core.ReadmissionGovernor) unit-tested at
// the protocol layer: a vetoed joiner stays queued without blocking other
// membership work, and a later grant plus Poke admits it. The simulator's
// environments implement no governor, so every pinned behavior elsewhere
// in this package is untouched.

import (
	"testing"

	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// govEnv is relayEnv's shape plus a switchable admission verdict.
type govEnv struct {
	bus   *relayBus
	id    ids.ProcID
	admit func(q ids.ProcID) bool
}

func (e *govEnv) Send(to ids.ProcID, payload any) {
	e.bus.queue = append(e.bus.queue, relayMsg{e.id, to, payload})
}
func (e *govEnv) After(int64, func()) (cancel func())        { return func() {} }
func (e *govEnv) Quit()                                      { e.bus.dead.Add(e.id) }
func (e *govEnv) Record(event.Kind, ids.ProcID)              {}
func (e *govEnv) RecordInstall(member.Version, []ids.ProcID) {}
func (e *govEnv) AdmitJoiner(q ids.ProcID) bool              { return e.admit(q) }

func TestReadmissionGovernorDefersThenAdmits(t *testing.T) {
	procs := ids.Gen(3)
	bus := &relayBus{nodes: make(map[ids.ProcID]*core.Node), dead: ids.NewSet()}
	allowed := false
	admit := func(ids.ProcID) bool { return allowed }
	cfg := core.Config{Compression: true, MajorityCheck: true}
	for _, p := range procs {
		bus.nodes[p] = core.New(p, &govEnv{bus: bus, id: p, admit: admit}, cfg)
	}
	for _, p := range procs {
		bus.nodes[p].Bootstrap(procs)
	}
	mgr := procs[0]

	// A fresh incarnation of a previously excluded site asks to join while
	// the governor vetoes: the add must be deferred, not started.
	joiner := ids.ProcID{Site: "p9", Incarnation: 3}
	bus.nodes[mgr].Deliver(joiner, core.JoinRequest{Joiner: joiner})
	bus.pump()
	if v := bus.nodes[mgr].View(); v.Has(joiner) || v.Version() != 0 {
		t.Fatalf("vetoed joiner admitted: view %v", v)
	}

	// The veto must not block exclusions queued behind the deferred add.
	victim := procs[2]
	bus.dead.Add(victim)
	bus.nodes[mgr].Suspect(victim)
	bus.pump()
	if v := bus.nodes[mgr].View(); v.Has(victim) {
		t.Fatalf("deferred join blocked the exclusion: view %v", v)
	}
	if v := bus.nodes[mgr].View(); v.Has(joiner) {
		t.Fatalf("exclusion round leaked the vetoed joiner in: view %v", v)
	}

	// The governor's bucket refills: Poke alone (no protocol traffic) must
	// re-scan and admit the queued joiner everywhere.
	allowed = true
	nodeJoiner := core.New(joiner, &govEnv{bus: bus, id: joiner, admit: admit}, cfg)
	bus.nodes[joiner] = nodeJoiner
	nodeJoiner.StartJoin(mgr)
	bus.pump() // delivers the joiner's own request; mgr already queued it
	bus.nodes[mgr].Poke()
	bus.pump()
	for _, p := range []ids.ProcID{mgr, procs[1], joiner} {
		nd := bus.nodes[p]
		if !nd.Alive() {
			t.Fatalf("%v quit: %s", p, nd.QuitReason())
		}
		if v := nd.View(); !v.Has(joiner) {
			t.Errorf("%v's view %v lacks the admitted joiner", p, v)
		}
	}
}
