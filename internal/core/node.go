package core

import (
	"fmt"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// Node is one process running the protocol.
type Node struct {
	id  ids.ProcID
	env Env
	cfg Config

	// Liveness.
	alive      bool
	quitReason string

	// Membership state (§2.2, §4.4).
	view *member.View // Memb(p); nil until bootstrapped or state-transferred
	seq  member.Seq   // seq(p): committed operations, in order
	next member.Next  // next(p): expected future commits

	// Belief state (§2.2). faulty is Faulty(p): suspected processes not
	// yet removed from the view. isolated implements property S1 — once
	// a process appears here, every message from it is discarded forever.
	// recovered is Recovered(p): processes waiting to join.
	faulty    ids.Set
	isolated  ids.Set
	recovered ids.Set

	// mgr is this node's belief about the current coordinator. It starts
	// as the most senior view member and is reassigned by reconfiguration
	// commits (Fig. 10's "Mgr ← r").
	mgr ids.ProcID

	// reported tracks which suspicions we already forwarded to the
	// current coordinator, so coordinator changes re-trigger GMP-5
	// reports without duplication. sponsored does the same for pending
	// joiners (Prop. 6.4: requests made to a failed Mgr are not lost).
	reported  ids.Set
	sponsored ids.Set

	// relayable holds the suspects whose faulty_p(q) this node learned
	// point-to-point (its own detector, a FaultyReport, or a Table 1
	// surmise) and must therefore re-disseminate under a partial
	// monitoring topology; relayed tracks, per suspect, the peers
	// already sent the relay, so the flood terminates. Both are unused
	// (and empty) when the Env is not a SuspicionRelayer.
	relayable ids.Set
	relayed   map[ids.ProcID]ids.Set

	// Coordinator role.
	round            *updateRound
	everReconfigured bool

	// Outer role: the operation we have acknowledged and whose commit we
	// await.
	pending *pendingUpdate

	// Reconfiguration initiator role.
	reconf *reconfState
	// awaitingReconf is the initiator whose Propose/Commit we expect
	// after answering its interrogation (ids.Nil when none).
	awaitingReconf ids.ProcID

	// Initiation timeout (Table 1). timerGen invalidates stale timers.
	timerGen    int
	timerArmed  bool
	cancelTimer func()

	// Await fallback (Config.AwaitWait). awaitKey identifies which await
	// the armed timer covers, so a new round or phase restarts the clock.
	awaitGen    int
	awaitArmed  bool
	awaitKey    awaitKey
	cancelAwait func()

	// Future-view message buffer (§3) and its re-entrancy guard.
	held     []heldMessage
	draining bool

	// Joiner mode: set between StartJoin and the StateTransfer.
	joining bool
}

// updateRound is the coordinator's in-flight two-phase round.
type updateRound struct {
	op         member.Op
	ver        member.Version // version committing op produces
	okFrom     ids.Set        // outer processes that acknowledged
	contingent bool           // invitation rode on the previous commit
}

// pendingUpdate is what an outer process has acknowledged.
type pendingUpdate struct {
	op  member.Op
	ver member.Version
}

// awaitKey names one await instance: the version a round would commit, or
// the current view version plus phase for a reconfiguration.
type awaitKey struct {
	ver   member.Version
	phase int
}

// reconfState is the initiator's three-phase progress.
type reconfState struct {
	phase     int // 1 = interrogation, 2 = proposal
	responses map[ids.ProcID]InterrogateOK
	phase2OK  ids.Set
	rl        member.Seq
	ver       member.Version
	invis     member.Op
}

// New builds a node. It is inert until Bootstrap or StartJoin.
func New(id ids.ProcID, env Env, cfg Config) *Node {
	return &Node{
		id:        id,
		env:       env,
		cfg:       cfg,
		alive:     true,
		faulty:    ids.NewSet(),
		isolated:  ids.NewSet(),
		recovered: ids.NewSet(),
		reported:  ids.NewSet(),
		sponsored: ids.NewSet(),
		relayable: ids.NewSet(),
		relayed:   make(map[ids.ProcID]ids.Set),
	}
}

// Bootstrap installs the commonly-known initial membership (GMP-0). Every
// initial member calls it with the same seniority-ordered list.
func (n *Node) Bootstrap(initial []ids.ProcID) {
	n.view = member.NewView(initial)
	n.mgr = n.view.Mgr()
	n.env.RecordInstall(n.view.Version(), n.view.Members())
}

// maxJoinAttempts bounds a joiner's retries before it gives up; the group
// may be dead or unreachable, and an abandoned joiner must terminate.
const maxJoinAttempts = 10

// StartJoin puts the node in joiner mode and asks contact (any group
// member) to sponsor it. The node stays inert until the group's
// coordinator admits it and sends a StateTransfer; if the request is lost
// (the sponsor or coordinator died first), it retries every
// Config.JoinRetry ticks, up to maxJoinAttempts.
func (n *Node) StartJoin(contact ids.ProcID) {
	n.joining = true
	n.sendJoin(contact, 1)
}

func (n *Node) sendJoin(contact ids.ProcID, attempt int) {
	if !n.alive || !n.joining {
		return
	}
	if attempt > maxJoinAttempts {
		n.quit("join abandoned: no response from the group")
		return
	}
	n.env.Send(contact, JoinRequest{Joiner: n.id})
	if n.cfg.JoinRetry > 0 {
		n.env.After(n.cfg.JoinRetry, func() { n.sendJoin(contact, attempt+1) })
	}
}

// --- Introspection (used by the harness, checker and public API) ---------

// ID returns the node's process identifier.
func (n *Node) ID() ids.ProcID { return n.id }

// Alive reports whether the node is still executing.
func (n *Node) Alive() bool { return n.alive }

// QuitReason explains a voluntary halt ("" while alive).
func (n *Node) QuitReason() string { return n.quitReason }

// View returns a copy of the current local view (nil before bootstrap).
func (n *Node) View() *member.View {
	if n.view == nil {
		return nil
	}
	return n.view.Clone()
}

// SeqLog returns a copy of seq(p).
func (n *Node) SeqLog() member.Seq { return n.seq.Clone() }

// NextList returns a copy of next(p).
func (n *Node) NextList() member.Next { return n.next.Clone() }

// Coordinator returns this node's belief about the current Mgr.
func (n *Node) Coordinator() ids.ProcID { return n.mgr }

// IsCoordinator reports whether this node believes itself Mgr.
func (n *Node) IsCoordinator() bool { return n.alive && n.view != nil && n.mgr == n.id }

// Suspects returns the current Faulty(p) set (suspected, not yet removed).
func (n *Node) Suspects() []ids.ProcID { return n.faulty.Sorted() }

// Acknowledged reports the operation this outer process has OK'd and whose
// commit it awaits (ok == false when idle). Debugging/monitoring surface.
func (n *Node) Acknowledged() (op member.Op, ver member.Version, ok bool) {
	if n.pending == nil {
		return member.NilOp, 0, false
	}
	return n.pending.op, n.pending.ver, true
}

// --- Inputs ---------------------------------------------------------------

// Suspect is the F1 failure-detection input: execute faulty_p(q). The same
// entry point serves F2 gossip (via applyFaulty) and the Table 1 initiation
// timeout.
func (n *Node) Suspect(q ids.ProcID) { n.SuspectWithLevel(q, 0) }

// SuspectWithLevel is Suspect for environments whose failure detector
// grades its output (§2.2 leaves the mechanism open; the live runtime's
// accrual detector produces a φ value): level travels onto the recorded
// Faulty event so traces show how confident the detector was when the
// suspicion fired. Level 0 is an ungraded suspicion.
func (n *Node) SuspectWithLevel(q ids.ProcID, level float64) {
	if !n.alive || n.view == nil || q == n.id {
		return
	}
	if !n.applyFaultyLevel(q, level) {
		return
	}
	// A detector-sourced suspicion is point-to-point knowledge: under a
	// partial topology nobody else may have observed it, so it must be
	// disseminated (reportSuspicions relays; a gossiping environment
	// batches it into digests instead).
	n.disseminate(q, level)
	// GMP-5: ask the coordinator to start the removal algorithm — unless
	// the coordinator itself is the suspect (reconfiguration handles it).
	n.reportSuspicions()
	n.step()
}

// GossipSuspectWithLevel is the entry point for a suspicion learned from
// a batched digest (SuspicionGossiper environments). It adopts the belief
// like F2 broadcast gossip — no FaultyReport to the coordinator, because
// the digest flood that delivered it here is reaching the coordinator by
// the same mechanism — and re-disseminates so the flood hops onward
// through the monitoring topology.
func (n *Node) GossipSuspectWithLevel(q ids.ProcID, level float64) {
	if !n.alive || n.view == nil || q == n.id {
		return
	}
	if !n.applyFaultyLevel(q, level) {
		return
	}
	n.reported.Add(q)
	n.disseminate(q, level)
	n.step()
}

// disseminate spreads one point-to-point-learned suspicion: into the
// environment's digest batch when digest gossip is active, else into the
// relay set that reportSuspicions floods peer by peer.
func (n *Node) disseminate(q ids.ProcID, level float64) {
	if g, ok := n.env.(SuspicionGossiper); ok && g.GossipActive() {
		g.GossipSuspicion(q, level)
		return
	}
	n.relayable.Add(q)
}

// applyFaulty records faulty_p(q) with no detector grade behind it (F2
// gossip, commit-carried removals, the initiation timeout).
func (n *Node) applyFaulty(q ids.ProcID) bool { return n.applyFaultyLevel(q, 0) }

// applyFaultyLevel records faulty_p(q): S1 isolation plus, if q is a view
// member, entry into Faulty(p). Returns false if q was already isolated.
func (n *Node) applyFaultyLevel(q ids.ProcID, level float64) bool {
	if q == n.id || n.isolated.Has(q) {
		return false
	}
	relevant := n.view.Has(q) || n.recovered.Has(q)
	if !relevant {
		// Suspicion of a process we never admitted: isolate silently.
		n.isolated.Add(q)
		return false
	}
	n.isolated.Add(q)
	n.recovered.Remove(q)
	if n.view.Has(q) {
		n.faulty.Add(q)
	}
	if lr, ok := n.env.(LevelRecorder); ok && level != 0 {
		lr.RecordLevel(event.Faulty, q, level)
	} else {
		n.env.Record(event.Faulty, q)
	}
	if q == n.awaitingReconf {
		// Fig. 10: "await (Propose … ) or faulty_p(r); if faulty_p(r)
		// then exit the protocol."
		n.awaitingReconf = ids.Nil
	}
	return true
}

// applyOperating records operating_p(q), the join-side belief (§7.1).
func (n *Node) applyOperating(q ids.ProcID) {
	if q == n.id || n.isolated.Has(q) || n.view.Has(q) || n.recovered.Has(q) {
		return
	}
	n.recovered.Add(q)
	n.env.Record(event.Operating, q)
}

// reportSuspicions forwards unreported suspicions and unsponsored pending
// joiners to the coordinator (GMP-5 and its recovery analogue). Reports are
// re-sent to a new coordinator after reconfiguration. Under a partial
// monitoring topology it also relays fresh point-to-point suspicions to
// the topology peers — crucially *before* the coordinator gate below,
// because a suspected coordinator is exactly the case where the relay is
// the only dissemination path left.
func (n *Node) reportSuspicions() {
	n.relaySuspicions()
	if n.mgr == n.id || n.isolated.Has(n.mgr) {
		// Digest dissemination travels at beacon cadence along monitor
		// edges, which is the wrong speed for the one latency-critical
		// hop: the expected initiator learning the coordinator is dead.
		// Keep that hop point-to-point — O(1) frames, and only from
		// nodes that learned the suspicion first-hand (digest-learned
		// beliefs arrive via GossipSuspectWithLevel, which marks them
		// reported), so it stays O(monitors), not O(n).
		if g, ok := n.env.(SuspicionGossiper); ok && g.GossipActive() {
			if heir := n.expectedInitiator(); heir != n.id && !heir.IsNil() {
				for _, q := range n.faulty.Sorted() {
					if n.reported.Has(q) || !n.view.Has(q) {
						continue
					}
					n.reported.Add(q)
					n.env.Send(heir, FaultyReport{Suspect: q})
				}
			}
		}
		return
	}
	for _, q := range n.faulty.Sorted() {
		if n.reported.Has(q) || !n.view.Has(q) {
			continue
		}
		n.reported.Add(q)
		n.env.Send(n.mgr, FaultyReport{Suspect: q})
	}
	for _, j := range n.recovered.Sorted() {
		if n.sponsored.Has(j) || n.view.Has(j) {
			continue
		}
		n.sponsored.Add(j)
		n.env.Send(n.mgr, JoinRequest{Joiner: j})
	}
}

// relaySuspicions floods fresh point-to-point suspicions to the peers the
// environment's monitoring topology designates (SuspicionRelayer). Each
// (suspect, peer) pair is relayed at most once; peers are recomputed from
// the members this node still believes operational, so the flood routes
// around the suspects themselves (a ring re-closes over its live
// remainder). A no-op for environments without a relayer — the simulator,
// and live groups monitoring all-to-all.
func (n *Node) relaySuspicions() {
	if n.relayable.Len() == 0 || n.view == nil {
		return
	}
	r, ok := n.env.(SuspicionRelayer)
	if !ok {
		return
	}
	var unsuspected []ids.ProcID
	for _, m := range n.view.Members() {
		if !n.isolated.Has(m) {
			unsuspected = append(unsuspected, m)
		}
	}
	peers := r.RelayPeers(unsuspected)
	if len(peers) == 0 {
		return
	}
	for _, q := range n.relayable.Sorted() {
		if !n.view.Has(q) {
			continue
		}
		for _, t := range peers {
			if t == n.id || t == q || !n.view.Has(t) || n.isolated.Has(t) {
				continue
			}
			sent := n.relayed[q]
			if sent == nil {
				sent = ids.NewSet()
				n.relayed[q] = sent
			}
			if sent.Has(t) {
				continue
			}
			sent.Add(t)
			n.env.Send(t, FaultyReport{Suspect: q})
		}
	}
}

// Deliver is the network's entry point for an incoming message.
func (n *Node) Deliver(from ids.ProcID, payload any) {
	if !n.alive {
		return
	}
	// Property S1: never receive from a process believed faulty.
	if n.isolated.Has(from) {
		return
	}
	if n.joining || n.view == nil {
		if st, ok := payload.(StateTransfer); ok {
			n.handleStateTransfer(from, st)
		}
		return
	}
	// §2.2 case 1: a sender outside our local view is treated as faulty;
	// its messages must not influence us. Join traffic is the exception —
	// a joiner is outside every view by definition.
	if !n.view.Has(from) {
		if jr, ok := payload.(JoinRequest); ok && jr.Joiner == from {
			n.handleJoinRequest(from, jr)
			return
		}
		if !n.recovered.Has(from) {
			n.isolated.Add(from)
		}
		return
	}

	if n.bufferIfFuture(from, payload) {
		return
	}

	switch m := payload.(type) {
	case Invite:
		n.handleInvite(from, m)
	case OK:
		n.handleOK(from, m)
	case Commit:
		n.handleCommit(from, m)
	case Interrogate:
		n.handleInterrogate(from)
	case InterrogateOK:
		n.handleInterrogateOK(from, m)
	case Propose:
		n.handlePropose(from, m)
	case ProposeOK:
		n.handleProposeOK(from, m)
	case ReconfCommit:
		n.handleReconfCommit(from, m)
	case FaultyReport:
		n.handleFaultyReport(from, m)
	case JoinRequest:
		n.handleJoinRequest(from, m)
	case StateTransfer:
		// Already installed; duplicate transfers are ignored.
	default:
		panic(fmt.Sprintf("core: %v received unknown payload %T", n.id, payload))
	}

	// Replay buffered future-view messages that the handler's installs
	// have made current; only the outermost delivery drains.
	if !n.draining && n.alive && n.view != nil && len(n.held) > 0 {
		n.draining = true
		for {
			before, ver := len(n.held), n.view.Version()
			n.drainHeld()
			if !n.alive || len(n.held) == 0 ||
				(len(n.held) == before && n.view.Version() == ver) {
				break
			}
		}
		n.draining = false
	}
}

// --- Lifecycle ------------------------------------------------------------

// quit executes quit_p: the process halts permanently (§2.1). The
// environment propagates it like a crash so the rest of the group's failure
// detection observes it.
func (n *Node) quit(reason string) {
	if !n.alive {
		return
	}
	n.alive = false
	n.quitReason = reason
	n.disarmTimer()
	n.disarmAwaitTimer()
	n.env.Record(event.Quit, ids.Nil)
	n.env.Quit()
}

// install applies committed operations, records the transition, and drains
// role bookkeeping tied to the old view.
func (n *Node) install(ops member.Seq) error {
	for _, op := range ops {
		if err := n.view.Apply(op); err != nil {
			return fmt.Errorf("core: %v installing %v: %w", n.id, op, err)
		}
		n.seq = append(n.seq, op)
		switch op.Kind {
		case member.OpRemove:
			n.faulty.Remove(op.Target)
			n.relayable.Remove(op.Target)
			delete(n.relayed, op.Target)
			n.env.Record(event.Remove, op.Target)
		case member.OpAdd:
			n.recovered.Remove(op.Target)
			n.env.Record(event.Add, op.Target)
			// A suspicion that landed while the add was in flight must
			// not be lost (GMP-5): the joiner enters the view already
			// marked faulty and the next round excludes it.
			if n.isolated.Has(op.Target) {
				n.faulty.Add(op.Target)
			}
		}
	}
	if len(ops) > 0 {
		// Re-intersect the relay dedup map with the installed view: the
		// per-op removal above only covers the suspects themselves, while
		// the per-suspect target sets keep ids of members removed by
		// *other* operations — across many reconfigurations that is a
		// slow, monotonic leak. Targets outside the view can never be
		// relayed to again (relaySuspicions checks view membership), so
		// dropping them is pure garbage collection.
		for q, sent := range n.relayed {
			if !n.view.Has(q) {
				delete(n.relayed, q)
				continue
			}
			for _, t := range sent.Sorted() {
				if !n.view.Has(t) {
					sent.Remove(t)
				}
			}
			if sent.Len() == 0 {
				delete(n.relayed, q)
			}
		}
		n.env.RecordInstall(n.view.Version(), n.view.Members())
	}
	return nil
}

// step runs the node's enabled actions after any state change: coordinator
// round progress, reconfiguration progress, initiation, timer upkeep.
func (n *Node) step() {
	if !n.alive || n.view == nil {
		return
	}
	// The await fallback is maintained on the way out so a round or
	// phase entered during this step arms its timer immediately.
	defer func() {
		if n.alive {
			n.maintainAwaitTimer()
		}
	}()
	if n.reconf != nil {
		n.checkReconfPhase()
		return
	}
	if n.isCoordinatorRole() {
		n.checkRound()
		n.maybeStartRound()
		return
	}
	n.maybeInitiate()
	n.maintainTimer()
}

// isCoordinatorRole reports whether this node currently drives updates.
func (n *Node) isCoordinatorRole() bool { return n.mgr == n.id }

// Poke re-runs the enabled-actions scan. Protocol handlers step the node
// themselves; Poke exists for environments whose optional extensions gate
// actions on the passage of time — a readmission governor whose token
// bucket has refilled calls it so a deferred join is re-considered
// without waiting for the next protocol message. Harmless when nothing
// has changed.
func (n *Node) Poke() { n.step() }

// expectedInitiator returns the most senior view member this node does
// not believe faulty — the process that will (by rank) drive the next
// reconfiguration, per Table 1's "the most senior operational process
// initiates" reading. ids.Nil when every member is suspected.
func (n *Node) expectedInitiator() ids.ProcID {
	for _, m := range n.view.Members() {
		if !n.isolated.Has(m) {
			return m
		}
	}
	return ids.Nil
}

// higherRankedUnsuspected returns the view members outranking us that we do
// not (yet) believe faulty, most senior first.
func (n *Node) higherRankedUnsuspected() []ids.ProcID {
	var out []ids.ProcID
	for _, q := range n.view.HigherRanked(n.id) {
		if !n.isolated.Has(q) {
			out = append(out, q)
		}
	}
	return out
}

// hiFaultyFull reports the initiation condition of §4.2: HiFaulty(p) holds
// every higher-ranked member of the local view.
func (n *Node) hiFaultyFull() bool {
	hr := n.view.HigherRanked(n.id)
	if len(hr) == 0 {
		return false
	}
	for _, q := range hr {
		if !n.isolated.Has(q) {
			return false
		}
	}
	return true
}

// --- Initiation timeout (Table 1) -----------------------------------------

// maintainTimer arms the Table 1 escalation clock whenever we suspect the
// coordinator, are not in (or awaiting) a reconfiguration, and some
// higher-ranked process remains unsuspected — i.e. we expect somebody else
// to initiate.
func (n *Node) maintainTimer() {
	want := n.cfg.ReconfigWait > 0 &&
		n.isolated.Has(n.mgr) &&
		n.view.Has(n.id) &&
		n.awaitingReconf.IsNil() &&
		n.reconf == nil &&
		len(n.higherRankedUnsuspected()) > 0
	if want == n.timerArmed {
		return
	}
	if !want {
		n.disarmTimer()
		return
	}
	n.timerArmed = true
	n.timerGen++
	gen := n.timerGen
	n.cancelTimer = n.env.After(n.cfg.ReconfigWait, func() { n.timerFired(gen) })
}

func (n *Node) disarmTimer() {
	if n.timerArmed {
		n.timerArmed = false
		n.timerGen++
		if n.cancelTimer != nil {
			n.cancelTimer()
			n.cancelTimer = nil
		}
	}
}

// --- Await fallback (Config.AwaitWait) ------------------------------------

// maintainAwaitTimer arms the partial-topology await fallback whenever
// this node is awaiting responses — a coordinator round or a
// reconfiguration phase — and restarts the clock when the await changes
// identity (a new round, the next phase). See Config.AwaitWait.
func (n *Node) maintainAwaitTimer() {
	var key awaitKey
	want := n.cfg.AwaitWait > 0
	switch {
	case !want:
	case n.reconf != nil:
		key = awaitKey{ver: n.view.Version(), phase: n.reconf.phase}
	case n.round != nil:
		key = awaitKey{ver: n.round.ver}
	default:
		want = false
	}
	if !want {
		n.disarmAwaitTimer()
		return
	}
	if n.awaitArmed && key == n.awaitKey {
		return
	}
	n.disarmAwaitTimer()
	n.awaitArmed, n.awaitKey = true, key
	n.awaitGen++
	gen := n.awaitGen
	n.cancelAwait = n.env.After(n.cfg.AwaitWait, func() { n.awaitFired(gen) })
}

func (n *Node) disarmAwaitTimer() {
	if n.awaitArmed {
		n.awaitArmed = false
		n.awaitGen++
		if n.cancelAwait != nil {
			n.cancelAwait()
			n.cancelAwait = nil
		}
	}
}

// awaitFired resolves a wedged await: every member whose response is
// still outstanding is surmised faulty — this node's own F1 input for
// members it does not monitor, exactly as legal as any other wrong
// detection (§2.2). The surmise is relayed like a detector suspicion so
// the rest of a partial topology learns it too.
func (n *Node) awaitFired(gen int) {
	if !n.alive || gen != n.awaitGen || n.view == nil {
		return
	}
	n.awaitArmed = false
	for _, m := range n.unaccounted() {
		if n.applyFaulty(m) {
			n.disseminate(m, 0)
		}
	}
	n.reportSuspicions()
	n.step()
}

// unaccounted lists the view members the current await is still waiting
// on: no response yet, and not already believed faulty.
func (n *Node) unaccounted() []ids.ProcID {
	var out []ids.ProcID
	answered := func(m ids.ProcID) bool { return false }
	switch {
	case n.reconf != nil && n.reconf.phase == 1:
		answered = func(m ids.ProcID) bool { _, ok := n.reconf.responses[m]; return ok }
	case n.reconf != nil && n.reconf.phase == 2:
		answered = n.reconf.phase2OK.Has
	case n.round != nil:
		answered = n.round.okFrom.Has
	default:
		return nil
	}
	for _, m := range n.view.Members() {
		if m != n.id && !answered(m) && !n.isolated.Has(m) {
			out = append(out, m)
		}
	}
	return out
}

// timerFired escalates: the most senior unsuspected process "should" have
// initiated by now, so we surmise faulty(p) of it (Table 1, scenario 2) and
// either expect the next candidate or initiate ourselves.
func (n *Node) timerFired(gen int) {
	if !n.alive || gen != n.timerGen || n.view == nil {
		return
	}
	n.timerArmed = false
	candidates := n.higherRankedUnsuspected()
	if len(candidates) == 0 || !n.isolated.Has(n.mgr) {
		n.step()
		return
	}
	if n.applyFaulty(candidates[0]) {
		// A Table 1 surmise is local knowledge like a detector firing:
		// disseminate it under a partial topology.
		n.disseminate(candidates[0], 0)
	}
	n.reportSuspicions()
	n.step()
}
