package core

// White-box unit tests for the node's internals: the future-view buffer
// (§3), the Determine/GetStable case analysis (Fig. 6), queue ordering,
// and the S1/gossip bookkeeping. Protocol-level behaviour is covered by
// the black-box tests in protocol_test.go / paper_scenarios_test.go.

import (
	"testing"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// stubEnv is a minimal core.Env that records outputs synchronously.
type stubEnv struct {
	id   ids.ProcID
	sent []struct {
		To      ids.ProcID
		Payload any
	}
	events   []event.Kind
	installs []member.Version
	quit     bool
	timers   []func()
}

func (e *stubEnv) Send(to ids.ProcID, payload any) {
	e.sent = append(e.sent, struct {
		To      ids.ProcID
		Payload any
	}{to, payload})
}

func (e *stubEnv) After(_ int64, fn func()) func() {
	e.timers = append(e.timers, fn)
	return func() {}
}

func (e *stubEnv) Quit() { e.quit = true }

func (e *stubEnv) Record(k event.Kind, _ ids.ProcID) { e.events = append(e.events, k) }

func (e *stubEnv) RecordInstall(v member.Version, _ []ids.ProcID) {
	e.installs = append(e.installs, v)
}

// mkNode builds a bootstrapped node with n members; the node under test is
// member at index idx.
func mkNode(n, idx int, cfg Config) (*Node, *stubEnv, []ids.ProcID) {
	procs := ids.Gen(n)
	env := &stubEnv{id: procs[idx]}
	node := New(procs[idx], env, cfg)
	node.Bootstrap(procs)
	return node, env, procs
}

func TestBufferHoldsFutureCommit(t *testing.T) {
	node, env, procs := mkNode(4, 1, DefaultConfig())
	mgr := procs[0]

	// A commit for v2 arrives before v1 (cannot happen over FIFO from one
	// coordinator, but §3's buffering layer must cope regardless).
	c2 := Commit{Op: member.Remove(procs[3]), Ver: 2}
	node.Deliver(mgr, c2)
	if got := node.View().Version(); got != 0 {
		t.Fatalf("future commit applied early: v%d", got)
	}
	if len(node.held) != 1 {
		t.Fatalf("future commit not buffered: held=%d", len(node.held))
	}

	// v1 arrives; the buffered v2 must drain right after it.
	c1 := Commit{Op: member.Remove(procs[2]), Ver: 1}
	node.Deliver(mgr, c1)
	if got := node.View().Version(); got != 2 {
		t.Fatalf("after drain, version = %d, want 2", got)
	}
	if node.View().Has(procs[2]) || node.View().Has(procs[3]) {
		t.Errorf("view %v retains removed members", node.View())
	}
	if len(node.held) != 0 {
		t.Errorf("buffer not drained: %v", node.held)
	}
	if len(env.installs) != 3 || env.installs[1] != 1 || env.installs[2] != 2 {
		t.Errorf("installs = %v, want [0 1 2]", env.installs)
	}
}

func TestBufferDiscardsIsolatedSenders(t *testing.T) {
	node, _, procs := mkNode(4, 1, DefaultConfig())
	mgr := procs[0]
	node.Deliver(mgr, Commit{Op: member.Remove(procs[3]), Ver: 2})
	if len(node.held) != 1 {
		t.Fatal("not buffered")
	}
	// The sender becomes faulty before the buffered message is usable.
	node.Suspect(mgr)
	node.Deliver(procs[2], FaultyReport{Suspect: procs[3]}) // any delivery triggers drain attempt
	if got := node.View().Version(); got != 0 {
		t.Fatalf("buffered message from isolated sender applied: v%d", got)
	}
}

func TestNextOpPrefersJoins(t *testing.T) {
	node, _, procs := mkNode(4, 0, DefaultConfig())
	node.applyFaulty(procs[3])
	joiner := ids.Named("q1")
	node.applyOperating(joiner)
	op := node.nextOp(nil)
	if op.Kind != member.OpAdd || op.Target != joiner {
		t.Errorf("nextOp = %v, want add(q1) first (Fig. 8 drains Recovered first)", op)
	}
	op = node.nextOp(ids.NewSet(joiner))
	if op.Kind != member.OpRemove || op.Target != procs[3] {
		t.Errorf("nextOp with join excluded = %v, want remove(p4)", op)
	}
	if got := node.nextOp(ids.NewSet(joiner, procs[3])); !got.IsNil() {
		t.Errorf("nextOp with all excluded = %v, want nil", got)
	}
}

// reconfWith loads a Phase-I response set into a node ready for determine.
func reconfWith(node *Node, resp map[ids.ProcID]InterrogateOK) {
	node.reconf = &reconfState{phase: 1, responses: resp, phase2OK: ids.NewSet()}
}

func TestDetermineCaseAhead(t *testing.T) {
	// L ≠ ∅: a respondent is one update ahead; propagate the difference.
	node, _, procs := mkNode(5, 1, DefaultConfig())
	node.Suspect(procs[0])
	missing := member.Remove(procs[4])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[2]: {Ver: 1, Seq: member.Seq{missing}},
		procs[3]: {Ver: 0},
	})
	rl, ver, invis, err := node.determine()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || len(rl) != 1 || rl[0] != missing {
		t.Errorf("determine = (%v, v%d), want ([remove p5], v1)", rl, ver)
	}
	// invis: nothing known for v2; the queue holds the suspected Mgr.
	if invis != member.Remove(procs[0]) {
		t.Errorf("invis = %v, want remove(p1)", invis)
	}
}

func TestDetermineCaseBehindRespondent(t *testing.T) {
	// S ≠ ∅: a respondent missed our last install; re-propose our version.
	node, _, procs := mkNode(5, 1, DefaultConfig())
	gone := member.Remove(procs[4])
	if err := node.install(member.Seq{gone}); err != nil {
		t.Fatal(err)
	}
	node.Suspect(procs[0])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[2]: {Ver: 0}, // behind
		procs[3]: {Ver: 1, Seq: member.Seq{gone}},
	})
	rl, ver, invis, err := node.determine()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || len(rl) != 1 || rl[0] != gone {
		t.Errorf("determine = (%v, v%d), want ([remove p5], v1)", rl, ver)
	}
	if invis != member.Remove(procs[0]) {
		t.Errorf("invis = %v, want remove(p1)", invis)
	}
}

func TestDetermineCaseLevelNoProposals(t *testing.T) {
	// L = S = ∅ and nobody heard a plan: propose the failed Mgr's removal
	// (line D.4).
	node, _, procs := mkNode(5, 1, DefaultConfig())
	node.Suspect(procs[0])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[2]: {Ver: 0},
		procs[3]: {Ver: 0},
	})
	rl, ver, _, err := node.determine()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || len(rl) != 1 || rl[0] != member.Remove(procs[0]) {
		t.Errorf("determine = (%v, v%d), want ([remove Mgr], v1)", rl, ver)
	}
}

func TestDetermineCaseLevelOneProposal(t *testing.T) {
	// L = S = ∅ with exactly Mgr's plan visible: propagate it (line D.5).
	node, _, procs := mkNode(5, 1, DefaultConfig())
	node.Suspect(procs[0])
	plan := member.Remove(procs[4])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[2]: {Ver: 0, Next: member.Next{{Op: plan, Coord: procs[0], Ver: 1}}},
		procs[3]: {Ver: 0},
	})
	rl, ver, invis, err := node.determine()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || len(rl) != 1 || rl[0] != plan {
		t.Errorf("determine = (%v, v%d), want ([remove p5], v1)", rl, ver)
	}
	if invis != member.Remove(procs[0]) {
		t.Errorf("invis = %v, want remove(p1) from the queue", invis)
	}
}

func TestDetermineCaseLevelTwoProposalsGetStable(t *testing.T) {
	// L = S = ∅ with two competing proposals: GetStable must pick the
	// lowest-ranked proposer's target (Prop. 5.6, line D.6).
	node, _, procs := mkNode(6, 2, DefaultConfig())
	node.Suspect(procs[0])
	node.Suspect(procs[1])
	mgrPlan := member.Remove(procs[5])    // proposed by Mgr (rank 6)
	reconfPlan := member.Remove(procs[0]) // proposed by p2 (rank 5, lower)
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[3]: {Ver: 0, Next: member.Next{{Op: mgrPlan, Coord: procs[0], Ver: 1}}},
		procs[4]: {Ver: 0, Next: member.Next{{Op: reconfPlan, Coord: procs[1], Ver: 1}}},
	})
	rl, ver, _, err := node.determine()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || len(rl) != 1 || rl[0] != reconfPlan {
		t.Errorf("determine = (%v, v%d): GetStable must pick the lowest-ranked proposer's plan %v",
			rl, ver, reconfPlan)
	}
}

func TestDetermineRejectsDivergedSequences(t *testing.T) {
	// A respondent ahead of us whose sequence does not extend ours is a
	// Theorem 5.1 violation; determine must fail loudly, not guess.
	node, _, procs := mkNode(5, 1, DefaultConfig())
	if err := node.install(member.Seq{member.Remove(procs[4])}); err != nil {
		t.Fatal(err)
	}
	node.Suspect(procs[0])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		node.id:  node.selfResponse(),
		procs[2]: {Ver: 2, Seq: member.Seq{member.Remove(procs[3]), member.Remove(procs[2])}},
	})
	if _, _, _, err := node.determine(); err == nil {
		t.Error("determine accepted non-prefix sequences")
	}
}

func TestProposalsForVerDeduplicatesByOp(t *testing.T) {
	node, _, procs := mkNode(5, 1, DefaultConfig())
	plan := member.Remove(procs[4])
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		procs[2]: {Ver: 0, Next: member.Next{{Op: plan, Coord: procs[0], Ver: 1}}},
		procs[3]: {Ver: 0, Next: member.Next{{Op: plan, Coord: procs[1], Ver: 1}}},
	})
	pfv := node.proposalsForVer(1)
	if len(pfv) != 1 {
		t.Fatalf("same op from two coordinators must count once: %v", pfv)
	}
	// The recorded proposer is the lowest-ranked one (p2 < p1 in rank).
	if pfv[0].coord != procs[1] {
		t.Errorf("kept coordinator %v, want the lower-ranked p2", pfv[0].coord)
	}
	// Wildcards and other versions are ignored.
	reconfWith(node, map[ids.ProcID]InterrogateOK{
		procs[2]: {Ver: 0, Next: member.Next{member.WildcardFor(procs[1]), {Op: plan, Coord: procs[0], Ver: 2}}},
	})
	if got := node.proposalsForVer(1); len(got) != 0 {
		t.Errorf("wildcard/mismatched triples leaked: %v", got)
	}
}

func TestSuspectSelfAndUnknownIgnored(t *testing.T) {
	node, env, procs := mkNode(3, 0, DefaultConfig())
	node.Suspect(node.id)
	node.Suspect(ids.Named("stranger"))
	if len(node.faulty) != 0 {
		t.Errorf("faulty = %v, want empty", node.faulty)
	}
	node.Suspect(procs[1])
	node.Suspect(procs[1]) // duplicate
	faultyEvents := 0
	for _, k := range env.events {
		if k == event.Faulty {
			faultyEvents++
		}
	}
	if faultyEvents != 1 {
		t.Errorf("faulty recorded %d times, want 1", faultyEvents)
	}
}

func TestInboxDropsIsolatedSender(t *testing.T) {
	node, env, procs := mkNode(3, 1, DefaultConfig())
	node.Suspect(procs[2])
	before := len(env.sent)
	node.Deliver(procs[2], FaultyReport{Suspect: procs[0]})
	if node.isolated.Has(procs[0]) {
		t.Error("message from isolated sender influenced the node (S1 violated)")
	}
	if len(env.sent) != before {
		t.Error("isolated sender's message triggered traffic")
	}
}

func TestNonMemberSenderIsIsolated(t *testing.T) {
	// §2.2 case 1: q ∉ Memb(p) ⇒ faulty_p(q).
	node, _, _ := mkNode(3, 0, DefaultConfig())
	stranger := ids.Named("zz")
	node.Deliver(stranger, OK{Ver: 1})
	if !node.isolated.Has(stranger) {
		t.Error("non-member sender not isolated")
	}
}

func TestRankGuardQuitsOutrankedReceiver(t *testing.T) {
	// Fig. 10: a receiver that outranks the interrogation's initiator is
	// in HiFaulty(r) and must quit.
	node, env, procs := mkNode(4, 1, DefaultConfig()) // p2, rank 3
	node.Deliver(procs[2], Interrogate{})             // initiator p3, rank 2
	if node.Alive() {
		t.Fatal("outranked receiver did not quit")
	}
	if !env.quit {
		t.Error("quit not propagated to the environment")
	}
}

func TestInterrogateAdoptsInitiatorHiFaulty(t *testing.T) {
	node, env, procs := mkNode(5, 3, DefaultConfig()) // p4 answers
	node.Deliver(procs[2], Interrogate{})             // initiator p3
	for _, q := range []ids.ProcID{procs[0], procs[1]} {
		if !node.isolated.Has(q) {
			t.Errorf("did not adopt faulty(%v) from HiFaulty(p3)", q)
		}
	}
	if node.isolated.Has(procs[4]) {
		t.Error("adopted suspicion below the initiator")
	}
	// The response went to the initiator with our state.
	found := false
	for _, s := range env.sent {
		if s.To == procs[2] {
			if _, ok := s.Payload.(InterrogateOK); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("no InterrogateOK sent to the initiator")
	}
	if node.awaitingReconf != procs[2] {
		t.Errorf("awaitingReconf = %v, want p3", node.awaitingReconf)
	}
	// Wildcard appended to next(p) (§4.4).
	nl := node.NextList()
	if len(nl) == 0 || !nl[len(nl)-1].Wildcard || nl[len(nl)-1].Coord != procs[2] {
		t.Errorf("next = %v, want trailing (? : p3 : ?)", nl)
	}
}

func TestCommitGossipMarksReported(t *testing.T) {
	node, env, procs := mkNode(5, 1, DefaultConfig())
	node.Deliver(procs[0], Commit{
		Op:     member.Remove(procs[4]),
		Ver:    1,
		Faulty: []ids.ProcID{procs[3]},
	})
	if !node.isolated.Has(procs[3]) {
		t.Fatal("F2 gossip not adopted")
	}
	// The coordinator told us, so no FaultyReport goes back.
	for _, s := range env.sent {
		if fr, ok := s.Payload.(FaultyReport); ok && fr.Suspect == procs[3] {
			t.Error("reported a coordinator-sourced suspicion back to the coordinator")
		}
	}
}

func TestContingentExclusionQuitsTarget(t *testing.T) {
	node, _, procs := mkNode(4, 2, DefaultConfig())
	node.Deliver(procs[0], Commit{
		Op:      member.Remove(procs[3]),
		Ver:     1,
		Next:    member.Remove(procs[2]), // us
		NextVer: 2,
	})
	if node.Alive() {
		t.Fatal("contingently excluded process did not quit")
	}
	if node.QuitReason() == "" {
		t.Error("missing quit reason")
	}
}

func TestCompressedCommitTriggersImmediateOK(t *testing.T) {
	node, env, procs := mkNode(5, 1, DefaultConfig())
	node.Deliver(procs[0], Commit{
		Op:      member.Remove(procs[4]),
		Ver:     1,
		Next:    member.Remove(procs[3]),
		NextVer: 2,
	})
	var oks []OK
	for _, s := range env.sent {
		if ok, is := s.Payload.(OK); is && s.To == procs[0] {
			oks = append(oks, ok)
		}
	}
	if len(oks) != 1 || oks[0].Ver != 2 {
		t.Fatalf("compressed contingency OKs = %v, want one OK for v2", oks)
	}
	nl := node.NextList()
	if len(nl) != 1 || nl[0].Ver != 2 || nl[0].Op != member.Remove(procs[3]) {
		t.Errorf("next = %v, want [(remove p4 : p1 : 2)]", nl)
	}
	op, ver, ok := node.Acknowledged()
	if !ok || ver != 2 || op != member.Remove(procs[3]) {
		t.Errorf("Acknowledged = (%v, %d, %v), want the contingent round", op, ver, ok)
	}
}

func TestUncompressedCommitWaitsForInvite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Compression = false
	node, env, procs := mkNode(5, 1, cfg)
	node.Deliver(procs[0], Commit{Op: member.Remove(procs[4]), Ver: 1})
	for _, s := range env.sent {
		if _, is := s.Payload.(OK); is {
			t.Fatal("uncompressed node acknowledged a commit with no explicit invite")
		}
	}
	node.Deliver(procs[0], Invite{Op: member.Remove(procs[3]), Ver: 2})
	sawOK := false
	for _, s := range env.sent {
		if ok, is := s.Payload.(OK); is && ok.Ver == 2 {
			sawOK = true
		}
	}
	if !sawOK {
		t.Error("explicit invite not acknowledged")
	}
}

func TestHandleOKGuards(t *testing.T) {
	node, _, procs := mkNode(4, 0, DefaultConfig())
	node.applyFaulty(procs[3])
	node.maybeStartRound()
	if node.round == nil {
		t.Fatal("round did not start")
	}
	// Wrong version: ignored.
	node.handleOK(procs[1], OK{Ver: 99})
	if node.round.okFrom.Len() != 0 {
		t.Error("stale-version OK counted")
	}
	// Non-member: ignored.
	node.handleOK(ids.Named("zz"), OK{Ver: node.round.ver})
	if node.round.okFrom.Len() != 0 {
		t.Error("non-member OK counted")
	}
	// Correct OK from p2 counts; p3's completes the round (p4 faulty).
	node.handleOK(procs[1], OK{Ver: node.round.ver})
	node.handleOK(procs[2], OK{Ver: node.round.ver})
	if node.round != nil && node.round.op == member.Remove(procs[3]) {
		t.Error("round did not commit after all members accounted")
	}
	if node.View().Has(procs[3]) {
		t.Error("target not removed")
	}
}

func TestMajorityGateAfterReconfiguration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MajorityCheck = false // even so, a reconfigured node must gate
	node, _, _ := mkNode(5, 1, cfg)
	if node.majorityGate() {
		t.Error("basic mode should not gate before any reconfiguration")
	}
	node.everReconfigured = true
	if !node.majorityGate() {
		t.Error("§4.5: after reconfiguration the majority gate is mandatory")
	}
}

func TestCatchUpPanicsOnUnbridgeableGap(t *testing.T) {
	node, _, procs := mkNode(5, 1, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("catchUp with an unbridgeable gap must panic (protocol invariant)")
		}
	}()
	node.catchUp(member.Seq{member.Remove(procs[4])}, 3)
}

func TestCoordinatorLosesMajorityQuits(t *testing.T) {
	node, env, procs := mkNode(5, 0, DefaultConfig())
	// Everyone else is suspected before the round completes: the round
	// "completes" with zero OKs, below µ(5)=3 — the coordinator must quit
	// rather than commit (Fig. 8's "if fewer than µ OKs then quit").
	for _, p := range procs[1:] {
		node.applyFaulty(p)
	}
	node.step()
	if node.Alive() {
		t.Fatal("coordinator committed without a majority")
	}
	if !env.quit {
		t.Error("quit not propagated")
	}
}

func TestHiFaultyFullSemantics(t *testing.T) {
	node, _, procs := mkNode(4, 2, DefaultConfig()) // p3
	if node.hiFaultyFull() {
		t.Error("empty HiFaulty counted as full")
	}
	node.applyFaulty(procs[0])
	if node.hiFaultyFull() {
		t.Error("partial HiFaulty counted as full")
	}
	node.applyFaulty(procs[1])
	if !node.hiFaultyFull() {
		t.Error("full HiFaulty not detected")
	}
	// The coordinator has nobody above it: never "full".
	mgrNode, _, _ := mkNode(4, 0, DefaultConfig())
	if mgrNode.hiFaultyFull() {
		t.Error("Mgr has no higher-ranked processes; hiFaultyFull must be false")
	}
}
